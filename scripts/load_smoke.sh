#!/usr/bin/env bash
# Load harness smoke over real sockets: two durable ctlogd backends, a
# ctfront fanning add-chain out over both, and ctload driving the full
# mixed workload against backend A (reads) + the frontend (writes).
#
# Asserts that every workload class completed requests with zero
# harness-level failures — once under the default mix and once under a
# proof-heavy mix that hammers the lock-free proof snapshot — and that
# the committed BENCH_load.json is well-formed (schema, per-class
# quantiles, the chunked-vs-unchunked reader-starvation comparison, and
# the idle baselines). Run from the repository root:
#
#	./scripts/load_smoke.sh
set -euo pipefail

BIN=$(mktemp -d)
DATA=$(mktemp -d)
cleanup() {
	# shellcheck disable=SC2046
	kill $(jobs -p) 2>/dev/null || true
	wait 2>/dev/null || true
	rm -rf "$BIN" "$DATA"
}
trap cleanup EXIT

go build -o "$BIN" ./cmd/ctlogd ./cmd/ctfront ./cmd/ctload

A=127.0.0.1:18801
B=127.0.0.1:18802
FRONT=127.0.0.1:18800

"$BIN/ctlogd" -addr "$A" -name "smoke-a" -operator "Google" \
	-data-dir "$DATA/a" -sequence 200ms &
"$BIN/ctlogd" -addr "$B" -name "smoke-b" -operator "Beta" \
	-data-dir "$DATA/b" -sequence 200ms &

wait_http() {
	for _ in $(seq 1 100); do
		if curl -fsS -o /dev/null "$1"; then
			return 0
		fi
		sleep 0.1
	done
	echo "timeout waiting for $1" >&2
	return 1
}
wait_http "http://$A/ct/v1/get-sth"
wait_http "http://$B/ct/v1/get-sth"

# The backends persisted their signing keys on startup; the frontend
# verifies every SCT against them (keyfile keyspec).
"$BIN/ctfront" -addr "$FRONT" \
	-backend "smoke-a,Google,http://$A,keyfile:$DATA/a/key.der,google" \
	-backend "smoke-b,Beta,http://$B,keyfile:$DATA/b/key.der" &
wait_http "http://$FRONT/ctfront/v1/health"

OUT="$DATA/load_smoke.json"
"$BIN/ctload" -target "http://$A" -front "http://$FRONT" \
	-conns 8 -duration 3s -warmup 32 -json "$OUT"

python3 - "$OUT" <<'EOF'
import json, sys

res = json.load(open(sys.argv[1]))
assert res["schema"] == "ctrise/ctload/v1", res["schema"]
classes = res["classes"]
for cls in ("add-chain", "get-sth", "get-entries", "get-proof"):
    c = classes[cls]
    assert c["requests"] > 0, f"{cls}: zero completed requests"
    assert c["errors"] == 0, f"{cls}: {c['errors']} errors"
    assert c["latency"]["p99_ms"] > 0, f"{cls}: empty latency histogram"
print("ctload smoke: %d requests, %d errors, %.0f rps across %d classes"
      % (res["requests"], res["errors"], res["throughput_rps"], len(classes)))
EOF

# Proof-heavy mix: most requests are get-proof-by-hash/get-sth-consistency
# against the published-snapshot proof path, with a write trickle so the
# sequencer keeps publishing new heads underneath the readers. Any proof
# error here (wrong status, starved request) fails the smoke.
PROOF_OUT="$DATA/load_smoke_proof.json"
"$BIN/ctload" -target "http://$A" -front "http://$FRONT" \
	-conns 8 -duration 3s -warmup 32 -mix "add=1,sth=1,entries=1,proof=8" \
	-json "$PROOF_OUT"

python3 - "$PROOF_OUT" <<'EOF'
import json, sys

res = json.load(open(sys.argv[1]))
proof = res["classes"]["get-proof"]
assert proof["requests"] > 0, "proof-heavy mix completed zero proof requests"
assert proof["errors"] == 0, f"proof-heavy mix: {proof['errors']} proof errors"
for cls, c in res["classes"].items():
    assert c["errors"] == 0, f"proof-heavy mix {cls}: {c['errors']} errors"
print("proof-heavy smoke: %d proof requests, zero errors, proof p99 %.1fms"
      % (proof["requests"], proof["latency"]["p99_ms"]))
EOF

python3 - <<'EOF'
import json

bench = json.load(open("BENCH_load.json"))
assert bench["schema"] == "ctrise/bench-load/v1", bench["schema"]
assert "regenerate_with" in bench
for section in ("unchunked", "chunked"):
    s = bench["reader_starvation"][section]
    assert s["integrate_ms"] > 0
    for group in ("classes", "idle_classes"):
        for cls, c in s[group].items():
            assert c["requests"] > 0, f"{section}/{group}/{cls}: zero requests"
            assert c["latency"]["p99_ms"] > 0, f"{section}/{group}/{cls}: empty histogram"
for cls, c in bench["workload"]["classes"].items():
    assert c["requests"] > 0, f"workload/{cls}: zero requests"
chunked = bench["reader_starvation"]["chunked"]
print("BENCH_load.json well-formed: unchunked proof p99 %.1fms vs chunked %.1fms (idle %.1fms)"
      % (bench["reader_starvation"]["unchunked"]["classes"]["get-proof"]["latency"]["p99_ms"],
         chunked["classes"]["get-proof"]["latency"]["p99_ms"],
         chunked["idle_classes"]["get-proof"]["latency"]["p99_ms"]))
EOF
