// Package ctrise is a full reproduction, in pure-stdlib Go, of the
// measurement study "The Rise of Certificate Transparency and Its
// Implications on the Internet Ecosystem" (Scheitle et al., IMC 2018).
//
// The repository contains every system the paper runs on: an RFC 6962
// Certificate Transparency log (Merkle tree, SCT issuance, ct/v1 HTTP
// API), a log client and monitor, a CA engine with the paper's four
// misissuance fault modes, a DNS substrate (wire format, authoritative
// UDP server with EDNS Client Subnet, simulated global DNS), a Public
// Suffix List matcher, an AS/routing registry, passive and active TLS
// measurement pipelines, the Section 4 subdomain-enumeration methodology,
// the Section 5 phishing detector, and the Section 6 CT honeypot with a
// calibrated attacker population.
//
// On top of the logs sits a multi-log submission frontend
// (internal/ctfront, served standalone by cmd/ctfront): one endpoint
// that fans add-chain/add-pre-chain submissions out to a pool of
// backend logs — in-process or remote over ct/v1 — until the collected
// SCTs satisfy the Chrome CT policy (internal/policy: minimum count by
// certificate lifetime, operator diversity, one Google and one
// non-Google log). Backend selection is a deterministic, seed-derived
// ranking, failures re-plan the remaining policy gap onto spares with
// per-backend exponential backoff, and slow backends can be hedged.
// The ecosystem timeline optionally drives all issuance through it
// (ecosystem.Config.UseFrontend) with byte-identical per-log trees at
// any parallelism.
//
// The CT log itself is a two-phase stage → sequence pipeline, the shape
// real logs have: AddChain/AddPreChain hash and sign entirely outside
// the log mutex and stage the accepted entry into a pending batch (the
// SCT is the RFC 6962 promise of integration within the MMD), and a
// sequencer integrates batches into the Merkle tree in canonical
// (timestamp, identity-hash) order — inline at virtual-clock boundaries
// for deterministic experiments (ctlog.Log.Sequence/PublishSTH), or on
// a wall-clock ticker for the standalone server
// (ctlog.Log.RunSequencer, used by cmd/ctlogd). Submission throughput
// under contention is bounded by a few map operations, not by hashing
// or signature work (BenchmarkLogAdd measures both architectures).
//
// Logs are optionally durable (ctlog.Open): an append-only, checksummed
// write-ahead log records every accepted submission before its SCT is
// acknowledged, sequencing fsyncs a seal at each batch boundary,
// publication fsyncs the signed head before readers see it, and
// periodic atomic snapshots bound recovery to the WAL tail — so a
// ctlogd killed mid-sequencing restarts (cmd/ctlogd -data-dir, signing
// key persisted alongside) to the identical STH and entries, verified
// by a kill-at-every-byte-offset crash harness. The ecosystem harvest
// rides the same record codec for checkpoints: a killed crawl resumes
// gap-free from per-log entry cursors (Harvest.Checkpoint /
// ecosystem.ResumeHarvest, ctclient.NewMonitorAt for the HTTP side).
//
// The harvest-and-analysis data plane is concurrent and sharded: logs
// expose a lock-free streaming iterator over the immutable prefix below
// the published STH (ctlog.Log.StreamEntries), the harvester fans
// entry-range chunks of every log out to a bounded worker pool that
// builds private partial aggregates over a sharded FQDN-dedup set, and
// the Section 4 census, candidate construction, and massdns-style
// verification all split their inputs into chunks the same way. The
// harvester hands that sharded set to the census zero-copy
// (subenum.RunCensusSet): census workers consume the dedup shards in
// place instead of materializing the corpus into an intermediate map.
// Over HTTP, ctclient.Monitor.StreamEntries mirrors the same bulk
// semantics for remote logs: gap-free pages with a per-request entry
// cap, partial pages (the server clamps oversized ranges to its page
// limit, like production logs) resumed from the first undelivered
// index, and cancellation checked between entries so a canceled harvest
// stops mid-page.
//
// The generation side runs on the same deterministic fan-out layer
// (internal/ecosystem/partition.go). Work is chunked by index ranges
// whose boundaries depend only on input size; every chunk derives a
// private RNG from the base seed and the chunk's identity by
// seed-splitting (splitmix64 over the seed and salts such as day index,
// CA name, or site index — ecosystem.DeriveSeed/NewRand), so a chunk's
// draws never depend on which worker runs it or when. Three pipelines
// are built on it: the Figure 2 traffic replay (tlsmon.Generate)
// generates day chunks into recycled buffers and emits them through an
// ordered merge on the calling goroutine; the issuance timeline
// (ecosystem.World.RunTimeline) runs as a two-stage pipeline — a
// lookahead goroutine plans day d+1's draws and constructs its
// certificates (serial blocks reserved per CA, issuance time passed
// explicitly) while day d's submissions stage into the logs from all
// workers at once, and one deterministic sequence+publish step per log
// closes the day, the sequencer's canonical batch order making every
// log's Merkle tree byte-identical to the sequential replay; and the
// Section 3.3 scan (scanner.BuildPopulation/Scan/DetectInvalidSCTs)
// chunks sites over workers with private statistics partials merged
// additively.
//
// One knob — Parallelism, on ecosystem.Config, experiments.Options,
// tlsmon.GenConfig, scanner.PopConfig, and the subenum configs — bounds
// every fan-out (GOMAXPROCS by default, 1 forces the sequential path);
// every pipeline merges its partials deterministically, so output is
// identical at any setting (the equivalence tests in
// parallel_replay_test.go and parallel_equivalence_test.go assert this
// at parallelism 1, 4, and 13).
//
// Every table and figure of the paper is regenerated by a benchmark in
// bench_test.go and rendered by cmd/ctrise. See README.md for the
// quickstart and the experiment-to-package map, and ARCHITECTURE.md for
// the log's stage → sequence → persist → publish lifecycle, the
// WAL/snapshot crash-consistency contract, and where the submission
// frontend sits.
package ctrise
