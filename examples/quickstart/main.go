// Example quickstart: run a CT log, issue a certificate through a CA with the
// RFC 6962 precertificate flow, and verify both the embedded SCTs and a
// Merkle inclusion proof — the whole trust chain, end to end, over the
// real ct/v1 HTTP API.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"ctrise/internal/ca"
	"ctrise/internal/ctclient"
	"ctrise/internal/ctlog"
	"ctrise/internal/sct"
)

func main() {
	// 1. A log with a real ECDSA P-256 key, served over HTTP.
	signer, err := sct.NewSigner(nil)
	if err != nil {
		log.Fatal(err)
	}
	ctLog, err := ctlog.New(ctlog.Config{Name: "Quickstart Log", Operator: "example", Signer: signer})
	if err != nil {
		log.Fatal(err)
	}
	server := httptest.NewServer(ctLog.Handler())
	defer server.Close()
	fmt.Printf("log %q running at %s (id %s)\n", ctLog.Name(), server.URL, ctLog.LogID())

	// 2. A CA submitting precertificates to that log.
	issuer, err := ca.New(ca.Config{
		Name: "Quickstart CA",
		Org:  "Quickstart",
		Logs: []ca.LogSubmitter{ctLog},
	})
	if err != nil {
		log.Fatal(err)
	}
	issued, err := issuer.Issue(ca.Request{
		Names:     []string{"www.example.org", "example.org"},
		EmbedSCTs: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("issued %v\n", issued.Final)

	// 3. Verify the embedded SCTs against the log key by reconstructing
	// the precertificate TBS from the final certificate.
	verifiers := map[sct.LogID]sct.SCTVerifier{ctLog.LogID(): ctLog.Verifier()}
	res, err := ca.ValidateEmbeddedSCTs(issued.Final, issuer.IssuerKeyHash(), verifiers)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("embedded SCTs: %d total, %d valid, invalid=%v\n", res.Total, res.Valid, res.Invalid())

	// 4. Fetch the STH over HTTP and prove the precertificate's inclusion.
	if _, err := ctLog.PublishSTH(); err != nil {
		log.Fatal(err)
	}
	client := ctclient.New(server.URL, ctLog.Verifier())
	client.HTTPClient = http.DefaultClient
	ctx := context.Background()
	sth, err := client.GetSTH(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("STH: size=%d root=%x...\n", sth.TreeHead.TreeSize, sth.TreeHead.RootHash[:8])

	entries, err := client.GetEntries(ctx, 0, sth.TreeHead.TreeSize-1)
	if err != nil {
		log.Fatal(err)
	}
	for _, e := range entries {
		if err := client.VerifyInclusion(ctx, e, sth); err != nil {
			log.Fatalf("inclusion proof for entry %d failed: %v", e.Index, err)
		}
		fmt.Printf("entry %d (%s): inclusion proof verified\n", e.Index, e.Type)
	}
	fmt.Println("quickstart complete: SCT signatures and Merkle inclusion both verified")
}
