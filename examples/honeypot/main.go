// Example honeypot demonstrates Section 6 live, with real sockets: a honeypot
// subdomain is leaked through a CT log served over HTTP; an attacker
// process streams the log, spots the new name, and resolves it against
// the honeypot's authoritative DNS server over UDP (leaking its EDNS
// Client Subnet); the honeypot's query monitor captures the hit and
// reports the CT-entry-to-first-query latency.
package main

import (
	"context"
	"fmt"
	"log"
	"math/rand"
	"net"
	"net/http/httptest"
	"time"

	"ctrise/internal/ca"
	"ctrise/internal/certs"
	"ctrise/internal/ctclient"
	"ctrise/internal/ctlog"
	"ctrise/internal/dnsmsg"
	"ctrise/internal/dnsname"
	"ctrise/internal/dnssim"
	"ctrise/internal/sct"
)

func main() {
	// --- Honeypot side ---
	signer, err := sct.NewSigner(nil)
	if err != nil {
		log.Fatal(err)
	}
	ctLog, err := ctlog.New(ctlog.Config{Name: "Watched Log", Signer: signer})
	if err != nil {
		log.Fatal(err)
	}
	logServer := httptest.NewServer(ctLog.Handler())
	defer logServer.Close()

	universe := dnssim.NewUniverse()
	zone := dnssim.NewZone("hp.example")
	universe.AddZone(zone)
	dnsServer := dnssim.NewServer(universe)
	hits := make(chan dnssim.QueryEvent, 16)
	dnsServer.OnQuery = func(ev dnssim.QueryEvent) { hits <- ev }
	dnsAddr, err := dnsServer.Start("127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer dnsServer.Close()

	// The honeypot name: random, hard to guess, only ever leaked via CT.
	label := dnsname.RandomLabel(rand.New(rand.NewSource(time.Now().UnixNano())), 12)
	fqdn := label + ".hp.example"
	zone.AddA(fqdn, net.IPv4(198, 51, 100, 42))
	zone.AddAAAA(fqdn, net.ParseIP("2001:db8:77::1"))

	issuer, err := ca.New(ca.Config{Name: "HP CA", Org: "HP CA", Logs: []ca.LogSubmitter{ctLog}})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := issuer.Issue(ca.Request{Names: []string{fqdn}, EmbedSCTs: true}); err != nil {
		log.Fatal(err)
	}
	logged := time.Now()
	if _, err := ctLog.PublishSTH(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("honeypot deployed: %s (leaked only via CT log %s)\n", fqdn, logServer.URL)

	// --- Attacker side: stream the log, resolve anything new ---
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	go func() {
		mon := ctclient.NewMonitor(ctclient.New(logServer.URL, ctLog.Verifier()))
		_ = mon.Stream(ctx, 100*time.Millisecond, func(e *ctlog.Entry) error {
			cert, err := certs.Decode(e.Cert)
			if err != nil {
				return err
			}
			cli := &dnssim.Client{Timeout: 3 * time.Second}
			for _, name := range cert.Names() {
				q := dnsmsg.NewQuery(uint16(e.Index+1), name, dnsmsg.TypeA)
				// The attacker resolves through an open resolver that
				// forwards its client subnet.
				q.EDNS = &dnsmsg.EDNS{ClientSubnet: &dnsmsg.ClientSubnet{
					Family: 1, SourcePrefix: 24, Address: net.IPv4(10, 29, 77, 0),
				}}
				if _, err := cli.Exchange(dnsAddr.String(), q); err != nil {
					return err
				}
			}
			return nil
		})
	}()

	// --- The measurement: how fast does the leak get used? ---
	select {
	case ev := <-hits:
		delta := ev.Time.Sub(logged).Round(time.Millisecond)
		fmt.Printf("first DNS query for %s after %v (type %s, from %s)\n",
			ev.Name, delta, ev.Type, ev.Source)
		if ev.ClientSubnet != nil {
			fmt.Printf("EDNS Client Subnet reveals the scanner's network: %s\n", ev.ClientSubnet)
		}
		fmt.Println("conclusion: CT logs are monitored — the name was never published anywhere else")
	case <-ctx.Done():
		log.Fatal("no query observed: the monitor did not react")
	}
}
