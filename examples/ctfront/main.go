// Example ctfront: submit one certificate through the multi-log
// frontend against two local durable (WAL + snapshot) logs and get back
// a Chrome-CT-policy-compliant SCT bundle — one Google-operated log,
// one independent log — then restart the logs and show the submission
// survived: the reopened logs answer the duplicate with the original
// SCT timestamp.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"ctrise/internal/ca"
	"ctrise/internal/ctfront"
	"ctrise/internal/ctlog"
	"ctrise/internal/policy"
	"ctrise/internal/sct"
)

func main() {
	dir, err := os.MkdirTemp("", "ctfront-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// 1. Two durable logs: every accepted submission is fsynced to a
	// write-ahead log before its SCT is returned, so the promise
	// survives a crash. One log is Google-operated, one independent —
	// the minimum diversity the Chrome policy accepts.
	openLogs := func() (google, indie *ctlog.Log) {
		var logs [2]*ctlog.Log
		for i, name := range []string{"Google Example log", "Indie Example log"} {
			l, err := ctlog.Open(filepath.Join(dir, fmt.Sprintf("log-%d", i)), ctlog.Config{
				Name:     name,
				Operator: []string{"Google", "Indie"}[i],
				Signer:   sct.NewFastSigner(name),
			})
			if err != nil {
				log.Fatal(err)
			}
			logs[i] = l
		}
		return logs[0], logs[1]
	}
	google, indie := openLogs()

	// 2. The frontend over both, with their policy metadata.
	newFrontend := func(google, indie *ctlog.Log) *ctfront.Frontend {
		front, err := ctfront.New(ctfront.Config{
			Backends: []ctfront.BackendSpec{
				{Backend: ctfront.LocalLog{Log: google}, Operator: "Google", GoogleOperated: true},
				{Backend: ctfront.LocalLog{Log: indie}, Operator: "Indie"},
			},
			Seed: 2018,
		})
		if err != nil {
			log.Fatal(err)
		}
		return front
	}
	front := newFrontend(google, indie)

	// 3. A CA prepares a precertificate; the frontend fans it out until
	// the SCT set is compliant.
	issuer, err := ca.New(ca.Config{Name: "Example CA", Org: "Example", Logs: []ca.LogSubmitter{google}})
	if err != nil {
		log.Fatal(err)
	}
	prep, err := issuer.Prepare(ca.Request{Names: []string{"www.example.org", "example.org"}, EmbedSCTs: true})
	if err != nil {
		log.Fatal(err)
	}
	bundle, err := front.AddPreChain(context.Background(), prep.IssuerKeyHash(), prep.TBS())
	if err != nil {
		log.Fatal(err)
	}

	// 4. The bundle satisfies the policy the paper's Section 2 measures.
	lifetime := 90 * 24 * time.Hour
	cands := make([]policy.Candidate, len(bundle.SCTs))
	for i, s := range bundle.SCTs {
		cands[i] = policy.Candidate{Name: s.LogName, Operator: s.Operator, GoogleOperated: s.Operator == "Google"}
		fmt.Printf("SCT from %-20s (operator %-6s) timestamp %d\n", s.LogName, s.Operator, s.SCT.Timestamp)
	}
	fmt.Printf("policy compliant for a 90-day certificate: %v\n", policy.SetCompliant(cands, lifetime))

	// 5. Restart both logs. The WAL replay restores the submissions, so
	// resubmitting the same precertificate returns the original SCT
	// timestamps — the promise held across the restart.
	if err := google.Close(); err != nil {
		log.Fatal(err)
	}
	if err := indie.Close(); err != nil {
		log.Fatal(err)
	}
	google, indie = openLogs()
	front = newFrontend(google, indie)
	again, err := front.AddPreChain(context.Background(), prep.IssuerKeyHash(), prep.TBS())
	if err != nil {
		log.Fatal(err)
	}
	for i, s := range again.SCTs {
		match := s.SCT.Timestamp == bundle.SCTs[i].SCT.Timestamp
		fmt.Printf("after restart, %-20s re-answered with original timestamp: %v\n", s.LogName, match)
		if !match {
			log.Fatalf("restart lost the original SCT for %s", s.LogName)
		}
	}
}
