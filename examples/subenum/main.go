// Example subenum demonstrates the Section 4 pipeline on a small synthetic world:
// a CT name corpus is parsed into a subdomain-label census (Table 2),
// candidate FQDNs are constructed from frequent labels, and a
// massdns-style verifier with pseudorandom control names separates real
// subdomains from wildcard-zone noise.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"net"

	"ctrise/internal/asn"
	"ctrise/internal/dnssim"
	"ctrise/internal/psl"
	"ctrise/internal/subenum"
)

func main() {
	list := psl.Default()

	// A toy CT corpus: names extracted from certificates.
	corpus := map[string]struct{}{}
	rng := rand.New(rand.NewSource(7))
	labels := []string{"www", "mail", "webmail", "api", "dev"}
	for i := 0; i < 200; i++ {
		domain := fmt.Sprintf("site%03d.de", i)
		corpus[domain] = struct{}{}
		for _, l := range labels {
			if rng.Float64() < map[string]float64{"www": 0.95, "mail": 0.3, "webmail": 0.15, "api": 0.1, "dev": 0.1}[l] {
				corpus[l+"."+domain] = struct{}{}
			}
		}
	}

	census := subenum.RunCensus(corpus, list)
	fmt.Println("Top subdomain labels in the corpus (Table 2 shape):")
	for i, kv := range census.Table2(5) {
		fmt.Printf("  %d. %-8s %d\n", i+1, kv.Key, kv.Count)
	}

	// The simulated DNS: some domains exist with extra names the corpus
	// doesn't know; some are wildcard zones that answer anything.
	universe := dnssim.NewUniverse()
	knownDomains := map[string][]string{"de": nil}
	for i := 0; i < 300; i++ {
		domain := fmt.Sprintf("site%03d.de", i)
		knownDomains["de"] = append(knownDomains["de"], domain)
		z := dnssim.NewZone(domain)
		ip := net.IPv4(192, 0, 2, byte(i))
		if rng.Float64() < 0.25 {
			z.DefaultA = ip // parked: answers any name
		} else {
			z.AddA(domain, ip)
			for _, l := range labels {
				if rng.Float64() < 0.2 {
					z.AddA(l+"."+domain, ip)
				}
			}
		}
		universe.AddZone(z)
	}

	candidates := subenum.Construct(census, knownDomains, subenum.ConstructConfig{
		MinLabelCount: 5,
		SkipSuffixes:  map[string]bool{}, // keep .de in this demo
	})
	fmt.Printf("\nconstructed %d candidate FQDNs from %d frequent labels\n",
		len(candidates), len(census.Table2(100)))

	res := subenum.Verify(candidates, universe, asn.DefaultRegistry(), subenum.VerifyConfig{Seed: 1})
	fmt.Printf("answers to test names:      %d\n", res.TestAnswers)
	fmt.Printf("answers to control names:   %d (wildcard zones)\n", res.ControlAnswers)
	fmt.Printf("new, verified FQDNs:        %d\n", len(res.NewFQDNs))
	if len(res.NewFQDNs) == 0 {
		log.Fatal("expected discoveries")
	}
	fmt.Printf("examples: %v\n", res.NewFQDNs[:min(5, len(res.NewFQDNs))])
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
