// Example phishhunt demonstrates Section 5 as a live pipeline: a CertStream-style
// monitor tails a CT log while a "phisher" obtains certificates for
// lookalike domains; the detector flags them within one poll interval —
// exactly the defensive monitoring the paper proposes.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"
	"time"

	"ctrise/internal/ca"
	"ctrise/internal/certs"
	"ctrise/internal/ctclient"
	"ctrise/internal/ctlog"
	"ctrise/internal/phish"
	"ctrise/internal/sct"
)

func main() {
	signer, err := sct.NewSigner(nil)
	if err != nil {
		log.Fatal(err)
	}
	ctLog, err := ctlog.New(ctlog.Config{Name: "Hunted Log", Signer: signer})
	if err != nil {
		log.Fatal(err)
	}
	server := httptest.NewServer(ctLog.Handler())
	defer server.Close()

	issuer, err := ca.New(ca.Config{Name: "Free CA", Org: "Free CA", Logs: []ca.LogSubmitter{ctLog}})
	if err != nil {
		log.Fatal(err)
	}

	// The phisher orders certificates for lookalike names, mixed with
	// legitimate traffic.
	orders := []string{
		"www.example.org",
		"appleid.apple.com-7etr6eti.gq",
		"blog.innocent.de",
		"paypal.com-account-security.money",
		"www-hotmail-login.live",
		"accounts.google.co.am",
		"www.ebay.co.uk.dll7.bid",
		"shop.legit-store.com",
	}
	for _, name := range orders {
		if _, err := issuer.Issue(ca.Request{Names: []string{name}, EmbedSCTs: true}); err != nil {
			log.Fatal(err)
		}
	}
	if _, err := ctLog.PublishSTH(); err != nil {
		log.Fatal(err)
	}

	// The defender: stream the log, check every name.
	detector := phish.NewDetector()
	client := ctclient.New(server.URL, ctLog.Verifier())
	mon := ctclient.NewMonitor(client)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	flagged := 0
	err = mon.Poll(ctx, func(e *ctlog.Entry) error {
		cert, err := certs.Decode(e.Cert)
		if err != nil {
			return err
		}
		seen := map[string]bool{}
		for _, name := range cert.Names() {
			if seen[name] {
				continue // CN usually repeats the first SAN
			}
			seen[name] = true
			for _, f := range detector.Check(name) {
				flagged++
				fmt.Printf("ALERT entry=%d service=%-9s %s\n", e.Index, f.Service, f.FQDN)
			}
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nscanned %d entries, flagged %d phishing domains\n", mon.EntriesSeen(), flagged)
	if flagged < 5 {
		log.Fatal("expected all five lookalikes flagged")
	}
}
