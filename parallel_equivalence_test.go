package ctrise_test

import (
	"reflect"
	"testing"

	"ctrise/internal/ecosystem"
	"ctrise/internal/psl"
	"ctrise/internal/subenum"
)

// The concurrent sharded harvest-and-analysis pipeline must be invisible
// in the output: harvesting and parsing the same world with Parallelism 1
// and Parallelism 8 yields identical totals, day series, heatmaps, name
// sets, and Table 2 rows. Running this test under -race also exercises
// the concurrent crawl workers, the sharded FQDN-dedup set, and the
// census chunk workers.
func TestParallelPipelineEquivalence(t *testing.T) {
	w, err := ecosystem.New(ecosystem.Config{
		Seed:          42,
		Scale:         1e-4,
		TimelineStart: ecosystem.Date(2018, 2, 1),
		TimelineEnd:   ecosystem.Date(2018, 4, 20),
		NumDomains:    2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RunTimeline(nil); err != nil {
		t.Fatal(err)
	}
	heatFrom, heatTo := ecosystem.Date(2018, 4, 1), ecosystem.Date(2018, 5, 1)

	seq, err := w.HarvestLogsParallel(heatFrom, heatTo, 1)
	if err != nil {
		t.Fatal(err)
	}
	par, err := w.HarvestLogsParallel(heatFrom, heatTo, 8)
	if err != nil {
		t.Fatal(err)
	}

	// Totals.
	if seq.TotalPrecerts == 0 {
		t.Fatal("sequential harvest saw no precerts")
	}
	if seq.TotalPrecerts != par.TotalPrecerts || seq.TotalFinal != par.TotalFinal {
		t.Fatalf("totals differ: seq=%d/%d par=%d/%d",
			seq.TotalPrecerts, seq.TotalFinal, par.TotalPrecerts, par.TotalFinal)
	}
	// Name sets.
	if len(seq.Names()) == 0 || !reflect.DeepEqual(seq.Names(), par.Names()) {
		t.Fatalf("name sets differ: seq=%d par=%d", len(seq.Names()), len(par.Names()))
	}
	// Day series, cell by cell.
	seqDays, seqOrgs, seqTable := seq.PrecertsByOrgDay.Table()
	parDays, parOrgs, parTable := par.PrecertsByOrgDay.Table()
	if !reflect.DeepEqual(seqDays, parDays) || !reflect.DeepEqual(seqOrgs, parOrgs) {
		t.Fatalf("series axes differ")
	}
	if !reflect.DeepEqual(seqTable, parTable) {
		t.Fatal("day series values differ")
	}
	// Figure aggregations built on the series.
	d1, c1 := seq.CumulativeByOrg()
	d2, c2 := par.CumulativeByOrg()
	if !reflect.DeepEqual(d1, d2) || !reflect.DeepEqual(c1, c2) {
		t.Fatal("cumulative series differ")
	}
	_, s1 := seq.DailyShareByOrg()
	_, s2 := par.DailyShareByOrg()
	if !reflect.DeepEqual(s1, s2) {
		t.Fatal("daily shares differ")
	}
	// Heatmap counters (Figure 1c).
	if len(seq.PrecertsByOrgLog) == 0 || len(seq.PrecertsByOrgLog) != len(par.PrecertsByOrgLog) {
		t.Fatalf("heatmap org sets differ: %d vs %d", len(seq.PrecertsByOrgLog), len(par.PrecertsByOrgLog))
	}
	for org, sc := range seq.PrecertsByOrgLog {
		pc := par.PrecertsByOrgLog[org]
		if pc == nil || !reflect.DeepEqual(sc.Snapshot(), pc.Snapshot()) {
			t.Fatalf("heatmap differs for org %q", org)
		}
	}

	// Census over the harvested corpus: Table 2 and friends. The
	// sequential side materializes a map; the parallel side consumes the
	// sharded set zero-copy — both must agree.
	list := psl.Default()
	seqCensus := subenum.RunCensusParallel(seq.Names(), list, 1)
	parCensus := subenum.RunCensusSet(par.NameSet, list, 8)
	if seqCensus.ValidFQDNs == 0 {
		t.Fatal("census saw no valid FQDNs")
	}
	if seqCensus.ValidFQDNs != parCensus.ValidFQDNs || seqCensus.Rejected != parCensus.Rejected {
		t.Fatal("census totals differ")
	}
	if !reflect.DeepEqual(seqCensus.Labels.Snapshot(), parCensus.Labels.Snapshot()) {
		t.Fatal("census label counts differ")
	}
	if !reflect.DeepEqual(seqCensus.DomainsBySuffix, parCensus.DomainsBySuffix) {
		t.Fatal("census domain lists differ")
	}
	if !reflect.DeepEqual(seqCensus.Table2(20), parCensus.Table2(20)) {
		t.Fatal("Table 2 rows differ")
	}
}
