module ctrise

go 1.24
