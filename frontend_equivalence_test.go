package ctrise_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"ctrise/internal/ca"
	"ctrise/internal/ecosystem"
	"ctrise/internal/policy"
	"ctrise/internal/sct"
)

// TestFrontendTimelineParallelEquivalence proves the acceptance
// criterion of the multi-log frontend: timeline issuance routed through
// ctfront (Config.UseFrontend) yields byte-identical per-log STH
// trajectories — size and root at every day boundary, in day order —
// at parallelism 1, 4, and 13. Frontend routing is a pure function of
// (seed, submission bytes, backend name), so neither the worker count
// nor scheduling may move a single entry between logs or across a day
// boundary.
func TestFrontendTimelineParallelEquivalence(t *testing.T) {
	type sthState struct {
		Size uint64
		Root [32]byte
	}
	build := func(p int) (map[string][]sthState, uint64) {
		w, err := ecosystem.New(ecosystem.Config{
			Seed:          42,
			Scale:         1e-4,
			TimelineStart: ecosystem.Date(2018, 2, 20),
			TimelineEnd:   ecosystem.Date(2018, 4, 10),
			NumDomains:    1500,
			Parallelism:   p,
			UseFrontend:   true,
		})
		if err != nil {
			t.Fatal(err)
		}
		trajectory := make(map[string][]sthState, len(w.Logs))
		if err := w.RunTimeline(func(d time.Time) {
			for _, name := range w.LogNames {
				sth := w.Logs[name].STH()
				trajectory[name] = append(trajectory[name], sthState{
					Size: sth.TreeHead.TreeSize,
					Root: sth.TreeHead.RootHash,
				})
			}
		}); err != nil {
			t.Fatal(err)
		}
		// Load-aware routing must actually be engaged — the equivalence
		// below proves weights commit deterministically, not that they
		// were never computed.
		if w.Frontend.WeightCommits() == 0 {
			t.Fatal("frontend never committed routing weights during the timeline")
		}
		return trajectory, w.TotalEntries()
	}

	want, wantTotal := build(1)
	if wantTotal == 0 {
		t.Fatal("frontend timeline issued nothing")
	}
	// The frontend must have spread load: a 90-day cert needs one
	// Google and one non-Google log, so both groups must hold entries.
	var google, nonGoogle uint64
	for name, traj := range want {
		final := traj[len(traj)-1].Size
		switch name {
		case ecosystem.LogGooglePilot, ecosystem.LogGoogleRocketeer, ecosystem.LogGoogleSkydiver,
			ecosystem.LogGoogleAviator, ecosystem.LogGoogleIcarus:
			google += final
		default:
			nonGoogle += final
		}
	}
	if google == 0 || nonGoogle == 0 {
		t.Fatalf("frontend routing is not policy-shaped: google=%d non-google=%d", google, nonGoogle)
	}
	if google+nonGoogle != wantTotal {
		t.Fatalf("trajectory sizes (%d) disagree with TotalEntries (%d)", google+nonGoogle, wantTotal)
	}

	for _, p := range []int{4, 13} {
		got, gotTotal := build(p)
		if gotTotal != wantTotal {
			t.Fatalf("parallelism %d issued %d total entries, want %d", p, gotTotal, wantTotal)
		}
		if !reflect.DeepEqual(want, got) {
			for name := range want {
				if !reflect.DeepEqual(want[name], got[name]) {
					t.Fatalf("parallelism %d: %s STH trajectory diverges", p, name)
				}
			}
			t.Fatalf("parallelism %d: trajectories diverge", p)
		}
	}
}

// TestFrontendDurableTimelineMatchesInMemory routes the timeline
// through the frontend onto durable (WAL + snapshot) logs and proves
// the per-day STH trajectories are byte-identical to the in-memory
// frontend run: the fan-out, the staged sequencer, and the WAL path
// compose without disturbing determinism.
func TestFrontendDurableTimelineMatchesInMemory(t *testing.T) {
	type sthState struct {
		Size uint64
		Root [32]byte
	}
	build := func(dataDir string) map[string][]sthState {
		w, err := ecosystem.New(ecosystem.Config{
			Seed:          42,
			Scale:         1e-4,
			TimelineStart: ecosystem.Date(2018, 3, 1),
			TimelineEnd:   ecosystem.Date(2018, 3, 20),
			NumDomains:    800,
			Parallelism:   4,
			UseFrontend:   true,
			DataDir:       dataDir,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer func() {
			if err := w.Close(); err != nil {
				t.Fatal(err)
			}
		}()
		trajectory := make(map[string][]sthState, len(w.Logs))
		if err := w.RunTimeline(func(d time.Time) {
			for _, name := range w.LogNames {
				sth := w.Logs[name].STH()
				trajectory[name] = append(trajectory[name], sthState{
					Size: sth.TreeHead.TreeSize,
					Root: sth.TreeHead.RootHash,
				})
			}
		}); err != nil {
			t.Fatal(err)
		}
		return trajectory
	}
	mem := build("")
	durable := build(t.TempDir())
	if !reflect.DeepEqual(mem, durable) {
		t.Fatal("durable frontend trajectories diverge from in-memory")
	}
}

// TestFrontendTimelineBundlesCompliant replays a short timeline through
// the frontend and spot-checks that direct frontend submissions against
// the same world return policy-compliant bundles built from the world's
// Table 1 logs.
func TestFrontendTimelineBundlesCompliant(t *testing.T) {
	w, err := ecosystem.New(ecosystem.Config{
		Seed:          7,
		Scale:         1e-4,
		TimelineStart: ecosystem.Date(2018, 3, 1),
		TimelineEnd:   ecosystem.Date(2018, 3, 15),
		NumDomains:    500,
		Parallelism:   4,
		UseFrontend:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RunTimeline(nil); err != nil {
		t.Fatal(err)
	}
	// Submit fresh precertificates straight at the frontend and check
	// each bundle against the policy rules and each SCT against its
	// log's verifier — the same checks the paper's detector runs.
	caInst := w.CAs[w.Specs[0].Org]
	for i := 0; i < 5; i++ {
		prep, err := caInst.Prepare(ca.Request{
			Names:     []string{w.Domains[i].Name},
			EmbedSCTs: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		bundle, err := w.Frontend.AddPreChain(context.Background(), prep.IssuerKeyHash(), prep.TBS())
		if err != nil {
			t.Fatal(err)
		}
		cands := make([]policy.Candidate, len(bundle.SCTs))
		entry := sct.PrecertEntry(prep.IssuerKeyHash(), prep.TBS())
		for j, s := range bundle.SCTs {
			l, ok := w.Logs[s.LogName]
			if !ok {
				t.Fatalf("bundle SCT from unknown log %q", s.LogName)
			}
			if err := l.Verifier().VerifySCT(s.SCT, entry); err != nil {
				t.Fatalf("SCT from %s does not verify: %v", s.LogName, err)
			}
			cands[j] = policy.Candidate{
				Name:           s.LogName,
				Operator:       s.Operator,
				GoogleOperated: l.Operator() == "Google",
			}
		}
		if !policy.SetCompliant(cands, 90*24*time.Hour) {
			t.Fatalf("bundle %v not policy compliant", bundle.LogNames())
		}
	}
}
