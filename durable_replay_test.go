package ctrise_test

import (
	"bytes"
	"reflect"
	"testing"
	"time"

	"ctrise/internal/ctlog"
	"ctrise/internal/ecosystem"
	"ctrise/internal/sct"
)

// TestRunTimelineDurableEquivalence proves the durability layer is
// invisible to the replay semantics: a full RunTimeline over durable
// (WAL + snapshot) logs produces the byte-identical per-day STH
// trajectory — size and root at every day boundary, for every log — as
// the in-memory replay, at parallelism 1, 4, and 13. Then every log is
// closed and reopened from its data directory and must serve the same
// final STH and entry bytes, proving the persisted state is the state.
func TestRunTimelineDurableEquivalence(t *testing.T) {
	testTimelineEquivalence(t, 0, []int{1, 4, 13})
}

// TestRunTimelineTiledEquivalence re-runs the durable replay with a
// deliberately small sealed-tile span, so every log crosses many seal
// boundaries mid-timeline: entries migrate from the WAL-backed resident
// tail into immutable tile files (and the WAL is truncated behind them)
// while the replay is still appending. The trajectory and the
// reopened-from-tiles read surface must stay byte-identical to the
// in-memory run — sealing may move bytes, never change them.
func TestRunTimelineTiledEquivalence(t *testing.T) {
	testTimelineEquivalence(t, 32, []int{1, 13})
}

func testTimelineEquivalence(t *testing.T, tileSpan int, parallelisms []int) {
	type sthState struct {
		Size uint64
		Root [32]byte
	}
	cfg := func(p int, dataDir string) ecosystem.Config {
		return ecosystem.Config{
			Seed:          42,
			Scale:         1e-4,
			TimelineStart: ecosystem.Date(2018, 3, 10),
			TimelineEnd:   ecosystem.Date(2018, 4, 10),
			NumDomains:    1200,
			Parallelism:   p,
			DataDir:       dataDir,
			TileSpan:      tileSpan,
		}
	}
	build := func(p int, dataDir string) (*ecosystem.World, map[string][]sthState, []time.Time) {
		w, err := ecosystem.New(cfg(p, dataDir))
		if err != nil {
			t.Fatal(err)
		}
		var days []time.Time
		trajectory := make(map[string][]sthState, len(w.Logs))
		if err := w.RunTimeline(func(d time.Time) {
			days = append(days, d)
			for _, name := range w.LogNames {
				sth := w.Logs[name].STH()
				trajectory[name] = append(trajectory[name], sthState{
					Size: sth.TreeHead.TreeSize,
					Root: sth.TreeHead.RootHash,
				})
			}
		}); err != nil {
			t.Fatal(err)
		}
		return w, trajectory, days
	}

	memWorld, wantTraj, wantDays := build(1, "")
	var total uint64
	for _, states := range wantTraj {
		total += states[len(states)-1].Size
	}
	if total == 0 {
		t.Fatal("in-memory replay produced no entries")
	}

	for _, p := range parallelisms {
		dataDir := t.TempDir()
		w, gotTraj, gotDays := build(p, dataDir)
		if !reflect.DeepEqual(wantDays, gotDays) {
			t.Fatalf("durable p=%d: day ordering differs", p)
		}
		if !reflect.DeepEqual(wantTraj, gotTraj) {
			t.Fatalf("durable p=%d: per-day STH trajectory differs from in-memory", p)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("durable p=%d: close: %v", p, err)
		}

		// Reopen every log from disk: the recovered state must serve the
		// same STH and the same entry bytes as the in-memory replay.
		reopened, err := ecosystem.New(cfg(p, dataDir))
		if err != nil {
			t.Fatalf("durable p=%d: reopen: %v", p, err)
		}
		var sealedLogs int
		for _, name := range reopened.LogNames {
			memLog, reLog := memWorld.Logs[name], reopened.Logs[name]
			memSTH, reSTH := memLog.STH(), reLog.STH()
			if memSTH.TreeHead.TreeSize != reSTH.TreeHead.TreeSize || memSTH.TreeHead.RootHash != reSTH.TreeHead.RootHash {
				t.Fatalf("durable p=%d: %s reopened STH differs: size %d/%d", p, name, reSTH.TreeHead.TreeSize, memSTH.TreeHead.TreeSize)
			}
			if reLog.PendingCount() != 0 {
				t.Fatalf("durable p=%d: %s reopened with %d staged entries", p, name, reLog.PendingCount())
			}
			if reLog.TiledThrough() > 0 {
				sealedLogs++
			}
			size := memSTH.TreeHead.TreeSize
			if size == 0 {
				continue
			}
			// Compare a spread of entries byte-for-byte (full comparison
			// per log would be O(total entries) × 3 parallelisms).
			for _, idx := range []uint64{0, size / 3, size / 2, size - 1} {
				me := mustEntry(t, memLog, idx)
				re := mustEntry(t, reLog, idx)
				ml, err1 := me.MerkleTreeLeaf()
				rl, err2 := re.MerkleTreeLeaf()
				if err1 != nil || err2 != nil {
					t.Fatal(err1, err2)
				}
				if !bytes.Equal(ml, rl) {
					t.Fatalf("durable p=%d: %s entry %d differs after reopen", p, name, idx)
				}
			}
		}
		if tileSpan > 0 && sealedLogs == 0 {
			t.Fatalf("durable p=%d: span %d replay sealed no tiles anywhere — the tiled path was not exercised", p, tileSpan)
		}
		if err := reopened.Close(); err != nil {
			t.Fatal(err)
		}
	}

	// The per-day trajectories must also be verifiable: spot-check that
	// a recovered log's STH verifies under the log's (deterministic
	// fast-signer) identity, i.e. reopening preserved signatures too.
	name := memWorld.LogNames[0]
	sth := memWorld.Logs[name].STH()
	verifier := sct.NewFastSigner(name).Verifier()
	if err := verifier.VerifyTreeHead(sth.TreeHead, sth.Sig); err != nil {
		t.Fatalf("STH verification: %v", err)
	}
}

func mustEntry(t *testing.T, l *ctlog.Log, idx uint64) *ctlog.Entry {
	t.Helper()
	es, err := l.GetEntries(idx, idx)
	if err != nil {
		t.Fatal(err)
	}
	return es[0]
}
