// Command ctmon runs an always-on multi-log CT auditor: it follows every
// configured log concurrently, verifies each STH signature and the
// consistency proof linking it to the previously verified head, persists
// the verified-STH chain so restarts resume instead of re-verifying,
// spot-checks inclusion proofs for streamed entries, and cross-checks
// tree heads with peer auditors over gossip to detect split views. Typed
// alerts (fork, rollback, bad-signature, mmd-violation, equivocation,
// bad-entry) are printed as they fire and exported as counters.
//
// Usage:
//
//	ctmon -log "name,url,KEYSPEC" [-log ...]
//	      [-state-dir DIR] [-interval 10s] [-mmd 24h]
//	      [-addr 127.0.0.1:8791] [-peer http://host:port ...]
//	      [-print-entries]
//
// Every -log flag adds one log to follow. KEYSPEC names the log's public
// key so remote audits are cryptographic by default — there is no
// unverified mode:
//
//	fast             test-codec verifier keyed by the log name (logs
//	                 signed with the deterministic FastSigner harness)
//	pubkey:BASE64    base64 standard-encoded DER PKIX ECDSA P-256 key
//	keyfile:PATH     file containing the DER PKIX key (e.g. written by
//	                 ctlogd's key bootstrap)
//
// -addr serves GET /metrics (Prometheus text format: per-log verified
// tree size, lag, throughput, and per-class alert counters) and
// GET /gossip/v1/sths (this auditor's verified heads, for peers). Each
// -peer URL names another auditor's base address to cross-check against
// every interval.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ctrise/internal/auditor"
	"ctrise/internal/certs"
	"ctrise/internal/ctclient"
	"ctrise/internal/ctlog"
	"ctrise/internal/sct"
)

// multiFlag collects a repeatable string flag.
type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, " ") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var logSpecs, peers multiFlag
	flag.Var(&logSpecs, "log", `log to audit as "name,url,KEYSPEC" (repeatable)`)
	flag.Var(&peers, "peer", "peer auditor base URL to cross-check against (repeatable)")
	stateDir := flag.String("state-dir", "", "directory persisting verified-STH chains; empty = in-memory only")
	interval := flag.Duration("interval", 10*time.Second, "poll and gossip interval")
	mmd := flag.Duration("mmd", 24*time.Hour, "maximum merge delay assumed for all logs")
	addr := flag.String("addr", "127.0.0.1:8791", "listen address for /metrics and /gossip/v1/sths")
	printEntries := flag.Bool("print-entries", false, "print every streamed entry's DNS names (CertStream-style)")
	flag.Parse()
	if len(logSpecs) == 0 {
		log.Fatal(`ctmon: at least one -log "name,url,KEYSPEC" is required`)
	}

	cfg := auditor.Config{
		StateDir: *stateDir,
		OnAlert: func(a auditor.Alert) {
			fmt.Printf("ALERT %s\n", a)
		},
	}
	if *printEntries {
		cfg.OnEntry = func(logName string, e *ctlog.Entry) {
			fmt.Printf("%s log=%s idx=%d type=%s names=%s\n",
				time.UnixMilli(int64(e.Timestamp)).UTC().Format(time.RFC3339),
				logName, e.Index, e.Type, strings.Join(entryNames(e), ","))
		}
	}
	for _, spec := range logSpecs {
		lc, err := parseLogSpec(spec, *mmd)
		if err != nil {
			log.Fatalf("ctmon: -log %q: %v", spec, err)
		}
		cfg.Logs = append(cfg.Logs, lc)
	}
	a, err := auditor.New(cfg)
	if err != nil {
		log.Fatalf("ctmon: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	mux := http.NewServeMux()
	mux.Handle("/metrics", a.MetricsHandler())
	mux.Handle("/gossip/", a.GossipHandler())
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, _ *http.Request) {
		for _, lc := range cfg.Logs {
			if sth, ok := a.VerifiedSTH(lc.Name); ok {
				fmt.Fprintf(w, "%s: verified size %d\n", lc.Name, sth.TreeHead.TreeSize)
			} else {
				fmt.Fprintf(w, "%s: nothing verified yet\n", lc.Name)
			}
		}
	})
	server := &http.Server{Addr: *addr, Handler: mux}
	httpDone := make(chan error, 1)
	go func() { httpDone <- server.ListenAndServe() }()

	// The gossip loop runs beside the poll loop: each tick fetches every
	// peer's verified heads and cross-checks them against our own chain.
	// Peer transport errors are operational noise (logged, retried next
	// tick); detected split views land in the alert stream like any
	// other misbehavior.
	if len(peers) > 0 {
		go func() {
			tick := time.NewTicker(*interval)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					for _, p := range peers {
						if err := a.CrossCheckPeer(ctx, nil, strings.TrimSuffix(p, "/")); err != nil && ctx.Err() == nil {
							log.Printf("ctmon: gossip %s: %v", p, err)
						}
					}
				}
			}
		}()
	}

	fmt.Fprintf(os.Stderr, "ctmon: auditing %d log(s) every %v, serving http://%s/metrics (%d gossip peer(s))\n",
		len(cfg.Logs), *interval, *addr, len(peers))

	runDone := make(chan error, 1)
	go func() { runDone <- a.Run(ctx, *interval) }()

	select {
	case err := <-httpDone:
		log.Fatal(err)
	case err := <-runDone:
		if err != nil && !errors.Is(err, context.Canceled) {
			log.Fatalf("ctmon: %v", err)
		}
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		server.Shutdown(shutCtx)
		if err := a.Close(); err != nil {
			log.Fatalf("ctmon: closing auditor: %v", err)
		}
		fmt.Fprintln(os.Stderr, "ctmon: shut down cleanly")
	}
}

// parseLogSpec parses one -log value: "name,url,KEYSPEC". The URL may
// itself contain no commas (ct/v1 base URLs never do).
func parseLogSpec(spec string, mmd time.Duration) (auditor.LogConfig, error) {
	parts := strings.SplitN(spec, ",", 3)
	if len(parts) != 3 || parts[0] == "" || parts[1] == "" || parts[2] == "" {
		return auditor.LogConfig{}, errors.New(`want "name,url,KEYSPEC"`)
	}
	name, url, keySpec := parts[0], parts[1], parts[2]
	verifier, err := sct.ParseKeySpec(name, keySpec)
	if err != nil {
		return auditor.LogConfig{}, err
	}
	return auditor.LogConfig{
		Name:   name,
		Client: ctclient.New(url, verifier),
		MMD:    mmd,
	}, nil
}

// entryNames extracts DNS names from an entry: synthetic-codec certs
// decode directly; raw DER parses via the x509 bridge; anything else is
// reported opaquely.
func entryNames(e *ctlog.Entry) []string {
	if c, err := certs.Decode(e.Cert); err == nil {
		return c.Names()
	}
	if c, err := certs.FromX509(e.Cert); err == nil {
		return c.Names()
	}
	return []string{fmt.Sprintf("<%d opaque bytes>", len(e.Cert))}
}
