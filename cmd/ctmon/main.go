// Command ctmon tails a CT log over the ct/v1 API (CertStream-style),
// printing every new entry's DNS names — the monitoring loop that
// Section 6 shows third parties run against public logs.
//
// Usage:
//
//	ctmon [-url http://127.0.0.1:8764] [-interval 2s]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strings"
	"time"

	"ctrise/internal/certs"
	"ctrise/internal/ctclient"
	"ctrise/internal/ctlog"
)

func main() {
	url := flag.String("url", "http://127.0.0.1:8764", "log base URL")
	interval := flag.Duration("interval", 2*time.Second, "poll interval")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	client := ctclient.New(*url, nil)
	mon := ctclient.NewMonitor(client)
	fmt.Fprintf(os.Stderr, "ctmon: streaming %s every %v\n", *url, *interval)

	err := mon.Stream(ctx, *interval, func(e *ctlog.Entry) error {
		names := entryNames(e)
		fmt.Printf("%s idx=%d type=%s names=%s\n",
			time.UnixMilli(int64(e.Timestamp)).UTC().Format(time.RFC3339),
			e.Index, e.Type, strings.Join(names, ","))
		return nil
	})
	if err != nil && ctx.Err() == nil {
		log.Fatal(err)
	}
}

// entryNames extracts DNS names from an entry: synthetic-codec certs
// decode directly; raw DER parses via the x509 bridge; anything else is
// reported opaquely.
func entryNames(e *ctlog.Entry) []string {
	if c, err := certs.Decode(e.Cert); err == nil {
		return c.Names()
	}
	if c, err := certs.FromX509(e.Cert); err == nil {
		return c.Names()
	}
	return []string{fmt.Sprintf("<%d opaque bytes>", len(e.Cert))}
}
