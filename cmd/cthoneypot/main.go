// Command cthoneypot runs the Section 6 CT honeypot experiment: 11
// random subdomains leaked exclusively through a CT log on the paper's
// schedule, observed by a calibrated attacker population, and summarized
// as Table 4 plus the EDNS-client-subnet and port-scan analyses.
//
// Usage:
//
//	cthoneypot [-seed 2018]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"ctrise/internal/asn"
	"ctrise/internal/experiments"
	"ctrise/internal/honeypot"
)

func main() {
	seed := flag.Int64("seed", 2018, "simulation seed")
	flag.Parse()

	res, err := honeypot.RunExperiment(*seed)
	if err != nil {
		log.Fatal(err)
	}
	t4 := &experiments.Table4Result{Rows: res.Rows, Honeypot: res.Honeypot}
	fmt.Println(t4.RenderTable4())

	fmt.Println("EDNS Client Subnet usage (reveals clients behind Google Public DNS):")
	ecs := res.Honeypot.ECSStats()
	for _, kv := range ecs.TopK(ecs.Len()) {
		fmt.Printf("  %-18s %d queries\n", kv.Key, kv.Count)
	}

	fmt.Println("\nPort scans (SYN probes per source AS):")
	scans := res.Honeypot.PortScanStats()
	var ases []uint32
	for as := range scans {
		ases = append(ases, as)
	}
	sort.Slice(ases, func(i, j int) bool { return len(scans[ases[i]]) > len(scans[ases[j]]) })
	reg := asn.DefaultRegistry()
	for _, as := range ases {
		name := fmt.Sprintf("AS%d", as)
		if a := reg.AS(as); a != nil {
			name = a.String()
		}
		fmt.Printf("  %-28s %d distinct ports\n", name, len(scans[as]))
	}
	fmt.Printf("\ninbound packets to unique IPv6 addresses: %d (CA validation filtered)\n",
		res.Honeypot.IPv6Contacts())
}
