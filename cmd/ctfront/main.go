// Command ctfront runs a standalone multi-log CT submission frontend:
// one HTTP endpoint that fans add-chain/add-pre-chain submissions out
// to a pool of backend logs until the collected SCTs satisfy the
// Chrome CT policy, then returns the whole bundle.
//
// Usage:
//
//	ctfront [-addr 127.0.0.1:8765] [-seed N] [-timeout 10s] [-hedge 0]
//	        [-passes 3] [-retry-pause 250ms]
//	        [-max-inflight 0] [-global-rate 0] [-client-rate 0]
//	        [-retry-after 1s] [-drain-timeout 10s] [-weight-interval 1m]
//	        -backend "name,operator,url,KEYSPEC[,google]" [-backend ...]
//
// Each -backend names one log reachable over the ct/v1 HTTP API (for
// example a cmd/ctlogd instance): a display name, the operator
// organization the policy's diversity rules group by, the base URL, a
// KEYSPEC for the log's SCT signing key, and an optional "google"
// marking a Google-operated log ("google" and the KEYSPEC may appear
// in either order — they are recognized by content). The pool needs at
// least one Google-operated and one non-Google backend for any
// submission to succeed.
//
// KEYSPEC is the same syntax cmd/ctmon uses — "fast" (simulation
// signer), "pubkey:BASE64" (DER SubjectPublicKeyInfo, as served by a
// durable cmd/ctlogd), or "keyfile:PATH" (DER public or EC private
// key, e.g. ctlogd's data-dir key.der) — plus "none", which explicitly
// disables verification for that backend. The keyspec is mandatory:
// remote backends are signature-verified by default, and opting out is
// a visible decision in the command line, not a silent omission. An
// SCT failing verification counts as a backend failure (backoff +
// counters at /metrics) and never enters a returned bundle.
//
// The frontend serves POST /ctfront/v1/add-chain and
// /ctfront/v1/add-pre-chain (ct/v1 request bodies; the response carries
// one SCT per contributing log), GET /ctfront/v1/health (per-backend
// health, consecutive failures, backoff, verification counters, and
// routing weight), and GET /metrics (Prometheus text format). -seed
// fixes the deterministic backend ranking, -timeout bounds each backend
// attempt, -hedge engages a spare backend when a planned one is slower
// than the given delay (0 disables hedging, keeping routing
// deterministic), and -passes/-retry-pause let a submission ride out a
// rolling restart: a pass that falls short of policy re-runs against
// the recovering pool, keeping the SCTs it already holds.
//
// Admission control: -max-inflight bounds concurrent submissions (excess
// sheds with 503), -global-rate/-global-burst and
// -client-rate/-client-burst are token buckets (shed with 429); every
// shed response carries Retry-After (-retry-after). On SIGINT/SIGTERM
// the frontend drains: new submissions get 503 + Retry-After while
// in-flight ones finish, bounded by -drain-timeout. -weight-interval
// sets how often observed backend latency/progress is folded into the
// deterministic routing weights (0 = never, pure seed ranking).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ctrise/internal/ctclient"
	"ctrise/internal/ctfront"
	"ctrise/internal/sct"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8765", "listen address")
	seed := flag.Int64("seed", 1, "seed for the deterministic backend ranking")
	timeout := flag.Duration("timeout", 10*time.Second, "per-backend submission timeout (0 = caller's deadline only)")
	hedge := flag.Duration("hedge", 0, "engage a spare backend when a planned one is slower than this (0 = off)")
	backoffBase := flag.Duration("backoff-base", time.Second, "backoff after a backend's first consecutive failure (doubles per failure)")
	backoffMax := flag.Duration("backoff-max", 5*time.Minute, "backoff ceiling per backend")
	passes := flag.Int("passes", 3, "submission passes before giving up (passes >1 ride out rolling restarts)")
	retryPause := flag.Duration("retry-pause", 250*time.Millisecond, "pause between submission passes")
	maxInflight := flag.Int("max-inflight", 0, "max concurrent submissions; excess shed with 503 (0 = unbounded)")
	globalRate := flag.Float64("global-rate", 0, "global submissions/second admitted; excess shed with 429 (0 = unlimited)")
	globalBurst := flag.Float64("global-burst", 0, "global token-bucket burst (0 = same as -global-rate)")
	clientRate := flag.Float64("client-rate", 0, "per-client submissions/second admitted; excess shed with 429 (0 = unlimited)")
	clientBurst := flag.Float64("client-burst", 0, "per-client token-bucket burst (0 = same as -client-rate)")
	retryAfter := flag.Duration("retry-after", time.Second, "Retry-After hint on shed and drain responses")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight submissions on shutdown")
	weightInterval := flag.Duration("weight-interval", time.Minute, "how often observed backend performance is committed into routing weights (0 = never)")
	var specs []ctfront.BackendSpec
	flag.Func("backend", `backend log as "name,operator,url,KEYSPEC[,google]" (repeatable; KEYSPEC: fast | pubkey:BASE64 | keyfile:PATH | none)`, func(v string) error {
		spec, err := parseBackend(v)
		if err != nil {
			return err
		}
		specs = append(specs, spec)
		return nil
	})
	flag.Parse()

	front, err := ctfront.New(ctfront.Config{
		Backends:        specs,
		Seed:            *seed,
		Timeout:         *timeout,
		Hedge:           *hedge,
		BackoffBase:     *backoffBase,
		BackoffMax:      *backoffMax,
		MaxSubmitPasses: *passes,
		RetryPause:      *retryPause,
		MaxInflight:     *maxInflight,
		GlobalRate:      *globalRate,
		GlobalBurst:     *globalBurst,
		ClientRate:      *clientRate,
		ClientBurst:     *clientBurst,
		RetryAfter:      *retryAfter,
	})
	if err != nil {
		log.Fatalf("ctfront: %v", err)
	}

	server := &http.Server{Addr: *addr, Handler: front.Handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("ctfront: serving %d backends on http://%s", len(specs), *addr)
		errCh <- server.ListenAndServe()
	}()

	// Routing weights commit on a timer, not per request: between
	// commits the ranking is a pure function of the seed, so bursts of
	// submissions see a stable backend order.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *weightInterval > 0 {
		go func() {
			t := time.NewTicker(*weightInterval)
			defer t.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-t.C:
					front.CommitWeights()
				}
			}
		}()
	}

	select {
	case err := <-errCh:
		log.Fatalf("ctfront: %v", err)
	case <-ctx.Done():
		log.Printf("ctfront: signal received, draining")
		front.BeginDrain()
		waitCtx, cancelWait := context.WithTimeout(context.Background(), *drainTimeout)
		if err := front.DrainWait(waitCtx); err != nil {
			log.Printf("ctfront: drain timeout: submissions still in flight")
		}
		cancelWait()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := server.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("ctfront: shutdown: %v", err)
		}
		log.Printf("ctfront: shut down cleanly")
	}
}

// parseBackend parses one -backend value. The first three fields are
// positional (name, operator, url); the remaining one or two are
// recognized by content so "google" and the KEYSPEC compose in either
// order. The KEYSPEC is not optional — verification is the default,
// and "none" is the explicit opt-out.
func parseBackend(v string) (ctfront.BackendSpec, error) {
	parts := strings.Split(v, ",")
	if len(parts) < 4 || len(parts) > 5 {
		return ctfront.BackendSpec{}, fmt.Errorf("want name,operator,url,KEYSPEC[,google], got %q", v)
	}
	name, operator, url := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]), strings.TrimSpace(parts[2])
	if name == "" || operator == "" || url == "" {
		return ctfront.BackendSpec{}, fmt.Errorf("empty field in %q", v)
	}
	google := false
	keySpec := ""
	for _, raw := range parts[3:] {
		field := strings.TrimSpace(raw)
		switch {
		case field == "google":
			if google {
				return ctfront.BackendSpec{}, fmt.Errorf("duplicate \"google\" in %q", v)
			}
			google = true
		case field == "none" || field == "fast" ||
			strings.HasPrefix(field, "pubkey:") || strings.HasPrefix(field, "keyfile:"):
			if keySpec != "" {
				return ctfront.BackendSpec{}, fmt.Errorf("duplicate KEYSPEC in %q", v)
			}
			keySpec = field
		default:
			return ctfront.BackendSpec{}, fmt.Errorf("field %q in %q is neither \"google\" nor a KEYSPEC (fast | pubkey:BASE64 | keyfile:PATH | none)", field, v)
		}
	}
	if keySpec == "" {
		return ctfront.BackendSpec{}, fmt.Errorf("missing KEYSPEC in %q (use \"none\" to explicitly disable SCT verification)", v)
	}
	spec := ctfront.BackendSpec{
		Backend:        ctclient.NewSubmitter(name, ctclient.New(url, nil)),
		Operator:       operator,
		GoogleOperated: google,
	}
	if keySpec != "none" {
		v, err := sct.ParseKeySpec(name, keySpec)
		if err != nil {
			return ctfront.BackendSpec{}, err
		}
		spec.Verifier = v
	}
	return spec, nil
}
