// Command ctfront runs a standalone multi-log CT submission frontend:
// one HTTP endpoint that fans add-chain/add-pre-chain submissions out
// to a pool of backend logs until the collected SCTs satisfy the
// Chrome CT policy, then returns the whole bundle.
//
// Usage:
//
//	ctfront [-addr 127.0.0.1:8765] [-seed N] [-timeout 10s] [-hedge 0]
//	        -backend "name,operator,url[,google]" [-backend ...]
//
// Each -backend names one log reachable over the ct/v1 HTTP API (for
// example a cmd/ctlogd instance): a display name, the operator
// organization the policy's diversity rules group by, the base URL,
// and an optional trailing "google" marking a Google-operated log. The
// pool needs at least one Google-operated and one non-Google backend
// for any submission to succeed.
//
// The frontend serves POST /ctfront/v1/add-chain and
// /ctfront/v1/add-pre-chain (ct/v1 request bodies; the response carries
// one SCT per contributing log) and GET /ctfront/v1/health (per-backend
// health, consecutive failures, and backoff state). -seed fixes the
// deterministic backend ranking, -timeout bounds each backend attempt,
// and -hedge engages a spare backend when a planned one is slower than
// the given delay (0 disables hedging, keeping routing deterministic).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"ctrise/internal/ctclient"
	"ctrise/internal/ctfront"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8765", "listen address")
	seed := flag.Int64("seed", 1, "seed for the deterministic backend ranking")
	timeout := flag.Duration("timeout", 10*time.Second, "per-backend submission timeout (0 = caller's deadline only)")
	hedge := flag.Duration("hedge", 0, "engage a spare backend when a planned one is slower than this (0 = off)")
	backoffBase := flag.Duration("backoff-base", time.Second, "backoff after a backend's first consecutive failure (doubles per failure)")
	backoffMax := flag.Duration("backoff-max", 5*time.Minute, "backoff ceiling per backend")
	var specs []ctfront.BackendSpec
	flag.Func("backend", `backend log as "name,operator,url[,google]" (repeatable)`, func(v string) error {
		parts := strings.Split(v, ",")
		if len(parts) < 3 || len(parts) > 4 {
			return fmt.Errorf("want name,operator,url[,google], got %q", v)
		}
		name, operator, url := strings.TrimSpace(parts[0]), strings.TrimSpace(parts[1]), strings.TrimSpace(parts[2])
		if name == "" || operator == "" || url == "" {
			return fmt.Errorf("empty field in %q", v)
		}
		google := false
		if len(parts) == 4 {
			switch strings.TrimSpace(parts[3]) {
			case "google":
				google = true
			default:
				return fmt.Errorf("trailing field must be \"google\", got %q", parts[3])
			}
		}
		specs = append(specs, ctfront.BackendSpec{
			Backend:        ctclient.NewSubmitter(name, ctclient.New(url, nil)),
			Operator:       operator,
			GoogleOperated: google,
		})
		return nil
	})
	flag.Parse()

	front, err := ctfront.New(ctfront.Config{
		Backends:    specs,
		Seed:        *seed,
		Timeout:     *timeout,
		Hedge:       *hedge,
		BackoffBase: *backoffBase,
		BackoffMax:  *backoffMax,
	})
	if err != nil {
		log.Fatalf("ctfront: %v", err)
	}

	server := &http.Server{Addr: *addr, Handler: front.Handler()}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("ctfront: serving %d backends on http://%s", len(specs), *addr)
		errCh <- server.ListenAndServe()
	}()

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		log.Fatalf("ctfront: %v", err)
	case sig := <-sigCh:
		log.Printf("ctfront: %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := server.Shutdown(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("ctfront: shutdown: %v", err)
		}
	}
}
