package main

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"ctrise/internal/ctlog"
	"ctrise/internal/load"
	"ctrise/internal/sct"
)

// benchServer is one in-process log exposed over a real loopback
// socket, with a wall-clock sequencer. Close cancels the sequencer and
// shuts the listener down.
type benchServer struct {
	log *ctlog.Log
	srv *httptest.Server
}

// newBenchServer returns the server and a stopSeq function that halts
// the wall-clock sequencer (idempotent; also run at cleanup). Stopping
// the sequencer lets a benchmark take over sequencing manually without
// racing the ticker.
func newBenchServer(t *testing.T, cfg ctlog.Config, interval time.Duration) (*benchServer, func()) {
	t.Helper()
	if cfg.Name == "" {
		cfg.Name = "ctload bench log"
	}
	cfg.Signer = sct.NewFastSigner(cfg.Name)
	l, err := ctlog.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(l.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.RunSequencer(ctx, interval) }()
	var stopped sync.Once
	stopSeq := func() {
		stopped.Do(func() {
			cancel()
			if err := <-done; !errors.Is(err, context.Canceled) {
				t.Errorf("sequencer exit: %v", err)
			}
		})
	}
	t.Cleanup(func() {
		stopSeq()
		srv.Close()
	})
	return &benchServer{log: l, srv: srv}, stopSeq
}

// The harness must complete requests in every workload class against a
// live server over real sockets — the in-repo version of the CI smoke.
func TestHarnessCompletesAllClasses(t *testing.T) {
	bs, _ := newBenchServer(t, ctlog.Config{}, 20*time.Millisecond)
	h, err := newHarness(context.Background(), bs.srv.URL, "", 4, 7, 128, 16)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := load.ParseMix("add=1,sth=2,entries=2,proof=2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := load.Run(context.Background(), load.Options{
		Conns: 4, Duration: 400 * time.Millisecond, Mix: mix, Seed: 7,
	}, h.ops())
	if err != nil {
		t.Fatal(err)
	}
	for _, or := range res.SortedOps() {
		if or.Requests == 0 {
			t.Errorf("class %q completed zero requests", or.Op)
		}
		if or.Errors != 0 {
			t.Errorf("class %q: %d errors", or.Op, or.Errors)
		}
	}
}

// starvationReaders is the dedicated reader set shared by the
// starvation and idle measurements: every class rides the lock-free
// published snapshot — get-sth and get-entries since chunked sequencing
// landed, the proof endpoints since they moved onto the frozen
// publishedState proof view — so the comparison below is what pins the
// "proofs never queue behind the sequencer" property at the socket
// level.
var starvationReaders = []struct {
	op load.Op
	n  int
}{
	{load.OpGetSTH, 2},
	{load.OpGetEntries, 2},
	{load.OpGetProof, 4},
}

// measureReaders runs the dedicated reader set for exactly the duration
// of window(): readers start issuing requests over the socket when it
// starts and stop when it returns (in-flight requests complete and
// still count, blocked time included), so the histograms are undiluted
// by idle time around the window — a sequencer that queues readers
// shows up as latencies the length of the whole integration, not as a
// tail quantile drowned by fast requests.
func measureReaders(t *testing.T, ops map[load.Op]load.OpFunc, window func()) map[string]jsonOpResult {
	t.Helper()
	ctx := context.Background()
	stop := make(chan struct{})
	type reader struct {
		op   load.Op
		hist *load.Histogram
		errs uint64
	}
	var wg sync.WaitGroup
	var readers []*reader
	for w, spec := range starvationReaders {
		for i := 0; i < spec.n; i++ {
			r := &reader{op: spec.op, hist: &load.Histogram{}}
			readers = append(readers, r)
			rng := rand.New(rand.NewSource(int64(100*w + i)))
			wg.Add(1)
			go func(r *reader) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					t0 := time.Now()
					if err := ops[r.op](ctx, rng); err != nil {
						r.errs++
					}
					r.hist.Record(time.Since(t0))
				}
			}(r)
		}
	}

	window()
	close(stop)
	wg.Wait()

	classes := make(map[string]jsonOpResult, len(starvationReaders))
	for _, spec := range starvationReaders {
		agg := jsonOpResult{}
		hist := &load.Histogram{}
		for _, r := range readers {
			if r.op != spec.op {
				continue
			}
			hist.Merge(r.hist)
			agg.Errors += r.errs
		}
		agg.Requests = hist.Count()
		agg.Latency = hist.Summarize()
		if agg.Requests == 0 {
			t.Fatalf("reader measurement: class %q completed zero requests", spec.op)
		}
		classes[string(spec.op)] = agg
	}
	return classes
}

// starvationRun measures reader latency for requests issued while one
// large staged batch integrates, plus — on the same server, after the
// batch publishes — an idle baseline over the full-size tree with no
// writer anywhere. The during/idle pair is the reader-starvation
// headline: with proofs served from the published snapshot the two must
// be within a small factor of each other.
func starvationRun(t *testing.T, chunk int, entries int) (integrateMS float64, classes, idle map[string]jsonOpResult) {
	t.Helper()
	bs, stopSeq := newBenchServer(t, ctlog.Config{SequenceChunk: chunk}, 10*time.Millisecond)
	h, err := newHarness(context.Background(), bs.srv.URL, "", 8, 13, 128, 256)
	if err != nil {
		t.Fatal(err)
	}
	// The warmup sequencer must not race the measured integration:
	// stage the big batch only after it has drained and stopped.
	stopSeq()
	for i := 0; i < entries; i++ {
		cert := warmupCert(1<<40+int64(i), i, 96)
		if _, err := bs.log.AddChain(cert); err != nil {
			t.Fatal(err)
		}
	}

	ops := h.ops()
	var integrate time.Duration
	classes = measureReaders(t, ops, func() {
		t0 := time.Now()
		if _, err := bs.log.Sequence(); err != nil {
			t.Fatal(err)
		}
		integrate = time.Since(t0)
	})

	// Idle baseline: same readers, same tree (published so proofs cover
	// all of it), no integration in flight.
	if _, err := bs.log.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	idle = measureReaders(t, ops, func() { time.Sleep(2 * time.Second) })
	return float64(integrate) / float64(time.Millisecond), classes, idle
}

// TestWriteBenchLoad regenerates BENCH_load.json at the repository
// root: per-class latency for the standard mixed workload over real
// sockets, plus the reader-starvation comparison that motivated chunked
// sequencing — reader p99 while a large staged batch integrates, with
// chunking disabled versus the default chunk size, each against an
// idle baseline over the same published tree.
//
//	UPDATE_BENCH_LOAD=1 go test -run TestWriteBenchLoad -timeout 10m ./cmd/ctload
func TestWriteBenchLoad(t *testing.T) {
	if os.Getenv("UPDATE_BENCH_LOAD") != "1" {
		t.Skip("set UPDATE_BENCH_LOAD=1 to regenerate BENCH_load.json")
	}
	const starveEntries = 500_000

	// Section 1: the standard mixed workload, closed loop.
	bs, stopSeq := newBenchServer(t, ctlog.Config{}, 100*time.Millisecond)
	h, err := newHarness(context.Background(), bs.srv.URL, "", 16, 1, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := load.ParseMix("add=1,sth=4,entries=8,proof=2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := load.Run(context.Background(), load.Options{
		Conns: 16, Duration: 5 * time.Second, Mix: mix, Seed: 1,
	}, h.ops())
	if err != nil {
		t.Fatal(err)
	}
	workload := map[string]jsonOpResult{}
	for _, or := range res.SortedOps() {
		workload[string(or.Op)] = jsonOpResult{
			Requests: or.Requests, Errors: or.Errors, Latency: or.Hist.Summarize(),
		}
	}
	stopSeq()

	// Section 2: reader p99 under large-batch integration, unchunked
	// (the pre-chunking sequencer: whole batch under one lock hold)
	// versus the default chunk, each paired with an idle baseline over
	// the same full-size published tree.
	unchunkedMS, unchunked, unchunkedIdle := starvationRun(t, -1, starveEntries)
	chunkedMS, chunked, chunkedIdle := starvationRun(t, 0, starveEntries)

	out := map[string]any{
		"schema":          "ctrise/bench-load/v1",
		"regenerate_with": "UPDATE_BENCH_LOAD=1 go test -run TestWriteBenchLoad -timeout 10m ./cmd/ctload",
		"config": map[string]any{
			"conns":              16,
			"duration_seconds":   5,
			"mix":                "add=1,sth=4,entries=8,proof=2",
			"cert_bytes":         256,
			"starvation_entries": starveEntries,
			"starvation_readers": "sth=2,entries=2,proof=4",
			"starvation_conns":   8,
		},
		"workload": map[string]any{
			"requests":       res.Requests,
			"errors":         res.Errors,
			"throughput_rps": res.Throughput(),
			"classes":        workload,
		},
		"reader_starvation": map[string]any{
			// Every read class serves the lock-free published snapshot, so
			// during-integration latency is CPU contention, not lock convoy
			// — on a single-core runner all classes degrade together and
			// the idle comparison is confounded by the integration hogging
			// the core. The convoy signal is get-proof tracking get-sth
			// (the class that has always been lock-free): before proofs
			// moved onto the snapshot, unchunked get-proof p50 was the full
			// integration time (~1020ms vs ~44ms for get-sth).
			"note": "during-integration vs idle comparison is CPU-bound on single-core runners; the lock-convoy signal is get-proof parity with get-sth",
			"unchunked": map[string]any{
				"sequence_chunk": -1,
				"integrate_ms":   unchunkedMS,
				"classes":        unchunked,
				"idle_classes":   unchunkedIdle,
			},
			"chunked": map[string]any{
				"sequence_chunk": ctlog.DefaultSequenceChunk,
				"integrate_ms":   chunkedMS,
				"classes":        chunked,
				"idle_classes":   chunkedIdle,
			},
		},
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_load.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("unchunked: integrate %.0fms, proof p99 %.2fms (idle %.2fms)",
		unchunkedMS, unchunked["get-proof"].Latency.P99MS, unchunkedIdle["get-proof"].Latency.P99MS)
	t.Logf("chunked:   integrate %.0fms, proof p99 %.2fms (idle %.2fms)",
		chunkedMS, chunked["get-proof"].Latency.P99MS, chunkedIdle["get-proof"].Latency.P99MS)
}
