package main

import (
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"ctrise/internal/ctlog"
	"ctrise/internal/load"
	"ctrise/internal/sct"
)

// benchServer is one in-process log exposed over a real loopback
// socket, with a wall-clock sequencer. Close cancels the sequencer and
// shuts the listener down.
type benchServer struct {
	log *ctlog.Log
	srv *httptest.Server
}

// newBenchServer returns the server and a stopSeq function that halts
// the wall-clock sequencer (idempotent; also run at cleanup). Stopping
// the sequencer lets a benchmark take over sequencing manually without
// racing the ticker.
func newBenchServer(t *testing.T, cfg ctlog.Config, interval time.Duration) (*benchServer, func()) {
	t.Helper()
	if cfg.Name == "" {
		cfg.Name = "ctload bench log"
	}
	cfg.Signer = sct.NewFastSigner(cfg.Name)
	l, err := ctlog.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(l.Handler())
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.RunSequencer(ctx, interval) }()
	var stopped sync.Once
	stopSeq := func() {
		stopped.Do(func() {
			cancel()
			if err := <-done; !errors.Is(err, context.Canceled) {
				t.Errorf("sequencer exit: %v", err)
			}
		})
	}
	t.Cleanup(func() {
		stopSeq()
		srv.Close()
	})
	return &benchServer{log: l, srv: srv}, stopSeq
}

// The harness must complete requests in every workload class against a
// live server over real sockets — the in-repo version of the CI smoke.
func TestHarnessCompletesAllClasses(t *testing.T) {
	bs, _ := newBenchServer(t, ctlog.Config{}, 20*time.Millisecond)
	h, err := newHarness(context.Background(), bs.srv.URL, "", 4, 7, 128, 16)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := load.ParseMix("add=1,sth=2,entries=2,proof=2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := load.Run(context.Background(), load.Options{
		Conns: 4, Duration: 400 * time.Millisecond, Mix: mix, Seed: 7,
	}, h.ops())
	if err != nil {
		t.Fatal(err)
	}
	for _, or := range res.SortedOps() {
		if or.Requests == 0 {
			t.Errorf("class %q completed zero requests", or.Op)
		}
		if or.Errors != 0 {
			t.Errorf("class %q: %d errors", or.Op, or.Errors)
		}
	}
}

// starvationRun measures reader latency for requests issued while one
// large staged batch integrates. The measurement window is exactly the
// Sequence call: reader goroutines start issuing requests over the
// socket when integration starts and stop when it returns (in-flight
// requests complete and still count, blocked time included), so the
// histograms are undiluted by idle time around the window — the
// pre-chunking sequencer shows up as proof latencies the length of the
// whole integration, not as a tail quantile drowned by fast requests.
func starvationRun(t *testing.T, chunk int, entries int) (integrateMS float64, classes map[string]jsonOpResult) {
	t.Helper()
	bs, stopSeq := newBenchServer(t, ctlog.Config{SequenceChunk: chunk}, 10*time.Millisecond)
	h, err := newHarness(context.Background(), bs.srv.URL, "", 8, 13, 128, 256)
	if err != nil {
		t.Fatal(err)
	}
	// The warmup sequencer must not race the measured integration:
	// stage the big batch only after it has drained and stopped.
	stopSeq()
	for i := 0; i < entries; i++ {
		cert := warmupCert(1<<40+int64(i), i, 96)
		if _, err := bs.log.AddChain(cert); err != nil {
			t.Fatal(err)
		}
	}

	ctx := context.Background()
	ops := h.ops()
	// Dedicated readers per class: get-sth and get-entries serve the
	// lock-free published snapshot; get-proof takes the read lock and is
	// the class chunking exists for.
	workers := []struct {
		op load.Op
		n  int
	}{
		{load.OpGetSTH, 2},
		{load.OpGetEntries, 2},
		{load.OpGetProof, 4},
	}
	stop := make(chan struct{})
	type reader struct {
		op   load.Op
		hist *load.Histogram
		errs uint64
	}
	var wg sync.WaitGroup
	var readers []*reader
	for w, spec := range workers {
		for i := 0; i < spec.n; i++ {
			r := &reader{op: spec.op, hist: &load.Histogram{}}
			readers = append(readers, r)
			rng := rand.New(rand.NewSource(int64(100*w + i)))
			wg.Add(1)
			go func(r *reader) {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					t0 := time.Now()
					if err := ops[r.op](ctx, rng); err != nil {
						r.errs++
					}
					r.hist.Record(time.Since(t0))
				}
			}(r)
		}
	}

	t0 := time.Now()
	if _, err := bs.log.Sequence(); err != nil {
		t.Fatal(err)
	}
	integrate := time.Since(t0)
	close(stop)
	wg.Wait()

	classes = make(map[string]jsonOpResult, len(workers))
	for _, spec := range workers {
		agg := jsonOpResult{}
		hist := &load.Histogram{}
		for _, r := range readers {
			if r.op != spec.op {
				continue
			}
			hist.Merge(r.hist)
			agg.Errors += r.errs
		}
		agg.Requests = hist.Count()
		agg.Latency = hist.Summarize()
		if agg.Requests == 0 {
			t.Fatalf("starvation run: class %q completed zero requests", spec.op)
		}
		classes[string(spec.op)] = agg
	}
	return float64(integrate) / float64(time.Millisecond), classes
}

// TestWriteBenchLoad regenerates BENCH_load.json at the repository
// root: per-class latency for the standard mixed workload over real
// sockets, plus the reader-starvation comparison that motivated chunked
// sequencing — reader p99 while a large staged batch integrates, with
// chunking disabled versus the default chunk size.
//
//	UPDATE_BENCH_LOAD=1 go test -run TestWriteBenchLoad -timeout 10m ./cmd/ctload
func TestWriteBenchLoad(t *testing.T) {
	if os.Getenv("UPDATE_BENCH_LOAD") != "1" {
		t.Skip("set UPDATE_BENCH_LOAD=1 to regenerate BENCH_load.json")
	}
	const starveEntries = 500_000

	// Section 1: the standard mixed workload, closed loop.
	bs, stopSeq := newBenchServer(t, ctlog.Config{}, 100*time.Millisecond)
	h, err := newHarness(context.Background(), bs.srv.URL, "", 16, 1, 256, 64)
	if err != nil {
		t.Fatal(err)
	}
	mix, err := load.ParseMix("add=1,sth=4,entries=8,proof=2")
	if err != nil {
		t.Fatal(err)
	}
	res, err := load.Run(context.Background(), load.Options{
		Conns: 16, Duration: 5 * time.Second, Mix: mix, Seed: 1,
	}, h.ops())
	if err != nil {
		t.Fatal(err)
	}
	workload := map[string]jsonOpResult{}
	for _, or := range res.SortedOps() {
		workload[string(or.Op)] = jsonOpResult{
			Requests: or.Requests, Errors: or.Errors, Latency: or.Hist.Summarize(),
		}
	}
	stopSeq()

	// Section 2: reader p99 under large-batch integration, unchunked
	// (the pre-chunking sequencer: whole batch under one lock hold)
	// versus the default chunk.
	unchunkedMS, unchunked := starvationRun(t, -1, starveEntries)
	chunkedMS, chunked := starvationRun(t, 0, starveEntries)

	out := map[string]any{
		"schema":          "ctrise/bench-load/v1",
		"regenerate_with": "UPDATE_BENCH_LOAD=1 go test -run TestWriteBenchLoad -timeout 10m ./cmd/ctload",
		"config": map[string]any{
			"conns":              16,
			"duration_seconds":   5,
			"mix":                "add=1,sth=4,entries=8,proof=2",
			"cert_bytes":         256,
			"starvation_entries": starveEntries,
			"starvation_readers": "sth=2,entries=2,proof=4",
			"starvation_conns":   8,
		},
		"workload": map[string]any{
			"requests":       res.Requests,
			"errors":         res.Errors,
			"throughput_rps": res.Throughput(),
			"classes":        workload,
		},
		"reader_starvation": map[string]any{
			"unchunked": map[string]any{
				"sequence_chunk": -1,
				"integrate_ms":   unchunkedMS,
				"classes":        unchunked,
			},
			"chunked": map[string]any{
				"sequence_chunk": ctlog.DefaultSequenceChunk,
				"integrate_ms":   chunkedMS,
				"classes":        chunked,
			},
		},
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile("../../BENCH_load.json", append(data, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("unchunked: integrate %.0fms, proof p99 %.2fms", unchunkedMS, unchunked["get-proof"].Latency.P99MS)
	t.Logf("chunked:   integrate %.0fms, proof p99 %.2fms", chunkedMS, chunked["get-proof"].Latency.P99MS)
}
