// Command ctload is a closed-loop HTTP load generator for the CT stack:
// it drives a ctlogd (and optionally a ctfront) over real sockets with a
// configurable connection count and workload mix, and reports HDR-style
// latency histograms (p50/p99/p999) per workload class.
//
// Usage:
//
//	ctload -target http://127.0.0.1:8764 [-front http://127.0.0.1:8790]
//	       [-conns 16] [-duration 10s] [-mix add=1,sth=4,entries=8,proof=2]
//	       [-qps 0] [-seed 1] [-cert-bytes 256] [-warmup 64] [-json out.json]
//	       [-search] [-search-min 100] [-search-max 50000] [-slo-p99 100ms] [-trial 3s]
//
// -target is the ct/v1 base URL; every read class (get-sth, get-entries,
// get-proof) and, by default, add-chain go there. With -front set,
// add-chain is redirected to the frontend's /ctfront/v1/add-chain — the
// mixed read/write workload then exercises the full production path:
// frontend admission and fan-out for writes, the log's published-state
// snapshot for reads.
//
// The default mode is closed-loop: each connection issues its next
// request the moment the previous one returns, measuring the target's
// capacity. -qps paces the aggregate offered rate instead (open-ish
// loop, degrading to closed when the target can't keep up). -search
// binary-searches the highest paced rate the target sustains while
// completing ≥90% of offered load, erroring ≤1%, and keeping every
// class's p99 inside -slo-p99.
//
// Errors (non-2xx, including 429 backpressure) are counted per class,
// not fatal: shed load under overload is a measurement, not a harness
// failure. The process exits nonzero only on misconfiguration or when a
// workload class completes zero requests — the smoke-test contract.
package main

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/binary"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/url"
	"os"
	"os/signal"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"ctrise/internal/ctlog"
	"ctrise/internal/load"
	"ctrise/internal/merkle"
	"ctrise/internal/sct"
)

func main() {
	target := flag.String("target", "", "ct/v1 base URL of the log under test (required)")
	front := flag.String("front", "", "optional ctfront base URL; add-chain goes here instead of -target")
	conns := flag.Int("conns", 16, "concurrent connections (workers)")
	duration := flag.Duration("duration", 10*time.Second, "run length")
	mixSpec := flag.String("mix", "add=1,sth=4,entries=8,proof=2", "workload mix as class=weight, classes: add, sth, entries, proof")
	qps := flag.Float64("qps", 0, "paced aggregate request rate (0 = closed-loop)")
	seed := flag.Int64("seed", 1, "rng seed for payloads and parameters")
	certBytes := flag.Int("cert-bytes", 256, "random certificate payload size for add-chain")
	warmup := flag.Int("warmup", 64, "entries submitted and published before measuring (read-op targets)")
	jsonOut := flag.String("json", "", "write the run result as JSON to this path")
	search := flag.Bool("search", false, "binary-search the highest sustained paced rate instead of one run")
	searchMin := flag.Float64("search-min", 100, "search floor (qps)")
	searchMax := flag.Float64("search-max", 50000, "search ceiling (qps)")
	sloP99 := flag.Duration("slo-p99", 100*time.Millisecond, "per-class p99 ceiling a search trial must meet")
	trial := flag.Duration("trial", 3*time.Second, "search trial length")
	flag.Parse()
	if *target == "" {
		log.Fatal("ctload: -target is required")
	}
	mix, err := load.ParseMix(*mixSpec)
	if err != nil {
		log.Fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	h, err := newHarness(ctx, *target, *front, *conns, *seed, *certBytes, *warmup)
	if err != nil {
		log.Fatalf("ctload: warmup: %v", err)
	}
	opts := load.Options{
		Conns:    *conns,
		Duration: *duration,
		Mix:      mix,
		QPS:      *qps,
		Seed:     *seed,
	}

	if *search {
		sres, err := load.SearchSustainedQPS(ctx, opts, h.ops(), load.SearchOptions{
			MinQPS:        *searchMin,
			MaxQPS:        *searchMax,
			TrialDuration: *trial,
			P99SLO:        *sloP99,
			OnTrial: func(q float64, res load.Result, ok bool) {
				verdict := "FAIL"
				if ok {
					verdict = "ok"
				}
				fmt.Printf("trial %8.0f qps: completed %8.0f/s errors %d  %s\n",
					q, res.Throughput(), res.Errors, verdict)
			},
		})
		if err != nil {
			log.Fatalf("ctload: search: %v", err)
		}
		fmt.Printf("\nsustained: %.0f qps over %d trials (p99 SLO %v)\n",
			sres.SustainedQPS, sres.Trials, *sloP99)
		printResult(sres.Best)
		if *jsonOut != "" {
			writeJSONResult(*jsonOut, *target, opts, sres.Best, &sres)
		}
		return
	}

	res, err := load.Run(ctx, opts, h.ops())
	if err != nil {
		log.Fatalf("ctload: %v", err)
	}
	printResult(res)
	if *jsonOut != "" {
		writeJSONResult(*jsonOut, *target, opts, res, nil)
	}
	for _, or := range res.SortedOps() {
		if or.Requests == 0 {
			log.Fatalf("ctload: workload class %q completed zero requests", or.Op)
		}
	}
}

func printResult(res load.Result) {
	fmt.Printf("elapsed %v, %d requests (%.0f/s), %d errors\n",
		res.Elapsed.Round(time.Millisecond), res.Requests, res.Throughput(), res.Errors)
	for _, or := range res.SortedOps() {
		fmt.Printf("  %-12s %s errors=%d\n", or.Op, or.Hist, or.Errors)
	}
}

// jsonResult is ctload's -json schema; the CI smoke asserts its shape.
type jsonResult struct {
	Schema     string                  `json:"schema"`
	Target     string                  `json:"target"`
	Conns      int                     `json:"conns"`
	DurationMS float64                 `json:"duration_ms"`
	QPS        float64                 `json:"qps,omitempty"`
	Requests   uint64                  `json:"requests"`
	Errors     uint64                  `json:"errors"`
	Throughput float64                 `json:"throughput_rps"`
	Classes    map[string]jsonOpResult `json:"classes"`
	Search     *jsonSearch             `json:"search,omitempty"`
}

type jsonOpResult struct {
	Requests uint64       `json:"requests"`
	Errors   uint64       `json:"errors"`
	Latency  load.Summary `json:"latency"`
}

type jsonSearch struct {
	SustainedQPS float64 `json:"sustained_qps"`
	Trials       int     `json:"trials"`
}

func writeJSONResult(path, target string, opts load.Options, res load.Result, sres *load.SearchResult) {
	out := jsonResult{
		Schema:     "ctrise/ctload/v1",
		Target:     target,
		Conns:      opts.Conns,
		DurationMS: float64(res.Elapsed) / float64(time.Millisecond),
		QPS:        opts.QPS,
		Requests:   res.Requests,
		Errors:     res.Errors,
		Throughput: res.Throughput(),
		Classes:    make(map[string]jsonOpResult, len(res.Ops)),
	}
	for _, or := range res.SortedOps() {
		out.Classes[string(or.Op)] = jsonOpResult{
			Requests: or.Requests,
			Errors:   or.Errors,
			Latency:  or.Hist.Summarize(),
		}
	}
	if sres != nil {
		out.Search = &jsonSearch{SustainedQPS: sres.SustainedQPS, Trials: sres.Trials}
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		log.Fatalf("ctload: encoding result: %v", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		log.Fatalf("ctload: writing %s: %v", path, err)
	}
}

// harness holds the shared target state the op closures read: the HTTP
// client (one transport sized for the connection count — real sockets,
// kept alive across requests), the add-chain URL (log or frontend), and
// the warmed-up read targets (published tree size, proof leaf hashes).
type harness struct {
	client    *http.Client
	target    string
	addURL    string
	seed      int64
	certBytes int

	treeSize  atomic.Uint64 // refreshed by every get-sth op
	proofSize uint64        // tree size the warmup proofs are anchored at
	leaves    []merkle.Hash // published leaf hashes for get-proof
}

func newHarness(ctx context.Context, target, front string, conns int, seed int64, certBytes, warmup int) (*harness, error) {
	for _, u := range []string{target, front} {
		if u == "" {
			continue
		}
		if _, err := url.Parse(u); err != nil {
			return nil, fmt.Errorf("bad URL %q: %w", u, err)
		}
	}
	h := &harness{
		client: &http.Client{
			Timeout: 30 * time.Second,
			Transport: &http.Transport{
				MaxIdleConns:        conns + 4,
				MaxIdleConnsPerHost: conns + 4,
			},
		},
		target:    strings.TrimRight(target, "/"),
		seed:      seed,
		certBytes: certBytes,
	}
	h.addURL = h.target + "/ct/v1/add-chain"
	if front != "" {
		h.addURL = strings.TrimRight(front, "/") + "/ctfront/v1/add-chain"
	}
	return h, h.warmup(ctx, warmup)
}

// warmup submits `n` certificates directly to the log and waits for an
// STH covering them, so the read classes have real targets: get-entries
// needs a nonempty tree, get-proof needs leaf hashes the log has
// published. The warmup certs are derived from the seed, so repeated
// runs against a durable log dedupe instead of growing it.
func (h *harness) warmup(ctx context.Context, n int) error {
	if n < 1 {
		n = 1
	}
	certs := make([][]byte, n)
	hashes := make([]merkle.Hash, n)
	for i := range certs {
		certs[i] = warmupCert(h.seed, i, h.certBytes)
	}
	for i, cert := range certs {
		ts, err := h.addChainTo(ctx, h.target+"/ct/v1/add-chain", cert)
		if err != nil {
			return fmt.Errorf("submitting warmup entry %d: %w", i, err)
		}
		e := ctlog.Entry{Timestamp: ts, Type: sct.X509LogEntryType, Cert: cert}
		hash, err := e.LeafHash()
		if err != nil {
			return err
		}
		hashes[i] = hash
	}
	// Wait out the sequencer: the warmup entries are published once an
	// STH covers them (dedupe means resubmitted entries may already be).
	deadline := time.Now().Add(30 * time.Second)
	for {
		size, err := h.getSTH(ctx)
		if err == nil && size >= uint64(n) {
			// Verify one warmup proof actually resolves before trusting
			// the whole set: on a log that already contained entries,
			// size alone does not prove ours are in.
			if err := h.getProof(ctx, hashes[0], size); err == nil {
				h.proofSize = size
				h.leaves = hashes
				h.treeSize.Store(size)
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("warmup entries never published (last STH size %d)", h.treeSize.Load())
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(200 * time.Millisecond):
		}
	}
}

// warmupCert derives a deterministic unique certificate payload.
func warmupCert(seed int64, i, size int) []byte {
	if size < 48 {
		size = 48
	}
	cert := make([]byte, size)
	copy(cert, "ctload-warmup-")
	binary.BigEndian.PutUint64(cert[16:], uint64(seed))
	binary.BigEndian.PutUint64(cert[24:], uint64(i))
	rng := rand.New(rand.NewSource(seed ^ int64(i)<<20))
	rng.Read(cert[32:])
	return cert
}

// randomCert builds one load-phase certificate payload from the worker
// rng: unique with overwhelming probability, so add-chain measures the
// staging path, not the dedupe shortcut.
func (h *harness) randomCert(rng *rand.Rand) []byte {
	size := h.certBytes
	if size < 16 {
		size = 16
	}
	cert := make([]byte, size)
	rng.Read(cert)
	copy(cert, "ctload-")
	return cert
}

func drainBody(resp *http.Response) {
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
}

// addChainTo submits one certificate and returns the SCT timestamp.
func (h *harness) addChainTo(ctx context.Context, url string, cert []byte) (uint64, error) {
	body, _ := json.Marshal(ctlog.AddChainRequest{
		Chain: []string{base64.StdEncoding.EncodeToString(cert)},
	})
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := h.client.Do(req)
	if err != nil {
		return 0, err
	}
	defer drainBody(resp)
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("add-chain: HTTP %d", resp.StatusCode)
	}
	var sctResp ctlog.AddChainResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&sctResp); err != nil {
		return 0, fmt.Errorf("add-chain: decoding SCT: %w", err)
	}
	return sctResp.Timestamp, nil
}

func (h *harness) get(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := h.client.Do(req)
	if err != nil {
		return err
	}
	defer drainBody(resp)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: HTTP %d", url, resp.StatusCode)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(out)
}

func (h *harness) getSTH(ctx context.Context) (uint64, error) {
	var sth ctlog.GetSTHResponse
	if err := h.get(ctx, h.target+"/ct/v1/get-sth", &sth); err != nil {
		return 0, err
	}
	h.treeSize.Store(sth.TreeSize)
	return sth.TreeSize, nil
}

func (h *harness) getProof(ctx context.Context, leaf merkle.Hash, treeSize uint64) error {
	u := fmt.Sprintf("%s/ct/v1/get-proof-by-hash?hash=%s&tree_size=%d",
		h.target, url.QueryEscape(base64.StdEncoding.EncodeToString(leaf[:])), treeSize)
	var proof ctlog.GetProofByHashResponse
	return h.get(ctx, u, &proof)
}

// ops builds the OpFunc table the load driver fans out over workers.
func (h *harness) ops() map[load.Op]load.OpFunc {
	return map[load.Op]load.OpFunc{
		load.OpAddChain: func(ctx context.Context, rng *rand.Rand) error {
			_, err := h.addChainTo(ctx, h.addURL, h.randomCert(rng))
			return err
		},
		load.OpGetSTH: func(ctx context.Context, rng *rand.Rand) error {
			_, err := h.getSTH(ctx)
			return err
		},
		load.OpGetEntries: func(ctx context.Context, rng *rand.Rand) error {
			size := h.treeSize.Load()
			if size == 0 {
				size = 1
			}
			start := uint64(rng.Int63n(int64(size)))
			u := fmt.Sprintf("%s/ct/v1/get-entries?start=%d&end=%d", h.target, start, start+31)
			var entries ctlog.GetEntriesResponse
			return h.get(ctx, u, &entries)
		},
		load.OpGetProof: func(ctx context.Context, rng *rand.Rand) error {
			leaf := h.leaves[rng.Intn(len(h.leaves))]
			return h.getProof(ctx, leaf, h.proofSize)
		},
	}
}
