// Command ctrise runs every experiment of the paper reproduction and
// renders all tables and figures.
//
// Usage:
//
//	ctrise [-seed 2018] [-scale 1] [-domains 20000] [-parallelism 0] [-only fig1,fig2,tab1,scan,sec4,tab3,tab4]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"ctrise/internal/experiments"
)

func main() {
	seed := flag.Int64("seed", 2018, "simulation seed")
	scale := flag.Float64("scale", 1, "scale multiplier (1 = fast defaults)")
	domains := flag.Int("domains", 20000, "registrable-domain population size")
	only := flag.String("only", "", "comma-separated subset: fig1,fig2,tab1,scan,sec4,tab3,tab4")
	parallelism := flag.Int("parallelism", 0, "worker bound for all pipelines, generation and analysis (0 = GOMAXPROCS, 1 = sequential)")
	flag.Parse()

	want := map[string]bool{}
	if *only != "" {
		for _, k := range strings.Split(*only, ",") {
			want[strings.TrimSpace(k)] = true
		}
	}
	enabled := func(k string) bool { return len(want) == 0 || want[k] }

	s := experiments.NewSuite(experiments.Options{
		Seed:        *seed,
		Scale:       *scale,
		NumDomains:  *domains,
		Parallelism: *parallelism,
	})
	start := time.Now()

	if enabled("fig1") {
		r, err := s.Figure1()
		if err != nil {
			log.Fatalf("figure 1: %v", err)
		}
		section("SECTION 2: TIMELINE OF CT LOG EVOLUTION")
		fmt.Println(r.RenderFigure1a())
		fmt.Println(r.RenderFigure1b())
		fmt.Println(r.RenderFigure1c())
		fmt.Printf("total harvested precertificates: %d\n\n", r.TotalPrecerts)
	}

	if enabled("fig2") || enabled("tab1") {
		r := s.Traffic()
		section("SECTION 3.2: PASSIVE CT ADOPTION (UCB-UPLINK SHAPE)")
		fmt.Println(r.RenderTotals())
		if enabled("fig2") {
			fmt.Println(r.RenderFigure2())
		}
		if enabled("tab1") {
			fmt.Println(r.RenderTable1())
		}
	}

	if enabled("scan") {
		r, err := s.Scan()
		if err != nil {
			log.Fatalf("scan: %v", err)
		}
		section("SECTION 3.3/3.4: ACTIVE SCAN")
		fmt.Println(r.RenderSection33())
		fmt.Println(r.RenderSection34())
	}

	if enabled("sec4") {
		r, err := s.Section4()
		if err != nil {
			log.Fatalf("section 4: %v", err)
		}
		section("SECTION 4: LEAKAGE OF DNS INFORMATION")
		fmt.Println(r.RenderTable2())
		fmt.Println(r.RenderSection43())
	}

	if enabled("tab3") {
		r, err := s.Table3()
		if err != nil {
			log.Fatalf("table 3: %v", err)
		}
		section("SECTION 5: DETECTING PHISHING DOMAINS")
		fmt.Println(r.RenderTable3())
	}

	if enabled("tab4") {
		r, err := s.Table4()
		if err != nil {
			log.Fatalf("table 4: %v", err)
		}
		section("SECTION 6: CT HONEYPOT")
		fmt.Println(r.RenderTable4())
	}

	fmt.Fprintf(os.Stderr, "ctrise: done in %v (seed=%d scale=%g domains=%d)\n",
		time.Since(start).Round(time.Millisecond), *seed, *scale, *domains)
}

func section(title string) {
	fmt.Printf("%s\n%s\n%s\n\n", strings.Repeat("=", len(title)), title, strings.Repeat("=", len(title)))
}
