// Command ctlogd runs a standalone RFC 6962 Certificate Transparency log
// over HTTP, with an ECDSA P-256 signing key generated at startup.
//
// Usage:
//
//	ctlogd [-addr 127.0.0.1:8764] [-name "Dev Log"] [-capacity N] [-sequence 1s]
//
// The ct/v1 endpoints (add-chain, add-pre-chain, get-sth,
// get-sth-consistency, get-proof-by-hash, get-entries) are served under
// the given address. -capacity rate-limits submissions per second to
// experiment with overload behaviour (the Nimbus incident). -sequence
// sets the batch interval at which staged submissions are integrated
// into the Merkle tree and a fresh STH published — production logs run
// the same loop well inside their MMD.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"ctrise/internal/ctlog"
	"ctrise/internal/sct"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8764", "listen address")
	name := flag.String("name", "Dev Log", "log display name")
	operator := flag.String("operator", "ctrise", "log operator")
	capacity := flag.Float64("capacity", 0, "max submissions/second (0 = unlimited)")
	interval := flag.Duration("sequence", time.Second, "sequencer batch interval (integrate staged entries + publish STH; must be positive)")
	flag.Parse()
	if *interval <= 0 {
		log.Fatal("ctlogd: -sequence must be a positive duration")
	}

	signer, err := sct.NewSigner(nil)
	if err != nil {
		log.Fatalf("generating log key: %v", err)
	}
	l, err := ctlog.New(ctlog.Config{
		Name:              *name,
		Operator:          *operator,
		Signer:            signer,
		CapacityPerSecond: *capacity,
	})
	if err != nil {
		log.Fatalf("creating log: %v", err)
	}

	// The sequencer ticker integrates staged submissions and publishes
	// fresh STHs, so reads serve the latest sequenced batch and monitors
	// see progress without any per-request publishing.
	go func() {
		if err := l.RunSequencer(context.Background(), *interval); err != nil && err != context.Canceled {
			log.Fatalf("sequencer: %v", err)
		}
	}()

	mux := http.NewServeMux()
	mux.Handle("/ct/v1/", l.Handler())
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, "%s (%s)\nlog id: %s\ntree size: %d (staged: %d)\n",
			l.Name(), l.Operator(), l.LogID(), l.TreeSize(), l.PendingCount())
	})

	fmt.Fprintf(os.Stderr, "ctlogd: %s listening on http://%s (log id %s, sequencing every %s)\n",
		*name, *addr, l.LogID(), *interval)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}
