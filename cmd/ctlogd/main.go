// Command ctlogd runs a standalone RFC 6962 Certificate Transparency log
// over HTTP, with an ECDSA P-256 signing key generated at startup.
//
// Usage:
//
//	ctlogd [-addr 127.0.0.1:8764] [-name "Dev Log"] [-capacity N]
//
// The ct/v1 endpoints (add-chain, add-pre-chain, get-sth,
// get-sth-consistency, get-proof-by-hash, get-entries) are served under
// the given address. -capacity rate-limits submissions per second to
// experiment with overload behaviour (the Nimbus incident).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"ctrise/internal/ctlog"
	"ctrise/internal/sct"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8764", "listen address")
	name := flag.String("name", "Dev Log", "log display name")
	operator := flag.String("operator", "ctrise", "log operator")
	capacity := flag.Float64("capacity", 0, "max submissions/second (0 = unlimited)")
	flag.Parse()

	signer, err := sct.NewSigner(nil)
	if err != nil {
		log.Fatalf("generating log key: %v", err)
	}
	l, err := ctlog.New(ctlog.Config{
		Name:              *name,
		Operator:          *operator,
		Signer:            signer,
		CapacityPerSecond: *capacity,
	})
	if err != nil {
		log.Fatalf("creating log: %v", err)
	}

	// Publish fresh STHs periodically so monitors see progress.
	mux := http.NewServeMux()
	mux.Handle("/ct/v1/", publishingHandler{l})
	mux.HandleFunc("GET /", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, "%s (%s)\nlog id: %s\ntree size: %d\n", l.Name(), l.Operator(), l.LogID(), l.TreeSize())
	})

	fmt.Fprintf(os.Stderr, "ctlogd: %s listening on http://%s (log id %s)\n", *name, *addr, l.LogID())
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}

// publishingHandler publishes an STH before every read so the standalone
// log never appears stale (production logs batch within the MMD instead).
type publishingHandler struct{ l *ctlog.Log }

func (h publishingHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet {
		if _, err := h.l.PublishSTH(); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
	}
	h.l.Handler().ServeHTTP(w, r)
}
