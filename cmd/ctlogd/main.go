// Command ctlogd runs a standalone RFC 6962 Certificate Transparency log
// over HTTP.
//
// Usage:
//
//	ctlogd [-addr 127.0.0.1:8764] [-name "Dev Log"] [-capacity N]
//	       [-sequence 1s] [-data-dir DIR] [-snapshot-every N]
//	       [-tile-span N] [-page-cache BYTES] [-drain-timeout 10s]
//
// The ct/v1 endpoints (add-chain, add-pre-chain, get-sth,
// get-sth-consistency, get-proof-by-hash, get-entries) are served under
// the given address. -capacity rate-limits submissions per second to
// experiment with overload behaviour (the Nimbus incident). -sequence
// sets the batch interval at which staged submissions are integrated
// into the Merkle tree and a fresh STH published — production logs run
// the same loop well inside their MMD.
//
// Without -data-dir the log is in-memory with an ephemeral ECDSA P-256
// key generated at startup. With -data-dir the log is durable: the
// signing key is created once and persisted in DIR/key.der, every
// accepted submission is fsynced to a write-ahead log before its SCT is
// returned, and sequencing/publication checkpoints are fsynced so a
// killed and restarted ctlogd serves the same STH and entries it served
// before the crash. Durable logs keep RAM and WAL bounded at any tree
// size: published entries are sealed into immutable tile files of
// -tile-span entries each (the WAL is truncated behind the seal) and
// served back through an LRU page cache of at most -page-cache bytes.
// The span is a property of the on-disk state — the first start fixes
// it, later starts with a different -tile-span keep the stored value.
// On SIGINT/SIGTERM the server drains gracefully:
// new submissions are refused with 503 + Retry-After (a failover
// signal the multi-log frontend rides out, not a dropped connection)
// while in-flight ones finish — bounded by -drain-timeout — then the
// sequencer's final sequence+publish lands and a full snapshot is
// written so the next start recovers without replaying the whole WAL.
// Reads (get-sth, get-entries, proofs) stay served throughout the
// drain so monitors can watch the restart.
package main

import (
	"context"
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"ctrise/internal/ctlog"
	"ctrise/internal/ctlog/storage"
	"ctrise/internal/drain"
	"ctrise/internal/sct"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8764", "listen address")
	name := flag.String("name", "Dev Log", "log display name")
	operator := flag.String("operator", "ctrise", "log operator")
	capacity := flag.Float64("capacity", 0, "max submissions/second (0 = unlimited)")
	interval := flag.Duration("sequence", time.Second, "sequencer batch interval (integrate staged entries + publish STH; must be positive)")
	dataDir := flag.String("data-dir", "", "durable state directory (WAL + snapshots + signing key); empty = in-memory")
	snapshotEvery := flag.Int("snapshot-every", 0, "full snapshot after this many newly sequenced entries (0 = default 4096, negative = only at shutdown); requires -data-dir")
	tileSpan := flag.Int("tile-span", 0, "entries per sealed storage tile, power of two ≥ 2 (0 = default 1024); fixed at first start, requires -data-dir")
	pageCache := flag.Int64("page-cache", 0, "tile page-cache budget in bytes (0 = default 64 MiB, negative = uncached reads); requires -data-dir")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight submissions on shutdown (new ones get 503 + Retry-After immediately)")
	sequenceChunk := flag.Int("sequence-chunk", 0, "entries integrated per lock hold during sequencing (0 = default 1024, negative = whole batch under one hold)")
	flag.Parse()
	if *interval <= 0 {
		log.Fatal("ctlogd: -sequence must be a positive duration")
	}

	cfg := ctlog.Config{
		Name:              *name,
		Operator:          *operator,
		CapacityPerSecond: *capacity,
		SnapshotEvery:     *snapshotEvery,
		TileSpan:          *tileSpan,
		PageCacheBytes:    *pageCache,
		SequenceChunk:     *sequenceChunk,
	}
	var l *ctlog.Log
	if *dataDir != "" {
		signer, err := loadOrCreateSigner(*dataDir)
		if err != nil {
			log.Fatalf("log key: %v", err)
		}
		cfg.Signer = signer
		if l, err = ctlog.Open(*dataDir, cfg); err != nil {
			log.Fatalf("opening durable log: %v", err)
		}
	} else {
		signer, err := sct.NewSigner(nil)
		if err != nil {
			log.Fatalf("generating log key: %v", err)
		}
		cfg.Signer = signer
		if l, err = ctlog.New(cfg); err != nil {
			log.Fatalf("creating log: %v", err)
		}
	}

	// The sequencer ticker integrates staged submissions and publishes
	// fresh STHs, so reads serve the latest sequenced batch and monitors
	// see progress without any per-request publishing. Its context is
	// cut by SIGINT/SIGTERM; RunSequencer performs one final
	// sequence+publish on the way out, so shutdown never strands an
	// acknowledged submission outside the tree.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	seqDone := make(chan error, 1)
	go func() {
		seqDone <- l.RunSequencer(ctx, *interval)
	}()

	mux := http.NewServeMux()
	mux.Handle("/ct/v1/", l.Handler())
	mux.HandleFunc("GET /{$}", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintf(w, "%s (%s)\nlog id: %s\ntree size: %d (staged: %d)\n",
			l.Name(), l.Operator(), l.LogID(), l.TreeSize(), l.PendingCount())
	})
	// The drain gate turns shutdown from "listener drops connections
	// mid-handshake" into a protocol: add-chain/add-pre-chain answer
	// 503 + Retry-After while the requests already accepted run to
	// completion; reads stay available so monitors watch the restart.
	gate := drain.NewGate(mux, nil, time.Second)
	server := &http.Server{Addr: *addr, Handler: gate}
	httpDone := make(chan error, 1)
	go func() {
		httpDone <- server.ListenAndServe()
	}()

	mode := "in-memory"
	if *dataDir != "" {
		mode = "durable in " + *dataDir
	}
	fmt.Fprintf(os.Stderr, "ctlogd: %s listening on http://%s (log id %s, sequencing every %s, %s)\n",
		*name, *addr, l.LogID(), *interval, mode)

	// Drain in order: refuse new submissions (503 + Retry-After) while
	// in-flight ones finish, then stop the listener, let the sequencer's
	// final publish land, and snapshot + close the store. seqDone is
	// nil when the sequencer's exit was already consumed by the select.
	drainServer := func(seqDone <-chan error) {
		gate.BeginDrain()
		waitCtx, cancelWait := context.WithTimeout(context.Background(), *drainTimeout)
		if err := gate.Wait(waitCtx); err != nil {
			log.Printf("ctlogd: drain timeout: %d submission(s) still in flight", gate.Inflight())
		}
		cancelWait()
		shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		server.Shutdown(shutCtx)
		if seqDone != nil {
			if err := <-seqDone; err != nil && sequencerExitDirty(err) {
				log.Printf("ctlogd: final sequence: %v", err)
			}
		}
		if err := l.Close(); err != nil {
			log.Fatalf("ctlogd: closing log: %v", err)
		}
		fmt.Fprintln(os.Stderr, "ctlogd: shut down cleanly")
	}

	select {
	case err := <-httpDone:
		log.Fatal(err)
	case err := <-seqDone:
		if err != nil && !errors.Is(err, context.Canceled) {
			log.Fatalf("sequencer: %v", err)
		}
		if err != nil && sequencerExitDirty(err) {
			// Canceled, but the final drain failed: acknowledged
			// submissions are still staged (durably, with -data-dir).
			log.Printf("ctlogd: final sequence: %v", err)
		}
		// Canceled: the signal landed and the sequencer's exit won the
		// select race against ctx.Done(); drain exactly as below.
		drainServer(nil)
	case <-ctx.Done():
		drainServer(seqDone)
	}
}

// sequencerExitDirty reports whether a RunSequencer exit error is worth
// an operator's attention: anything other than a clean cancellation.
// A joined Canceled+ErrDrainIncomplete error still Is(Canceled), so a
// plain Canceled check would silently swallow the "entries left staged"
// signal.
func sequencerExitDirty(err error) bool {
	return !errors.Is(err, context.Canceled) || errors.Is(err, ctlog.ErrDrainIncomplete)
}

// loadOrCreateSigner returns the durable log's ECDSA P-256 signer,
// creating and persisting the key on first start. The key file is the
// log's identity: losing it orphans the log (recovery refuses to serve
// STHs it cannot verify), so its creation must be durable (fsynced file
// + directory entry, or a power loss orphans every fsynced record) AND
// exclusive (two racing first-starts must converge on ONE key — a
// last-rename-wins overwrite would leave the survivor signing with a
// key that is not the one on disk, bricking the next restart). The
// hard link gives both: link(2) fails with EEXIST if someone else won,
// in which case their key is adopted.
func loadOrCreateSigner(dir string) (*sct.Signer, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	path := filepath.Join(dir, "key.der")
	read := func() (*sct.Signer, error) {
		der, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		priv, err := x509.ParseECPrivateKey(der)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %w", path, err)
		}
		return sct.NewSignerFromKey(priv), nil
	}
	if s, err := read(); err == nil {
		return s, nil
	} else if !os.IsNotExist(err) {
		return nil, err
	}
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rand.Reader)
	if err != nil {
		return nil, err
	}
	der, err := x509.MarshalECPrivateKey(priv)
	if err != nil {
		return nil, err
	}
	tmp, err := os.CreateTemp(dir, "key.der.tmp*")
	if err != nil {
		return nil, err
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName)
	if err := tmp.Chmod(0o600); err != nil {
		tmp.Close()
		return nil, err
	}
	if _, err := tmp.Write(der); err != nil {
		tmp.Close()
		return nil, err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return nil, err
	}
	if err := tmp.Close(); err != nil {
		return nil, err
	}
	if err := os.Link(tmpName, path); err != nil {
		if os.IsExist(err) {
			// Lost the creation race: the other process's key is the
			// log's identity now; use it.
			return read()
		}
		return nil, err
	}
	if err := storage.SyncDir(dir); err != nil {
		return nil, err
	}
	return sct.NewSignerFromKey(priv), nil
}
