package ctrise_test

import (
	"reflect"
	"testing"
	"time"

	"ctrise/internal/ecosystem"
	"ctrise/internal/scanner"
	"ctrise/internal/sct"
	"ctrise/internal/tlsmon"
)

// replayParallelisms are the worker counts every generation pipeline is
// checked at: the forced-sequential path, a typical pool, and a count
// that does not divide any chunk size evenly.
var replayParallelisms = []int{1, 4, 13}

// connRecord is a Connection deep-copied out of the generator's reused
// scratch, reduced to its public fields for comparison.
type connRecord struct {
	Time              time.Time
	ServerName        string
	ClientSupportsSCT bool
	CertLogs          []string
	TLSLogs           []string
	OCSPLogs          []string
}

// TestGenerateParallelEquivalence proves the Figure 2 traffic replay
// emits the identical connection stream — every field of every
// connection, in order — at any parallelism.
func TestGenerateParallelEquivalence(t *testing.T) {
	capture := func(p int) []connRecord {
		var out []connRecord
		tlsmon.Generate(tlsmon.GenConfig{
			Seed:        7,
			ConnsPerDay: 60,
			Start:       ecosystem.Date(2017, 5, 1),
			End:         ecosystem.Date(2017, 8, 15),
			BurstDays:   4,
			Parallelism: p,
		}, func(c *tlsmon.Connection) {
			out = append(out, connRecord{
				Time:              c.Time,
				ServerName:        c.ServerName,
				ClientSupportsSCT: c.ClientSupportsSCT,
				CertLogs:          append([]string(nil), c.CertLogs...),
				TLSLogs:           append([]string(nil), c.TLSLogs...),
				OCSPLogs:          append([]string(nil), c.OCSPLogs...),
			})
		})
		return out
	}
	want := capture(replayParallelisms[0])
	if len(want) == 0 {
		t.Fatal("empty stream")
	}
	// The stream must be day-ordered (the ordered merge's contract).
	for i := 1; i < len(want); i++ {
		if d, prev := want[i].Time.Truncate(24*time.Hour), want[i-1].Time.Truncate(24*time.Hour); d.Before(prev) {
			t.Fatalf("stream regresses at %d: %v after %v", i, d, prev)
		}
	}
	for _, p := range replayParallelisms[1:] {
		got := capture(p)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("parallelism %d stream differs (len %d vs %d)", p, len(got), len(want))
		}
	}
	// Multi-log connections carry two distinct logs (the drawLogs retry
	// semantics): no channel may list the same log twice.
	two := 0
	for _, c := range want {
		for _, logs := range [][]string{c.CertLogs, c.TLSLogs, c.OCSPLogs} {
			if len(logs) == 2 {
				two++
				if logs[0] == logs[1] {
					t.Fatalf("duplicate log in channel: %v", logs)
				}
			}
		}
	}
	if two == 0 {
		t.Fatal("no two-log connections generated")
	}
}

// TestRunTimelineParallelEquivalence proves the staged/pipelined
// issuance replay commits identical log contents — per-log entry
// counts, tree root hashes, and the full per-day STH trajectory (size
// and root at every day boundary, in day order) — at any parallelism.
// The per-day trajectory is the strong form: it proves not only that
// the final trees agree but that every day's sequenced batch was
// identical, i.e. the pipeline's day overlap and the sequencer's
// canonical batch order never move an entry across an STH boundary.
func TestRunTimelineParallelEquivalence(t *testing.T) {
	type sthState struct {
		Size uint64
		Root [32]byte
	}
	build := func(p int) (map[string][]sthState, []time.Time) {
		w, err := ecosystem.New(ecosystem.Config{
			Seed:          42,
			Scale:         1e-4,
			TimelineStart: ecosystem.Date(2018, 2, 20),
			TimelineEnd:   ecosystem.Date(2018, 4, 10),
			NumDomains:    1500,
			Parallelism:   p,
		})
		if err != nil {
			t.Fatal(err)
		}
		var days []time.Time
		trajectory := make(map[string][]sthState, len(w.Logs))
		if err := w.RunTimeline(func(d time.Time) {
			days = append(days, d)
			for _, name := range w.LogNames {
				sth := w.Logs[name].STH()
				trajectory[name] = append(trajectory[name], sthState{
					Size: sth.TreeHead.TreeSize,
					Root: sth.TreeHead.RootHash,
				})
			}
		}); err != nil {
			t.Fatal(err)
		}
		for _, name := range w.LogNames {
			if w.Logs[name].PendingCount() != 0 {
				t.Fatalf("parallelism %d: %s left entries staged after the replay", p, name)
			}
		}
		return trajectory, days
	}
	wantTraj, wantDays := build(replayParallelisms[0])
	var total uint64
	for _, states := range wantTraj {
		total += states[len(states)-1].Size
	}
	if total == 0 {
		t.Fatal("sequential replay produced no entries")
	}
	if len(wantDays) != 49 {
		t.Fatalf("days = %d", len(wantDays))
	}
	for _, p := range replayParallelisms[1:] {
		gotTraj, gotDays := build(p)
		if !reflect.DeepEqual(wantDays, gotDays) {
			t.Fatalf("parallelism %d day ordering differs", p)
		}
		for name, want := range wantTraj {
			got := gotTraj[name]
			if len(got) != len(want) {
				t.Fatalf("parallelism %d: %s has %d STHs, want %d", p, name, len(got), len(want))
			}
			for di := range want {
				if want[di].Size != got[di].Size {
					t.Fatalf("parallelism %d: %s day %s has %d entries, want %d",
						p, name, wantDays[di].Format("2006-01-02"), got[di].Size, want[di].Size)
				}
				if want[di].Root != got[di].Root {
					t.Fatalf("parallelism %d: %s root hash differs at day %s (size %d)",
						p, name, wantDays[di].Format("2006-01-02"), want[di].Size)
				}
			}
		}
	}
}

// TestScannerParallelEquivalence proves the Section 3.3 sweep — site
// order, scan statistics, per-log attribution, and the Section 3.4
// findings — is identical at any parallelism.
func TestScannerParallelEquivalence(t *testing.T) {
	w, err := ecosystem.New(ecosystem.Config{Seed: 5, NumDomains: 2000})
	if err != nil {
		t.Fatal(err)
	}
	w.Clock.Set(ecosystem.Date(2018, 5, 18))
	names := make(map[sct.LogID]string, len(w.Logs))
	for name, l := range w.Logs {
		names[l.LogID()] = name
	}

	type sweep struct {
		domains []string
		stats   scanner.ScanStats
		byLog   map[string]uint64
		invalid []scanner.InvalidCert
	}
	run := func(p int) sweep {
		sites, err := scanner.BuildPopulation(w, scanner.PopConfig{Seed: 11, NumSites: 2500, Parallelism: p})
		if err != nil {
			t.Fatal(err)
		}
		st, err := scanner.ScanParallel(sites, names, p)
		if err != nil {
			t.Fatal(err)
		}
		invalid, err := scanner.DetectInvalidSCTsParallel(sites, w.Verifiers(), p)
		if err != nil {
			t.Fatal(err)
		}
		out := sweep{stats: *st, byLog: st.CertsByLog.Snapshot(), invalid: invalid}
		out.stats.CertsByLog = nil
		for _, s := range sites {
			out.domains = append(out.domains, s.Domain)
		}
		return out
	}
	want := run(replayParallelisms[0])
	if want.stats.TotalCerts == 0 || len(want.invalid) != 16 {
		t.Fatalf("sweep shape: %d certs, %d invalid", want.stats.TotalCerts, len(want.invalid))
	}
	for _, p := range replayParallelisms[1:] {
		got := run(p)
		if !reflect.DeepEqual(want.domains, got.domains) {
			t.Fatalf("parallelism %d site order differs", p)
		}
		if want.stats != got.stats {
			t.Fatalf("parallelism %d stats differ:\n want %+v\n got  %+v", p, want.stats, got.stats)
		}
		if !reflect.DeepEqual(want.byLog, got.byLog) {
			t.Fatalf("parallelism %d per-log attribution differs", p)
		}
		if !reflect.DeepEqual(want.invalid, got.invalid) {
			t.Fatalf("parallelism %d findings differ", p)
		}
	}
}
