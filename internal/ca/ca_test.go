package ca

import (
	"errors"
	"testing"
	"time"

	"ctrise/internal/certs"
	"ctrise/internal/ctlog"
	"ctrise/internal/sct"
)

func testClock() func() time.Time {
	now := time.Date(2018, 4, 1, 0, 0, 0, 0, time.UTC)
	return func() time.Time { return now }
}

func newFastLog(t *testing.T, name string) *ctlog.Log {
	t.Helper()
	l, err := ctlog.New(ctlog.Config{
		Name:   name,
		Signer: sct.NewFastSigner(name),
		Clock:  testClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func newCA(t *testing.T, name string, logs ...LogSubmitter) *CA {
	t.Helper()
	c, err := New(Config{Name: name, Org: name + " Org", Logs: logs, Clock: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func verifierMap(logs ...*ctlog.Log) map[sct.LogID]sct.SCTVerifier {
	m := make(map[sct.LogID]sct.SCTVerifier)
	for _, l := range logs {
		m[l.LogID()] = l.Verifier()
	}
	return m
}

func TestNewRequiresLogs(t *testing.T) {
	if _, err := New(Config{Name: "x"}); !errors.Is(err, ErrNoLogs) {
		t.Fatalf("err = %v", err)
	}
}

func TestIssueEmbedsValidSCTs(t *testing.T) {
	l1 := newFastLog(t, "Log One")
	l2 := newFastLog(t, "Log Two")
	c := newCA(t, "Honest CA", l1, l2)

	iss, err := c.Issue(Request{Names: []string{"www.example.org", "example.org"}, EmbedSCTs: true})
	if err != nil {
		t.Fatal(err)
	}
	if !iss.Precert.IsPrecert() {
		t.Fatal("precert lacks poison")
	}
	if iss.Final.IsPrecert() {
		t.Fatal("final cert carries poison")
	}
	if len(iss.SCTs) != 2 || len(iss.Logs) != 2 {
		t.Fatalf("SCTs = %d, logs = %v", len(iss.SCTs), iss.Logs)
	}
	// Both logs staged the precert; sequencing integrates it.
	l1.Sequence()
	l2.Sequence()
	if l1.TreeSize() != 1 || l2.TreeSize() != 1 {
		t.Fatalf("log sizes: %d, %d", l1.TreeSize(), l2.TreeSize())
	}
	res, err := ValidateEmbeddedSCTs(iss.Final, c.IssuerKeyHash(), verifierMap(l1, l2))
	if err != nil {
		t.Fatal(err)
	}
	if res.Invalid() || res.Valid != 2 {
		t.Fatalf("honest issuance flagged: %+v", res)
	}
}

func TestIssueWithoutEmbedding(t *testing.T) {
	l := newFastLog(t, "L")
	c := newCA(t, "TLS-Ext CA", l)
	iss, err := c.Issue(Request{Names: []string{"site.example"}})
	if err != nil {
		t.Fatal(err)
	}
	if iss.Final.HasSCTList() {
		t.Fatal("final cert should not embed SCTs")
	}
	if len(iss.SCTs) != 1 {
		t.Fatal("SCTs should still be returned for TLS-extension delivery")
	}
}

func TestIssueRejectsEmptyNames(t *testing.T) {
	l := newFastLog(t, "L")
	c := newCA(t, "CA", l)
	if _, err := c.Issue(Request{}); !errors.Is(err, ErrNoNames) {
		t.Fatalf("err = %v", err)
	}
}

func TestFaultSANReorderDetected(t *testing.T) {
	l := newFastLog(t, "L")
	c := newCA(t, "GlobalSign-like", l)
	iss, err := c.Issue(Request{
		Names:       []string{"a.example", "b.example", "c.example"},
		IPAddresses: []string{"192.0.2.1"},
		EmbedSCTs:   true,
		Fault:       FaultSANReorder,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ValidateEmbeddedSCTs(iss.Final, c.IssuerKeyHash(), verifierMap(l))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Invalid() {
		t.Fatal("SAN reorder not detected")
	}
	// The final cert still carries the same names, just reordered.
	if len(iss.Final.DNSNames) != 3 || iss.Final.DNSNames[0] != "c.example" {
		t.Fatalf("SANs = %v", iss.Final.DNSNames)
	}
}

func TestFaultExtReorderDetected(t *testing.T) {
	l := newFastLog(t, "L")
	c := newCA(t, "D-TRUST-like", l)
	iss, err := c.Issue(Request{Names: []string{"x.example"}, EmbedSCTs: true, Fault: FaultExtReorder})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ValidateEmbeddedSCTs(iss.Final, c.IssuerKeyHash(), verifierMap(l))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Invalid() {
		t.Fatal("extension reorder not detected")
	}
}

func TestFaultSANReplaceDetected(t *testing.T) {
	l := newFastLog(t, "L")
	c := newCA(t, "NetLock-like", l)
	iss, err := c.Issue(Request{Names: []string{"orig.example"}, EmbedSCTs: true, Fault: FaultSANReplace})
	if err != nil {
		t.Fatal(err)
	}
	if iss.Final.DNSNames[0] != "replaced-orig.example" {
		t.Fatalf("SANs = %v", iss.Final.DNSNames)
	}
	res, err := ValidateEmbeddedSCTs(iss.Final, c.IssuerKeyHash(), verifierMap(l))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Invalid() {
		t.Fatal("SAN replacement not detected")
	}
}

func TestFaultStaleSCTDetected(t *testing.T) {
	l := newFastLog(t, "L")
	c := newCA(t, "TeliaSonera-like", l)
	// First issuance is honest.
	if _, err := c.Issue(Request{Names: []string{"first.example"}, EmbedSCTs: true}); err != nil {
		t.Fatal(err)
	}
	// Re-issuance embeds the previous certificate's SCT.
	iss2, err := c.Issue(Request{Names: []string{"first.example"}, EmbedSCTs: true, Fault: FaultStaleSCT})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ValidateEmbeddedSCTs(iss2.Final, c.IssuerKeyHash(), verifierMap(l))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Invalid() {
		t.Fatal("stale SCT not detected (serial number changed, so TBS changed)")
	}
}

func TestFaultStaleSCTNeedsPredecessor(t *testing.T) {
	l := newFastLog(t, "L")
	c := newCA(t, "CA", l)
	if _, err := c.Issue(Request{Names: []string{"x.example"}, EmbedSCTs: true, Fault: FaultStaleSCT}); !errors.Is(err, ErrNoReplay) {
		t.Fatalf("err = %v", err)
	}
}

func TestUnknownLogReported(t *testing.T) {
	l := newFastLog(t, "L")
	c := newCA(t, "CA", l)
	iss, err := c.Issue(Request{Names: []string{"y.example"}, EmbedSCTs: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := ValidateEmbeddedSCTs(iss.Final, c.IssuerKeyHash(), map[sct.LogID]sct.SCTVerifier{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Invalid() || res.Problems[0].Reason != "unknown log" {
		t.Fatalf("res = %+v", res)
	}
}

func TestLogFinalCerts(t *testing.T) {
	l := newFastLog(t, "L")
	c, err := New(Config{Name: "LE-like", Logs: []LogSubmitter{l}, LogFinalCerts: true, Clock: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Issue(Request{Names: []string{"z.example"}, EmbedSCTs: true}); err != nil {
		t.Fatal(err)
	}
	// Precert + final cert = 2 entries.
	if l.Sequence(); l.TreeSize() != 2 {
		t.Fatalf("tree size = %d, want 2", l.TreeSize())
	}
}

func TestSerialNumbersIncrease(t *testing.T) {
	l := newFastLog(t, "L")
	c := newCA(t, "CA", l)
	i1, err := c.Issue(Request{Names: []string{"a.example"}, EmbedSCTs: true})
	if err != nil {
		t.Fatal(err)
	}
	i2, err := c.Issue(Request{Names: []string{"b.example"}, EmbedSCTs: true})
	if err != nil {
		t.Fatal(err)
	}
	if i2.Final.SerialNumber <= i1.Final.SerialNumber {
		t.Fatal("serials must increase")
	}
}

func TestRealCryptoEndToEnd(t *testing.T) {
	// The full flow with a genuine ECDSA log: SCTs verify, and a fault is
	// detected cryptographically.
	signer, err := sct.NewSigner(nil)
	if err != nil {
		t.Fatal(err)
	}
	l, err := ctlog.New(ctlog.Config{Name: "Real Log", Signer: signer, Clock: testClock()})
	if err != nil {
		t.Fatal(err)
	}
	c := newCA(t, "Real CA", l)
	iss, err := c.Issue(Request{Names: []string{"real.example", "www.real.example"}, EmbedSCTs: true})
	if err != nil {
		t.Fatal(err)
	}
	vm := map[sct.LogID]sct.SCTVerifier{l.LogID(): l.Verifier()}
	res, err := ValidateEmbeddedSCTs(iss.Final, c.IssuerKeyHash(), vm)
	if err != nil {
		t.Fatal(err)
	}
	if res.Invalid() {
		t.Fatalf("honest real-crypto issuance flagged: %+v", res)
	}

	bad, err := c.Issue(Request{Names: []string{"real.example", "www.real.example"}, EmbedSCTs: true, Fault: FaultSANReorder})
	if err != nil {
		t.Fatal(err)
	}
	res, err = ValidateEmbeddedSCTs(bad.Final, c.IssuerKeyHash(), vm)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Invalid() {
		t.Fatal("real-crypto fault not detected")
	}
}

func TestFaultStrings(t *testing.T) {
	for f, want := range map[Fault]string{
		FaultNone:       "none",
		FaultSANReorder: "san-reorder (GlobalSign class)",
		FaultExtReorder: "ext-reorder (D-TRUST class)",
		FaultSANReplace: "san-replace (NetLock class)",
		FaultStaleSCT:   "stale-sct (TeliaSonera class)",
	} {
		if f.String() != want {
			t.Errorf("Fault(%d).String() = %q", f, f.String())
		}
	}
	if Fault(99).String() == "" {
		t.Error("unknown fault must stringify")
	}
}

func TestValidateRequiresSCTList(t *testing.T) {
	cert := &certs.Certificate{Subject: certs.Name{CommonName: "x"}}
	if _, err := ValidateEmbeddedSCTs(cert, [32]byte{}, nil); !errors.Is(err, certs.ErrNoSCTList) {
		t.Fatalf("err = %v", err)
	}
}
