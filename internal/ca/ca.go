// Package ca implements the Certificate Authority engine of the
// simulation: the precertificate → SCT → final-certificate embedding flow
// of RFC 6962, log-selection policies (which drive Figure 1c's sparse
// CA×log matrix), optional logging of final certificates, and the four
// fault-injection modes that reproduce the misissuance classes of
// Section 3.4:
//
//   - FaultSANReorder (GlobalSign): the final certificate reorders SAN
//     entries relative to the precertificate.
//   - FaultExtReorder (D-TRUST): X.509 extension order changes between
//     precertificate and final certificate.
//   - FaultSANReplace (NetLock): precertificate and final certificate
//     contain entirely different SAN (and issuer) names.
//   - FaultStaleSCT (TeliaSonera): a re-issued certificate embeds the SCT
//     of the certificate it replaces.
//
// All four produce embedded SCTs whose signatures do not cover the final
// certificate's reconstructed TBS, which is exactly what the paper's
// detector finds.
package ca

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"time"

	"ctrise/internal/certs"
	"ctrise/internal/sct"
)

// Fault selects a misissuance mode for one issuance.
type Fault uint8

// Fault modes.
const (
	FaultNone Fault = iota
	FaultSANReorder
	FaultExtReorder
	FaultSANReplace
	FaultStaleSCT
)

// String names the fault after the CA that exhibited it.
func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultSANReorder:
		return "san-reorder (GlobalSign class)"
	case FaultExtReorder:
		return "ext-reorder (D-TRUST class)"
	case FaultSANReplace:
		return "san-replace (NetLock class)"
	case FaultStaleSCT:
		return "stale-sct (TeliaSonera class)"
	default:
		return fmt.Sprintf("fault(%d)", uint8(f))
	}
}

// LogSubmitter abstracts a CT log from the CA's point of view. Both
// *ctlog.Log (in-process) and *ctclient.Client wrapped in an adapter
// satisfy it.
type LogSubmitter interface {
	// Name identifies the log (for Figure 1c attribution).
	Name() string
	// LogID returns the log's RFC 6962 ID.
	LogID() sct.LogID
	// AddPreChain submits a precertificate.
	AddPreChain(issuerKeyHash [32]byte, tbs []byte) (*sct.SignedCertificateTimestamp, error)
	// AddChain submits a final certificate.
	AddChain(cert []byte) (*sct.SignedCertificateTimestamp, error)
}

// Errors returned by the CA.
var (
	ErrNoLogs   = errors.New("ca: no logs configured")
	ErrNoNames  = errors.New("ca: request has no DNS names")
	ErrNoReplay = errors.New("ca: FaultStaleSCT requires a previous issuance")
)

// Config configures a CA.
type Config struct {
	// Name is the issuer common name, e.g. "Let's Encrypt Authority X3".
	Name string
	// Org is the operator organization the paper groups issuance by,
	// e.g. "Let's Encrypt".
	Org string
	// Logs are the logs this CA submits precertificates to. Every log in
	// the slice receives every precertificate (Chrome policy requires
	// multiple logs); Figure 1c's load concentration comes from CAs
	// configuring few logs here.
	Logs []LogSubmitter
	// LogFinalCerts mirrors Let's Encrypt's post-disclosure behaviour of
	// submitting final certificates too (Section 3.4's discussion).
	LogFinalCerts bool
	// Clock supplies issuance time; defaults to time.Now.
	Clock func() time.Time
	// Validity is the certificate lifetime; defaults to 90 days.
	Validity time.Duration
}

// CA issues certificates. Issue and Prepare are safe for concurrent use:
// the mutable state (serial counter, stale-SCT predecessor) sits behind a
// mutex held only for those bookkeeping reads and writes, so concurrent
// issuances serialize on nothing but the counter — certificate
// construction, encoding, and log submission all run outside the lock.
type CA struct {
	cfg           Config
	issuerKeyHash [32]byte

	mu     sync.Mutex
	serial uint64
	// lastFinal supports FaultStaleSCT: the previously issued certificate
	// whose SCTs a faulty re-issuance copies.
	lastFinal *certs.Certificate
}

// New creates a CA. The issuer key hash is derived deterministically from
// the CA name (standing in for the SHA-256 of the issuer's SPKI).
func New(cfg Config) (*CA, error) {
	if len(cfg.Logs) == 0 {
		return nil, ErrNoLogs
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.Validity <= 0 {
		cfg.Validity = 90 * 24 * time.Hour
	}
	return &CA{
		cfg:           cfg,
		issuerKeyHash: sha256.Sum256([]byte("issuer-key:" + cfg.Name)),
	}, nil
}

// Name returns the issuer common name.
func (c *CA) Name() string { return c.cfg.Name }

// Org returns the operator organization.
func (c *CA) Org() string { return c.cfg.Org }

// IssuerKeyHash returns the hash RFC 6962 places in precert entries.
func (c *CA) IssuerKeyHash() [32]byte { return c.issuerKeyHash }

// LogsFinalCerts reports whether this CA also submits final
// certificates (Config.LogFinalCerts). Pipelines that commit precert
// submissions themselves instead of running the full Issue flow must
// fall back to the sequential path for such CAs.
func (c *CA) LogsFinalCerts() bool { return c.cfg.LogFinalCerts }

// Request describes one certificate order.
type Request struct {
	// Names are the DNS names; Names[0] becomes the subject CN.
	Names []string
	// IPAddresses are optional SAN IPs (the GlobalSign bug involved
	// certificates mixing DNS and IP SANs).
	IPAddresses []string
	// Fault selects a misissuance mode for this order.
	Fault Fault
	// EmbedSCTs controls whether the final certificate embeds the SCTs
	// (true for the post-2018 flow the paper observes ramping up).
	// When false the CA still only issues, and the site may deliver SCTs
	// via the TLS extension or OCSP instead.
	EmbedSCTs bool
	// Logs, if non-nil, overrides the CA's configured logs for this
	// order. The ecosystem timeline uses it to apply per-issuance log
	// selection policies (Figure 1c).
	Logs []LogSubmitter
}

// Issued is the result of one issuance.
type Issued struct {
	// Precert is the logged precertificate.
	Precert *certs.Certificate
	// Final is the certificate served by the site.
	Final *certs.Certificate
	// SCTs are the log promises obtained for the precertificate.
	SCTs []*sct.SignedCertificateTimestamp
	// Logs names the logs that issued the SCTs, aligned with SCTs.
	Logs []string
}

// Prepared is a planned issuance: the certificates are built and the
// precertificate TBS is encoded, but nothing has been submitted to a log
// yet. The split lets the parallel timeline replay construct certificates
// on worker goroutines and commit the log submissions separately, in a
// deterministic order.
type Prepared struct {
	ca      *CA
	req     Request
	base    *certs.Certificate
	precert *certs.Certificate
	tbs     []byte
	logs    []LogSubmitter
	// staleSCTs captures the FaultStaleSCT predecessor's SCTs at Prepare
	// time (the same value the submission-time read would have seen in a
	// sequential run).
	staleSCTs []*sct.SignedCertificateTimestamp
}

// TBS returns the encoded precertificate TBS the logs sign over.
func (p *Prepared) TBS() []byte { return p.tbs }

// IssuerKeyHash returns the hash RFC 6962 pairs with the TBS.
func (p *Prepared) IssuerKeyHash() [32]byte { return p.ca.issuerKeyHash }

// ReserveSerials atomically reserves n consecutive serial numbers,
// returning the first. Planners that fan certificate construction out
// over workers reserve a block up front and assign serials by plan
// index, keeping certificate bytes independent of worker scheduling.
func (c *CA) ReserveSerials(n uint64) uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	first := c.serial + 1
	c.serial += n
	return first
}

// Prepare plans one order: it draws the next serial and builds the
// certificates without submitting anything. Invalid orders are rejected
// before a serial is consumed, so error paths leave the serial stream
// untouched (as the pre-split Issue did).
func (c *CA) Prepare(req Request) (*Prepared, error) {
	if len(req.Names) == 0 {
		return nil, ErrNoNames
	}
	if req.Fault == FaultStaleSCT {
		c.mu.Lock()
		prev := c.lastFinal
		c.mu.Unlock()
		if prev == nil {
			return nil, ErrNoReplay
		}
	}
	return c.PrepareSerial(req, c.ReserveSerials(1))
}

// PrepareSerial is Prepare with a caller-assigned serial number, which
// must come from ReserveSerials.
func (c *CA) PrepareSerial(req Request, serial uint64) (*Prepared, error) {
	return c.PrepareSerialAt(req, serial, c.cfg.Clock())
}

// PrepareSerialAt is PrepareSerial with an explicit issuance time
// instead of the CA clock. Pipelined replays use it to construct day
// d+1's certificates while the shared virtual clock still sits on day d
// (whose submissions are being committed concurrently).
func (c *CA) PrepareSerialAt(req Request, serial uint64, now time.Time) (*Prepared, error) {
	if len(req.Names) == 0 {
		return nil, ErrNoNames
	}
	var stale []*sct.SignedCertificateTimestamp
	if req.Fault == FaultStaleSCT {
		c.mu.Lock()
		prev := c.lastFinal
		c.mu.Unlock()
		if prev == nil {
			return nil, ErrNoReplay
		}
		var err error
		if stale, err = prev.SCTs(); err != nil {
			return nil, fmt.Errorf("ca: stale-SCT fault needs an embedded predecessor: %w", err)
		}
	}
	base := &certs.Certificate{
		SerialNumber: serial,
		Issuer:       certs.Name{CommonName: c.cfg.Name, Organization: c.cfg.Org},
		Subject:      certs.Name{CommonName: req.Names[0]},
		DNSNames:     append([]string(nil), req.Names...),
		IPAddresses:  append([]string(nil), req.IPAddresses...),
		NotBefore:    now,
		NotAfter:     now.Add(c.cfg.Validity),
		Extensions: []certs.Extension{
			{OID: "2.5.29.15", Critical: true, Value: []byte{0x03, 0x02, 0x05, 0xa0}},                     // keyUsage
			{OID: "2.5.29.37", Value: []byte{0x06, 0x08, 0x2b, 0x06, 0x01, 0x05, 0x05, 0x07, 0x03, 0x01}}, // extKeyUsage serverAuth
		},
	}
	precert := base.Clone()
	precert.AddPoison()
	tbs, err := base.TBSForSCT()
	if err != nil {
		return nil, err
	}
	logs := c.cfg.Logs
	if req.Logs != nil {
		logs = req.Logs
	}
	return &Prepared{ca: c, req: req, base: base, precert: precert, tbs: tbs, logs: logs, staleSCTs: stale}, nil
}

// Submit logs the precertificate to every configured log in order and
// finalizes — the submission half of Issue.
func (p *Prepared) Submit() (*Issued, error) {
	issued := &Issued{Precert: p.precert}
	for _, l := range p.logs {
		s, err := l.AddPreChain(p.ca.issuerKeyHash, p.tbs)
		if err != nil {
			return nil, fmt.Errorf("ca: logging precert to %s: %w", l.Name(), err)
		}
		issued.SCTs = append(issued.SCTs, s)
		issued.Logs = append(issued.Logs, l.Name())
	}
	return p.finalize(issued)
}

// finalize builds the final certificate from the collected SCTs and
// optionally logs it.
func (p *Prepared) finalize(issued *Issued) (*Issued, error) {
	c := p.ca
	final := p.base.Clone()
	scts := issued.SCTs
	if p.req.Fault == FaultStaleSCT {
		// Re-issuance embedding the previous certificate's SCTs.
		scts = p.staleSCTs
	}
	if p.req.EmbedSCTs {
		if err := final.SetSCTs(scts); err != nil {
			return nil, err
		}
	}
	applyFault(final, p.req.Fault)
	issued.Final = final

	if c.cfg.LogFinalCerts {
		enc, err := final.Encode()
		if err != nil {
			return nil, err
		}
		for _, l := range p.logs {
			if _, err := l.AddChain(enc); err != nil {
				return nil, fmt.Errorf("ca: logging final cert to %s: %w", l.Name(), err)
			}
		}
	}

	if p.req.EmbedSCTs {
		c.mu.Lock()
		c.lastFinal = final
		c.mu.Unlock()
	}
	return issued, nil
}

// Issue runs the full RFC 6962 embedding flow for one order: plan,
// submit to every log, embed the SCTs.
func (c *CA) Issue(req Request) (*Issued, error) {
	p, err := c.Prepare(req)
	if err != nil {
		return nil, err
	}
	return p.Submit()
}

// applyFault mutates the final certificate after SCT issuance, so the
// embedded SCTs no longer cover its TBS.
func applyFault(final *certs.Certificate, f Fault) {
	switch f {
	case FaultSANReorder:
		if len(final.DNSNames) >= 2 {
			final.DNSNames[0], final.DNSNames[len(final.DNSNames)-1] =
				final.DNSNames[len(final.DNSNames)-1], final.DNSNames[0]
		} else if len(final.IPAddresses) >= 1 && len(final.DNSNames) >= 1 {
			// Mixed DNS/IP SANs: move the IP in front by swapping lists'
			// relative encoding order is fixed, so emulate by rotating DNS
			// names; with a single name, duplicate-swap is impossible and
			// the fault degrades to none.
		}
	case FaultExtReorder:
		if len(final.Extensions) >= 2 {
			// Swap the first two non-CT extensions.
			i, j := -1, -1
			for k, e := range final.Extensions {
				if e.OID == certs.OIDSCTList || e.OID == certs.OIDPoison {
					continue
				}
				if i < 0 {
					i = k
				} else {
					j = k
					break
				}
			}
			if i >= 0 && j >= 0 {
				final.Extensions[i], final.Extensions[j] = final.Extensions[j], final.Extensions[i]
			}
		}
	case FaultSANReplace:
		for i, n := range final.DNSNames {
			final.DNSNames[i] = "replaced-" + n
		}
		final.Subject.CommonName = "replaced-" + final.Subject.CommonName
	}
}
