package ca

import (
	"fmt"

	"ctrise/internal/certs"
	"ctrise/internal/sct"
)

// SCTProblem describes one embedded SCT that fails validation — the unit
// the paper counts in Section 3.4 ("16 certificates from 4 CAs have
// invalid SCTs embedded").
type SCTProblem struct {
	// LogID is the SCT's claimed log.
	LogID sct.LogID
	// Reason classifies the failure.
	Reason string
}

// ValidationResult summarizes one certificate's embedded SCT check.
type ValidationResult struct {
	Total    int
	Valid    int
	Problems []SCTProblem
}

// Invalid reports whether any embedded SCT failed.
func (r ValidationResult) Invalid() bool { return len(r.Problems) > 0 }

// ValidateEmbeddedSCTs reconstructs the precertificate TBS from a final
// certificate (RFC 6962 Section 3.2: strip the SCT list, everything else
// byte-identical) and verifies every embedded SCT against the issuing
// log's verifier. verifiers maps log IDs to verifiers; SCTs from unknown
// logs are reported as problems, since a relying party cannot validate
// them either.
//
// This is the detector that, run over the paper's passive and active
// certificate corpora, surfaced the GlobalSign, D-TRUST, NetLock and
// TeliaSonera misissuances.
func ValidateEmbeddedSCTs(cert *certs.Certificate, issuerKeyHash [32]byte, verifiers map[sct.LogID]sct.SCTVerifier) (ValidationResult, error) {
	var res ValidationResult
	scts, err := cert.SCTs()
	if err != nil {
		return res, err
	}
	tbs, err := cert.TBSForSCT()
	if err != nil {
		return res, err
	}
	entry := sct.PrecertEntry(issuerKeyHash, tbs)
	res.Total = len(scts)
	for _, s := range scts {
		v, ok := verifiers[s.LogID]
		if !ok {
			res.Problems = append(res.Problems, SCTProblem{LogID: s.LogID, Reason: "unknown log"})
			continue
		}
		if err := v.VerifySCT(s, entry); err != nil {
			res.Problems = append(res.Problems, SCTProblem{
				LogID:  s.LogID,
				Reason: fmt.Sprintf("signature does not cover reconstructed TBS: %v", err),
			})
			continue
		}
		res.Valid++
	}
	return res, nil
}
