package auditor

import (
	"fmt"
	"time"
)

// AlertClass is the typed, machine-checkable category of a misbehavior
// alert. Each class corresponds to one way a log can break the CT
// contract, and the chaos harness injects each one in isolation so tests
// can assert an exact class↔fault mapping.
type AlertClass string

// Alert classes.
const (
	// AlertFork: the log served a larger STH that is not an append-only
	// extension of the previously verified one (consistency proof fails).
	AlertFork AlertClass = "fork"
	// AlertRollback: the log served a validly signed STH whose tree size
	// is smaller than one it already served this auditor.
	AlertRollback AlertClass = "rollback"
	// AlertBadSignature: the log served an STH whose signature does not
	// verify under the log's known public key.
	AlertBadSignature AlertClass = "bad-signature"
	// AlertMMDViolation: an entry the log promised to include (an SCT the
	// auditor registered via ExpectInclusion) is still absent from the
	// tree after the log's own STH timestamp passed the merge deadline.
	AlertMMDViolation AlertClass = "mmd-violation"
	// AlertEquivocation: two irreconcilable views of the same log — the
	// same tree size under different roots, either served to this auditor
	// directly or discovered by cross-checking STHs with a gossip peer
	// (split view).
	AlertEquivocation AlertClass = "equivocation"
	// AlertBadEntry: a streamed entry failed its inclusion spot-check —
	// the leaf bytes the log served hash to a leaf that is not in the
	// tree its own verified STH commits to (a corrupted entry body).
	AlertBadEntry AlertClass = "bad-entry"
)

// Classes lists every alert class, in stable order, for metrics and
// golden-output enumeration.
var Classes = []AlertClass{
	AlertFork, AlertRollback, AlertBadSignature,
	AlertMMDViolation, AlertEquivocation, AlertBadEntry,
}

// Alert is one typed misbehavior report. It carries everything a
// downstream consumer (or a regression test) needs to act on it without
// parsing the human-readable detail.
type Alert struct {
	// Log is the display name of the misbehaving log.
	Log string
	// Class is the typed category.
	Class AlertClass
	// TreeSize is the tree size at which the misbehavior was observed
	// (the offending STH's size, or the verified size an entry failed
	// its spot-check against).
	TreeSize uint64
	// Time is the auditor clock's time of detection.
	Time time.Time
	// Detail is a human-readable explanation, including the underlying
	// verification error where there is one.
	Detail string
}

// String formats the alert for logs and test diagnostics.
func (a Alert) String() string {
	return fmt.Sprintf("[%s] %s size=%d: %s", a.Class, a.Log, a.TreeSize, a.Detail)
}
