// Package auditor implements an always-on, multi-log CT auditor: the
// third-party monitor whose continuous presence is what gives
// Certificate Transparency its security value (the paper's Section 6
// monitoring story, hardened against a misbehaving log rather than a
// merely crash-prone one).
//
// For every configured log the auditor follows the entry stream with a
// ctclient.Monitor, cryptographically verifies each STH signature,
// checks every tree-head transition (consistency proofs for growth,
// rollback and same-size/different-root detection otherwise),
// spot-checks inclusion proofs for streamed entries, tracks SCT
// inclusion promises against the log's MMD, and cross-checks its
// verified tree heads against gossip peers to detect split views that
// are invisible to any single vantage point. Misbehavior is emitted as
// typed, machine-checkable Alerts (see AlertClass); operational failures
// (network errors, 5xx) are counted but never alerted, so an honest log
// behind a flaky network audits clean.
//
// The verified-STH chain and the entry-consumption cursor are persisted
// per log via the internal/ctlog/storage record codec, so a restarted
// auditor resumes from its durable verification frontier: it re-alerts
// on nothing it already verified, re-streams no audited entries, and
// still catches a fork or rollback that spans the restart.
package auditor

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"ctrise/internal/ctclient"
	"ctrise/internal/ctlog"
	"ctrise/internal/merkle"
	"ctrise/internal/sct"
)

// maxSpotChecksPerPoll caps the inclusion proofs fetched per poll so a
// large catch-up batch cannot turn one poll into thousands of
// get-proof-by-hash round trips.
const maxSpotChecksPerPoll = 16

// LogConfig describes one log to audit.
type LogConfig struct {
	// Name is the log's display name (also the chain file name stem).
	Name string
	// Client talks to the log. Its Verifier must be set: an auditor that
	// cannot verify STH signatures cannot tell misbehavior from noise,
	// so New rejects unverifiable logs.
	Client *ctclient.Client
	// MMD is the log's maximum merge delay for inclusion-promise
	// tracking. Defaults to 24h.
	MMD time.Duration
}

// Config configures an Auditor.
type Config struct {
	// Logs lists the logs to follow. Order is preserved in metrics and
	// gossip output.
	Logs []LogConfig
	// StateDir, when non-empty, persists each log's verified-STH chain
	// and entry cursor so restarts resume instead of re-verifying.
	StateDir string
	// SpotCheckEvery samples every Nth streamed entry for an inclusion
	// proof check (at most maxSpotChecksPerPoll per poll). 0 defaults to
	// 8; negative disables spot-checking.
	SpotCheckEvery int
	// RetryBase overrides the monitors' backoff base before the first
	// retry of a transient fetch failure. 0 keeps the ctclient default
	// (100ms); chaos tests shrink it so injected fault storms resolve
	// in milliseconds.
	RetryBase time.Duration
	// Clock stamps alerts. Defaults to time.Now. Tests and replayed
	// ecosystems install a virtual clock.
	Clock func() time.Time
	// OnAlert, if set, is called synchronously for every new alert.
	OnAlert func(Alert)
	// OnEntry, if set, receives every streamed entry — the hook that
	// feeds incremental analytics (phish scoring, honeypot detection)
	// without a second crawl.
	OnEntry func(log string, e *ctlog.Entry)
}

// Auditor follows many logs concurrently and accumulates typed alerts.
// All exported methods are safe for concurrent use.
type Auditor struct {
	cfg   Config
	names []string
	logs  map[string]*logAuditor

	mu     sync.Mutex
	alerts []Alert
}

// New builds an Auditor and, when Config.StateDir is set, loads each
// log's persisted chain, seeding the monitors with their durable
// verification frontier.
func New(cfg Config) (*Auditor, error) {
	if len(cfg.Logs) == 0 {
		return nil, errors.New("auditor: no logs configured")
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.SpotCheckEvery == 0 {
		cfg.SpotCheckEvery = 8
	}
	if cfg.StateDir != "" {
		if err := os.MkdirAll(cfg.StateDir, 0o755); err != nil {
			return nil, fmt.Errorf("auditor: creating state dir: %w", err)
		}
	}
	a := &Auditor{cfg: cfg, logs: make(map[string]*logAuditor, len(cfg.Logs))}
	for _, lc := range cfg.Logs {
		if lc.Name == "" || lc.Client == nil {
			return nil, errors.New("auditor: log config needs a name and a client")
		}
		if lc.Client.Verifier == nil {
			return nil, fmt.Errorf("auditor: log %q has no verifier; audits must be cryptographic", lc.Name)
		}
		if _, dup := a.logs[lc.Name]; dup {
			return nil, fmt.Errorf("auditor: duplicate log %q", lc.Name)
		}
		la := &logAuditor{
			a:            a,
			name:         lc.Name,
			client:       lc.Client,
			mmd:          lc.MMD,
			mon:          ctclient.NewMonitor(lc.Client),
			expectations: make(map[merkle.Hash]uint64),
			dedupe:       make(map[string]bool),
			alertCount:   make(map[AlertClass]uint64),
		}
		if la.mmd <= 0 {
			la.mmd = 24 * time.Hour
		}
		if cfg.StateDir != "" {
			ch, err := openChain(filepath.Join(cfg.StateDir, chainFileName(lc.Name)))
			if err != nil {
				a.Close()
				return nil, err
			}
			la.ch = ch
			if ch.last != nil {
				// Resume: anchor consistency checks on the persisted head
				// and entry streaming on the persisted cursor, so nothing
				// already audited is re-fetched or re-verified.
				la.mon = ctclient.NewMonitorAt(lc.Client, ch.cursor)
				la.mon.SetLastSTH(*ch.last)
			}
		}
		if cfg.RetryBase > 0 {
			la.mon.RetryBase = cfg.RetryBase
		}
		a.logs[lc.Name] = la
		a.names = append(a.names, lc.Name)
	}
	return a, nil
}

// Close releases the per-log chain files.
func (a *Auditor) Close() error {
	var firstErr error
	for _, name := range a.names {
		la := a.logs[name]
		la.mu.Lock()
		if la.ch != nil {
			if err := la.ch.close(); err != nil && firstErr == nil {
				firstErr = err
			}
		}
		la.mu.Unlock()
	}
	return firstErr
}

// ExpectInclusion registers an SCT promise to watch: the log issued an
// SCT at sctTimestamp (milliseconds) over an entry with the given leaf
// hash. If the leaf has not streamed by the time the log's own STH
// timestamp passes sctTimestamp+MMD, an mmd-violation alert is raised.
func (a *Auditor) ExpectInclusion(log string, leafHash merkle.Hash, sctTimestamp uint64) error {
	la, ok := a.logs[log]
	if !ok {
		return fmt.Errorf("auditor: unknown log %q", log)
	}
	la.mu.Lock()
	defer la.mu.Unlock()
	la.expectations[leafHash] = sctTimestamp
	return nil
}

// PollOnce runs one audit pass over every log concurrently. Typed
// misbehavior becomes alerts, not errors; the returned error is the
// first operational failure (network, 5xx after retries) if any.
func (a *Auditor) PollOnce(ctx context.Context) error {
	var wg sync.WaitGroup
	errs := make([]error, len(a.names))
	for i, name := range a.names {
		wg.Add(1)
		go func(i int, la *logAuditor) {
			defer wg.Done()
			errs[i] = la.poll(ctx)
		}(i, a.logs[name])
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Run polls every log on the given interval until ctx is done — the
// always-on mode cmd/ctmon runs. Operational errors are counted in the
// per-log metrics and retried on the next tick rather than terminating
// the loop; only ctx cancellation returns.
func (a *Auditor) Run(ctx context.Context, interval time.Duration) error {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		_ = a.PollOnce(ctx)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}

// Alerts returns a copy of every alert raised so far, in detection
// order.
func (a *Auditor) Alerts() []Alert {
	a.mu.Lock()
	defer a.mu.Unlock()
	return append([]Alert(nil), a.alerts...)
}

// AlertCounts returns per-log, per-class alert counters (deduplicated:
// a persistent fault re-observed on every poll counts once).
func (a *Auditor) AlertCounts() map[string]map[AlertClass]uint64 {
	out := make(map[string]map[AlertClass]uint64, len(a.names))
	for _, name := range a.names {
		la := a.logs[name]
		la.mu.Lock()
		m := make(map[AlertClass]uint64, len(la.alertCount))
		for c, n := range la.alertCount {
			m[c] = n
		}
		la.mu.Unlock()
		out[name] = m
	}
	return out
}

// VerifiedSTH returns the head of a log's verified chain, or false if
// nothing has been verified yet.
func (a *Auditor) VerifiedSTH(log string) (ctlog.SignedTreeHead, bool) {
	la, ok := a.logs[log]
	if !ok {
		return ctlog.SignedTreeHead{}, false
	}
	la.mu.Lock()
	defer la.mu.Unlock()
	sth := la.mon.LastSTH()
	if sth == nil {
		return ctlog.SignedTreeHead{}, false
	}
	return *sth, true
}

// EntriesSeen reports how many entries have streamed from a log since
// this process started (restart-resumed entries are not re-counted).
func (a *Auditor) EntriesSeen(log string) uint64 {
	la, ok := a.logs[log]
	if !ok {
		return 0
	}
	la.mu.Lock()
	defer la.mu.Unlock()
	return la.entries
}

// record registers an alert, deduplicating exact repeats (same log,
// class, and detail) so a fault that persists across polls yields one
// alert, and notifies Config.OnAlert for new ones.
func (a *Auditor) record(la *logAuditor, class AlertClass, size uint64, detail string) {
	key := string(class) + "\x00" + detail
	la.mu.Lock()
	if la.dedupe[key] {
		la.mu.Unlock()
		return
	}
	la.dedupe[key] = true
	la.alertCount[class]++
	la.mu.Unlock()

	alert := Alert{Log: la.name, Class: class, TreeSize: size, Time: a.cfg.Clock(), Detail: detail}
	a.mu.Lock()
	a.alerts = append(a.alerts, alert)
	a.mu.Unlock()
	if a.cfg.OnAlert != nil {
		a.cfg.OnAlert(alert)
	}
}

// logAuditor is the per-log audit state. poll runs are serialized per
// log (PollOnce launches one goroutine per log; Run calls PollOnce
// sequentially); the mutex guards the fields read concurrently by
// metrics, gossip, and accessor methods.
type logAuditor struct {
	a      *Auditor
	name   string
	client *ctclient.Client
	mmd    time.Duration

	mu  sync.Mutex
	mon *ctclient.Monitor
	ch  *chain // nil when StateDir is unset
	// expectations maps leaf hash → SCT timestamp for registered
	// inclusion promises not yet observed in the stream.
	expectations map[merkle.Hash]uint64
	dedupe       map[string]bool
	alertCount   map[AlertClass]uint64
	// metrics
	polls      uint64
	pollErrors uint64
	entries    uint64
	spotChecks uint64
	sampleTick uint64
}

// poll runs one audit pass: fetch and verify the STH transition, stream
// new entries (feeding analytics, inclusion expectations, and the
// spot-check sample), verify the sample's inclusion proofs, enforce MMD
// promises, and persist the advanced chain head. Typed misbehavior is
// recorded as an alert and poll returns nil — the alert is the outcome;
// only operational failures return an error.
func (la *logAuditor) poll(ctx context.Context) error {
	var sample []*ctlog.Entry
	every := la.a.cfg.SpotCheckEvery
	err := la.mon.Poll(ctx, func(e *ctlog.Entry) error {
		la.mu.Lock()
		la.entries++
		if h, herr := e.LeafHash(); herr == nil {
			delete(la.expectations, h)
		}
		if every > 0 && la.sampleTick%uint64(every) == 0 && len(sample) < maxSpotChecksPerPoll {
			sample = append(sample, e)
		}
		la.sampleTick++
		la.mu.Unlock()
		if la.a.cfg.OnEntry != nil {
			la.a.cfg.OnEntry(la.name, e)
		}
		return nil
	})
	la.mu.Lock()
	la.polls++
	lastSize := uint64(0)
	if sth := la.mon.LastSTH(); sth != nil {
		lastSize = sth.TreeHead.TreeSize
	}
	la.mu.Unlock()
	if err != nil {
		if class, ok := classifyPollError(err); ok {
			la.a.record(la, class, lastSize, err.Error())
			return nil
		}
		la.mu.Lock()
		la.pollErrors++
		la.mu.Unlock()
		return fmt.Errorf("auditor: %s: %w", la.name, err)
	}

	sth := la.mon.LastSTH() // non-nil after a successful Poll
	var firstErr error
	for _, e := range sample {
		la.mu.Lock()
		la.spotChecks++
		la.mu.Unlock()
		if err := la.spotCheck(ctx, e, *sth); err != nil {
			if isBadEntry(err) {
				la.a.record(la, AlertBadEntry, sth.TreeHead.TreeSize,
					fmt.Sprintf("entry %d failed inclusion spot-check: %v", e.Index, err))
				continue
			}
			la.mu.Lock()
			la.pollErrors++
			la.mu.Unlock()
			if firstErr == nil {
				firstErr = fmt.Errorf("auditor: %s: spot-check entry %d: %w", la.name, e.Index, err)
			}
		}
	}

	// MMD enforcement runs on the log's own clock (the STH timestamp),
	// so a virtual-clock replay and a wall-clock deployment behave
	// identically: an expectation is violated once the log publishes a
	// head dated past the promise deadline without the entry.
	la.mu.Lock()
	mmdMillis := uint64(la.mmd / time.Millisecond)
	var violated []merkle.Hash
	for h, ts := range la.expectations {
		if sth.TreeHead.Timestamp > ts+mmdMillis {
			violated = append(violated, h)
		}
	}
	for _, h := range violated {
		delete(la.expectations, h)
	}
	la.mu.Unlock()
	// Deterministic alert order regardless of map iteration.
	sort.Slice(violated, func(i, j int) bool {
		return bytes.Compare(violated[i][:], violated[j][:]) < 0
	})
	for _, h := range violated {
		la.a.record(la, AlertMMDViolation, sth.TreeHead.TreeSize,
			fmt.Sprintf("entry %x not merged by STH dated %d (MMD %v)", h[:8], sth.TreeHead.Timestamp, la.mmd))
	}

	// Persist the advanced frontier. Idle republishes (same size, root,
	// and cursor) are skipped so the chain file stays bounded at zero
	// load.
	la.mu.Lock()
	defer la.mu.Unlock()
	if la.ch != nil {
		cursor := la.mon.NextIndex()
		if la.ch.last == nil ||
			la.ch.last.TreeHead.TreeSize != sth.TreeHead.TreeSize ||
			la.ch.last.TreeHead.RootHash != sth.TreeHead.RootHash ||
			la.ch.cursor != cursor {
			if err := la.ch.append(*sth, cursor); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("auditor: %s: persisting chain: %w", la.name, err)
			}
		}
	}
	return firstErr
}

// spotCheck proves one streamed entry is included in the verified tree
// AT THE INDEX IT WAS SERVED AT. The position check matters:
// Client.VerifyInclusion alone verifies the proof at whatever index the
// log returns for the hash, which proves "this leaf exists somewhere" —
// a log that permutes entry contents across positions (serving entry
// i's body in entry j's slot) would pass it, because every served body
// still hashes to some leaf in the tree. Binding the proof to the
// served position closes that hole.
func (la *logAuditor) spotCheck(ctx context.Context, e *ctlog.Entry, sth ctlog.SignedTreeHead) error {
	leafHash, err := e.LeafHash()
	if err != nil {
		return err
	}
	index, proof, err := la.client.GetProofByHash(ctx, leafHash, sth.TreeHead.TreeSize)
	if err != nil {
		return err
	}
	if index != e.Index {
		return fmt.Errorf("%w: served at index %d, log proves it at %d", merkle.ErrProofInvalid, e.Index, index)
	}
	return merkle.VerifyInclusion(leafHash, index, sth.TreeHead.TreeSize, proof, merkle.Hash(sth.TreeHead.RootHash))
}

// classifyPollError maps Monitor.Poll's typed misbehavior errors to
// alert classes. Anything else (transport, 5xx, context) is operational.
func classifyPollError(err error) (AlertClass, bool) {
	switch {
	case errors.Is(err, ctclient.ErrRollback):
		return AlertRollback, true
	case errors.Is(err, ctclient.ErrEquivocation):
		return AlertEquivocation, true
	case errors.Is(err, ctclient.ErrFork):
		return AlertFork, true
	case errors.Is(err, sct.ErrInvalidSignature),
		errors.Is(err, sct.ErrUnsupportedAlgorithm),
		errors.Is(err, sct.ErrUnsupportedVersion):
		return AlertBadSignature, true
	}
	return "", false
}

// isBadEntry reports whether an inclusion spot-check failure is
// evidence against the served entry bytes: the log does not know the
// leaf hash we computed from them (404 — the hash is not in its tree),
// or it produced a proof that does not verify. Transport failures are
// not evidence.
func isBadEntry(err error) bool {
	if errors.Is(err, merkle.ErrProofInvalid) {
		return true
	}
	var se *ctclient.StatusError
	if errors.As(err, &se) {
		return se.Code == 404 || se.Code == 400
	}
	return false
}
