package auditor_test

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"ctrise/internal/chaos"
)

func scrape(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("GET /metrics: content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func wantLine(t *testing.T, body, line string) {
	t.Helper()
	for _, l := range strings.Split(body, "\n") {
		if l == line {
			return
		}
	}
	t.Fatalf("metrics scrape missing %q; got:\n%s", line, body)
}

func TestMetricsScrape(t *testing.T) {
	w := newChaosWorld(t, 3)
	a := w.NewAuditor("", nil)
	pollClean(t, a)

	msrv := httptest.NewServer(a.MetricsHandler())
	defer msrv.Close()

	body := scrape(t, msrv.URL)
	wantLine(t, body, `ctaudit_tree_size{log="chaos-log"} 3`)
	wantLine(t, body, `ctaudit_lag_entries{log="chaos-log"} 0`)
	wantLine(t, body, `ctaudit_entries_total{log="chaos-log"} 3`)
	wantLine(t, body, `ctaudit_polls_total{log="chaos-log"} 1`)
	wantLine(t, body, `ctaudit_spot_checks_total{log="chaos-log"} 3`)
	// Alert families are present with zeros before anything goes wrong,
	// so dashboards get stable series from the first scrape.
	wantLine(t, body, `ctaudit_alerts_total{log="chaos-log",class="rollback"} 0`)
	wantLine(t, body, `ctaudit_alerts_total{log="chaos-log",class="equivocation"} 0`)

	// A detected fault moves exactly its own counter. The log needs a
	// second recorded head before it can roll back to an older one.
	w.Grow(2)
	pollClean(t, a)
	w.chaos.SetFault(chaos.FaultRollback)
	pollFaulty(t, a)
	body = scrape(t, msrv.URL)
	wantLine(t, body, `ctaudit_alerts_total{log="chaos-log",class="rollback"} 1`)
	wantLine(t, body, `ctaudit_alerts_total{log="chaos-log",class="fork"} 0`)
	wantLine(t, body, `ctaudit_polls_total{log="chaos-log"} 3`)
	wantLine(t, body, `ctaudit_entries_total{log="chaos-log"} 5`)
	// The verified head never regressed to the rolled-back size.
	wantLine(t, body, `ctaudit_tree_size{log="chaos-log"} 5`)
}
