package auditor_test

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/alerts.golden from this run")

// TestAlertRegression pins the alert classes raised by every fault
// scenario to a golden file. A refactor that makes a fault raise a
// different class — or stop raising at all — fails here even if each
// individual matrix test was updated to match the regression.
func TestAlertRegression(t *testing.T) {
	var b strings.Builder
	for _, sc := range faultScenarios {
		alerts := sc.run(t)
		b.WriteString(sc.name)
		b.WriteString(":")
		if len(alerts) == 0 {
			b.WriteString(" (none)")
		}
		for _, a := range alerts {
			b.WriteString(" ")
			b.WriteString(string(a.Class))
		}
		b.WriteString("\n")
	}
	got := b.String()

	goldenPath := filepath.Join("testdata", "alerts.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("alert regression: fault scenarios changed their alerts\n got:\n%s\nwant:\n%s", got, want)
	}
}
