package auditor

import (
	"fmt"
	"os"
	"strings"

	"ctrise/internal/ctlog"
	"ctrise/internal/ctlog/storage"
	"ctrise/internal/sct"
)

// chain is one log's durable verified-STH chain: an append-only file of
// storage-codec records (AuditMagic header) holding every tree head the
// auditor cryptographically verified, interleaved with cursor records
// recording the entry-consumption frontier. The chain is the auditor's
// memory across restarts: its head anchors cross-restart fork/rollback
// detection, and its cursor prevents re-streaming (and re-spot-checking)
// entries that were already audited.
//
// Crash semantics follow the WAL's: on open, the valid record prefix is
// adopted and any torn tail is truncated away — the worst a crash costs
// is re-verifying the last un-persisted poll, never a diverged anchor.
type chain struct {
	path string
	f    *os.File

	last   *ctlog.SignedTreeHead // head of the verified chain, nil if empty
	cursor uint64                // first entry index not yet consumed
	heads  int                   // number of verified STH records
}

// openChain opens (or creates) a chain file and replays its valid
// prefix. A missing file starts an empty chain; a present file with the
// wrong magic is storage.ErrCorrupt.
func openChain(path string) (*chain, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("auditor: opening chain %s: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("auditor: reading chain %s: %w", path, err)
	}
	c := &chain{path: path, f: f}
	valid := int64(storage.MagicLen)
	if len(data) < storage.MagicLen {
		// Fresh (or header-torn) file: write the header and start empty.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("auditor: resetting chain: %w", err)
		}
		if _, err := f.WriteAt(storage.AuditMagic, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("auditor: writing chain header: %w", err)
		}
	} else {
		for i, b := range storage.AuditMagic {
			if data[i] != b {
				f.Close()
				return nil, fmt.Errorf("%w: bad audit chain magic in %s", storage.ErrCorrupt, path)
			}
		}
		recs, v := storage.ScanRecords(data[storage.MagicLen:])
		valid = int64(storage.MagicLen + v)
		for _, rec := range recs {
			switch rec.Type {
			case storage.RecordSTH:
				sth, err := decodeChainSTH(rec.Payload)
				if err != nil {
					f.Close()
					return nil, err
				}
				c.last = &sth
				c.heads++
			case storage.RecordAuditCursor:
				cur, err := storage.DecodeAuditCursor(rec.Payload)
				if err != nil {
					f.Close()
					return nil, err
				}
				c.cursor = cur
			default:
				f.Close()
				return nil, fmt.Errorf("%w: unexpected record type %d in audit chain", storage.ErrCorrupt, rec.Type)
			}
		}
	}
	// Truncate crash debris so appends continue from the last valid
	// record.
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("auditor: truncating chain: %w", err)
	}
	if _, err := f.Seek(valid, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("auditor: seeking chain: %w", err)
	}
	return c, nil
}

// append records one newly verified tree head and the entry cursor after
// consuming its entries, fsynced before returning so the verification
// work a crash can cost is bounded at one poll.
func (c *chain) append(sth ctlog.SignedTreeHead, cursor uint64) error {
	sig, err := sth.Sig.Serialize()
	if err != nil {
		return fmt.Errorf("auditor: serializing chain STH signature: %w", err)
	}
	buf := storage.AppendRecord(nil, storage.RecordSTH, storage.EncodeSTH(storage.STHRecord{
		Timestamp: sth.TreeHead.Timestamp,
		TreeSize:  sth.TreeHead.TreeSize,
		Root:      sth.TreeHead.RootHash,
		Sig:       sig,
	}))
	buf = storage.AppendRecord(buf, storage.RecordAuditCursor, storage.EncodeAuditCursor(cursor))
	if _, err := c.f.Write(buf); err != nil {
		return fmt.Errorf("auditor: appending chain record: %w", err)
	}
	if err := c.f.Sync(); err != nil {
		return fmt.Errorf("auditor: syncing chain: %w", err)
	}
	c.last = &sth
	c.cursor = cursor
	c.heads++
	return nil
}

func (c *chain) close() error {
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}

// decodeChainSTH reverses chain.append's STH encoding back into the
// in-memory form the Monitor is seeded with.
func decodeChainSTH(payload []byte) (ctlog.SignedTreeHead, error) {
	rec, err := storage.DecodeSTH(payload)
	if err != nil {
		return ctlog.SignedTreeHead{}, err
	}
	ds, err := sct.ParseDigitallySigned(rec.Sig)
	if err != nil {
		return ctlog.SignedTreeHead{}, fmt.Errorf("%w: chain STH signature: %v", storage.ErrCorrupt, err)
	}
	return ctlog.SignedTreeHead{
		TreeHead: sct.TreeHead{
			Timestamp: rec.Timestamp,
			TreeSize:  rec.TreeSize,
			RootHash:  rec.Root,
		},
		Sig: ds,
	}, nil
}

// chainFileName maps a log display name to a filesystem-safe chain file
// name, mirroring the ecosystem's log directory naming.
func chainFileName(logName string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, logName) + ".audit"
}
