package auditor_test

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ctrise/internal/auditor"
	"ctrise/internal/chaos"
	"ctrise/internal/ctclient"
	"ctrise/internal/ctlog"
	"ctrise/internal/sct"
)

const logName = "chaos-log"

// chaosWorld is one misbehaving-capable log served over HTTP, with a
// virtual clock shared by the log and the auditors under test.
type chaosWorld struct {
	t     *testing.T
	mu    sync.Mutex
	now   time.Time
	chaos *chaos.Log
	srv   *httptest.Server
}

func newChaosWorld(t *testing.T, entries int) *chaosWorld {
	return newChaosWorldProxied(t, entries, nil)
}

// newChaosWorldProxied additionally routes all HTTP through a chaos
// Proxy with the given fault schedule.
func newChaosWorldProxied(t *testing.T, entries int, sched *chaos.Schedule) *chaosWorld {
	t.Helper()
	w := &chaosWorld{t: t, now: time.Date(2018, 4, 12, 14, 0, 0, 0, time.UTC)}
	signer := sct.NewFastSigner(logName)
	honest, err := ctlog.New(ctlog.Config{Name: logName, Signer: signer, Clock: w.Now})
	if err != nil {
		t.Fatal(err)
	}
	w.chaos = chaos.NewLog(honest, signer, w.Now)
	for i := 0; i < entries; i++ {
		if _, err := honest.AddChain([]byte(fmt.Sprintf("seed-cert-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := honest.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	var h http.Handler = w.chaos.Handler()
	if sched != nil {
		h = chaos.NewProxy(h, *sched)
	}
	w.srv = httptest.NewServer(h)
	t.Cleanup(w.srv.Close)
	return w
}

func (w *chaosWorld) Now() time.Time {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.now
}

func (w *chaosWorld) Advance(d time.Duration) {
	w.mu.Lock()
	w.now = w.now.Add(d)
	w.mu.Unlock()
}

// Grow appends n entries to the honest log and publishes a new head.
func (w *chaosWorld) Grow(n int) {
	w.t.Helper()
	for i := 0; i < n; i++ {
		cert := fmt.Sprintf("grown-cert-%d-%d", w.chaos.Honest().TreeSize(), i)
		if _, err := w.chaos.Honest().AddChain([]byte(cert)); err != nil {
			w.t.Fatal(err)
		}
	}
	if _, err := w.chaos.Honest().PublishSTH(); err != nil {
		w.t.Fatal(err)
	}
}

// Submit stages a certificate (without publishing) and returns its SCT.
func (w *chaosWorld) Submit(cert []byte) *sct.SignedCertificateTimestamp {
	w.t.Helper()
	s, err := w.chaos.Honest().AddChain(cert)
	if err != nil {
		w.t.Fatal(err)
	}
	return s
}

// NewAuditor builds a single-log auditor over the world's server. A
// non-nil transport pins the auditor's HTTP client (e.g. to the shadow
// view); stateDir enables chain persistence.
func (w *chaosWorld) NewAuditor(stateDir string, transport http.RoundTripper) *auditor.Auditor {
	w.t.Helper()
	client := ctclient.New(w.srv.URL, sct.NewFastVerifier(logName))
	if transport != nil {
		client.HTTPClient = &http.Client{Transport: transport}
	}
	a, err := auditor.New(auditor.Config{
		Logs:           []auditor.LogConfig{{Name: logName, Client: client, MMD: time.Hour}},
		StateDir:       stateDir,
		SpotCheckEvery: 1,
		RetryBase:      time.Millisecond,
		Clock:          w.Now,
	})
	if err != nil {
		w.t.Fatal(err)
	}
	w.t.Cleanup(func() { a.Close() })
	return a
}

// pollClean runs one audit pass that must neither error nor alert.
func pollClean(t *testing.T, a *auditor.Auditor) {
	t.Helper()
	before := len(a.Alerts())
	if err := a.PollOnce(context.Background()); err != nil {
		t.Fatalf("clean poll failed: %v", err)
	}
	if got := a.Alerts(); len(got) != before {
		t.Fatalf("clean poll raised alerts: %v", got[before:])
	}
}

// pollFaulty runs one audit pass against an active fault: misbehavior
// must surface as alerts, never as an operational error.
func pollFaulty(t *testing.T, a *auditor.Auditor) {
	t.Helper()
	if err := a.PollOnce(context.Background()); err != nil {
		t.Fatalf("faulty poll returned an operational error instead of alerting: %v", err)
	}
}

func classesOf(alerts []auditor.Alert) []auditor.AlertClass {
	out := make([]auditor.AlertClass, len(alerts))
	for i, al := range alerts {
		out[i] = al.Class
	}
	return out
}

// faultScenarios is the E2E fault matrix: every injected fault class
// with exactly the typed alerts it must raise. TestFaultMatrix asserts
// each scenario; TestAlertRegression pins the rendered outcome to
// testdata/alerts.golden.
var faultScenarios = []struct {
	name string
	want []auditor.AlertClass
	run  func(t *testing.T) []auditor.Alert
}{
	{
		name: "rollback",
		want: []auditor.AlertClass{auditor.AlertRollback},
		run: func(t *testing.T) []auditor.Alert {
			w := newChaosWorld(t, 3)
			a := w.NewAuditor("", nil)
			pollClean(t, a) // verifies and records size 3
			w.Grow(2)
			pollClean(t, a) // verifies size 5
			w.chaos.SetFault(chaos.FaultRollback)
			pollFaulty(t, a) // log re-serves the recorded size-3 head
			return a.Alerts()
		},
	},
	{
		name: "same-size-equivocation",
		want: []auditor.AlertClass{auditor.AlertEquivocation},
		run: func(t *testing.T) []auditor.Alert {
			w := newChaosWorld(t, 3)
			a := w.NewAuditor("", nil)
			pollClean(t, a)
			w.chaos.SetFault(chaos.FaultEquivocate)
			pollFaulty(t, a) // same size, different (validly signed) root
			return a.Alerts()
		},
	},
	{
		name: "fork",
		want: []auditor.AlertClass{auditor.AlertFork},
		run: func(t *testing.T) []auditor.Alert {
			w := newChaosWorld(t, 3)
			a := w.NewAuditor("", nil)
			pollClean(t, a)
			w.Grow(2)
			w.chaos.SetFault(chaos.FaultFork)
			pollFaulty(t, a) // larger forked head, unlinkable history
			return a.Alerts()
		},
	},
	{
		name: "bad-signature",
		want: []auditor.AlertClass{auditor.AlertBadSignature},
		run: func(t *testing.T) []auditor.Alert {
			w := newChaosWorld(t, 3)
			a := w.NewAuditor("", nil)
			w.chaos.SetFault(chaos.FaultBadSignature)
			pollFaulty(t, a) // head the log never signed
			return a.Alerts()
		},
	},
	{
		name: "mmd-violation",
		want: []auditor.AlertClass{auditor.AlertMMDViolation},
		run: func(t *testing.T) []auditor.Alert {
			w := newChaosWorld(t, 1)
			a := w.NewAuditor("", nil)
			pollClean(t, a)
			cert := []byte("promised-but-never-merged")
			s := w.Submit(cert)
			e := &ctlog.Entry{Timestamp: s.Timestamp, Type: sct.X509LogEntryType, Cert: cert}
			lh, err := e.LeafHash()
			if err != nil {
				t.Fatal(err)
			}
			if err := a.ExpectInclusion(logName, lh, s.Timestamp); err != nil {
				t.Fatal(err)
			}
			w.chaos.SetFault(chaos.FaultWithhold) // head pinned before the merge
			w.Advance(2 * time.Hour)              // MMD is 1h
			pollFaulty(t, a)                      // fresh-timestamp head, entry still missing
			return a.Alerts()
		},
	},
	{
		name: "corrupt-entry",
		want: []auditor.AlertClass{auditor.AlertBadEntry, auditor.AlertBadEntry},
		run: func(t *testing.T) []auditor.Alert {
			w := newChaosWorld(t, 2)
			a := w.NewAuditor("", nil)
			w.chaos.SetFault(chaos.FaultCorruptEntries)
			pollFaulty(t, a) // honest head, tampered entry bodies
			return a.Alerts()
		},
	},
	{
		name: "split-view",
		want: []auditor.AlertClass{auditor.AlertEquivocation, auditor.AlertEquivocation},
		run: func(t *testing.T) []auditor.Alert {
			w := newChaosWorld(t, 3)
			w.chaos.SetFault(chaos.FaultSplitView)
			a := w.NewAuditor("", nil)
			b := w.NewAuditor("", chaos.ViewTransport(nil, chaos.ViewShadow))
			// Each vantage point alone audits clean: both views are
			// internally consistent, validly signed histories.
			pollClean(t, a)
			pollClean(t, b)
			// Gossip exposes the split: first a learns of b's head, then
			// the reverse.
			ctx := context.Background()
			if err := a.CrossCheck(ctx, b.GossipSTHs()); err != nil {
				t.Fatalf("cross-check a<-b: %v", err)
			}
			if err := b.CrossCheck(ctx, a.GossipSTHs()); err != nil {
				t.Fatalf("cross-check b<-a: %v", err)
			}
			return append(a.Alerts(), b.Alerts()...)
		},
	},
	{
		name: "network-chaos",
		want: nil, // an honest log behind a hostile network must audit clean
		run: func(t *testing.T) []auditor.Alert {
			w := newChaosWorldProxied(t, 3, &chaos.Schedule{
				Seed:          7,
				ResetOneIn:    7,
				ErrOneIn:      6,
				TruncateOneIn: 8,
				ErrBurst:      2,
			})
			a := w.NewAuditor("", nil)
			// Faults can exhaust a poll's retry budget — that is an
			// operational error, not misbehavior, so polls are retried
			// until the auditor has consumed the whole log.
			for i := 0; i < 20 && a.EntriesSeen(logName) < 5; i++ {
				if i == 4 {
					w.Grow(2)
				}
				_ = a.PollOnce(context.Background())
			}
			if got := a.EntriesSeen(logName); got != 5 {
				t.Fatalf("auditor consumed %d entries through the chaos proxy, want 5", got)
			}
			return a.Alerts()
		},
	},
}

func TestFaultMatrix(t *testing.T) {
	for _, sc := range faultScenarios {
		t.Run(sc.name, func(t *testing.T) {
			got := classesOf(sc.run(t))
			if len(got) != len(sc.want) {
				t.Fatalf("alerts = %v, want %v", got, sc.want)
			}
			for i := range got {
				if got[i] != sc.want[i] {
					t.Fatalf("alerts = %v, want %v", got, sc.want)
				}
			}
		})
	}
}

// TestAlertsCarryContext checks the alert payload is actionable: log
// name, class, tree size, and a detail string.
func TestAlertsCarryContext(t *testing.T) {
	w := newChaosWorld(t, 3)
	var fired []auditor.Alert
	client := ctclient.New(w.srv.URL, sct.NewFastVerifier(logName))
	a, err := auditor.New(auditor.Config{
		Logs:      []auditor.LogConfig{{Name: logName, Client: client}},
		RetryBase: time.Millisecond,
		Clock:     w.Now,
		OnAlert:   func(al auditor.Alert) { fired = append(fired, al) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	pollClean(t, a)
	w.Grow(2)
	pollClean(t, a)
	w.chaos.SetFault(chaos.FaultRollback)
	pollFaulty(t, a)

	alerts := a.Alerts()
	if len(alerts) != 1 || len(fired) != 1 {
		t.Fatalf("want exactly one alert (got %d) and one OnAlert call (got %d)", len(alerts), len(fired))
	}
	al := alerts[0]
	if al.Log != logName || al.Class != auditor.AlertRollback {
		t.Fatalf("alert misattributed: %+v", al)
	}
	if al.TreeSize != 5 {
		t.Fatalf("alert tree size = %d, want the verified size 5", al.TreeSize)
	}
	if al.Detail == "" || al.String() == "" {
		t.Fatalf("alert lacks detail: %+v", al)
	}
	if !al.Time.Equal(w.Now()) {
		t.Fatalf("alert time = %v, want virtual now %v", al.Time, w.Now())
	}

	// The same persistent fault on the next poll must not duplicate.
	pollFaulty(t, a)
	if got := a.Alerts(); len(got) != 1 {
		t.Fatalf("persistent fault re-alerted: %d alerts", len(got))
	}
	counts := a.AlertCounts()
	if counts[logName][auditor.AlertRollback] != 1 {
		t.Fatalf("alert counts = %v, want rollback=1", counts[logName])
	}
}

// TestOnEntryFeedsAnalytics checks the streamed-entry hook sees every
// audited entry exactly once.
func TestOnEntryFeedsAnalytics(t *testing.T) {
	w := newChaosWorld(t, 4)
	var mu sync.Mutex
	seen := make(map[uint64]int)
	client := ctclient.New(w.srv.URL, sct.NewFastVerifier(logName))
	a, err := auditor.New(auditor.Config{
		Logs:      []auditor.LogConfig{{Name: logName, Client: client}},
		RetryBase: time.Millisecond,
		Clock:     w.Now,
		OnEntry: func(log string, e *ctlog.Entry) {
			mu.Lock()
			seen[e.Index]++
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	pollClean(t, a)
	w.Grow(2)
	pollClean(t, a)
	if len(seen) != 6 {
		t.Fatalf("OnEntry saw %d distinct entries, want 6", len(seen))
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("entry %d delivered %d times", idx, n)
		}
	}
}

func TestAuditorRequiresVerifier(t *testing.T) {
	client := &ctclient.Client{BaseURL: "http://unused.invalid"}
	_, err := auditor.New(auditor.Config{
		Logs: []auditor.LogConfig{{Name: "naked-log", Client: client}},
	})
	if err == nil {
		t.Fatal("auditor accepted a log without a verifier; audits must be cryptographic")
	}
}
