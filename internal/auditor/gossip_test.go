package auditor_test

import (
	"context"
	"encoding/base64"
	"net/http/httptest"
	"testing"

	"ctrise/internal/auditor"
	"ctrise/internal/chaos"
)

// Gossip over real HTTP: GossipHandler → FetchGossip → CrossCheckPeer.

func TestGossipHTTPRoundTrip(t *testing.T) {
	w := newChaosWorld(t, 3)
	a := w.NewAuditor("", nil)
	b := w.NewAuditor("", nil)
	pollClean(t, a)
	pollClean(t, b)

	gsrv := httptest.NewServer(a.GossipHandler())
	defer gsrv.Close()

	sths, err := auditor.FetchGossip(context.Background(), nil, gsrv.URL)
	if err != nil {
		t.Fatal(err)
	}
	if len(sths) != 1 || sths[0].Log != logName || sths[0].TreeSize != 3 {
		t.Fatalf("gossip payload = %+v, want one STH for %q at size 3", sths, logName)
	}

	// Two honest auditors cross-check without raising anything.
	if err := b.CrossCheckPeer(context.Background(), nil, gsrv.URL); err != nil {
		t.Fatal(err)
	}
	if alerts := b.Alerts(); len(alerts) != 0 {
		t.Fatalf("honest cross-check raised alerts: %v", alerts)
	}
}

func TestCrossCheckPeerDetectsSplitViewOverHTTP(t *testing.T) {
	w := newChaosWorld(t, 3)
	w.chaos.SetFault(chaos.FaultSplitView)

	a := w.NewAuditor("", nil)
	b := w.NewAuditor("", chaos.ViewTransport(nil, chaos.ViewShadow))
	pollClean(t, a) // honest view
	pollClean(t, b) // shadow view — internally consistent, so clean

	gsrv := httptest.NewServer(b.GossipHandler())
	defer gsrv.Close()
	if err := a.CrossCheckPeer(context.Background(), nil, gsrv.URL); err != nil {
		t.Fatal(err)
	}
	alerts := a.Alerts()
	if len(alerts) != 1 || alerts[0].Class != auditor.AlertEquivocation {
		t.Fatalf("split view over gossip HTTP: alerts = %v, want one equivocation", alerts)
	}
}

func TestCrossCheckRejectsForgedPeerSTH(t *testing.T) {
	w := newChaosWorld(t, 3)
	a := w.NewAuditor("", nil)
	b := w.NewAuditor("", nil)
	pollClean(t, a)
	pollClean(t, b)

	// A malicious peer relays a head the log never signed: same size,
	// fabricated root, corrupted signature. This must surface as a peer
	// error, never as evidence against the log.
	forged := b.GossipSTHs()
	sig, err := base64.StdEncoding.DecodeString(forged[0].TreeHeadSignature)
	if err != nil {
		t.Fatal(err)
	}
	sig[len(sig)-1] ^= 0x01
	forged[0].TreeHeadSignature = base64.StdEncoding.EncodeToString(sig)

	if err := a.CrossCheck(context.Background(), forged); err == nil {
		t.Fatal("forged peer STH accepted without error")
	}
	if alerts := a.Alerts(); len(alerts) != 0 {
		t.Fatalf("forged peer STH produced alerts against the log: %v", alerts)
	}
}
