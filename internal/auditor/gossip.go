package auditor

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"ctrise/internal/ctclient"
	"ctrise/internal/ctlog"
	"ctrise/internal/merkle"
	"ctrise/internal/sct"
)

// Gossip: auditors exchange their latest verified STHs and cross-check
// them. A log that equivocates — serving one signed history to auditor A
// and a different signed history to auditor B — is internally consistent
// from either vantage point alone; only comparing tree heads across
// vantage points exposes the split view. The wire format carries the
// log's own signature bytes, so a receiving auditor re-verifies every
// gossiped head under the log's public key before treating a conflict as
// evidence: a malicious or buggy peer cannot forge an equivocation
// alert, because the alert requires two validly signed, irreconcilable
// heads.

// GossipSTH is one log's tree head as exchanged between auditors. Field
// encoding mirrors the ct/v1 get-sth response so the signature bytes
// survive the round trip intact.
type GossipSTH struct {
	Log               string `json:"log"`
	TreeSize          uint64 `json:"tree_size"`
	Timestamp         uint64 `json:"timestamp"`
	SHA256RootHash    string `json:"sha256_root_hash"`
	TreeHeadSignature string `json:"tree_head_signature"`
}

// GossipResponse is the body of GET /gossip/v1/sths.
type GossipResponse struct {
	STHs []GossipSTH `json:"sths"`
}

// GossipSTHs snapshots the latest verified tree head of every log, in
// configuration order, skipping logs with nothing verified yet.
func (a *Auditor) GossipSTHs() []GossipSTH {
	out := make([]GossipSTH, 0, len(a.names))
	for _, name := range a.names {
		sth, ok := a.VerifiedSTH(name)
		if !ok {
			continue
		}
		sig, err := sth.Sig.Serialize()
		if err != nil {
			continue // locally produced; cannot happen
		}
		out = append(out, GossipSTH{
			Log:               name,
			TreeSize:          sth.TreeHead.TreeSize,
			Timestamp:         sth.TreeHead.Timestamp,
			SHA256RootHash:    base64.StdEncoding.EncodeToString(sth.TreeHead.RootHash[:]),
			TreeHeadSignature: base64.StdEncoding.EncodeToString(sig),
		})
	}
	return out
}

// GossipHandler serves this auditor's verified tree heads to peers at
// GET /gossip/v1/sths.
func (a *Auditor) GossipHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /gossip/v1/sths", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(GossipResponse{STHs: a.GossipSTHs()})
	})
	return mux
}

// FetchGossip retrieves a peer auditor's tree heads from its gossip
// endpoint at baseURL (no trailing slash).
func FetchGossip(ctx context.Context, hc *http.Client, baseURL string) ([]GossipSTH, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/gossip/v1/sths", nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("auditor: gossip fetch: status %d", resp.StatusCode)
	}
	var body GossipResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, fmt.Errorf("auditor: gossip fetch: %w", err)
	}
	return body.STHs, nil
}

// CrossCheckPeer fetches a peer's tree heads and cross-checks them; see
// CrossCheck.
func (a *Auditor) CrossCheckPeer(ctx context.Context, hc *http.Client, baseURL string) error {
	sths, err := FetchGossip(ctx, hc, baseURL)
	if err != nil {
		return err
	}
	return a.CrossCheck(ctx, sths)
}

// CrossCheck compares gossiped tree heads against this auditor's own
// verified chain heads. For each gossiped head of a log this auditor
// follows:
//
//   - the head's signature is verified under the log's key (a peer
//     cannot inject evidence the log never signed);
//   - equal sizes must carry equal roots, else the log equivocated;
//   - unequal sizes must be linked by a consistency proof fetched from
//     the log itself; a proof the log cannot produce (or that fails
//     verification) means the two views share no common history —
//     a split view, alerted as equivocation.
//
// Logs this auditor does not follow, and logs it has no verified head
// for yet, are skipped. The returned error is the first operational
// failure (an unverifiable peer payload or a transport error); detected
// misbehavior is recorded as alerts, not returned.
func (a *Auditor) CrossCheck(ctx context.Context, sths []GossipSTH) error {
	var firstErr error
	for _, g := range sths {
		la, ok := a.logs[g.Log]
		if !ok {
			continue
		}
		ours, ok := a.VerifiedSTH(g.Log)
		if !ok {
			continue
		}
		theirs, err := decodeGossipSTH(g)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		if err := la.client.Verifier.VerifyTreeHead(theirs.TreeHead, theirs.Sig); err != nil {
			// Not evidence against the log — the peer sent bytes the log
			// never signed. Surface it as a peer problem.
			if firstErr == nil {
				firstErr = fmt.Errorf("auditor: gossiped STH for %s fails verification: %w", g.Log, err)
			}
			continue
		}
		if err := la.crossCheckHead(ctx, ours, theirs); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// crossCheckHead compares one validly signed peer head against our own
// verified head, fetching a consistency proof from the log when the
// sizes differ.
func (la *logAuditor) crossCheckHead(ctx context.Context, ours, theirs ctlog.SignedTreeHead) error {
	o, t := ours.TreeHead, theirs.TreeHead
	switch {
	case o.TreeSize == t.TreeSize:
		if o.RootHash != t.RootHash {
			la.a.record(la, AlertEquivocation, o.TreeSize,
				fmt.Sprintf("split view at size %d: our root %x, peer saw %x", o.TreeSize, o.RootHash[:8], t.RootHash[:8]))
		}
		return nil
	case o.TreeSize == 0 || t.TreeSize == 0:
		// Either view is the empty tree, trivially consistent with
		// anything (and logs reject first=0 proof requests).
		return nil
	default:
		first, second := o, t
		if first.TreeSize > second.TreeSize {
			first, second = second, first
		}
		proof, err := la.client.GetConsistencyProof(ctx, first.TreeSize, second.TreeSize)
		if err != nil {
			var se *ctclient.StatusError
			if errors.As(err, &se) && se.Code >= 400 && se.Code < 500 {
				// The log refuses to link two heads it signed: it cannot
				// produce a common history for them.
				la.a.record(la, AlertEquivocation, second.TreeSize,
					fmt.Sprintf("split view: log cannot link sizes %d and %d: %v", first.TreeSize, second.TreeSize, err))
				return nil
			}
			return fmt.Errorf("auditor: %s: cross-check proof: %w", la.name, err)
		}
		if err := merkle.VerifyConsistency(
			first.TreeSize, second.TreeSize,
			merkle.Hash(first.RootHash), merkle.Hash(second.RootHash), proof,
		); err != nil {
			la.a.record(la, AlertEquivocation, second.TreeSize,
				fmt.Sprintf("split view between sizes %d and %d: %v", first.TreeSize, second.TreeSize, err))
		}
		return nil
	}
}

// decodeGossipSTH reverses the wire encoding.
func decodeGossipSTH(g GossipSTH) (ctlog.SignedTreeHead, error) {
	root, err := base64.StdEncoding.DecodeString(g.SHA256RootHash)
	if err != nil || len(root) != merkle.HashSize {
		return ctlog.SignedTreeHead{}, fmt.Errorf("auditor: gossip STH for %s: bad root hash", g.Log)
	}
	sigBytes, err := base64.StdEncoding.DecodeString(g.TreeHeadSignature)
	if err != nil {
		return ctlog.SignedTreeHead{}, fmt.Errorf("auditor: gossip STH for %s: bad signature encoding", g.Log)
	}
	ds, err := sct.ParseDigitallySigned(sigBytes)
	if err != nil {
		return ctlog.SignedTreeHead{}, fmt.Errorf("auditor: gossip STH for %s: %w", g.Log, err)
	}
	sth := ctlog.SignedTreeHead{
		TreeHead: sct.TreeHead{Timestamp: g.Timestamp, TreeSize: g.TreeSize},
		Sig:      ds,
	}
	copy(sth.TreeHead.RootHash[:], root)
	return sth, nil
}
