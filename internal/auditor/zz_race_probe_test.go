package auditor_test

import (
	"context"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ctrise/internal/auditor"
	"ctrise/internal/ctclient"
	"ctrise/internal/ctlog"
	"ctrise/internal/sct"
)

func TestConcurrentMetricsScrapeRaceProbe(t *testing.T) {
	signer := sct.NewFastSigner("racelog")
	lg, err := ctlog.New(ctlog.Config{Name: "racelog", Signer: signer})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if _, err := lg.AddChain([]byte(fmt.Sprintf("cert-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := lg.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(lg.Handler())
	defer srv.Close()

	a, err := auditor.New(auditor.Config{Logs: []auditor.LogConfig{{
		Name:   "racelog",
		Client: ctclient.New(srv.URL, sct.NewFastVerifier("racelog")),
	}}})
	if err != nil {
		t.Fatal(err)
	}
	msrv := httptest.NewServer(a.MetricsHandler())
	defer msrv.Close()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			a.GossipSTHs()
			resp, err := msrv.Client().Get(msrv.URL + "/metrics")
			if err == nil {
				resp.Body.Close()
			}
		}
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < 10; i++ {
		if _, err := lg.AddChain([]byte(fmt.Sprintf("more-%d", i))); err != nil {
			t.Fatal(err)
		}
		if _, err := lg.PublishSTH(); err != nil {
			t.Fatal(err)
		}
		if err := a.PollOnce(ctx); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
}
