package auditor_test

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ctrise/internal/auditor"
	"ctrise/internal/chaos"
	"ctrise/internal/ctclient"
	"ctrise/internal/ctlog"
	"ctrise/internal/ctlog/storage"
	"ctrise/internal/sct"
)

// Restart semantics, both halves: a durable log killed mid-sequencing
// and recovered from its WAL must audit clean, and an auditor restarted
// from its persisted STH chain must resume — no re-alerting, no
// re-streaming — while still catching cross-restart misbehavior.

// TestAuditorRestartResumesFromChain: the persisted verified-STH chain
// is the auditor's durable frontier.
func TestAuditorRestartResumesFromChain(t *testing.T) {
	w := newChaosWorld(t, 3)
	stateDir := t.TempDir()

	a1 := w.NewAuditor(stateDir, nil)
	pollClean(t, a1)
	w.Grow(2)
	pollClean(t, a1)
	if got := a1.EntriesSeen(logName); got != 5 {
		t.Fatalf("first life consumed %d entries, want 5", got)
	}
	if err := a1.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life: same state dir. The verified head must be available
	// before any network traffic, and the first poll must neither
	// re-stream audited entries nor re-alert.
	var streamed []uint64
	var mu sync.Mutex
	client := ctclient.New(w.srv.URL, sct.NewFastVerifier(logName))
	a2, err := auditor.New(auditor.Config{
		Logs:           []auditor.LogConfig{{Name: logName, Client: client, MMD: time.Hour}},
		StateDir:       stateDir,
		SpotCheckEvery: 1,
		RetryBase:      time.Millisecond,
		Clock:          w.Now,
		OnEntry: func(_ string, e *ctlog.Entry) {
			mu.Lock()
			streamed = append(streamed, e.Index)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer a2.Close()

	sth, ok := a2.VerifiedSTH(logName)
	if !ok || sth.TreeHead.TreeSize != 5 {
		t.Fatalf("restarted auditor's verified head = %v (ok=%v), want size 5 before any poll", sth.TreeHead, ok)
	}
	pollClean(t, a2)
	if len(streamed) != 0 {
		t.Fatalf("restarted auditor re-streamed already-audited entries: %v", streamed)
	}

	// New growth streams from the persisted cursor, gap-free.
	w.Grow(2)
	pollClean(t, a2)
	mu.Lock()
	got := append([]uint64(nil), streamed...)
	mu.Unlock()
	if len(got) != 2 || got[0] != 5 || got[1] != 6 {
		t.Fatalf("post-restart growth streamed %v, want [5 6]", got)
	}

	// Cross-restart detection: the log rolls back to a head older than
	// anything this process has seen — only the persisted chain knows.
	w.chaos.SetFault(chaos.FaultRollback)
	pollFaulty(t, a2)
	alerts := a2.Alerts()
	if len(alerts) != 1 || alerts[0].Class != auditor.AlertRollback {
		t.Fatalf("cross-restart rollback: alerts = %v, want one rollback", alerts)
	}
}

// TestAuditorRestartAnchorsOnPersistedHead: an equivocating log that
// waits for the auditor to restart still gets caught — the restarted
// auditor anchors on its durable chain head, not on whatever the log
// serves first.
func TestAuditorRestartAnchorsOnPersistedHead(t *testing.T) {
	w := newChaosWorld(t, 3)
	stateDir := t.TempDir()
	a1 := w.NewAuditor(stateDir, nil)
	pollClean(t, a1)
	if err := a1.Close(); err != nil {
		t.Fatal(err)
	}

	// The log turns only after the auditor is gone.
	w.chaos.SetFault(chaos.FaultEquivocate)
	a2 := w.NewAuditor(stateDir, nil)
	pollFaulty(t, a2)
	alerts := a2.Alerts()
	if len(alerts) != 1 || alerts[0].Class != auditor.AlertEquivocation {
		t.Fatalf("equivocation across restart: alerts = %v, want one equivocation", alerts)
	}
}

// TestDurableLogKilledMidSequencingAuditsClean: an honest durable log,
// killed without any shutdown while submissions and sequencing race,
// recovers from its WAL to a state the auditor's persisted chain links
// to cleanly — zero alerts across the log's crash AND an auditor
// restart.
func TestDurableLogKilledMidSequencingAuditsClean(t *testing.T) {
	logDir := t.TempDir()
	stateDir := t.TempDir()
	var mu sync.Mutex
	now := time.Date(2018, 4, 12, 14, 0, 0, 0, time.UTC)
	clock := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return now
	}
	advance := func(d time.Duration) {
		mu.Lock()
		now = now.Add(d)
		mu.Unlock()
	}
	cfg := ctlog.Config{Name: logName, Signer: sct.NewFastSigner(logName), Clock: clock}
	l, err := ctlog.Open(logDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()

	client := ctclient.New(srv.URL, sct.NewFastVerifier(logName))
	newAuditor := func() *auditor.Auditor {
		a, err := auditor.New(auditor.Config{
			Logs:           []auditor.LogConfig{{Name: logName, Client: client, MMD: time.Hour}},
			StateDir:       stateDir,
			SpotCheckEvery: 1,
			RetryBase:      time.Millisecond,
			Clock:          clock,
		})
		if err != nil {
			t.Fatal(err)
		}
		return a
	}
	a := newAuditor()

	// Submissions racing a continuous sequencer, audited live.
	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			default:
				if _, err := l.PublishSTH(); err != nil {
					t.Error(err)
					return
				}
				advance(time.Second)
			}
		}
	}()
	for i := 0; i < 40; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("durable-cert-%d", i))); err != nil {
			t.Fatal(err)
		}
		if i%10 == 0 {
			pollClean(t, a)
		}
	}
	close(done)
	wg.Wait()
	pollClean(t, a)

	// Kill: abandon the log with no Close (no final snapshot, no
	// graceful anything) and restart from a byte-for-byte copy of the
	// directory — the abandoned instance still holds the flock a real
	// kill would have released.
	srv.Close()
	logDir2 := t.TempDir()
	for _, name := range []string{storage.WALName, storage.SnapshotName} {
		data, err := os.ReadFile(filepath.Join(logDir, name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(logDir2, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	l2, err := ctlog.Open(logDir2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	srv2 := httptest.NewServer(l2.Handler())
	defer srv2.Close()
	client.BaseURL = srv2.URL

	// The same auditor instance audits the recovered log clean: every
	// head the log ever served was fsynced before becoming visible, so
	// recovery can never be behind what the auditor verified.
	pollClean(t, a)

	// And new growth on the recovered log still audits clean.
	if _, err := l2.AddChain([]byte("post-recovery-cert")); err != nil {
		t.Fatal(err)
	}
	if _, err := l2.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	pollClean(t, a)
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	// Restart the auditor too: resumed from its chain, against the
	// recovered log — still clean, nothing re-verified.
	a2 := newAuditor()
	defer a2.Close()
	if _, ok := a2.VerifiedSTH(logName); !ok {
		t.Fatal("restarted auditor lost its verified head")
	}
	before := a2.EntriesSeen(logName)
	pollClean(t, a2)
	if got := a2.EntriesSeen(logName); got != before {
		t.Fatalf("restarted auditor re-streamed %d entries after clean recovery", got-before)
	}
	if alerts := a2.Alerts(); len(alerts) != 0 {
		t.Fatalf("honest crash-recovered log produced alerts: %v", alerts)
	}
}

// TestChainSurvivesTornTail: a crash mid-append to the chain file loses
// at most the torn record; reopening truncates it and the auditor
// resumes from the last intact head.
func TestChainSurvivesTornTail(t *testing.T) {
	w := newChaosWorld(t, 3)
	stateDir := t.TempDir()
	a1 := w.NewAuditor(stateDir, nil)
	pollClean(t, a1)
	w.Grow(2)
	pollClean(t, a1)
	if err := a1.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the chain file mid-record.
	var chainPath string
	matches, err := filepath.Glob(filepath.Join(stateDir, "*.audit"))
	if err != nil || len(matches) != 1 {
		t.Fatalf("want exactly one chain file, got %v (%v)", matches, err)
	}
	chainPath = matches[0]
	data, err := os.ReadFile(chainPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(chainPath, data[:len(data)-3], 0o644); err != nil {
		t.Fatal(err)
	}

	a2 := w.NewAuditor(stateDir, nil)
	sth, ok := a2.VerifiedSTH(logName)
	if !ok {
		t.Fatal("torn tail destroyed the whole chain")
	}
	// The intact prefix holds the size-3 or size-5 head (depending on
	// where the tear landed); either way the next poll must verify the
	// transition to the live head cleanly.
	if sth.TreeHead.TreeSize != 3 && sth.TreeHead.TreeSize != 5 {
		t.Fatalf("recovered head size %d, want 3 or 5", sth.TreeHead.TreeSize)
	}
	pollClean(t, a2)
	if got, _ := a2.VerifiedSTH(logName); got.TreeHead.TreeSize != 5 {
		t.Fatalf("post-recovery poll verified size %d, want 5", got.TreeHead.TreeSize)
	}
}
