package auditor

import (
	"fmt"
	"net/http"
	"strings"
)

// MetricsHandler serves the auditor's counters in the Prometheus text
// exposition format at GET /metrics: per-log verified tree size, monitor
// lag, entry/poll/spot-check throughput, operational error counts, and
// per-class alert counters (all classes emitted, zeros included, so a
// scrape sees stable series).
func (a *Auditor) MetricsHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		var b strings.Builder
		a.writeMetrics(&b)
		w.Write([]byte(b.String()))
	})
	return mux
}

// writeMetrics renders every metric family with its HELP/TYPE header.
func (a *Auditor) writeMetrics(b *strings.Builder) {
	type gauge struct {
		name, help, typ string
		value           func(la *logAuditor) uint64
	}
	families := []gauge{
		{"ctaudit_tree_size", "Latest verified STH tree size per log.", "gauge",
			func(la *logAuditor) uint64 {
				if sth := la.mon.LastSTH(); sth != nil {
					return sth.TreeHead.TreeSize
				}
				return 0
			}},
		{"ctaudit_lag_entries", "Entries behind the latest verified STH (verified size minus consumption cursor).", "gauge",
			func(la *logAuditor) uint64 {
				sth := la.mon.LastSTH()
				if sth == nil {
					return 0
				}
				next := la.mon.NextIndex()
				if sth.TreeHead.TreeSize <= next {
					return 0
				}
				return sth.TreeHead.TreeSize - next
			}},
		{"ctaudit_entries_total", "Entries streamed and audited per log this process.", "counter",
			func(la *logAuditor) uint64 { return la.entries }},
		{"ctaudit_polls_total", "Audit polls per log.", "counter",
			func(la *logAuditor) uint64 { return la.polls }},
		{"ctaudit_poll_errors_total", "Operational (non-alert) poll failures per log.", "counter",
			func(la *logAuditor) uint64 { return la.pollErrors }},
		{"ctaudit_spot_checks_total", "Inclusion-proof spot checks per log.", "counter",
			func(la *logAuditor) uint64 { return la.spotChecks }},
	}
	for _, fam := range families {
		fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s %s\n", fam.name, fam.help, fam.name, fam.typ)
		for _, name := range a.names {
			la := a.logs[name]
			la.mu.Lock()
			v := fam.value(la)
			la.mu.Unlock()
			fmt.Fprintf(b, "%s{log=%q} %d\n", fam.name, name, v)
		}
	}
	fmt.Fprintf(b, "# HELP ctaudit_alerts_total Deduplicated misbehavior alerts per log and class.\n# TYPE ctaudit_alerts_total counter\n")
	for _, name := range a.names {
		la := a.logs[name]
		la.mu.Lock()
		counts := make(map[AlertClass]uint64, len(la.alertCount))
		for c, n := range la.alertCount {
			counts[c] = n
		}
		la.mu.Unlock()
		for _, class := range Classes {
			fmt.Fprintf(b, "ctaudit_alerts_total{log=%q,class=%q} %d\n", name, class, counts[class])
		}
	}
}
