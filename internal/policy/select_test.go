package policy

import (
	"errors"
	"testing"
	"time"
)

var (
	gPilot    = Candidate{Name: "Google Pilot log", Operator: "Google", GoogleOperated: true}
	gIcarus   = Candidate{Name: "Google Icarus log", Operator: "Google", GoogleOperated: true}
	digicert  = Candidate{Name: "DigiCert Log Server", Operator: "DigiCert"}
	comodo    = Candidate{Name: "Comodo Mammoth CT log", Operator: "Comodo"}
	symantec  = Candidate{Name: "Symantec log", Operator: "Symantec"}
	lifetime  = 90 * 24 * time.Hour      // MinSCTs = 2
	lifetime3 = 20 * 30 * 24 * time.Hour // MinSCTs = 3
	lifetime5 = 48 * 30 * 24 * time.Hour // MinSCTs = 5
)

func TestSetCompliant(t *testing.T) {
	cases := []struct {
		name string
		set  []Candidate
		life time.Duration
		want bool
	}{
		{"empty", nil, lifetime, false},
		{"google+nongoogle", []Candidate{gPilot, digicert}, lifetime, true},
		{"two google", []Candidate{gPilot, gIcarus}, lifetime, false},
		{"two nongoogle", []Candidate{digicert, comodo}, lifetime, false},
		{"duplicate counted once", []Candidate{gPilot, gPilot}, lifetime, false},
		{"count short for long lifetime", []Candidate{gPilot, digicert}, lifetime3, false},
		{"three for long lifetime", []Candidate{gPilot, digicert, comodo}, lifetime3, true},
	}
	for _, tc := range cases {
		if got := SetCompliant(tc.set, tc.life); got != tc.want {
			t.Errorf("%s: SetCompliant = %v, want %v", tc.name, got, tc.want)
		}
	}
}

func TestSelectCompliantFresh(t *testing.T) {
	avail := []Candidate{gPilot, gIcarus, digicert, comodo, symantec}
	picked, err := SelectCompliant(nil, avail, lifetime)
	if err != nil {
		t.Fatal(err)
	}
	// Minimal for a 90-day cert: 2 logs, the first Google and the first
	// non-Google in preference order.
	if len(picked) != 2 || avail[picked[0]].Name != gPilot.Name || avail[picked[1]].Name != digicert.Name {
		t.Fatalf("picked %v, want [Pilot, DigiCert]", picked)
	}
	set := make([]Candidate, len(picked))
	for i, idx := range picked {
		set[i] = avail[idx]
	}
	if !SetCompliant(set, lifetime) {
		t.Fatalf("selected set %v not compliant", set)
	}
}

func TestSelectCompliantPreferenceOrder(t *testing.T) {
	// Reordering avail must change the picks accordingly: preference is
	// the caller's to express.
	avail := []Candidate{comodo, gIcarus, digicert, gPilot}
	picked, err := SelectCompliant(nil, avail, lifetime)
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 2 || avail[picked[0]].Name != gIcarus.Name || avail[picked[1]].Name != comodo.Name {
		t.Fatalf("picked %v, want [Icarus, Comodo]", picked)
	}
}

func TestSelectCompliantRepair(t *testing.T) {
	// A Google SCT is already in hand; the repair must only add a
	// non-Google log.
	have := []Candidate{gPilot}
	avail := []Candidate{gIcarus, digicert}
	picked, err := SelectCompliant(have, avail, lifetime)
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 1 || avail[picked[0]].Name != digicert.Name {
		t.Fatalf("picked %v, want [DigiCert]", picked)
	}
}

func TestSelectCompliantAlreadySatisfied(t *testing.T) {
	picked, err := SelectCompliant([]Candidate{gPilot, digicert}, []Candidate{comodo}, lifetime)
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 0 {
		t.Fatalf("picked %v from an already-compliant set", picked)
	}
}

func TestSelectCompliantLongLifetime(t *testing.T) {
	avail := []Candidate{gPilot, gIcarus, digicert, comodo, symantec}
	picked, err := SelectCompliant(nil, avail, lifetime5)
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 5 {
		t.Fatalf("picked %d logs, want 5 for a >39-month cert", len(picked))
	}
}

func TestSelectCompliantUnsatisfiable(t *testing.T) {
	for _, tc := range []struct {
		name  string
		have  []Candidate
		avail []Candidate
		life  time.Duration
	}{
		{"all google", nil, []Candidate{gPilot, gIcarus}, lifetime},
		{"all nongoogle", nil, []Candidate{digicert, comodo}, lifetime},
		{"too few", nil, []Candidate{gPilot, digicert}, lifetime3},
		{"nothing available", []Candidate{gPilot}, nil, lifetime},
	} {
		_, err := SelectCompliant(tc.have, tc.avail, tc.life)
		if !errors.Is(err, ErrUnsatisfiable) {
			t.Errorf("%s: err = %v, want ErrUnsatisfiable", tc.name, err)
		}
		if !errors.Is(err, ErrNonCompliant) {
			t.Errorf("%s: ErrUnsatisfiable should wrap ErrNonCompliant", tc.name)
		}
	}
}

func TestSelectCompliantNeverReselectsHave(t *testing.T) {
	// The failed log is still listed as available (the frontend may not
	// have marked it down yet); it must not be picked to repair its own
	// failure... but a log already in have must never be picked again.
	have := []Candidate{gPilot, digicert}
	avail := []Candidate{gPilot, digicert, comodo}
	picked, err := SelectCompliant(have, avail, lifetime3)
	if err != nil {
		t.Fatal(err)
	}
	if len(picked) != 1 || avail[picked[0]].Name != comodo.Name {
		t.Fatalf("picked %v, want [Comodo]", picked)
	}
}
