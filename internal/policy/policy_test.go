package policy

import (
	"errors"
	"testing"
	"time"

	"ctrise/internal/ca"
	"ctrise/internal/certs"
	"ctrise/internal/ctlog"
	"ctrise/internal/sct"
)

// testDate pins the virtual time the policy tests issue at. (A fixed
// clock, not the ecosystem's: importing ecosystem here would cycle now
// that the world embeds the ctfront frontend, which runs on policy.)
func testDate(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}

func testClock() time.Time { return testDate(2018, 5, 1) }

func newLog(t *testing.T, name string) *ctlog.Log {
	t.Helper()
	l, err := ctlog.New(ctlog.Config{Name: name, Signer: sct.NewFastSigner(name), Clock: testClock})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func logSetOf(entries ...struct {
	l      *ctlog.Log
	op     string
	google bool
}) LogSet {
	ls := LogSet{}
	for _, e := range entries {
		ls[e.l.LogID()] = LogInfo{Name: e.l.Name(), Operator: e.op, GoogleOperated: e.google, Verifier: e.l.Verifier()}
	}
	return ls
}

type logEntry = struct {
	l      *ctlog.Log
	op     string
	google bool
}

func issue(t *testing.T, logs []ca.LogSubmitter, fault ca.Fault) (*certs.Certificate, [32]byte) {
	t.Helper()
	c, err := ca.New(ca.Config{Name: "Policy CA", Org: "Policy", Logs: logs, Clock: testClock})
	if err != nil {
		t.Fatal(err)
	}
	iss, err := c.Issue(ca.Request{Names: []string{"www.example.com", "example.com"}, EmbedSCTs: true, Fault: fault})
	if err != nil {
		t.Fatal(err)
	}
	return iss.Final, c.IssuerKeyHash()
}

func TestMinSCTs(t *testing.T) {
	month := 30 * 24 * time.Hour
	cases := map[time.Duration]int{
		3 * month:  2,
		14 * month: 2,
		20 * month: 3,
		27 * month: 3,
		30 * month: 4,
		48 * month: 5,
	}
	for lifetime, want := range cases {
		if got := MinSCTs(lifetime); got != want {
			t.Errorf("MinSCTs(%v) = %d, want %d", lifetime, got, want)
		}
	}
}

func TestCompliantCertificate(t *testing.T) {
	google := newLog(t, "Google Icarus log")
	cloudflare := newLog(t, "Cloudflare Nimbus2018 Log")
	ls := logSetOf(
		logEntry{google, "Google", true},
		logEntry{cloudflare, "Cloudflare", false},
	)
	cert, ikh := issue(t, []ca.LogSubmitter{google, cloudflare}, ca.FaultNone)
	res, err := CheckEmbedded(cert, ikh, ls)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Compliant {
		t.Fatalf("compliant cert rejected: %v", res.Reasons)
	}
	if res.ValidSCTs != 2 || len(res.Operators) != 2 {
		t.Fatalf("res = %+v", res)
	}
	if res.Err() != nil {
		t.Fatal("Err on compliant result")
	}
}

func TestGoogleOnlyFails(t *testing.T) {
	g1 := newLog(t, "Google Pilot log")
	g2 := newLog(t, "Google Rocketeer log")
	ls := logSetOf(
		logEntry{g1, "Google", true},
		logEntry{g2, "Google", true},
	)
	cert, ikh := issue(t, []ca.LogSubmitter{g1, g2}, ca.FaultNone)
	res, err := CheckEmbedded(cert, ikh, ls)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compliant {
		t.Fatal("Google-only SCTs accepted")
	}
	if !hasReason(res, ErrNoNonGoogleLog) || !hasReason(res, ErrOperatorOverlap) {
		t.Fatalf("reasons = %v", res.Reasons)
	}
}

func TestNonGoogleOnlyFails(t *testing.T) {
	l1 := newLog(t, "Comodo Mammoth CT log")
	l2 := newLog(t, "Cloudflare Nimbus2018 Log")
	ls := logSetOf(
		logEntry{l1, "Comodo", false},
		logEntry{l2, "Cloudflare", false},
	)
	cert, ikh := issue(t, []ca.LogSubmitter{l1, l2}, ca.FaultNone)
	res, err := CheckEmbedded(cert, ikh, ls)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compliant || !hasReason(res, ErrNoGoogleLog) {
		t.Fatalf("res = %+v", res)
	}
}

func TestSingleSCTFails(t *testing.T) {
	g := newLog(t, "Google Pilot log")
	ls := logSetOf(logEntry{g, "Google", true})
	cert, ikh := issue(t, []ca.LogSubmitter{g}, ca.FaultNone)
	res, err := CheckEmbedded(cert, ikh, ls)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compliant || !hasReason(res, ErrTooFewSCTs) {
		t.Fatalf("res = %+v", res)
	}
}

func TestInvalidSignatureFailsPolicy(t *testing.T) {
	// A misissued certificate (Section 3.4 fault) is automatically
	// non-compliant: its SCTs do not cover the reconstructed TBS.
	google := newLog(t, "Google Icarus log")
	cloudflare := newLog(t, "Cloudflare Nimbus2018 Log")
	ls := logSetOf(
		logEntry{google, "Google", true},
		logEntry{cloudflare, "Cloudflare", false},
	)
	cert, ikh := issue(t, []ca.LogSubmitter{google, cloudflare}, ca.FaultSANReorder)
	res, err := CheckEmbedded(cert, ikh, ls)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compliant || !hasReason(res, ErrBadSignature) {
		t.Fatalf("res = %+v", res)
	}
	if !errors.Is(res.Err(), ErrNonCompliant) {
		t.Fatalf("Err = %v", res.Err())
	}
}

func TestUnknownLogFails(t *testing.T) {
	known := newLog(t, "Known Log")
	rogue := newLog(t, "Rogue Log")
	ls := logSetOf(logEntry{known, "Known", true})
	cert, ikh := issue(t, []ca.LogSubmitter{known, rogue}, ca.FaultNone)
	res, err := CheckEmbedded(cert, ikh, ls)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compliant || !hasReason(res, ErrUnknownLog) {
		t.Fatalf("res = %+v", res)
	}
}

func TestNoSCTsFails(t *testing.T) {
	cert := &certs.Certificate{
		Subject:   certs.Name{CommonName: "bare.example"},
		NotBefore: testDate(2018, 5, 1),
		NotAfter:  testDate(2018, 8, 1),
	}
	res, err := CheckEmbedded(cert, [32]byte{}, LogSet{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Compliant || !hasReason(res, ErrNoSCTs) {
		t.Fatalf("res = %+v", res)
	}
}

func TestLongLivedCertNeedsMoreSCTs(t *testing.T) {
	// A 3-year certificate with only 2 SCTs fails the lifetime scale.
	google := newLog(t, "Google Icarus log")
	cloudflare := newLog(t, "Cloudflare Nimbus2018 Log")
	ls := logSetOf(
		logEntry{google, "Google", true},
		logEntry{cloudflare, "Cloudflare", false},
	)
	c, err := ca.New(ca.Config{
		Name: "LongLife CA", Org: "LongLife",
		Logs:     []ca.LogSubmitter{google, cloudflare},
		Clock:    testClock,
		Validity: 3 * 365 * 24 * time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	iss, err := c.Issue(ca.Request{Names: []string{"long.example"}, EmbedSCTs: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := CheckEmbedded(iss.Final, c.IssuerKeyHash(), ls)
	if err != nil {
		t.Fatal(err)
	}
	if res.Compliant || !hasReason(res, ErrTooFewSCTs) {
		t.Fatalf("res = %+v", res)
	}
}

func hasReason(r Result, target error) bool {
	for _, reason := range r.Reasons {
		if errors.Is(reason, target) {
			return true
		}
	}
	return false
}
