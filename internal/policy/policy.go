// Package policy implements Chrome's Certificate Transparency policy as
// the paper describes it (Section 2): for a certificate to be trusted
// after the April 2018 deadline, it must carry SCTs from "diversely
// operated" logs — a minimum number of SCTs depending on certificate
// lifetime, from at least two distinct log operators, including at least
// one Google and one non-Google log for embedded SCTs.
//
// The checker runs over the same verifier map as the Section 3.4
// detector, so policy compliance and signature validity compose: an SCT
// that fails cryptographic verification also fails policy.
package policy

import (
	"errors"
	"fmt"
	"time"

	"ctrise/internal/certs"
	"ctrise/internal/sct"
)

// LogInfo describes a log for policy purposes.
type LogInfo struct {
	Name     string
	Operator string
	// GoogleOperated marks Google's own logs (the one-Google rule).
	GoogleOperated bool
	// Verifier validates this log's SCT signatures; nil skips
	// cryptographic checking for that log.
	Verifier sct.SCTVerifier
}

// LogSet maps log IDs to their metadata.
type LogSet map[sct.LogID]LogInfo

// Errors returned by the checker, all wrapped in ErrNonCompliant.
var (
	ErrNonCompliant    = errors.New("policy: certificate is not CT compliant")
	ErrNoSCTs          = errors.New("policy: no SCTs")
	ErrUnknownLog      = errors.New("policy: SCT from unknown log")
	ErrTooFewSCTs      = errors.New("policy: too few valid SCTs for lifetime")
	ErrOperatorOverlap = errors.New("policy: SCTs lack operator diversity")
	ErrNoGoogleLog     = errors.New("policy: no Google-operated log")
	ErrNoNonGoogleLog  = errors.New("policy: no non-Google-operated log")
	ErrBadSignature    = errors.New("policy: SCT signature invalid")
)

// MinSCTs returns Chrome's minimum embedded-SCT count for a certificate
// lifetime: 2 for under 15 months, 3 up to 27, 4 up to 39, 5 beyond.
func MinSCTs(lifetime time.Duration) int {
	months := lifetime.Hours() / (30 * 24)
	switch {
	case months < 15:
		return 2
	case months <= 27:
		return 3
	case months <= 39:
		return 4
	default:
		return 5
	}
}

// Result details a compliance decision.
type Result struct {
	Compliant bool
	// ValidSCTs counts cryptographically valid SCTs from known logs.
	ValidSCTs int
	// Operators are the distinct operators of valid SCTs.
	Operators []string
	// Reasons collects every failed requirement (empty when compliant).
	Reasons []error
}

// CheckEmbedded evaluates a final certificate's embedded SCTs against the
// Chrome policy. issuerKeyHash feeds TBS reconstruction for signature
// verification.
func CheckEmbedded(cert *certs.Certificate, issuerKeyHash [32]byte, logs LogSet) (Result, error) {
	var res Result
	scts, err := cert.SCTs()
	if err != nil {
		if errors.Is(err, certs.ErrNoSCTList) {
			res.Reasons = append(res.Reasons, ErrNoSCTs)
			return res, nil
		}
		return res, err
	}
	tbs, err := cert.TBSForSCT()
	if err != nil {
		return res, err
	}
	entry := sct.PrecertEntry(issuerKeyHash, tbs)

	operators := map[string]bool{}
	var google, nonGoogle bool
	for _, s := range scts {
		info, ok := logs[s.LogID]
		if !ok {
			res.Reasons = append(res.Reasons, fmt.Errorf("%w: %s", ErrUnknownLog, s.LogID))
			continue
		}
		if info.Verifier != nil {
			if err := info.Verifier.VerifySCT(s, entry); err != nil {
				res.Reasons = append(res.Reasons, fmt.Errorf("%w: log %s: %v", ErrBadSignature, info.Name, err))
				continue
			}
		}
		res.ValidSCTs++
		operators[info.Operator] = true
		if info.GoogleOperated {
			google = true
		} else {
			nonGoogle = true
		}
	}
	for op := range operators {
		res.Operators = append(res.Operators, op)
	}

	min := MinSCTs(cert.NotAfter.Sub(cert.NotBefore))
	if res.ValidSCTs < min {
		res.Reasons = append(res.Reasons, fmt.Errorf("%w: %d < %d", ErrTooFewSCTs, res.ValidSCTs, min))
	}
	if len(operators) < 2 {
		res.Reasons = append(res.Reasons, ErrOperatorOverlap)
	}
	if !google {
		res.Reasons = append(res.Reasons, ErrNoGoogleLog)
	}
	if !nonGoogle {
		res.Reasons = append(res.Reasons, ErrNoNonGoogleLog)
	}
	res.Compliant = len(res.Reasons) == 0
	return res, nil
}

// Err flattens the failure reasons into a single wrapped error, or nil.
func (r Result) Err() error {
	if r.Compliant {
		return nil
	}
	return fmt.Errorf("%w: %v", ErrNonCompliant, r.Reasons)
}
