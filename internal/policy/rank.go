package policy

import "sort"

// Ranked is one candidate in a weighted preference ordering, as a
// multi-log frontend builds it: a coarse committed load weight (lower
// is preferred — a backend observed to be slow or stalled carries a
// higher weight), a deterministic per-submission key spreading equal-
// weight candidates, and the candidate name as the final total-order
// tie-break. Everything in the triple is derived from committed state
// and the submission identity — never from wall clock or scheduling —
// so the resulting order is a pure function and replays route
// identically at any concurrency.
type Ranked struct {
	Weight int
	Key    uint64
	Name   string
}

// Order returns the indices of rs in routing-preference order: weight
// ascending, then key ascending, then name. The input is not modified.
func Order(rs []Ranked) []int {
	out := make([]int, len(rs))
	for i := range out {
		out[i] = i
	}
	sort.Slice(out, func(a, b int) bool {
		ra, rb := rs[out[a]], rs[out[b]]
		if ra.Weight != rb.Weight {
			return ra.Weight < rb.Weight
		}
		if ra.Key != rb.Key {
			return ra.Key < rb.Key
		}
		return ra.Name < rb.Name
	})
	return out
}
