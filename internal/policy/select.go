package policy

import (
	"fmt"
	"time"
)

// Candidate describes a log available for submission, as a multi-log
// frontend sees it: the policy-relevant metadata without a live SCT.
// It is the forward-looking twin of LogInfo — LogInfo judges SCTs a
// certificate already carries, Candidate plans which logs to ask so the
// resulting set will be judged compliant.
type Candidate struct {
	Name     string
	Operator string
	// GoogleOperated marks Google's own logs (the one-Google rule).
	GoogleOperated bool
}

// ErrUnsatisfiable is returned by SelectCompliant when no subset of the
// available candidates can complete a compliant set — e.g. every
// reachable log is Google-operated, or too few logs remain for the
// lifetime's SCT count.
var ErrUnsatisfiable = fmt.Errorf("%w: no compliant log set available", ErrNonCompliant)

// SetCompliant reports whether SCTs from exactly the given logs would
// satisfy the Chrome policy for a certificate of the given lifetime:
// at least MinSCTs(lifetime) logs, at least two distinct operators,
// and at least one Google-operated and one non-Google log among them.
// Duplicate log names are counted once.
func SetCompliant(set []Candidate, lifetime time.Duration) bool {
	return gapOf(set, lifetime).satisfied()
}

// gap is what a partial set still needs to become compliant.
type gap struct {
	count     int // SCTs still missing toward MinSCTs
	google    bool
	nonGoogle bool
	operators int // distinct operators still missing toward 2
}

func (g gap) satisfied() bool {
	return g.count <= 0 && !g.google && !g.nonGoogle && g.operators <= 0
}

// gapOf measures the distance between a candidate set and compliance.
func gapOf(set []Candidate, lifetime time.Duration) gap {
	seen := make(map[string]bool, len(set))
	ops := make(map[string]bool, len(set))
	g := gap{count: MinSCTs(lifetime), google: true, nonGoogle: true, operators: 2}
	for _, c := range set {
		if seen[c.Name] {
			continue
		}
		seen[c.Name] = true
		g.count--
		if !ops[c.Operator] {
			ops[c.Operator] = true
			g.operators--
		}
		if c.GoogleOperated {
			g.google = false
		} else {
			g.nonGoogle = false
		}
	}
	return g
}

// SelectCompliant chooses which of the available logs to add to an
// already-obtained set so that the union satisfies the Chrome policy,
// and returns their indices into avail. The selection is greedy in
// avail order — the caller expresses preference (e.g. a deterministic
// seed-derived ranking, or health) by ordering avail — and minimal in
// the sense that every chosen log closes part of the remaining gap:
// first the missing Google and non-Google roles, then the SCT count.
// Closing the Google + non-Google roles closes operator diversity too,
// so a returned set never needs more than max(MinSCTs, 2) logs total.
//
// have may be empty (planning a fresh submission) or hold the logs that
// already answered (repairing a set after a backend failure). Logs
// already in have are never selected again. When the gap cannot be
// closed from avail, SelectCompliant returns ErrUnsatisfiable.
func SelectCompliant(have, avail []Candidate, lifetime time.Duration) ([]int, error) {
	g := gapOf(have, lifetime)
	if g.satisfied() {
		return nil, nil
	}
	used := make(map[string]bool, len(have)+len(avail))
	ops := make(map[string]bool, len(have))
	for _, c := range have {
		used[c.Name] = true
		ops[c.Operator] = true
	}
	var picked []int
	take := func(i int, c Candidate) {
		picked = append(picked, i)
		used[c.Name] = true
		g.count--
		if !ops[c.Operator] {
			ops[c.Operator] = true
			g.operators--
		}
		if c.GoogleOperated {
			g.google = false
		} else {
			g.nonGoogle = false
		}
	}
	// Roles first: the first Google-operated and the first non-Google
	// candidate in preference order. These two (or the ones in have)
	// also provide the two distinct operators.
	for i, c := range avail {
		if g.google && c.GoogleOperated && !used[c.Name] {
			take(i, c)
			break
		}
	}
	for i, c := range avail {
		if g.nonGoogle && !c.GoogleOperated && !used[c.Name] {
			take(i, c)
			break
		}
	}
	// Then fill the SCT count (and, degenerately, operator diversity —
	// reachable only if have already covered both roles within one
	// operator, which real log lists cannot produce) with the remaining
	// preference order.
	for i, c := range avail {
		if g.count <= 0 && g.operators <= 0 {
			break
		}
		if used[c.Name] {
			continue
		}
		if g.operators > 0 && ops[c.Operator] && g.count <= 0 {
			continue
		}
		take(i, c)
	}
	if !g.satisfied() {
		return nil, fmt.Errorf("%w: %d more SCTs needed, google=%v non-google=%v (have %d, avail %d)",
			ErrUnsatisfiable, max(g.count, 0), g.google, g.nonGoogle, len(have), len(avail))
	}
	return picked, nil
}
