package policy

import (
	"reflect"
	"testing"
)

// TestOrderByWeightThenKeyThenName pins the total order: weight
// dominates, key breaks weight ties, name breaks key ties.
func TestOrderByWeightThenKeyThenName(t *testing.T) {
	rs := []Ranked{
		{Weight: 2, Key: 1, Name: "d"},
		{Weight: 0, Key: 9, Name: "c"},
		{Weight: 0, Key: 3, Name: "b"},
		{Weight: 0, Key: 3, Name: "a"},
	}
	got := Order(rs)
	want := []int{3, 2, 1, 0} // a (key 3), b (key 3), c (key 9), d (weight 2)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Order = %v, want %v", got, want)
	}
}

// TestOrderIsPure proves Order neither mutates its input nor depends on
// anything but it: repeated calls agree and the slice is untouched.
func TestOrderIsPure(t *testing.T) {
	rs := []Ranked{
		{Weight: 1, Key: 7, Name: "x"},
		{Weight: 0, Key: 2, Name: "y"},
		{Weight: 1, Key: 1, Name: "z"},
	}
	snapshot := append([]Ranked(nil), rs...)
	first := Order(rs)
	for i := 0; i < 10; i++ {
		if got := Order(rs); !reflect.DeepEqual(got, first) {
			t.Fatalf("call %d: Order = %v, want %v", i, got, first)
		}
	}
	if !reflect.DeepEqual(rs, snapshot) {
		t.Fatalf("Order mutated its input: %v", rs)
	}
}

// TestOrderEmpty covers the empty pool.
func TestOrderEmpty(t *testing.T) {
	if got := Order(nil); len(got) != 0 {
		t.Fatalf("Order(nil) = %v, want empty", got)
	}
}
