package dnsname

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"WWW.Example.COM": "www.example.com",
		"example.org.":    "example.org",
		"  foo.bar \t":    "foo.bar",
		"MiXeD.CaSe.Net.": "mixed.case.net",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestIsValidFQDN(t *testing.T) {
	valid := []string{
		"example.com",
		"www.example.com",
		"a.b",
		"xn--nxasmq6b.example",
		"my-site.example.co.uk",
		"_dmarc.example.com",
		"a1.b2.c3.example",
		"m.de",
		strings.Repeat("a", 63) + ".example.com",
	}
	for _, n := range valid {
		if !IsValidFQDN(n) {
			t.Errorf("IsValidFQDN(%q) = false, want true", n)
		}
	}
	invalid := []string{
		"",
		"example",                                // single label
		".example.com",                           // empty label
		"example..com",                           // empty label
		"-bad.example.com",                       // leading hyphen
		"bad-.example.com",                       // trailing hyphen
		"exa_mple.example.com",                   // interior underscore
		"spaces here.example.com",                // space
		"example.123",                            // numeric TLD (an IP fragment)
		"1.2.3.4",                                // IP address
		strings.Repeat("a", 64) + ".example.com", // label too long
		strings.Repeat("a.", 127) + "toolongtotal" + strings.Repeat("x", 130), // > 253
		"UPPER.example.com",  // not normalized
		"emoji🦊.example.com", // non-ASCII
	}
	for _, n := range invalid {
		if IsValidFQDN(n) {
			t.Errorf("IsValidFQDN(%q) = true, want false", n)
		}
	}
}

func TestWildcardHandling(t *testing.T) {
	if !IsWildcard("*.example.com") {
		t.Error("IsWildcard(*.example.com)")
	}
	if IsWildcard("www.example.com") {
		t.Error("IsWildcard(www.example.com)")
	}
	if got := TrimWildcard("*.example.com"); got != "example.com" {
		t.Errorf("TrimWildcard = %q", got)
	}
	if got := TrimWildcard("plain.example.com"); got != "plain.example.com" {
		t.Errorf("TrimWildcard(plain) = %q", got)
	}
}

func TestLabelsJoinPrepend(t *testing.T) {
	labels := Labels("a.b.c")
	if len(labels) != 3 || labels[0] != "a" || labels[2] != "c" {
		t.Fatalf("Labels = %v", labels)
	}
	if Labels("") != nil {
		t.Fatal("Labels(\"\") should be nil")
	}
	if got := Join("www", "example", "com"); got != "www.example.com" {
		t.Errorf("Join = %q", got)
	}
	if got := Prepend("mail", "example.de"); got != "mail.example.de" {
		t.Errorf("Prepend = %q", got)
	}
}

func TestParent(t *testing.T) {
	cases := map[string]string{
		"a.b.c":       "b.c",
		"b.c":         "c",
		"c":           "",
		"":            "",
		"x.y.z.w.com": "y.z.w.com",
	}
	for in, want := range cases {
		if got := Parent(in); got != want {
			t.Errorf("Parent(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestRandomLabel(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	seen := make(map[string]bool)
	for i := 0; i < 100; i++ {
		l := RandomLabel(rng, 12)
		if len(l) != 12 {
			t.Fatalf("label length = %d", len(l))
		}
		if !isValidLabel(l) {
			t.Fatalf("invalid random label %q", l)
		}
		if l[0] >= '0' && l[0] <= '9' {
			t.Fatalf("label starts with digit: %q", l)
		}
		seen[l] = true
	}
	if len(seen) < 99 {
		t.Fatalf("only %d distinct labels in 100 draws", len(seen))
	}
	if RandomLabel(rng, 0) != "" {
		t.Fatal("zero-length label should be empty")
	}
}

func TestRandomLabelDeterministic(t *testing.T) {
	a := RandomLabel(rand.New(rand.NewSource(7)), 12)
	b := RandomLabel(rand.New(rand.NewSource(7)), 12)
	if a != b {
		t.Fatalf("same seed, different labels: %q vs %q", a, b)
	}
}

// Property: every valid FQDN survives Normalize unchanged, and
// Join(Labels(x)) == x.
func TestQuickLabelRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func() bool {
		n := 2 + rng.Intn(4)
		labels := make([]string, n)
		for i := range labels {
			labels[i] = RandomLabel(rng, 1+rng.Intn(10))
		}
		name := Join(labels...)
		if !IsValidFQDN(name) {
			return false
		}
		if Normalize(name) != name {
			return false
		}
		got := Labels(name)
		if len(got) != n {
			return false
		}
		for i := range got {
			if got[i] != labels[i] {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(func(struct{}) bool { return f() }, cfg); err != nil {
		t.Fatal(err)
	}
}
