// Package dnsname provides DNS name handling: RFC 1035-style FQDN
// validation (as the paper applies to names extracted from certificate CN
// and SAN fields), normalization, label manipulation, and deterministic
// random-name generation for the CT honeypot.
package dnsname

import (
	"math/rand"
	"strings"
)

// Limits from RFC 1035 (as updated).
const (
	// MaxNameLength is the maximum presentation-format name length.
	MaxNameLength = 253
	// MaxLabelLength is the maximum length of one label.
	MaxLabelLength = 63
)

// Normalize lowercases a name and strips a single trailing dot. It does
// not validate.
func Normalize(name string) string {
	name = strings.ToLower(strings.TrimSpace(name))
	name = strings.TrimSuffix(name, ".")
	return name
}

// IsWildcard reports whether the name starts with the "*." wildcard label
// (common in certificate SANs).
func IsWildcard(name string) bool { return strings.HasPrefix(name, "*.") }

// TrimWildcard removes one leading "*." label if present.
func TrimWildcard(name string) string { return strings.TrimPrefix(name, "*.") }

// IsValidFQDN reports whether name is a well-formed fully qualified domain
// name under the rules the paper uses to filter CT names: at least two
// labels, every label 1–63 LDH (letter/digit/hyphen) characters not
// starting or ending with a hyphen, a non-numeric TLD, and a total length
// of at most 253 bytes. Underscore is accepted as a leading character of
// a label (e.g. _dmarc) because such names occur in real certificates and
// zones. The name must already be normalized (no trailing dot, lowercase).
func IsValidFQDN(name string) bool {
	if len(name) == 0 || len(name) > MaxNameLength {
		return false
	}
	labels := strings.Split(name, ".")
	if len(labels) < 2 {
		return false
	}
	for _, l := range labels {
		if !isValidLabel(l) {
			return false
		}
	}
	return !isAllDigits(labels[len(labels)-1])
}

func isValidLabel(l string) bool {
	if len(l) == 0 || len(l) > MaxLabelLength {
		return false
	}
	for i := 0; i < len(l); i++ {
		c := l[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9':
		case c == '-':
			if i == 0 || i == len(l)-1 {
				return false
			}
		case c == '_':
			// Accept only in leading position, per common practice.
			if i != 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func isAllDigits(s string) bool {
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return len(s) > 0
}

// Labels splits a normalized name into its labels.
func Labels(name string) []string {
	if name == "" {
		return nil
	}
	return strings.Split(name, ".")
}

// Join assembles labels into a name.
func Join(labels ...string) string { return strings.Join(labels, ".") }

// Prepend adds a label in front of a name, as subdomain construction does
// in the paper's Section 4.3 (e.g. "mail" + "example.de" = "mail.example.de").
func Prepend(label, name string) string { return label + "." + name }

// Parent strips the first label: Parent("a.b.c") = "b.c". It returns ""
// once fewer than two labels remain.
func Parent(name string) string {
	i := strings.IndexByte(name, '.')
	if i < 0 {
		return ""
	}
	return name[i+1:]
}

// randAlphabet is the character set for random honeypot labels: LDH
// letters and digits, starting alphabetic.
const (
	randFirst = "abcdefghijklmnopqrstuvwxyz"
	randRest  = "abcdefghijklmnopqrstuvwxyz0123456789"
)

// RandomLabel generates a random n-character label from rng. The paper's
// honeypot uses hard-to-guess 12-character labels, so that any DNS query
// for them proves the name leaked via CT.
func RandomLabel(rng *rand.Rand, n int) string {
	if n <= 0 {
		return ""
	}
	var b strings.Builder
	b.Grow(n)
	b.WriteByte(randFirst[rng.Intn(len(randFirst))])
	for i := 1; i < n; i++ {
		b.WriteByte(randRest[rng.Intn(len(randRest))])
	}
	return b.String()
}
