package drain

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

// TestGatePassesBeforeDrain proves the gate is transparent until
// BeginDrain: gated and ungated requests both reach the handler.
func TestGatePassesBeforeDrain(t *testing.T) {
	var served int
	g := NewGate(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		served++
	}), nil, time.Second)
	for _, method := range []string{http.MethodGet, http.MethodPost} {
		rec := httptest.NewRecorder()
		g.ServeHTTP(rec, httptest.NewRequest(method, "/x", nil))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s before drain: status %d", method, rec.Code)
		}
	}
	if served != 2 {
		t.Fatalf("handler saw %d requests, want 2", served)
	}
}

// TestGateRefusesMutationsDuringDrain proves a draining gate answers
// gated requests with 503 + Retry-After while reads pass through.
func TestGateRefusesMutationsDuringDrain(t *testing.T) {
	g := NewGate(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {}), nil, 3*time.Second)
	g.BeginDrain()

	rec := httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/submit", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("POST during drain: status %d, want 503", rec.Code)
	}
	if got := rec.Header().Get("Retry-After"); got != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", got)
	}
	if g.Refused() != 1 {
		t.Fatalf("Refused = %d, want 1", g.Refused())
	}

	rec = httptest.NewRecorder()
	g.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/health", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET during drain: status %d, want 200", rec.Code)
	}
}

// TestGateWaitsForInflight proves Wait blocks until requests admitted
// before the drain complete, and that they complete successfully.
func TestGateWaitsForInflight(t *testing.T) {
	release := make(chan struct{})
	entered := make(chan struct{})
	g := NewGate(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
		io.WriteString(w, "done")
	}), nil, time.Second)

	rec := httptest.NewRecorder()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		g.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/submit", nil))
	}()
	<-entered
	g.BeginDrain()
	if g.Inflight() != 1 {
		t.Fatalf("Inflight = %d, want 1", g.Inflight())
	}

	// Wait must not return while the request is still executing.
	shortCtx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := g.Wait(shortCtx); err == nil {
		t.Fatal("Wait returned before the in-flight request finished")
	}

	close(release)
	ctx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := g.Wait(ctx); err != nil {
		t.Fatalf("Wait after release: %v", err)
	}
	wg.Wait()
	if rec.Code != http.StatusOK || rec.Body.String() != "done" {
		t.Fatalf("in-flight request got %d %q, want 200 \"done\"", rec.Code, rec.Body.String())
	}
}

// TestGateWaitIdleReturnsImmediately proves Wait with nothing in flight
// is a no-op, and BeginDrain is idempotent.
func TestGateWaitIdleReturnsImmediately(t *testing.T) {
	g := NewGate(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {}), nil, time.Second)
	g.BeginDrain()
	g.BeginDrain()
	if err := g.Wait(context.Background()); err != nil {
		t.Fatalf("Wait on idle gate: %v", err)
	}
	if !g.Draining() {
		t.Fatal("Draining = false after BeginDrain")
	}
}
