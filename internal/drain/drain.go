// Package drain implements the graceful-drain protocol shared by the
// repo's HTTP servers (cmd/ctlogd, cmd/ctfront): on SIGTERM a server
// stops admitting new mutating work with 503 + Retry-After — a signal
// well-behaved CT submitters turn into failover, not an error — while
// the requests already in flight run to completion. Only once the gate
// reports idle does the listener shut down, so a rolling restart never
// drops an acknowledged submission mid-handshake.
package drain

import (
	"context"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Gate wraps an http.Handler with the drain protocol. Before BeginDrain
// it forwards every request, counting the gated ones (mutating methods
// by default); after BeginDrain gated requests are refused with
// 503 + Retry-After while the in-flight ones finish. The zero Gate is
// not usable; construct with NewGate.
type Gate struct {
	next http.Handler
	// gated decides which requests the drain refuses; reads (health,
	// metrics, get-sth) stay available throughout so operators and
	// monitors can watch the drain progress.
	gated func(*http.Request) bool
	// retryAfter is the hint sent with drain refusals.
	retryAfter time.Duration

	mu       sync.Mutex
	draining bool
	inflight int
	idle     chan struct{} // closed when draining and inflight hits 0
	refused  uint64
}

// NewGate wraps next. gated selects the requests the drain refuses; nil
// gates every non-GET/HEAD request (the ct/v1 and ctfront mutating
// surface). retryAfter is the Retry-After hint on refusals; <= 0
// defaults to 1s.
func NewGate(next http.Handler, gated func(*http.Request) bool, retryAfter time.Duration) *Gate {
	if gated == nil {
		gated = func(r *http.Request) bool {
			return r.Method != http.MethodGet && r.Method != http.MethodHead
		}
	}
	if retryAfter <= 0 {
		retryAfter = time.Second
	}
	return &Gate{next: next, gated: gated, retryAfter: retryAfter}
}

// ServeHTTP forwards or refuses according to the drain state.
func (g *Gate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if !g.gated(r) {
		g.next.ServeHTTP(w, r)
		return
	}
	g.mu.Lock()
	if g.draining {
		g.refused++
		g.mu.Unlock()
		w.Header().Set("Retry-After", strconv.Itoa(RetryAfterSeconds(g.retryAfter)))
		http.Error(w, "draining: retry against another backend", http.StatusServiceUnavailable)
		return
	}
	g.inflight++
	g.mu.Unlock()
	defer func() {
		g.mu.Lock()
		g.inflight--
		if g.draining && g.inflight == 0 && g.idle != nil {
			close(g.idle)
			g.idle = nil
		}
		g.mu.Unlock()
	}()
	g.next.ServeHTTP(w, r)
}

// BeginDrain flips the gate: subsequent gated requests are refused with
// 503 + Retry-After. Idempotent.
func (g *Gate) BeginDrain() {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.draining {
		return
	}
	g.draining = true
	if g.inflight > 0 {
		g.idle = make(chan struct{})
	}
}

// Wait blocks until every gated request admitted before BeginDrain has
// finished, or ctx expires. It reports nil on idle; call it after
// BeginDrain.
func (g *Gate) Wait(ctx context.Context) error {
	g.mu.Lock()
	idle := g.idle
	g.mu.Unlock()
	if idle == nil {
		return nil
	}
	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether BeginDrain has been called.
func (g *Gate) Draining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.draining
}

// Refused reports how many gated requests the drain has turned away.
func (g *Gate) Refused() uint64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.refused
}

// Inflight reports the gated requests currently executing.
func (g *Gate) Inflight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.inflight
}

// RetryAfterSeconds renders a Retry-After hint: whole seconds, at least
// 1 (the header has no sub-second form, and 0 would invite an immediate
// hot-loop retry). Every 503/429 the repo's servers send carries it, so
// well-behaved clients back off instead of hot-looping.
func RetryAfterSeconds(d time.Duration) int {
	s := int((d + time.Second - 1) / time.Second)
	if s < 1 {
		s = 1
	}
	return s
}
