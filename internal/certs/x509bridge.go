package certs

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/x509"
	"crypto/x509/pkix"
	"encoding/asn1"
	"fmt"
	"io"
	"math/big"
	"net"
	"time"
)

// ASN.1 forms of the CT extension OIDs used by the x509 bridge.
var (
	oidSCTListASN1 = asn1.ObjectIdentifier{1, 3, 6, 1, 4, 1, 11129, 2, 4, 2}
	oidPoisonASN1  = asn1.ObjectIdentifier{1, 3, 6, 1, 4, 1, 11129, 2, 4, 3}
)

// KeyPair bundles an ECDSA key with its DER-encoded SubjectPublicKeyInfo,
// used for issuer key hashes.
type KeyPair struct {
	Priv *ecdsa.PrivateKey
	SPKI []byte
}

// GenerateKeyPair creates a P-256 key pair. A nil reader uses crypto/rand.
func GenerateKeyPair(r io.Reader) (*KeyPair, error) {
	if r == nil {
		r = rand.Reader
	}
	priv, err := ecdsa.GenerateKey(elliptic.P256(), r)
	if err != nil {
		return nil, fmt.Errorf("certs: generating key: %w", err)
	}
	spki, err := x509.MarshalPKIXPublicKey(&priv.PublicKey)
	if err != nil {
		return nil, fmt.Errorf("certs: marshaling SPKI: %w", err)
	}
	return &KeyPair{Priv: priv, SPKI: spki}, nil
}

// ToX509 renders the synthetic certificate as a real DER certificate
// signed by issuerKey. The CT extensions (poison, SCT list) are carried
// as extra extensions so CT-aware parsers see the genuine OIDs.
func (c *Certificate) ToX509(issuerKey *KeyPair, subjectPub *ecdsa.PublicKey) ([]byte, error) {
	if subjectPub == nil {
		subjectPub = &issuerKey.Priv.PublicKey
	}
	tmpl := &x509.Certificate{
		SerialNumber: new(big.Int).SetUint64(c.SerialNumber),
		Subject: pkix.Name{
			CommonName:   c.Subject.CommonName,
			Organization: orgList(c.Subject.Organization),
		},
		NotBefore:             c.NotBefore,
		NotAfter:              c.NotAfter,
		DNSNames:              append([]string(nil), c.DNSNames...),
		BasicConstraintsValid: true,
	}
	for _, ip := range c.IPAddresses {
		parsed := net.ParseIP(ip)
		if parsed == nil {
			return nil, fmt.Errorf("certs: invalid SAN IP %q", ip)
		}
		tmpl.IPAddresses = append(tmpl.IPAddresses, parsed)
	}
	for _, e := range c.Extensions {
		switch e.OID {
		case OIDPoison:
			tmpl.ExtraExtensions = append(tmpl.ExtraExtensions, pkix.Extension{
				Id: oidPoisonASN1, Critical: true, Value: []byte{0x05, 0x00},
			})
		case OIDSCTList:
			// The X.509 extension wraps the TLS-encoded list in an OCTET STRING.
			wrapped, err := asn1.Marshal(e.Value)
			if err != nil {
				return nil, fmt.Errorf("certs: wrapping SCT list: %w", err)
			}
			tmpl.ExtraExtensions = append(tmpl.ExtraExtensions, pkix.Extension{
				Id: oidSCTListASN1, Value: wrapped,
			})
		}
	}
	issuerTmpl := &x509.Certificate{
		SerialNumber: big.NewInt(1),
		Subject: pkix.Name{
			CommonName:   c.Issuer.CommonName,
			Organization: orgList(c.Issuer.Organization),
		},
		NotBefore:             c.NotBefore.Add(-24 * time.Hour),
		NotAfter:              c.NotAfter.Add(24 * time.Hour),
		IsCA:                  true,
		BasicConstraintsValid: true,
		KeyUsage:              x509.KeyUsageCertSign,
	}
	der, err := x509.CreateCertificate(rand.Reader, tmpl, issuerTmpl, subjectPub, issuerKey.Priv)
	if err != nil {
		return nil, fmt.Errorf("certs: creating certificate: %w", err)
	}
	return der, nil
}

func orgList(org string) []string {
	if org == "" {
		return nil
	}
	return []string{org}
}

// FromX509 converts a parsed DER certificate into the synthetic model,
// preserving SAN order and the CT extensions.
func FromX509(der []byte) (*Certificate, error) {
	xc, err := x509.ParseCertificate(der)
	if err != nil {
		return nil, fmt.Errorf("certs: parsing DER: %w", err)
	}
	c := &Certificate{
		SerialNumber: xc.SerialNumber.Uint64(),
		Issuer:       Name{CommonName: xc.Issuer.CommonName, Organization: first(xc.Issuer.Organization)},
		Subject:      Name{CommonName: xc.Subject.CommonName, Organization: first(xc.Subject.Organization)},
		DNSNames:     append([]string(nil), xc.DNSNames...),
		NotBefore:    xc.NotBefore.UTC(),
		NotAfter:     xc.NotAfter.UTC(),
	}
	for _, ip := range xc.IPAddresses {
		c.IPAddresses = append(c.IPAddresses, ip.String())
	}
	for _, ext := range xc.Extensions {
		switch {
		case ext.Id.Equal(oidPoisonASN1):
			c.Extensions = append(c.Extensions, Extension{OID: OIDPoison, Critical: true, Value: append([]byte(nil), ext.Value...)})
		case ext.Id.Equal(oidSCTListASN1):
			var inner []byte
			if _, err := asn1.Unmarshal(ext.Value, &inner); err != nil {
				return nil, fmt.Errorf("certs: unwrapping SCT list: %w", err)
			}
			c.Extensions = append(c.Extensions, Extension{OID: OIDSCTList, Value: inner})
		}
	}
	return c, nil
}

func first(s []string) string {
	if len(s) == 0 {
		return ""
	}
	return s[0]
}

// IssuerKeyHash computes the SHA-256 hash of an issuer's DER-encoded
// SubjectPublicKeyInfo, the value RFC 6962 places in precert entries.
func IssuerKeyHash(spki []byte) [32]byte {
	return sha256Sum(spki)
}
