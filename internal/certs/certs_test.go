package certs

import (
	"bytes"
	"crypto/x509"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"ctrise/internal/sct"
)

func sampleCert() *Certificate {
	return &Certificate{
		SerialNumber: 0xdeadbeef,
		Issuer:       Name{CommonName: "Let's Encrypt Authority X3", Organization: "Let's Encrypt"},
		Subject:      Name{CommonName: "www.example.org"},
		DNSNames:     []string{"www.example.org", "example.org", "api.example.org"},
		NotBefore:    time.Date(2018, 3, 1, 0, 0, 0, 0, time.UTC),
		NotAfter:     time.Date(2018, 6, 1, 0, 0, 0, 0, time.UTC),
		Extensions: []Extension{
			{OID: "2.5.29.15", Critical: true, Value: []byte{0x03, 0x02, 0x05, 0xa0}}, // keyUsage
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	c := sampleCert()
	enc, err := c.Encode()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(c, got) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, c)
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	enc := sampleCert().MustEncode()
	for cut := 0; cut < len(enc); cut += 7 {
		if _, err := Decode(enc[:cut]); err == nil {
			t.Fatalf("Decode accepted truncation at %d", cut)
		}
	}
}

func TestDecodeRejectsTrailing(t *testing.T) {
	enc := sampleCert().MustEncode()
	if _, err := Decode(append(enc, 0xff)); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	enc := sampleCert().MustEncode()
	enc[0] = 99
	if _, err := Decode(enc); !errors.Is(err, ErrMalformed) {
		t.Fatalf("err = %v, want ErrMalformed", err)
	}
}

func TestPoisonLifecycle(t *testing.T) {
	c := sampleCert()
	if c.IsPrecert() {
		t.Fatal("fresh cert must not be a precert")
	}
	c.AddPoison()
	if !c.IsPrecert() {
		t.Fatal("AddPoison did not take")
	}
	c.AddPoison() // idempotent
	count := 0
	for _, e := range c.Extensions {
		if e.OID == OIDPoison {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("poison extensions = %d, want 1", count)
	}
	if err := c.RemovePoison(); err != nil {
		t.Fatal(err)
	}
	if c.IsPrecert() {
		t.Fatal("RemovePoison did not take")
	}
	if err := c.RemovePoison(); !errors.Is(err, ErrNotPrecert) {
		t.Fatalf("err = %v, want ErrNotPrecert", err)
	}
}

func TestSCTListLifecycle(t *testing.T) {
	c := sampleCert()
	if _, err := c.SCTs(); !errors.Is(err, ErrNoSCTList) {
		t.Fatalf("err = %v, want ErrNoSCTList", err)
	}
	in := []*sct.SignedCertificateTimestamp{
		{SCTVersion: sct.V1, LogID: sct.LogID{1}, Timestamp: 100},
		{SCTVersion: sct.V1, LogID: sct.LogID{2}, Timestamp: 200},
	}
	if err := c.SetSCTs(in); err != nil {
		t.Fatal(err)
	}
	got, err := c.SCTs()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].LogID != in[0].LogID || got[1].Timestamp != 200 {
		t.Fatalf("SCTs = %+v", got)
	}
	// Replacing is in-place, not appending.
	if err := c.SetSCTs(in[:1]); err != nil {
		t.Fatal(err)
	}
	got, err = c.SCTs()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("after replace: %d SCTs", len(got))
	}
}

// TBS invariants drive the Section 3.4 detector.
func TestTBSStripsOnlyCTExtensions(t *testing.T) {
	c := sampleCert()
	base, err := c.TBSForSCT()
	if err != nil {
		t.Fatal(err)
	}
	pre := c.Clone()
	pre.AddPoison()
	tbsPre, err := pre.TBSForSCT()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(base, tbsPre) {
		t.Fatal("poison must not affect TBS")
	}
	final := c.Clone()
	if err := final.SetSCTs([]*sct.SignedCertificateTimestamp{{SCTVersion: sct.V1, Timestamp: 1}}); err != nil {
		t.Fatal(err)
	}
	tbsFinal, err := final.TBSForSCT()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(base, tbsFinal) {
		t.Fatal("SCT list must not affect TBS")
	}
}

func TestTBSSensitiveToSANOrder(t *testing.T) {
	c := sampleCert()
	tbs1, _ := c.TBSForSCT()
	r := c.Clone()
	r.DNSNames[0], r.DNSNames[1] = r.DNSNames[1], r.DNSNames[0]
	tbs2, _ := r.TBSForSCT()
	if bytes.Equal(tbs1, tbs2) {
		t.Fatal("SAN reorder must change TBS (GlobalSign bug class)")
	}
}

func TestTBSSensitiveToExtensionOrder(t *testing.T) {
	c := sampleCert()
	c.Extensions = append(c.Extensions, Extension{OID: "2.5.29.37", Value: []byte{1}})
	tbs1, _ := c.TBSForSCT()
	r := c.Clone()
	r.Extensions[0], r.Extensions[1] = r.Extensions[1], r.Extensions[0]
	tbs2, _ := r.TBSForSCT()
	if bytes.Equal(tbs1, tbs2) {
		t.Fatal("extension reorder must change TBS (D-TRUST bug class)")
	}
}

func TestTBSSensitiveToSANContent(t *testing.T) {
	c := sampleCert()
	tbs1, _ := c.TBSForSCT()
	r := c.Clone()
	r.DNSNames[2] = "other.example.net"
	tbs2, _ := r.TBSForSCT()
	if bytes.Equal(tbs1, tbs2) {
		t.Fatal("SAN replacement must change TBS (NetLock bug class)")
	}
}

func TestNames(t *testing.T) {
	c := sampleCert()
	names := c.Names()
	want := []string{"www.example.org", "www.example.org", "example.org", "api.example.org"}
	if !reflect.DeepEqual(names, want) {
		t.Fatalf("Names = %v", names)
	}
	c.Subject.CommonName = ""
	if got := c.Names(); len(got) != 3 {
		t.Fatalf("Names without CN = %v", got)
	}
}

func TestValidAt(t *testing.T) {
	c := sampleCert()
	cases := []struct {
		t    time.Time
		want bool
	}{
		{time.Date(2018, 2, 28, 23, 59, 59, 0, time.UTC), false},
		{c.NotBefore, true},
		{time.Date(2018, 4, 15, 0, 0, 0, 0, time.UTC), true},
		{c.NotAfter, true},
		{c.NotAfter.Add(time.Second), false},
	}
	for _, tc := range cases {
		if got := c.ValidAt(tc.t); got != tc.want {
			t.Errorf("ValidAt(%v) = %v, want %v", tc.t, got, tc.want)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := sampleCert()
	cl := c.Clone()
	cl.DNSNames[0] = "mutated.example"
	cl.Extensions[0].Value[0] = 0xff
	if c.DNSNames[0] == "mutated.example" {
		t.Fatal("Clone shares DNSNames")
	}
	if c.Extensions[0].Value[0] == 0xff {
		t.Fatal("Clone shares extension values")
	}
}

func TestStringRendering(t *testing.T) {
	c := sampleCert()
	if s := c.String(); s == "" || !bytes.Contains([]byte(s), []byte("www.example.org")) {
		t.Fatalf("String = %q", s)
	}
	c.AddPoison()
	if s := c.String(); !bytes.Contains([]byte(s), []byte("precert")) {
		t.Fatalf("String = %q", s)
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	f := func(serial uint64, cn, org string, sans []string, nExt uint8) bool {
		c := &Certificate{
			SerialNumber: serial,
			Issuer:       Name{CommonName: cn, Organization: org},
			Subject:      Name{CommonName: cn},
			NotBefore:    time.UnixMilli(rng.Int63n(1e13)).UTC(),
			NotAfter:     time.UnixMilli(rng.Int63n(1e13)).UTC(),
		}
		for _, s := range sans {
			if len(s) < 0xffff {
				c.DNSNames = append(c.DNSNames, s)
			}
		}
		for i := 0; i < int(nExt%5); i++ {
			c.Extensions = append(c.Extensions, Extension{OID: "1.2.3", Value: []byte{byte(i)}})
		}
		if len(cn) > 0xffff || len(org) > 0xffff {
			return true // out of codec scope
		}
		enc, err := c.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(enc)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(c, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// --- x509 bridge ---

type fixedReader struct{ rng *rand.Rand }

func (f *fixedReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(f.rng.Intn(256))
	}
	return len(p), nil
}

func TestX509RoundTrip(t *testing.T) {
	key, err := GenerateKeyPair(&fixedReader{rng: rand.New(rand.NewSource(1))})
	if err != nil {
		t.Fatal(err)
	}
	c := sampleCert()
	c.IPAddresses = []string{"192.0.2.7"}
	if err := c.SetSCTs([]*sct.SignedCertificateTimestamp{{SCTVersion: sct.V1, LogID: sct.LogID{9}, Timestamp: 42,
		Signature: sct.DigitallySigned{HashAlgorithm: 4, SignatureAlgorithm: 3, Signature: []byte{1}}}}); err != nil {
		t.Fatal(err)
	}
	der, err := c.ToX509(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x509.ParseCertificate(der); err != nil {
		t.Fatalf("DER does not parse: %v", err)
	}
	back, err := FromX509(der)
	if err != nil {
		t.Fatal(err)
	}
	if back.Subject.CommonName != c.Subject.CommonName {
		t.Errorf("CN = %q", back.Subject.CommonName)
	}
	if !reflect.DeepEqual(back.DNSNames, c.DNSNames) {
		t.Errorf("SANs = %v", back.DNSNames)
	}
	if len(back.IPAddresses) != 1 || back.IPAddresses[0] != "192.0.2.7" {
		t.Errorf("IPs = %v", back.IPAddresses)
	}
	scts, err := back.SCTs()
	if err != nil {
		t.Fatalf("SCTs after round trip: %v", err)
	}
	if len(scts) != 1 || scts[0].Timestamp != 42 {
		t.Fatalf("SCTs = %+v", scts)
	}
}

func TestX509PoisonSurvives(t *testing.T) {
	key, err := GenerateKeyPair(&fixedReader{rng: rand.New(rand.NewSource(2))})
	if err != nil {
		t.Fatal(err)
	}
	c := sampleCert()
	c.AddPoison()
	der, err := c.ToX509(key, nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromX509(der)
	if err != nil {
		t.Fatal(err)
	}
	if !back.IsPrecert() {
		t.Fatal("poison lost in x509 round trip")
	}
}

func TestX509RejectsBadIP(t *testing.T) {
	key, err := GenerateKeyPair(&fixedReader{rng: rand.New(rand.NewSource(3))})
	if err != nil {
		t.Fatal(err)
	}
	c := sampleCert()
	c.IPAddresses = []string{"not-an-ip"}
	if _, err := c.ToX509(key, nil); err == nil {
		t.Fatal("expected error for invalid SAN IP")
	}
}

func TestIssuerKeyHashDeterministic(t *testing.T) {
	key, err := GenerateKeyPair(&fixedReader{rng: rand.New(rand.NewSource(4))})
	if err != nil {
		t.Fatal(err)
	}
	h1 := IssuerKeyHash(key.SPKI)
	h2 := IssuerKeyHash(key.SPKI)
	if h1 != h2 || h1 == [32]byte{} {
		t.Fatal("IssuerKeyHash not deterministic or zero")
	}
}

func BenchmarkSyntheticEncode(b *testing.B) {
	c := sampleCert()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := c.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSyntheticDecode(b *testing.B) {
	enc := sampleCert().MustEncode()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Decode(enc); err != nil {
			b.Fatal(err)
		}
	}
}
