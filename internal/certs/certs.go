// Package certs models TLS certificates for the CT ecosystem simulation.
//
// Two representations coexist:
//
//   - A compact synthetic codec (this file) used for bulk simulation: the
//     paper's pipelines process hundreds of millions of certificates, and
//     only names, issuer, validity, and the CT-relevant extensions matter
//     to them. The encoding is deterministic and order-preserving, so the
//     CA bugs of Section 3.4 (reordered SANs, reordered extensions,
//     swapped names) change the TBS bytes exactly as they would in DER.
//
//   - A bridge to crypto/x509 (x509bridge.go) that emits and parses real
//     DER certificates carrying the standard SCT-list and precertificate
//     poison extensions, used on crypto-heavy paths (honeypot, quickstart)
//     and to validate the synthetic codec against reality.
//
// The TBS ("to be signed") form used for SCT issuance and verification
// follows RFC 6962 Section 3.2: the certificate with the poison and
// SCT-list extensions removed, everything else byte-identical.
package certs

import (
	"errors"
	"fmt"
	"time"

	"ctrise/internal/sct"
	"ctrise/internal/tlsenc"
)

// X.509v3 extension OIDs relevant to CT, as dotted strings.
const (
	// OIDSCTList identifies the embedded SCT list extension (RFC 6962 §3.3).
	OIDSCTList = "1.3.6.1.4.1.11129.2.4.2"
	// OIDPoison identifies the critical precertificate poison extension
	// (RFC 6962 §3.1). Its presence makes a certificate a precertificate.
	OIDPoison = "1.3.6.1.4.1.11129.2.4.3"
)

// Errors returned by this package.
var (
	ErrMalformed    = errors.New("certs: malformed certificate encoding")
	ErrNoSCTList    = errors.New("certs: certificate has no SCT list extension")
	ErrNotPrecert   = errors.New("certs: certificate is not a precertificate")
	ErrFieldTooLong = errors.New("certs: field exceeds encodable length")
)

// Name is a reduced distinguished name.
type Name struct {
	CommonName   string
	Organization string
}

// Extension is an ordered X.509v3 extension. Order matters: one of the
// misissuance classes the paper reports (D-TRUST) is a CA whose final
// certificates reordered extensions relative to the precertificate.
type Extension struct {
	OID      string
	Critical bool
	Value    []byte
}

// Certificate is the synthetic certificate model.
type Certificate struct {
	SerialNumber uint64
	Issuer       Name
	Subject      Name
	// DNSNames are the Subject Alternative Name DNS entries, in order.
	DNSNames []string
	// IPAddresses are SAN IP entries (textual), in order. The GlobalSign
	// bug of Section 3.4 involved certificates mixing DNS and IP SANs.
	IPAddresses []string
	NotBefore   time.Time
	NotAfter    time.Time
	// Extensions in order, including the SCT list and poison extensions
	// when present.
	Extensions []Extension
}

// encodingVersion guards the synthetic codec format.
const encodingVersion = 1

// IsPrecert reports whether the poison extension is present.
func (c *Certificate) IsPrecert() bool {
	return c.findExtension(OIDPoison) >= 0
}

// HasSCTList reports whether the SCT list extension is present.
func (c *Certificate) HasSCTList() bool {
	return c.findExtension(OIDSCTList) >= 0
}

func (c *Certificate) findExtension(oid string) int {
	for i, e := range c.Extensions {
		if e.OID == oid {
			return i
		}
	}
	return -1
}

// SCTs parses and returns the embedded SCT list.
func (c *Certificate) SCTs() ([]*sct.SignedCertificateTimestamp, error) {
	i := c.findExtension(OIDSCTList)
	if i < 0 {
		return nil, ErrNoSCTList
	}
	return sct.ParseList(c.Extensions[i].Value)
}

// SetSCTs replaces (or adds) the SCT list extension with the given SCTs.
func (c *Certificate) SetSCTs(list []*sct.SignedCertificateTimestamp) error {
	payload, err := sct.SerializeList(list)
	if err != nil {
		return err
	}
	ext := Extension{OID: OIDSCTList, Value: payload}
	if i := c.findExtension(OIDSCTList); i >= 0 {
		c.Extensions[i] = ext
	} else {
		c.Extensions = append(c.Extensions, ext)
	}
	return nil
}

// AddPoison marks the certificate as a precertificate.
func (c *Certificate) AddPoison() {
	if !c.IsPrecert() {
		c.Extensions = append(c.Extensions, Extension{OID: OIDPoison, Critical: true, Value: []byte{0x05, 0x00}})
	}
}

// RemovePoison removes the poison extension, preserving the order of the
// remaining extensions. It fails if the certificate is not a precert.
func (c *Certificate) RemovePoison() error {
	i := c.findExtension(OIDPoison)
	if i < 0 {
		return ErrNotPrecert
	}
	c.Extensions = append(c.Extensions[:i:i], c.Extensions[i+1:]...)
	return nil
}

// Names returns every DNS name the certificate asserts: the subject CN (if
// it looks like a DNS name, i.e. non-empty) followed by the SANs, without
// deduplication. Section 4's leakage analysis consumes this.
func (c *Certificate) Names() []string {
	out := make([]string, 0, 1+len(c.DNSNames))
	if c.Subject.CommonName != "" {
		out = append(out, c.Subject.CommonName)
	}
	out = append(out, c.DNSNames...)
	return out
}

// Clone returns a deep copy.
func (c *Certificate) Clone() *Certificate {
	out := *c
	out.DNSNames = append([]string(nil), c.DNSNames...)
	out.IPAddresses = append([]string(nil), c.IPAddresses...)
	out.Extensions = make([]Extension, len(c.Extensions))
	for i, e := range c.Extensions {
		out.Extensions[i] = Extension{OID: e.OID, Critical: e.Critical, Value: append([]byte(nil), e.Value...)}
	}
	return &out
}

// Encode serializes the certificate with the deterministic synthetic codec.
func (c *Certificate) Encode() ([]byte, error) {
	b := tlsenc.NewBuilder(256)
	b.AddUint8(encodingVersion)
	b.AddUint64(c.SerialNumber)
	if err := addString16(b, c.Issuer.CommonName); err != nil {
		return nil, err
	}
	if err := addString16(b, c.Issuer.Organization); err != nil {
		return nil, err
	}
	if err := addString16(b, c.Subject.CommonName); err != nil {
		return nil, err
	}
	if err := addString16(b, c.Subject.Organization); err != nil {
		return nil, err
	}
	b.AddUint64(uint64(c.NotBefore.UnixMilli()))
	b.AddUint64(uint64(c.NotAfter.UnixMilli()))
	if len(c.DNSNames) > 0xffff || len(c.IPAddresses) > 0xffff || len(c.Extensions) > 0xffff {
		return nil, ErrFieldTooLong
	}
	b.AddUint16(uint16(len(c.DNSNames)))
	for _, n := range c.DNSNames {
		if err := addString16(b, n); err != nil {
			return nil, err
		}
	}
	b.AddUint16(uint16(len(c.IPAddresses)))
	for _, ip := range c.IPAddresses {
		if err := addString16(b, ip); err != nil {
			return nil, err
		}
	}
	b.AddUint16(uint16(len(c.Extensions)))
	for _, e := range c.Extensions {
		if err := addString16(b, e.OID); err != nil {
			return nil, err
		}
		if e.Critical {
			b.AddUint8(1)
		} else {
			b.AddUint8(0)
		}
		b.AddUint24Vector(e.Value)
	}
	return b.Bytes()
}

// MustEncode is Encode for certificates known to fit the codec limits.
func (c *Certificate) MustEncode() []byte {
	enc, err := c.Encode()
	if err != nil {
		panic(err)
	}
	return enc
}

func addString16(b *tlsenc.Builder, s string) error {
	if len(s) > 0xffff {
		return fmt.Errorf("%w: %d bytes", ErrFieldTooLong, len(s))
	}
	b.AddUint16Vector([]byte(s))
	return nil
}

// Decode parses a certificate from the synthetic codec.
func Decode(data []byte) (*Certificate, error) {
	r := tlsenc.NewReader(data)
	if v := r.Uint8(); v != encodingVersion {
		if r.Err() != nil {
			return nil, fmt.Errorf("%w: %v", ErrMalformed, r.Err())
		}
		return nil, fmt.Errorf("%w: codec version %d", ErrMalformed, v)
	}
	var c Certificate
	c.SerialNumber = r.Uint64()
	c.Issuer.CommonName = string(r.Uint16Vector())
	c.Issuer.Organization = string(r.Uint16Vector())
	c.Subject.CommonName = string(r.Uint16Vector())
	c.Subject.Organization = string(r.Uint16Vector())
	c.NotBefore = time.UnixMilli(int64(r.Uint64())).UTC()
	c.NotAfter = time.UnixMilli(int64(r.Uint64())).UTC()
	nDNS := int(r.Uint16())
	for i := 0; i < nDNS && r.Err() == nil; i++ {
		c.DNSNames = append(c.DNSNames, string(r.Uint16Vector()))
	}
	nIP := int(r.Uint16())
	for i := 0; i < nIP && r.Err() == nil; i++ {
		c.IPAddresses = append(c.IPAddresses, string(r.Uint16Vector()))
	}
	nExt := int(r.Uint16())
	for i := 0; i < nExt && r.Err() == nil; i++ {
		var e Extension
		e.OID = string(r.Uint16Vector())
		e.Critical = r.Uint8() == 1
		e.Value = r.Uint24Vector()
		c.Extensions = append(c.Extensions, e)
	}
	if err := r.ExpectEmpty(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMalformed, err)
	}
	return &c, nil
}

// TBSForSCT returns the RFC 6962 "to be signed" bytes used as the SCT
// signature input for precert entries: the certificate with the poison
// and SCT-list extensions removed, all other fields and their order
// untouched. Both the CA (when requesting an SCT) and the verifier (when
// reconstructing the TBS from a final certificate, Section 3.4) use this.
func (c *Certificate) TBSForSCT() ([]byte, error) {
	stripped := c.Clone()
	kept := stripped.Extensions[:0]
	for _, e := range stripped.Extensions {
		if e.OID == OIDPoison || e.OID == OIDSCTList {
			continue
		}
		kept = append(kept, e)
	}
	stripped.Extensions = kept
	return stripped.Encode()
}

// ValidAt reports whether t falls within the certificate validity window.
func (c *Certificate) ValidAt(t time.Time) bool {
	return !t.Before(c.NotBefore) && !t.After(c.NotAfter)
}

// String renders a compact human-readable summary.
func (c *Certificate) String() string {
	kind := "cert"
	if c.IsPrecert() {
		kind = "precert"
	}
	return fmt.Sprintf("%s serial=%d subject=%q issuer=%q sans=%d", kind, c.SerialNumber, c.Subject.CommonName, c.Issuer.CommonName, len(c.DNSNames))
}
