package certs

import "crypto/sha256"

func sha256Sum(b []byte) [32]byte { return sha256.Sum256(b) }
