package dnssim

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"ctrise/internal/dnsmsg"
)

func TestZoneExactLookup(t *testing.T) {
	z := NewZone("example.com")
	z.AddA("www.example.com", net.IPv4(192, 0, 2, 1))
	z.AddAAAA("www.example.com", net.ParseIP("2001:db8::1"))

	rrs, rcode := z.Lookup("www.example.com", dnsmsg.TypeA)
	if rcode != dnsmsg.RCodeSuccess || len(rrs) != 1 || !rrs[0].A.Equal(net.IPv4(192, 0, 2, 1)) {
		t.Fatalf("A lookup: %v %v", rrs, rcode)
	}
	rrs, rcode = z.Lookup("WWW.Example.Com.", dnsmsg.TypeAAAA)
	if rcode != dnsmsg.RCodeSuccess || len(rrs) != 1 {
		t.Fatalf("case-insensitive AAAA lookup: %v %v", rrs, rcode)
	}
}

func TestZoneNXDomainAndNoData(t *testing.T) {
	z := NewZone("example.com")
	z.AddA("www.example.com", net.IPv4(192, 0, 2, 1))

	if _, rcode := z.Lookup("missing.example.com", dnsmsg.TypeA); rcode != dnsmsg.RCodeNXDomain {
		t.Fatalf("missing name rcode = %v", rcode)
	}
	// Name exists (has A) but no AAAA: NOERROR with empty answer.
	rrs, rcode := z.Lookup("www.example.com", dnsmsg.TypeAAAA)
	if rcode != dnsmsg.RCodeSuccess || len(rrs) != 0 {
		t.Fatalf("no-data: %v %v", rrs, rcode)
	}
	// Out-of-zone: REFUSED.
	if _, rcode := z.Lookup("www.other.org", dnsmsg.TypeA); rcode != dnsmsg.RCodeRefused {
		t.Fatalf("out-of-zone rcode = %v", rcode)
	}
}

func TestZoneWildcard(t *testing.T) {
	z := NewZone("example.com")
	z.Add(dnsmsg.Record{Name: "*.example.com", Type: dnsmsg.TypeA, TTL: 60, A: net.IPv4(192, 0, 2, 9)})

	rrs, rcode := z.Lookup("anything.example.com", dnsmsg.TypeA)
	if rcode != dnsmsg.RCodeSuccess || len(rrs) != 1 {
		t.Fatalf("wildcard: %v %v", rrs, rcode)
	}
	if rrs[0].Name != "anything.example.com" {
		t.Fatalf("wildcard owner = %q", rrs[0].Name)
	}
	// Deep names match ancestor wildcards.
	rrs, rcode = z.Lookup("a.b.example.com", dnsmsg.TypeA)
	if rcode != dnsmsg.RCodeSuccess || len(rrs) != 1 {
		t.Fatalf("deep wildcard: %v %v", rrs, rcode)
	}
}

func TestZoneExactBeatsWildcard(t *testing.T) {
	z := NewZone("example.com")
	z.Add(dnsmsg.Record{Name: "*.example.com", Type: dnsmsg.TypeA, TTL: 60, A: net.IPv4(10, 0, 0, 1)})
	z.AddA("www.example.com", net.IPv4(192, 0, 2, 1))
	rrs, _ := z.Lookup("www.example.com", dnsmsg.TypeA)
	if !rrs[0].A.Equal(net.IPv4(192, 0, 2, 1)) {
		t.Fatalf("exact did not win: %v", rrs[0].A)
	}
}

func TestZoneDefaultA(t *testing.T) {
	z := NewZone("parked.tk")
	z.DefaultA = net.IPv4(198, 51, 100, 200)
	rrs, rcode := z.Lookup("random-control-name.parked.tk", dnsmsg.TypeA)
	if rcode != dnsmsg.RCodeSuccess || len(rrs) != 1 || !rrs[0].A.Equal(z.DefaultA) {
		t.Fatalf("default A: %v %v", rrs, rcode)
	}
	// DefaultA answers A only.
	rrs, _ = z.Lookup("random-control-name.parked.tk", dnsmsg.TypeAAAA)
	if len(rrs) != 0 {
		t.Fatalf("default A leaked into AAAA: %v", rrs)
	}
}

func TestZoneCNAMEAnswersOtherTypes(t *testing.T) {
	z := NewZone("example.com")
	z.AddCNAME("alias.example.com", "real.example.com")
	rrs, rcode := z.Lookup("alias.example.com", dnsmsg.TypeA)
	if rcode != dnsmsg.RCodeSuccess || len(rrs) != 1 || rrs[0].Type != dnsmsg.TypeCNAME {
		t.Fatalf("CNAME for A query: %v %v", rrs, rcode)
	}
}

func TestUniverseResolveChain(t *testing.T) {
	u := NewUniverse()
	z1 := NewZone("example.com")
	z1.AddCNAME("www.example.com", "lb.cdn.net")
	u.AddZone(z1)
	z2 := NewZone("cdn.net")
	z2.AddCNAME("lb.cdn.net", "edge7.cdn.net")
	z2.AddA("edge7.cdn.net", net.IPv4(203, 0, 113, 80))
	u.AddZone(z2)

	res, hops := u.ResolveChain("www.example.com", dnsmsg.TypeA, 10)
	if res.RCode != dnsmsg.RCodeSuccess {
		t.Fatalf("rcode = %v", res.RCode)
	}
	if hops != 2 {
		t.Fatalf("hops = %d", hops)
	}
	if len(res.Records) != 1 || !res.Records[0].A.Equal(net.IPv4(203, 0, 113, 80)) {
		t.Fatalf("records = %v", res.Records)
	}
}

func TestUniverseCNAMELoopCapped(t *testing.T) {
	u := NewUniverse()
	z := NewZone("loop.net")
	z.AddCNAME("a.loop.net", "b.loop.net")
	z.AddCNAME("b.loop.net", "a.loop.net")
	u.AddZone(z)
	res, hops := u.ResolveChain("a.loop.net", dnsmsg.TypeA, 10)
	if res.RCode != dnsmsg.RCodeServFail {
		t.Fatalf("rcode = %v", res.RCode)
	}
	if hops != 11 {
		t.Fatalf("hops = %d", hops)
	}
}

func TestUniverseUnknownZone(t *testing.T) {
	u := NewUniverse()
	res := u.Resolve("no.such.zone.example", dnsmsg.TypeA)
	if res.RCode != dnsmsg.RCodeNXDomain {
		t.Fatalf("rcode = %v", res.RCode)
	}
}

func TestUniverseMostSpecificZone(t *testing.T) {
	u := NewUniverse()
	broad := NewZone("example.com")
	broad.AddA("x.sub.example.com", net.IPv4(10, 0, 0, 1)) // would shadow
	u.AddZone(broad)
	specific := NewZone("sub.example.com")
	specific.AddA("x.sub.example.com", net.IPv4(10, 0, 0, 2))
	u.AddZone(specific)

	res := u.Resolve("x.sub.example.com", dnsmsg.TypeA)
	if !res.Records[0].A.Equal(net.IPv4(10, 0, 0, 2)) {
		t.Fatalf("delegation: %v", res.Records[0].A)
	}
	if u.ZoneCount() != 2 || u.Zone("sub.example.com") != specific {
		t.Fatal("zone registry")
	}
}

func TestServerEndToEnd(t *testing.T) {
	u := NewUniverse()
	z := NewZone("hp.example")
	z.AddA("abcdefghijkl.hp.example", net.IPv4(198, 51, 100, 42))
	z.AddAAAA("abcdefghijkl.hp.example", net.ParseIP("2001:db8:77::1"))
	u.AddZone(z)

	srv := NewServer(u)
	var mu sync.Mutex
	var events []QueryEvent
	srv.OnQuery = func(ev QueryEvent) {
		mu.Lock()
		events = append(events, ev)
		mu.Unlock()
	}
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := &Client{Timeout: 5 * time.Second}

	// A query with EDNS client subnet, like Google Public DNS sends.
	q := dnsmsg.NewQuery(77, "abcdefghijkl.hp.example", dnsmsg.TypeA)
	q.EDNS = &dnsmsg.EDNS{ClientSubnet: &dnsmsg.ClientSubnet{
		Family: 1, SourcePrefix: 24, Address: net.IPv4(203, 0, 113, 0),
	}}
	reply, err := cli.Exchange(addr.String(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !reply.Response || !reply.Authoritative || reply.RCode != dnsmsg.RCodeSuccess {
		t.Fatalf("reply: %+v", reply)
	}
	if len(reply.Answers) != 1 || !reply.Answers[0].A.Equal(net.IPv4(198, 51, 100, 42)) {
		t.Fatalf("answers: %v", reply.Answers)
	}

	// NXDOMAIN for unknown name.
	q2 := dnsmsg.NewQuery(78, "unknown.hp.example", dnsmsg.TypeA)
	reply2, err := cli.Exchange(addr.String(), q2)
	if err != nil {
		t.Fatal(err)
	}
	if reply2.RCode != dnsmsg.RCodeNXDomain {
		t.Fatalf("rcode = %v", reply2.RCode)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(events) != 2 {
		t.Fatalf("events = %d", len(events))
	}
	if events[0].Name != "abcdefghijkl.hp.example" || events[0].Type != dnsmsg.TypeA {
		t.Fatalf("event 0: %+v", events[0])
	}
	if events[0].ClientSubnet == nil || events[0].ClientSubnet.String() != "203.0.113.0/24" {
		t.Fatalf("event 0 ECS: %+v", events[0].ClientSubnet)
	}
	if events[1].RCode != dnsmsg.RCodeNXDomain {
		t.Fatalf("event 1 rcode: %v", events[1].RCode)
	}
}

func TestServerIgnoresGarbage(t *testing.T) {
	u := NewUniverse()
	srv := NewServer(u)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("udp", addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	// Server must survive; a valid query still works.
	cli := &Client{Timeout: 5 * time.Second}
	z := NewZone("ok.example")
	z.AddA("a.ok.example", net.IPv4(1, 2, 3, 4))
	u.AddZone(z)
	if _, err := cli.Exchange(addr.String(), dnsmsg.NewQuery(1, "a.ok.example", dnsmsg.TypeA)); err != nil {
		t.Fatal(err)
	}
}

func TestServerConcurrentQueries(t *testing.T) {
	u := NewUniverse()
	z := NewZone("load.example")
	for i := 0; i < 50; i++ {
		z.AddA(fmt.Sprintf("h%d.load.example", i), net.IPv4(10, 0, byte(i>>8), byte(i)))
	}
	u.AddZone(z)
	srv := NewServer(u)
	addr, err := srv.Start("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	errs := make(chan error, 50)
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cli := &Client{Timeout: 5 * time.Second}
			reply, err := cli.Exchange(addr.String(), dnsmsg.NewQuery(uint16(i+1), fmt.Sprintf("h%d.load.example", i), dnsmsg.TypeA))
			if err != nil {
				errs <- err
				return
			}
			if len(reply.Answers) != 1 {
				errs <- fmt.Errorf("no answer for %d", i)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
