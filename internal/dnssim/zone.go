// Package dnssim provides the DNS substrate for the paper's experiments:
// an authoritative zone store with wildcard and default-answer semantics,
// a UDP authoritative server with a query-observation hook (the honeypot's
// measurement point), a UDP client, and an in-memory "Universe" resolver
// that stands in for the global DNS during the bulk subdomain-enumeration
// experiment of Section 4.3 (the paper used massdns against live DNS; we
// resolve against the simulated Internet at full fidelity: NXDOMAIN,
// CNAME chains, wildcard zones that answer anything, and misconfigured
// servers returning addresses outside the routing table).
package dnssim

import (
	"net"
	"strings"
	"sync"

	"ctrise/internal/dnsmsg"
)

// rrKey identifies a record set within a zone.
type rrKey struct {
	name  string
	qtype dnsmsg.Type
}

// Zone holds authoritative data for one origin (e.g. "example.com").
type Zone struct {
	// Origin is the zone apex.
	Origin string
	// DefaultA, if set, makes the zone answer every in-zone name with this
	// address — the "default A record" zones Section 4.3's pseudorandom
	// control names are designed to detect.
	DefaultA net.IP

	mu   sync.RWMutex
	sets map[rrKey][]dnsmsg.Record
}

// NewZone creates an empty zone with an SOA record.
func NewZone(origin string) *Zone {
	z := &Zone{
		Origin: strings.ToLower(strings.TrimSuffix(origin, ".")),
		sets:   make(map[rrKey][]dnsmsg.Record),
	}
	z.Add(dnsmsg.Record{
		Name: z.Origin, Type: dnsmsg.TypeSOA, Class: dnsmsg.ClassIN, TTL: 3600,
		SOA: dnsmsg.SOAData{
			MName: "ns1." + z.Origin, RName: "hostmaster." + z.Origin,
			Serial: 1, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
		},
	})
	return z
}

// Add inserts a record.
func (z *Zone) Add(rr dnsmsg.Record) {
	rr.Name = strings.ToLower(strings.TrimSuffix(rr.Name, "."))
	if rr.Class == 0 {
		rr.Class = dnsmsg.ClassIN
	}
	z.mu.Lock()
	defer z.mu.Unlock()
	k := rrKey{rr.Name, rr.Type}
	z.sets[k] = append(z.sets[k], rr)
}

// AddA is a convenience for A records.
func (z *Zone) AddA(name string, ip net.IP) {
	z.Add(dnsmsg.Record{Name: name, Type: dnsmsg.TypeA, TTL: 300, A: ip})
}

// AddAAAA is a convenience for AAAA records.
func (z *Zone) AddAAAA(name string, ip net.IP) {
	z.Add(dnsmsg.Record{Name: name, Type: dnsmsg.TypeAAAA, TTL: 300, AAAA: ip})
}

// AddCNAME is a convenience for CNAME records.
func (z *Zone) AddCNAME(name, target string) {
	z.Add(dnsmsg.Record{Name: name, Type: dnsmsg.TypeCNAME, TTL: 300, Target: target})
}

// Contains reports whether name falls inside the zone.
func (z *Zone) Contains(name string) bool {
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	return name == z.Origin || strings.HasSuffix(name, "."+z.Origin)
}

// Lookup resolves (name, qtype) within the zone, applying, in order:
// exact match; CNAME at the name (returned so the caller can chase it);
// wildcard (*.parent) match; DefaultA synthesis; otherwise NXDOMAIN (or
// NOERROR/no-data when the name exists with a different type).
func (z *Zone) Lookup(name string, qtype dnsmsg.Type) ([]dnsmsg.Record, dnsmsg.RCode) {
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	if !z.Contains(name) {
		return nil, dnsmsg.RCodeRefused
	}
	z.mu.RLock()
	defer z.mu.RUnlock()

	if rrs, ok := z.sets[rrKey{name, qtype}]; ok {
		return append([]dnsmsg.Record(nil), rrs...), dnsmsg.RCodeSuccess
	}
	// CNAME at the owner name answers any type except the CNAME itself.
	if rrs, ok := z.sets[rrKey{name, dnsmsg.TypeCNAME}]; ok && qtype != dnsmsg.TypeCNAME {
		return append([]dnsmsg.Record(nil), rrs...), dnsmsg.RCodeSuccess
	}
	// Wildcard: replace the leftmost label with "*" at each ancestor.
	rest := name
	for rest != z.Origin && rest != "" {
		i := strings.IndexByte(rest, '.')
		if i < 0 {
			break
		}
		parent := rest[i+1:]
		wname := "*." + parent
		if rrs, ok := z.sets[rrKey{wname, qtype}]; ok {
			return substituteOwner(rrs, name), dnsmsg.RCodeSuccess
		}
		if rrs, ok := z.sets[rrKey{wname, dnsmsg.TypeCNAME}]; ok && qtype != dnsmsg.TypeCNAME {
			return substituteOwner(rrs, name), dnsmsg.RCodeSuccess
		}
		rest = parent
	}
	// Default-A zones answer any A query in-zone.
	if z.DefaultA != nil && qtype == dnsmsg.TypeA {
		return []dnsmsg.Record{{
			Name: name, Type: dnsmsg.TypeA, Class: dnsmsg.ClassIN, TTL: 300, A: z.DefaultA,
		}}, dnsmsg.RCodeSuccess
	}
	// Name exists with other types -> NOERROR, empty answer.
	for k := range z.sets {
		if k.name == name {
			return nil, dnsmsg.RCodeSuccess
		}
	}
	return nil, dnsmsg.RCodeNXDomain
}

func substituteOwner(rrs []dnsmsg.Record, owner string) []dnsmsg.Record {
	out := make([]dnsmsg.Record, len(rrs))
	for i, rr := range rrs {
		rr.Name = owner
		out[i] = rr
	}
	return out
}
