package dnssim

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"ctrise/internal/dnsmsg"
)

// QueryEvent describes one query observed by the authoritative server —
// the honeypot's primary measurement signal (Table 4 counts queries,
// querying ASes, and EDNS client subnets per honeypot subdomain).
type QueryEvent struct {
	Time         time.Time
	Source       net.Addr
	Name         string
	Type         dnsmsg.Type
	ClientSubnet *dnsmsg.ClientSubnet
	RCode        dnsmsg.RCode
}

// Server is an authoritative UDP DNS server over one or more zones.
type Server struct {
	universe *Universe
	// OnQuery, if set, observes every query after it is answered.
	OnQuery func(QueryEvent)
	// Clock stamps query events; defaults to time.Now.
	Clock func() time.Time

	mu     sync.Mutex
	conn   net.PacketConn
	closed bool
	wg     sync.WaitGroup
}

// NewServer creates a server answering from the universe's zones.
func NewServer(u *Universe) *Server {
	return &Server{universe: u, Clock: time.Now}
}

// Start begins serving on addr (e.g. "127.0.0.1:0") and returns the bound
// address.
func (s *Server) Start(addr string) (net.Addr, error) {
	conn, err := net.ListenPacket("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("dnssim: listen: %w", err)
	}
	s.mu.Lock()
	s.conn = conn
	s.mu.Unlock()
	s.wg.Add(1)
	go s.serve(conn)
	return conn.LocalAddr(), nil
}

// Close stops the server and waits for the serve loop to exit.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closed = true
	conn := s.conn
	s.mu.Unlock()
	var err error
	if conn != nil {
		err = conn.Close()
	}
	s.wg.Wait()
	return err
}

func (s *Server) serve(conn net.PacketConn) {
	defer s.wg.Done()
	buf := make([]byte, 4096)
	for {
		n, src, err := conn.ReadFrom(buf)
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || errors.Is(err, net.ErrClosed) {
				return
			}
			continue
		}
		pkt := make([]byte, n)
		copy(pkt, buf[:n])
		s.handlePacket(conn, src, pkt)
	}
}

func (s *Server) handlePacket(conn net.PacketConn, src net.Addr, pkt []byte) {
	query, err := dnsmsg.Unpack(pkt)
	if err != nil || query.Response || len(query.Questions) == 0 {
		return
	}
	q := query.Questions[0]
	reply := query.Reply()
	reply.Authoritative = true

	res := s.universe.Resolve(q.Name, q.Type)
	switch res.RCode {
	case dnsmsg.RCodeSuccess:
		reply.Answers = res.Records
	case dnsmsg.RCodeRefused:
		reply.RCode = dnsmsg.RCodeRefused
	default:
		reply.RCode = res.RCode
	}

	if s.OnQuery != nil {
		var cs *dnsmsg.ClientSubnet
		if query.EDNS != nil {
			cs = query.EDNS.ClientSubnet
		}
		s.OnQuery(QueryEvent{
			Time:         s.Clock(),
			Source:       src,
			Name:         q.Name,
			Type:         q.Type,
			ClientSubnet: cs,
			RCode:        reply.RCode,
		})
	}

	wire, err := reply.Pack()
	if err != nil {
		return
	}
	_, _ = conn.WriteTo(wire, src)
}

// Client is a minimal UDP DNS client used by attacker agents and tests.
type Client struct {
	// Timeout bounds one exchange; defaults to 2s.
	Timeout time.Duration
}

// Exchange sends query to server and returns the reply.
func (c *Client) Exchange(server string, query *dnsmsg.Message) (*dnsmsg.Message, error) {
	timeout := c.Timeout
	if timeout == 0 {
		timeout = 2 * time.Second
	}
	conn, err := net.Dial("udp", server)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := conn.SetDeadline(time.Now().Add(timeout)); err != nil {
		return nil, err
	}
	wire, err := query.Pack()
	if err != nil {
		return nil, err
	}
	if _, err := conn.Write(wire); err != nil {
		return nil, err
	}
	buf := make([]byte, 4096)
	n, err := conn.Read(buf)
	if err != nil {
		return nil, err
	}
	reply, err := dnsmsg.Unpack(buf[:n])
	if err != nil {
		return nil, err
	}
	if reply.ID != query.ID {
		return nil, fmt.Errorf("dnssim: reply ID %d != query ID %d", reply.ID, query.ID)
	}
	return reply, nil
}
