package dnssim

import (
	"strings"
	"sync"

	"ctrise/internal/dnsmsg"
)

// Result is the outcome of one resolution step.
type Result struct {
	RCode   dnsmsg.RCode
	Records []dnsmsg.Record
}

// Resolver answers single-step DNS questions. Both the in-memory Universe
// and the UDP client implement it, so measurement code is transport-
// agnostic (the gopacket-style "decode the same way regardless of source"
// idiom).
type Resolver interface {
	Resolve(name string, qtype dnsmsg.Type) Result
}

// Universe is the simulated global DNS: a set of zones indexed by origin.
// It is safe for concurrent use and is the backend for the massdns-like
// bulk verifier in Section 4.3.
type Universe struct {
	mu    sync.RWMutex
	zones map[string]*Zone
}

// NewUniverse returns an empty universe.
func NewUniverse() *Universe {
	return &Universe{zones: make(map[string]*Zone)}
}

// AddZone registers a zone; it replaces any previous zone with the same
// origin.
func (u *Universe) AddZone(z *Zone) {
	u.mu.Lock()
	defer u.mu.Unlock()
	u.zones[z.Origin] = z
}

// Zone returns the zone with the given origin, or nil.
func (u *Universe) Zone(origin string) *Zone {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return u.zones[strings.ToLower(origin)]
}

// ZoneCount returns the number of registered zones.
func (u *Universe) ZoneCount() int {
	u.mu.RLock()
	defer u.mu.RUnlock()
	return len(u.zones)
}

// findZone locates the most specific zone containing name.
func (u *Universe) findZone(name string) *Zone {
	u.mu.RLock()
	defer u.mu.RUnlock()
	name = strings.ToLower(strings.TrimSuffix(name, "."))
	for cand := name; cand != ""; {
		if z, ok := u.zones[cand]; ok {
			return z
		}
		i := strings.IndexByte(cand, '.')
		if i < 0 {
			break
		}
		cand = cand[i+1:]
	}
	return nil
}

// Resolve answers one question without following CNAMEs (callers chase
// them, as the paper's methodology does explicitly, up to 10 hops).
func (u *Universe) Resolve(name string, qtype dnsmsg.Type) Result {
	z := u.findZone(name)
	if z == nil {
		return Result{RCode: dnsmsg.RCodeNXDomain}
	}
	rrs, rcode := z.Lookup(name, qtype)
	return Result{RCode: rcode, Records: rrs}
}

// ResolveChain resolves a name, following CNAME indirection up to
// maxHops (the paper uses 10). It returns the terminal records, the
// final rcode, and the number of CNAME hops taken. A chain longer than
// maxHops yields ServFail, mirroring resolver behaviour.
func (u *Universe) ResolveChain(name string, qtype dnsmsg.Type, maxHops int) (Result, int) {
	hops := 0
	cur := name
	for {
		res := u.Resolve(cur, qtype)
		if res.RCode != dnsmsg.RCodeSuccess || len(res.Records) == 0 {
			return res, hops
		}
		if res.Records[0].Type == dnsmsg.TypeCNAME && qtype != dnsmsg.TypeCNAME {
			hops++
			if hops > maxHops {
				return Result{RCode: dnsmsg.RCodeServFail}, hops
			}
			cur = res.Records[0].Target
			continue
		}
		return res, hops
	}
}
