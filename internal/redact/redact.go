// Package redact implements the subdomain-label redaction countermeasure
// discussed in Section 4: the concern that CT leaks private subdomains
// led Symantec to run the Deneb log (whose explicit goal was to hide
// subdomains) and the IETF to draft label-redaction mechanisms for
// RFC 6962-bis. Redaction replaces the labels left of the registrable
// domain with "?" before logging, so a monitor learns that a certificate
// exists for the domain without learning its hostnames.
//
// The package provides both the mechanism (name and certificate
// redaction) and the evaluation hook the paper's Section 4 analysis
// implies: a census over a redacted corpus recovers no subdomain labels.
package redact

import (
	"strings"

	"ctrise/internal/certs"
	"ctrise/internal/dnsname"
	"ctrise/internal/psl"
)

// Placeholder is the label that replaces redacted labels, following the
// RFC 6962-bis redaction draft's presentation ("?").
const Placeholder = "?"

// Name redacts every subdomain label of one FQDN: labels in front of the
// registrable domain become Placeholder, wildcards included. Names that
// are bare registrable domains (or unsplittable) pass through unchanged —
// there is nothing to hide.
func Name(fqdn string, list *psl.List) string {
	normalized := dnsname.Normalize(dnsname.TrimWildcard(fqdn))
	sub, regDomain, _, err := list.Split(normalized)
	if err != nil || len(sub) == 0 {
		return normalized
	}
	parts := make([]string, len(sub)+1)
	for i := range sub {
		parts[i] = Placeholder
	}
	parts[len(sub)] = regDomain
	return strings.Join(parts, ".")
}

// Certificate returns a copy of cert with all DNS names (CN and SANs)
// redacted. Duplicate redacted names collapse, so a certificate covering
// five hostnames of one domain leaks only "?.domain".
func Certificate(cert *certs.Certificate, list *psl.List) *certs.Certificate {
	out := cert.Clone()
	if out.Subject.CommonName != "" {
		out.Subject.CommonName = Name(out.Subject.CommonName, list)
	}
	seen := make(map[string]bool, len(out.DNSNames))
	redacted := out.DNSNames[:0]
	for _, n := range out.DNSNames {
		r := Name(n, list)
		if !seen[r] {
			seen[r] = true
			redacted = append(redacted, r)
		}
	}
	out.DNSNames = redacted
	return out
}

// Corpus redacts a whole name set, deduplicating (the privacy gain:
// many hostnames collapse into one entry per domain).
func Corpus(names map[string]struct{}, list *psl.List) map[string]struct{} {
	out := make(map[string]struct{}, len(names))
	for n := range names {
		out[Name(n, list)] = struct{}{}
	}
	return out
}

// LeakedLabels counts the distinct non-placeholder subdomain labels still
// extractable from a corpus — the quantity a Deneb-style log drives to
// zero. It is the evaluation metric for the countermeasure.
func LeakedLabels(names map[string]struct{}, list *psl.List) map[string]int {
	out := make(map[string]int)
	for n := range names {
		sub, _, _, err := list.Split(dnsname.Normalize(dnsname.TrimWildcard(n)))
		if err != nil {
			continue
		}
		for _, l := range sub {
			if l != Placeholder {
				out[l]++
			}
		}
	}
	return out
}
