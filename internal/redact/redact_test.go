package redact

import (
	"testing"

	"ctrise/internal/certs"
	"ctrise/internal/psl"
	"ctrise/internal/subenum"
)

func TestNameRedaction(t *testing.T) {
	list := psl.Default()
	cases := map[string]string{
		"secret.internal.example.com": "?.?.example.com",
		"www.example.co.uk":           "?.example.co.uk",
		"example.com":                 "example.com", // nothing to hide
		"*.example.com":               "example.com", // wildcard strips to apex
		"autodiscover.corp.de":        "?.corp.de",
		"com":                         "com", // unsplittable passes through
	}
	for in, want := range cases {
		if got := Name(in, list); got != want {
			t.Errorf("Name(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCertificateRedactionCollapses(t *testing.T) {
	list := psl.Default()
	cert := &certs.Certificate{
		Subject:  certs.Name{CommonName: "www.victim.de"},
		DNSNames: []string{"www.victim.de", "mail.victim.de", "cpanel.victim.de", "victim.de"},
	}
	red := Certificate(cert, list)
	if red.Subject.CommonName != "?.victim.de" {
		t.Fatalf("CN = %q", red.Subject.CommonName)
	}
	// Three hostnames collapse into one "?" entry plus the apex.
	if len(red.DNSNames) != 2 {
		t.Fatalf("SANs = %v", red.DNSNames)
	}
	if red.DNSNames[0] != "?.victim.de" || red.DNSNames[1] != "victim.de" {
		t.Fatalf("SANs = %v", red.DNSNames)
	}
	// The original is untouched.
	if len(cert.DNSNames) != 4 {
		t.Fatal("redaction mutated the input")
	}
}

func TestRedactedCorpusLeaksNothing(t *testing.T) {
	list := psl.Default()
	corpus := map[string]struct{}{
		"www.a.de":          {},
		"mail.a.de":         {},
		"cpanel.b.co.uk":    {},
		"dev.api.c.com":     {},
		"d.com":             {},
		"autodiscover.e.fr": {},
	}
	// Before: the census sees the sensitive labels.
	if leaked := LeakedLabels(corpus, list); len(leaked) == 0 || leaked["cpanel"] != 1 {
		t.Fatalf("pre-redaction leak = %v", leaked)
	}
	red := Corpus(corpus, list)
	if leaked := LeakedLabels(red, list); len(leaked) != 0 {
		t.Fatalf("post-redaction leak = %v", leaked)
	}
	// The Table 2 census pipeline also recovers nothing: every subdomain
	// label is the placeholder, which is not a valid FQDN label and is
	// rejected, or the bare domain, which has no labels.
	census := subenum.RunCensus(red, list)
	for _, kv := range census.Table2(10) {
		if kv.Key != "" && kv.Key != Placeholder {
			t.Fatalf("census recovered label %q from redacted corpus", kv.Key)
		}
	}
	// Domains remain visible (redaction hides hostnames, not existence).
	if _, ok := red["?.a.de"]; !ok {
		t.Fatalf("redacted corpus = %v", red)
	}
}

func TestCorpusDeduplication(t *testing.T) {
	list := psl.Default()
	corpus := map[string]struct{}{}
	for _, n := range []string{"a.x.de", "b.x.de", "c.x.de", "d.x.de"} {
		corpus[n] = struct{}{}
	}
	red := Corpus(corpus, list)
	if len(red) != 1 {
		t.Fatalf("redacted size = %d, want 1 (all collapse to ?.x.de)", len(red))
	}
}
