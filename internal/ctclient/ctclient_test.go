package ctclient

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"ctrise/internal/ctlog"
	"ctrise/internal/sct"
)

type fixedReader struct{ rng *rand.Rand }

func (f *fixedReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(f.rng.Intn(256))
	}
	return len(p), nil
}

type env struct {
	log    *ctlog.Log
	server *httptest.Server
	client *Client
	now    time.Time
}

func newEnv(t *testing.T, cfg ctlog.Config) *env {
	t.Helper()
	e := &env{now: time.Date(2018, 4, 12, 14, 0, 0, 0, time.UTC)}
	signer, err := sct.NewSigner(&fixedReader{rng: rand.New(rand.NewSource(7))})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Signer = signer
	cfg.Clock = func() time.Time { return e.now }
	if cfg.Name == "" {
		cfg.Name = "itest log"
	}
	l, err := ctlog.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.log = l
	e.server = httptest.NewServer(l.Handler())
	t.Cleanup(e.server.Close)
	e.client = New(e.server.URL, l.Verifier())
	return e
}

func TestAddChainOverHTTP(t *testing.T) {
	e := newEnv(t, ctlog.Config{})
	cert := []byte("der bytes over the wire")
	s, err := e.client.AddChain(context.Background(), cert)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.log.Verifier().VerifySCT(s, sct.X509Entry(cert)); err != nil {
		t.Fatalf("SCT from HTTP does not verify: %v", err)
	}
	if s.LogID != e.log.LogID() {
		t.Fatal("log ID mismatch")
	}
}

func TestAddPreChainOverHTTP(t *testing.T) {
	e := newEnv(t, ctlog.Config{})
	var ikh [32]byte
	ikh[5] = 0x55
	tbs := []byte("precert tbs")
	s, err := e.client.AddPreChain(context.Background(), tbs, ikh)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.log.Verifier().VerifySCT(s, sct.PrecertEntry(ikh, tbs)); err != nil {
		t.Fatalf("precert SCT does not verify: %v", err)
	}
}

func TestGetSTHVerifies(t *testing.T) {
	e := newEnv(t, ctlog.Config{})
	if _, err := e.client.AddChain(context.Background(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	e.now = e.now.Add(time.Minute)
	if _, err := e.log.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	sth, err := e.client.GetSTH(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sth.TreeHead.TreeSize != 1 {
		t.Fatalf("size = %d", sth.TreeHead.TreeSize)
	}
}

func TestGetEntriesAndInclusion(t *testing.T) {
	e := newEnv(t, ctlog.Config{})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := e.client.AddChain(ctx, []byte(fmt.Sprintf("cert-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.log.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	sth, err := e.client.GetSTH(ctx)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := e.client.GetEntries(ctx, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 {
		t.Fatalf("entries = %d", len(entries))
	}
	for _, entry := range entries {
		if err := e.client.VerifyInclusion(ctx, entry, sth); err != nil {
			t.Fatalf("inclusion for %d: %v", entry.Index, err)
		}
	}
	// SCT-over-entry verification: the log's signature covers the entry.
	if string(entries[3].Cert) != "cert-3" {
		t.Fatalf("entry 3 cert = %q", entries[3].Cert)
	}
}

func TestOverloadedSurfacesAsErrOverloaded(t *testing.T) {
	e := newEnv(t, ctlog.Config{CapacityPerSecond: 1})
	ctx := context.Background()
	if _, err := e.client.AddChain(ctx, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.client.AddChain(ctx, []byte("b")); !errors.Is(err, ctlog.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
}

func TestMonitorFollowsLog(t *testing.T) {
	e := newEnv(t, ctlog.Config{})
	ctx := context.Background()
	mon := NewMonitor(e.client)
	mon.Batch = 3

	var seen []string
	collect := func(entry *ctlog.Entry) error {
		seen = append(seen, string(entry.Cert))
		return nil
	}

	// Round 1: 5 entries.
	for i := 0; i < 5; i++ {
		if _, err := e.client.AddChain(ctx, []byte(fmt.Sprintf("r1-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.log.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	if err := mon.Poll(ctx, collect); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 || seen[0] != "r1-0" || seen[4] != "r1-4" {
		t.Fatalf("seen = %v", seen)
	}

	// Round 2: 4 more; the monitor must verify consistency and resume.
	for i := 0; i < 4; i++ {
		if _, err := e.client.AddChain(ctx, []byte(fmt.Sprintf("r2-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	e.now = e.now.Add(time.Minute)
	if _, err := e.log.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	if err := mon.Poll(ctx, collect); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 9 || seen[5] != "r2-0" {
		t.Fatalf("after round 2 seen = %v", seen)
	}
	if mon.EntriesSeen() != 9 {
		t.Fatalf("EntriesSeen = %d", mon.EntriesSeen())
	}

	// Idle poll: no new entries, no error.
	if err := mon.Poll(ctx, collect); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 9 {
		t.Fatalf("idle poll changed seen to %d", len(seen))
	}
}

func TestMonitorCallbackErrorPropagates(t *testing.T) {
	e := newEnv(t, ctlog.Config{})
	ctx := context.Background()
	if _, err := e.client.AddChain(ctx, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.log.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(e.client)
	wantErr := errors.New("sink full")
	err := mon.Poll(ctx, func(*ctlog.Entry) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
}

func TestStreamDeliversUntilCancel(t *testing.T) {
	e := newEnv(t, ctlog.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := e.client.AddChain(ctx, []byte("s1")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.log.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(e.client)
	got := make(chan string, 10)
	go func() {
		_ = mon.Stream(ctx, time.Millisecond, func(entry *ctlog.Entry) error {
			got <- string(entry.Cert)
			return nil
		})
	}()
	select {
	case s := <-got:
		if s != "s1" {
			t.Fatalf("streamed %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream delivered nothing")
	}
	// Add an entry while streaming.
	if _, err := e.client.AddChain(ctx, []byte("s2")); err != nil {
		t.Fatal(err)
	}
	e.now = e.now.Add(time.Second)
	if _, err := e.log.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "s2" {
			t.Fatalf("streamed %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream missed live entry")
	}
	cancel()
}

func TestGetConsistencyProofHTTP(t *testing.T) {
	e := newEnv(t, ctlog.Config{})
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := e.client.AddChain(ctx, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.log.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	proof, err := e.client.GetConsistencyProof(ctx, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(proof) == 0 {
		t.Fatal("empty proof for 2->4")
	}
	// Bad ranges surface as HTTP errors.
	if _, err := e.client.GetConsistencyProof(ctx, 4, 99); err == nil {
		t.Fatal("expected error for out-of-range consistency")
	}
}

func TestBadQueryParameters(t *testing.T) {
	e := newEnv(t, ctlog.Config{})
	ctx := context.Background()
	if _, err := e.client.GetEntries(ctx, 5, 2); err == nil {
		t.Fatal("expected error for reversed range")
	}
	if _, _, err := e.client.GetProofByHash(ctx, [32]byte{1}, 0); err == nil {
		t.Fatal("expected error for zero tree size")
	}
}
