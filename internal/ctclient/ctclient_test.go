package ctclient

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"ctrise/internal/ctlog"
	"ctrise/internal/sct"
)

type fixedReader struct{ rng *rand.Rand }

func (f *fixedReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(f.rng.Intn(256))
	}
	return len(p), nil
}

type env struct {
	log    *ctlog.Log
	server *httptest.Server
	client *Client
	now    time.Time
}

func newEnv(t *testing.T, cfg ctlog.Config) *env {
	t.Helper()
	e := &env{now: time.Date(2018, 4, 12, 14, 0, 0, 0, time.UTC)}
	signer, err := sct.NewSigner(&fixedReader{rng: rand.New(rand.NewSource(7))})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Signer = signer
	cfg.Clock = func() time.Time { return e.now }
	if cfg.Name == "" {
		cfg.Name = "itest log"
	}
	l, err := ctlog.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e.log = l
	e.server = httptest.NewServer(l.Handler())
	t.Cleanup(e.server.Close)
	e.client = New(e.server.URL, l.Verifier())
	return e
}

func TestAddChainOverHTTP(t *testing.T) {
	e := newEnv(t, ctlog.Config{})
	cert := []byte("der bytes over the wire")
	s, err := e.client.AddChain(context.Background(), cert)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.log.Verifier().VerifySCT(s, sct.X509Entry(cert)); err != nil {
		t.Fatalf("SCT from HTTP does not verify: %v", err)
	}
	if s.LogID != e.log.LogID() {
		t.Fatal("log ID mismatch")
	}
}

func TestAddPreChainOverHTTP(t *testing.T) {
	e := newEnv(t, ctlog.Config{})
	var ikh [32]byte
	ikh[5] = 0x55
	tbs := []byte("precert tbs")
	s, err := e.client.AddPreChain(context.Background(), tbs, ikh)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.log.Verifier().VerifySCT(s, sct.PrecertEntry(ikh, tbs)); err != nil {
		t.Fatalf("precert SCT does not verify: %v", err)
	}
}

func TestGetSTHVerifies(t *testing.T) {
	e := newEnv(t, ctlog.Config{})
	if _, err := e.client.AddChain(context.Background(), []byte("x")); err != nil {
		t.Fatal(err)
	}
	e.now = e.now.Add(time.Minute)
	if _, err := e.log.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	sth, err := e.client.GetSTH(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if sth.TreeHead.TreeSize != 1 {
		t.Fatalf("size = %d", sth.TreeHead.TreeSize)
	}
}

func TestGetEntriesAndInclusion(t *testing.T) {
	e := newEnv(t, ctlog.Config{})
	ctx := context.Background()
	for i := 0; i < 10; i++ {
		if _, err := e.client.AddChain(ctx, []byte(fmt.Sprintf("cert-%d", i))); err != nil {
			t.Fatal(err)
		}
		// Distinct timestamps, so the sequencer's canonical
		// (timestamp, identity-hash) order preserves submission order.
		e.now = e.now.Add(time.Second)
	}
	if _, err := e.log.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	sth, err := e.client.GetSTH(ctx)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := e.client.GetEntries(ctx, 0, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 10 {
		t.Fatalf("entries = %d", len(entries))
	}
	for _, entry := range entries {
		if err := e.client.VerifyInclusion(ctx, entry, sth); err != nil {
			t.Fatalf("inclusion for %d: %v", entry.Index, err)
		}
	}
	// SCT-over-entry verification: the log's signature covers the entry.
	if string(entries[3].Cert) != "cert-3" {
		t.Fatalf("entry 3 cert = %q", entries[3].Cert)
	}
}

func TestOverloadedSurfacesAsErrOverloaded(t *testing.T) {
	e := newEnv(t, ctlog.Config{CapacityPerSecond: 1})
	ctx := context.Background()
	if _, err := e.client.AddChain(ctx, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.client.AddChain(ctx, []byte("b")); !errors.Is(err, ctlog.ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
}

func TestMonitorFollowsLog(t *testing.T) {
	e := newEnv(t, ctlog.Config{})
	ctx := context.Background()
	mon := NewMonitor(e.client)
	mon.Batch = 3

	var seen []string
	collect := func(entry *ctlog.Entry) error {
		seen = append(seen, string(entry.Cert))
		return nil
	}

	// Round 1: 5 entries, clock advancing so sequence order follows
	// submission order.
	for i := 0; i < 5; i++ {
		if _, err := e.client.AddChain(ctx, []byte(fmt.Sprintf("r1-%d", i))); err != nil {
			t.Fatal(err)
		}
		e.now = e.now.Add(time.Second)
	}
	if _, err := e.log.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	if err := mon.Poll(ctx, collect); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 5 || seen[0] != "r1-0" || seen[4] != "r1-4" {
		t.Fatalf("seen = %v", seen)
	}

	// Round 2: 4 more; the monitor must verify consistency and resume.
	for i := 0; i < 4; i++ {
		if _, err := e.client.AddChain(ctx, []byte(fmt.Sprintf("r2-%d", i))); err != nil {
			t.Fatal(err)
		}
		e.now = e.now.Add(time.Second)
	}
	e.now = e.now.Add(time.Minute)
	if _, err := e.log.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	if err := mon.Poll(ctx, collect); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 9 || seen[5] != "r2-0" {
		t.Fatalf("after round 2 seen = %v", seen)
	}
	if mon.EntriesSeen() != 9 {
		t.Fatalf("EntriesSeen = %d", mon.EntriesSeen())
	}

	// Idle poll: no new entries, no error.
	if err := mon.Poll(ctx, collect); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 9 {
		t.Fatalf("idle poll changed seen to %d", len(seen))
	}
}

func TestMonitorCallbackErrorPropagates(t *testing.T) {
	e := newEnv(t, ctlog.Config{})
	ctx := context.Background()
	if _, err := e.client.AddChain(ctx, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.log.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(e.client)
	wantErr := errors.New("sink full")
	err := mon.Poll(ctx, func(*ctlog.Entry) error { return wantErr })
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v", err)
	}
}

func TestStreamDeliversUntilCancel(t *testing.T) {
	e := newEnv(t, ctlog.Config{})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if _, err := e.client.AddChain(ctx, []byte("s1")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.log.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	mon := NewMonitor(e.client)
	got := make(chan string, 10)
	go func() {
		_ = mon.Stream(ctx, time.Millisecond, func(entry *ctlog.Entry) error {
			got <- string(entry.Cert)
			return nil
		})
	}()
	select {
	case s := <-got:
		if s != "s1" {
			t.Fatalf("streamed %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream delivered nothing")
	}
	// Add an entry while streaming.
	if _, err := e.client.AddChain(ctx, []byte("s2")); err != nil {
		t.Fatal(err)
	}
	e.now = e.now.Add(time.Second)
	if _, err := e.log.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	select {
	case s := <-got:
		if s != "s2" {
			t.Fatalf("streamed %q", s)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("stream missed live entry")
	}
	cancel()
}

func TestGetConsistencyProofHTTP(t *testing.T) {
	e := newEnv(t, ctlog.Config{})
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		if _, err := e.client.AddChain(ctx, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.log.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	proof, err := e.client.GetConsistencyProof(ctx, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(proof) == 0 {
		t.Fatal("empty proof for 2->4")
	}
	// Bad ranges surface as HTTP errors.
	if _, err := e.client.GetConsistencyProof(ctx, 4, 99); err == nil {
		t.Fatal("expected error for out-of-range consistency")
	}
}

func TestBadQueryParameters(t *testing.T) {
	e := newEnv(t, ctlog.Config{})
	ctx := context.Background()
	if _, err := e.client.GetEntries(ctx, 5, 2); err == nil {
		t.Fatal("expected error for reversed range")
	}
	if _, _, err := e.client.GetProofByHash(ctx, [32]byte{1}, 0); err == nil {
		t.Fatal("expected error for zero tree size")
	}
}

// StreamEntries must walk an arbitrary [start, end] gap-free at any
// client/server page-size combination: the server clamps oversized
// requests to its own limit and returns partial pages, and the client
// resumes from the first undelivered index.
func TestMonitorStreamEntriesPagesGapFree(t *testing.T) {
	e := newEnv(t, ctlog.Config{MaxGetEntries: 4})
	ctx := context.Background()
	const total = 23
	for i := 0; i < total; i++ {
		if _, err := e.client.AddChain(ctx, []byte(fmt.Sprintf("gapfree-%02d", i))); err != nil {
			t.Fatal(err)
		}
		e.now = e.now.Add(time.Second)
	}
	if _, err := e.log.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	// Client batch sizes straddling the server's limit of 4: smaller,
	// equal, larger, and "whole range in one request" (0).
	for _, batch := range []uint64{1, 3, 4, 7, 100, 0} {
		mon := NewMonitor(e.client)
		mon.Batch = batch
		var indices []uint64
		next, err := mon.StreamEntries(ctx, 0, total-1, func(entry *ctlog.Entry) error {
			indices = append(indices, entry.Index)
			return nil
		})
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if next != total {
			t.Fatalf("batch %d: next = %d, want %d", batch, next, total)
		}
		if len(indices) != total {
			t.Fatalf("batch %d: delivered %d entries", batch, len(indices))
		}
		for i, idx := range indices {
			if idx != uint64(i) {
				t.Fatalf("batch %d: entry %d has index %d", batch, i, idx)
			}
		}
	}
}

// A canceled context stops the entry loop mid-page: remaining entries of
// an already-fetched batch are not delivered.
func TestMonitorPollStopsMidPageOnCancel(t *testing.T) {
	e := newEnv(t, ctlog.Config{})
	ctx := context.Background()
	const total = 10
	for i := 0; i < total; i++ {
		if _, err := e.client.AddChain(ctx, []byte(fmt.Sprintf("cancel-%02d", i))); err != nil {
			t.Fatal(err)
		}
		e.now = e.now.Add(time.Second)
	}
	if _, err := e.log.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	// One big page: the whole log arrives in a single get-entries
	// response, and the callback cancels after the third entry.
	cctx, cancel := context.WithCancel(ctx)
	mon := NewMonitor(e.client)
	mon.Batch = 0
	var delivered int
	err := mon.Poll(cctx, func(*ctlog.Entry) error {
		delivered++
		if delivered == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if delivered != 3 {
		t.Fatalf("delivered = %d entries after cancellation, want 3", delivered)
	}
	// A fresh Poll resumes exactly where the canceled one stopped.
	if err := mon.Poll(ctx, func(*ctlog.Entry) error { delivered++; return nil }); err != nil {
		t.Fatal(err)
	}
	if delivered != total || mon.EntriesSeen() != total {
		t.Fatalf("delivered = %d, seen = %d, want %d", delivered, mon.EntriesSeen(), total)
	}
}

// A server that returns more entries than the requested range must not
// push entries the caller did not ask for into the callback.
func TestMonitorStreamEntriesClampsOverGenerousServer(t *testing.T) {
	e := newEnv(t, ctlog.Config{})
	ctx := context.Background()
	for i := 0; i < 8; i++ {
		if _, err := e.client.AddChain(ctx, []byte(fmt.Sprintf("over-%d", i))); err != nil {
			t.Fatal(err)
		}
		e.now = e.now.Add(time.Second)
	}
	if _, err := e.log.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	// A proxy that ignores the requested end and always serves the whole
	// log from start.
	generous := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/ct/v1/get-entries" {
			q := r.URL.Query()
			q.Set("end", "100")
			r.URL.RawQuery = q.Encode()
		}
		e.log.Handler().ServeHTTP(w, r)
	}))
	defer generous.Close()
	mon := NewMonitor(New(generous.URL, nil))
	var delivered int
	next, err := mon.StreamEntries(ctx, 0, 2, func(*ctlog.Entry) error {
		delivered++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if delivered != 3 || next != 3 {
		t.Fatalf("delivered %d entries, next %d; want 3 and 3", delivered, next)
	}
}

// A tile-backed durable log clamps get-entries pages at sealed-tile
// boundaries, so even a generous MaxGetEntries yields short pages over
// HTTP. StreamEntries must absorb those short pages gap-free at any
// client batch size, and a monitor that stops mid-stream must resume at
// the returned index with no gaps or repeats even when the log itself
// restarts (close + reopen from tiles) underneath the same URL.
func TestMonitorStreamEntriesOverTiledLog(t *testing.T) {
	dir := t.TempDir()
	now := time.Date(2018, 4, 12, 14, 0, 0, 0, time.UTC)
	signer := sct.NewFastSigner("tiled-stream-log")
	open := func() *ctlog.Log {
		l, err := ctlog.Open(dir, ctlog.Config{
			Name:          "tiled stream log",
			Operator:      "TestOp",
			Signer:        signer,
			Clock:         func() time.Time { return now },
			TileSpan:      4,
			MaxGetEntries: 100,
			SnapshotEvery: -1,
		})
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	l := open()
	defer func() { l.Close() }()

	ctx := context.Background()
	const total = 23 // 5 full span-4 tiles sealed + 3 resident tail entries
	for i := 0; i < total; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("tiled-%02d", i))); err != nil {
			t.Fatal(err)
		}
		now = now.Add(time.Second)
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	wantLeaves := make([][]byte, 0, total)
	err := l.StreamEntries(0, total-1, func(e *ctlog.Entry) error {
		leaf, err := e.MerkleTreeLeaf()
		if err != nil {
			return err
		}
		wantLeaves = append(wantLeaves, leaf)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// The server swaps to the reopened log mid-test; the client's URL
	// stays fixed, as it would across a real log restart.
	var mu sync.Mutex
	handler := l.Handler()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		h := handler
		mu.Unlock()
		h.ServeHTTP(w, r)
	}))
	defer srv.Close()
	client := New(srv.URL, l.Verifier())

	// Server-side contract: a whole-log request starting in the sealed
	// region is clamped at the first tile boundary despite the generous
	// MaxGetEntries, and a mid-tile start clamps at the same boundary.
	page, err := client.GetEntries(ctx, 0, total-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != 4 || page[0].Index != 0 {
		t.Fatalf("sealed-region page: %d entries from %d, want 4 from 0", len(page), page[0].Index)
	}
	page, err = client.GetEntries(ctx, 2, total-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != 2 || page[0].Index != 2 {
		t.Fatalf("mid-tile page: %d entries from %d, want 2 from 2", len(page), page[0].Index)
	}

	// Client-side contract: gap-free walks over tile-clamped pages at
	// batch sizes below, straddling, and above the tile span.
	for _, batch := range []uint64{1, 3, 4, 7, 100, 0} {
		mon := NewMonitor(client)
		mon.Batch = batch
		var got [][]byte
		next, err := mon.StreamEntries(ctx, 0, total-1, func(e *ctlog.Entry) error {
			leaf, err := e.MerkleTreeLeaf()
			if err != nil {
				return err
			}
			if e.Index != uint64(len(got)) {
				return fmt.Errorf("entry %d delivered in position %d", e.Index, len(got))
			}
			got = append(got, leaf)
			return nil
		})
		if err != nil {
			t.Fatalf("batch %d: %v", batch, err)
		}
		if next != total || len(got) != total {
			t.Fatalf("batch %d: next %d, delivered %d, want %d", batch, next, len(got), total)
		}
		for i := range got {
			if !bytes.Equal(got[i], wantLeaves[i]) {
				t.Fatalf("batch %d: leaf %d differs from the log's own stream", batch, i)
			}
		}
	}

	// Mid-stream restart: deliver 9 entries, pause, restart the log from
	// its tiles, then resume from the returned index via NewMonitorAt.
	pause := errors.New("pause for restart")
	var got [][]byte
	mon := NewMonitor(client)
	mon.Batch = 7
	next, err := mon.StreamEntries(ctx, 0, total-1, func(e *ctlog.Entry) error {
		if len(got) == 9 {
			return pause
		}
		leaf, err := e.MerkleTreeLeaf()
		if err != nil {
			return err
		}
		got = append(got, leaf)
		return nil
	})
	if !errors.Is(err, pause) {
		t.Fatalf("err = %v, want pause sentinel", err)
	}
	if next != 9 {
		t.Fatalf("next = %d after 9 delivered entries, want 9", next)
	}

	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l = open()
	mu.Lock()
	handler = l.Handler()
	mu.Unlock()

	resumed := NewMonitorAt(client, next)
	if err := resumed.Poll(ctx, func(e *ctlog.Entry) error {
		leaf, err := e.MerkleTreeLeaf()
		if err != nil {
			return err
		}
		if e.Index != uint64(len(got)) {
			return fmt.Errorf("entry %d delivered in position %d after restart", e.Index, len(got))
		}
		got = append(got, leaf)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != total || resumed.EntriesSeen() != total-9 {
		t.Fatalf("delivered %d entries (%d after restart), want %d total", len(got), resumed.EntriesSeen(), total)
	}
	for i := range got {
		if !bytes.Equal(got[i], wantLeaves[i]) {
			t.Fatalf("leaf %d differs across the restart", i)
		}
	}
}
