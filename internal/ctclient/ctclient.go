// Package ctclient implements an RFC 6962 log client and monitor: typed
// wrappers over the ct/v1 HTTP API, STH signature verification, gap-free
// entry harvesting, and a streaming mode that mimics CertStream — the
// near-real-time feed the paper's Section 6 identifies as one way third
// parties watch logs.
package ctclient

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"ctrise/internal/ctlog"
	"ctrise/internal/merkle"
	"ctrise/internal/sct"
)

// Errors returned by the client.
var (
	ErrHTTPStatus = errors.New("ctclient: unexpected HTTP status")
	ErrBadBody    = errors.New("ctclient: malformed response body")
)

// Misbehavior errors returned by Monitor.Poll when a log's new STH is
// incompatible with the previously verified one. Each maps to one of the
// auditor's alert classes; all of them mean the log is provably not the
// append-only structure it claims to be (or is showing this client a
// different history than it showed before), so none of them retry.
var (
	// ErrRollback means the log served a (validly signed) STH whose tree
	// size is smaller than one it already served: the log un-published
	// entries it had committed to.
	ErrRollback = errors.New("ctclient: log rolled back its STH")
	// ErrEquivocation means the log served two validly signed STHs with
	// the same tree size but different root hashes: two irreconcilable
	// views of the same history.
	ErrEquivocation = errors.New("ctclient: log equivocated (same size, different root)")
	// ErrFork means the log's new, larger STH is not an append-only
	// extension of the previously verified one: the consistency proof
	// between the two tree heads fails.
	ErrFork = errors.New("ctclient: log fork detected")
)

// StatusError is a non-200 HTTP response, carrying the status code so
// callers (the Monitor's retry loop in particular) can tell transient
// server-side failures (5xx) from permanent request errors (4xx). It
// matches errors.Is(err, ErrHTTPStatus).
type StatusError struct {
	Code int
	Path string
	// RetryAfter is the server's Retry-After hint, when the response
	// carried one (draining or overloaded servers send it with 503/429).
	// Zero means no hint; the Monitor's retry loop raises its backoff to
	// at least this.
	RetryAfter time.Duration
}

// Error formats the status like the pre-typed error did.
func (e *StatusError) Error() string {
	return fmt.Sprintf("%v: %d %s on %s", ErrHTTPStatus, e.Code, http.StatusText(e.Code), e.Path)
}

// Is keeps errors.Is(err, ErrHTTPStatus) working.
func (e *StatusError) Is(target error) bool { return target == ErrHTTPStatus }

// statusError builds the StatusError for a non-200 response, capturing
// the Retry-After hint. Only the delta-seconds form is parsed — the
// HTTP-date form never comes from this repo's servers.
func statusError(resp *http.Response, path string) *StatusError {
	e := &StatusError{Code: resp.StatusCode, Path: path}
	if v := resp.Header.Get("Retry-After"); v != "" {
		if secs, err := strconv.Atoi(v); err == nil && secs >= 0 {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}

// Client talks to one log over HTTP.
type Client struct {
	// BaseURL is the log's root URL (without /ct/v1).
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Verifier, if set, is used by VerifySTH and VerifySCT.
	Verifier sct.SCTVerifier
}

// New returns a client for the log at baseURL.
func New(baseURL string, verifier sct.SCTVerifier) *Client {
	return &Client{BaseURL: baseURL, HTTPClient: http.DefaultClient, Verifier: verifier}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) getJSON(ctx context.Context, path string, query url.Values, out any) error {
	u := c.BaseURL + path
	if len(query) > 0 {
		u += "?" + query.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return statusError(resp, path)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return bodyError(path, err)
	}
	return nil
}

// bodyError classifies a response-body decode failure: a body cut off
// mid-stream (the server died, the connection reset) is a transport
// failure and keeps its cause reachable for the Monitor's transient-
// error retry; genuine JSON garbage is a permanent ErrBadBody.
func bodyError(path string, err error) error {
	var ne net.Error
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) || errors.As(err, &ne) {
		return fmt.Errorf("ctclient: truncated response on %s: %w", path, err)
	}
	return fmt.Errorf("%w: %v", ErrBadBody, err)
}

func (c *Client) postJSON(ctx context.Context, path string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+path, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusTooManyRequests {
		// The log's explicit backpressure signal: keep ErrOverloaded
		// reachable for errors.Is (callers model overload on it) while the
		// wrapped StatusError carries the server's Retry-After hint — the
		// sequencer-interval-derived backoff a well-behaved submitter
		// should apply before re-offering the load.
		return fmt.Errorf("%w: %w", ctlog.ErrOverloaded, statusError(resp, path))
	}
	if resp.StatusCode != http.StatusOK {
		return statusError(resp, path)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return bodyError(path, err)
	}
	return nil
}

// AddChain submits a final certificate and returns the log's SCT.
func (c *Client) AddChain(ctx context.Context, cert []byte) (*sct.SignedCertificateTimestamp, error) {
	var resp ctlog.AddChainResponse
	req := ctlog.AddChainRequest{Chain: []string{base64.StdEncoding.EncodeToString(cert)}}
	if err := c.postJSON(ctx, "/ct/v1/add-chain", req, &resp); err != nil {
		return nil, err
	}
	return responseToSCT(resp)
}

// AddPreChain submits a precertificate (TBS + issuer key hash).
func (c *Client) AddPreChain(ctx context.Context, tbs []byte, issuerKeyHash [32]byte) (*sct.SignedCertificateTimestamp, error) {
	var resp ctlog.AddChainResponse
	req := ctlog.AddChainRequest{Chain: []string{
		base64.StdEncoding.EncodeToString(tbs),
		base64.StdEncoding.EncodeToString(issuerKeyHash[:]),
	}}
	if err := c.postJSON(ctx, "/ct/v1/add-pre-chain", req, &resp); err != nil {
		return nil, err
	}
	return responseToSCT(resp)
}

func responseToSCT(resp ctlog.AddChainResponse) (*sct.SignedCertificateTimestamp, error) {
	idBytes, err := base64.StdEncoding.DecodeString(resp.ID)
	if err != nil || len(idBytes) != sct.LogIDSize {
		return nil, fmt.Errorf("%w: bad log id", ErrBadBody)
	}
	ext, err := base64.StdEncoding.DecodeString(resp.Extensions)
	if err != nil {
		return nil, fmt.Errorf("%w: bad extensions", ErrBadBody)
	}
	sigBytes, err := base64.StdEncoding.DecodeString(resp.Signature)
	if err != nil {
		return nil, fmt.Errorf("%w: bad signature", ErrBadBody)
	}
	ds, err := sct.ParseDigitallySigned(sigBytes)
	if err != nil {
		return nil, err
	}
	out := &sct.SignedCertificateTimestamp{
		SCTVersion: sct.Version(resp.SCTVersion),
		Timestamp:  resp.Timestamp,
		Extensions: ext,
		Signature:  ds,
	}
	copy(out.LogID[:], idBytes)
	return out, nil
}

// Submitter adapts a Client to the submission interface multi-log
// frontends consume (ctfront.Backend): a named remote log reachable
// over the ct/v1 API. The embedded Client's read methods stay
// available; AddPreChain is redeclared with the frontend's
// (issuerKeyHash, tbs) argument order.
type Submitter struct {
	*Client
	name string
}

// NewSubmitter returns a Submitter for the log at c under the given
// display name.
func NewSubmitter(name string, c *Client) *Submitter {
	return &Submitter{Client: c, name: name}
}

// Name identifies the remote log in frontend bundles and health
// reports.
func (s *Submitter) Name() string { return s.name }

// AddPreChain submits a precertificate, taking the issuer key hash
// first like ctlog.Log.AddPreChain does.
func (s *Submitter) AddPreChain(ctx context.Context, issuerKeyHash [32]byte, tbs []byte) (*sct.SignedCertificateTimestamp, error) {
	return s.Client.AddPreChain(ctx, tbs, issuerKeyHash)
}

// GetSTH fetches and, if a verifier is configured, cryptographically
// verifies the latest signed tree head.
func (c *Client) GetSTH(ctx context.Context) (ctlog.SignedTreeHead, error) {
	var resp ctlog.GetSTHResponse
	if err := c.getJSON(ctx, "/ct/v1/get-sth", nil, &resp); err != nil {
		return ctlog.SignedTreeHead{}, err
	}
	rootBytes, err := base64.StdEncoding.DecodeString(resp.SHA256RootHash)
	if err != nil || len(rootBytes) != merkle.HashSize {
		return ctlog.SignedTreeHead{}, fmt.Errorf("%w: bad root hash", ErrBadBody)
	}
	sigBytes, err := base64.StdEncoding.DecodeString(resp.TreeHeadSignature)
	if err != nil {
		return ctlog.SignedTreeHead{}, fmt.Errorf("%w: bad signature", ErrBadBody)
	}
	ds, err := sct.ParseDigitallySigned(sigBytes)
	if err != nil {
		return ctlog.SignedTreeHead{}, err
	}
	sth := ctlog.SignedTreeHead{
		TreeHead: sct.TreeHead{Timestamp: resp.Timestamp, TreeSize: resp.TreeSize},
		Sig:      ds,
	}
	copy(sth.TreeHead.RootHash[:], rootBytes)
	if c.Verifier != nil {
		if err := c.Verifier.VerifyTreeHead(sth.TreeHead, sth.Sig); err != nil {
			return ctlog.SignedTreeHead{}, err
		}
	}
	return sth, nil
}

// GetEntries fetches entries [start, end] (inclusive) and parses the leaf
// inputs.
func (c *Client) GetEntries(ctx context.Context, start, end uint64) ([]*ctlog.Entry, error) {
	q := url.Values{}
	q.Set("start", fmt.Sprint(start))
	q.Set("end", fmt.Sprint(end))
	var resp ctlog.GetEntriesResponse
	if err := c.getJSON(ctx, "/ct/v1/get-entries", q, &resp); err != nil {
		return nil, err
	}
	out := make([]*ctlog.Entry, 0, len(resp.Entries))
	for i, le := range resp.Entries {
		leaf, err := base64.StdEncoding.DecodeString(le.LeafInput)
		if err != nil {
			return nil, fmt.Errorf("%w: entry %d leaf", ErrBadBody, i)
		}
		e, err := ctlog.ParseMerkleTreeLeaf(leaf)
		if err != nil {
			return nil, err
		}
		e.Index = start + uint64(i)
		out = append(out, e)
	}
	return out, nil
}

// GetConsistencyProof fetches the consistency proof between two sizes.
func (c *Client) GetConsistencyProof(ctx context.Context, first, second uint64) ([]merkle.Hash, error) {
	q := url.Values{}
	q.Set("first", fmt.Sprint(first))
	q.Set("second", fmt.Sprint(second))
	var resp ctlog.GetSTHConsistencyResponse
	if err := c.getJSON(ctx, "/ct/v1/get-sth-consistency", q, &resp); err != nil {
		return nil, err
	}
	return decodeHashes(resp.Consistency)
}

// GetProofByHash fetches the inclusion proof for a leaf hash.
func (c *Client) GetProofByHash(ctx context.Context, leafHash merkle.Hash, treeSize uint64) (uint64, []merkle.Hash, error) {
	q := url.Values{}
	q.Set("hash", base64.StdEncoding.EncodeToString(leafHash[:]))
	q.Set("tree_size", fmt.Sprint(treeSize))
	var resp ctlog.GetProofByHashResponse
	if err := c.getJSON(ctx, "/ct/v1/get-proof-by-hash", q, &resp); err != nil {
		return 0, nil, err
	}
	proof, err := decodeHashes(resp.AuditPath)
	return resp.LeafIndex, proof, err
}

func decodeHashes(in []string) ([]merkle.Hash, error) {
	out := make([]merkle.Hash, len(in))
	for i, s := range in {
		b, err := base64.StdEncoding.DecodeString(s)
		if err != nil || len(b) != merkle.HashSize {
			return nil, fmt.Errorf("%w: hash %d", ErrBadBody, i)
		}
		copy(out[i][:], b)
	}
	return out, nil
}

// VerifyInclusion proves that entry is included in the tree described by
// sth, fetching the audit path from the log.
func (c *Client) VerifyInclusion(ctx context.Context, entry *ctlog.Entry, sth ctlog.SignedTreeHead) error {
	leafHash, err := entry.LeafHash()
	if err != nil {
		return err
	}
	index, proof, err := c.GetProofByHash(ctx, leafHash, sth.TreeHead.TreeSize)
	if err != nil {
		return err
	}
	return merkle.VerifyInclusion(leafHash, index, sth.TreeHead.TreeSize, proof, merkle.Hash(sth.TreeHead.RootHash))
}

// Monitor tails a log, fetching new entries as the STH advances, and
// checks consistency between successive tree heads. It is the building
// block for both the Section 2 harvester and the Section 6 attacker
// agents.
type Monitor struct {
	Client *Client
	// Batch caps the entries requested per get-entries call. 0 requests
	// the whole remaining range in one call and lets the server's page
	// limit decide the batch size.
	Batch uint64
	// MaxRetries bounds re-attempts after a transient fetch failure — a
	// 5xx status or a transport-level error, the blips a long-running
	// harvest rides out rather than dies on. Each failed call is
	// retried up to MaxRetries times with jittered exponential backoff
	// before the error propagates; permanent errors (4xx, malformed
	// bodies, failed proofs, context cancellation) never retry. 0
	// disables retrying. NewMonitor defaults to 3.
	MaxRetries int
	// RetryBase is the backoff before the first retry; it doubles per
	// further attempt, each with up to 50% random jitter added so a
	// fleet of monitors does not re-converge on a struggling log in
	// lockstep. NewMonitor defaults to 100ms.
	RetryBase time.Duration

	lastSTH *ctlog.SignedTreeHead
	nextIdx uint64
	entries uint64
}

// NewMonitor returns a monitor starting from index 0.
func NewMonitor(client *Client) *Monitor {
	return &Monitor{Client: client, Batch: 256, MaxRetries: 3, RetryBase: 100 * time.Millisecond}
}

// transientError reports whether a fetch failure is worth retrying:
// server-side 5xx statuses and transport errors are; caller-side 4xx,
// malformed bodies, verification failures, and context cancellation
// are not. ErrOverloaded (429) is deliberately not transient here —
// it is the log's explicit backpressure signal and callers model it.
func transientError(err error) bool {
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code >= 500
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
		return true // response body cut off mid-stream
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var ue *url.Error
	return errors.As(err, &ue)
}

// maxRetryBackoff caps the Monitor's per-attempt retry sleep, so a
// large MaxRetries budget bounds total wait at roughly
// MaxRetries × maxRetryBackoff instead of doubling without limit.
const maxRetryBackoff = 30 * time.Second

// retry runs fn, re-attempting transient failures up to MaxRetries
// times with jittered exponential backoff (RetryBase doubling per
// attempt, capped at maxRetryBackoff). A server that sent a Retry-After
// hint with its failure (a draining backend's 503) raises the backoff
// floor to the hinted wait — the server knows its own restart schedule
// better than the client's doubling does. The sleep respects ctx; on
// cancellation mid-backoff the last fetch error is returned (the
// caller's next ctx check reports the cancellation).
func (m *Monitor) retry(ctx context.Context, fn func() error) error {
	base := m.RetryBase
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	for attempt := 0; ; attempt++ {
		err := fn()
		if err == nil || attempt >= m.MaxRetries || !transientError(err) {
			return err
		}
		d := base << attempt
		if d <= 0 || d > maxRetryBackoff {
			// Cap reached — or the shift overflowed past it.
			d = maxRetryBackoff
		}
		var se *StatusError
		if errors.As(err, &se) && se.RetryAfter > d {
			d = min(se.RetryAfter, maxRetryBackoff)
		}
		d += time.Duration(rand.Int63n(int64(d)/2 + 1))
		timer := time.NewTimer(d)
		select {
		case <-ctx.Done():
			timer.Stop()
			return err
		case <-timer.C:
		}
	}
}

// NewMonitorAt returns a monitor that resumes from entry index next —
// the resume index a previous StreamEntries returned or a harvest
// checkpoint recorded — so a restarted harvester continues gap-free
// instead of re-fetching (and re-counting) the prefix it already
// consumed. The first Poll verifies consistency against the log's
// current STH as usual; full cross-restart fork detection additionally
// needs the caller to persist and compare tree heads (the ecosystem
// harvest checkpoint approximates it by refusing to resume a cursor
// beyond the log's current tree size).
func NewMonitorAt(client *Client, next uint64) *Monitor {
	m := NewMonitor(client)
	m.nextIdx = next
	return m
}

// NextIndex returns the first entry index the monitor has not yet
// delivered — the cursor to persist in a harvest checkpoint.
func (m *Monitor) NextIndex() uint64 { return m.nextIdx }

// LastSTH returns the most recently verified signed tree head, or nil if
// no Poll has completed yet. Auditors persist it (with NextIndex) as
// their verified-chain head.
func (m *Monitor) LastSTH() *ctlog.SignedTreeHead { return m.lastSTH }

// SetLastSTH seeds the monitor with a previously verified tree head —
// the head of a persisted verified-STH chain — so the first Poll after a
// restart checks consistency against the durable audit history instead
// of blindly adopting whatever the log serves now. Cross-restart fork
// and rollback detection both hang off this anchor.
func (m *Monitor) SetLastSTH(sth ctlog.SignedTreeHead) {
	m.lastSTH = &sth
}

// EntriesSeen reports how many entries the monitor has consumed.
func (m *Monitor) EntriesSeen() uint64 { return m.entries }

// StreamEntries fetches entries [start, end] (inclusive) over HTTP and
// delivers them to fn strictly in index order, mirroring
// ctlog.Log.StreamEntries semantics for a remote log. Requests are
// paged: each get-entries call asks for at most Batch entries (the
// whole remainder when Batch is 0), and when the server clamps an
// oversized range to its own page limit and returns a partial page —
// as real logs do — the next request resumes from the first undelivered
// index, so the walk is gap-free at any client/server page-size
// combination. A response that skips indices is rejected rather than
// silently accepted.
//
// ctx is checked between entries, not just between pages, so a canceled
// harvest stops mid-page. The returned index is the first index NOT
// delivered (start + number of entries fn saw), letting callers resume.
func (m *Monitor) StreamEntries(ctx context.Context, start, end uint64, fn func(*ctlog.Entry) error) (uint64, error) {
	next := start
	for next <= end {
		if err := ctx.Err(); err != nil {
			return next, err
		}
		reqEnd := end
		if m.Batch > 0 && next+m.Batch-1 < end {
			reqEnd = next + m.Batch - 1
		}
		var batch []*ctlog.Entry
		if err := m.retry(ctx, func() (err error) {
			batch, err = m.Client.GetEntries(ctx, next, reqEnd)
			return err
		}); err != nil {
			return next, err
		}
		if len(batch) == 0 {
			return next, fmt.Errorf("%w: empty batch at %d", ErrBadBody, next)
		}
		for _, e := range batch {
			if err := ctx.Err(); err != nil {
				return next, err
			}
			// Gap first: a response that does not continue at the next
			// expected index is a protocol violation, whether the
			// stray indices land inside or beyond the requested range.
			if e.Index != next {
				return next, fmt.Errorf("%w: gap in entries: got %d, want %d", ErrBadBody, e.Index, next)
			}
			if e.Index > end {
				// An over-generous server returned entries past the
				// requested range; never deliver what the caller did
				// not ask for.
				return next, nil
			}
			if err := fn(e); err != nil {
				return next, err
			}
			next = e.Index + 1
		}
	}
	return next, nil
}

// Poll fetches the current STH and streams any new entries to fn in order.
// When a previous STH exists, the new head is checked against it before
// any entries are consumed: a smaller tree size is ErrRollback, the same
// size under a different root is ErrEquivocation, and a larger size whose
// consistency proof fails is ErrFork — a misbehaving log is detected
// rather than followed. An STH whose signature fails verification (the
// Client's Verifier) is rejected by GetSTH before any of this runs, so a
// log cannot buy acceptance of a bogus head by streaming entries cleanly.
func (m *Monitor) Poll(ctx context.Context, fn func(*ctlog.Entry) error) error {
	var sth ctlog.SignedTreeHead
	if err := m.retry(ctx, func() (err error) {
		sth, err = m.Client.GetSTH(ctx)
		return err
	}); err != nil {
		return err
	}
	if m.lastSTH != nil {
		last := m.lastSTH.TreeHead
		switch {
		case sth.TreeHead.TreeSize < last.TreeSize:
			return fmt.Errorf("%w: had size %d, got %d", ErrRollback, last.TreeSize, sth.TreeHead.TreeSize)
		case sth.TreeHead.TreeSize == last.TreeSize:
			if sth.TreeHead.RootHash != last.RootHash {
				return fmt.Errorf("%w: size %d, root %x then %x",
					ErrEquivocation, last.TreeSize, last.RootHash, sth.TreeHead.RootHash)
			}
			// Same head, possibly republished under a fresher timestamp:
			// nothing new to verify or stream.
		case last.TreeSize > 0:
			// Consistency with the previous head. A previous size of 0 is
			// trivially consistent with anything, and logs reject
			// get-sth-consistency with first=0, so no proof is requested
			// then.
			var proof []merkle.Hash
			if err := m.retry(ctx, func() (err error) {
				proof, err = m.Client.GetConsistencyProof(ctx, last.TreeSize, sth.TreeHead.TreeSize)
				return err
			}); err != nil {
				return err
			}
			if err := merkle.VerifyConsistency(
				last.TreeSize, sth.TreeHead.TreeSize,
				merkle.Hash(last.RootHash), merkle.Hash(sth.TreeHead.RootHash),
				proof,
			); err != nil {
				return fmt.Errorf("%w: %v", ErrFork, err)
			}
		}
	}
	if sth.TreeHead.TreeSize > m.nextIdx {
		next, err := m.StreamEntries(ctx, m.nextIdx, sth.TreeHead.TreeSize-1, func(e *ctlog.Entry) error {
			if err := fn(e); err != nil {
				return err
			}
			m.entries++
			return nil
		})
		// Record progress even on error so a retried Poll resumes from
		// the first undelivered entry instead of re-fetching.
		m.nextIdx = next
		if err != nil {
			return err
		}
	}
	m.lastSTH = &sth
	return nil
}

// Stream polls the log every interval until ctx is done, delivering new
// entries to fn. This is the CertStream-like near-real-time mode.
func (m *Monitor) Stream(ctx context.Context, interval time.Duration, fn func(*ctlog.Entry) error) error {
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		if err := m.Poll(ctx, fn); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
		}
	}
}
