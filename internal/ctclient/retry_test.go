package ctclient

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"ctrise/internal/ctlog"
	"ctrise/internal/sct"
)

// flakyHandler wraps a real log handler, failing the first failures
// requests to each path with the given status.
type flakyHandler struct {
	inner    http.Handler
	status   int
	failures int
	counts   map[string]*atomic.Int64
	total    atomic.Int64
}

func newFlakyHandler(inner http.Handler, status, failures int) *flakyHandler {
	return &flakyHandler{inner: inner, status: status, failures: failures, counts: map[string]*atomic.Int64{}}
}

func (h *flakyHandler) count(path string) *atomic.Int64 {
	// Registered before the server starts serving; the map itself is
	// only read concurrently.
	c, ok := h.counts[path]
	if !ok {
		c = &atomic.Int64{}
		h.counts[path] = c
	}
	return c
}

func (h *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.total.Add(1)
	c, ok := h.counts[r.URL.Path]
	if !ok {
		h.inner.ServeHTTP(w, r)
		return
	}
	if n := c.Add(1); n <= int64(h.failures) {
		http.Error(w, "transient failure", h.status)
		return
	}
	h.inner.ServeHTTP(w, r)
}

// newMonitoredLog builds a log with a few published entries.
func newMonitoredLog(t *testing.T, entries int) *ctlog.Log {
	t.Helper()
	l, err := ctlog.New(ctlog.Config{Name: "Flaky Log", Signer: sct.NewFastSigner("Flaky Log")})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < entries; i++ {
		if _, err := l.AddChain([]byte{byte(i), byte(i >> 8)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	return l
}

// fastRetryMonitor returns a monitor with a negligible backoff so the
// tests exercise the retry logic, not the wall clock.
func fastRetryMonitor(c *Client) *Monitor {
	m := NewMonitor(c)
	m.RetryBase = time.Microsecond
	return m
}

func TestMonitorRetriesTransient5xx(t *testing.T) {
	l := newMonitoredLog(t, 10)
	flaky := newFlakyHandler(l.Handler(), http.StatusServiceUnavailable, 2)
	flaky.count("/ct/v1/get-sth")
	flaky.count("/ct/v1/get-entries")
	srv := httptest.NewServer(flaky)
	defer srv.Close()

	m := fastRetryMonitor(New(srv.URL, l.Verifier()))
	var got int
	if err := m.Poll(context.Background(), func(*ctlog.Entry) error { got++; return nil }); err != nil {
		t.Fatalf("Poll should have ridden out 2 consecutive 503s per path: %v", err)
	}
	if got != 10 {
		t.Fatalf("delivered %d entries, want 10", got)
	}
	if n := flaky.count("/ct/v1/get-sth").Load(); n != 3 {
		t.Fatalf("get-sth hit %d times, want 3 (2 failures + 1 success)", n)
	}
}

func TestMonitorRetryGivesUpAfterMaxRetries(t *testing.T) {
	l := newMonitoredLog(t, 4)
	// More failures than the budget allows: 1 attempt + 3 retries < 10.
	flaky := newFlakyHandler(l.Handler(), http.StatusInternalServerError, 10)
	flaky.count("/ct/v1/get-sth")
	srv := httptest.NewServer(flaky)
	defer srv.Close()

	m := fastRetryMonitor(New(srv.URL, l.Verifier()))
	err := m.Poll(context.Background(), func(*ctlog.Entry) error { return nil })
	if !errors.Is(err, ErrHTTPStatus) {
		t.Fatalf("err = %v, want ErrHTTPStatus after retries exhausted", err)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusInternalServerError {
		t.Fatalf("err = %v, want StatusError{500}", err)
	}
	if n := flaky.count("/ct/v1/get-sth").Load(); n != 4 {
		t.Fatalf("get-sth hit %d times, want 4 (1 attempt + MaxRetries=3)", n)
	}
}

func TestMonitorDoesNotRetryPermanentErrors(t *testing.T) {
	l := newMonitoredLog(t, 4)
	flaky := newFlakyHandler(l.Handler(), http.StatusNotFound, 100)
	flaky.count("/ct/v1/get-sth")
	srv := httptest.NewServer(flaky)
	defer srv.Close()

	m := fastRetryMonitor(New(srv.URL, l.Verifier()))
	err := m.Poll(context.Background(), func(*ctlog.Entry) error { return nil })
	if !errors.Is(err, ErrHTTPStatus) {
		t.Fatalf("err = %v, want ErrHTTPStatus", err)
	}
	if n := flaky.count("/ct/v1/get-sth").Load(); n != 1 {
		t.Fatalf("a 404 was retried: get-sth hit %d times, want 1", n)
	}
}

func TestMonitorRetriesNetworkError(t *testing.T) {
	// A server that dies after the STH fetch: the first get-entries
	// gets a connection error. The monitor must classify it transient
	// and retry (against the still-dead server), then surface the error
	// with progress intact — and a later Poll against a revived server
	// at the same address is beyond httptest, so just check the retry
	// count via elapsed attempts on a third server that revives.
	l := newMonitoredLog(t, 6)
	flaky := newFlakyHandler(l.Handler(), http.StatusBadGateway, 1)
	flaky.count("/ct/v1/get-entries")
	srv := httptest.NewServer(flaky)
	defer srv.Close()

	// 502 on the first get-entries only: StreamEntries must recover
	// mid-walk without gaps or duplicates.
	m := fastRetryMonitor(New(srv.URL, l.Verifier()))
	m.Batch = 2
	var indices []uint64
	next, err := m.StreamEntries(context.Background(), 0, 5, func(e *ctlog.Entry) error {
		indices = append(indices, e.Index)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if next != 6 || len(indices) != 6 {
		t.Fatalf("next=%d, %d entries delivered, want 6 and 6", next, len(indices))
	}
	for i, idx := range indices {
		if uint64(i) != idx {
			t.Fatalf("gap or duplicate at %d: got index %d", i, idx)
		}
	}

	// True transport-level error: nothing listening.
	dead := New("http://127.0.0.1:1", nil)
	dm := fastRetryMonitor(dead)
	dm.MaxRetries = 2
	if err := dm.Poll(context.Background(), func(*ctlog.Entry) error { return nil }); err == nil {
		t.Fatal("Poll against a dead address succeeded")
	} else if errors.Is(err, ErrHTTPStatus) {
		t.Fatalf("connection error misclassified as HTTP status: %v", err)
	}
}

func TestMonitorRetriesTruncatedBody(t *testing.T) {
	// The server dies mid-response: a 200 header goes out, the JSON
	// body is cut off. That is a transient transport failure — the
	// monitor must retry it, not classify it as a malformed body.
	l := newMonitoredLog(t, 5)
	inner := l.Handler()
	var aborted atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/ct/v1/get-sth" && aborted.Add(1) <= 2 {
			w.WriteHeader(http.StatusOK)
			w.Write([]byte(`{"tree_size": 5, "timesta`))
			if fl, ok := w.(http.Flusher); ok {
				fl.Flush()
			}
			panic(http.ErrAbortHandler)
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	m := fastRetryMonitor(New(srv.URL, l.Verifier()))
	var got int
	if err := m.Poll(context.Background(), func(*ctlog.Entry) error { got++; return nil }); err != nil {
		t.Fatalf("Poll should have ridden out 2 truncated bodies: %v", err)
	}
	if got != 5 {
		t.Fatalf("delivered %d entries, want 5", got)
	}
	if n := aborted.Load(); n != 3 {
		t.Fatalf("get-sth hit %d times, want 3 (2 aborted + 1 clean)", n)
	}

	// Genuine garbage stays permanent: no retry.
	var bad atomic.Int64
	badSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		bad.Add(1)
		w.Write([]byte(`{"tree_size": "not a number"}`))
	}))
	defer badSrv.Close()
	bm := fastRetryMonitor(New(badSrv.URL, nil))
	if err := bm.Poll(context.Background(), func(*ctlog.Entry) error { return nil }); !errors.Is(err, ErrBadBody) {
		t.Fatalf("err = %v, want ErrBadBody", err)
	}
	if n := bad.Load(); n != 1 {
		t.Fatalf("malformed JSON was retried: %d requests, want 1", n)
	}
}

func TestMonitorRetryRespectsContextCancellation(t *testing.T) {
	l := newMonitoredLog(t, 2)
	flaky := newFlakyHandler(l.Handler(), http.StatusServiceUnavailable, 1000)
	flaky.count("/ct/v1/get-sth")
	srv := httptest.NewServer(flaky)
	defer srv.Close()

	m := fastRetryMonitor(New(srv.URL, l.Verifier()))
	m.RetryBase = time.Hour // the sleep must be interrupted, not served
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		for flaky.count("/ct/v1/get-sth").Load() == 0 {
			time.Sleep(time.Millisecond)
		}
		cancel()
	}()
	done := make(chan error, 1)
	go func() {
		done <- m.Poll(ctx, func(*ctlog.Entry) error { return nil })
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("Poll succeeded against an always-failing server")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("retry sleep ignored context cancellation")
	}
}

func TestStatusErrorCarriesRetryAfter(t *testing.T) {
	// A draining server's 503 + Retry-After must surface on the typed
	// error so callers (and the retry loop) can honor the server's own
	// schedule instead of guessing.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "7")
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer srv.Close()

	c := New(srv.URL, nil)
	_, err := c.GetSTH(context.Background())
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want StatusError", err)
	}
	if se.RetryAfter != 7*time.Second {
		t.Fatalf("RetryAfter = %v, want 7s", se.RetryAfter)
	}

	// Garbage and HTTP-date hints are ignored, not misparsed.
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "Wed, 21 Oct 2015 07:28:00 GMT")
		http.Error(w, "draining", http.StatusServiceUnavailable)
	}))
	defer bad.Close()
	_, err = New(bad.URL, nil).GetSTH(context.Background())
	if !errors.As(err, &se) || se.RetryAfter != 0 {
		t.Fatalf("err = %v, want StatusError with zero RetryAfter", err)
	}
}

func TestMonitorRetryHonorsRetryAfterHint(t *testing.T) {
	// The server fails once with Retry-After: 1 while the monitor's own
	// backoff base is microseconds. The retry must wait at least the
	// hinted second — the draining server knows its restart schedule
	// better than the client's doubling does.
	l := newMonitoredLog(t, 3)
	inner := l.Handler()
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/ct/v1/get-sth" && hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer srv.Close()

	m := fastRetryMonitor(New(srv.URL, l.Verifier()))
	startAt := time.Now()
	if err := m.Poll(context.Background(), func(*ctlog.Entry) error { return nil }); err != nil {
		t.Fatalf("Poll should have ridden out the draining 503: %v", err)
	}
	if elapsed := time.Since(startAt); elapsed < time.Second {
		t.Fatalf("retry waited only %v; the Retry-After: 1 hint was ignored", elapsed)
	}
	if n := hits.Load(); n != 2 {
		t.Fatalf("get-sth hit %d times, want 2", n)
	}
}

// A 429 must stay recognizable as ctlog.ErrOverloaded (callers model
// overload on it) while now also carrying the log's derived Retry-After
// hint through the wrapped StatusError — the sequencer interval, not the
// old hardcoded 1s.
func TestAddChainOverloadCarriesDerivedRetryAfter(t *testing.T) {
	l, err := ctlog.New(ctlog.Config{
		Name:              "Overloaded Log",
		Signer:            sct.NewFastSigner("Overloaded Log"),
		CapacityPerSecond: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Configure the sequencer interval the hint derives from; the
	// canceled context stores it and exits without ticking.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.RunSequencer(ctx, 3*time.Second); !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}
	srv := httptest.NewServer(l.Handler())
	defer srv.Close()
	c := New(srv.URL, l.Verifier())
	if _, err := c.AddChain(context.Background(), []byte("fits the bucket")); err != nil {
		t.Fatal(err)
	}
	_, err = c.AddChain(context.Background(), []byte("over capacity"))
	if !errors.Is(err, ctlog.ErrOverloaded) {
		t.Fatalf("AddChain returned %v, want ErrOverloaded", err)
	}
	var se *StatusError
	if !errors.As(err, &se) {
		t.Fatalf("AddChain returned %v, want a wrapped StatusError", err)
	}
	if se.RetryAfter != 3*time.Second {
		t.Fatalf("RetryAfter = %v, want 3s (derived from the sequencer interval)", se.RetryAfter)
	}
}
