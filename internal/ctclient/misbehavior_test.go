package ctclient

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"net/http/httptest"

	"ctrise/internal/chaos"
	"ctrise/internal/ctlog"
	"ctrise/internal/sct"
)

// Monitor misbehavior detection: the STH-transition checks in Poll,
// exercised end to end against the chaos log (the misbehaving ct/v1
// server) rather than hand-forged responses.

type chaosEnv struct {
	chaos  *chaos.Log
	server *httptest.Server
	client *Client
	mon    *Monitor
}

func newChaosEnv(t *testing.T, entries int) *chaosEnv {
	t.Helper()
	now := time.Date(2018, 4, 12, 14, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	signer := sct.NewFastSigner("misbehaving-log")
	honest, err := ctlog.New(ctlog.Config{Name: "misbehaving-log", Signer: signer, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < entries; i++ {
		if _, err := honest.AddChain([]byte(fmt.Sprintf("cert-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := honest.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	cl := chaos.NewLog(honest, signer, clock)
	srv := httptest.NewServer(cl.Handler())
	t.Cleanup(srv.Close)
	c := New(srv.URL, signer.Verifier())
	m := NewMonitor(c)
	m.RetryBase = time.Millisecond
	return &chaosEnv{chaos: cl, server: srv, client: c, mon: m}
}

func (e *chaosEnv) grow(t *testing.T, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := e.chaos.Honest().AddChain([]byte(fmt.Sprintf("growth-%d-%d", e.chaos.Honest().TreeSize(), i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := e.chaos.Honest().PublishSTH(); err != nil {
		t.Fatal(err)
	}
}

func mustPoll(t *testing.T, m *Monitor) {
	t.Helper()
	if err := m.Poll(context.Background(), func(*ctlog.Entry) error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestMonitorPollDetectsRollback(t *testing.T) {
	e := newChaosEnv(t, 3)
	mustPoll(t, e.mon) // verifies and records size 3
	e.grow(t, 2)
	mustPoll(t, e.mon) // verifies size 5

	e.chaos.SetFault(chaos.FaultRollback)
	err := e.mon.Poll(context.Background(), func(*ctlog.Entry) error { return nil })
	if !errors.Is(err, ErrRollback) {
		t.Fatalf("rolled-back STH: got %v, want ErrRollback", err)
	}
	// The verified head must not regress to the rolled-back one.
	if got := e.mon.LastSTH().TreeHead.TreeSize; got != 5 {
		t.Fatalf("lastSTH regressed to %d after rollback attempt, want 5", got)
	}
}

func TestMonitorPollDetectsSameSizeEquivocation(t *testing.T) {
	e := newChaosEnv(t, 3)
	mustPoll(t, e.mon)

	e.chaos.SetFault(chaos.FaultEquivocate)
	err := e.mon.Poll(context.Background(), func(*ctlog.Entry) error { return nil })
	if !errors.Is(err, ErrEquivocation) {
		t.Fatalf("same-size/different-root STH: got %v, want ErrEquivocation", err)
	}
}

func TestMonitorPollDetectsFork(t *testing.T) {
	e := newChaosEnv(t, 3)
	mustPoll(t, e.mon)
	e.grow(t, 2)

	// The log now serves a forked view: larger tree, valid signature,
	// but no consistency proof can link it to the verified history.
	e.chaos.SetFault(chaos.FaultFork)
	err := e.mon.Poll(context.Background(), func(*ctlog.Entry) error { return nil })
	if !errors.Is(err, ErrFork) {
		t.Fatalf("forked STH: got %v, want ErrFork", err)
	}
}

func TestMonitorPollRejectsBadSTHSignature(t *testing.T) {
	e := newChaosEnv(t, 3)
	e.chaos.SetFault(chaos.FaultBadSignature)
	var streamed int
	err := e.mon.Poll(context.Background(), func(*ctlog.Entry) error { streamed++; return nil })
	if !errors.Is(err, sct.ErrInvalidSignature) {
		t.Fatalf("tampered STH signature: got %v, want ErrInvalidSignature", err)
	}
	// The bogus head buys nothing: no entries are consumed under it.
	if streamed != 0 {
		t.Fatalf("%d entries streamed under an unverified STH", streamed)
	}
	if e.mon.LastSTH() != nil {
		t.Fatal("unverified STH was adopted as lastSTH")
	}
}

func TestMonitorPollAcceptsRepublishedHead(t *testing.T) {
	e := newChaosEnv(t, 3)
	var streamed int
	fn := func(*ctlog.Entry) error { streamed++; return nil }
	if err := e.mon.Poll(context.Background(), fn); err != nil {
		t.Fatal(err)
	}
	if streamed != 3 {
		t.Fatalf("first poll streamed %d entries, want 3", streamed)
	}
	// Same head again (idle republish): no error, nothing re-streamed.
	if err := e.mon.Poll(context.Background(), fn); err != nil {
		t.Fatalf("republished identical head must be accepted: %v", err)
	}
	if streamed != 3 {
		t.Fatalf("republished head re-streamed entries: %d total, want 3", streamed)
	}
}
