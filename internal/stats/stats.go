// Package stats provides the small statistics toolkit the measurement
// pipelines share: counters keyed by string, top-k extraction, daily time
// series over a simulated timeline, and percentage helpers used to render
// the paper's tables and figures.
package stats

import (
	"sort"
	"sync"
	"time"
)

// Counter counts occurrences per key. Safe for concurrent use.
type Counter struct {
	mu sync.RWMutex
	m  map[string]uint64
}

// NewCounter returns an empty counter.
func NewCounter() *Counter { return &Counter{m: make(map[string]uint64)} }

// Add increments key by n.
func (c *Counter) Add(key string, n uint64) {
	c.mu.Lock()
	c.m[key] += n
	c.mu.Unlock()
}

// Inc increments key by one.
func (c *Counter) Inc(key string) { c.Add(key, 1) }

// Merge adds every count of o into c. It is the reduction step of the
// parallel pipelines: workers accumulate into private counters and merge
// them once at the end instead of contending on a shared lock per event.
func (c *Counter) Merge(o *Counter) {
	// Snapshot o before locking c: holding both mutexes at once would
	// deadlock on cross-merges (a.Merge(b) racing b.Merge(a)) or a
	// self-merge.
	c.AddMap(o.Snapshot())
}

// AddMap accumulates a plain count map into c under one lock
// acquisition.
func (c *Counter) AddMap(m map[string]uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for k, v := range m {
		c.m[k] += v
	}
}

// Get returns the count for key.
func (c *Counter) Get(key string) uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.m[key]
}

// Len returns the number of distinct keys.
func (c *Counter) Len() int {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.m)
}

// Total returns the sum over all keys.
func (c *Counter) Total() uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var t uint64
	for _, v := range c.m {
		t += v
	}
	return t
}

// KV is a key with its count.
type KV struct {
	Key   string
	Count uint64
}

// TopK returns the k highest-count entries, ties broken alphabetically so
// output is deterministic.
func (c *Counter) TopK(k int) []KV {
	c.mu.RLock()
	all := make([]KV, 0, len(c.m))
	for key, v := range c.m {
		all = append(all, KV{key, v})
	}
	c.mu.RUnlock()
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Key < all[j].Key
	})
	if k > len(all) {
		k = len(all)
	}
	return all[:k]
}

// Snapshot returns a copy of the underlying map.
func (c *Counter) Snapshot() map[string]uint64 {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]uint64, len(c.m))
	for k, v := range c.m {
		out[k] = v
	}
	return out
}

// Percent returns 100*part/total, or 0 when total is 0.
func Percent(part, total uint64) float64 {
	if total == 0 {
		return 0
	}
	return 100 * float64(part) / float64(total)
}

// DaySeries accumulates per-day values keyed by series name over a
// simulated timeline. Days are UTC dates.
type DaySeries struct {
	mu sync.Mutex
	// values[series][day] = value
	values map[string]map[string]float64
	days   map[string]bool
}

// NewDaySeries returns an empty series set.
func NewDaySeries() *DaySeries {
	return &DaySeries{
		values: make(map[string]map[string]float64),
		days:   make(map[string]bool),
	}
}

// DayKey formats t as its UTC date.
func DayKey(t time.Time) string { return t.UTC().Format("2006-01-02") }

// Add accumulates v into (series, day of t).
func (s *DaySeries) Add(series string, t time.Time, v float64) {
	s.AddKey(series, DayKey(t), v)
}

// AddKey accumulates v into (series, day) with the day already formatted
// — the hot-path form for callers that observe many events on the same
// day and memoize the DayKey formatting (the traffic monitor adds up to
// four series values per connection; formatting the same date four times
// per event dominated its allocation profile).
func (s *DaySeries) AddKey(series, day string, v float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.values[series]
	if m == nil {
		m = make(map[string]float64)
		s.values[series] = m
	}
	m[day] += v
	s.days[day] = true
}

// Days returns all days seen, sorted.
func (s *DaySeries) Days() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.days))
	for d := range s.days {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// SeriesNames returns all series names, sorted.
func (s *DaySeries) SeriesNames() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]string, 0, len(s.values))
	for name := range s.values {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Value returns the accumulated value for (series, day).
func (s *DaySeries) Value(series, day string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.values[series][day]
}

// Series returns a copy of one series' day→value map under a single lock
// acquisition, for bulk consumers that would otherwise call Value once
// per cell.
func (s *DaySeries) Series(name string) map[string]float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]float64, len(s.values[name]))
	for d, v := range s.values[name] {
		out[d] = v
	}
	return out
}

// Table returns sorted days, sorted series names, and a deep copy of the
// full (series, day) value table under one lock acquisition — the bulk
// accessor behind the Figure 1 aggregations, which previously took the
// mutex O(series×days) times.
func (s *DaySeries) Table() (days, names []string, values map[string]map[string]float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	days = make([]string, 0, len(s.days))
	for d := range s.days {
		days = append(days, d)
	}
	sort.Strings(days)
	names = make([]string, 0, len(s.values))
	values = make(map[string]map[string]float64, len(s.values))
	for name, row := range s.values {
		names = append(names, name)
		cp := make(map[string]float64, len(row))
		for d, v := range row {
			cp[d] = v
		}
		values[name] = cp
	}
	sort.Strings(names)
	return days, names, values
}

// Merge accumulates every (series, day) value of o into s — the
// reduction step matching Counter.Merge. o is snapshotted first so the
// two locks are never held together (see Counter.Merge).
func (s *DaySeries) Merge(o *DaySeries) {
	_, _, table := o.Table()
	s.MergeTable(table)
}

// MergeTable accumulates a plain (series, day) value table into s under
// one lock acquisition — the bulk form of Add that parallel workers use
// to fold lock-free private aggregates into a shared series.
func (s *DaySeries) MergeTable(values map[string]map[string]float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for name, row := range values {
		m := s.values[name]
		if m == nil {
			m = make(map[string]float64, len(row))
			s.values[name] = m
		}
		for d, v := range row {
			m[d] += v
			s.days[d] = true
		}
	}
}

// Cumulative returns the running sum of a series over all days, aligned
// with Days().
func (s *DaySeries) Cumulative(series string) []float64 {
	days := s.Days()
	row := s.Series(series)
	out := make([]float64, len(days))
	var sum float64
	for i, d := range days {
		sum += row[d]
		out[i] = sum
	}
	return out
}
