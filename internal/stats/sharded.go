package stats

import "sync"

// Shards is the default shard count of ShardedCounter and StringSet:
// enough to make cross-core contention unlikely at typical worker counts
// without bloating the merge step.
const Shards = 16

// Hash64 is the 64-bit FNV-1a hash, inlined so hashing costs one pass
// over the key and no allocation. It is the shared string hash of the
// concurrent pipelines: shard selection here and seed-salting in the
// fan-out layer (ecosystem.SaltString) both use it.
func Hash64(s string) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime64
	}
	return h
}

// Mix64 is the splitmix64 finalizer: a cheap 64-bit bijection with full
// avalanche. It is the shared integer mixer of the deterministic
// pipelines — seed-splitting in the fan-out layer (ecosystem.DeriveSeed,
// ecosystem.NewRand's source) and the submission frontend's backend
// ranking (ctfront) both chain it, adding splitmix64's golden-ratio
// increment (0x9e3779b97f4a7c15) per step the way the generator does.
func Mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Shard maps key onto [0, n) by FNV-1a. Length- or pointer-based schemes
// collapse same-shaped keys onto one shard (equal-length labels all land
// together); FNV-1a spreads them uniformly.
func Shard(key string, n int) int {
	return int(Hash64(key) % uint64(n))
}

// ShardedCounter is a Counter split over independently locked shards
// selected by FNV-1a of the key, so concurrent writers touching different
// keys rarely contend. Reads that need the whole distribution flatten the
// shards into a plain Counter.
type ShardedCounter struct {
	shards []*Counter
}

// NewShardedCounter returns a counter with n shards (Shards if n <= 0).
func NewShardedCounter(n int) *ShardedCounter {
	if n <= 0 {
		n = Shards
	}
	cs := make([]*Counter, n)
	for i := range cs {
		cs[i] = NewCounter()
	}
	return &ShardedCounter{shards: cs}
}

// Add increments key by n in its shard.
func (s *ShardedCounter) Add(key string, n uint64) {
	s.shards[Shard(key, len(s.shards))].Add(key, n)
}

// Inc increments key by one.
func (s *ShardedCounter) Inc(key string) { s.Add(key, 1) }

// Get returns the count for key.
func (s *ShardedCounter) Get(key string) uint64 {
	return s.shards[Shard(key, len(s.shards))].Get(key)
}

// Total returns the sum over all keys.
func (s *ShardedCounter) Total() uint64 {
	var t uint64
	for _, c := range s.shards {
		t += c.Total()
	}
	return t
}

// Flatten collapses the shards into one Counter. Because every key lives
// in exactly one shard, the result equals the counter an unsharded run
// would have produced.
func (s *ShardedCounter) Flatten() *Counter {
	out := NewCounter()
	for _, c := range s.shards {
		out.Merge(c)
	}
	return out
}

// StringSet is a deduplicating string set split over independently locked
// shards selected by FNV-1a — the FQDN-dedup structure the parallel
// harvest workers share. Membership of a name is decided by one shard's
// lock, so workers inserting different names proceed without contention.
type StringSet struct {
	shards []stringSetShard
}

type stringSetShard struct {
	mu sync.Mutex
	m  map[string]struct{}
}

// NewStringSet returns a set with n shards (Shards if n <= 0).
func NewStringSet(n int) *StringSet {
	if n <= 0 {
		n = Shards
	}
	s := &StringSet{shards: make([]stringSetShard, n)}
	for i := range s.shards {
		s.shards[i].m = make(map[string]struct{})
	}
	return s
}

// Add inserts key, reporting whether it was new.
func (s *StringSet) Add(key string) bool {
	sh := &s.shards[Shard(key, len(s.shards))]
	sh.mu.Lock()
	_, dup := sh.m[key]
	if !dup {
		sh.m[key] = struct{}{}
	}
	sh.mu.Unlock()
	return !dup
}

// Has reports membership.
func (s *StringSet) Has(key string) bool {
	sh := &s.shards[Shard(key, len(s.shards))]
	sh.mu.Lock()
	_, ok := sh.m[key]
	sh.mu.Unlock()
	return ok
}

// Len returns the number of distinct keys.
func (s *StringSet) Len() int {
	n := 0
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// NumShards returns the shard count, for callers that fan work out one
// shard at a time (each key lives in exactly one shard).
func (s *StringSet) NumShards() int { return len(s.shards) }

// ForEachShard calls fn for every key in shard i, holding that shard's
// lock for the duration. It is the zero-copy handoff used by the census:
// a worker consumes whole shards in place instead of materializing the
// set into an intermediate map or slice. fn must not call back into the
// same shard.
func (s *StringSet) ForEachShard(i int, fn func(key string)) {
	sh := &s.shards[i]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for k := range sh.m {
		fn(k)
	}
}

// ForEach calls fn for every key in the set, shard by shard.
func (s *StringSet) ForEach(fn func(key string)) {
	for i := range s.shards {
		s.ForEachShard(i, fn)
	}
}

// Snapshot materializes the set as a plain map, sized exactly.
func (s *StringSet) Snapshot() map[string]struct{} {
	out := make(map[string]struct{}, s.Len())
	for i := range s.shards {
		sh := &s.shards[i]
		sh.mu.Lock()
		for k := range sh.m {
			out[k] = struct{}{}
		}
		sh.mu.Unlock()
	}
	return out
}
