package stats

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"
)

// FNV-1a sharding must spread same-length keys over shards (the failure
// mode of length-based schemes) and be stable per key.
func TestShardSpread(t *testing.T) {
	const n = 16
	seen := make(map[int]int)
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("label-%03d", i) // all equal length
		s := Shard(key, n)
		if s < 0 || s >= n {
			t.Fatalf("shard %d out of range", s)
		}
		if s2 := Shard(key, n); s2 != s {
			t.Fatal("shard not stable")
		}
		seen[s]++
	}
	if len(seen) < n/2 {
		t.Fatalf("only %d of %d shards used", len(seen), n)
	}
}

// A sharded counter hammered concurrently must flatten to exactly the
// per-key totals (also a -race exercise).
func TestShardedCounterConcurrent(t *testing.T) {
	sc := NewShardedCounter(0)
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				sc.Inc(fmt.Sprintf("key-%d", i%10))
				sc.Add("bulk", 2)
			}
		}(w)
	}
	wg.Wait()
	flat := sc.Flatten()
	for i := 0; i < 10; i++ {
		key := fmt.Sprintf("key-%d", i)
		want := uint64(workers * perWorker / 10)
		if got := flat.Get(key); got != want {
			t.Fatalf("%s = %d, want %d", key, got, want)
		}
		if got := sc.Get(key); got != want {
			t.Fatalf("Get(%s) = %d, want %d", key, got, want)
		}
	}
	if got, want := flat.Get("bulk"), uint64(2*workers*perWorker); got != want {
		t.Fatalf("bulk = %d, want %d", got, want)
	}
	if sc.Total() != flat.Total() {
		t.Fatal("total mismatch")
	}
}

// Counter.Merge and AddMap are the parallel reduction steps; merged
// counters must equal a counter fed every event directly.
func TestCounterMerge(t *testing.T) {
	direct := NewCounter()
	a, b := NewCounter(), NewCounter()
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("k%d", i%7)
		direct.Inc(key)
		if i%2 == 0 {
			a.Inc(key)
		} else {
			b.Inc(key)
		}
	}
	merged := NewCounter()
	merged.Merge(a)
	merged.AddMap(b.Snapshot())
	if !reflect.DeepEqual(direct.Snapshot(), merged.Snapshot()) {
		t.Fatalf("merge mismatch: %v vs %v", direct.Snapshot(), merged.Snapshot())
	}
	// Self-merge must not deadlock; it doubles every count.
	merged.Merge(merged)
	if got, want := merged.Get("k0"), 2*direct.Get("k0"); got != want {
		t.Fatalf("self-merge k0 = %d, want %d", got, want)
	}
	// Self-merge on DaySeries must not deadlock either.
	ds := NewDaySeries()
	ds.Add("s", time.Date(2018, 4, 1, 12, 0, 0, 0, time.UTC), 1)
	ds.Merge(ds)
	if v := ds.Value("s", "2018-04-01"); v != 2 {
		t.Fatalf("self-merge day value = %v, want 2", v)
	}
}

// DaySeries.Merge/MergeTable must reproduce a directly-fed series, and
// Table must agree with the per-cell accessors.
func TestDaySeriesMergeAndTable(t *testing.T) {
	day := func(d int) time.Time { return time.Date(2018, 4, d, 12, 0, 0, 0, time.UTC) }
	direct := NewDaySeries()
	part1, part2 := NewDaySeries(), NewDaySeries()
	for i := 0; i < 60; i++ {
		series := fmt.Sprintf("org%d", i%3)
		t := day(1 + i%9)
		direct.Add(series, t, float64(i))
		if i%2 == 0 {
			part1.Add(series, t, float64(i))
		} else {
			part2.Add(series, t, float64(i))
		}
	}
	merged := NewDaySeries()
	merged.Merge(part1)
	_, _, table2 := part2.Table()
	merged.MergeTable(table2)

	days, names, table := merged.Table()
	wantDays, wantNames := direct.Days(), direct.SeriesNames()
	if !reflect.DeepEqual(days, wantDays) || !reflect.DeepEqual(names, wantNames) {
		t.Fatalf("days/names mismatch: %v/%v vs %v/%v", days, names, wantDays, wantNames)
	}
	for _, name := range names {
		for _, d := range days {
			if table[name][d] != direct.Value(name, d) {
				t.Fatalf("(%s,%s) = %v, want %v", name, d, table[name][d], direct.Value(name, d))
			}
		}
		if !reflect.DeepEqual(merged.Cumulative(name), direct.Cumulative(name)) {
			t.Fatalf("cumulative mismatch for %s", name)
		}
	}
}

// A concurrently-hammered StringSet must dedupe exactly (also a -race
// exercise).
func TestStringSetConcurrent(t *testing.T) {
	set := NewStringSet(0)
	const workers = 8
	var wg sync.WaitGroup
	var added [workers]int
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				if set.Add(fmt.Sprintf("name-%d", i%200)) {
					added[w]++
				}
			}
		}(w)
	}
	wg.Wait()
	total := 0
	for _, n := range added {
		total += n
	}
	if total != 200 || set.Len() != 200 {
		t.Fatalf("added=%d len=%d, want 200", total, set.Len())
	}
	snap := set.Snapshot()
	if len(snap) != 200 {
		t.Fatalf("snapshot len = %d", len(snap))
	}
	if !set.Has("name-0") || set.Has("missing") {
		t.Fatal("membership")
	}
}
