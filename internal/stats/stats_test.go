package stats

import (
	"reflect"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	c.Inc("www")
	c.Inc("www")
	c.Add("mail", 5)
	if c.Get("www") != 2 || c.Get("mail") != 5 || c.Get("absent") != 0 {
		t.Fatal("counts")
	}
	if c.Len() != 2 || c.Total() != 7 {
		t.Fatalf("len=%d total=%d", c.Len(), c.Total())
	}
}

func TestCounterTopK(t *testing.T) {
	c := NewCounter()
	c.Add("www", 100)
	c.Add("mail", 50)
	c.Add("api", 50) // tie with mail: alphabetical
	c.Add("dev", 10)
	top := c.TopK(3)
	want := []KV{{"www", 100}, {"api", 50}, {"mail", 50}}
	if !reflect.DeepEqual(top, want) {
		t.Fatalf("TopK = %v", top)
	}
	if got := c.TopK(100); len(got) != 4 {
		t.Fatalf("TopK(100) = %d entries", len(got))
	}
}

func TestCounterConcurrent(t *testing.T) {
	c := NewCounter()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc("k")
			}
		}()
	}
	wg.Wait()
	if c.Get("k") != 8000 {
		t.Fatalf("count = %d", c.Get("k"))
	}
}

func TestCounterSnapshotIsCopy(t *testing.T) {
	c := NewCounter()
	c.Inc("a")
	snap := c.Snapshot()
	snap["a"] = 99
	if c.Get("a") != 1 {
		t.Fatal("snapshot aliases counter")
	}
}

func TestPercent(t *testing.T) {
	if Percent(1, 0) != 0 {
		t.Fatal("divide by zero")
	}
	if got := Percent(3261, 10000); got < 32.60 || got > 32.62 {
		t.Fatalf("Percent = %v", got)
	}
}

func TestDaySeries(t *testing.T) {
	s := NewDaySeries()
	d1 := time.Date(2018, 3, 1, 10, 0, 0, 0, time.UTC)
	d2 := time.Date(2018, 3, 2, 5, 0, 0, 0, time.UTC)
	s.Add("le", d1, 10)
	s.Add("le", d1.Add(2*time.Hour), 5) // same day accumulates
	s.Add("le", d2, 20)
	s.Add("digicert", d2, 7)

	if days := s.Days(); !reflect.DeepEqual(days, []string{"2018-03-01", "2018-03-02"}) {
		t.Fatalf("Days = %v", days)
	}
	if names := s.SeriesNames(); !reflect.DeepEqual(names, []string{"digicert", "le"}) {
		t.Fatalf("SeriesNames = %v", names)
	}
	if v := s.Value("le", "2018-03-01"); v != 15 {
		t.Fatalf("value = %v", v)
	}
	if cum := s.Cumulative("le"); !reflect.DeepEqual(cum, []float64{15, 35}) {
		t.Fatalf("cumulative = %v", cum)
	}
	// Series absent on a day contributes zero to its cumulative slot.
	if cum := s.Cumulative("digicert"); !reflect.DeepEqual(cum, []float64{0, 7}) {
		t.Fatalf("digicert cumulative = %v", cum)
	}
}

func TestDayKeyUTC(t *testing.T) {
	loc := time.FixedZone("X", -10*3600)
	tm := time.Date(2018, 3, 1, 20, 0, 0, 0, loc) // 2018-03-02 06:00 UTC
	if DayKey(tm) != "2018-03-02" {
		t.Fatalf("DayKey = %q", DayKey(tm))
	}
}
