package dnsmsg

import (
	"encoding/binary"
	"fmt"
	"net"
	"strings"
)

// Pack encodes the message into wire format. Names are encoded without
// compression (legal per RFC 1035; decoders must still handle pointers,
// which Unpack does).
func (m *Message) Pack() ([]byte, error) {
	buf := make([]byte, 0, 512)
	var flags uint16
	if m.Response {
		flags |= 1 << 15
	}
	flags |= uint16(m.Opcode&0xf) << 11
	if m.Authoritative {
		flags |= 1 << 10
	}
	if m.Truncated {
		flags |= 1 << 9
	}
	if m.RecursionDesired {
		flags |= 1 << 8
	}
	if m.RecursionAvailable {
		flags |= 1 << 7
	}
	flags |= uint16(m.RCode) & 0xf

	additionals := m.Additionals
	if m.EDNS != nil {
		opt, err := m.EDNS.record()
		if err != nil {
			return nil, err
		}
		additionals = append(append([]Record(nil), additionals...), opt)
	}

	buf = binary.BigEndian.AppendUint16(buf, m.ID)
	buf = binary.BigEndian.AppendUint16(buf, flags)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Questions)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Answers)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(m.Authorities)))
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(additionals)))

	var err error
	for _, q := range m.Questions {
		buf, err = appendName(buf, q.Name)
		if err != nil {
			return nil, err
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Type))
		buf = binary.BigEndian.AppendUint16(buf, uint16(q.Class))
	}
	for _, sec := range [][]Record{m.Answers, m.Authorities, additionals} {
		for _, rr := range sec {
			buf, err = appendRecord(buf, rr)
			if err != nil {
				return nil, err
			}
		}
	}
	return buf, nil
}

func appendName(buf []byte, name string) ([]byte, error) {
	name = strings.TrimSuffix(name, ".")
	if name == "" {
		return append(buf, 0), nil
	}
	if len(name) > 253 {
		return nil, fmt.Errorf("%w: %q", ErrNameTooLong, name)
	}
	for _, label := range strings.Split(name, ".") {
		if len(label) == 0 || len(label) > 63 {
			return nil, fmt.Errorf("%w: label %q", ErrMalformed, label)
		}
		buf = append(buf, byte(len(label)))
		buf = append(buf, label...)
	}
	return append(buf, 0), nil
}

func appendRecord(buf []byte, rr Record) ([]byte, error) {
	var err error
	buf, err = appendName(buf, rr.Name)
	if err != nil {
		return nil, err
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Type))
	buf = binary.BigEndian.AppendUint16(buf, uint16(rr.Class))
	buf = binary.BigEndian.AppendUint32(buf, rr.TTL)

	body, err := rr.body()
	if err != nil {
		return nil, err
	}
	if len(body) > 0xffff {
		return nil, fmt.Errorf("%w: rdata too long", ErrMalformed)
	}
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(body)))
	return append(buf, body...), nil
}

func (rr Record) body() ([]byte, error) {
	switch rr.Type {
	case TypeA:
		ip4 := rr.A.To4()
		if ip4 == nil {
			return nil, fmt.Errorf("%w: bad A address %v", ErrMalformed, rr.A)
		}
		return ip4, nil
	case TypeAAAA:
		ip16 := rr.AAAA.To16()
		if ip16 == nil {
			return nil, fmt.Errorf("%w: bad AAAA address %v", ErrMalformed, rr.AAAA)
		}
		return ip16, nil
	case TypeCNAME, TypeNS:
		return appendName(nil, rr.Target)
	case TypeMX:
		body := binary.BigEndian.AppendUint16(nil, rr.MX.Preference)
		return appendName(body, rr.MX.Host)
	case TypeSOA:
		body, err := appendName(nil, rr.SOA.MName)
		if err != nil {
			return nil, err
		}
		body, err = appendName(body, rr.SOA.RName)
		if err != nil {
			return nil, err
		}
		body = binary.BigEndian.AppendUint32(body, rr.SOA.Serial)
		body = binary.BigEndian.AppendUint32(body, rr.SOA.Refresh)
		body = binary.BigEndian.AppendUint32(body, rr.SOA.Retry)
		body = binary.BigEndian.AppendUint32(body, rr.SOA.Expire)
		body = binary.BigEndian.AppendUint32(body, rr.SOA.Minimum)
		return body, nil
	case TypeTXT:
		var body []byte
		for _, s := range rr.TXT {
			if len(s) > 255 {
				return nil, fmt.Errorf("%w: TXT string too long", ErrMalformed)
			}
			body = append(body, byte(len(s)))
			body = append(body, s...)
		}
		return body, nil
	default:
		return rr.Raw, nil
	}
}

// EDNS option codes.
const optClientSubnet = 8

func (e *EDNS) record() (Record, error) {
	udp := e.UDPSize
	if udp == 0 {
		udp = 4096
	}
	var raw []byte
	if cs := e.ClientSubnet; cs != nil {
		addrBytes, err := cs.addressBytes()
		if err != nil {
			return Record{}, err
		}
		opt := binary.BigEndian.AppendUint16(nil, optClientSubnet)
		opt = binary.BigEndian.AppendUint16(opt, uint16(4+len(addrBytes)))
		opt = binary.BigEndian.AppendUint16(opt, cs.Family)
		opt = append(opt, cs.SourcePrefix, cs.ScopePrefix)
		opt = append(opt, addrBytes...)
		raw = opt
	}
	return Record{
		Name:  "",
		Type:  TypeOPT,
		Class: Class(udp), // OPT overloads class as UDP payload size
		Raw:   raw,
	}, nil
}

func (cs *ClientSubnet) addressBytes() ([]byte, error) {
	n := (int(cs.SourcePrefix) + 7) / 8
	var full net.IP
	switch cs.Family {
	case 1:
		full = cs.Address.To4()
	case 2:
		full = cs.Address.To16()
	default:
		return nil, fmt.Errorf("%w: ECS family %d", ErrMalformed, cs.Family)
	}
	if full == nil || n > len(full) {
		return nil, fmt.Errorf("%w: ECS address/prefix", ErrMalformed)
	}
	return full[:n], nil
}

// Unpack decodes a wire-format message, following compression pointers.
func Unpack(data []byte) (*Message, error) {
	d := &decoder{data: data}
	m := &Message{}
	if len(data) < 12 {
		return nil, fmt.Errorf("%w: short header", ErrMalformed)
	}
	m.ID = binary.BigEndian.Uint16(data[0:2])
	flags := binary.BigEndian.Uint16(data[2:4])
	m.Response = flags&(1<<15) != 0
	m.Opcode = uint8(flags >> 11 & 0xf)
	m.Authoritative = flags&(1<<10) != 0
	m.Truncated = flags&(1<<9) != 0
	m.RecursionDesired = flags&(1<<8) != 0
	m.RecursionAvailable = flags&(1<<7) != 0
	m.RCode = RCode(flags & 0xf)
	qd := int(binary.BigEndian.Uint16(data[4:6]))
	an := int(binary.BigEndian.Uint16(data[6:8]))
	ns := int(binary.BigEndian.Uint16(data[8:10]))
	ar := int(binary.BigEndian.Uint16(data[10:12]))
	d.off = 12

	for i := 0; i < qd; i++ {
		name, err := d.readName()
		if err != nil {
			return nil, err
		}
		t, c, err := d.readUint16Pair()
		if err != nil {
			return nil, err
		}
		m.Questions = append(m.Questions, Question{Name: name, Type: Type(t), Class: Class(c)})
	}
	var err error
	if m.Answers, err = d.readRecords(an); err != nil {
		return nil, err
	}
	if m.Authorities, err = d.readRecords(ns); err != nil {
		return nil, err
	}
	adds, err := d.readRecords(ar)
	if err != nil {
		return nil, err
	}
	for _, rr := range adds {
		if rr.Type == TypeOPT {
			e := &EDNS{UDPSize: uint16(rr.Class)}
			if cs, err := parseClientSubnet(rr.Raw); err == nil && cs != nil {
				e.ClientSubnet = cs
			}
			m.EDNS = e
			continue
		}
		m.Additionals = append(m.Additionals, rr)
	}
	return m, nil
}

func parseClientSubnet(raw []byte) (*ClientSubnet, error) {
	for len(raw) >= 4 {
		code := binary.BigEndian.Uint16(raw[0:2])
		olen := int(binary.BigEndian.Uint16(raw[2:4]))
		raw = raw[4:]
		if olen > len(raw) {
			return nil, ErrMalformed
		}
		opt := raw[:olen]
		raw = raw[olen:]
		if code != optClientSubnet {
			continue
		}
		if len(opt) < 4 {
			return nil, ErrMalformed
		}
		cs := &ClientSubnet{
			Family:       binary.BigEndian.Uint16(opt[0:2]),
			SourcePrefix: opt[2],
			ScopePrefix:  opt[3],
		}
		addr := opt[4:]
		switch cs.Family {
		case 1:
			ip := make(net.IP, 4)
			copy(ip, addr)
			cs.Address = ip
		case 2:
			ip := make(net.IP, 16)
			copy(ip, addr)
			cs.Address = ip
		default:
			return nil, ErrMalformed
		}
		return cs, nil
	}
	return nil, nil
}

type decoder struct {
	data []byte
	off  int
}

func (d *decoder) readUint16Pair() (uint16, uint16, error) {
	if d.off+4 > len(d.data) {
		return 0, 0, fmt.Errorf("%w: truncated", ErrMalformed)
	}
	a := binary.BigEndian.Uint16(d.data[d.off:])
	b := binary.BigEndian.Uint16(d.data[d.off+2:])
	d.off += 4
	return a, b, nil
}

// readName reads a possibly-compressed name starting at the cursor.
func (d *decoder) readName() (string, error) {
	name, next, err := readNameAt(d.data, d.off, 0)
	if err != nil {
		return "", err
	}
	d.off = next
	return name, nil
}

// readNameAt reads a name at off; next is the offset after the name's
// in-place representation (pointers do not move it past the pointer).
func readNameAt(data []byte, off, depth int) (name string, next int, err error) {
	if depth > 16 {
		return "", 0, fmt.Errorf("%w: compression loop", ErrMalformed)
	}
	var sb strings.Builder
	next = -1
	for {
		if off >= len(data) {
			return "", 0, fmt.Errorf("%w: name runs past end", ErrMalformed)
		}
		l := int(data[off])
		switch {
		case l == 0:
			if next < 0 {
				next = off + 1
			}
			return strings.TrimSuffix(sb.String(), "."), next, nil
		case l&0xc0 == 0xc0:
			if off+1 >= len(data) {
				return "", 0, fmt.Errorf("%w: truncated pointer", ErrMalformed)
			}
			ptr := int(data[off]&0x3f)<<8 | int(data[off+1])
			if next < 0 {
				next = off + 2
			}
			rest, _, err := readNameAt(data, ptr, depth+1)
			if err != nil {
				return "", 0, err
			}
			if rest != "" {
				sb.WriteString(rest)
				sb.WriteByte('.')
			}
			return strings.TrimSuffix(sb.String(), "."), next, nil
		case l&0xc0 != 0:
			return "", 0, fmt.Errorf("%w: reserved label type", ErrMalformed)
		default:
			if off+1+l > len(data) {
				return "", 0, fmt.Errorf("%w: truncated label", ErrMalformed)
			}
			sb.Write(data[off+1 : off+1+l])
			sb.WriteByte('.')
			off += 1 + l
		}
	}
}

func (d *decoder) readRecords(n int) ([]Record, error) {
	var out []Record
	for i := 0; i < n; i++ {
		rr, err := d.readRecord()
		if err != nil {
			return nil, err
		}
		out = append(out, rr)
	}
	return out, nil
}

func (d *decoder) readRecord() (Record, error) {
	var rr Record
	name, err := d.readName()
	if err != nil {
		return rr, err
	}
	rr.Name = name
	t, c, err := d.readUint16Pair()
	if err != nil {
		return rr, err
	}
	rr.Type, rr.Class = Type(t), Class(c)
	if d.off+6 > len(d.data) {
		return rr, fmt.Errorf("%w: truncated record", ErrMalformed)
	}
	rr.TTL = binary.BigEndian.Uint32(d.data[d.off:])
	rdlen := int(binary.BigEndian.Uint16(d.data[d.off+4:]))
	d.off += 6
	if d.off+rdlen > len(d.data) {
		return rr, fmt.Errorf("%w: truncated rdata", ErrMalformed)
	}
	body := d.data[d.off : d.off+rdlen]
	bodyStart := d.off
	d.off += rdlen

	switch rr.Type {
	case TypeA:
		if rdlen != 4 {
			return rr, fmt.Errorf("%w: A rdlen %d", ErrMalformed, rdlen)
		}
		rr.A = net.IP(append([]byte(nil), body...))
	case TypeAAAA:
		if rdlen != 16 {
			return rr, fmt.Errorf("%w: AAAA rdlen %d", ErrMalformed, rdlen)
		}
		rr.AAAA = net.IP(append([]byte(nil), body...))
	case TypeCNAME, TypeNS:
		target, _, err := readNameAt(d.data, bodyStart, 0)
		if err != nil {
			return rr, err
		}
		rr.Target = target
	case TypeMX:
		if rdlen < 3 {
			return rr, fmt.Errorf("%w: MX rdlen %d", ErrMalformed, rdlen)
		}
		rr.MX.Preference = binary.BigEndian.Uint16(body)
		host, _, err := readNameAt(d.data, bodyStart+2, 0)
		if err != nil {
			return rr, err
		}
		rr.MX.Host = host
	case TypeSOA:
		mname, next, err := readNameAt(d.data, bodyStart, 0)
		if err != nil {
			return rr, err
		}
		rname, next, err := readNameAt(d.data, next, 0)
		if err != nil {
			return rr, err
		}
		if next+20 > len(d.data) {
			return rr, fmt.Errorf("%w: truncated SOA", ErrMalformed)
		}
		rr.SOA = SOAData{
			MName:   mname,
			RName:   rname,
			Serial:  binary.BigEndian.Uint32(d.data[next:]),
			Refresh: binary.BigEndian.Uint32(d.data[next+4:]),
			Retry:   binary.BigEndian.Uint32(d.data[next+8:]),
			Expire:  binary.BigEndian.Uint32(d.data[next+12:]),
			Minimum: binary.BigEndian.Uint32(d.data[next+16:]),
		}
	case TypeTXT:
		for len(body) > 0 {
			l := int(body[0])
			if 1+l > len(body) {
				return rr, fmt.Errorf("%w: truncated TXT", ErrMalformed)
			}
			rr.TXT = append(rr.TXT, string(body[1:1+l]))
			body = body[1+l:]
		}
	default:
		rr.Raw = append([]byte(nil), body...)
	}
	return rr, nil
}
