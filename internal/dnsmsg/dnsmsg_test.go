package dnsmsg

import (
	"bytes"
	"encoding/binary"
	"net"
	"reflect"
	"testing"
)

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	wire, err := m.Pack()
	if err != nil {
		t.Fatalf("Pack: %v", err)
	}
	got, err := Unpack(wire)
	if err != nil {
		t.Fatalf("Unpack: %v", err)
	}
	return got
}

func TestQueryRoundTrip(t *testing.T) {
	q := NewQuery(0x1234, "www.example.com", TypeA)
	got := roundTrip(t, q)
	if got.ID != 0x1234 || got.Response || !got.RecursionDesired {
		t.Fatalf("header: %+v", got)
	}
	if len(got.Questions) != 1 {
		t.Fatalf("questions: %d", len(got.Questions))
	}
	if got.Questions[0].Name != "www.example.com" || got.Questions[0].Type != TypeA || got.Questions[0].Class != ClassIN {
		t.Fatalf("question: %+v", got.Questions[0])
	}
}

func TestResponseWithAllRecordTypes(t *testing.T) {
	q := NewQuery(7, "svc.example.org", TypeA)
	r := q.Reply()
	r.Authoritative = true
	r.Answers = []Record{
		{Name: "svc.example.org", Type: TypeCNAME, Class: ClassIN, TTL: 300, Target: "real.example.org"},
		{Name: "real.example.org", Type: TypeA, Class: ClassIN, TTL: 300, A: net.IPv4(192, 0, 2, 55)},
		{Name: "real.example.org", Type: TypeAAAA, Class: ClassIN, TTL: 300, AAAA: net.ParseIP("2001:db8::7")},
		{Name: "example.org", Type: TypeMX, Class: ClassIN, TTL: 600, MX: MXData{Preference: 10, Host: "mail.example.org"}},
		{Name: "example.org", Type: TypeTXT, Class: ClassIN, TTL: 600, TXT: []string{"v=spf1 -all", "second"}},
	}
	r.Authorities = []Record{
		{Name: "example.org", Type: TypeNS, Class: ClassIN, TTL: 3600, Target: "ns1.example.org"},
		{Name: "example.org", Type: TypeSOA, Class: ClassIN, TTL: 3600, SOA: SOAData{
			MName: "ns1.example.org", RName: "hostmaster.example.org",
			Serial: 2018043001, Refresh: 7200, Retry: 900, Expire: 1209600, Minimum: 300,
		}},
	}
	got := roundTrip(t, r)
	if !got.Response || !got.Authoritative {
		t.Fatal("flags lost")
	}
	if len(got.Answers) != 5 || len(got.Authorities) != 2 {
		t.Fatalf("sections: %d/%d", len(got.Answers), len(got.Authorities))
	}
	if got.Answers[0].Target != "real.example.org" {
		t.Errorf("CNAME = %q", got.Answers[0].Target)
	}
	if !got.Answers[1].A.Equal(net.IPv4(192, 0, 2, 55)) {
		t.Errorf("A = %v", got.Answers[1].A)
	}
	if !got.Answers[2].AAAA.Equal(net.ParseIP("2001:db8::7")) {
		t.Errorf("AAAA = %v", got.Answers[2].AAAA)
	}
	if got.Answers[3].MX.Preference != 10 || got.Answers[3].MX.Host != "mail.example.org" {
		t.Errorf("MX = %+v", got.Answers[3].MX)
	}
	if !reflect.DeepEqual(got.Answers[4].TXT, []string{"v=spf1 -all", "second"}) {
		t.Errorf("TXT = %v", got.Answers[4].TXT)
	}
	soa := got.Authorities[1].SOA
	if soa.Serial != 2018043001 || soa.RName != "hostmaster.example.org" || soa.Minimum != 300 {
		t.Errorf("SOA = %+v", soa)
	}
}

func TestNXDomainFlags(t *testing.T) {
	q := NewQuery(9, "nope.example.net", TypeAAAA)
	r := q.Reply()
	r.RCode = RCodeNXDomain
	got := roundTrip(t, r)
	if got.RCode != RCodeNXDomain {
		t.Fatalf("rcode = %v", got.RCode)
	}
	if got.RCode.String() != "NXDOMAIN" {
		t.Fatalf("rcode name = %q", got.RCode.String())
	}
}

func TestEDNSClientSubnetRoundTrip(t *testing.T) {
	q := NewQuery(11, "probe.example.com", TypeA)
	q.EDNS = &EDNS{
		UDPSize: 4096,
		ClientSubnet: &ClientSubnet{
			Family:       1,
			SourcePrefix: 24,
			Address:      net.IPv4(203, 0, 113, 0),
		},
	}
	got := roundTrip(t, q)
	if got.EDNS == nil {
		t.Fatal("EDNS lost")
	}
	if got.EDNS.UDPSize != 4096 {
		t.Fatalf("UDP size = %d", got.EDNS.UDPSize)
	}
	cs := got.EDNS.ClientSubnet
	if cs == nil {
		t.Fatal("client subnet lost")
	}
	if cs.Family != 1 || cs.SourcePrefix != 24 {
		t.Fatalf("ECS = %+v", cs)
	}
	if !cs.Address.Equal(net.IPv4(203, 0, 113, 0)) {
		t.Fatalf("ECS addr = %v", cs.Address)
	}
	if cs.String() != "203.0.113.0/24" {
		t.Fatalf("ECS string = %q", cs.String())
	}
}

func TestEDNSClientSubnetIPv6(t *testing.T) {
	q := NewQuery(12, "probe.example.com", TypeAAAA)
	q.EDNS = &EDNS{ClientSubnet: &ClientSubnet{
		Family:       2,
		SourcePrefix: 64,
		Address:      net.ParseIP("2001:db8:aa:bb::"),
	}}
	got := roundTrip(t, q)
	cs := got.EDNS.ClientSubnet
	if cs == nil || cs.Family != 2 || cs.SourcePrefix != 64 {
		t.Fatalf("ECS = %+v", cs)
	}
	if !cs.Address.Equal(net.ParseIP("2001:db8:aa:bb::")) {
		t.Fatalf("addr = %v", cs.Address)
	}
	// A /56 prefix transmits only 7 address bytes; the 8th byte is masked.
	q2 := NewQuery(14, "probe.example.com", TypeAAAA)
	q2.EDNS = &EDNS{ClientSubnet: &ClientSubnet{
		Family: 2, SourcePrefix: 56, Address: net.ParseIP("2001:db8:aa:bb::"),
	}}
	got2 := roundTrip(t, q2)
	if !got2.EDNS.ClientSubnet.Address.Equal(net.ParseIP("2001:db8:aa::")) {
		t.Fatalf("/56 masking: %v", got2.EDNS.ClientSubnet.Address)
	}
}

func TestEDNSWithoutSubnet(t *testing.T) {
	q := NewQuery(13, "x.example.com", TypeA)
	q.EDNS = &EDNS{UDPSize: 1232}
	got := roundTrip(t, q)
	if got.EDNS == nil || got.EDNS.UDPSize != 1232 || got.EDNS.ClientSubnet != nil {
		t.Fatalf("EDNS = %+v", got.EDNS)
	}
}

func TestCompressionPointerDecode(t *testing.T) {
	// Hand-build a response with a compression pointer: answer name points
	// at the question name.
	var buf []byte
	buf = binary.BigEndian.AppendUint16(buf, 0xabcd) // ID
	buf = binary.BigEndian.AppendUint16(buf, 0x8180) // response, RD, RA
	buf = binary.BigEndian.AppendUint16(buf, 1)      // qd
	buf = binary.BigEndian.AppendUint16(buf, 1)      // an
	buf = binary.BigEndian.AppendUint16(buf, 0)      // ns
	buf = binary.BigEndian.AppendUint16(buf, 0)      // ar
	// question: www.example.com A IN, name starts at offset 12
	for _, l := range []string{"www", "example", "com"} {
		buf = append(buf, byte(len(l)))
		buf = append(buf, l...)
	}
	buf = append(buf, 0)
	buf = binary.BigEndian.AppendUint16(buf, uint16(TypeA))
	buf = binary.BigEndian.AppendUint16(buf, uint16(ClassIN))
	// answer: pointer to offset 12
	buf = append(buf, 0xc0, 12)
	buf = binary.BigEndian.AppendUint16(buf, uint16(TypeA))
	buf = binary.BigEndian.AppendUint16(buf, uint16(ClassIN))
	buf = binary.BigEndian.AppendUint32(buf, 60)
	buf = binary.BigEndian.AppendUint16(buf, 4)
	buf = append(buf, 198, 51, 100, 9)

	m, err := Unpack(buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Answers[0].Name != "www.example.com" {
		t.Fatalf("decompressed name = %q", m.Answers[0].Name)
	}
	if !m.Answers[0].A.Equal(net.IPv4(198, 51, 100, 9)) {
		t.Fatalf("A = %v", m.Answers[0].A)
	}
}

func TestCompressionLoopRejected(t *testing.T) {
	var buf []byte
	buf = binary.BigEndian.AppendUint16(buf, 1)
	buf = binary.BigEndian.AppendUint16(buf, 0)
	buf = binary.BigEndian.AppendUint16(buf, 1)
	buf = binary.BigEndian.AppendUint16(buf, 0)
	buf = binary.BigEndian.AppendUint16(buf, 0)
	buf = binary.BigEndian.AppendUint16(buf, 0)
	// Self-referencing pointer at offset 12.
	buf = append(buf, 0xc0, 12)
	buf = binary.BigEndian.AppendUint16(buf, uint16(TypeA))
	buf = binary.BigEndian.AppendUint16(buf, uint16(ClassIN))
	if _, err := Unpack(buf); err == nil {
		t.Fatal("compression loop accepted")
	}
}

func TestUnpackRejectsTruncation(t *testing.T) {
	q := NewQuery(5, "trunc.example.com", TypeA)
	q.Answers = []Record{{Name: "trunc.example.com", Type: TypeA, Class: ClassIN, TTL: 1, A: net.IPv4(1, 2, 3, 4)}}
	wire, err := q.Pack()
	if err != nil {
		t.Fatal(err)
	}
	for cut := 1; cut < len(wire); cut += 3 {
		if _, err := Unpack(wire[:cut]); err == nil {
			t.Fatalf("accepted truncation at %d", cut)
		}
	}
}

func TestPackRejectsBadNames(t *testing.T) {
	q := NewQuery(1, "bad..name", TypeA)
	if _, err := q.Pack(); err == nil {
		t.Fatal("empty label accepted")
	}
	q = NewQuery(1, string(bytes.Repeat([]byte("a"), 70))+".com", TypeA)
	if _, err := q.Pack(); err == nil {
		t.Fatal("oversized label accepted")
	}
}

func TestReplyEchoesQuestion(t *testing.T) {
	q := NewQuery(42, "echo.example.com", TypeMX)
	r := q.Reply()
	if !r.Response || r.ID != 42 {
		t.Fatal("reply header")
	}
	if len(r.Questions) != 1 || r.Questions[0].Name != "echo.example.com" {
		t.Fatal("reply question")
	}
}

func TestTypeStrings(t *testing.T) {
	if TypeA.String() != "A" || TypeAAAA.String() != "AAAA" || TypeSOA.String() != "SOA" ||
		TypeMX.String() != "MX" || TypeNS.String() != "NS" || TypeCNAME.String() != "CNAME" ||
		TypeTXT.String() != "TXT" || TypeOPT.String() != "OPT" {
		t.Fatal("type names")
	}
	if Type(999).String() != "TYPE999" {
		t.Fatal("unknown type name")
	}
}

func TestRootNameEncodes(t *testing.T) {
	m := &Message{ID: 1, Questions: []Question{{Name: "", Type: TypeNS, Class: ClassIN}}}
	got := roundTrip(t, m)
	if got.Questions[0].Name != "" {
		t.Fatalf("root name = %q", got.Questions[0].Name)
	}
}

func BenchmarkPackUnpack(b *testing.B) {
	q := NewQuery(1, "bench.example.com", TypeA)
	r := q.Reply()
	r.Answers = []Record{
		{Name: "bench.example.com", Type: TypeA, Class: ClassIN, TTL: 60, A: net.IPv4(192, 0, 2, 1)},
		{Name: "bench.example.com", Type: TypeAAAA, Class: ClassIN, TTL: 60, AAAA: net.ParseIP("2001:db8::1")},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire, err := r.Pack()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := Unpack(wire); err != nil {
			b.Fatal(err)
		}
	}
}
