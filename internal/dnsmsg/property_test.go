package dnsmsg

import (
	"math/rand"
	"net"
	"testing"
)

// Property: random well-formed messages survive Pack → Unpack with all
// sections, flags and record bodies intact.
func TestPropertyMessageRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	randName := func() string {
		labels := rng.Intn(3) + 2
		out := ""
		for i := 0; i < labels; i++ {
			if i > 0 {
				out += "."
			}
			n := rng.Intn(10) + 1
			for j := 0; j < n; j++ {
				out += string(rune('a' + rng.Intn(26)))
			}
		}
		return out
	}
	randRecord := func(name string) Record {
		switch rng.Intn(5) {
		case 0:
			return Record{Name: name, Type: TypeA, Class: ClassIN, TTL: rng.Uint32() % 86400,
				A: net.IPv4(byte(rng.Intn(223)+1), byte(rng.Intn(256)), byte(rng.Intn(256)), byte(rng.Intn(256)))}
		case 1:
			ip := make(net.IP, 16)
			rng.Read(ip)
			return Record{Name: name, Type: TypeAAAA, Class: ClassIN, TTL: 60, AAAA: ip}
		case 2:
			return Record{Name: name, Type: TypeCNAME, Class: ClassIN, TTL: 60, Target: randName()}
		case 3:
			return Record{Name: name, Type: TypeMX, Class: ClassIN, TTL: 60,
				MX: MXData{Preference: uint16(rng.Intn(100)), Host: randName()}}
		default:
			return Record{Name: name, Type: TypeTXT, Class: ClassIN, TTL: 60,
				TXT: []string{randName(), randName()}}
		}
	}

	for iter := 0; iter < 400; iter++ {
		m := NewQuery(uint16(rng.Intn(1<<16)), randName(), TypeA)
		reply := m.Reply()
		reply.Authoritative = rng.Intn(2) == 0
		reply.RCode = RCode(rng.Intn(6))
		nAns := rng.Intn(4)
		for i := 0; i < nAns; i++ {
			reply.Answers = append(reply.Answers, randRecord(reply.Questions[0].Name))
		}
		wire, err := reply.Pack()
		if err != nil {
			t.Fatalf("Pack: %v", err)
		}
		got, err := Unpack(wire)
		if err != nil {
			t.Fatalf("Unpack: %v", err)
		}
		if got.ID != reply.ID || got.RCode != reply.RCode || got.Authoritative != reply.Authoritative {
			t.Fatalf("header mismatch: %+v vs %+v", got, reply)
		}
		if len(got.Answers) != len(reply.Answers) {
			t.Fatalf("answers %d vs %d", len(got.Answers), len(reply.Answers))
		}
		for i, a := range got.Answers {
			w := reply.Answers[i]
			if a.Type != w.Type || a.Name != w.Name || a.TTL != w.TTL {
				t.Fatalf("answer %d header mismatch", i)
			}
			switch a.Type {
			case TypeA:
				if !a.A.Equal(w.A) {
					t.Fatalf("A mismatch: %v vs %v", a.A, w.A)
				}
			case TypeAAAA:
				if !a.AAAA.Equal(w.AAAA) {
					t.Fatalf("AAAA mismatch")
				}
			case TypeCNAME:
				if a.Target != w.Target {
					t.Fatalf("CNAME mismatch")
				}
			case TypeMX:
				if a.MX != w.MX {
					t.Fatalf("MX mismatch")
				}
			case TypeTXT:
				if len(a.TXT) != len(w.TXT) || a.TXT[0] != w.TXT[0] {
					t.Fatalf("TXT mismatch")
				}
			}
		}
	}
}

// Property: Unpack never panics on arbitrary mutations of valid packets.
func TestPropertyUnpackRobustToMutation(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	base := NewQuery(1, "fuzz.example.com", TypeA)
	base.Answers = []Record{{Name: "fuzz.example.com", Type: TypeA, Class: ClassIN, TTL: 1, A: net.IPv4(1, 2, 3, 4)}}
	wire, err := base.Pack()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3000; i++ {
		mutated := append([]byte(nil), wire...)
		for j := 0; j < 1+rng.Intn(4); j++ {
			mutated[rng.Intn(len(mutated))] = byte(rng.Intn(256))
		}
		// Must not panic; errors are fine.
		_, _ = Unpack(mutated)
	}
}
