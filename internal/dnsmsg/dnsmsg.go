// Package dnsmsg implements the DNS wire format (RFC 1035) for the subset
// of the protocol the paper's experiments need: queries and responses with
// A, AAAA, CNAME, MX, NS, SOA and TXT records, name decompression, and the
// EDNS0 OPT pseudo-record with the Client Subnet option (RFC 7871) whose
// presence in queries to the honeypot's authoritative server reveals the
// networks behind Google Public DNS (Section 6.2).
package dnsmsg

import (
	"errors"
	"fmt"
	"net"
)

// Type is a DNS RR type.
type Type uint16

// Record types used by the experiments.
const (
	TypeA     Type = 1
	TypeNS    Type = 2
	TypeCNAME Type = 5
	TypeSOA   Type = 6
	TypeMX    Type = 15
	TypeTXT   Type = 16
	TypeAAAA  Type = 28
	TypeOPT   Type = 41
)

// String names the type.
func (t Type) String() string {
	switch t {
	case TypeA:
		return "A"
	case TypeNS:
		return "NS"
	case TypeCNAME:
		return "CNAME"
	case TypeSOA:
		return "SOA"
	case TypeMX:
		return "MX"
	case TypeTXT:
		return "TXT"
	case TypeAAAA:
		return "AAAA"
	case TypeOPT:
		return "OPT"
	default:
		return fmt.Sprintf("TYPE%d", uint16(t))
	}
}

// Class is a DNS class; only IN is used.
type Class uint16

// ClassIN is the Internet class.
const ClassIN Class = 1

// RCode is a response code.
type RCode uint8

// Response codes.
const (
	RCodeSuccess  RCode = 0 // NOERROR
	RCodeFormErr  RCode = 1
	RCodeServFail RCode = 2
	RCodeNXDomain RCode = 3
	RCodeNotImpl  RCode = 4
	RCodeRefused  RCode = 5
)

// String names the rcode.
func (r RCode) String() string {
	switch r {
	case RCodeSuccess:
		return "NOERROR"
	case RCodeFormErr:
		return "FORMERR"
	case RCodeServFail:
		return "SERVFAIL"
	case RCodeNXDomain:
		return "NXDOMAIN"
	case RCodeNotImpl:
		return "NOTIMPL"
	case RCodeRefused:
		return "REFUSED"
	default:
		return fmt.Sprintf("RCODE%d", uint8(r))
	}
}

// Errors returned by the codec.
var (
	ErrMalformed   = errors.New("dnsmsg: malformed message")
	ErrNameTooLong = errors.New("dnsmsg: name too long")
)

// Question is a DNS question.
type Question struct {
	Name  string
	Type  Type
	Class Class
}

// Record is a resource record with a decoded body.
type Record struct {
	Name  string
	Type  Type
	Class Class
	TTL   uint32

	// Exactly one of the following is meaningful, per Type.
	A      net.IP   // TypeA (4 bytes)
	AAAA   net.IP   // TypeAAAA (16 bytes)
	Target string   // TypeCNAME, TypeNS target name
	MX     MXData   // TypeMX
	SOA    SOAData  // TypeSOA
	TXT    []string // TypeTXT
	Raw    []byte   // unrecognized types (stored verbatim)
}

// MXData is the body of an MX record.
type MXData struct {
	Preference uint16
	Host       string
}

// SOAData is the body of a SOA record.
type SOAData struct {
	MName   string
	RName   string
	Serial  uint32
	Refresh uint32
	Retry   uint32
	Expire  uint32
	Minimum uint32
}

// ClientSubnet is the RFC 7871 EDNS Client Subnet option: the network of
// the stub resolver or client on whose behalf a recursive resolver asks.
type ClientSubnet struct {
	Family       uint16 // 1 = IPv4, 2 = IPv6
	SourcePrefix uint8
	ScopePrefix  uint8
	Address      net.IP
}

// String renders the subnet as addr/prefix.
func (cs ClientSubnet) String() string {
	return fmt.Sprintf("%s/%d", cs.Address, cs.SourcePrefix)
}

// Message is a DNS message.
type Message struct {
	ID                 uint16
	Response           bool
	Opcode             uint8
	Authoritative      bool
	Truncated          bool
	RecursionDesired   bool
	RecursionAvailable bool
	RCode              RCode

	Questions   []Question
	Answers     []Record
	Authorities []Record
	Additionals []Record

	// EDNS carries the OPT pseudo-record state when present.
	EDNS *EDNS
}

// EDNS is the decoded OPT pseudo-record.
type EDNS struct {
	UDPSize      uint16
	ClientSubnet *ClientSubnet
}

// NewQuery builds a standard recursive query for (name, type).
func NewQuery(id uint16, name string, qtype Type) *Message {
	return &Message{
		ID:               id,
		RecursionDesired: true,
		Questions:        []Question{{Name: name, Type: qtype, Class: ClassIN}},
	}
}

// Reply builds a response skeleton for a query, echoing ID and question.
func (m *Message) Reply() *Message {
	r := &Message{
		ID:                 m.ID,
		Response:           true,
		Opcode:             m.Opcode,
		RecursionDesired:   m.RecursionDesired,
		RecursionAvailable: false,
		Questions:          append([]Question(nil), m.Questions...),
	}
	return r
}
