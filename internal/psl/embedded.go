package psl

// embeddedList is a snapshot subset of the Public Suffix List covering
// every suffix the paper's analyses reference (Sections 4 and 5), the
// high-volume gTLDs/ccTLDs the synthetic Internet population uses, and
// representative wildcard/exception rules so the full matching semantics
// stay exercised. The substitution (subset instead of the ~9k-rule full
// list) is documented in DESIGN.md; the matcher accepts any full list.
const embeddedList = `
// ---- generic TLDs ----
com
net
org
edu
gov
mil
int
info
biz
name
mobi

// ---- new gTLDs referenced by the paper ----
tech
email
cloud
design
money
live
bid
review
site
online
xyz
top
club
shop
app
dev
page

// ---- ccTLDs ----
de
uk
co.uk
org.uk
gov.uk
ac.uk
au
com.au
net.au
org.au
gov.au
edu.au
us
fr
nl
it
es
se
no
fi
dk
pl
ru
ch
at
be
cz
hu
gr
pt
ro
br
com.br
net.br
ar
com.ar
mx
com.mx
jp
co.jp
ne.jp
or.jp
cn
com.cn
net.cn
in
co.in
kr
co.kr
tw
com.tw
hk
com.hk
sg
com.sg
my
com.my
id
co.id
th
co.th
vn
com.vn
tr
com.tr
za
co.za
nz
co.nz
ca
am
co.am
io
co
me
tv
cc
ws
la
sh
ac

// ---- free ccTLDs prominent in Table 3 phishing ----
ga
tk
ml
cf
gq

// ---- wildcard and exception rules (semantics coverage) ----
*.ck
!www.ck
*.bd
*.er
kobe.jp
*.kobe.jp
!city.kobe.jp

// ---- private-domain style rules ----
github.io
herokuapp.com
cloudfront.net
blogspot.com
appspot.com
`
