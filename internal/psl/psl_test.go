package psl

import (
	"errors"
	"reflect"
	"testing"
)

func TestPublicSuffixBasics(t *testing.T) {
	l := Default()
	cases := map[string]string{
		"example.com":           "com",
		"www.example.com":       "com",
		"example.co.uk":         "co.uk",
		"www.example.co.uk":     "co.uk",
		"example.gov.au":        "gov.au",
		"foo.bar.example.de":    "de",
		"example.github.io":     "github.io",
		"a.blogspot.com":        "blogspot.com",
		"example.tk":            "tk",
		"accounts.google.co.am": "co.am",
	}
	for name, want := range cases {
		if got := l.PublicSuffix(name); got != want {
			t.Errorf("PublicSuffix(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestPublicSuffixImplicitRule(t *testing.T) {
	l := Default()
	// "zz" is not in the list: the implicit * rule makes the last label
	// the suffix.
	if got := l.PublicSuffix("example.zz"); got != "zz" {
		t.Fatalf("implicit rule: %q", got)
	}
}

func TestWildcardRules(t *testing.T) {
	l := Default()
	// *.ck: any z.ck is a public suffix.
	if got := l.PublicSuffix("example.foo.ck"); got != "foo.ck" {
		t.Fatalf("wildcard: %q", got)
	}
	// !www.ck exception: www.ck is NOT a public suffix; suffix is ck.
	if got := l.PublicSuffix("www.ck"); got != "ck" {
		t.Fatalf("exception: %q", got)
	}
	if got := l.PublicSuffix("foo.www.ck"); got != "ck" {
		t.Fatalf("exception subdomain: %q", got)
	}
}

func TestKobeJPSemantics(t *testing.T) {
	l := Default()
	// kobe.jp itself is a rule, *.kobe.jp makes sub-suffixes, and
	// !city.kobe.jp is carved back out.
	if got := l.PublicSuffix("x.foo.kobe.jp"); got != "foo.kobe.jp" {
		t.Fatalf("*.kobe.jp: %q", got)
	}
	if got := l.PublicSuffix("x.city.kobe.jp"); got != "kobe.jp" {
		t.Fatalf("!city.kobe.jp: %q", got)
	}
}

func TestRegistrableDomain(t *testing.T) {
	l := Default()
	cases := map[string]string{
		"www.example.com":         "example.com",
		"example.com":             "example.com",
		"a.b.c.example.co.uk":     "example.co.uk",
		"mail.example.de":         "example.de",
		"appleid.apple.com":       "apple.com",
		"deep.sub.example.gov.au": "example.gov.au",
	}
	for name, want := range cases {
		got, err := l.RegistrableDomain(name)
		if err != nil {
			t.Errorf("RegistrableDomain(%q): %v", name, err)
			continue
		}
		if got != want {
			t.Errorf("RegistrableDomain(%q) = %q, want %q", name, got, want)
		}
	}
}

func TestRegistrableDomainOfSuffixFails(t *testing.T) {
	l := Default()
	for _, name := range []string{"com", "co.uk", "gov.au", ""} {
		if _, err := l.RegistrableDomain(name); !errors.Is(err, ErrNoSuffix) {
			t.Errorf("RegistrableDomain(%q) err = %v, want ErrNoSuffix", name, err)
		}
	}
}

func TestSplit(t *testing.T) {
	l := Default()
	sub, reg, suffix, err := l.Split("dev.api.example.co.uk")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sub, []string{"dev", "api"}) {
		t.Errorf("sub = %v", sub)
	}
	if reg != "example.co.uk" || suffix != "co.uk" {
		t.Errorf("reg=%q suffix=%q", reg, suffix)
	}

	sub, reg, _, err = l.Split("example.com")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 0 || reg != "example.com" {
		t.Errorf("bare domain: sub=%v reg=%q", sub, reg)
	}
}

func TestSplitCaseAndDot(t *testing.T) {
	l := Default()
	sub, reg, _, err := l.Split("WWW.Example.COM.")
	if err != nil {
		t.Fatal(err)
	}
	if len(sub) != 1 || sub[0] != "www" || reg != "example.com" {
		t.Fatalf("normalized split: %v %q", sub, reg)
	}
}

func TestParseIgnoresCommentsAndBlank(t *testing.T) {
	l, err := Parse("// a comment\n\ncom\n  \n// more\nco.uk trailing-junk\n")
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 {
		t.Fatalf("rules = %d, want 2", l.Len())
	}
	if got := l.PublicSuffix("x.co.uk"); got != "co.uk" {
		t.Fatalf("suffix = %q", got)
	}
}

func TestLongestMatchWins(t *testing.T) {
	l := MustParse("com\nexample.com\n")
	if got := l.PublicSuffix("www.example.com"); got != "example.com" {
		t.Fatalf("longest match: %q", got)
	}
}

func TestDefaultListCoversTable3Suffixes(t *testing.T) {
	// Table 3 phishing domains use these suffixes; the analyses depend on
	// them being known to the PSL.
	l := Default()
	for _, s := range []string{"com", "ga", "info", "tk", "ml", "gq", "money", "live", "bid", "review", "co.am", "cf"} {
		if got := l.PublicSuffix("victim-domain." + s); got != s {
			t.Errorf("suffix %q not recognized (got %q)", s, got)
		}
	}
}

func BenchmarkRegistrableDomain(b *testing.B) {
	l := Default()
	names := []string{
		"www.example.com", "a.b.c.example.co.uk", "mail.example.de",
		"x.foo.kobe.jp", "deep.sub.example.gov.au",
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := l.RegistrableDomain(names[i%len(names)]); err != nil {
			b.Fatal(err)
		}
	}
}
