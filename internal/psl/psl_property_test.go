package psl

import (
	"math/rand"
	"strings"
	"testing"

	"ctrise/internal/dnsname"
)

// Property: for any name with a registrable domain, (1) the registrable
// domain is suffix plus exactly one label, (2) the name ends with its
// registrable domain, and (3) Split recomposes the original name.
func TestPropertySplitInvariants(t *testing.T) {
	l := Default()
	rng := rand.New(rand.NewSource(99))
	suffixes := []string{"com", "co.uk", "de", "gov.au", "tk", "github.io", "kobe.jp", "foo.ck"}
	for i := 0; i < 2000; i++ {
		depth := rng.Intn(4)
		labels := make([]string, depth+1)
		for j := range labels {
			labels[j] = dnsname.RandomLabel(rng, 1+rng.Intn(8))
		}
		name := strings.Join(labels, ".") + "." + suffixes[rng.Intn(len(suffixes))]

		reg, err := l.RegistrableDomain(name)
		if err != nil {
			// Wildcard rules (*.kobe.jp, *.ck) can absorb the generated
			// labels into the suffix, leaving no registrable domain —
			// correct PSL behaviour, nothing to check further.
			continue
		}
		suffix := l.PublicSuffix(name)
		if !strings.HasSuffix(name, reg) {
			t.Fatalf("%q does not end with its registrable domain %q", name, reg)
		}
		if !strings.HasSuffix(reg, "."+suffix) {
			t.Fatalf("registrable %q does not end with suffix %q", reg, suffix)
		}
		if got := strings.Count(strings.TrimSuffix(reg, "."+suffix), "."); got != 0 {
			t.Fatalf("registrable %q has %d extra dots above suffix %q", reg, got, suffix)
		}
		sub, reg2, suffix2, err := l.Split(name)
		if err != nil || reg2 != reg || suffix2 != suffix {
			t.Fatalf("Split(%q) = %v/%q/%q/%v", name, sub, reg2, suffix2, err)
		}
		recomposed := reg
		if len(sub) > 0 {
			recomposed = strings.Join(sub, ".") + "." + reg
		}
		if recomposed != name {
			t.Fatalf("recomposed %q != %q", recomposed, name)
		}
	}
}

// Property: PublicSuffix is idempotent — the suffix of a suffix is itself.
func TestPropertySuffixIdempotent(t *testing.T) {
	l := Default()
	for _, name := range []string{
		"www.example.com", "a.b.c.d.co.uk", "x.kobe.jp", "q.foo.ck",
		"www.ck", "a.blogspot.com",
	} {
		s := l.PublicSuffix(name)
		if got := l.PublicSuffix(s); got != s {
			t.Fatalf("PublicSuffix(%q) = %q, but PublicSuffix(%q) = %q", name, s, s, got)
		}
	}
}
