// Package psl implements Public Suffix List parsing and matching with the
// full publicsuffix.org semantics: plain rules, wildcard rules (*.kobe.jp)
// and exception rules (!city.kobe.jp). The paper uses the PSL to define
// "base domains" (registrable domains): the domain directly under a
// public suffix. All subdomain-label statistics in Sections 4 and 5 are
// computed relative to this split.
package psl

import (
	"bufio"
	"errors"
	"strings"

	"ctrise/internal/dnsname"
)

// ErrNoSuffix is returned when a name has no registrable domain (it is
// itself a public suffix, or empty).
var ErrNoSuffix = errors.New("psl: name has no registrable domain")

// List is a parsed Public Suffix List.
type List struct {
	// rules maps the rule name (without "*." or "!") to its kind.
	rules map[string]ruleKind
}

type ruleKind uint8

const (
	ruleNormal ruleKind = 1 << iota
	ruleWildcard
	ruleException
)

// Parse reads PSL rules from text: one rule per line, comments starting
// with "//", blank lines ignored.
func Parse(text string) (*List, error) {
	l := &List{rules: make(map[string]ruleKind)}
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "//") {
			continue
		}
		// The PSL format terminates rules at the first whitespace.
		if i := strings.IndexAny(line, " \t"); i >= 0 {
			line = line[:i]
		}
		switch {
		case strings.HasPrefix(line, "!"):
			l.rules[dnsname.Normalize(line[1:])] |= ruleException
		case strings.HasPrefix(line, "*."):
			l.rules[dnsname.Normalize(line[2:])] |= ruleWildcard
		default:
			l.rules[dnsname.Normalize(line)] |= ruleNormal
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return l, nil
}

// MustParse parses or panics; for embedded lists.
func MustParse(text string) *List {
	l, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return l
}

// Default returns the embedded snapshot list.
func Default() *List { return defaultList }

var defaultList = MustParse(embeddedList)

// Len returns the number of parsed rules.
func (l *List) Len() int { return len(l.rules) }

// PublicSuffix returns the public suffix of a normalized name following
// the publicsuffix.org algorithm:
//
//  1. An exception rule !x.y matches x.y and yields suffix y.
//  2. A wildcard rule *.y matches any z.y and yields suffix z.y.
//  3. A normal rule y yields suffix y.
//  4. If no rule matches, the suffix is the last label (the implicit "*"
//     rule).
//
// Among matching rules the longest match wins (exceptions beat all).
func (l *List) PublicSuffix(name string) string {
	name = dnsname.Normalize(name)
	if name == "" {
		return ""
	}
	labels := strings.Split(name, ".")
	// Walk suffixes from longest to shortest; the first hit is the longest
	// match.
	for i := 0; i < len(labels); i++ {
		candidate := strings.Join(labels[i:], ".")
		kind, ok := l.rules[candidate]
		if !ok {
			continue
		}
		if kind&ruleException != 0 {
			// Exception: public suffix is the candidate minus its first label.
			return strings.Join(labels[i+1:], ".")
		}
		if kind&ruleWildcard != 0 && i > 0 {
			// Wildcard *.candidate: the label before candidate joins the suffix.
			return strings.Join(labels[i-1:], ".")
		}
		if kind&ruleNormal != 0 {
			return candidate
		}
	}
	// Implicit "*" rule.
	return labels[len(labels)-1]
}

// RegistrableDomain returns the "base domain": public suffix plus one
// label. It fails if the name equals (or is shorter than) its suffix.
func (l *List) RegistrableDomain(name string) (string, error) {
	name = dnsname.Normalize(name)
	suffix := l.PublicSuffix(name)
	if name == suffix || suffix == "" {
		return "", ErrNoSuffix
	}
	rest := strings.TrimSuffix(name, "."+suffix)
	labels := strings.Split(rest, ".")
	return labels[len(labels)-1] + "." + suffix, nil
}

// Split decomposes a name into (subdomainLabels, registrableDomain,
// publicSuffix). subdomainLabels are the labels in front of the
// registrable domain, leftmost first; empty for bare registrable domains.
func (l *List) Split(name string) (sub []string, regDomain, suffix string, err error) {
	name = dnsname.Normalize(name)
	regDomain, err = l.RegistrableDomain(name)
	if err != nil {
		return nil, "", "", err
	}
	suffix = l.PublicSuffix(name)
	if name != regDomain {
		subPart := strings.TrimSuffix(name, "."+regDomain)
		sub = strings.Split(subPart, ".")
	}
	return sub, regDomain, suffix, nil
}
