package subenum

import (
	"fmt"
	"math/rand"
	"net"
	"testing"

	"ctrise/internal/dnssim"
	"ctrise/internal/psl"
)

func corpusFromNames(names ...string) map[string]struct{} {
	m := make(map[string]struct{}, len(names))
	for _, n := range names {
		m[n] = struct{}{}
	}
	return m
}

func TestCensusCountsLabels(t *testing.T) {
	corpus := corpusFromNames(
		"www.alpha.de", "mail.alpha.de", "alpha.de",
		"www.beta.de", "www.gamma.co.uk",
		"dev.api.gamma.co.uk", // two labels
		"*.delta.de",          // wildcard stripped -> counts nothing (bare domain)
		"not_a_valid..name",   // rejected
		"singlelabel",         // rejected
	)
	c := RunCensus(corpus, psl.Default())
	if c.Labels.Get("www") != 3 {
		t.Fatalf("www = %d", c.Labels.Get("www"))
	}
	if c.Labels.Get("mail") != 1 || c.Labels.Get("dev") != 1 || c.Labels.Get("api") != 1 {
		t.Fatal("label counts")
	}
	if c.Rejected != 2 {
		t.Fatalf("rejected = %d", c.Rejected)
	}
	if c.ValidFQDNs != 7 {
		t.Fatalf("valid = %d", c.ValidFQDNs)
	}
	top := c.Table2(1)
	if top[0].Key != "www" {
		t.Fatalf("top label = %q", top[0].Key)
	}
}

func TestCensusPerSuffix(t *testing.T) {
	corpus := corpusFromNames(
		"git.one.tech", "git.two.tech", "www.one.tech",
		"api.one.cloud", "api.two.cloud",
	)
	c := RunCensus(corpus, psl.Default())
	tops := c.TopLabelPerSuffix(2)
	if tops["tech"] != "git" {
		t.Fatalf("tech top = %q", tops["tech"])
	}
	if tops["cloud"] != "api" {
		t.Fatalf("cloud top = %q", tops["cloud"])
	}
	// A suffix below minCount is absent.
	if _, ok := tops["de"]; ok {
		t.Fatal("de should be absent")
	}
}

func TestWordlistCoverage(t *testing.T) {
	corpus := corpusFromNames("www.a.de", "mail.a.de", "obscure-xyz.a.de")
	c := RunCensus(corpus, psl.Default())
	wordlist := []string{"www", "mail", "ftp", "intranet", "backup"}
	if got := c.WordlistCoverage(wordlist); got != 2 {
		t.Fatalf("coverage = %d", got)
	}
}

func TestConstructStrategy(t *testing.T) {
	// Corpus: "mail" frequent in .de and .nl; "rare" label below threshold.
	corpus := make(map[string]struct{})
	for i := 0; i < 10; i++ {
		corpus[fmt.Sprintf("mail.dom%d.de", i)] = struct{}{}
	}
	for i := 0; i < 5; i++ {
		corpus[fmt.Sprintf("mail.dom%d.nl", i)] = struct{}{}
	}
	corpus["rare.x.de"] = struct{}{}
	for i := 0; i < 20; i++ {
		corpus[fmt.Sprintf("mail.gen%d.com", i)] = struct{}{} // .com is skipped
	}
	c := RunCensus(corpus, psl.Default())

	domains := map[string][]string{
		"de":  {"known1.de", "known2.de"},
		"nl":  {"known3.nl"},
		"com": {"known4.com"},
	}
	cands := Construct(c, domains, ConstructConfig{MinLabelCount: 5})
	// mail×(known1.de, known2.de, known3.nl) = 3; "rare" below threshold;
	// .com skipped.
	if len(cands) != 3 {
		t.Fatalf("candidates = %d: %+v", len(cands), cands)
	}
	seen := map[string]bool{}
	for _, cd := range cands {
		if cd.Label != "mail" {
			t.Fatalf("label = %q", cd.Label)
		}
		seen[cd.FQDN] = true
	}
	if !seen["mail.known1.de"] || !seen["mail.known3.nl"] {
		t.Fatalf("candidates = %v", seen)
	}
}

func TestConstructTopSuffixesBound(t *testing.T) {
	corpus := make(map[string]struct{})
	suffixes := []string{"de", "nl", "fr", "it", "es"}
	for i, sfx := range suffixes {
		for j := 0; j <= i*3+5; j++ {
			corpus[fmt.Sprintf("api.d%d.%s", j, sfx)] = struct{}{}
		}
	}
	c := RunCensus(corpus, psl.Default())
	domains := map[string][]string{}
	for _, sfx := range suffixes {
		domains[sfx] = []string{"k." + sfx}
	}
	cands := Construct(c, domains, ConstructConfig{MinLabelCount: 1, TopSuffixes: 2})
	if len(cands) != 2 {
		t.Fatalf("candidates = %d, want 2 (top-2 suffixes only)", len(cands))
	}
}

type allRoutes struct{}

func (allRoutes) InRoutingTable(net.IP) bool { return true }

type noRoutes struct{}

func (noRoutes) InRoutingTable(net.IP) bool { return false }

func buildVerifyUniverse(t *testing.T) *dnssim.Universe {
	t.Helper()
	u := dnssim.NewUniverse()
	// real.de: has mail, no www beyond base.
	z1 := dnssim.NewZone("real.de")
	z1.AddA("real.de", net.IPv4(192, 0, 2, 1))
	z1.AddA("mail.real.de", net.IPv4(192, 0, 2, 2))
	u.AddZone(z1)
	// parked.tk: default-A zone (wildcard-like), answers anything.
	z2 := dnssim.NewZone("parked.tk")
	z2.DefaultA = net.IPv4(198, 51, 100, 9)
	u.AddZone(z2)
	// chain.nl: mail is a CNAME chain to an A.
	z3 := dnssim.NewZone("chain.nl")
	z3.AddCNAME("mail.chain.nl", "mx.chain.nl")
	z3.AddA("mx.chain.nl", net.IPv4(192, 0, 2, 3))
	u.AddZone(z3)
	// empty.fr: exists but has no mail record.
	z4 := dnssim.NewZone("empty.fr")
	z4.AddA("empty.fr", net.IPv4(192, 0, 2, 4))
	u.AddZone(z4)
	return u
}

func TestVerifyFunnel(t *testing.T) {
	u := buildVerifyUniverse(t)
	cands := []Candidate{
		{FQDN: "mail.real.de", Label: "mail", Domain: "real.de"},
		{FQDN: "mail.parked.tk", Label: "mail", Domain: "parked.tk"},
		{FQDN: "mail.chain.nl", Label: "mail", Domain: "chain.nl"},
		{FQDN: "mail.empty.fr", Label: "mail", Domain: "empty.fr"},
	}
	res := Verify(cands, u, allRoutes{}, VerifyConfig{Seed: 1})
	if res.Constructed != 4 {
		t.Fatalf("constructed = %d", res.Constructed)
	}
	// Answers: real.de, parked.tk (default A), chain.nl. empty.fr: no.
	if res.TestAnswers != 3 {
		t.Fatalf("test answers = %d", res.TestAnswers)
	}
	// Controls: only parked.tk answers random names.
	if res.ControlAnswers != 1 {
		t.Fatalf("control answers = %d", res.ControlAnswers)
	}
	// New FQDNs: real.de and chain.nl survive; parked.tk filtered by
	// control.
	if len(res.NewFQDNs) != 2 {
		t.Fatalf("new = %v", res.NewFQDNs)
	}
	if res.NewFQDNs[0] != "mail.chain.nl" || res.NewFQDNs[1] != "mail.real.de" {
		t.Fatalf("new = %v", res.NewFQDNs)
	}
}

func TestVerifyRoutingTableFilter(t *testing.T) {
	u := buildVerifyUniverse(t)
	cands := []Candidate{{FQDN: "mail.real.de", Label: "mail", Domain: "real.de"}}
	res := Verify(cands, u, noRoutes{}, VerifyConfig{Seed: 2})
	if res.TestAnswers != 0 || len(res.NewFQDNs) != 0 {
		t.Fatalf("unrouted answers accepted: %+v", res)
	}
	if res.UnroutedDiscarded == 0 {
		t.Fatal("no unrouted discard recorded")
	}
}

func TestVerifyCNAMELimit(t *testing.T) {
	u := dnssim.NewUniverse()
	z := dnssim.NewZone("deep.de")
	for i := 0; i < 12; i++ {
		z.AddCNAME(fmt.Sprintf("c%d.deep.de", i), fmt.Sprintf("c%d.deep.de", i+1))
	}
	z.AddA("c12.deep.de", net.IPv4(192, 0, 2, 5))
	u.AddZone(z)
	// 12 hops exceeds the 10-hop limit.
	cands := []Candidate{{FQDN: "c0.deep.de", Label: "c0", Domain: "deep.de"}}
	res := Verify(cands, u, allRoutes{}, VerifyConfig{Seed: 3})
	if res.TestAnswers != 0 {
		t.Fatal("over-long CNAME chain accepted")
	}
	// 8 hops is fine.
	cands = []Candidate{{FQDN: "c4.deep.de", Label: "c4", Domain: "deep.de"}}
	res = Verify(cands, u, allRoutes{}, VerifyConfig{Seed: 4})
	if res.TestAnswers != 1 {
		t.Fatal("legal CNAME chain rejected")
	}
}

func TestCompareSonar(t *testing.T) {
	sonar := SonarDB{"mail.a.de": {}, "www.b.de": {}}
	known, unknown := CompareSonar([]string{"mail.a.de", "mail.c.de", "mail.d.de"}, sonar)
	if known != 1 || unknown != 2 {
		t.Fatalf("known=%d unknown=%d", known, unknown)
	}
}

func TestOverlapStats(t *testing.T) {
	corpus := corpusFromNames("www.a.de", "mail.a.de", "www.b.de", "api.c.de")
	c := RunCensus(corpus, psl.Default())
	sonar := SonarDB{
		"www.a.de":  {},
		"smtp.b.de": {},
		"ftp.qq.de": {},
	}
	domOverlap, labOverlap := OverlapStats(c, sonar, psl.Default())
	// Corpus domains: a.de, b.de, c.de; Sonar has a.de, b.de, qq.de -> 2/3.
	if domOverlap < 66 || domOverlap > 67 {
		t.Fatalf("domain overlap = %.1f", domOverlap)
	}
	// Corpus labels: www, mail, api; Sonar labels: www, smtp, ftp -> 1/3.
	if labOverlap < 33 || labOverlap > 34 {
		t.Fatalf("label overlap = %.1f", labOverlap)
	}
}

func TestVerifyDeterministicUnderConcurrency(t *testing.T) {
	u := buildVerifyUniverse(t)
	rng := rand.New(rand.NewSource(5))
	var cands []Candidate
	for i := 0; i < 500; i++ {
		dom := []string{"real.de", "parked.tk", "chain.nl", "empty.fr"}[rng.Intn(4)]
		cands = append(cands, Candidate{FQDN: fmt.Sprintf("x%d.%s", i, dom), Label: "x", Domain: dom})
	}
	run := func() uint64 {
		return Verify(cands, u, allRoutes{}, VerifyConfig{Seed: 6}).TestAnswers
	}
	if run() != run() {
		t.Fatal("verification not deterministic")
	}
}
