package subenum

import (
	"math/rand"
	"net"
	"sort"
	"sync"

	"ctrise/internal/dnsmsg"
	"ctrise/internal/dnsname"
	"ctrise/internal/dnssim"
	"ctrise/internal/stats"
)

// ConstructConfig parameterizes the Section 4.3 construction strategy.
type ConstructConfig struct {
	// MinLabelCount filters out labels occurring fewer times in the whole
	// corpus (the paper uses 100k at full scale).
	MinLabelCount uint64
	// TopSuffixes bounds, per label, the number of public suffixes
	// considered (the paper uses the top 10).
	TopSuffixes int
	// SkipSuffixes are excluded as "too generic" (the paper skips .com,
	// .net, .org).
	SkipSuffixes map[string]bool
}

func (c *ConstructConfig) setDefaults() {
	if c.TopSuffixes <= 0 {
		c.TopSuffixes = 10
	}
	if c.SkipSuffixes == nil {
		c.SkipSuffixes = map[string]bool{"com": true, "net": true, "org": true}
	}
}

// Candidate is one constructed FQDN to verify.
type Candidate struct {
	FQDN   string
	Label  string
	Domain string
}

// Construct builds the candidate FQDN list: for each frequent label, take
// the top suffixes it occurs in, and prepend the label to every known
// registrable domain under those suffixes. domainsBySuffix is the
// domain list (Section 4.1's 206M-entry list, scaled), keyed by suffix.
func Construct(census *Census, domainsBySuffix map[string][]string, cfg ConstructConfig) []Candidate {
	cfg.setDefaults()
	var out []Candidate
	// Deterministic label order: by count descending.
	for _, kv := range census.Labels.TopK(census.Labels.Len()) {
		label := kv.Key
		if kv.Count < cfg.MinLabelCount {
			break // TopK is sorted; everything after is smaller
		}
		// Rank suffixes by this label's occurrence count.
		type sc struct {
			suffix string
			count  uint64
		}
		var ranked []sc
		for suffix, counter := range census.LabelsBySuffix {
			if cfg.SkipSuffixes[suffix] {
				continue
			}
			if n := counter.Get(label); n > 0 {
				ranked = append(ranked, sc{suffix, n})
			}
		}
		sort.Slice(ranked, func(i, j int) bool {
			if ranked[i].count != ranked[j].count {
				return ranked[i].count > ranked[j].count
			}
			return ranked[i].suffix < ranked[j].suffix
		})
		if len(ranked) > cfg.TopSuffixes {
			ranked = ranked[:cfg.TopSuffixes]
		}
		for _, r := range ranked {
			for _, domain := range domainsBySuffix[r.suffix] {
				out = append(out, Candidate{
					FQDN:   dnsname.Prepend(label, domain),
					Label:  label,
					Domain: domain,
				})
			}
		}
	}
	return out
}

// RouteChecker filters out answers pointing at unrouted space (the
// paper's border-router routing-table check). *asn.Registry satisfies it.
type RouteChecker interface {
	InRoutingTable(ip net.IP) bool
}

// VerifyConfig parameterizes verification.
type VerifyConfig struct {
	// Seed drives control-name generation.
	Seed int64
	// MaxCNAME bounds CNAME chasing (the paper follows up to 10).
	MaxCNAME int
	// ControlLabelLen is the pseudorandom control label length (16 in the
	// paper).
	ControlLabelLen int
}

func (c *VerifyConfig) setDefaults() {
	if c.MaxCNAME <= 0 {
		c.MaxCNAME = 10
	}
	if c.ControlLabelLen <= 0 {
		c.ControlLabelLen = 16
	}
}

// VerifyResult is the Section 4.3 funnel.
type VerifyResult struct {
	// Constructed is the number of candidate FQDNs tested (210.7M in the
	// paper).
	Constructed uint64
	// TestAnswers counts candidates whose A lookup succeeded (80.3M).
	TestAnswers uint64
	// ControlAnswers counts pseudorandom controls that succeeded (61.5M),
	// identifying default-answer zones.
	ControlAnswers uint64
	// UnroutedDiscarded counts answers dropped by the routing-table check.
	UnroutedDiscarded uint64
	// NewFQDNs are candidates that resolved while their control did not
	// (18.8M): genuinely existing, previously unknown names.
	NewFQDNs []string
}

// Verify resolves every candidate and its pseudorandom control through
// the resolver, massdns-style (concurrent), following CNAME chains and
// discarding unrouted answers. universe must support chain resolution.
func Verify(candidates []Candidate, universe *dnssim.Universe, routes RouteChecker, cfg VerifyConfig) *VerifyResult {
	cfg.setDefaults()
	res := &VerifyResult{Constructed: uint64(len(candidates))}

	// Control names are per (domain) — one pseudorandom label per domain
	// suffices to detect default-answer zones; compute them first.
	controlFor := make(map[string]string)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, c := range candidates {
		if _, ok := controlFor[c.Domain]; !ok {
			controlFor[c.Domain] = dnsname.RandomLabel(rng, cfg.ControlLabelLen)
		}
	}
	controlResolves := make(map[string]bool, len(controlFor))
	type domCtl struct{ domain, label string }
	var ctls []domCtl
	for d, l := range controlFor {
		ctls = append(ctls, domCtl{d, l})
	}
	sort.Slice(ctls, func(i, j int) bool { return ctls[i].domain < ctls[j].domain })
	var mu sync.Mutex
	parallelForEach(ctls, func(dc domCtl) {
		ok, _ := resolves(universe, dnsname.Prepend(dc.label, dc.domain), routes, cfg.MaxCNAME)
		mu.Lock()
		controlResolves[dc.domain] = ok
		mu.Unlock()
	})

	var newNames []string
	var testAnswers, controlAnswers, unrouted uint64
	parallelForEach(candidates, func(c Candidate) {
		ok, dropped := resolves(universe, c.FQDN, routes, cfg.MaxCNAME)
		mu.Lock()
		defer mu.Unlock()
		if dropped {
			unrouted++
		}
		if controlResolves[c.Domain] {
			controlAnswers++
		}
		if !ok {
			return
		}
		testAnswers++
		if !controlResolves[c.Domain] {
			newNames = append(newNames, c.FQDN)
		}
	})
	sort.Strings(newNames)
	res.TestAnswers = testAnswers
	res.ControlAnswers = controlAnswers
	res.UnroutedDiscarded = unrouted
	res.NewFQDNs = newNames
	return res
}

// resolves performs one massdns-style lookup: A record, CNAME chase,
// routing-table filter. dropped reports an answer discarded as unrouted.
func resolves(u *dnssim.Universe, fqdn string, routes RouteChecker, maxCNAME int) (ok, dropped bool) {
	r, _ := u.ResolveChain(fqdn, dnsmsg.TypeA, maxCNAME)
	if r.RCode != dnsmsg.RCodeSuccess || len(r.Records) == 0 {
		return false, false
	}
	for _, rr := range r.Records {
		if rr.Type == dnsmsg.TypeA && rr.A != nil {
			if routes == nil || routes.InRoutingTable(rr.A) {
				return true, false
			}
			dropped = true
		}
	}
	return false, dropped
}

// SonarDB is a forward-DNS database snapshot (Section 4.1's Rapid7 Sonar
// stand-in): a set of FQDNs.
type SonarDB map[string]struct{}

// Contains reports membership.
func (s SonarDB) Contains(fqdn string) bool {
	_, ok := s[fqdn]
	return ok
}

// CompareSonar splits newly found FQDNs into those already known to Sonar
// and those genuinely new (17.7M of 18.8M in the paper).
func CompareSonar(newFQDNs []string, sonar SonarDB) (known, unknown uint64) {
	for _, n := range newFQDNs {
		if sonar.Contains(n) {
			known++
		} else {
			unknown++
		}
	}
	return known, unknown
}

// OverlapStats reports the corpus/Sonar overlap measures of Section 4.1:
// the fraction of corpus registrable domains present in Sonar and the
// fraction of corpus subdomain labels appearing as Sonar labels.
func OverlapStats(census *Census, sonar SonarDB, list interface {
	Split(string) ([]string, string, string, error)
}) (domainOverlap, labelOverlap float64) {
	sonarDomains := make(map[string]bool)
	sonarLabels := make(map[string]bool)
	for fqdn := range sonar {
		sub, reg, _, err := list.Split(fqdn)
		if err != nil {
			continue
		}
		sonarDomains[reg] = true
		for _, l := range sub {
			sonarLabels[l] = true
		}
	}
	var domTotal, domHit uint64
	for _, domains := range census.DomainsBySuffix {
		for _, d := range domains {
			domTotal++
			if sonarDomains[d] {
				domHit++
			}
		}
	}
	var labTotal, labHit uint64
	for _, kv := range census.Labels.TopK(census.Labels.Len()) {
		labTotal++
		if sonarLabels[kv.Key] {
			labHit++
		}
	}
	return stats.Percent(domHit, domTotal), stats.Percent(labHit, labTotal)
}
