package subenum

import (
	"math/rand"
	"net"
	"runtime"
	"sort"

	"ctrise/internal/dnsmsg"
	"ctrise/internal/dnsname"
	"ctrise/internal/dnssim"
	"ctrise/internal/stats"
)

// ConstructConfig parameterizes the Section 4.3 construction strategy.
type ConstructConfig struct {
	// MinLabelCount filters out labels occurring fewer times in the whole
	// corpus (the paper uses 100k at full scale).
	MinLabelCount uint64
	// TopSuffixes bounds, per label, the number of public suffixes
	// considered (the paper uses the top 10).
	TopSuffixes int
	// SkipSuffixes are excluded as "too generic" (the paper skips .com,
	// .net, .org).
	SkipSuffixes map[string]bool
	// Parallelism bounds the label-level fan-out (0 means GOMAXPROCS,
	// 1 runs inline). The candidate list is identical at any setting.
	Parallelism int
}

func (c *ConstructConfig) setDefaults() {
	if c.TopSuffixes <= 0 {
		c.TopSuffixes = 10
	}
	if c.SkipSuffixes == nil {
		c.SkipSuffixes = map[string]bool{"com": true, "net": true, "org": true}
	}
	if c.Parallelism <= 0 {
		c.Parallelism = runtime.GOMAXPROCS(0)
	}
}

// Candidate is one constructed FQDN to verify.
type Candidate struct {
	FQDN   string
	Label  string
	Domain string
}

// Construct builds the candidate FQDN list: for each frequent label, take
// the top suffixes it occurs in, and prepend the label to every known
// registrable domain under those suffixes. domainsBySuffix is the
// domain list (Section 4.1's 206M-entry list, scaled), keyed by suffix.
func Construct(census *Census, domainsBySuffix map[string][]string, cfg ConstructConfig) []Candidate {
	cfg.setDefaults()
	// Deterministic label order: by count descending.
	var labels []string
	for _, kv := range census.Labels.TopK(census.Labels.Len()) {
		if kv.Count < cfg.MinLabelCount {
			break // TopK is sorted; everything after is smaller
		}
		labels = append(labels, kv.Key)
	}
	// Each label's candidate block is independent, so the blocks are
	// built in parallel and concatenated in label order — the same list
	// a sequential loop produces.
	perLabel := make([][]Candidate, len(labels))
	parallelForEach(seq(len(labels)), cfg.Parallelism, func(i int) {
		perLabel[i] = constructLabel(census, domainsBySuffix, cfg, labels[i])
	})
	var total int
	for _, block := range perLabel {
		total += len(block)
	}
	out := make([]Candidate, 0, total)
	for _, block := range perLabel {
		out = append(out, block...)
	}
	return out
}

// constructLabel builds one label's candidate block: rank the suffixes
// the label occurs under, take the top ones, and prepend the label to
// every known registrable domain there.
func constructLabel(census *Census, domainsBySuffix map[string][]string, cfg ConstructConfig, label string) []Candidate {
	type sc struct {
		suffix string
		count  uint64
	}
	var ranked []sc
	for suffix, counter := range census.LabelsBySuffix {
		if cfg.SkipSuffixes[suffix] {
			continue
		}
		if n := counter.Get(label); n > 0 {
			ranked = append(ranked, sc{suffix, n})
		}
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].count != ranked[j].count {
			return ranked[i].count > ranked[j].count
		}
		return ranked[i].suffix < ranked[j].suffix
	})
	if len(ranked) > cfg.TopSuffixes {
		ranked = ranked[:cfg.TopSuffixes]
	}
	var out []Candidate
	for _, r := range ranked {
		for _, domain := range domainsBySuffix[r.suffix] {
			out = append(out, Candidate{
				FQDN:   dnsname.Prepend(label, domain),
				Label:  label,
				Domain: domain,
			})
		}
	}
	return out
}

// RouteChecker filters out answers pointing at unrouted space (the
// paper's border-router routing-table check). *asn.Registry satisfies it.
type RouteChecker interface {
	InRoutingTable(ip net.IP) bool
}

// VerifyConfig parameterizes verification.
type VerifyConfig struct {
	// Seed drives control-name generation.
	Seed int64
	// MaxCNAME bounds CNAME chasing (the paper follows up to 10).
	MaxCNAME int
	// ControlLabelLen is the pseudorandom control label length (16 in the
	// paper).
	ControlLabelLen int
	// Parallelism is the resolver fan-out (the massdns-style concurrency,
	// 16 by default; 1 runs inline). The funnel is identical at any
	// setting.
	Parallelism int
}

func (c *VerifyConfig) setDefaults() {
	if c.MaxCNAME <= 0 {
		c.MaxCNAME = 10
	}
	if c.ControlLabelLen <= 0 {
		c.ControlLabelLen = 16
	}
	if c.Parallelism <= 0 {
		c.Parallelism = concurrency
	}
}

// VerifyResult is the Section 4.3 funnel.
type VerifyResult struct {
	// Constructed is the number of candidate FQDNs tested (210.7M in the
	// paper).
	Constructed uint64
	// TestAnswers counts candidates whose A lookup succeeded (80.3M).
	TestAnswers uint64
	// ControlAnswers counts pseudorandom controls that succeeded (61.5M),
	// identifying default-answer zones.
	ControlAnswers uint64
	// UnroutedDiscarded counts answers dropped by the routing-table check.
	UnroutedDiscarded uint64
	// NewFQDNs are candidates that resolved while their control did not
	// (18.8M): genuinely existing, previously unknown names.
	NewFQDNs []string
}

// Verify resolves every candidate and its pseudorandom control through
// the resolver, massdns-style (concurrent), following CNAME chains and
// discarding unrouted answers. universe must support chain resolution.
func Verify(candidates []Candidate, universe *dnssim.Universe, routes RouteChecker, cfg VerifyConfig) *VerifyResult {
	cfg.setDefaults()
	res := &VerifyResult{Constructed: uint64(len(candidates))}

	// Control names are per (domain) — one pseudorandom label per domain
	// suffices to detect default-answer zones; compute them first.
	controlFor := make(map[string]string)
	rng := rand.New(rand.NewSource(cfg.Seed))
	for _, c := range candidates {
		if _, ok := controlFor[c.Domain]; !ok {
			controlFor[c.Domain] = dnsname.RandomLabel(rng, cfg.ControlLabelLen)
		}
	}
	type domCtl struct{ domain, label string }
	ctls := make([]domCtl, 0, len(controlFor))
	for d, l := range controlFor {
		ctls = append(ctls, domCtl{d, l})
	}
	sort.Slice(ctls, func(i, j int) bool { return ctls[i].domain < ctls[j].domain })
	// Index-aligned results: each worker writes its own slots, no lock.
	ctlOK := make([]bool, len(ctls))
	parallelForEach(seq(len(ctls)), cfg.Parallelism, func(i int) {
		ctlOK[i], _ = resolves(universe, dnsname.Prepend(ctls[i].label, ctls[i].domain), routes, cfg.MaxCNAME)
	})
	controlResolves := make(map[string]bool, len(ctls))
	for i, dc := range ctls {
		controlResolves[dc.domain] = ctlOK[i]
	}

	// Candidate phase: contiguous chunks, one private partial per chunk,
	// merged after the barrier — no shared lock on the resolution path.
	type verifyPartial struct {
		testAnswers, controlAnswers, unrouted uint64
		newNames                              []string
	}
	workers := cfg.Parallelism
	if workers > len(candidates) {
		workers = len(candidates)
	}
	if workers < 1 {
		workers = 1
	}
	chunk := (len(candidates) + workers - 1) / workers
	nChunks := 0
	if len(candidates) > 0 {
		nChunks = (len(candidates) + chunk - 1) / chunk
	}
	parts := make([]verifyPartial, nChunks)
	parallelForEach(seq(nChunks), workers, func(ci int) {
		lo, hi := ci*chunk, (ci+1)*chunk
		if hi > len(candidates) {
			hi = len(candidates)
		}
		p := &parts[ci]
		for _, c := range candidates[lo:hi] {
			ok, dropped := resolves(universe, c.FQDN, routes, cfg.MaxCNAME)
			if dropped {
				p.unrouted++
			}
			ctl := controlResolves[c.Domain]
			if ctl {
				p.controlAnswers++
			}
			if !ok {
				continue
			}
			p.testAnswers++
			if !ctl {
				p.newNames = append(p.newNames, c.FQDN)
			}
		}
	})
	var newNames []string
	for i := range parts {
		res.TestAnswers += parts[i].testAnswers
		res.ControlAnswers += parts[i].controlAnswers
		res.UnroutedDiscarded += parts[i].unrouted
		newNames = append(newNames, parts[i].newNames...)
	}
	sort.Strings(newNames)
	res.NewFQDNs = newNames
	return res
}

// seq returns [0, 1, ..., n-1], the index slice the parallel loops
// iterate over.
func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// resolves performs one massdns-style lookup: A record, CNAME chase,
// routing-table filter. dropped reports an answer discarded as unrouted.
func resolves(u *dnssim.Universe, fqdn string, routes RouteChecker, maxCNAME int) (ok, dropped bool) {
	r, _ := u.ResolveChain(fqdn, dnsmsg.TypeA, maxCNAME)
	if r.RCode != dnsmsg.RCodeSuccess || len(r.Records) == 0 {
		return false, false
	}
	for _, rr := range r.Records {
		if rr.Type == dnsmsg.TypeA && rr.A != nil {
			if routes == nil || routes.InRoutingTable(rr.A) {
				return true, false
			}
			dropped = true
		}
	}
	return false, dropped
}

// SonarDB is a forward-DNS database snapshot (Section 4.1's Rapid7 Sonar
// stand-in): a set of FQDNs.
type SonarDB map[string]struct{}

// Contains reports membership.
func (s SonarDB) Contains(fqdn string) bool {
	_, ok := s[fqdn]
	return ok
}

// CompareSonar splits newly found FQDNs into those already known to Sonar
// and those genuinely new (17.7M of 18.8M in the paper).
func CompareSonar(newFQDNs []string, sonar SonarDB) (known, unknown uint64) {
	for _, n := range newFQDNs {
		if sonar.Contains(n) {
			known++
		} else {
			unknown++
		}
	}
	return known, unknown
}

// OverlapStats reports the corpus/Sonar overlap measures of Section 4.1:
// the fraction of corpus registrable domains present in Sonar and the
// fraction of corpus subdomain labels appearing as Sonar labels.
func OverlapStats(census *Census, sonar SonarDB, list interface {
	Split(string) ([]string, string, string, error)
}) (domainOverlap, labelOverlap float64) {
	sonarDomains := make(map[string]bool)
	sonarLabels := make(map[string]bool)
	for fqdn := range sonar {
		sub, reg, _, err := list.Split(fqdn)
		if err != nil {
			continue
		}
		sonarDomains[reg] = true
		for _, l := range sub {
			sonarLabels[l] = true
		}
	}
	var domTotal, domHit uint64
	for _, domains := range census.DomainsBySuffix {
		for _, d := range domains {
			domTotal++
			if sonarDomains[d] {
				domHit++
			}
		}
	}
	var labTotal, labHit uint64
	for _, kv := range census.Labels.TopK(census.Labels.Len()) {
		labTotal++
		if sonarLabels[kv.Key] {
			labHit++
		}
	}
	return stats.Percent(domHit, domTotal), stats.Percent(labHit, labTotal)
}
