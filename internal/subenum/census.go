// Package subenum implements Section 4: the census of subdomain labels
// leaked through CT-logged certificates (Table 2), the per-suffix label
// statistics of Section 4.2, and the full Section 4.3 enumeration
// methodology — strategic FQDN construction from frequent labels,
// massdns-style concurrent verification with pseudorandom control names
// against wildcard zones, CNAME chasing, routing-table filtering, and the
// Sonar comparison.
//
// The census and the candidate construction both fan out over name
// chunks (RunCensusParallel, ConstructConfig.Parallelism); every
// aggregate they produce is additive, so parallel output is identical to
// the sequential path at any worker count.
package subenum

import (
	"runtime"
	"sort"
	"sync"

	"ctrise/internal/dnsname"
	"ctrise/internal/ecosystem"
	"ctrise/internal/psl"
	"ctrise/internal/stats"
)

// Census is the outcome of parsing a CT name corpus.
type Census struct {
	// Labels counts each subdomain label across all suffixes (Table 2).
	Labels *stats.Counter
	// LabelsBySuffix counts labels per public suffix (Section 4.2's
	// "most common subdomain label for each public suffix").
	LabelsBySuffix map[string]*stats.Counter
	// DomainsBySuffix groups the corpus's registrable domains by suffix,
	// sorted per suffix for deterministic output.
	DomainsBySuffix map[string][]string
	// ValidFQDNs is the number of names that survived validation.
	ValidFQDNs uint64
	// Rejected counts names eliminated by FQDN validation (the paper
	// filters invalid names with a validators library).
	Rejected uint64
}

// RunCensus parses a deduplicated CT name corpus with GOMAXPROCS-way
// parallelism: it validates each FQDN, splits it at the registrable
// domain per the PSL, and counts subdomain labels. Wildcard prefixes
// ("*.") are stripped first, as certificate names often carry them.
func RunCensus(names map[string]struct{}, list *psl.List) *Census {
	return RunCensusParallel(names, list, 0)
}

// censusPartial is one worker's private aggregate over a chunk of names.
type censusPartial struct {
	labels         map[string]uint64
	labelsBySuffix map[string]map[string]uint64
	// domains maps registrable domain → suffix; the merge step dedups
	// across workers (two chunks may both see a domain).
	domains    map[string]string
	validFQDNs uint64
	rejected   uint64
}

func newCensusPartial() *censusPartial {
	return &censusPartial{
		labels:         make(map[string]uint64),
		labelsBySuffix: make(map[string]map[string]uint64),
		domains:        make(map[string]string),
	}
}

// observe parses one raw certificate name into the aggregate.
func (p *censusPartial) observe(raw string, list *psl.List) {
	name := dnsname.Normalize(dnsname.TrimWildcard(raw))
	if !dnsname.IsValidFQDN(name) {
		p.rejected++
		return
	}
	sub, regDomain, suffix, err := list.Split(name)
	if err != nil {
		p.rejected++
		return
	}
	p.validFQDNs++
	p.domains[regDomain] = suffix
	for _, label := range sub {
		p.labels[label]++
		sc := p.labelsBySuffix[suffix]
		if sc == nil {
			sc = make(map[string]uint64)
			p.labelsBySuffix[suffix] = sc
		}
		sc[label]++
	}
}

// runCensusChunk parses one chunk of names into a private aggregate.
func runCensusChunk(names []string, list *psl.List) *censusPartial {
	p := newCensusPartial()
	for _, raw := range names {
		p.observe(raw, list)
	}
	return p
}

// RunCensusParallel is RunCensus with an explicit worker bound (0 means
// GOMAXPROCS, 1 runs inline). The corpus is split into chunks, each
// worker builds a private aggregate, and the merge is deterministic:
// counts are additive and per-suffix domain lists are sorted.
func RunCensusParallel(names map[string]struct{}, list *psl.List, parallelism int) *Census {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	all := make([]string, 0, len(names))
	for raw := range names {
		all = append(all, raw)
	}

	var partials []*censusPartial
	if parallelism <= 1 || len(all) < 2*censusMinChunk {
		partials = []*censusPartial{runCensusChunk(all, list)}
	} else {
		chunk := (len(all) + parallelism - 1) / parallelism
		if chunk < censusMinChunk {
			chunk = censusMinChunk
		}
		var wg sync.WaitGroup
		var mu sync.Mutex
		for lo := 0; lo < len(all); lo += chunk {
			hi := lo + chunk
			if hi > len(all) {
				hi = len(all)
			}
			wg.Add(1)
			go func(part []string) {
				defer wg.Done()
				p := runCensusChunk(part, list)
				mu.Lock()
				partials = append(partials, p)
				mu.Unlock()
			}(all[lo:hi])
		}
		wg.Wait()
	}

	return mergeCensusPartials(partials)
}

// RunCensusSet is the census over a sharded name set — the zero-copy
// handoff from the harvest: instead of materializing the corpus into an
// intermediate map[string]struct{}, workers consume the dedup set's
// shards in place (each key lives in exactly one shard, so shards
// partition the corpus). parallelism 0 means GOMAXPROCS; output is
// identical to RunCensusParallel over a snapshot of the same set.
func RunCensusSet(names *stats.StringSet, list *psl.List, parallelism int) *Census {
	shards := names.NumShards()
	partials := make([]*censusPartial, shards)
	ecosystem.ForEach(shards, parallelism, func(i int) {
		p := newCensusPartial()
		names.ForEachShard(i, func(raw string) { p.observe(raw, list) })
		partials[i] = p
	})
	return mergeCensusPartials(partials)
}

// mergeCensusPartials folds worker aggregates into the final census.
// Counts are additive and per-suffix domain lists are sorted, so the
// result is independent of partial order.
func mergeCensusPartials(partials []*censusPartial) *Census {
	c := &Census{
		Labels:          stats.NewCounter(),
		LabelsBySuffix:  make(map[string]*stats.Counter),
		DomainsBySuffix: make(map[string][]string),
	}
	seenDomains := make(map[string]bool)
	for _, p := range partials {
		c.ValidFQDNs += p.validFQDNs
		c.Rejected += p.rejected
		c.Labels.AddMap(p.labels)
		for suffix, counts := range p.labelsBySuffix {
			sc := c.LabelsBySuffix[suffix]
			if sc == nil {
				sc = stats.NewCounter()
				c.LabelsBySuffix[suffix] = sc
			}
			sc.AddMap(counts)
		}
		for regDomain, suffix := range p.domains {
			if !seenDomains[regDomain] {
				seenDomains[regDomain] = true
				c.DomainsBySuffix[suffix] = append(c.DomainsBySuffix[suffix], regDomain)
			}
		}
	}
	for _, domains := range c.DomainsBySuffix {
		sort.Strings(domains)
	}
	return c
}

// censusMinChunk is the smallest chunk worth a goroutine; corpora below
// twice this run inline.
const censusMinChunk = 512

// Table2 returns the top-k subdomain labels.
func (c *Census) Table2(k int) []stats.KV { return c.Labels.TopK(k) }

// TopLabelPerSuffix returns each suffix's most common subdomain label
// (Section 4.2), for suffixes with at least minCount label occurrences.
func (c *Census) TopLabelPerSuffix(minCount uint64) map[string]string {
	out := make(map[string]string)
	for suffix, counter := range c.LabelsBySuffix {
		top := counter.TopK(1)
		if len(top) == 1 && top[0].Count >= minCount {
			out[suffix] = top[0].Key
		}
	}
	return out
}

// WordlistCoverage reports how many entries of an external wordlist (such
// as subbrute's 101k or dnsrecon's 1.9k) occur as subdomain labels in the
// census — the paper finds just 16 and 12 respectively, showing the tools
// would not discover real CT-logged names.
func (c *Census) WordlistCoverage(wordlist []string) int {
	n := 0
	for _, w := range wordlist {
		if c.Labels.Get(dnsname.Normalize(w)) > 0 {
			n++
		}
	}
	return n
}

// concurrency is the default massdns-style resolver fan-out used by
// Verify (VerifyConfig.Parallelism overrides it).
const concurrency = 16

// parallelForEach runs fn over items with the given worker count,
// splitting items into contiguous per-worker chunks (no channel traffic
// on the hot path). workers <= 1 runs inline. Results are accumulated by
// the caller under its own synchronization.
func parallelForEach[T any](items []T, workers int, fn func(T)) {
	if workers > len(items) {
		workers = len(items)
	}
	if workers <= 1 {
		for _, it := range items {
			fn(it)
		}
		return
	}
	chunk := (len(items) + workers - 1) / workers
	var wg sync.WaitGroup
	for lo := 0; lo < len(items); lo += chunk {
		hi := lo + chunk
		if hi > len(items) {
			hi = len(items)
		}
		wg.Add(1)
		go func(part []T) {
			defer wg.Done()
			for _, it := range part {
				fn(it)
			}
		}(items[lo:hi])
	}
	wg.Wait()
}
