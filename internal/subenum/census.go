// Package subenum implements Section 4: the census of subdomain labels
// leaked through CT-logged certificates (Table 2), the per-suffix label
// statistics of Section 4.2, and the full Section 4.3 enumeration
// methodology — strategic FQDN construction from frequent labels,
// massdns-style concurrent verification with pseudorandom control names
// against wildcard zones, CNAME chasing, routing-table filtering, and the
// Sonar comparison.
package subenum

import (
	"sync"

	"ctrise/internal/dnsname"
	"ctrise/internal/psl"
	"ctrise/internal/stats"
)

// Census is the outcome of parsing a CT name corpus.
type Census struct {
	// Labels counts each subdomain label across all suffixes (Table 2).
	Labels *stats.Counter
	// LabelsBySuffix counts labels per public suffix (Section 4.2's
	// "most common subdomain label for each public suffix").
	LabelsBySuffix map[string]*stats.Counter
	// DomainsBySuffix groups the corpus's registrable domains by suffix.
	DomainsBySuffix map[string][]string
	// ValidFQDNs is the number of names that survived validation.
	ValidFQDNs uint64
	// Rejected counts names eliminated by FQDN validation (the paper
	// filters invalid names with a validators library).
	Rejected uint64
}

// RunCensus parses a deduplicated CT name corpus: validates each FQDN,
// splits it at the registrable domain per the PSL, and counts subdomain
// labels. Wildcard prefixes ("*.") are stripped first, as certificate
// names often carry them.
func RunCensus(names map[string]struct{}, list *psl.List) *Census {
	c := &Census{
		Labels:          stats.NewCounter(),
		LabelsBySuffix:  make(map[string]*stats.Counter),
		DomainsBySuffix: make(map[string][]string),
	}
	seenDomains := make(map[string]bool)
	for raw := range names {
		name := dnsname.Normalize(dnsname.TrimWildcard(raw))
		if !dnsname.IsValidFQDN(name) {
			c.Rejected++
			continue
		}
		sub, regDomain, suffix, err := list.Split(name)
		if err != nil {
			c.Rejected++
			continue
		}
		c.ValidFQDNs++
		if !seenDomains[regDomain] {
			seenDomains[regDomain] = true
			c.DomainsBySuffix[suffix] = append(c.DomainsBySuffix[suffix], regDomain)
		}
		for _, label := range sub {
			c.Labels.Inc(label)
			sc := c.LabelsBySuffix[suffix]
			if sc == nil {
				sc = stats.NewCounter()
				c.LabelsBySuffix[suffix] = sc
			}
			sc.Inc(label)
		}
	}
	return c
}

// Table2 returns the top-k subdomain labels.
func (c *Census) Table2(k int) []stats.KV { return c.Labels.TopK(k) }

// TopLabelPerSuffix returns each suffix's most common subdomain label
// (Section 4.2), for suffixes with at least minCount label occurrences.
func (c *Census) TopLabelPerSuffix(minCount uint64) map[string]string {
	out := make(map[string]string)
	for suffix, counter := range c.LabelsBySuffix {
		top := counter.TopK(1)
		if len(top) == 1 && top[0].Count >= minCount {
			out[suffix] = top[0].Key
		}
	}
	return out
}

// WordlistCoverage reports how many entries of an external wordlist (such
// as subbrute's 101k or dnsrecon's 1.9k) occur as subdomain labels in the
// census — the paper finds just 16 and 12 respectively, showing the tools
// would not discover real CT-logged names.
func (c *Census) WordlistCoverage(wordlist []string) int {
	n := 0
	for _, w := range wordlist {
		if c.Labels.Get(dnsname.Normalize(w)) > 0 {
			n++
		}
	}
	return n
}

// concurrency is the massdns-style resolver fan-out used by Verify.
const concurrency = 16

// parallelForEach runs fn over items with bounded concurrency, preserving
// no order (results are accumulated by the caller under its own lock).
func parallelForEach[T any](items []T, fn func(T)) {
	var wg sync.WaitGroup
	ch := make(chan T)
	for i := 0; i < concurrency; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for it := range ch {
				fn(it)
			}
		}()
	}
	for _, it := range items {
		ch <- it
	}
	close(ch)
	wg.Wait()
}
