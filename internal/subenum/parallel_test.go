package subenum

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"ctrise/internal/psl"
)

// syntheticCorpus builds a corpus large enough to cross the parallel
// census's chunking threshold, spread over several suffixes and labels.
func syntheticCorpus(n int) map[string]struct{} {
	labels := []string{"www", "mail", "api", "dev", "shop", "vpn", "git", "autoconfig"}
	suffixes := []string{"de", "nl", "fr", "it", "tech", "cloud", "co.uk"}
	rng := rand.New(rand.NewSource(99))
	corpus := make(map[string]struct{}, n)
	for i := 0; i < n; i++ {
		dom := fmt.Sprintf("dom%d.%s", i%700, suffixes[rng.Intn(len(suffixes))])
		corpus[dom] = struct{}{}
		corpus[labels[rng.Intn(len(labels))]+"."+dom] = struct{}{}
		if i%17 == 0 {
			corpus["not_valid..name-"+fmt.Sprint(i)] = struct{}{}
		}
	}
	return corpus
}

// The parallel census must produce exactly the sequential census: same
// counts, same per-suffix breakdowns, same (sorted) domain lists, same
// Table 2 rows. This also exercises the concurrent chunk workers under
// -race.
func TestRunCensusParallelEquivalence(t *testing.T) {
	corpus := syntheticCorpus(3000)
	list := psl.Default()
	seq := RunCensusParallel(corpus, list, 1)
	par := RunCensusParallel(corpus, list, 8)

	if seq.ValidFQDNs != par.ValidFQDNs || seq.Rejected != par.Rejected {
		t.Fatalf("valid/rejected: seq=%d/%d par=%d/%d",
			seq.ValidFQDNs, seq.Rejected, par.ValidFQDNs, par.Rejected)
	}
	if !reflect.DeepEqual(seq.Labels.Snapshot(), par.Labels.Snapshot()) {
		t.Fatal("label counters differ")
	}
	if len(seq.LabelsBySuffix) != len(par.LabelsBySuffix) {
		t.Fatalf("suffix sets differ: %d vs %d", len(seq.LabelsBySuffix), len(par.LabelsBySuffix))
	}
	for suffix, sc := range seq.LabelsBySuffix {
		pc := par.LabelsBySuffix[suffix]
		if pc == nil || !reflect.DeepEqual(sc.Snapshot(), pc.Snapshot()) {
			t.Fatalf("per-suffix counters differ for %q", suffix)
		}
	}
	if !reflect.DeepEqual(seq.DomainsBySuffix, par.DomainsBySuffix) {
		t.Fatal("domain lists differ")
	}
	if !reflect.DeepEqual(seq.Table2(20), par.Table2(20)) {
		t.Fatal("Table 2 rows differ")
	}
}

// Construct must emit the identical candidate list (content and order) at
// any parallelism.
func TestConstructParallelEquivalence(t *testing.T) {
	corpus := syntheticCorpus(3000)
	c := RunCensus(corpus, psl.Default())
	domains := map[string][]string{}
	for suffix, ds := range c.DomainsBySuffix {
		domains[suffix] = ds
	}
	seq := Construct(c, domains, ConstructConfig{MinLabelCount: 2, Parallelism: 1})
	par := Construct(c, domains, ConstructConfig{MinLabelCount: 2, Parallelism: 8})
	if len(seq) == 0 {
		t.Fatal("no candidates constructed")
	}
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("candidate lists differ: seq=%d par=%d", len(seq), len(par))
	}
}

// Verify must produce the identical funnel at any resolver fan-out.
func TestVerifyParallelEquivalence(t *testing.T) {
	u := buildVerifyUniverse(t)
	rng := rand.New(rand.NewSource(7))
	var cands []Candidate
	for i := 0; i < 800; i++ {
		dom := []string{"real.de", "parked.tk", "chain.nl", "empty.fr"}[rng.Intn(4)]
		label := []string{"mail", "www", "x"}[rng.Intn(3)]
		cands = append(cands, Candidate{
			FQDN:   fmt.Sprintf("%s%d.%s", label, i, dom),
			Label:  label,
			Domain: dom,
		})
	}
	seq := Verify(cands, u, allRoutes{}, VerifyConfig{Seed: 8, Parallelism: 1})
	par := Verify(cands, u, allRoutes{}, VerifyConfig{Seed: 8, Parallelism: 16})
	if !reflect.DeepEqual(seq, par) {
		t.Fatalf("funnels differ:\nseq=%+v\npar=%+v", seq, par)
	}
}
