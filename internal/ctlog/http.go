package ctlog

import (
	"encoding/base64"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"ctrise/internal/merkle"
	"ctrise/internal/sct"
)

// JSON wire types for the ct/v1 API (RFC 6962 Section 4). Field names
// match the RFC exactly so third-party clients interoperate.

// AddChainRequest is the body of add-chain and add-pre-chain. For
// add-pre-chain in this implementation, chain[0] is the defanged TBS and
// chain[1] is the issuer key hash (32 bytes); real logs derive the key
// hash from the submitted issuer certificate.
type AddChainRequest struct {
	Chain []string `json:"chain"`
}

// AddChainResponse is the SCT returned by add-chain / add-pre-chain.
type AddChainResponse struct {
	SCTVersion uint8  `json:"sct_version"`
	ID         string `json:"id"`
	Timestamp  uint64 `json:"timestamp"`
	Extensions string `json:"extensions"`
	Signature  string `json:"signature"`
}

// GetSTHResponse is the get-sth response.
type GetSTHResponse struct {
	TreeSize          uint64 `json:"tree_size"`
	Timestamp         uint64 `json:"timestamp"`
	SHA256RootHash    string `json:"sha256_root_hash"`
	TreeHeadSignature string `json:"tree_head_signature"`
}

// GetSTHConsistencyResponse is the get-sth-consistency response.
type GetSTHConsistencyResponse struct {
	Consistency []string `json:"consistency"`
}

// GetProofByHashResponse is the get-proof-by-hash response.
type GetProofByHashResponse struct {
	LeafIndex uint64   `json:"leaf_index"`
	AuditPath []string `json:"audit_path"`
}

// LeafEntry is one element of get-entries.
type LeafEntry struct {
	LeafInput string `json:"leaf_input"`
	ExtraData string `json:"extra_data"`
}

// GetEntriesResponse is the get-entries response.
type GetEntriesResponse struct {
	Entries []LeafEntry `json:"entries"`
}

// Handler returns an http.Handler serving the ct/v1 API for the log.
func (l *Log) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ct/v1/add-chain", l.handleAddChain)
	mux.HandleFunc("POST /ct/v1/add-pre-chain", l.handleAddPreChain)
	mux.HandleFunc("GET /ct/v1/get-sth", l.handleGetSTH)
	mux.HandleFunc("GET /ct/v1/get-sth-consistency", l.handleGetSTHConsistency)
	mux.HandleFunc("GET /ct/v1/get-proof-by-hash", l.handleGetProofByHash)
	mux.HandleFunc("GET /ct/v1/get-entries", l.handleGetEntries)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		// Too late for a status change; the connection will just break.
		return
	}
}

// httpError maps a log error onto its ct/v1 status. The 429/503
// Retry-After hint is the log's RetryAfterSeconds: the running
// sequencer's interval rounded up to whole seconds (floor 1s), because
// the next sequencing cycle is when refused capacity — a refilled token
// bucket, a drained backlog — is most likely to exist again. A
// hardcoded 1s here made every well-behaved client probe a
// slow-sequencing log several times per cycle for nothing.
func (l *Log) httpError(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrOverloaded):
		w.Header().Set("Retry-After", strconv.Itoa(l.RetryAfterSeconds()))
		http.Error(w, err.Error(), http.StatusTooManyRequests)
	case errors.Is(err, ErrNotFound):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, ErrBadRange), errors.Is(err, merkle.ErrSizeOutOfRange),
		errors.Is(err, merkle.ErrIndexOutOfRange), errors.Is(err, merkle.ErrEmptyRange):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case errors.Is(err, ErrPersistence):
		// The durable store failed; the condition is sticky until the
		// operator restarts the log, but 503 (not 500) tells well-behaved
		// submitters this is the log's capacity to accept, not a protocol
		// error on their side — and Retry-After tells them to probe again
		// rather than hot-loop while the operator intervenes.
		w.Header().Set("Retry-After", strconv.Itoa(l.RetryAfterSeconds()))
		http.Error(w, err.Error(), http.StatusServiceUnavailable)
	default:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (l *Log) handleAddChain(w http.ResponseWriter, r *http.Request) {
	var req AddChainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Chain) == 0 {
		http.Error(w, "ctlog: bad add-chain body", http.StatusBadRequest)
		return
	}
	cert, err := base64.StdEncoding.DecodeString(req.Chain[0])
	if err != nil {
		http.Error(w, "ctlog: bad base64 in chain", http.StatusBadRequest)
		return
	}
	s, err := l.AddChain(cert)
	if err != nil {
		l.httpError(w, err)
		return
	}
	writeJSON(w, sctToResponse(s))
}

func (l *Log) handleAddPreChain(w http.ResponseWriter, r *http.Request) {
	var req AddChainRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil || len(req.Chain) < 2 {
		http.Error(w, "ctlog: bad add-pre-chain body (need [tbs, issuerKeyHash])", http.StatusBadRequest)
		return
	}
	tbs, err := base64.StdEncoding.DecodeString(req.Chain[0])
	if err != nil {
		http.Error(w, "ctlog: bad base64 tbs", http.StatusBadRequest)
		return
	}
	ikhBytes, err := base64.StdEncoding.DecodeString(req.Chain[1])
	if err != nil || len(ikhBytes) != 32 {
		http.Error(w, "ctlog: bad issuer key hash", http.StatusBadRequest)
		return
	}
	var ikh [32]byte
	copy(ikh[:], ikhBytes)
	s, err := l.AddPreChain(ikh, tbs)
	if err != nil {
		l.httpError(w, err)
		return
	}
	writeJSON(w, sctToResponse(s))
}

func sctToResponse(s *sct.SignedCertificateTimestamp) AddChainResponse {
	sig, err := s.Signature.Serialize()
	if err != nil {
		// The signature was produced locally and always fits; a failure
		// here indicates memory corruption, so fail loudly.
		panic(err)
	}
	return AddChainResponse{
		SCTVersion: uint8(s.SCTVersion),
		ID:         base64.StdEncoding.EncodeToString(s.LogID[:]),
		Timestamp:  s.Timestamp,
		Extensions: base64.StdEncoding.EncodeToString(s.Extensions),
		Signature:  base64.StdEncoding.EncodeToString(sig),
	}
}

func (l *Log) handleGetSTH(w http.ResponseWriter, _ *http.Request) {
	sth := l.STH()
	sig, err := sth.Sig.Serialize()
	if err != nil {
		l.httpError(w, err)
		return
	}
	writeJSON(w, GetSTHResponse{
		TreeSize:          sth.TreeHead.TreeSize,
		Timestamp:         sth.TreeHead.Timestamp,
		SHA256RootHash:    base64.StdEncoding.EncodeToString(sth.TreeHead.RootHash[:]),
		TreeHeadSignature: base64.StdEncoding.EncodeToString(sig),
	})
}

func (l *Log) handleGetSTHConsistency(w http.ResponseWriter, r *http.Request) {
	first, err1 := strconv.ParseUint(r.URL.Query().Get("first"), 10, 64)
	second, err2 := strconv.ParseUint(r.URL.Query().Get("second"), 10, 64)
	if err1 != nil || err2 != nil {
		http.Error(w, "ctlog: bad first/second", http.StatusBadRequest)
		return
	}
	proof, err := l.GetConsistencyProof(first, second)
	if err != nil {
		l.httpError(w, err)
		return
	}
	writeJSON(w, GetSTHConsistencyResponse{Consistency: encodeHashes(proof)})
}

func (l *Log) handleGetProofByHash(w http.ResponseWriter, r *http.Request) {
	hashB64 := r.URL.Query().Get("hash")
	treeSize, err := strconv.ParseUint(r.URL.Query().Get("tree_size"), 10, 64)
	if err != nil {
		http.Error(w, "ctlog: bad tree_size", http.StatusBadRequest)
		return
	}
	hashBytes, err := base64.StdEncoding.DecodeString(hashB64)
	if err != nil || len(hashBytes) != merkle.HashSize {
		http.Error(w, "ctlog: bad hash", http.StatusBadRequest)
		return
	}
	var h merkle.Hash
	copy(h[:], hashBytes)
	index, proof, err := l.GetProofByHash(h, treeSize)
	if err != nil {
		l.httpError(w, err)
		return
	}
	writeJSON(w, GetProofByHashResponse{LeafIndex: index, AuditPath: encodeHashes(proof)})
}

// handleGetEntries serves get-entries. Like production logs, an
// oversized [start, end] range is not an error and not served whole:
// GetEntries clamps it to Config.MaxGetEntries (and to the published
// tree size) and the response carries the resulting partial page, from
// which clients are expected to page the remainder
// (ctclient.Monitor.StreamEntries does).
func (l *Log) handleGetEntries(w http.ResponseWriter, r *http.Request) {
	start, err1 := strconv.ParseUint(r.URL.Query().Get("start"), 10, 64)
	end, err2 := strconv.ParseUint(r.URL.Query().Get("end"), 10, 64)
	if err1 != nil || err2 != nil {
		http.Error(w, "ctlog: bad start/end", http.StatusBadRequest)
		return
	}
	entries, err := l.GetEntries(start, end)
	if err != nil {
		l.httpError(w, err)
		return
	}
	resp := GetEntriesResponse{Entries: make([]LeafEntry, 0, len(entries))}
	for _, e := range entries {
		leaf, err := e.MerkleTreeLeaf()
		if err != nil {
			l.httpError(w, err)
			return
		}
		resp.Entries = append(resp.Entries, LeafEntry{
			LeafInput: base64.StdEncoding.EncodeToString(leaf),
		})
	}
	writeJSON(w, resp)
}

func encodeHashes(hs []merkle.Hash) []string {
	out := make([]string, len(hs))
	for i, h := range hs {
		out[i] = base64.StdEncoding.EncodeToString(h[:])
	}
	return out
}
