package ctlog

import (
	"bytes"
	"fmt"

	"ctrise/internal/ctlog/storage"
	"ctrise/internal/merkle"
	"ctrise/internal/sct"
)

// Open opens (or creates) a durable log backed by dir. Recovery loads
// the latest snapshot, replays the WAL tail from the snapshot's cursor,
// and reconstructs byte-identical log state: the sequenced Merkle tree,
// the pending staged batch, the dedupe index, and the exact published
// STH (original signature bytes included). Every seal and STH in the
// replay is verified against the rebuilt tree — a mismatch is a
// divergence and Open fails loudly with ErrCorrupt rather than serve a
// tree head the durable history does not support. A torn WAL tail (a
// crash mid-append) is discarded, which recovers the last consistent
// prefix; a corrupt snapshot falls back to a full replay of the WAL,
// which is never compacted.
//
// The durability contract, in submission order:
//
//   - AddChain/AddPreChain append the entry's WAL record before the SCT
//     is returned; under SyncEachSubmission (default) the record is
//     fsynced first, so an acknowledged submission survives any crash.
//   - Sequence fsyncs a seal record after integrating a batch, so the
//     batch boundary — and therefore the canonical in-batch order —
//     is durable before the tree state is observable.
//   - PublishSTH fsyncs the signed tree head before readers see it, so
//     a served STH is always recoverable.
//   - Periodically (Config.SnapshotEvery) and on Close, a full snapshot
//     is written atomically so recovery replays only the WAL tail.
func Open(dir string, cfg Config) (*Log, error) {
	l, err := newLog(cfg)
	if err != nil {
		return nil, err
	}
	st, err := storage.Open(dir)
	if err != nil {
		return nil, err
	}
	l.store = st
	// The snapshot is loaded before the tree is (re)built because the
	// tile span is a property of the directory, not the config: sealed
	// tile files are immutable, so a directory that has sealed under one
	// span keeps it for life, whatever cfg says now.
	snap, snapErr := st.LoadSnapshot()
	span := uint64(l.cfg.TileSpan)
	if snapErr == nil && snap != nil && snap.TileSpan != 0 {
		span = snap.TileSpan
		l.cfg.TileSpan = int(span)
	}
	l.tiles = newTileStore(st, span, l.cfg.PageCacheBytes)
	if l.tree, err = merkle.NewTiled(span, l.tiles); err != nil {
		st.Close()
		return nil, err
	}
	if err := l.recover(snap, snapErr); err != nil {
		st.Close()
		return nil, err
	}
	return l, nil
}

// Close makes the log's state durable (final snapshot) and releases the
// store. In-memory logs close trivially. The log must not be used after
// Close; a closed durable log refuses new submissions.
func (l *Log) Close() error {
	// seqMu first: a chunked sequence in flight holds a half-integrated
	// batch outside l.mu, and a snapshot taken in one of its gaps would
	// record the drained-but-uninstalled remainder nowhere.
	l.seqMu.Lock()
	defer l.seqMu.Unlock()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.store == nil {
		return nil
	}
	var firstErr error
	if l.store.Err() == nil {
		if err := l.store.Sync(); err != nil {
			firstErr = fmt.Errorf("%w: %v", ErrPersistence, err)
		} else if err := l.writeSnapshotLocked(); err != nil {
			firstErr = err
		}
	}
	if err := l.store.Close(); err != nil && firstErr == nil {
		firstErr = fmt.Errorf("%w: %v", ErrPersistence, err)
	}
	return firstErr
}

// recovered accumulates replayed state; it is installed into the Log
// only when the whole recovery succeeds, so a fallback (corrupt
// snapshot → full WAL replay) starts from scratch instead of from a
// half-applied attempt.
type recovered struct {
	entries    []*Entry // resident tail: entries [tiledThrough, tree.Size())
	staged     []*Entry
	tree       *merkle.TiledTree
	dedupe     map[merkle.Hash]*Entry
	byLeafHash *leafIndex
	sth        *SignedTreeHead
	snapSize   uint64
	// tiledThrough and tileRoots come from the snapshot: the sealed
	// prefix is NOT replayed entry by entry — the tree is rebuilt by
	// appending each recorded tile root to the spine (zero tile reads).
	tiledThrough uint64
	tileRoots    [][32]byte
}

func newRecovered(l *Log) (*recovered, error) {
	tree, err := merkle.NewTiled(l.tree.Span(), l.tiles)
	if err != nil {
		return nil, err
	}
	return &recovered{
		tree:       tree,
		dedupe:     make(map[merkle.Hash]*Entry),
		byLeafHash: &leafIndex{},
	}, nil
}

// recover rebuilds log state from the store. Called once from Open,
// before the log is visible to any other goroutine.
//
// The decision tree, in trust order: a verified snapshot plus the WAL
// tail from its cursor is the normal fast path. When the surviving WAL
// ends BELOW the snapshot's cursor — mid-file corruption ate fsynced
// records — the snapshot (written after those records were durable, and
// verified in full here) is adopted outright and the unusable WAL is
// reset, rather than silently rolling the log back to the WAL's prefix.
// Only when no usable snapshot exists does recovery fall back to a
// genesis replay of the WAL's valid prefix.
func (l *Log) recover(snap *storage.Snapshot, snapErr error) error {
	var rec *recovered
	adopted := false
	// snapUnusable: a snapshot file exists but could not be used —
	// unreadable, or inconsistent with itself or the WAL tail.
	snapUnusable := snapErr != nil
	if snapErr == nil && snap != nil {
		r, err := newRecovered(l)
		if err != nil {
			return err
		}
		if err := r.loadSnapshot(l, snap); err == nil {
			if int64(snap.WALOffset) > l.store.WALOffset() {
				rec, adopted = r, true
			} else if err := l.replayWAL(r, int64(snap.WALOffset)); err == nil {
				rec = r
			}
		}
		snapUnusable = rec == nil
		// Any other failure falls through to a full replay: the WAL below
		// the last seal-compaction is never discarded without a verified
		// snapshot covering it, so genesis replay can reconstruct
		// everything the snapshot could — and if the snapshot disagreed
		// with the WAL, the WAL (the fsync-ordered record of truth) wins.
	}
	if rec == nil {
		var err error
		if rec, err = newRecovered(l); err != nil {
			return err
		}
		if err := l.replayWAL(rec, 0); err != nil {
			return err
		}
		// A corrupt snapshot over a WAL that replays no STH is NOT a
		// fresh log: every never-reset WAL carries at least the genesis
		// STH record, so its absence means the WAL was reset by an
		// adopt-snapshot recovery (the snapshot is the ONLY copy of the
		// sequenced tree — possibly plus a few post-adoption staged
		// entries) or lost its whole prefix. Starting over from what
		// little the WAL holds would silently vaporize acked
		// submissions; fail loudly and leave the files for forensics.
		if snapUnusable && rec.sth == nil {
			return fmt.Errorf("%w: snapshot present but unusable (%v) and WAL holds no published history to rebuild from", storage.ErrCorrupt, snapErr)
		}
	}
	if adopted {
		if err := l.store.ResetWAL(); err != nil {
			return fmt.Errorf("%w: %v", ErrPersistence, err)
		}
	} else if err := l.store.CommitRecovery(); err != nil {
		return fmt.Errorf("%w: %v", ErrPersistence, err)
	}
	l.entries = rec.entries
	l.staged = rec.staged
	l.tree = rec.tree
	l.dedupe = rec.dedupe
	l.byLeafHash = rec.byLeafHash
	l.snapAt = rec.snapSize
	l.tailStart = rec.tiledThrough
	if rec.tiledThrough > 0 {
		// Register the sealed tiles: roots from the snapshot, blooms read
		// back from each tile's index file. The blooms are the sealed half
		// of the dedupe index — a tile they cannot be loaded for would
		// silently re-admit sealed duplicates, so failure is fatal here.
		if err := l.tiles.install(rec.tileRoots); err != nil {
			return err
		}
	}
	if rec.sth == nil {
		// Fresh directory (or one that crashed before genesis publish):
		// publish the empty-tree STH like New does. Everything staged in
		// the WAL stays pending until the first Sequence.
		return l.publishLocked()
	}
	l.published = *rec.sth
	if err := l.storePublishedLocked(); err != nil {
		return err
	}
	if adopted {
		// Re-anchor the snapshot's WAL cursor to the freshly reset WAL,
		// so the next open replays (the empty) tail from a real offset.
		if err := l.writeSnapshotLocked(); err != nil {
			return err
		}
	}
	return nil
}

// stageLeaf reconstructs one entry from its durable leaf bytes and
// stages it: the identity hash, sort key, and Merkle leaf hash are
// recomputed from content exactly as the live add path computed them.
func (r *recovered) stageLeaf(leaf []byte) error {
	// Clone: record payloads alias the WAL/snapshot read buffer, which
	// is released after recovery; entries own their bytes.
	e, err := ParseMerkleTreeLeaf(bytes.Clone(leaf))
	if err != nil {
		return fmt.Errorf("%w: %v", storage.ErrCorrupt, err)
	}
	e.idHash = entryIdentity(e.SignatureEntry())
	e.idKey = idKeyOf(e.idHash)
	e.leafHash = merkle.HashLeaf(leaf)
	if _, dup := r.dedupe[e.idHash]; dup {
		return fmt.Errorf("%w: duplicate entry identity %s in durable state", storage.ErrCorrupt, e.idHash)
	}
	r.staged = append(r.staged, e)
	r.dedupe[e.idHash] = e
	return nil
}

// seal drains the sealed batch through the canonical sort into the
// tree — the exact live-sequencer integration — then verifies the
// result against what the live log recorded. A mismatch means the
// durable history cannot reproduce the tree it claims; recovery fails
// loudly rather than serve diverged state.
//
// The seal's batch is the staged PREFIX its tree size accounts for, in
// WAL file order: record order is lock order, so every record of the
// drained batch precedes the drain point, and submissions that raced a
// chunked sequence (their records landed between the drain and the
// seal) belong to the NEXT batch — on the live log they stayed staged,
// so here they must too. For the full-lock path the prefix is simply
// everything staged, the original semantics.
func (r *recovered) seal(s storage.SealRecord) error {
	if s.TreeSize < r.tree.Size() {
		return fmt.Errorf("%w: seal claims tree size %d below replayed %d", storage.ErrCorrupt, s.TreeSize, r.tree.Size())
	}
	n := s.TreeSize - r.tree.Size()
	if n > uint64(len(r.staged)) {
		return fmt.Errorf("%w: seal claims tree size %d, replay staged only %d of the %d entries it needs", storage.ErrCorrupt, s.TreeSize, len(r.staged), n)
	}
	batch := r.staged[:n]
	r.staged = r.staged[n:]
	sortBatch(batch)
	integrateBatch(batch, r.tree, &r.entries, r.byLeafHash)
	if r.tree.Size() != s.TreeSize {
		return fmt.Errorf("%w: seal claims tree size %d, replay built %d", storage.ErrCorrupt, s.TreeSize, r.tree.Size())
	}
	root, err := r.tree.Root()
	if err != nil {
		return fmt.Errorf("%w: %v", storage.ErrCorrupt, err)
	}
	if root != merkle.Hash(s.Root) {
		return fmt.Errorf("%w: seal root mismatch at size %d: recorded %s, replayed %s", storage.ErrCorrupt, s.TreeSize, merkle.Hash(s.Root), root)
	}
	return nil
}

// applySTH validates a recorded tree head against the rebuilt tree (the
// recorded size must be a prefix whose root matches) and against the
// log's signer (so a directory served with the wrong key fails loudly
// instead of republishing another log's heads), then installs it as the
// latest published head.
func (r *recovered) applySTH(l *Log, rec storage.STHRecord) error {
	if rec.TreeSize > r.tree.Size() {
		return fmt.Errorf("%w: STH covers %d entries, replay built %d", storage.ErrCorrupt, rec.TreeSize, r.tree.Size())
	}
	root, err := r.tree.RootAt(rec.TreeSize)
	if err != nil {
		return fmt.Errorf("%w: %v", storage.ErrCorrupt, err)
	}
	if root != merkle.Hash(rec.Root) {
		return fmt.Errorf("%w: STH root mismatch at size %d", storage.ErrCorrupt, rec.TreeSize)
	}
	sig, err := sct.ParseDigitallySigned(rec.Sig)
	if err != nil {
		return fmt.Errorf("%w: STH signature: %v", storage.ErrCorrupt, err)
	}
	th := sct.TreeHead{Timestamp: rec.Timestamp, TreeSize: rec.TreeSize, RootHash: rec.Root}
	if err := l.cfg.Signer.Verifier().VerifyTreeHead(th, sig); err != nil {
		return fmt.Errorf("%w: recorded STH fails verification against this log's key: %v", storage.ErrCorrupt, err)
	}
	r.sth = &SignedTreeHead{TreeHead: th, Sig: sig}
	return nil
}

// unstage rolls back the replayed form of a signing-failure rollback.
// The tombstoned entry must still be staged: its record always precedes
// the tombstone, and the live log only wrote the tombstone while the
// entry was in the pending batch, so an unmatched tombstone means the
// history was tampered with.
func (r *recovered) unstage(id [32]byte) error {
	for i := len(r.staged) - 1; i >= 0; i-- {
		if r.staged[i].idHash == merkle.Hash(id) {
			r.staged = append(r.staged[:i], r.staged[i+1:]...)
			delete(r.dedupe, merkle.Hash(id))
			return nil
		}
	}
	return fmt.Errorf("%w: unstage record for an entry that is not staged", storage.ErrCorrupt)
}

// loadSnapshot installs a full-state snapshot into rec, verifying the
// rebuilt tree against the snapshot's recorded size and root. The sealed
// prefix reconstructs from the recorded tile roots alone — O(tiles)
// spine appends, no entry bytes, no tile reads — and only the resident
// tail integrates leaf by leaf.
func (r *recovered) loadSnapshot(l *Log, snap *storage.Snapshot) error {
	if snap.TileSpan != 0 && snap.TileSpan != r.tree.Span() {
		return fmt.Errorf("%w: snapshot tile span %d, directory opened with %d", storage.ErrCorrupt, snap.TileSpan, r.tree.Span())
	}
	for _, root := range snap.TileRoots {
		if err := r.tree.AppendSealedTile(merkle.Hash(root)); err != nil {
			return fmt.Errorf("%w: %v", storage.ErrCorrupt, err)
		}
	}
	r.tiledThrough = snap.TiledThrough
	r.tileRoots = snap.TileRoots
	for _, leaf := range snap.Sequenced {
		if err := r.stageLeaf(leaf); err != nil {
			return err
		}
	}
	// Snapshot entries are stored in sequenced order: integrate them
	// as-is (no re-sort — the canonical order was fixed when their
	// batches sealed, and re-sorting across batch boundaries would
	// reorder the tree).
	seq := r.staged
	r.staged = nil
	integrateBatch(seq, r.tree, &r.entries, r.byLeafHash)
	if r.tree.Size() != snap.TreeSize() {
		return fmt.Errorf("%w: snapshot size mismatch", storage.ErrCorrupt)
	}
	root, err := r.tree.Root()
	if err != nil {
		return fmt.Errorf("%w: %v", storage.ErrCorrupt, err)
	}
	if root != merkle.Hash(snap.Root) {
		return fmt.Errorf("%w: snapshot root mismatch: recorded %s, rebuilt %s", storage.ErrCorrupt, merkle.Hash(snap.Root), root)
	}
	for _, leaf := range snap.Staged {
		if err := r.stageLeaf(leaf); err != nil {
			return err
		}
	}
	if err := r.applySTH(l, snap.STH); err != nil {
		return err
	}
	r.snapSize = snap.TreeSize()
	return nil
}

// replayWAL folds the WAL records from byte offset `from` into rec.
func (l *Log) replayWAL(r *recovered, from int64) error {
	return l.store.Replay(from, func(rec storage.Record) error {
		switch rec.Type {
		case storage.RecordEntry:
			return r.stageLeaf(rec.Payload)
		case storage.RecordSeal:
			seal, err := storage.DecodeSeal(rec.Payload)
			if err != nil {
				return err
			}
			return r.seal(seal)
		case storage.RecordSTH:
			sth, err := storage.DecodeSTH(rec.Payload)
			if err != nil {
				return err
			}
			return r.applySTH(l, sth)
		case storage.RecordUnstage:
			id, err := storage.DecodeUnstage(rec.Payload)
			if err != nil {
				return err
			}
			return r.unstage(id)
		default:
			return fmt.Errorf("%w: unknown WAL record type %d", storage.ErrCorrupt, rec.Type)
		}
	})
}

// writeSnapshotLocked dumps the full log state — the sealed prefix as
// tile roots, the resident tail's entries in tree order, the staged
// batch, root, published STH, and the WAL cursor — into an
// atomically-replaced snapshot file. Requires l.mu. Snapshot cost is
// O(tail + staged + tile count), not O(tree): the sealed entries
// themselves live in the tiles.
func (l *Log) writeSnapshotLocked() error {
	root, err := l.tree.Root()
	if err != nil {
		return err
	}
	snap := &storage.Snapshot{
		Sequenced:    make([][]byte, len(l.entries)),
		Staged:       make([][]byte, len(l.staged)),
		Root:         [32]byte(root),
		WALOffset:    uint64(l.store.WALOffset()),
		TiledThrough: l.tailStart,
		TileSpan:     l.tree.Span(),
		TileRoots:    l.tiles.rootsImage(),
	}
	for i, e := range l.entries {
		if snap.Sequenced[i], err = e.MerkleTreeLeaf(); err != nil {
			return err
		}
	}
	for i, e := range l.staged {
		if snap.Staged[i], err = e.MerkleTreeLeaf(); err != nil {
			return err
		}
	}
	sigBytes, err := l.published.Sig.Serialize()
	if err != nil {
		return err
	}
	snap.STH = storage.STHRecord{
		Timestamp: l.published.TreeHead.Timestamp,
		TreeSize:  l.published.TreeHead.TreeSize,
		Root:      l.published.TreeHead.RootHash,
		Sig:       sigBytes,
	}
	if err := l.store.WriteSnapshot(snap); err != nil {
		return fmt.Errorf("%w: %v", ErrPersistence, err)
	}
	l.snapAt = l.tree.Size()
	return nil
}
