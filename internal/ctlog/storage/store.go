package storage

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
)

// Store is one log's durable state directory: the write-ahead log plus
// the latest snapshot. The write path is sticky-fail: after any append
// or fsync error the store refuses further writes, because a WAL whose
// tail may be torn must not be appended past — the log above surfaces
// the failure to submitters and keeps serving reads from memory, and a
// restart recovers the durable prefix.
type Store struct {
	dir string
	wal *wal

	mu     sync.Mutex
	failed error
	closed bool
}

// Open opens (or initializes) the store directory: creates it if
// missing, validates the WAL, truncates any torn tail, and positions
// appends after the last durable record. The recovered records are
// consumed via Replay.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(filepath.Join(dir, TilesDirName), 0o755); err != nil {
		return nil, fmt.Errorf("storage: creating %s: %w", dir, err)
	}
	// Make the state directory's own entry durable: a crash that loses
	// the directory loses every fsync inside it. The tiles subdirectory
	// gets the same treatment so the first sealed tile cannot outlive a
	// directory that was never journaled.
	if err := SyncDir(filepath.Dir(dir)); err != nil {
		return nil, err
	}
	if err := SyncDir(dir); err != nil {
		return nil, err
	}
	w, err := openWAL(dir)
	if err != nil {
		return nil, err
	}
	return &Store{dir: dir, wal: w}, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Err returns the sticky write failure, if any.
func (s *Store) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed != nil {
		return s.failed
	}
	if s.closed {
		return ErrClosed
	}
	return nil
}

func (s *Store) fail(err error) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.failed == nil {
		s.failed = err
	}
	return err
}

// append frames one record into the WAL, returning the barrier offset.
func (s *Store) append(typ RecordType, payload []byte) (int64, error) {
	if err := s.Err(); err != nil {
		return 0, err
	}
	off, err := s.wal.append(typ, payload)
	if err != nil {
		return off, s.fail(err)
	}
	return off, nil
}

// AppendEntry records one staged submission (its MerkleTreeLeaf bytes).
func (s *Store) AppendEntry(leaf []byte) (int64, error) {
	return s.append(RecordEntry, leaf)
}

// AppendSeal records a sequencing step over everything staged before it.
func (s *Store) AppendSeal(seal SealRecord) (int64, error) {
	return s.append(RecordSeal, EncodeSeal(seal))
}

// AppendSTH records a published tree head.
func (s *Store) AppendSTH(sth STHRecord) (int64, error) {
	return s.append(RecordSTH, EncodeSTH(sth))
}

// AppendUnstage records the rollback of one staged entry.
func (s *Store) AppendUnstage(id [32]byte) (int64, error) {
	return s.append(RecordUnstage, EncodeUnstage(id))
}

// Barrier blocks until every WAL byte below off is durable (group
// commit: concurrent barriers share one fsync).
func (s *Store) Barrier(off int64) error {
	if err := s.Err(); err != nil {
		return err
	}
	if err := s.wal.barrier(off); err != nil {
		return s.fail(err)
	}
	return nil
}

// Sync makes every appended WAL byte durable.
func (s *Store) Sync() error {
	return s.Barrier(s.wal.writeOff.Load())
}

// WALOffset returns the current append position (the offset a snapshot
// taken now should record).
func (s *Store) WALOffset() int64 { return s.wal.writeOff.Load() }

// Replay hands the WAL's valid records from byte offset `from` onward
// to fn, in append order. Offsets outside the valid prefix are
// ErrCorrupt (a snapshot pointing past the WAL means the two files
// disagree). Replay may run more than once — recovery retries from
// genesis when a snapshot proves unusable — so the records are retained
// until the recovery commits: exactly one of CommitRecovery/ResetWAL,
// which truncate the file appropriately and release the records.
func (s *Store) Replay(from int64, fn func(Record) error) error {
	if from < MagicLen {
		from = MagicLen
	}
	if from > s.wal.writeOff.Load() {
		return fmt.Errorf("%w: replay offset %d beyond WAL end %d", ErrCorrupt, from, s.wal.writeOff.Load())
	}
	off := int64(MagicLen)
	for _, rec := range s.wal.records {
		span := int64(recordOverhead + len(rec.Payload))
		if off >= from {
			if err := fn(rec); err != nil {
				return err
			}
		} else if off+span > from {
			// A resume offset inside a record means the snapshot and the
			// WAL were not written by the same history.
			return fmt.Errorf("%w: replay offset %d splits a record", ErrCorrupt, from)
		}
		off += span
	}
	return nil
}

// CommitRecovery finalizes a WAL-based recovery: the bytes past the
// valid prefix (crash debris, or mid-file corruption the caller has
// decided to accept losing) are truncated away so appends continue from
// the last valid record, and the replay records are released. Exactly
// one of CommitRecovery/ResetWAL must run before the first append.
func (s *Store) CommitRecovery() error {
	if err := s.wal.truncateTo(s.wal.writeOff.Load()); err != nil {
		return s.fail(err)
	}
	return nil
}

// ResetWAL discards the entire WAL (truncates to the bare header) and
// releases the replay records. Used when recovery adopts a snapshot
// that covers more history than the surviving WAL: the snapshot is the
// verified state, and a WAL whose prefix ends below the snapshot's
// cursor can never be replayed consistently again.
func (s *Store) ResetWAL() error {
	if err := s.wal.truncateTo(MagicLen); err != nil {
		return s.fail(err)
	}
	return nil
}

// WriteSnapshot atomically replaces the snapshot file.
func (s *Store) WriteSnapshot(snap *Snapshot) error {
	if err := s.Err(); err != nil {
		return err
	}
	if err := WriteFileAtomic(filepath.Join(s.dir, SnapshotName), EncodeSnapshot(snap)); err != nil {
		return s.fail(err)
	}
	return nil
}

// LoadSnapshot reads and validates the snapshot file. It returns
// (nil, nil) when no snapshot exists and ErrCorrupt when one exists but
// fails validation — the caller decides whether to fall back to a full
// WAL replay (the WAL is never compacted, so genesis replay is always
// available).
func (s *Store) LoadSnapshot() (*Snapshot, error) {
	data, err := os.ReadFile(filepath.Join(s.dir, SnapshotName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("storage: reading snapshot: %w", err)
	}
	return DecodeSnapshot(data)
}

// TilesDirName is the sealed-tile subdirectory inside a store directory.
const TilesDirName = "tiles"

// TilePath returns the path of one tile file (ext is a TileExt*
// constant). Tile numbers render as fixed-width hex so lexicographic
// directory order is tile order.
func (s *Store) TilePath(tile uint64, ext string) string {
	return filepath.Join(s.dir, TilesDirName, fmt.Sprintf("%016x.%s", tile, ext))
}

// WriteTile durably writes one sealed tile's three files (each
// atomically: temp + fsync + rename + dirsync). Like the WAL append
// path, a failure is sticky — a tile that may be torn on disk must not
// be built upon.
func (s *Store) WriteTile(tile uint64, leaf, hash, index []byte) error {
	if err := s.Err(); err != nil {
		return err
	}
	for _, f := range []struct {
		ext  string
		data []byte
	}{{TileExtHash, hash}, {TileExtLeaf, leaf}, {TileExtIndex, index}} {
		if err := WriteFileAtomic(s.TilePath(tile, f.ext), f.data); err != nil {
			return s.fail(err)
		}
	}
	return nil
}

// ReadTile reads one tile file's raw bytes. Read failures are not
// sticky: a failed page-in must not poison the write path.
func (s *Store) ReadTile(tile uint64, ext string) ([]byte, error) {
	data, err := os.ReadFile(s.TilePath(tile, ext))
	if err != nil {
		return nil, fmt.Errorf("storage: reading tile %d.%s: %w", tile, ext, err)
	}
	return data, nil
}

// Close closes the store. Further writes fail with ErrClosed.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.wal.close()
}
