package storage

import (
	"errors"
	"sync"
	"testing"
)

func TestPageCacheLRUEviction(t *testing.T) {
	c := NewPageCache(30)
	loads := 0
	get := func(tile uint64) {
		v, err := c.Get(PageKey{Kind: 1, Tile: tile}, func() (any, int64, error) {
			loads++
			return int(tile), 10, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if v.(int) != int(tile) {
			t.Fatalf("wrong value for tile %d", tile)
		}
	}
	get(0)
	get(1)
	get(2) // cache full, LRU order {2,1,0}
	get(0) // refresh 0: {0,2,1}
	get(3) // evicts 1: {3,0,2}
	if loads != 4 {
		t.Fatalf("%d loads before eviction test, want 4", loads)
	}
	get(1) // miss: 1 was the LRU victim
	if loads != 5 {
		t.Fatalf("evicted page served from cache (loads=%d)", loads)
	}
	s := c.Stats()
	if s.Pages != 3 || s.Used != 30 {
		t.Fatalf("stats: %d pages, %d bytes; want 3, 30", s.Pages, s.Used)
	}
	if s.Evictions < 2 {
		t.Fatalf("evictions = %d, want ≥ 2", s.Evictions)
	}
	if s.Hits == 0 || s.Misses != uint64(loads) {
		t.Fatalf("hits=%d misses=%d loads=%d", s.Hits, s.Misses, loads)
	}
}

func TestPageCacheZeroBudgetPassesThrough(t *testing.T) {
	c := NewPageCache(0)
	loads := 0
	for i := 0; i < 3; i++ {
		v, err := c.Get(PageKey{Tile: 7}, func() (any, int64, error) {
			loads++
			return "x", 100, nil
		})
		if err != nil || v.(string) != "x" {
			t.Fatalf("pass-through get failed: %v %v", v, err)
		}
	}
	if loads != 3 {
		t.Fatalf("zero-budget cache retained pages (%d loads)", loads)
	}
	if s := c.Stats(); s.Pages != 0 || s.Used != 0 {
		t.Fatalf("zero-budget cache holds %d pages / %d bytes", s.Pages, s.Used)
	}
}

func TestPageCacheLoadErrorNotCached(t *testing.T) {
	c := NewPageCache(100)
	boom := errors.New("io error")
	if _, err := c.Get(PageKey{Tile: 1}, func() (any, int64, error) {
		return nil, 0, boom
	}); !errors.Is(err, boom) {
		t.Fatalf("got %v, want load error", err)
	}
	ok := false
	if _, err := c.Get(PageKey{Tile: 1}, func() (any, int64, error) {
		ok = true
		return 1, 1, nil
	}); err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("failed load was cached")
	}
}

func TestPageCacheConcurrent(t *testing.T) {
	c := NewPageCache(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tile := uint64(i % 17)
				v, err := c.Get(PageKey{Tile: tile}, func() (any, int64, error) {
					return tile * 3, 64, nil
				})
				if err != nil || v.(uint64) != tile*3 {
					t.Errorf("tile %d: %v %v", tile, v, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if s := c.Stats(); s.Pages != 17 {
		t.Fatalf("%d pages cached, want 17", s.Pages)
	}
}
