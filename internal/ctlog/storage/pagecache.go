package storage

import (
	"container/list"
	"sync"
)

// PageKey identifies one cacheable tile page: the tile number plus a
// caller-chosen kind (leaf / hash / index — the ctlog layer caches the
// parsed form of each file as one page).
type PageKey struct {
	Kind uint8
	Tile uint64
}

// PageCacheStats is a point-in-time snapshot of cache behaviour.
type PageCacheStats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
	Pages     int
	Used      int64
}

// HitRate returns hits/(hits+misses), or 0 with no traffic.
func (s PageCacheStats) HitRate() float64 {
	if s.Hits+s.Misses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Hits+s.Misses)
}

// PageCache is a byte-budget LRU over immutable tile pages. Values are
// opaque; the caller supplies each page's loader and byte charge (the
// on-disk file size — close enough to the parsed footprint, and stable).
// A page larger than the whole budget is served but never retained, so a
// zero (or tiny) budget degrades to a pass-through cache — every read
// goes to disk — rather than breaking reads.
//
// Concurrent misses on the same key may both run the loader; the first
// insert wins and the loser's value is returned to its caller but not
// retained. Pages are immutable, so duplicate loads are a waste, never a
// correctness problem — cheaper than holding the cache lock across IO.
type PageCache struct {
	budget int64

	mu        sync.Mutex
	used      int64
	lru       *list.List // of *cachePage, most recent at front
	pages     map[PageKey]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

type cachePage struct {
	key  PageKey
	val  any
	size int64
}

// NewPageCache returns a cache that retains at most budget bytes of
// pages (by the loader-reported sizes).
func NewPageCache(budget int64) *PageCache {
	return &PageCache{
		budget: budget,
		lru:    list.New(),
		pages:  make(map[PageKey]*list.Element),
	}
}

// Get returns the cached page for key, running load on a miss. load's
// second return is the page's byte charge.
func (c *PageCache) Get(key PageKey, load func() (any, int64, error)) (any, error) {
	c.mu.Lock()
	if el, ok := c.pages[key]; ok {
		c.lru.MoveToFront(el)
		c.hits++
		val := el.Value.(*cachePage).val
		c.mu.Unlock()
		return val, nil
	}
	c.misses++
	c.mu.Unlock()

	val, size, err := load()
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.pages[key]; ok {
		// A concurrent miss inserted first; its page is the canonical one.
		c.lru.MoveToFront(el)
		return el.Value.(*cachePage).val, nil
	}
	if size > c.budget {
		return val, nil
	}
	el := c.lru.PushFront(&cachePage{key: key, val: val, size: size})
	c.pages[key] = el
	c.used += size
	for c.used > c.budget {
		back := c.lru.Back()
		page := back.Value.(*cachePage)
		c.lru.Remove(back)
		delete(c.pages, page.key)
		c.used -= page.size
		c.evictions++
	}
	return val, nil
}

// Stats returns current counters.
func (c *PageCache) Stats() PageCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return PageCacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Pages:     c.lru.Len(),
		Used:      c.used,
	}
}
