package storage

import (
	"bytes"
	"testing"
)

// fuzzSeedWAL builds a representative valid WAL image: entries, a seal,
// an STH, an unstage, and a torn tail variant is derived by the fuzzer.
func fuzzSeedWAL() []byte {
	out := append([]byte(nil), WALMagic...)
	out = AppendRecord(out, RecordEntry, []byte("\x00\x00leaf-one"))
	out = AppendRecord(out, RecordEntry, bytes.Repeat([]byte{0xC3}, 100))
	seal := SealRecord{TreeSize: 2}
	copy(seal.Root[:], bytes.Repeat([]byte{0x01}, 32))
	out = AppendRecord(out, RecordSeal, EncodeSeal(seal))
	sth := STHRecord{Timestamp: 1522540800000, TreeSize: 2, Sig: []byte{4, 3, 0, 8, 1, 2, 3, 4, 5, 6, 7, 8}}
	copy(sth.Root[:], seal.Root[:])
	out = AppendRecord(out, RecordSTH, EncodeSTH(sth))
	var id [32]byte
	id[0] = 0xEE
	out = AppendRecord(out, RecordUnstage, EncodeUnstage(id))
	return out
}

func fuzzSeedSnapshot() []byte {
	snap := &Snapshot{
		Sequenced: [][]byte{[]byte("\x00\x00seq-leaf"), bytes.Repeat([]byte{0x7F}, 64)},
		Staged:    [][]byte{[]byte("\x00\x00staged-leaf")},
		STH:       STHRecord{Timestamp: 9, TreeSize: 2, Sig: []byte{1}},
		WALOffset: 1234,
	}
	copy(snap.Root[:], bytes.Repeat([]byte{0x2B}, 32))
	return EncodeSnapshot(snap)
}

// FuzzWALDecode feeds arbitrary bytes to the WAL decoder and checks its
// invariants: no panic, the valid prefix never exceeds the input, and —
// the round-trip property — re-encoding the decoded records reproduces
// the valid prefix byte for byte, so nothing is invented or dropped
// inside it.
func FuzzWALDecode(f *testing.F) {
	seed := fuzzSeedWAL()
	f.Add(seed)
	f.Add(seed[:len(seed)-3])                             // torn tail
	f.Add(seed[:MagicLen])                                // header only
	f.Add([]byte{})                                       // empty
	f.Add([]byte("CTWAL"))                                // short header
	f.Add(append([]byte("NOTMAGIC"), seed[MagicLen:]...)) // wrong magic
	corrupt := append([]byte(nil), seed...)
	corrupt[MagicLen+9] ^= 0xFF
	f.Add(corrupt) // checksum failure in first record

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, err := DecodeWAL(data)
		if err != nil {
			if len(recs) != 0 || valid != 0 {
				t.Fatalf("error with partial results: %d records, valid=%d", len(recs), valid)
			}
			return
		}
		if valid < MagicLen || valid > len(data) {
			t.Fatalf("valid=%d out of range [%d, %d]", valid, MagicLen, len(data))
		}
		reenc := append([]byte(nil), WALMagic...)
		for _, rec := range recs {
			if len(rec.Payload) > MaxRecordPayload {
				t.Fatalf("oversized payload %d accepted", len(rec.Payload))
			}
			reenc = AppendRecord(reenc, rec.Type, rec.Payload)
		}
		if !bytes.Equal(reenc, data[:valid]) {
			t.Fatalf("round trip mismatch: %d decoded bytes re-encode to %d", valid, len(reenc))
		}
	})
}

// FuzzSnapshotDecode feeds arbitrary bytes to the snapshot decoder and
// checks: no panic, and any accepted snapshot re-encodes to exactly the
// input (snapshots are canonical and tolerate no variation).
func FuzzSnapshotDecode(f *testing.F) {
	seed := fuzzSeedSnapshot()
	f.Add(seed)
	f.Add(seed[:len(seed)-1]) // truncated: must be rejected
	f.Add([]byte{})
	f.Add(append([]byte(nil), SnapshotMagic...))
	empty := EncodeSnapshot(&Snapshot{})
	f.Add(empty)
	f.Add(append(append([]byte(nil), seed...), 0x00)) // trailing byte

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		if got := EncodeSnapshot(snap); !bytes.Equal(got, data) {
			t.Fatalf("accepted snapshot is not canonical: %d bytes re-encode to %d", len(data), len(got))
		}
	})
}
