package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeedWAL builds a representative valid WAL image: entries, a seal,
// an STH, an unstage, and a torn tail variant is derived by the fuzzer.
func fuzzSeedWAL() []byte {
	out := append([]byte(nil), WALMagic...)
	out = AppendRecord(out, RecordEntry, []byte("\x00\x00leaf-one"))
	out = AppendRecord(out, RecordEntry, bytes.Repeat([]byte{0xC3}, 100))
	seal := SealRecord{TreeSize: 2}
	copy(seal.Root[:], bytes.Repeat([]byte{0x01}, 32))
	out = AppendRecord(out, RecordSeal, EncodeSeal(seal))
	sth := STHRecord{Timestamp: 1522540800000, TreeSize: 2, Sig: []byte{4, 3, 0, 8, 1, 2, 3, 4, 5, 6, 7, 8}}
	copy(sth.Root[:], seal.Root[:])
	out = AppendRecord(out, RecordSTH, EncodeSTH(sth))
	var id [32]byte
	id[0] = 0xEE
	out = AppendRecord(out, RecordUnstage, EncodeUnstage(id))
	return out
}

func fuzzSeedSnapshot() []byte {
	snap := &Snapshot{
		Sequenced: [][]byte{[]byte("\x00\x00seq-leaf"), bytes.Repeat([]byte{0x7F}, 64)},
		Staged:    [][]byte{[]byte("\x00\x00staged-leaf")},
		STH:       STHRecord{Timestamp: 9, TreeSize: 2, Sig: []byte{1}},
		WALOffset: 1234,
	}
	copy(snap.Root[:], bytes.Repeat([]byte{0x2B}, 32))
	return EncodeSnapshot(snap)
}

// FuzzWALDecode feeds arbitrary bytes to the WAL decoder and checks its
// invariants: no panic, the valid prefix never exceeds the input, and —
// the round-trip property — re-encoding the decoded records reproduces
// the valid prefix byte for byte, so nothing is invented or dropped
// inside it.
func FuzzWALDecode(f *testing.F) {
	seed := fuzzSeedWAL()
	f.Add(seed)
	f.Add(seed[:len(seed)-3])                             // torn tail
	f.Add(seed[:MagicLen])                                // header only
	f.Add([]byte{})                                       // empty
	f.Add([]byte("CTWAL"))                                // short header
	f.Add(append([]byte("NOTMAGIC"), seed[MagicLen:]...)) // wrong magic
	corrupt := append([]byte(nil), seed...)
	corrupt[MagicLen+9] ^= 0xFF
	f.Add(corrupt) // checksum failure in first record

	f.Fuzz(func(t *testing.T, data []byte) {
		recs, valid, err := DecodeWAL(data)
		if err != nil {
			if len(recs) != 0 || valid != 0 {
				t.Fatalf("error with partial results: %d records, valid=%d", len(recs), valid)
			}
			return
		}
		if valid < MagicLen || valid > len(data) {
			t.Fatalf("valid=%d out of range [%d, %d]", valid, MagicLen, len(data))
		}
		reenc := append([]byte(nil), WALMagic...)
		for _, rec := range recs {
			if len(rec.Payload) > MaxRecordPayload {
				t.Fatalf("oversized payload %d accepted", len(rec.Payload))
			}
			reenc = AppendRecord(reenc, rec.Type, rec.Payload)
		}
		if !bytes.Equal(reenc, data[:valid]) {
			t.Fatalf("round trip mismatch: %d decoded bytes re-encode to %d", valid, len(reenc))
		}
	})
}

// FuzzSnapshotDecode feeds arbitrary bytes to the snapshot decoder and
// checks: no panic, and any accepted snapshot re-encodes to exactly the
// input (snapshots are canonical and tolerate no variation).
func FuzzSnapshotDecode(f *testing.F) {
	seed := fuzzSeedSnapshot()
	f.Add(seed)
	f.Add(seed[:len(seed)-1]) // truncated: must be rejected
	f.Add([]byte{})
	f.Add(append([]byte(nil), SnapshotMagic...))
	empty := EncodeSnapshot(&Snapshot{})
	f.Add(empty)
	f.Add(append(append([]byte(nil), seed...), 0x00)) // trailing byte

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := DecodeSnapshot(data)
		if err != nil {
			return
		}
		if got := EncodeSnapshot(snap); !bytes.Equal(got, data) {
			t.Fatalf("accepted snapshot is not canonical: %d bytes re-encode to %d", len(data), len(got))
		}
	})
}

// fuzzSeedTiles builds one valid image of each tile file kind.
func fuzzSeedTiles() (leaf, hash, index []byte) {
	leaves, leafHashes, idHashes := tileTestLeaves(4)
	lt := &LeafTile{Tile: 5, Span: 4, Leaves: leaves}
	ht, err := BuildHashTile(5, leafHashes)
	if err != nil {
		panic(err)
	}
	ix := BuildTileIndex(5, 20, idHashes, leafHashes)
	return EncodeLeafTile(lt), EncodeHashTile(ht), EncodeTileIndex(ix)
}

// FuzzTileDecode feeds arbitrary bytes to all three tile decoders and
// checks their invariants: no panic, and any accepted tile re-encodes to
// exactly the input (tile files are canonical and tolerate no
// variation). The magics are disjoint, so at most one decoder can accept
// a given input.
func FuzzTileDecode(f *testing.F) {
	leaf, hash, index := fuzzSeedTiles()
	f.Add(leaf)
	f.Add(hash)
	f.Add(index)
	f.Add(leaf[:len(leaf)-1]) // truncated: must be rejected
	f.Add([]byte{})
	f.Add(append([]byte(nil), TileHashMagic...))
	corrupt := append([]byte(nil), hash...)
	corrupt[len(corrupt)/2] ^= 0x10 // interior node no longer hashes from children
	f.Add(corrupt)
	f.Add(append(append([]byte(nil), index...), 0x00)) // trailing byte

	f.Fuzz(func(t *testing.T, data []byte) {
		if lt, err := DecodeLeafTile(data); err == nil {
			if got := EncodeLeafTile(lt); !bytes.Equal(got, data) {
				t.Fatalf("accepted leaf tile is not canonical: %d bytes re-encode to %d", len(data), len(got))
			}
		}
		if ht, err := DecodeHashTile(data); err == nil {
			if got := EncodeHashTile(ht); !bytes.Equal(got, data) {
				t.Fatalf("accepted hash tile is not canonical: %d bytes re-encode to %d", len(data), len(got))
			}
		}
		if ix, err := DecodeTileIndex(data); err == nil {
			if got := EncodeTileIndex(ix); !bytes.Equal(got, data) {
				t.Fatalf("accepted index tile is not canonical: %d bytes re-encode to %d", len(data), len(got))
			}
		}
	})
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus under
// testdata/fuzz when UPDATE_FUZZ_CORPUS=1 — run it after any format
// change so the committed seeds stay valid images of the current
// version. The files use the standard go-fuzz corpus encoding.
func TestWriteFuzzCorpus(t *testing.T) {
	if os.Getenv("UPDATE_FUZZ_CORPUS") == "" {
		t.Skip("set UPDATE_FUZZ_CORPUS=1 to rewrite testdata/fuzz seeds")
	}
	write := func(target, name string, data []byte) {
		dir := filepath.Join("testdata", "fuzz", target)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", data)
		if err := os.WriteFile(filepath.Join(dir, name), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	snap := fuzzSeedSnapshot()
	write("FuzzSnapshotDecode", "valid_snapshot", snap)
	write("FuzzSnapshotDecode", "truncated_snapshot", snap[:len(snap)-1])
	write("FuzzSnapshotDecode", "trailing_byte", append(append([]byte(nil), snap...), 0x00))
	tiledSnap := fuzzSeedTiledSnapshot()
	write("FuzzSnapshotDecode", "tiled_snapshot", tiledSnap)
	leaf, hash, index := fuzzSeedTiles()
	write("FuzzTileDecode", "valid_leaf_tile", leaf)
	write("FuzzTileDecode", "valid_hash_tile", hash)
	write("FuzzTileDecode", "valid_index_tile", index)
	write("FuzzTileDecode", "truncated_leaf_tile", leaf[:len(leaf)-1])
	corrupt := append([]byte(nil), hash...)
	corrupt[len(corrupt)/2] ^= 0x10
	write("FuzzTileDecode", "corrupt_hash_tile", corrupt)
}

// fuzzSeedTiledSnapshot builds a valid v2 snapshot that references a
// sealed tile.
func fuzzSeedTiledSnapshot() []byte {
	_, leafHashes, _ := tileTestLeaves(4)
	ht, err := BuildHashTile(0, leafHashes)
	if err != nil {
		panic(err)
	}
	snap := &Snapshot{
		Sequenced:    [][]byte{[]byte("\x00\x00tail-leaf")},
		Staged:       [][]byte{[]byte("\x00\x00staged-leaf")},
		STH:          STHRecord{Timestamp: 9, TreeSize: 5, Sig: []byte{1}},
		WALOffset:    1234,
		TiledThrough: 4,
		TileSpan:     4,
		TileRoots:    [][32]byte{ht.Root()},
	}
	copy(snap.Root[:], bytes.Repeat([]byte{0x2B}, 32))
	return EncodeSnapshot(snap)
}
