package storage

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"reflect"
	"testing"

	"ctrise/internal/merkle"
)

// tileTestLeaves builds span deterministic fake MerkleTreeLeaf byte
// strings and their hashes.
func tileTestLeaves(span int) (leaves [][]byte, leafHashes, idHashes [][32]byte) {
	for i := 0; i < span; i++ {
		leaf := []byte(fmt.Sprintf("\x00\x00tile-leaf-%03d", i))
		leaves = append(leaves, leaf)
		leafHashes = append(leafHashes, [32]byte(merkle.HashLeaf(leaf)))
		idHashes = append(idHashes, sha256.Sum256(leaf))
	}
	return
}

func TestLeafTileRoundTrip(t *testing.T) {
	leaves, _, _ := tileTestLeaves(8)
	tile := &LeafTile{Tile: 42, Span: 8, Leaves: leaves}
	enc := EncodeLeafTile(tile)
	dec, err := DecodeLeafTile(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Tile != 42 || dec.Span != 8 || !reflect.DeepEqual(dec.Leaves, leaves) {
		t.Fatal("leaf tile round trip mismatch")
	}
	if got := EncodeLeafTile(dec); !bytes.Equal(got, enc) {
		t.Fatal("leaf tile encoding is not canonical")
	}
	// A leaf tile must hold exactly span entries.
	short := &LeafTile{Tile: 42, Span: 8, Leaves: leaves[:7]}
	if _, err := DecodeLeafTile(EncodeLeafTile(short)); err == nil {
		t.Fatal("leaf tile with missing entry decoded")
	}
}

func TestHashTileBuildVerifyAndCorruption(t *testing.T) {
	const span = 8
	leaves, leafHashes, _ := tileTestLeaves(span)
	ht, err := BuildHashTile(3, leafHashes)
	if err != nil {
		t.Fatal(err)
	}
	// The tile root must equal the reference tree's subtree root.
	ref := merkle.New()
	for _, l := range leaves {
		ref.AppendData(l)
	}
	if want := ref.Root(); ht.Root() != [32]byte(want) {
		t.Fatal("hash tile root differs from reference merkle root")
	}
	enc := EncodeHashTile(ht)
	dec, err := DecodeHashTile(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Root() != ht.Root() || len(dec.Levels) != len(ht.Levels) {
		t.Fatal("hash tile round trip mismatch")
	}
	if got := EncodeHashTile(dec); !bytes.Equal(got, enc) {
		t.Fatal("hash tile encoding is not canonical")
	}
	// Every single flipped byte anywhere in the image must be detected:
	// either by a record CRC or by the parent-from-children recompute.
	for off := 0; off < len(enc); off++ {
		mut := append([]byte(nil), enc...)
		mut[off] ^= 0x01
		if _, err := DecodeHashTile(mut); err == nil {
			t.Fatalf("flipped byte at offset %d went undetected", off)
		}
	}
	if _, err := BuildHashTile(0, leafHashes[:3]); err == nil {
		t.Fatal("BuildHashTile accepted a non-power-of-two span")
	}
}

func TestTileIndexSearchAndValidation(t *testing.T) {
	const span = 16
	_, leafHashes, idHashes := tileTestLeaves(span)
	ix := BuildTileIndex(7, 7*span, idHashes, leafHashes)
	enc := EncodeTileIndex(ix)
	dec, err := DecodeTileIndex(enc)
	if err != nil {
		t.Fatal(err)
	}
	if got := EncodeTileIndex(dec); !bytes.Equal(got, enc) {
		t.Fatal("index tile encoding is not canonical")
	}
	for i, h := range idHashes {
		if !dec.IDBloom.Test(h) {
			t.Fatalf("bloom false negative for id hash %d", i)
		}
		idx, ok := SearchIndexRows(dec.ID, h)
		if !ok || idx != uint64(7*span+i) {
			t.Fatalf("id row %d: got (%d, %v)", i, idx, ok)
		}
	}
	for i, h := range leafHashes {
		if !dec.LeafBloom.Test(h) {
			t.Fatalf("bloom false negative for leaf hash %d", i)
		}
		idx, ok := SearchIndexRows(dec.Leaf, h)
		if !ok || idx != uint64(7*span+i) {
			t.Fatalf("leaf row %d: got (%d, %v)", i, idx, ok)
		}
	}
	var absent [32]byte
	absent[0] = 0xAB
	if _, ok := SearchIndexRows(dec.ID, absent); ok {
		t.Fatal("found an absent hash")
	}

	// Out-of-order rows must be rejected: swap two sorted rows and
	// re-encode by hand.
	broken := *ix
	broken.ID = append([]IndexRow(nil), ix.ID...)
	broken.ID[0], broken.ID[1] = broken.ID[1], broken.ID[0]
	if _, err := DecodeTileIndex(EncodeTileIndex(&broken)); err == nil {
		t.Fatal("unsorted index rows decoded")
	}
}

func TestBloomSizing(t *testing.T) {
	b := NewBloom(1024)
	if got := len(b.Bits) * 8; got != 16384 {
		t.Fatalf("bloom for 1024 keys has %d bits, want 16384", got)
	}
	// False-positive spot check: fill with n keys, probe 10n others; at
	// ~16 bits/key, k=4, the FP rate is ≈0.24% — allow 1.5%.
	n := 1024
	b = NewBloom(n)
	key := func(i int) [32]byte {
		var h [32]byte
		sum := sha256.Sum256(binary.BigEndian.AppendUint64(nil, uint64(i)))
		copy(h[:], sum[:])
		return h
	}
	for i := 0; i < n; i++ {
		b.Add(key(i))
	}
	fp := 0
	for i := n; i < 11*n; i++ {
		if b.Test(key(i)) {
			fp++
		}
	}
	if fp > 10*n*15/1000 {
		t.Fatalf("%d false positives in %d probes", fp, 10*n)
	}
}

func TestStoreWriteReadTile(t *testing.T) {
	st, err := Open(t.TempDir() + "/log")
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	leaves, leafHashes, idHashes := tileTestLeaves(4)
	ht, _ := BuildHashTile(0, leafHashes)
	lt := &LeafTile{Tile: 0, Span: 4, Leaves: leaves}
	ix := BuildTileIndex(0, 0, idHashes, leafHashes)
	if err := st.WriteTile(0, EncodeLeafTile(lt), EncodeHashTile(ht), EncodeTileIndex(ix)); err != nil {
		t.Fatal(err)
	}
	for _, ext := range []string{TileExtLeaf, TileExtHash, TileExtIndex} {
		data, err := st.ReadTile(0, ext)
		if err != nil {
			t.Fatalf("reading %s: %v", ext, err)
		}
		if len(data) == 0 {
			t.Fatalf("empty %s tile", ext)
		}
	}
	got, err := st.ReadTile(0, TileExtHash)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeHashTile(got)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Root() != ht.Root() {
		t.Fatal("tile root changed across store round trip")
	}
	// Reading a tile that does not exist is an error, not sticky failure.
	if _, err := st.ReadTile(99, TileExtLeaf); err == nil {
		t.Fatal("read of missing tile succeeded")
	}
	if err := st.Err(); err != nil {
		t.Fatalf("read failure poisoned the store: %v", err)
	}
}

func TestSnapshotV2TileFields(t *testing.T) {
	_, leafHashes, _ := tileTestLeaves(4)
	ht, _ := BuildHashTile(0, leafHashes)
	snap := &Snapshot{
		Sequenced:    [][]byte{[]byte("\x00\x00tail-leaf")},
		STH:          STHRecord{Timestamp: 9, TreeSize: 5, Sig: []byte{1}},
		WALOffset:    MagicLen,
		TiledThrough: 4,
		TileSpan:     4,
		TileRoots:    [][32]byte{ht.Root()},
	}
	if snap.TreeSize() != 5 {
		t.Fatalf("TreeSize = %d, want 5", snap.TreeSize())
	}
	dec, err := DecodeSnapshot(EncodeSnapshot(snap))
	if err != nil {
		t.Fatal(err)
	}
	if dec.TiledThrough != 4 || dec.TileSpan != 4 || len(dec.TileRoots) != 1 || dec.TileRoots[0] != ht.Root() {
		t.Fatal("snapshot tile fields did not round trip")
	}
	if !bytes.Equal(EncodeSnapshot(dec), EncodeSnapshot(snap)) {
		t.Fatal("snapshot encoding is not canonical")
	}

	// Structural validation: misaligned tiled-through, bad span, and a
	// root-count mismatch are all ErrCorrupt.
	for _, mutate := range []func(*Snapshot){
		func(s *Snapshot) { s.TiledThrough = 3 },
		func(s *Snapshot) { s.TileSpan = 3 },
		func(s *Snapshot) { s.TileSpan = 0 },
		func(s *Snapshot) { s.TileRoots = nil },
	} {
		bad := *snap
		mutate(&bad)
		if _, err := DecodeSnapshot(EncodeSnapshot(&bad)); err == nil {
			t.Fatal("structurally invalid snapshot decoded")
		}
	}
}
