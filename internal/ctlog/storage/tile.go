package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"

	"ctrise/internal/merkle"
	"ctrise/internal/tlsenc"
)

// Tile files. A sealed tile is one span-aligned run of sequenced entries
// rendered as three immutable files, each carried by the same framed
// record codec as the WAL and snapshots (CRC32C per record, magic +
// version header, written via WriteFileAtomic):
//
//	NNNNNNNNNNNNNNNN.leaf  — the MerkleTreeLeaf bytes of each entry
//	NNNNNNNNNNNNNNNN.hash  — every Merkle level of the tile's subtree,
//	                         leaves up to the single tile root
//	NNNNNNNNNNNNNNNN.idx   — bloom filters + sorted (hash, index) rows
//	                         for identity-hash dedupe and
//	                         leaf-hash → index lookups
//
// where NNNNNNNNNNNNNNNN is the zero-padded hex tile number, so
// lexicographic directory order is tile order. Decoders are strict
// (whole-file, no trailing bytes) and self-verifying: a hash tile
// recomputes every parent level from its children, so a decoded tile
// that passes validation is internally consistent and its Root() is the
// root actually implied by its leaf hashes.

// Tile file magics. 8 bytes, same shape as the WAL/snapshot magics.
var (
	TileLeafMagic  = []byte{'C', 'T', 'T', 'L', 'F', 0, 0, 1}
	TileHashMagic  = []byte{'C', 'T', 'T', 'H', 'S', 0, 0, 1}
	TileIndexMagic = []byte{'C', 'T', 'T', 'I', 'X', 0, 0, 1}
)

// Tile record types. Values are part of the on-disk format; never reuse.
const (
	// RecordTileMeta heads every tile file: tile number and span.
	RecordTileMeta RecordType = 32
	// RecordTileLevel carries one Merkle level of a hash tile:
	// level byte, then span>>level node hashes.
	RecordTileLevel RecordType = 33
	// RecordTileBloom carries one bloom filter of an index tile:
	// which byte (TileIndexID / TileIndexLeaf), hash count k, bit array.
	RecordTileBloom RecordType = 34
	// RecordTileRows carries one sorted (hash, index) array of an index
	// tile: which byte, then span rows of 32-byte hash + 8-byte index.
	RecordTileRows RecordType = 35
)

// Index kinds inside an index tile.
const (
	// TileIndexID indexes entries by identity hash (dedupe).
	TileIndexID = 0
	// TileIndexLeaf indexes entries by Merkle leaf hash (proof-by-hash).
	TileIndexLeaf = 1
)

// TileExt* name the three files of a sealed tile.
const (
	TileExtLeaf  = "leaf"
	TileExtHash  = "hash"
	TileExtIndex = "idx"
)

// validTileSpan reports whether span is a power of two ≥ 2 (the same
// constraint merkle.NewTiled enforces).
func validTileSpan(span uint64) bool {
	return span >= 2 && span&(span-1) == 0
}

// encodeTileMeta builds the meta payload shared by all three tile files.
func encodeTileMeta(tile, span uint64) []byte {
	b := tlsenc.NewBuilder(16)
	b.AddUint64(tile)
	b.AddUint64(span)
	return b.MustBytes()
}

// decodeTileHeader validates a tile file's magic and meta record and
// returns tile, span, and the offset past the meta record.
func decodeTileHeader(data, magic []byte) (tile, span uint64, off int, err error) {
	if len(data) < MagicLen {
		return 0, 0, 0, fmt.Errorf("%w: short tile header", ErrCorrupt)
	}
	if !bytes.Equal(data[:MagicLen], magic) {
		return 0, 0, 0, fmt.Errorf("%w: bad tile magic", ErrCorrupt)
	}
	rec, n, err := ReadRecord(data[MagicLen:])
	if err != nil {
		return 0, 0, 0, err
	}
	if rec.Type != RecordTileMeta {
		return 0, 0, 0, fmt.Errorf("%w: tile file starts with record type %d", ErrCorrupt, rec.Type)
	}
	r := tlsenc.NewReader(rec.Payload)
	tile = r.Uint64()
	span = r.Uint64()
	if err := r.ExpectEmpty(); err != nil {
		return 0, 0, 0, fmt.Errorf("%w: tile meta: %v", ErrCorrupt, err)
	}
	if !validTileSpan(span) {
		return 0, 0, 0, fmt.Errorf("%w: tile span %d is not a power of two ≥ 2", ErrCorrupt, span)
	}
	return tile, span, MagicLen + n, nil
}

// LeafTile is the decoded form of a .leaf file: the MerkleTreeLeaf bytes
// of entries [Tile*Span, (Tile+1)*Span).
type LeafTile struct {
	Tile   uint64
	Span   uint64
	Leaves [][]byte
}

// EncodeLeafTile renders a leaf tile file image. Encoding is canonical.
func EncodeLeafTile(t *LeafTile) []byte {
	size := MagicLen + recordOverhead*(1+len(t.Leaves)) + 16
	for _, l := range t.Leaves {
		size += len(l)
	}
	out := make([]byte, 0, size)
	out = append(out, TileLeafMagic...)
	out = AppendRecord(out, RecordTileMeta, encodeTileMeta(t.Tile, t.Span))
	for _, l := range t.Leaves {
		out = AppendRecord(out, RecordEntry, l)
	}
	return out
}

// DecodeLeafTile parses and validates a leaf tile image: exactly span
// entry records, nothing else. Returned leaf slices alias data.
func DecodeLeafTile(data []byte) (*LeafTile, error) {
	tile, span, off, err := decodeTileHeader(data, TileLeafMagic)
	if err != nil {
		return nil, err
	}
	if span > uint64(len(data))/recordOverhead+1 {
		return nil, fmt.Errorf("%w: leaf tile claims %d entries in %d bytes", ErrCorrupt, span, len(data))
	}
	t := &LeafTile{Tile: tile, Span: span, Leaves: make([][]byte, 0, span)}
	for i := uint64(0); i < span; i++ {
		rec, n, err := ReadRecord(data[off:])
		if err != nil {
			return nil, err
		}
		if rec.Type != RecordEntry {
			return nil, fmt.Errorf("%w: leaf tile entry %d has record type %d", ErrCorrupt, i, rec.Type)
		}
		t.Leaves = append(t.Leaves, rec.Payload)
		off += n
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes after leaf tile", ErrCorrupt, len(data)-off)
	}
	return t, nil
}

// HashTile is the decoded form of a .hash file: every Merkle level of
// one tile's perfect subtree. Levels[l] holds the span>>l nodes of level
// l, from the leaf hashes (l = 0) up to the single tile root
// (l = log2(span)). This is exactly the slab of nodes merkle.TiledTree
// prunes from RAM when the tile seals.
type HashTile struct {
	Tile   uint64
	Span   uint64
	Levels [][][32]byte
}

// Root returns the tile's subtree root (the top level's only node).
func (t *HashTile) Root() [32]byte {
	return t.Levels[len(t.Levels)-1][0]
}

// BuildHashTile computes all levels of a tile's subtree from its leaf
// hashes (len(leafHashes) must be a valid span).
func BuildHashTile(tile uint64, leafHashes [][32]byte) (*HashTile, error) {
	span := uint64(len(leafHashes))
	if !validTileSpan(span) {
		return nil, fmt.Errorf("storage: building hash tile over %d leaves", span)
	}
	depth := bits.TrailingZeros64(span)
	t := &HashTile{Tile: tile, Span: span, Levels: make([][][32]byte, depth+1)}
	t.Levels[0] = leafHashes
	for l := 1; l <= depth; l++ {
		below := t.Levels[l-1]
		level := make([][32]byte, len(below)/2)
		for i := range level {
			level[i] = [32]byte(merkle.HashChildren(merkle.Hash(below[2*i]), merkle.Hash(below[2*i+1])))
		}
		t.Levels[l] = level
	}
	return t, nil
}

// EncodeHashTile renders a hash tile file image. Encoding is canonical.
func EncodeHashTile(t *HashTile) []byte {
	size := MagicLen + recordOverhead*(1+len(t.Levels)) + 16
	for _, lvl := range t.Levels {
		size += 1 + 32*len(lvl)
	}
	out := make([]byte, 0, size)
	out = append(out, TileHashMagic...)
	out = AppendRecord(out, RecordTileMeta, encodeTileMeta(t.Tile, t.Span))
	for l, lvl := range t.Levels {
		payload := make([]byte, 1, 1+32*len(lvl))
		payload[0] = byte(l)
		for _, h := range lvl {
			payload = append(payload, h[:]...)
		}
		out = AppendRecord(out, RecordTileLevel, payload)
	}
	return out
}

// DecodeHashTile parses and validates a hash tile image. Beyond the
// structural checks, every parent level is recomputed from its children:
// a decoded HashTile is guaranteed internally consistent, so verifying
// its Root() against the tree verifies every node in the file.
func DecodeHashTile(data []byte) (*HashTile, error) {
	tile, span, off, err := decodeTileHeader(data, TileHashMagic)
	if err != nil {
		return nil, err
	}
	depth := bits.TrailingZeros64(span)
	t := &HashTile{Tile: tile, Span: span, Levels: make([][][32]byte, 0, depth+1)}
	for l := 0; l <= depth; l++ {
		rec, n, err := ReadRecord(data[off:])
		if err != nil {
			return nil, err
		}
		if rec.Type != RecordTileLevel {
			return nil, fmt.Errorf("%w: hash tile level %d has record type %d", ErrCorrupt, l, rec.Type)
		}
		want := span >> uint(l)
		if len(rec.Payload) != 1+int(want)*32 {
			return nil, fmt.Errorf("%w: hash tile level %d payload is %d bytes, want %d", ErrCorrupt, l, len(rec.Payload), 1+want*32)
		}
		if int(rec.Payload[0]) != l {
			return nil, fmt.Errorf("%w: hash tile level %d labeled %d", ErrCorrupt, l, rec.Payload[0])
		}
		level := make([][32]byte, want)
		for i := range level {
			copy(level[i][:], rec.Payload[1+32*i:])
		}
		t.Levels = append(t.Levels, level)
		off += n
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes after hash tile", ErrCorrupt, len(data)-off)
	}
	for l := 1; l <= depth; l++ {
		below, level := t.Levels[l-1], t.Levels[l]
		for i := range level {
			if want := [32]byte(merkle.HashChildren(merkle.Hash(below[2*i]), merkle.Hash(below[2*i+1]))); level[i] != want {
				return nil, fmt.Errorf("%w: hash tile node (level %d, pos %d) does not hash from its children", ErrCorrupt, l, i)
			}
		}
	}
	return t, nil
}

// IndexRow maps one 32-byte hash to the absolute entry index it belongs
// to. Rows in an index tile are sorted by hash for binary search.
type IndexRow struct {
	Hash  [32]byte
	Index uint64
}

// TileIndex is the decoded form of an .idx file: for one sealed tile,
// bloom-fronted sorted indexes by identity hash (dedupe) and by Merkle
// leaf hash (get-proof-by-hash). The blooms are small enough (~2 bytes
// per entry each) to stay resident for every sealed tile; the row arrays
// are only paged in when a bloom reports a possible hit.
type TileIndex struct {
	Tile      uint64
	Span      uint64
	IDBloom   Bloom
	LeafBloom Bloom
	ID        []IndexRow
	Leaf      []IndexRow
}

// BuildTileIndex constructs the index for one tile: row i of each input
// is the hash of absolute entry firstIndex+i. Rows are sorted and the
// blooms populated here so encoding stays canonical.
func BuildTileIndex(tile uint64, firstIndex uint64, idHashes, leafHashes [][32]byte) *TileIndex {
	mk := func(hashes [][32]byte) ([]IndexRow, Bloom) {
		rows := make([]IndexRow, len(hashes))
		bloom := NewBloom(len(hashes))
		for i, h := range hashes {
			rows[i] = IndexRow{Hash: h, Index: firstIndex + uint64(i)}
			bloom.Add(h)
		}
		sort.Slice(rows, func(a, b int) bool {
			c := bytes.Compare(rows[a].Hash[:], rows[b].Hash[:])
			if c != 0 {
				return c < 0
			}
			return rows[a].Index < rows[b].Index
		})
		return rows, bloom
	}
	ix := &TileIndex{Tile: tile, Span: uint64(len(idHashes))}
	ix.ID, ix.IDBloom = mk(idHashes)
	ix.Leaf, ix.LeafBloom = mk(leafHashes)
	return ix
}

// SearchIndexRows binary-searches sorted rows for hash h, returning the
// entry index of the first match.
func SearchIndexRows(rows []IndexRow, h [32]byte) (uint64, bool) {
	i := sort.Search(len(rows), func(i int) bool {
		return bytes.Compare(rows[i].Hash[:], h[:]) >= 0
	})
	if i < len(rows) && rows[i].Hash == h {
		return rows[i].Index, true
	}
	return 0, false
}

func encodeRows(which byte, rows []IndexRow) []byte {
	payload := make([]byte, 1, 1+40*len(rows))
	payload[0] = which
	for _, r := range rows {
		payload = append(payload, r.Hash[:]...)
		payload = binary.BigEndian.AppendUint64(payload, r.Index)
	}
	return payload
}

func decodeRows(which byte, span uint64, payload []byte) ([]IndexRow, error) {
	if len(payload) != 1+int(span)*40 {
		return nil, fmt.Errorf("%w: index rows payload is %d bytes, want %d", ErrCorrupt, len(payload), 1+span*40)
	}
	if payload[0] != which {
		return nil, fmt.Errorf("%w: index rows labeled %d, want %d", ErrCorrupt, payload[0], which)
	}
	rows := make([]IndexRow, span)
	for i := range rows {
		p := payload[1+40*i:]
		copy(rows[i].Hash[:], p)
		rows[i].Index = binary.BigEndian.Uint64(p[32:])
		if i > 0 {
			if c := bytes.Compare(rows[i-1].Hash[:], rows[i].Hash[:]); c > 0 || (c == 0 && rows[i-1].Index >= rows[i].Index) {
				return nil, fmt.Errorf("%w: index rows out of order at %d", ErrCorrupt, i)
			}
		}
	}
	return rows, nil
}

// EncodeTileIndex renders an index tile file image. Encoding is
// canonical.
func EncodeTileIndex(ix *TileIndex) []byte {
	out := make([]byte, 0, MagicLen+16+2*(len(ix.IDBloom.Bits)+4)+80*len(ix.ID)+recordOverhead*5)
	out = append(out, TileIndexMagic...)
	out = AppendRecord(out, RecordTileMeta, encodeTileMeta(ix.Tile, ix.Span))
	out = AppendRecord(out, RecordTileBloom, encodeBloom(TileIndexID, ix.IDBloom))
	out = AppendRecord(out, RecordTileRows, encodeRows(TileIndexID, ix.ID))
	out = AppendRecord(out, RecordTileBloom, encodeBloom(TileIndexLeaf, ix.LeafBloom))
	out = AppendRecord(out, RecordTileRows, encodeRows(TileIndexLeaf, ix.Leaf))
	return out
}

// DecodeTileIndex parses and validates an index tile image: both blooms,
// both sorted row arrays (span rows each, order verified), no trailing
// bytes.
func DecodeTileIndex(data []byte) (*TileIndex, error) {
	tile, span, off, err := decodeTileHeader(data, TileIndexMagic)
	if err != nil {
		return nil, err
	}
	if span > uint64(len(data))/40 {
		return nil, fmt.Errorf("%w: index tile claims %d rows in %d bytes", ErrCorrupt, span, len(data))
	}
	ix := &TileIndex{Tile: tile, Span: span}
	next := func(typ RecordType) (Record, error) {
		rec, n, err := ReadRecord(data[off:])
		if err != nil {
			return Record{}, err
		}
		if rec.Type != typ {
			return Record{}, fmt.Errorf("%w: index tile has record type %d, want %d", ErrCorrupt, rec.Type, typ)
		}
		off += n
		return rec, nil
	}
	for _, part := range []struct {
		which byte
		bloom *Bloom
		rows  *[]IndexRow
	}{{TileIndexID, &ix.IDBloom, &ix.ID}, {TileIndexLeaf, &ix.LeafBloom, &ix.Leaf}} {
		rec, err := next(RecordTileBloom)
		if err != nil {
			return nil, err
		}
		if *part.bloom, err = decodeBloom(part.which, rec.Payload); err != nil {
			return nil, err
		}
		if rec, err = next(RecordTileRows); err != nil {
			return nil, err
		}
		if *part.rows, err = decodeRows(part.which, span, rec.Payload); err != nil {
			return nil, err
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes after index tile", ErrCorrupt, len(data)-off)
	}
	return ix, nil
}

// Bloom is a fixed-size bloom filter over 32-byte hashes. The probe
// positions are carved directly out of the (already uniform) hash bytes,
// so Test costs K masked loads and no extra hashing. Sized at ~16 bits
// per key with K=4 the false-positive rate is ≈0.24%: a dedupe miss
// costs one needless index-tile page-in per ~400 lookups.
type Bloom struct {
	K    int
	Bits []byte
}

// NewBloom returns an empty bloom sized for n keys: the bit count is the
// next power of two ≥ 16n (so probe masking is a single AND), K = 4.
func NewBloom(n int) Bloom {
	m := uint64(64)
	for m < uint64(n)*16 {
		m *= 2
	}
	return Bloom{K: 4, Bits: make([]byte, m/8)}
}

func (b Bloom) positions(h [32]byte) [8]uint32 {
	var pos [8]uint32
	mask := uint32(len(b.Bits)*8 - 1)
	for i := 0; i < b.K && i < 8; i++ {
		pos[i] = binary.BigEndian.Uint32(h[4*i:]) & mask
	}
	return pos
}

// Add inserts h.
func (b Bloom) Add(h [32]byte) {
	pos := b.positions(h)
	for i := 0; i < b.K; i++ {
		b.Bits[pos[i]/8] |= 1 << (pos[i] % 8)
	}
}

// Test reports whether h may have been added (false positives possible,
// false negatives not).
func (b Bloom) Test(h [32]byte) bool {
	if len(b.Bits) == 0 {
		return false
	}
	pos := b.positions(h)
	for i := 0; i < b.K; i++ {
		if b.Bits[pos[i]/8]&(1<<(pos[i]%8)) == 0 {
			return false
		}
	}
	return true
}

func encodeBloom(which byte, b Bloom) []byte {
	out := make([]byte, 2, 2+len(b.Bits))
	out[0] = which
	out[1] = byte(b.K)
	return append(out, b.Bits...)
}

func decodeBloom(which byte, payload []byte) (Bloom, error) {
	if len(payload) < 2 {
		return Bloom{}, fmt.Errorf("%w: short bloom payload", ErrCorrupt)
	}
	if payload[0] != which {
		return Bloom{}, fmt.Errorf("%w: bloom labeled %d, want %d", ErrCorrupt, payload[0], which)
	}
	k := int(payload[1])
	bits := payload[2:]
	if k < 1 || k > 8 {
		return Bloom{}, fmt.Errorf("%w: bloom k=%d outside [1,8]", ErrCorrupt, k)
	}
	if n := len(bits); n == 0 || n&(n-1) != 0 {
		return Bloom{}, fmt.Errorf("%w: bloom bit array of %d bytes is not a power of two", ErrCorrupt, n)
	}
	out := Bloom{K: k, Bits: make([]byte, len(bits))}
	copy(out.Bits, bits)
	return out, nil
}
