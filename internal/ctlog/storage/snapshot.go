package storage

import (
	"fmt"
	"os"
	"path/filepath"

	"ctrise/internal/tlsenc"
)

// SnapshotName is the snapshot's file name inside a store directory.
const SnapshotName = "snapshot.ct"

// Snapshot is a full durable image of a log's state at one instant: the
// sequenced tail entries in tree order (entries before TiledThrough live
// in sealed tile files and are represented here only by their tile
// roots), the pending staged batch in staging order, the tree size and
// root for integrity verification, the published STH with its original
// signature bytes, and the WAL offset from which replay resumes.
// Loading a snapshot and replaying the WAL tail from WALOffset
// reconstructs byte-identical log state; the tile files are consulted
// lazily, on first read of a sealed entry or proof node.
type Snapshot struct {
	// Sequenced holds the MerkleTreeLeaf bytes of the unsealed tail:
	// entries TiledThrough..TreeSize()-1.
	Sequenced [][]byte
	// Staged holds the leaf bytes of accepted-but-unsequenced entries,
	// in staging order.
	Staged [][]byte
	// Root is the Merkle root over the whole tree (sealed tiles plus
	// Sequenced); loaders must verify it.
	Root [32]byte
	// STH is the published tree head at snapshot time. It may trail the
	// tree (publication lags sequencing by up to the MMD).
	STH STHRecord
	// WALOffset is the WAL byte offset covering everything in this
	// snapshot; replay resumes there.
	WALOffset uint64
	// TiledThrough is the span-aligned count of entries sealed into tile
	// files; 0 when nothing is tiled. TileSpan is the per-tile entry
	// count (0 only when the log has never been tiled), and TileRoots
	// holds the TiledThrough/TileSpan sealed tile subtree roots in tile
	// order.
	TiledThrough uint64
	TileSpan     uint64
	TileRoots    [][32]byte
}

// TreeSize returns the sequenced entry count the snapshot covers:
// sealed tiles plus the in-snapshot tail.
func (s *Snapshot) TreeSize() uint64 { return s.TiledThrough + uint64(len(s.Sequenced)) }

// EncodeSnapshot renders a snapshot file image: magic, meta record,
// tile-roots record, entry records (tail then staged), and the STH
// record. Encoding is canonical — the same snapshot always produces the
// same bytes.
func EncodeSnapshot(s *Snapshot) []byte {
	b := tlsenc.NewBuilder(8 + 8 + 8 + 32 + 8 + 8)
	b.AddUint64(uint64(len(s.Sequenced)))
	b.AddUint64(uint64(len(s.Staged)))
	b.AddUint64(s.WALOffset)
	b.AddBytes(s.Root[:])
	b.AddUint64(s.TiledThrough)
	b.AddUint64(s.TileSpan)
	size := MagicLen + recordOverhead*(3+len(s.Sequenced)+len(s.Staged)) + 32*len(s.TileRoots)
	for _, e := range s.Sequenced {
		size += len(e)
	}
	for _, e := range s.Staged {
		size += len(e)
	}
	out := make([]byte, 0, size+64)
	out = append(out, SnapshotMagic...)
	out = AppendRecord(out, RecordSnapMeta, b.MustBytes())
	roots := make([]byte, 0, 32*len(s.TileRoots))
	for _, r := range s.TileRoots {
		roots = append(roots, r[:]...)
	}
	out = AppendRecord(out, RecordSnapTiles, roots)
	for _, e := range s.Sequenced {
		out = AppendRecord(out, RecordEntry, e)
	}
	for _, e := range s.Staged {
		out = AppendRecord(out, RecordEntry, e)
	}
	out = AppendRecord(out, RecordSTH, EncodeSTH(s.STH))
	return out
}

// DecodeSnapshot parses and structurally validates a snapshot image.
// Unlike the WAL, a snapshot is written atomically and must be whole:
// any torn record, count mismatch, or trailing byte is ErrCorrupt.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	if len(data) < MagicLen {
		return nil, fmt.Errorf("%w: short snapshot header", ErrCorrupt)
	}
	for i, b := range SnapshotMagic {
		if data[i] != b {
			return nil, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
		}
	}
	off := MagicLen
	next := func() (Record, error) {
		rec, n, err := ReadRecord(data[off:])
		if err != nil {
			return Record{}, err
		}
		off += n
		return rec, nil
	}
	meta, err := next()
	if err != nil {
		return nil, err
	}
	if meta.Type != RecordSnapMeta {
		return nil, fmt.Errorf("%w: snapshot starts with record type %d", ErrCorrupt, meta.Type)
	}
	r := tlsenc.NewReader(meta.Payload)
	nSeq := r.Uint64()
	nStaged := r.Uint64()
	walOff := r.Uint64()
	var root [32]byte
	copy(root[:], r.Bytes(32))
	tiledThrough := r.Uint64()
	tileSpan := r.Uint64()
	if err := r.ExpectEmpty(); err != nil {
		return nil, fmt.Errorf("%w: snapshot meta: %v", ErrCorrupt, err)
	}
	// An absurd count means a corrupt meta record that happened to
	// checksum — impossible in practice, but never trust a length you
	// are about to allocate. Each count is bounded individually first so
	// the sum cannot wrap uint64 past the check.
	maxEntries := uint64(len(data))/recordOverhead + 1
	if nSeq > maxEntries || nStaged > maxEntries || nSeq+nStaged > maxEntries {
		return nil, fmt.Errorf("%w: snapshot claims %d+%d entries in %d bytes", ErrCorrupt, nSeq, nStaged, len(data))
	}
	switch {
	case tileSpan == 0:
		if tiledThrough != 0 {
			return nil, fmt.Errorf("%w: snapshot tiled through %d with span 0", ErrCorrupt, tiledThrough)
		}
	case !validTileSpan(tileSpan):
		return nil, fmt.Errorf("%w: snapshot tile span %d is not a power of two ≥ 2", ErrCorrupt, tileSpan)
	case tiledThrough%tileSpan != 0:
		return nil, fmt.Errorf("%w: snapshot tiled through %d is not span-aligned (span %d)", ErrCorrupt, tiledThrough, tileSpan)
	}
	snap := &Snapshot{
		Sequenced:    make([][]byte, 0, nSeq),
		Staged:       make([][]byte, 0, nStaged),
		Root:         root,
		WALOffset:    walOff,
		TiledThrough: tiledThrough,
		TileSpan:     tileSpan,
	}
	tilesRec, err := next()
	if err != nil {
		return nil, err
	}
	if tilesRec.Type != RecordSnapTiles {
		return nil, fmt.Errorf("%w: snapshot tile roots have record type %d", ErrCorrupt, tilesRec.Type)
	}
	var wantTiles uint64
	if tileSpan != 0 {
		wantTiles = tiledThrough / tileSpan
	}
	if uint64(len(tilesRec.Payload)) != wantTiles*32 {
		return nil, fmt.Errorf("%w: snapshot has %d tile-root bytes, want %d tiles", ErrCorrupt, len(tilesRec.Payload), wantTiles)
	}
	snap.TileRoots = make([][32]byte, wantTiles)
	for i := range snap.TileRoots {
		copy(snap.TileRoots[i][:], tilesRec.Payload[32*i:])
	}
	for i := uint64(0); i < nSeq+nStaged; i++ {
		rec, err := next()
		if err != nil {
			return nil, err
		}
		if rec.Type != RecordEntry {
			return nil, fmt.Errorf("%w: snapshot entry %d has record type %d", ErrCorrupt, i, rec.Type)
		}
		if i < nSeq {
			snap.Sequenced = append(snap.Sequenced, rec.Payload)
		} else {
			snap.Staged = append(snap.Staged, rec.Payload)
		}
	}
	sthRec, err := next()
	if err != nil {
		return nil, err
	}
	if sthRec.Type != RecordSTH {
		return nil, fmt.Errorf("%w: snapshot trailer has record type %d", ErrCorrupt, sthRec.Type)
	}
	if snap.STH, err = DecodeSTH(sthRec.Payload); err != nil {
		return nil, err
	}
	if off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes after snapshot", ErrCorrupt, len(data)-off)
	}
	return snap, nil
}

// WriteFileAtomic writes data to path via a temp file in the same
// directory, fsyncing the file before the rename and the directory
// after, so a crash leaves either the old file or the new one — never a
// torn mix. It is shared by snapshots and harvest checkpoints.
func WriteFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("storage: creating temp file: %w", err)
	}
	tmpName := tmp.Name()
	defer os.Remove(tmpName) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: writing %s: %w", tmpName, err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("storage: syncing %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("storage: closing %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("storage: renaming snapshot: %w", err)
	}
	// Sync the directory so the rename itself survives a crash.
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making the entries it holds (creations,
// links, and renames) durable. Exported for callers that persist their
// own files beside a store (cmd/ctlogd's signing key).
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("storage: opening %s to sync: %w", dir, err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("storage: syncing %s: %w", dir, err)
	}
	return nil
}
