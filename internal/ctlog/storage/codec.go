// Package storage is the durability layer under the CT log: an
// append-only, length-prefixed, checksummed write-ahead log for staged
// submissions plus atomic full-state snapshots, with the torn-tail
// recovery semantics a crash-safe log needs.
//
// # Codec
//
// Every durable file is a stream of self-delimiting records over an
// 8-byte magic header:
//
//	record := type(1) || length(4, big-endian) || payload || crc32c(4)
//
// The CRC (Castagnoli) covers type, length, and payload, so a flipped
// bit anywhere in a record is detected, and a record length can never
// send the reader off into garbage unnoticed. The same framing carries
// the WAL (entry / seal / STH / unstage records), the snapshot file, and
// the ecosystem harvest checkpoints — one codec, three consumers.
//
// # Recovery semantics
//
// ScanRecords is the single arbiter of what survives a crash: it walks a
// byte stream and returns every whole, checksum-valid record before the
// first torn or corrupt one, plus the byte offset where validity ends. A
// crash mid-append therefore costs exactly the unacknowledged tail;
// anything before the valid end is replayed, anything after is
// discarded (the WAL truncates to the valid end on open). Semantic
// divergence — a seal or STH that does not match the replayed tree — is
// the caller's (ctlog's) job to detect and fail loudly on.
package storage

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"ctrise/internal/tlsenc"
)

// Errors returned by the storage layer.
var (
	// ErrCorrupt is returned when a durable file fails structural
	// validation beyond an ordinary torn tail: bad magic, an invalid
	// record in a snapshot, or trailing garbage where none is allowed.
	ErrCorrupt = errors.New("storage: corrupt file")
	// ErrClosed is returned for operations on a closed store.
	ErrClosed = errors.New("storage: store closed")
)

// RecordType tags a record's payload. The storage layer treats payloads
// as opaque; these tags exist so replay can dispatch without sniffing.
type RecordType uint8

// WAL record types. Values are part of the on-disk format; never reuse.
const (
	// RecordEntry carries one staged submission: the RFC 6962
	// MerkleTreeLeaf encoding of the entry (timestamp, type, payload,
	// extensions) — everything needed to reconstruct the entry, its
	// identity hash, and its Merkle leaf hash.
	RecordEntry RecordType = 1
	// RecordSeal marks a sequencing step: every entry record before it
	// (since the previous seal) was integrated as one batch, in
	// canonical order, yielding the recorded tree size and root. It is
	// the snapshot cursor fsynced at each Sequence.
	RecordSeal RecordType = 2
	// RecordSTH records a published signed tree head.
	RecordSTH RecordType = 3
	// RecordUnstage rolls back one staged entry (a signing failure after
	// the entry record was already appended); the payload is the entry's
	// identity hash.
	RecordUnstage RecordType = 4
	// RecordSnapMeta heads a snapshot file: sequenced and staged entry
	// counts, the tree root, the WAL offset replay resumes from, and (v2)
	// the tiled-through size and tile span.
	RecordSnapMeta RecordType = 5
	// RecordSnapTiles follows the snapshot meta: the subtree root of
	// every sealed tile, in tile order. The recovery path rebuilds the
	// tree's spine from these without reading a single tile file.
	RecordSnapTiles RecordType = 6
)

// Checkpoint record types (harvest checkpoints ride the same framing;
// see internal/ecosystem). Kept here so type values never collide.
const (
	RecordCkptMeta   RecordType = 16
	RecordCkptSeries RecordType = 17
	RecordCkptOrgLog RecordType = 18
	RecordCkptNames  RecordType = 19
	RecordCkptEnd    RecordType = 20
)

// Audit record types (the auditor's verified-STH chain rides the same
// framing; see internal/auditor). An audit chain file is a stream of
// RecordSTH records — each a tree head the auditor cryptographically
// verified, in verification order — interleaved with RecordAuditCursor
// records carrying the first entry index not yet consumed, so a
// restarted auditor resumes from its durable verification frontier
// instead of re-verifying (and re-alerting) from scratch.
const (
	RecordAuditCursor RecordType = 24
)

// Record is one decoded frame: a type tag and its payload bytes.
type Record struct {
	Type    RecordType
	Payload []byte
}

// File magics. 8 bytes: name, NUL padding, format version.
var (
	WALMagic = []byte{'C', 'T', 'W', 'A', 'L', 0, 0, 1}
	// SnapshotMagic version 2: the meta record grew tiled-through and
	// tile-span fields and a tile-roots record follows it, so sealed
	// entries can live in tile files instead of the snapshot body.
	SnapshotMagic = []byte{'C', 'T', 'S', 'N', 'P', 0, 0, 2}
	// CheckpointMagic heads ecosystem harvest checkpoints.
	CheckpointMagic = []byte{'C', 'T', 'H', 'R', 'V', 0, 0, 1}
	// AuditMagic heads per-log auditor verified-STH chain files.
	AuditMagic = []byte{'C', 'T', 'A', 'U', 'D', 0, 0, 1}
)

// MagicLen is the length of every file header.
const MagicLen = 8

// recordOverhead is the framing cost per record: type + length + crc.
const recordOverhead = 1 + 4 + 4

// MaxRecordPayload bounds a single record. Certificates are a few KB;
// harvest name chunks a few hundred KB. Anything near this limit in a
// length field is treated as corruption rather than allocated.
const MaxRecordPayload = 16 << 20

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// recordCRC computes the checksum over the framed header and payload.
func recordCRC(typ RecordType, payload []byte) uint32 {
	var hdr [5]byte
	hdr[0] = byte(typ)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	c := crc32.Update(0, crcTable, hdr[:])
	return crc32.Update(c, crcTable, payload)
}

// AppendRecord appends one framed record to buf and returns the extended
// slice. It is the single encoder for every durable file.
func AppendRecord(buf []byte, typ RecordType, payload []byte) []byte {
	var hdr [5]byte
	hdr[0] = byte(typ)
	binary.BigEndian.PutUint32(hdr[1:], uint32(len(payload)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, payload...)
	var crc [4]byte
	binary.BigEndian.PutUint32(crc[:], recordCRC(typ, payload))
	return append(buf, crc[:]...)
}

// ReadRecord decodes one record from the front of data. It returns the
// record, the number of bytes consumed, and an error when the front of
// data is not a whole, checksum-valid record (torn and corrupt frames
// are indistinguishable at this layer and both return an error). The
// returned payload aliases data.
func ReadRecord(data []byte) (Record, int, error) {
	if len(data) < recordOverhead {
		return Record{}, 0, fmt.Errorf("%w: %d bytes remaining, record needs at least %d", ErrCorrupt, len(data), recordOverhead)
	}
	typ := RecordType(data[0])
	n := binary.BigEndian.Uint32(data[1:5])
	if n > MaxRecordPayload {
		return Record{}, 0, fmt.Errorf("%w: record length %d exceeds limit", ErrCorrupt, n)
	}
	total := recordOverhead + int(n)
	if len(data) < total {
		return Record{}, 0, fmt.Errorf("%w: record of %d bytes torn at %d", ErrCorrupt, total, len(data))
	}
	payload := data[5 : 5+n]
	want := binary.BigEndian.Uint32(data[5+n : 5+n+4])
	if got := recordCRC(typ, payload); got != want {
		return Record{}, 0, fmt.Errorf("%w: record checksum mismatch", ErrCorrupt)
	}
	return Record{Type: typ, Payload: payload}, total, nil
}

// ScanRecords walks a record stream (no magic header) and returns every
// whole, checksum-valid record before the first invalid byte, plus the
// offset where validity ends. It never fails: a torn or corrupt frame
// simply ends the valid prefix, which is exactly the crash-recovery
// contract (everything after the last durable record is discarded).
func ScanRecords(data []byte) (recs []Record, valid int) {
	off := 0
	for off < len(data) {
		rec, n, err := ReadRecord(data[off:])
		if err != nil {
			break
		}
		recs = append(recs, rec)
		off += n
	}
	return recs, off
}

// DecodeWAL validates a WAL image: magic header plus record stream. It
// returns the valid records and the byte offset (including the header)
// where the valid prefix ends. A missing or wrong magic is ErrCorrupt —
// the file is not a WAL at all — while a torn record stream is normal
// crash debris and only shortens the prefix.
func DecodeWAL(data []byte) ([]Record, int, error) {
	if len(data) < MagicLen {
		return nil, 0, fmt.Errorf("%w: short WAL header", ErrCorrupt)
	}
	for i, b := range WALMagic {
		if data[i] != b {
			return nil, 0, fmt.Errorf("%w: bad WAL magic", ErrCorrupt)
		}
	}
	recs, valid := ScanRecords(data[MagicLen:])
	return recs, MagicLen + valid, nil
}

// SealRecord is the decoded form of RecordSeal.
type SealRecord struct {
	TreeSize uint64
	Root     [32]byte
}

// EncodeSeal encodes a seal payload.
func EncodeSeal(s SealRecord) []byte {
	b := tlsenc.NewBuilder(8 + 32)
	b.AddUint64(s.TreeSize)
	b.AddBytes(s.Root[:])
	return b.MustBytes()
}

// DecodeSeal decodes a seal payload.
func DecodeSeal(payload []byte) (SealRecord, error) {
	r := tlsenc.NewReader(payload)
	var s SealRecord
	s.TreeSize = r.Uint64()
	copy(s.Root[:], r.Bytes(32))
	if err := r.ExpectEmpty(); err != nil {
		return SealRecord{}, fmt.Errorf("%w: seal: %v", ErrCorrupt, err)
	}
	return s, nil
}

// STHRecord is the decoded form of RecordSTH: a published tree head and
// the exact signature bytes that covered it, so a restarted log serves
// the same STH it served before the crash.
type STHRecord struct {
	Timestamp uint64
	TreeSize  uint64
	Root      [32]byte
	// Sig is the serialized DigitallySigned structure.
	Sig []byte
}

// EncodeSTH encodes an STH payload.
func EncodeSTH(s STHRecord) []byte {
	b := tlsenc.NewBuilder(8 + 8 + 32 + 2 + len(s.Sig))
	b.AddUint64(s.Timestamp)
	b.AddUint64(s.TreeSize)
	b.AddBytes(s.Root[:])
	b.AddUint16Vector(s.Sig)
	out, err := b.Bytes()
	if err != nil {
		// Signatures are ~100 bytes; a uint16 vector overflow indicates
		// memory corruption, not an encodable state.
		panic(err)
	}
	return out
}

// DecodeSTH decodes an STH payload.
func DecodeSTH(payload []byte) (STHRecord, error) {
	r := tlsenc.NewReader(payload)
	var s STHRecord
	s.Timestamp = r.Uint64()
	s.TreeSize = r.Uint64()
	copy(s.Root[:], r.Bytes(32))
	s.Sig = r.Uint16Vector()
	if err := r.ExpectEmpty(); err != nil {
		return STHRecord{}, fmt.Errorf("%w: sth: %v", ErrCorrupt, err)
	}
	return s, nil
}

// EncodeAuditCursor encodes an audit cursor payload: the first entry
// index the auditor has not yet consumed.
func EncodeAuditCursor(next uint64) []byte {
	out := make([]byte, 8)
	binary.BigEndian.PutUint64(out, next)
	return out
}

// DecodeAuditCursor decodes an audit cursor payload.
func DecodeAuditCursor(payload []byte) (uint64, error) {
	if len(payload) != 8 {
		return 0, fmt.Errorf("%w: audit cursor payload is %d bytes, want 8", ErrCorrupt, len(payload))
	}
	return binary.BigEndian.Uint64(payload), nil
}

// EncodeUnstage encodes an unstage payload (the entry identity hash).
func EncodeUnstage(id [32]byte) []byte {
	out := make([]byte, 32)
	copy(out, id[:])
	return out
}

// DecodeUnstage decodes an unstage payload.
func DecodeUnstage(payload []byte) ([32]byte, error) {
	var id [32]byte
	if len(payload) != 32 {
		return id, fmt.Errorf("%w: unstage payload is %d bytes, want 32", ErrCorrupt, len(payload))
	}
	copy(id[:], payload)
	return id, nil
}
