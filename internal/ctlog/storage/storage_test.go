package storage

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"
)

func TestRecordRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0x01}, bytes.Repeat([]byte{0xAB}, 1000)}
	var buf []byte
	for i, p := range payloads {
		buf = AppendRecord(buf, RecordType(i+1), p)
	}
	recs, valid := ScanRecords(buf)
	if valid != len(buf) {
		t.Fatalf("valid=%d, want %d", valid, len(buf))
	}
	if len(recs) != len(payloads) {
		t.Fatalf("got %d records, want %d", len(recs), len(payloads))
	}
	for i, rec := range recs {
		if rec.Type != RecordType(i+1) {
			t.Errorf("record %d type %d, want %d", i, rec.Type, i+1)
		}
		if !bytes.Equal(rec.Payload, payloads[i]) {
			t.Errorf("record %d payload mismatch", i)
		}
	}
}

// TestScanRecordsTornAndCorrupt proves the valid-prefix contract: a torn
// or bit-flipped suffix ends the prefix exactly at the last whole record.
func TestScanRecordsTornAndCorrupt(t *testing.T) {
	var buf []byte
	buf = AppendRecord(buf, RecordEntry, []byte("first"))
	oneEnd := len(buf)
	buf = AppendRecord(buf, RecordEntry, []byte("second"))

	// Every truncation point mid-second-record preserves only the first.
	for cut := oneEnd; cut < len(buf); cut++ {
		recs, valid := ScanRecords(buf[:cut])
		if valid != oneEnd || len(recs) != 1 {
			t.Fatalf("cut %d: valid=%d recs=%d, want %d/1", cut, valid, len(recs), oneEnd)
		}
	}
	// A flipped bit anywhere in the second record is caught by the CRC.
	for i := oneEnd; i < len(buf); i++ {
		mut := append([]byte(nil), buf...)
		mut[i] ^= 0xFF
		recs, valid := ScanRecords(mut)
		if valid != oneEnd || len(recs) != 1 {
			t.Fatalf("flip %d: valid=%d recs=%d, want %d/1", i, valid, len(recs), oneEnd)
		}
	}
	// A flipped bit in the first record discards everything: the reader
	// cannot resynchronize past an invalid frame, by design.
	mut := append([]byte(nil), buf...)
	mut[7] ^= 0x01
	if recs, valid := ScanRecords(mut); valid != 0 || len(recs) != 0 {
		t.Fatalf("flip in first record: valid=%d recs=%d, want 0/0", valid, len(recs))
	}
}

func TestDecodeWALRejectsBadMagic(t *testing.T) {
	data := append([]byte("NOTAWAL!"), AppendRecord(nil, RecordEntry, []byte("x"))...)
	if _, _, err := DecodeWAL(data); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err=%v, want ErrCorrupt", err)
	}
	if _, _, err := DecodeWAL([]byte("CT")); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short header err=%v, want ErrCorrupt", err)
	}
}

func TestSealSTHUnstageCodecs(t *testing.T) {
	seal := SealRecord{TreeSize: 42}
	copy(seal.Root[:], bytes.Repeat([]byte{0x5A}, 32))
	got, err := DecodeSeal(EncodeSeal(seal))
	if err != nil || got != seal {
		t.Fatalf("seal round trip: %+v, %v", got, err)
	}
	if _, err := DecodeSeal([]byte{1, 2, 3}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short seal err=%v", err)
	}

	sth := STHRecord{Timestamp: 7, TreeSize: 9, Sig: []byte{1, 2, 3}}
	copy(sth.Root[:], bytes.Repeat([]byte{0x11}, 32))
	got2, err := DecodeSTH(EncodeSTH(sth))
	if err != nil || got2.Timestamp != sth.Timestamp || got2.TreeSize != sth.TreeSize ||
		got2.Root != sth.Root || !bytes.Equal(got2.Sig, sth.Sig) {
		t.Fatalf("sth round trip: %+v, %v", got2, err)
	}
	if _, err := DecodeSTH(append(EncodeSTH(sth), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing sth byte err=%v", err)
	}

	var id [32]byte
	id[0], id[31] = 0xAA, 0xBB
	gotID, err := DecodeUnstage(EncodeUnstage(id))
	if err != nil || gotID != id {
		t.Fatalf("unstage round trip: %v, %v", gotID, err)
	}
	if _, err := DecodeUnstage([]byte{1}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short unstage err=%v", err)
	}
}

// TestStoreAppendReopen proves records written to a store come back in
// order on reopen, and that a torn tail is truncated so appends resume
// from the last durable record.
func TestStoreAppendReopen(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendEntry([]byte("leaf-1")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendSeal(SealRecord{TreeSize: 1}); err != nil {
		t.Fatal(err)
	}
	off, err := st.AppendEntry([]byte("leaf-2"))
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Barrier(off); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Simulate a crash mid-append: garbage after the durable records.
	path := filepath.Join(dir, WALName)
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{byte(RecordEntry), 0x00, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	var types []RecordType
	var payloads []string
	if err := st2.Replay(0, func(rec Record) error {
		types = append(types, rec.Type)
		payloads = append(payloads, string(rec.Payload))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(types) != 3 || types[0] != RecordEntry || types[1] != RecordSeal || types[2] != RecordEntry {
		t.Fatalf("replayed types %v", types)
	}
	if payloads[0] != "leaf-1" || payloads[2] != "leaf-2" {
		t.Fatalf("replayed payloads %q", payloads)
	}
	// Truncation of the torn tail is deferred until the recovery commits
	// (the caller may prefer a snapshot over a corrupt-prefix WAL);
	// after CommitRecovery the file ends exactly at the append offset.
	if err := st2.CommitRecovery(); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() != st2.WALOffset() {
		t.Fatalf("file size %d != append offset %d", fi.Size(), st2.WALOffset())
	}
}

func TestSnapshotRoundTripAndCorruption(t *testing.T) {
	snap := &Snapshot{
		Sequenced: [][]byte{[]byte("a"), []byte("bb")},
		Staged:    [][]byte{[]byte("ccc")},
		STH:       STHRecord{Timestamp: 5, TreeSize: 2, Sig: []byte{9}},
		WALOffset: 99,
	}
	copy(snap.Root[:], bytes.Repeat([]byte{0x42}, 32))
	data := EncodeSnapshot(snap)
	got, err := DecodeSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.TreeSize() != 2 || len(got.Staged) != 1 || got.WALOffset != 99 ||
		got.Root != snap.Root || string(got.Staged[0]) != "ccc" {
		t.Fatalf("decoded %+v", got)
	}
	// Unlike the WAL, a snapshot tolerates nothing: every truncation and
	// every byte flip must be rejected.
	for cut := 0; cut < len(data); cut++ {
		if _, err := DecodeSnapshot(data[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	for i := 0; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0xFF
		if _, err := DecodeSnapshot(mut); err == nil {
			t.Fatalf("byte flip at %d accepted", i)
		}
	}
	if _, err := DecodeSnapshot(append(data, 0)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

// TestSnapshotOverflowingCountsRejected hand-frames a snapshot whose
// CRC-valid meta record carries entry counts that wrap uint64 when
// summed; the decoder must reject it as corrupt, not panic in make().
func TestSnapshotOverflowingCountsRejected(t *testing.T) {
	for _, counts := range [][2]uint64{
		{^uint64(0), 2},     // nSeq+nStaged wraps to 1
		{^uint64(0) - 1, 0}, // nSeq alone absurd
		{0, ^uint64(0)},     // nStaged alone absurd
		{1 << 40, 1 << 40},  // huge but non-wrapping
	} {
		meta := make([]byte, 0, 56)
		for _, v := range []uint64{counts[0], counts[1], 0} {
			var b [8]byte
			for i := 0; i < 8; i++ {
				b[i] = byte(v >> (56 - 8*i))
			}
			meta = append(meta, b[:]...)
		}
		meta = append(meta, make([]byte, 32)...) // root
		img := append([]byte(nil), SnapshotMagic...)
		img = AppendRecord(img, RecordSnapMeta, meta)
		if _, err := DecodeSnapshot(img); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("counts %v: err=%v, want ErrCorrupt", counts, err)
		}
	}
}

func TestStoreSnapshotFile(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if snap, err := st.LoadSnapshot(); err != nil || snap != nil {
		t.Fatalf("fresh dir: snap=%v err=%v", snap, err)
	}
	want := &Snapshot{Sequenced: [][]byte{[]byte("e")}, STH: STHRecord{TreeSize: 1}}
	if err := st.WriteSnapshot(want); err != nil {
		t.Fatal(err)
	}
	got, err := st.LoadSnapshot()
	if err != nil || got.TreeSize() != 1 {
		t.Fatalf("load: %+v, %v", got, err)
	}
	// A corrupt snapshot is reported as such, not silently absent.
	if err := os.WriteFile(filepath.Join(dir, SnapshotName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := st.LoadSnapshot(); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt snapshot err=%v", err)
	}
}

func TestReplayOffsetValidation(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendEntry([]byte("leaf")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Replay consumes the records discovered at open time, so bad resume
	// offsets are judged against the reopened, validated prefix.
	st, err = Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if err := st.Replay(st.WALOffset()+1, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("past-end replay err=%v", err)
	}
	if err := st.Replay(int64(MagicLen)+1, func(Record) error { return nil }); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("mid-record replay err=%v", err)
	}
}

// TestStoreExclusiveLock proves one state directory admits one writer:
// a second Open fails loudly (ErrLocked) instead of the two processes
// truncating and interleaving over each other's acked records, and the
// lock dies with the holder (Close here; process exit in production).
func TestStoreExclusiveLock(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); !errors.Is(err, ErrLocked) {
		t.Fatalf("second open err=%v, want ErrLocked", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2, err := Open(dir)
	if err != nil {
		t.Fatalf("open after close: %v", err)
	}
	st2.Close()
}

func TestStoreClosedIsSticky(t *testing.T) {
	st, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.AppendEntry([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close err=%v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("double close err=%v", err)
	}
}
