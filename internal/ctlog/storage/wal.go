package storage

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
)

// ErrLocked is returned when another process holds the store directory.
var ErrLocked = errors.New("storage: state directory locked by another process")

// WALName is the write-ahead log's file name inside a store directory.
const WALName = "wal.log"

// wal is the append side of the write-ahead log. Appends are serialized
// by the caller (the CT log appends only under its own mutex, which is
// what guarantees entry records land before the seal that covers them);
// Barrier is safe to call concurrently from many acked submitters and
// implements group commit: one fsync satisfies every barrier at or below
// the synced offset.
type wal struct {
	f *os.File
	// writeOff is the file offset after the last buffered append.
	writeOff atomic.Int64
	// synced is the offset known durable (covered by an fsync).
	synced atomic.Int64
	// syncMu serializes fsyncs so concurrent barriers collapse into one.
	// syncErr (guarded by syncMu) makes an fsync failure sticky at this
	// level: after EIO the kernel may report the error once and drop the
	// dirty pages, so a queued waiter retrying the fsync would see
	// success and ack a submission whose bytes are gone.
	syncMu  sync.Mutex
	syncErr error
	// records holds the replayable records of the valid prefix found at
	// open time; Store.Replay hands them to the log and drops the slice.
	records []Record
}

// openWAL opens or creates dir's WAL, validates it, and positions
// appends at the end of the valid prefix. It does NOT truncate the
// invalid tail yet: whether the bytes past the valid prefix are crash
// debris to discard or fsynced records lost to mid-file corruption (in
// which case the snapshot may still cover them) is a recovery decision,
// made by the log via CommitRecovery/ResetWAL before any append runs.
// A file too short to hold the magic header is treated as debris from a
// crash during creation and rebuilt; a present-but-wrong magic is
// ErrCorrupt.
func openWAL(dir string) (*wal, error) {
	path := filepath.Join(dir, WALName)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("storage: opening WAL: %w", err)
	}
	// One writer per state directory: two processes replaying,
	// truncating, and appending the same WAL shred each other's acked
	// records. The flock rides the WAL fd, so the kernel releases it on
	// any exit — no stale lock files after kill -9. It must be taken
	// BEFORE the file is read: reading first would capture a stale
	// valid-prefix offset while a draining predecessor appends its last
	// fsynced records, and recovery would later truncate them away.
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: %s", ErrLocked, path)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: reading WAL: %w", err)
	}
	w := &wal{}
	valid := MagicLen
	if len(data) >= MagicLen {
		recs, v, derr := DecodeWAL(data)
		if derr != nil {
			f.Close()
			return nil, derr
		}
		// Payloads alias data, which outlives this function; that is
		// deliberate — replay consumes them once and releases the slab.
		w.records = recs
		valid = v
	}
	if len(data) < MagicLen {
		// Fresh (or header-torn) file: write the header and start empty.
		if err := f.Truncate(0); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: resetting WAL: %w", err)
		}
		if _, err := f.WriteAt(WALMagic, 0); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: writing WAL header: %w", err)
		}
		// A newly created file is only as durable as its directory
		// entry: without this, a crash after acked (file-fsynced)
		// submissions could lose the whole WAL and silently restart the
		// log empty. WriteFileAtomic gives snapshots the same treatment.
		if err := f.Sync(); err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: syncing new WAL: %w", err)
		}
		if err := SyncDir(dir); err != nil {
			f.Close()
			return nil, err
		}
	}
	if _, err := f.Seek(int64(valid), 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("storage: seeking WAL: %w", err)
	}
	w.f = f
	w.writeOff.Store(int64(valid))
	w.synced.Store(int64(valid))
	return w, nil
}

// append frames and writes one record, returning the offset after it.
// Not safe for concurrent use (the log's mutex serializes callers).
func (w *wal) append(typ RecordType, payload []byte) (int64, error) {
	buf := AppendRecord(nil, typ, payload)
	if _, err := w.f.Write(buf); err != nil {
		return w.writeOff.Load(), fmt.Errorf("storage: WAL append: %w", err)
	}
	off := w.writeOff.Add(int64(len(buf)))
	return off, nil
}

// barrier blocks until every byte below off is durable. Concurrent
// barriers group-commit: whoever wins the sync mutex fsyncs the current
// write offset, satisfying everyone who queued behind it.
func (w *wal) barrier(off int64) error {
	if w.synced.Load() >= off {
		return nil
	}
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.syncErr != nil {
		return w.syncErr
	}
	if w.synced.Load() >= off {
		return nil
	}
	// Snapshot the write offset before syncing: bytes appended after the
	// fsync call starts are not guaranteed durable by it.
	target := w.writeOff.Load()
	if err := w.f.Sync(); err != nil {
		w.syncErr = fmt.Errorf("storage: WAL fsync: %w", err)
		return w.syncErr
	}
	if w.synced.Load() < target {
		w.synced.Store(target)
	}
	return nil
}

// truncateTo cuts the file to off, makes the truncation itself durable,
// and repositions appends there. Called at the end of recovery and every
// time a sealed tile lets the WAL be compacted. The fsync is not
// optional: the callers that truncate then re-anchor the snapshot cursor
// at the new end would otherwise race a crash that resurrects the old
// file length, leaving a snapshot whose offset splits a stale record —
// an ErrCorrupt refusal on what was a perfectly recoverable crash.
func (w *wal) truncateTo(off int64) error {
	if err := w.f.Truncate(off); err != nil {
		return fmt.Errorf("storage: truncating WAL to %d: %w", off, err)
	}
	if _, err := w.f.Seek(off, 0); err != nil {
		return fmt.Errorf("storage: seeking WAL: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("storage: syncing truncated WAL: %w", err)
	}
	w.writeOff.Store(off)
	w.synced.Store(off)
	w.records = nil
	return nil
}

func (w *wal) close() error {
	return w.f.Close()
}
