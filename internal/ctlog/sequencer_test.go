package ctlog

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"ctrise/internal/sct"
)

// Sequencing must produce the identical tree regardless of the order in
// which submissions were staged: the canonical (timestamp, identity-hash)
// batch order makes the tree a function of the submission set.
func TestSequenceCanonicalOrder(t *testing.T) {
	certs := make([][]byte, 64)
	for i := range certs {
		certs[i] = []byte(fmt.Sprintf("canonical-cert-%02d", i))
	}

	build := func(order []int) [32]byte {
		l, _ := newTestLog(t, Config{})
		for _, i := range order {
			if _, err := l.AddChain(certs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if n, _ := l.Sequence(); n != len(certs) {
			t.Fatalf("sequenced %d, want %d", n, len(certs))
		}
		sth, err := l.PublishSTH()
		if err != nil {
			t.Fatal(err)
		}
		return sth.TreeHead.RootHash
	}

	forward := make([]int, len(certs))
	reverse := make([]int, len(certs))
	shuffled := make([]int, len(certs))
	for i := range certs {
		forward[i] = i
		reverse[i] = len(certs) - 1 - i
		shuffled[i] = (i * 37) % len(certs) // 37 coprime to 64: a permutation
	}
	want := build(forward)
	if got := build(reverse); got != want {
		t.Fatal("reverse staging order changed the tree root")
	}
	if got := build(shuffled); got != want {
		t.Fatal("shuffled staging order changed the tree root")
	}
}

// Entries staged across publishes sequence in timestamp order within
// each batch, and indices are assigned contiguously batch after batch.
func TestSequenceAssignsContiguousIndices(t *testing.T) {
	l, clk := newTestLog(t, Config{})
	for batch := 0; batch < 3; batch++ {
		for i := 0; i < 5; i++ {
			if _, err := l.AddChain([]byte(fmt.Sprintf("b%d-%d", batch, i))); err != nil {
				t.Fatal(err)
			}
			clk.Advance(time.Second)
		}
		if _, err := l.PublishSTH(); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := l.GetEntries(0, 14)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 15 {
		t.Fatalf("entries = %d", len(entries))
	}
	for i, e := range entries {
		if e.Index != uint64(i) {
			t.Fatalf("entry %d has index %d", i, e.Index)
		}
		if i > 0 && e.Timestamp < entries[i-1].Timestamp {
			t.Fatalf("entry %d timestamp regresses (%d after %d)", i, e.Timestamp, entries[i-1].Timestamp)
		}
	}
}

// Concurrent submitters racing on overlapping certificate sets must
// dedupe exactly: one staged entry per distinct certificate, every
// duplicate answered with the original timestamp. Run under -race this
// also proves the lock-free hash/sign paths don't race the sequencer.
func TestStagedDedupeUnderConcurrency(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	const (
		workers = 8
		uniques = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	sequenced := make(chan struct{})
	// A sequencer races the submitters, draining partial batches.
	go func() {
		defer close(sequenced)
		for i := 0; i < 50; i++ {
			l.Sequence()
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Every worker submits the full set, offset so workers
			// collide on different certs at different times.
			for i := 0; i < uniques; i++ {
				cert := []byte(fmt.Sprintf("shared-cert-%03d", (i+w*17)%uniques))
				if _, err := l.AddChain(cert); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	<-sequenced
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	l.Sequence()
	if l.TreeSize() != uniques {
		t.Fatalf("tree size = %d, want %d (dedupe failed under concurrency)", l.TreeSize(), uniques)
	}
	if l.PendingCount() != 0 {
		t.Fatalf("pending = %d after final sequence", l.PendingCount())
	}
	// Resubmitting now must hit the sequenced dedupe record, not stage.
	if _, err := l.AddChain([]byte("shared-cert-000")); err != nil {
		t.Fatal(err)
	}
	if l.PendingCount() != 0 {
		t.Fatal("duplicate of sequenced entry was staged again")
	}
}

// RunSequencer drains on its ticker and performs a final publish on
// cancellation, so no accepted submission is left staged.
func TestRunSequencerDrainsOnCancel(t *testing.T) {
	l, err := New(Config{
		Name:   "ticker log",
		Signer: sct.NewFastSigner("ticker log"),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.RunSequencer(ctx, time.Millisecond) }()
	for i := 0; i < 20; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("ticked-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the ticker has published at least once.
	deadline := time.Now().Add(5 * time.Second)
	for l.STH().TreeHead.TreeSize == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sequencer never published")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("RunSequencer returned %v", err)
	}
	if l.PendingCount() != 0 {
		t.Fatalf("pending = %d after cancellation drain", l.PendingCount())
	}
	if got := l.STH().TreeHead.TreeSize; got != 20 {
		t.Fatalf("published size = %d, want 20", got)
	}
}

// flakySigner wraps a LogSigner and fails CreateSCT on demand.
type flakySigner struct {
	sct.LogSigner
	fail bool
}

var errSignerDown = fmt.Errorf("signer down")

func (f *flakySigner) CreateSCT(ts uint64, entry sct.CertificateEntry) (*sct.SignedCertificateTimestamp, error) {
	if f.fail {
		return nil, errSignerDown
	}
	return f.LogSigner.CreateSCT(ts, entry)
}

// A signing failure must roll the staged entry back: the tree never
// integrates an entry whose submitter received no SCT, the dedupe record
// disappears, and the capacity token is refunded.
func TestSigningFailureRollsBackStage(t *testing.T) {
	signer := &flakySigner{LogSigner: sct.NewFastSigner("flaky log")}
	clk := newClock()
	l, err := New(Config{Name: "flaky log", Signer: signer, Clock: clk.Now, CapacityPerSecond: 2})
	if err != nil {
		t.Fatal(err)
	}
	cert := []byte("rolled-back cert")
	signer.fail = true
	if _, err := l.AddChain(cert); err == nil {
		t.Fatal("signing failure not surfaced")
	}
	if l.PendingCount() != 0 {
		t.Fatalf("pending = %d after failed submission", l.PendingCount())
	}
	if l.Sequence(); l.TreeSize() != 0 {
		t.Fatalf("tree integrated %d entries from a failed submission", l.TreeSize())
	}
	// Recovery: the same cert resubmits cleanly (no stale dedupe record
	// answering with a phantom entry) and the refunded token plus the
	// remaining one cover both burst submissions.
	signer.fail = false
	if _, err := l.AddChain(cert); err != nil {
		t.Fatalf("resubmission after recovery: %v", err)
	}
	if _, err := l.AddChain([]byte("second burst cert")); err != nil {
		t.Fatalf("token not refunded: %v", err)
	}
	if l.Sequence(); l.TreeSize() != 2 {
		t.Fatalf("tree size = %d, want 2", l.TreeSize())
	}
}
