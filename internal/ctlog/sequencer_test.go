package ctlog

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ctrise/internal/sct"
)

// Sequencing must produce the identical tree regardless of the order in
// which submissions were staged: the canonical (timestamp, identity-hash)
// batch order makes the tree a function of the submission set.
func TestSequenceCanonicalOrder(t *testing.T) {
	certs := make([][]byte, 64)
	for i := range certs {
		certs[i] = []byte(fmt.Sprintf("canonical-cert-%02d", i))
	}

	build := func(order []int) [32]byte {
		l, _ := newTestLog(t, Config{})
		for _, i := range order {
			if _, err := l.AddChain(certs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if n, _ := l.Sequence(); n != len(certs) {
			t.Fatalf("sequenced %d, want %d", n, len(certs))
		}
		sth, err := l.PublishSTH()
		if err != nil {
			t.Fatal(err)
		}
		return sth.TreeHead.RootHash
	}

	forward := make([]int, len(certs))
	reverse := make([]int, len(certs))
	shuffled := make([]int, len(certs))
	for i := range certs {
		forward[i] = i
		reverse[i] = len(certs) - 1 - i
		shuffled[i] = (i * 37) % len(certs) // 37 coprime to 64: a permutation
	}
	want := build(forward)
	if got := build(reverse); got != want {
		t.Fatal("reverse staging order changed the tree root")
	}
	if got := build(shuffled); got != want {
		t.Fatal("shuffled staging order changed the tree root")
	}
}

// Entries staged across publishes sequence in timestamp order within
// each batch, and indices are assigned contiguously batch after batch.
func TestSequenceAssignsContiguousIndices(t *testing.T) {
	l, clk := newTestLog(t, Config{})
	for batch := 0; batch < 3; batch++ {
		for i := 0; i < 5; i++ {
			if _, err := l.AddChain([]byte(fmt.Sprintf("b%d-%d", batch, i))); err != nil {
				t.Fatal(err)
			}
			clk.Advance(time.Second)
		}
		if _, err := l.PublishSTH(); err != nil {
			t.Fatal(err)
		}
	}
	entries, err := l.GetEntries(0, 14)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 15 {
		t.Fatalf("entries = %d", len(entries))
	}
	for i, e := range entries {
		if e.Index != uint64(i) {
			t.Fatalf("entry %d has index %d", i, e.Index)
		}
		if i > 0 && e.Timestamp < entries[i-1].Timestamp {
			t.Fatalf("entry %d timestamp regresses (%d after %d)", i, e.Timestamp, entries[i-1].Timestamp)
		}
	}
}

// Concurrent submitters racing on overlapping certificate sets must
// dedupe exactly: one staged entry per distinct certificate, every
// duplicate answered with the original timestamp. Run under -race this
// also proves the lock-free hash/sign paths don't race the sequencer.
func TestStagedDedupeUnderConcurrency(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	const (
		workers = 8
		uniques = 200
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	sequenced := make(chan struct{})
	// A sequencer races the submitters, draining partial batches.
	go func() {
		defer close(sequenced)
		for i := 0; i < 50; i++ {
			l.Sequence()
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Every worker submits the full set, offset so workers
			// collide on different certs at different times.
			for i := 0; i < uniques; i++ {
				cert := []byte(fmt.Sprintf("shared-cert-%03d", (i+w*17)%uniques))
				if _, err := l.AddChain(cert); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	<-sequenced
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	l.Sequence()
	if l.TreeSize() != uniques {
		t.Fatalf("tree size = %d, want %d (dedupe failed under concurrency)", l.TreeSize(), uniques)
	}
	if l.PendingCount() != 0 {
		t.Fatalf("pending = %d after final sequence", l.PendingCount())
	}
	// Resubmitting now must hit the sequenced dedupe record, not stage.
	if _, err := l.AddChain([]byte("shared-cert-000")); err != nil {
		t.Fatal(err)
	}
	if l.PendingCount() != 0 {
		t.Fatal("duplicate of sequenced entry was staged again")
	}
}

// RunSequencer drains on its ticker and performs a final publish on
// cancellation, so no accepted submission is left staged.
func TestRunSequencerDrainsOnCancel(t *testing.T) {
	l, err := New(Config{
		Name:   "ticker log",
		Signer: sct.NewFastSigner("ticker log"),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.RunSequencer(ctx, time.Millisecond) }()
	for i := 0; i < 20; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("ticked-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Wait until the ticker has published at least once.
	deadline := time.Now().Add(5 * time.Second)
	for l.STH().TreeHead.TreeSize == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sequencer never published")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("RunSequencer returned %v", err)
	}
	if l.PendingCount() != 0 {
		t.Fatalf("pending = %d after cancellation drain", l.PendingCount())
	}
	if got := l.STH().TreeHead.TreeSize; got != 20 {
		t.Fatalf("published size = %d, want 20", got)
	}
}

// flakySigner wraps a LogSigner and fails CreateSCT on demand.
type flakySigner struct {
	sct.LogSigner
	fail bool
}

var errSignerDown = fmt.Errorf("signer down")

func (f *flakySigner) CreateSCT(ts uint64, entry sct.CertificateEntry) (*sct.SignedCertificateTimestamp, error) {
	if f.fail {
		return nil, errSignerDown
	}
	return f.LogSigner.CreateSCT(ts, entry)
}

// A signing failure must roll the staged entry back: the tree never
// integrates an entry whose submitter received no SCT, the dedupe record
// disappears, and the capacity token is refunded.
func TestSigningFailureRollsBackStage(t *testing.T) {
	signer := &flakySigner{LogSigner: sct.NewFastSigner("flaky log")}
	clk := newClock()
	l, err := New(Config{Name: "flaky log", Signer: signer, Clock: clk.Now, CapacityPerSecond: 2})
	if err != nil {
		t.Fatal(err)
	}
	cert := []byte("rolled-back cert")
	signer.fail = true
	if _, err := l.AddChain(cert); err == nil {
		t.Fatal("signing failure not surfaced")
	}
	if l.PendingCount() != 0 {
		t.Fatalf("pending = %d after failed submission", l.PendingCount())
	}
	if l.Sequence(); l.TreeSize() != 0 {
		t.Fatalf("tree integrated %d entries from a failed submission", l.TreeSize())
	}
	// Recovery: the same cert resubmits cleanly (no stale dedupe record
	// answering with a phantom entry) and the refunded token plus the
	// remaining one cover both burst submissions.
	signer.fail = false
	if _, err := l.AddChain(cert); err != nil {
		t.Fatalf("resubmission after recovery: %v", err)
	}
	if _, err := l.AddChain([]byte("second burst cert")); err != nil {
		t.Fatalf("token not refunded: %v", err)
	}
	if l.Sequence(); l.TreeSize() != 2 {
		t.Fatalf("tree size = %d, want 2", l.TreeSize())
	}
}

// sthFlakySigner fails SignTreeHead while `fail` is set and counts the
// failures it served, so tests can prove a failed tick actually happened
// before asserting the loop survived it.
type sthFlakySigner struct {
	sct.LogSigner
	fail   atomic.Bool
	failed atomic.Int64
}

func (f *sthFlakySigner) SignTreeHead(th sct.TreeHead) (sct.DigitallySigned, error) {
	if f.fail.Load() {
		f.failed.Add(1)
		return sct.DigitallySigned{}, errSignerDown
	}
	return f.LogSigner.SignTreeHead(th)
}

// A transient publish failure (here: a hiccuping STH signer on an
// in-memory log) must not kill the sequencer loop — the staged batch is
// intact and the next tick retries. The pre-fix loop exited on the first
// failed tick, leaving the log accepting submissions it would never
// sequence.
func TestRunSequencerRetriesTransientPublishFailure(t *testing.T) {
	signer := &sthFlakySigner{LogSigner: sct.NewFastSigner("transient log")}
	l, err := New(Config{Name: "transient log", Signer: signer})
	if err != nil {
		t.Fatal(err)
	}
	signer.fail.Store(true)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- l.RunSequencer(ctx, time.Millisecond) }()
	if _, err := l.AddChain([]byte("survives a flaky signer")); err != nil {
		t.Fatal(err)
	}
	// Let at least one tick fail while the signer is down.
	deadline := time.Now().Add(5 * time.Second)
	for signer.failed.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no tick attempted a publish")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("sequencer exited on a transient failure: %v", err)
	default:
	}
	// Signer recovers; the next tick must publish the staged entry.
	signer.fail.Store(false)
	for l.STH().TreeHead.TreeSize != 1 {
		if time.Now().After(deadline) {
			t.Fatal("sequencer never recovered after the transient failure")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; err != context.Canceled {
		t.Fatalf("RunSequencer returned %v", err)
	}
}

// A sticky store failure is permanent: every future write will fail and
// submissions are already refused, so the loop must exit and surface the
// persistence error instead of spinning on a dead store.
func TestRunSequencerExitsOnStickyStoreFailure(t *testing.T) {
	l, _ := newDurableLog(t, t.TempDir(), Config{SequenceChunk: 2})
	for i := 0; i < 6; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("sticky-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Kill the store mid-sequence: the seal after the last chunk fails,
	// and the failure is sticky (a closed store refuses all writes).
	var once sync.Once
	l.seqChunkHook = func(done, total int) {
		once.Do(func() { l.store.Close() })
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() { done <- l.RunSequencer(ctx, time.Millisecond) }()
	select {
	case err := <-done:
		if !errors.Is(err, ErrPersistence) {
			t.Fatalf("RunSequencer returned %v, want ErrPersistence", err)
		}
		if errors.Is(err, context.Canceled) {
			t.Fatal("sticky exit must not report cancellation")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("sequencer kept running on a sticky store failure")
	}
}

// When cancellation's final drain fails, the error must say so: joined
// with ErrDrainIncomplete so callers can tell "drained clean" from
// "acknowledged entries left staged". The pre-fix return masked the
// publish failure entirely behind ctx.Err().
func TestRunSequencerDrainJoinsPublishError(t *testing.T) {
	signer := &sthFlakySigner{LogSigner: sct.NewFastSigner("dirty drain log")}
	l, err := New(Config{Name: "dirty drain log", Signer: signer})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.AddChain([]byte("left staged at shutdown")); err != nil {
		t.Fatal(err)
	}
	signer.fail.Store(true)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = l.RunSequencer(ctx, time.Hour)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunSequencer returned %v, want cancellation in the join", err)
	}
	if !errors.Is(err, ErrDrainIncomplete) {
		t.Fatalf("RunSequencer returned %v, want ErrDrainIncomplete in the join", err)
	}
	if !errors.Is(err, errSignerDown) {
		t.Fatalf("RunSequencer returned %v, want the publish cause preserved", err)
	}
}

// RunSequencer rejects a non-positive interval instead of ticking wild.
func TestRunSequencerRejectsNonPositiveInterval(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	if err := l.RunSequencer(context.Background(), 0); err == nil {
		t.Fatal("RunSequencer(0) must fail")
	}
}
