// Package ctlog implements an RFC 6962 Certificate Transparency log: an
// append-only Merkle tree over submitted (pre)certificates, SCT issuance,
// signed tree heads, inclusion and consistency proofs, and the ct/v1 HTTP
// API. It is the substrate on which the paper's Section 2 (log evolution),
// Section 3 (SCT deployment), and Section 6 (honeypot leakage channel)
// experiments run.
//
// # Stage → sequence lifecycle
//
// Like production logs (and unlike a textbook Merkle tree), submission
// and integration are two phases:
//
//   - Stage: AddChain/AddPreChain compute the entry identity hash, the
//     Merkle leaf hash, and the SCT signature entirely outside the log
//     mutex — they depend only on the immutable entry bytes and the
//     submission timestamp. The lock is held only for the dedupe lookup,
//     the capacity check, and appending to the pending batch, so many
//     CAs submitting to one log serialize on a few map operations, not
//     on hashing or signing. The SCT returned to the submitter is the
//     RFC 6962 promise: the entry will be integrated within the MMD.
//   - Sequence: a sequencer drains the pending batch into the Merkle
//     tree in canonical (timestamp, identity-hash) order, making the
//     sequenced tree a pure function of the set of accepted submissions
//     and their timestamps — independent of arrival interleaving. STHs
//     only ever cover sequenced entries.
//
// Two sequencer modes exist. Experiments call Sequence/PublishSTH at
// virtual-clock batch boundaries (the issuance timeline sequences and
// publishes each log once per replayed day), which keeps replays
// deterministic at any parallelism. The standalone server (cmd/ctlogd)
// runs RunSequencer on a wall-clock ticker within the MMD, which is the
// production shape.
//
// The log uses a caller-supplied clock so experiments replay the paper's
// 2017–2018 timeline deterministically, and an optional capacity limit so
// overload behaviour (the Nimbus incident discussed in Section 2 and the
// mass-submission risk of Section 3.4) can be reproduced.
package ctlog

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ctrise/internal/merkle"
	"ctrise/internal/sct"
)

// Errors returned by the log.
var (
	// ErrOverloaded is returned when submissions exceed the log's capacity,
	// modeling the Nimbus performance incident.
	ErrOverloaded = errors.New("ctlog: log overloaded, submission rejected")
	// ErrNotFound is returned for unknown leaf hashes.
	ErrNotFound = errors.New("ctlog: leaf hash not found")
	// ErrBadRange is returned for invalid get-entries/proof parameters.
	ErrBadRange = errors.New("ctlog: invalid range")
)

// Config configures a log instance.
type Config struct {
	// Name is the log's display name, e.g. "Google Pilot log".
	Name string
	// Operator is the organization running the log, e.g. "Google".
	Operator string
	// Signer issues SCTs and tree head signatures. Required. Use
	// *sct.Signer for cryptographic logs or *sct.FastSigner for
	// bulk-simulation logs.
	Signer sct.LogSigner
	// Clock supplies the log's notion of now. Defaults to time.Now.
	// Experiments install a virtual clock.
	Clock func() time.Time
	// MMD is the maximum merge delay. Entries are guaranteed to be
	// integrated into a published STH within MMD of their SCT timestamp.
	// Defaults to 24h.
	MMD time.Duration
	// MaxGetEntries caps the number of entries returned by one get-entries
	// call, like production logs do. Defaults to 1000.
	MaxGetEntries int
	// CapacityPerSecond, if positive, limits sustained submissions per
	// second; excess submissions fail with ErrOverloaded.
	CapacityPerSecond float64
	// ChromeInclusionDate records when the log was accepted into Chrome's
	// log list (Table 1 annotates logs with it). Informational.
	ChromeInclusionDate time.Time
}

// SignedTreeHead is an STH: a tree head plus the log's signature over it.
type SignedTreeHead struct {
	TreeHead sct.TreeHead
	Sig      sct.DigitallySigned
}

// Log is an in-memory RFC 6962 log. All methods are safe for concurrent
// use.
type Log struct {
	cfg Config

	mu      sync.RWMutex
	tree    *merkle.Tree
	entries []*Entry
	// staged is the pending batch: accepted submissions that have an SCT
	// but are not yet integrated into the tree. Sequence drains it.
	staged []*Entry
	// dedupe maps cert-identity hash -> entry (staged or sequenced), so
	// resubmitting the same (pre)certificate returns the original SCT
	// (like real logs) whether or not it has been integrated yet.
	dedupe map[merkle.Hash]*Entry
	// byLeafHash maps Merkle leaf hash -> entry index for get-proof-by-hash.
	byLeafHash map[merkle.Hash]uint64
	// published is the latest signed tree head; it may trail the tree by
	// up to MMD.
	published SignedTreeHead
	// pub snapshots the published STH together with the entry prefix it
	// covers. Entries below a published tree size are immutable (the log
	// is append-only and *Entry values are never rewritten), so readers
	// holding the snapshot can walk that prefix with no lock at all —
	// the fast path StreamEntries and GetEntries ride on.
	pub atomic.Pointer[publishedState]
	// bucket implements a token bucket for CapacityPerSecond.
	bucketTokens float64
	bucketAt     time.Time
	// stats
	rejected uint64
}

// New creates a log and publishes the empty-tree STH.
func New(cfg Config) (*Log, error) {
	if cfg.Signer == nil {
		return nil, errors.New("ctlog: Config.Signer is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.MMD <= 0 {
		cfg.MMD = 24 * time.Hour
	}
	if cfg.MaxGetEntries <= 0 {
		cfg.MaxGetEntries = 1000
	}
	l := &Log{
		cfg:        cfg,
		tree:       merkle.New(),
		dedupe:     make(map[merkle.Hash]*Entry),
		byLeafHash: make(map[merkle.Hash]uint64),
	}
	l.bucketAt = cfg.Clock()
	l.bucketTokens = cfg.CapacityPerSecond
	if err := l.publishLocked(); err != nil {
		return nil, err
	}
	return l, nil
}

// Name returns the log's display name.
func (l *Log) Name() string { return l.cfg.Name }

// Operator returns the log operator.
func (l *Log) Operator() string { return l.cfg.Operator }

// LogID returns the log's RFC 6962 ID.
func (l *Log) LogID() sct.LogID { return l.cfg.Signer.LogID() }

// Verifier returns a verifier for this log's signatures.
func (l *Log) Verifier() sct.SCTVerifier { return l.cfg.Signer.Verifier() }

// ChromeInclusionDate returns when the log joined Chrome's list.
func (l *Log) ChromeInclusionDate() time.Time { return l.cfg.ChromeInclusionDate }

// Rejected returns the number of submissions rejected due to overload.
func (l *Log) Rejected() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.rejected
}

// AddChain submits a final certificate (x509_entry) and returns its SCT.
// The entry is staged, not yet integrated: it enters the Merkle tree at
// the next Sequence/PublishSTH, within the MMD.
func (l *Log) AddChain(cert []byte) (*sct.SignedCertificateTimestamp, error) {
	return l.add(sct.X509Entry(cert))
}

// AddPreChain submits a precertificate (precert_entry: issuer key hash +
// defanged TBS) and returns its SCT, which the CA embeds in the final
// certificate. Like AddChain, the entry is staged for the next sequence
// step.
func (l *Log) AddPreChain(issuerKeyHash [32]byte, tbs []byte) (*sct.SignedCertificateTimestamp, error) {
	return l.add(sct.PrecertEntry(issuerKeyHash, tbs))
}

// add stages one submission. The identity hash, the entry skeleton, and
// the Merkle leaf hash are computed before the lock and the SCT is
// signed after it: none of them depend on tree or batch state, so the
// critical section is two map operations, the capacity check, and a
// slice append.
func (l *Log) add(ce sct.CertificateEntry) (*sct.SignedCertificateTimestamp, error) {
	now := l.cfg.Clock()
	ts := uint64(now.UnixMilli())

	// Deduplicate on the entry identity (type + content), not the leaf
	// (which would include the new timestamp). The read-locked pre-check
	// keeps resubmissions — the replay-flood common case — at one
	// identity hash plus a map lookup, skipping the entry construction
	// and leaf hashing below; the write-locked check further down
	// remains authoritative for racing first submissions.
	idHash := entryIdentity(ce)
	l.mu.RLock()
	prev, dup := l.dedupe[idHash]
	l.mu.RUnlock()
	if dup {
		return l.dedupeSCT(prev)
	}
	e := &Entry{
		Timestamp: ts,
		Type:      ce.Type,
	}
	if ce.Type == sct.PrecertLogEntryType {
		e.IssuerKeyHash = ce.IssuerKeyHash
		e.Cert = ce.TBS
	} else {
		e.Cert = ce.Cert
	}
	leafHash, err := e.LeafHash()
	if err != nil {
		return nil, err
	}

	e.idHash = idHash
	e.idKey = binary.BigEndian.Uint64(idHash[:8])
	e.leafHash = leafHash

	l.mu.Lock()
	if prev, ok := l.dedupe[idHash]; ok {
		l.mu.Unlock()
		return l.dedupeSCT(prev)
	}
	if !l.takeTokenLocked(now) {
		l.rejected++
		l.mu.Unlock()
		return nil, ErrOverloaded
	}
	l.staged = append(l.staged, e)
	l.dedupe[idHash] = e
	l.mu.Unlock()

	s, err := l.cfg.Signer.CreateSCT(ts, ce)
	if err != nil {
		l.unstage(e)
		return nil, err
	}
	return s, nil
}

// dedupeSCT answers a resubmission: the SCT is re-issued over the
// original entry's timestamp. Entry content fields are immutable once
// staged, so reading them lock-free here is safe. The entry is marked
// shared first (under the lock) so a concurrent signing-failure
// rollback of the original submission cannot revoke an entry this
// submitter is about to hold an SCT for.
func (l *Log) dedupeSCT(prev *Entry) (*sct.SignedCertificateTimestamp, error) {
	l.mu.Lock()
	prev.dupAnswered = true
	l.mu.Unlock()
	return l.cfg.Signer.CreateSCT(prev.Timestamp, prev.SignatureEntry())
}

// unstage rolls a staged entry back after a signing failure, so the
// tree never integrates an entry whose submitter received no SCT: the
// entry is removed from the pending batch and the dedupe map, and its
// capacity token is refunded. Two races make the rollback conditional:
// if a concurrent Sequence already drained the batch the entry is
// integrated and stays, and if a concurrent duplicate submission was
// answered from the dedupe map (dupAnswered) the entry must sequence —
// that submitter holds a valid SCT and the MMD promise it carries must
// hold.
func (l *Log) unstage(e *Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e.dupAnswered {
		return
	}
	for i := len(l.staged) - 1; i >= 0; i-- {
		if l.staged[i] == e {
			l.staged = append(l.staged[:i], l.staged[i+1:]...)
			delete(l.dedupe, e.idHash)
			if l.cfg.CapacityPerSecond > 0 && l.bucketTokens < l.cfg.CapacityPerSecond {
				l.bucketTokens++
			}
			return
		}
	}
}

// entryIdentity hashes the content identity of a submission for dedupe.
// The tag/key-hash/TBS parts stream directly into one digest (the same
// SHA-256(0x00 || type || payload) value merkle.HashLeaf would produce
// over a concatenated buffer) so the per-submission hot path allocates no
// intermediate payload slices.
func entryIdentity(ce sct.CertificateEntry) merkle.Hash {
	h := sha256.New()
	h.Write([]byte{0x00, byte(ce.Type)})
	if ce.Type == sct.PrecertLogEntryType {
		h.Write(ce.IssuerKeyHash[:])
		h.Write(ce.TBS)
	} else {
		h.Write(ce.Cert)
	}
	var out merkle.Hash
	h.Sum(out[:0])
	return out
}

// takeTokenLocked enforces CapacityPerSecond with a token bucket refilled
// by the virtual clock. Burst capacity equals one second of tokens.
func (l *Log) takeTokenLocked(now time.Time) bool {
	if l.cfg.CapacityPerSecond <= 0 {
		return true
	}
	elapsed := now.Sub(l.bucketAt).Seconds()
	if elapsed > 0 {
		l.bucketTokens += elapsed * l.cfg.CapacityPerSecond
		if l.bucketTokens > l.cfg.CapacityPerSecond {
			l.bucketTokens = l.cfg.CapacityPerSecond
		}
		l.bucketAt = now
	}
	if l.bucketTokens < 1 {
		return false
	}
	l.bucketTokens--
	return true
}

// TreeSize returns the current sequenced (but possibly unpublished) tree
// size. Staged submissions are not counted until sequenced.
func (l *Log) TreeSize() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.tree.Size()
}

// PublishSTH sequences all staged submissions and signs and publishes a
// tree head over the resulting tree. Real logs do this periodically
// within the MMD; experiments call it at batch boundaries of the virtual
// clock.
func (l *Log) PublishSTH() (SignedTreeHead, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sequenceLocked()
	if err := l.publishLocked(); err != nil {
		return SignedTreeHead{}, err
	}
	return l.published, nil
}

// publishedState is the immutable snapshot stored in Log.pub: the latest
// STH and the (stable) entry slice prefix it covers.
type publishedState struct {
	sth SignedTreeHead
	// entries has length sth.TreeHead.TreeSize. The backing array is
	// shared with the live log but this prefix is append-frozen.
	entries []*Entry
}

func (l *Log) publishLocked() error {
	th := sct.TreeHead{
		Timestamp: uint64(l.cfg.Clock().UnixMilli()),
		TreeSize:  l.tree.Size(),
		RootHash:  [32]byte(l.tree.Root()),
	}
	sig, err := l.cfg.Signer.SignTreeHead(th)
	if err != nil {
		return fmt.Errorf("ctlog: signing STH: %w", err)
	}
	l.published = SignedTreeHead{TreeHead: th, Sig: sig}
	size := th.TreeSize
	l.pub.Store(&publishedState{
		sth:     l.published,
		entries: l.entries[:size:size],
	})
	return nil
}

// STH returns the latest published signed tree head.
func (l *Log) STH() SignedTreeHead {
	return l.pub.Load().sth
}

// GetEntries returns entries [start, end] (inclusive, like the RFC API),
// truncated to MaxGetEntries and to the published tree size. It reads the
// published snapshot and takes no lock; the returned slice aliases the
// log's immutable published prefix and must be treated as read-only.
func (l *Log) GetEntries(start, end uint64) ([]*Entry, error) {
	ps := l.pub.Load()
	size := ps.sth.TreeHead.TreeSize
	if start > end || start >= size {
		return nil, fmt.Errorf("%w: start=%d end=%d size=%d", ErrBadRange, start, end, size)
	}
	if end >= size {
		end = size - 1
	}
	if n := end - start + 1; n > uint64(l.cfg.MaxGetEntries) {
		end = start + uint64(l.cfg.MaxGetEntries) - 1
	}
	return ps.entries[start : end+1 : end+1], nil
}

// StreamEntries calls fn for every entry in [start, end] (inclusive),
// clipped to the published tree size, and stops at fn's first error.
// Unlike paging through GetEntries it allocates no per-batch slices and
// acquires no locks: the published prefix is immutable, so the walk runs
// entirely on the lock-free snapshot even while writers append. It is
// the bulk-iteration substrate for harvest-scale crawls.
func (l *Log) StreamEntries(start, end uint64, fn func(*Entry) error) error {
	ps := l.pub.Load()
	size := ps.sth.TreeHead.TreeSize
	if start > end || start >= size {
		return fmt.Errorf("%w: start=%d end=%d size=%d", ErrBadRange, start, end, size)
	}
	if end >= size {
		end = size - 1
	}
	for _, e := range ps.entries[start : end+1] {
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

// GetProofByHash returns the inclusion proof and index for a leaf hash at
// the given tree size.
func (l *Log) GetProofByHash(leafHash merkle.Hash, treeSize uint64) (uint64, []merkle.Hash, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	idx, ok := l.byLeafHash[leafHash]
	if !ok {
		return 0, nil, ErrNotFound
	}
	if idx >= treeSize {
		return 0, nil, fmt.Errorf("%w: leaf %d not in tree of size %d", ErrBadRange, idx, treeSize)
	}
	proof, err := l.tree.InclusionProof(idx, treeSize)
	return idx, proof, err
}

// GetConsistencyProof returns the proof between two published tree sizes.
func (l *Log) GetConsistencyProof(first, second uint64) ([]merkle.Hash, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.tree.ConsistencyProof(first, second)
}

// GetInclusionProof returns the proof for an entry index at a tree size.
func (l *Log) GetInclusionProof(index, treeSize uint64) ([]merkle.Hash, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.tree.InclusionProof(index, treeSize)
}
