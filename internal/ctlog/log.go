// Package ctlog implements an RFC 6962 Certificate Transparency log: an
// append-only Merkle tree over submitted (pre)certificates, SCT issuance,
// signed tree heads, inclusion and consistency proofs, and the ct/v1 HTTP
// API. It is the substrate on which the paper's Section 2 (log evolution),
// Section 3 (SCT deployment), and Section 6 (honeypot leakage channel)
// experiments run.
//
// The log uses a caller-supplied clock so experiments replay the paper's
// 2017–2018 timeline deterministically, and an optional capacity limit so
// overload behaviour (the Nimbus incident discussed in Section 2 and the
// mass-submission risk of Section 3.4) can be reproduced.
package ctlog

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ctrise/internal/merkle"
	"ctrise/internal/sct"
)

// Errors returned by the log.
var (
	// ErrOverloaded is returned when submissions exceed the log's capacity,
	// modeling the Nimbus performance incident.
	ErrOverloaded = errors.New("ctlog: log overloaded, submission rejected")
	// ErrNotFound is returned for unknown leaf hashes.
	ErrNotFound = errors.New("ctlog: leaf hash not found")
	// ErrBadRange is returned for invalid get-entries/proof parameters.
	ErrBadRange = errors.New("ctlog: invalid range")
)

// Config configures a log instance.
type Config struct {
	// Name is the log's display name, e.g. "Google Pilot log".
	Name string
	// Operator is the organization running the log, e.g. "Google".
	Operator string
	// Signer issues SCTs and tree head signatures. Required. Use
	// *sct.Signer for cryptographic logs or *sct.FastSigner for
	// bulk-simulation logs.
	Signer sct.LogSigner
	// Clock supplies the log's notion of now. Defaults to time.Now.
	// Experiments install a virtual clock.
	Clock func() time.Time
	// MMD is the maximum merge delay. Entries are guaranteed to be
	// integrated into a published STH within MMD of their SCT timestamp.
	// Defaults to 24h.
	MMD time.Duration
	// MaxGetEntries caps the number of entries returned by one get-entries
	// call, like production logs do. Defaults to 1000.
	MaxGetEntries int
	// CapacityPerSecond, if positive, limits sustained submissions per
	// second; excess submissions fail with ErrOverloaded.
	CapacityPerSecond float64
	// ChromeInclusionDate records when the log was accepted into Chrome's
	// log list (Table 1 annotates logs with it). Informational.
	ChromeInclusionDate time.Time
}

// SignedTreeHead is an STH: a tree head plus the log's signature over it.
type SignedTreeHead struct {
	TreeHead sct.TreeHead
	Sig      sct.DigitallySigned
}

// Log is an in-memory RFC 6962 log. All methods are safe for concurrent
// use.
type Log struct {
	cfg Config

	mu      sync.RWMutex
	tree    *merkle.Tree
	entries []*Entry
	// dedupe maps cert-identity hash -> entry index, so resubmitting the
	// same (pre)certificate returns the original SCT (like real logs).
	dedupe map[merkle.Hash]uint64
	// byLeafHash maps Merkle leaf hash -> entry index for get-proof-by-hash.
	byLeafHash map[merkle.Hash]uint64
	// published is the latest signed tree head; it may trail the tree by
	// up to MMD.
	published SignedTreeHead
	// pub snapshots the published STH together with the entry prefix it
	// covers. Entries below a published tree size are immutable (the log
	// is append-only and *Entry values are never rewritten), so readers
	// holding the snapshot can walk that prefix with no lock at all —
	// the fast path StreamEntries and GetEntries ride on.
	pub atomic.Pointer[publishedState]
	// bucket implements a token bucket for CapacityPerSecond.
	bucketTokens float64
	bucketAt     time.Time
	// stats
	rejected uint64
}

// New creates a log and publishes the empty-tree STH.
func New(cfg Config) (*Log, error) {
	if cfg.Signer == nil {
		return nil, errors.New("ctlog: Config.Signer is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.MMD <= 0 {
		cfg.MMD = 24 * time.Hour
	}
	if cfg.MaxGetEntries <= 0 {
		cfg.MaxGetEntries = 1000
	}
	l := &Log{
		cfg:        cfg,
		tree:       merkle.New(),
		dedupe:     make(map[merkle.Hash]uint64),
		byLeafHash: make(map[merkle.Hash]uint64),
	}
	l.bucketAt = cfg.Clock()
	l.bucketTokens = cfg.CapacityPerSecond
	if err := l.publishLocked(); err != nil {
		return nil, err
	}
	return l, nil
}

// Name returns the log's display name.
func (l *Log) Name() string { return l.cfg.Name }

// Operator returns the log operator.
func (l *Log) Operator() string { return l.cfg.Operator }

// LogID returns the log's RFC 6962 ID.
func (l *Log) LogID() sct.LogID { return l.cfg.Signer.LogID() }

// Verifier returns a verifier for this log's signatures.
func (l *Log) Verifier() sct.SCTVerifier { return l.cfg.Signer.Verifier() }

// ChromeInclusionDate returns when the log joined Chrome's list.
func (l *Log) ChromeInclusionDate() time.Time { return l.cfg.ChromeInclusionDate }

// Rejected returns the number of submissions rejected due to overload.
func (l *Log) Rejected() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.rejected
}

// AddChain submits a final certificate (x509_entry) and returns its SCT.
func (l *Log) AddChain(cert []byte) (*sct.SignedCertificateTimestamp, error) {
	return l.add(sct.X509Entry(cert))
}

// AddPreChain submits a precertificate (precert_entry: issuer key hash +
// defanged TBS) and returns its SCT, which the CA embeds in the final
// certificate.
func (l *Log) AddPreChain(issuerKeyHash [32]byte, tbs []byte) (*sct.SignedCertificateTimestamp, error) {
	return l.add(sct.PrecertEntry(issuerKeyHash, tbs))
}

func (l *Log) add(ce sct.CertificateEntry) (*sct.SignedCertificateTimestamp, error) {
	now := l.cfg.Clock()
	ts := uint64(now.UnixMilli())

	l.mu.Lock()
	defer l.mu.Unlock()

	// Deduplicate on the entry identity (type + content), not the leaf
	// (which would include the new timestamp).
	idHash := entryIdentity(ce)
	if idx, ok := l.dedupe[idHash]; ok {
		e := l.entries[idx]
		return l.cfg.Signer.CreateSCT(e.Timestamp, e.SignatureEntry())
	}

	if !l.takeTokenLocked(now) {
		l.rejected++
		return nil, ErrOverloaded
	}

	e := &Entry{
		Index:     uint64(len(l.entries)),
		Timestamp: ts,
		Type:      ce.Type,
	}
	if ce.Type == sct.PrecertLogEntryType {
		e.IssuerKeyHash = ce.IssuerKeyHash
		e.Cert = ce.TBS
	} else {
		e.Cert = ce.Cert
	}
	s, err := l.cfg.Signer.CreateSCT(ts, ce)
	if err != nil {
		return nil, err
	}
	leafHash, err := e.LeafHash()
	if err != nil {
		return nil, err
	}
	l.tree.AppendLeafHash(leafHash)
	l.entries = append(l.entries, e)
	l.dedupe[idHash] = e.Index
	l.byLeafHash[leafHash] = e.Index
	return s, nil
}

// entryIdentity hashes the content identity of a submission for dedupe.
// The tag/key-hash/TBS parts stream directly into one digest (the same
// SHA-256(0x00 || type || payload) value merkle.HashLeaf would produce
// over a concatenated buffer) so the per-submission hot path allocates no
// intermediate payload slices.
func entryIdentity(ce sct.CertificateEntry) merkle.Hash {
	h := sha256.New()
	h.Write([]byte{0x00, byte(ce.Type)})
	if ce.Type == sct.PrecertLogEntryType {
		h.Write(ce.IssuerKeyHash[:])
		h.Write(ce.TBS)
	} else {
		h.Write(ce.Cert)
	}
	var out merkle.Hash
	h.Sum(out[:0])
	return out
}

// takeTokenLocked enforces CapacityPerSecond with a token bucket refilled
// by the virtual clock. Burst capacity equals one second of tokens.
func (l *Log) takeTokenLocked(now time.Time) bool {
	if l.cfg.CapacityPerSecond <= 0 {
		return true
	}
	elapsed := now.Sub(l.bucketAt).Seconds()
	if elapsed > 0 {
		l.bucketTokens += elapsed * l.cfg.CapacityPerSecond
		if l.bucketTokens > l.cfg.CapacityPerSecond {
			l.bucketTokens = l.cfg.CapacityPerSecond
		}
		l.bucketAt = now
	}
	if l.bucketTokens < 1 {
		return false
	}
	l.bucketTokens--
	return true
}

// TreeSize returns the current (unpublished) tree size.
func (l *Log) TreeSize() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.tree.Size()
}

// PublishSTH signs and publishes a tree head over the current tree. Real
// logs do this periodically within the MMD; experiments call it at batch
// boundaries of the virtual clock.
func (l *Log) PublishSTH() (SignedTreeHead, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.publishLocked(); err != nil {
		return SignedTreeHead{}, err
	}
	return l.published, nil
}

// publishedState is the immutable snapshot stored in Log.pub: the latest
// STH and the (stable) entry slice prefix it covers.
type publishedState struct {
	sth SignedTreeHead
	// entries has length sth.TreeHead.TreeSize. The backing array is
	// shared with the live log but this prefix is append-frozen.
	entries []*Entry
}

func (l *Log) publishLocked() error {
	th := sct.TreeHead{
		Timestamp: uint64(l.cfg.Clock().UnixMilli()),
		TreeSize:  l.tree.Size(),
		RootHash:  [32]byte(l.tree.Root()),
	}
	sig, err := l.cfg.Signer.SignTreeHead(th)
	if err != nil {
		return fmt.Errorf("ctlog: signing STH: %w", err)
	}
	l.published = SignedTreeHead{TreeHead: th, Sig: sig}
	size := th.TreeSize
	l.pub.Store(&publishedState{
		sth:     l.published,
		entries: l.entries[:size:size],
	})
	return nil
}

// STH returns the latest published signed tree head.
func (l *Log) STH() SignedTreeHead {
	return l.pub.Load().sth
}

// GetEntries returns entries [start, end] (inclusive, like the RFC API),
// truncated to MaxGetEntries and to the published tree size. It reads the
// published snapshot and takes no lock; the returned slice aliases the
// log's immutable published prefix and must be treated as read-only.
func (l *Log) GetEntries(start, end uint64) ([]*Entry, error) {
	ps := l.pub.Load()
	size := ps.sth.TreeHead.TreeSize
	if start > end || start >= size {
		return nil, fmt.Errorf("%w: start=%d end=%d size=%d", ErrBadRange, start, end, size)
	}
	if end >= size {
		end = size - 1
	}
	if n := end - start + 1; n > uint64(l.cfg.MaxGetEntries) {
		end = start + uint64(l.cfg.MaxGetEntries) - 1
	}
	return ps.entries[start : end+1 : end+1], nil
}

// StreamEntries calls fn for every entry in [start, end] (inclusive),
// clipped to the published tree size, and stops at fn's first error.
// Unlike paging through GetEntries it allocates no per-batch slices and
// acquires no locks: the published prefix is immutable, so the walk runs
// entirely on the lock-free snapshot even while writers append. It is
// the bulk-iteration substrate for harvest-scale crawls.
func (l *Log) StreamEntries(start, end uint64, fn func(*Entry) error) error {
	ps := l.pub.Load()
	size := ps.sth.TreeHead.TreeSize
	if start > end || start >= size {
		return fmt.Errorf("%w: start=%d end=%d size=%d", ErrBadRange, start, end, size)
	}
	if end >= size {
		end = size - 1
	}
	for _, e := range ps.entries[start : end+1] {
		if err := fn(e); err != nil {
			return err
		}
	}
	return nil
}

// GetProofByHash returns the inclusion proof and index for a leaf hash at
// the given tree size.
func (l *Log) GetProofByHash(leafHash merkle.Hash, treeSize uint64) (uint64, []merkle.Hash, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	idx, ok := l.byLeafHash[leafHash]
	if !ok {
		return 0, nil, ErrNotFound
	}
	if idx >= treeSize {
		return 0, nil, fmt.Errorf("%w: leaf %d not in tree of size %d", ErrBadRange, idx, treeSize)
	}
	proof, err := l.tree.InclusionProof(idx, treeSize)
	return idx, proof, err
}

// GetConsistencyProof returns the proof between two published tree sizes.
func (l *Log) GetConsistencyProof(first, second uint64) ([]merkle.Hash, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.tree.ConsistencyProof(first, second)
}

// GetInclusionProof returns the proof for an entry index at a tree size.
func (l *Log) GetInclusionProof(index, treeSize uint64) ([]merkle.Hash, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.tree.InclusionProof(index, treeSize)
}
