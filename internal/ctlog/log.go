// Package ctlog implements an RFC 6962 Certificate Transparency log: an
// append-only Merkle tree over submitted (pre)certificates, SCT issuance,
// signed tree heads, inclusion and consistency proofs, and the ct/v1 HTTP
// API. It is the substrate on which the paper's Section 2 (log evolution),
// Section 3 (SCT deployment), and Section 6 (honeypot leakage channel)
// experiments run.
//
// # Stage → sequence lifecycle
//
// Like production logs (and unlike a textbook Merkle tree), submission
// and integration are two phases:
//
//   - Stage: AddChain/AddPreChain compute the entry identity hash, the
//     Merkle leaf hash, and the SCT signature entirely outside the log
//     mutex — they depend only on the immutable entry bytes and the
//     submission timestamp. The lock is held only for the dedupe lookup,
//     the capacity check, and appending to the pending batch, so many
//     CAs submitting to one log serialize on a few map operations, not
//     on hashing or signing. The SCT returned to the submitter is the
//     RFC 6962 promise: the entry will be integrated within the MMD.
//   - Sequence: a sequencer drains the pending batch into the Merkle
//     tree in canonical (timestamp, identity-hash) order, making the
//     sequenced tree a pure function of the set of accepted submissions
//     and their timestamps — independent of arrival interleaving. STHs
//     only ever cover sequenced entries.
//
// Two sequencer modes exist. Experiments call Sequence/PublishSTH at
// virtual-clock batch boundaries (the issuance timeline sequences and
// publishes each log once per replayed day), which keeps replays
// deterministic at any parallelism. The standalone server (cmd/ctlogd)
// runs RunSequencer on a wall-clock ticker within the MMD, which is the
// production shape.
//
// # Durability
//
// New builds an in-memory log; Open builds a durable one over a state
// directory (internal/ctlog/storage): an append-only, checksummed
// write-ahead log plus periodic full-state snapshots. The contract, in
// the order a submission experiences it:
//
//   - Ack: the entry's WAL record is appended under the log mutex
//     (file order = lock order, so a record always precedes the seal
//     covering it) and — under the default SyncEachSubmission policy —
//     fsynced before the SCT is returned. An acknowledged submission
//     survives any crash; the MMD promise is never made on volatile
//     state. SyncAtSequence defers the fsync to the next barrier for
//     bulk replays.
//   - Sequence: after integrating a batch, a seal record (tree size +
//     root — the snapshot cursor) is appended and fsynced, fixing the
//     batch boundary and therefore the canonical in-batch order.
//   - PublishSTH: the signed head is appended and fsynced before
//     readers can observe it, so a served STH is always recoverable —
//     with its original signature bytes.
//   - Snapshot: at publication (every Config.SnapshotEvery sequenced
//     entries) and on Close, the full state — sequenced entries, staged
//     batch, root, STH, dedupe index (implied by the entries), WAL
//     cursor — is written atomically so recovery replays only the tail.
//
// Open replays snapshot+tail to byte-identical state, verifying every
// seal and STH against the rebuilt tree; a torn WAL tail is discarded
// (crash debris — those submitters were never acked), a corrupt
// snapshot falls back to full WAL replay, and any semantic divergence
// fails loudly with storage.ErrCorrupt rather than serve a tree head
// the durable history cannot reproduce. Duplicates submitted before and
// after a restart get the original SCT either way, because the dedupe
// index (staged entries included) is part of the recovered state.
//
// # Lock-free reads: the published-snapshot contract
//
// Every read endpoint — GetSTH, GetEntries, StreamEntries,
// GetInclusionProof, GetConsistencyProof, GetProofByHash — is answered
// from the publishedState snapshot behind an atomic pointer and
// acquires no log mutex. PublishSTH installs the snapshot atomically:
// the STH, the frozen entry prefix, a merkle.PrefixView frozen at the
// published size (an O(log n) freeze of the tree's level caches, not a
// copy), and the lock-free hash→index resolution all advance together,
// so a request observes one consistent published view end to end even
// while a chunked Sequence holds the write lock. The published head is
// the horizon: tree sizes above it are rejected with the same error
// classes as sizes above the live tree, even when the live tree already
// covers them — proofs over unpublished state would pin the log to an
// STH it never signed. The contract is pinned by a differential proof
// oracle (an independent RFC 6962 implementation recomputing proofs
// from raw leaf bytes) in TestProofOracle* and FuzzProofEquivalence,
// and structurally by TestProofServingHoldsNoLogMutex.
//
// The log uses a caller-supplied clock so experiments replay the paper's
// 2017–2018 timeline deterministically, and an optional capacity limit so
// overload behaviour (the Nimbus incident discussed in Section 2 and the
// mass-submission risk of Section 3.4) can be reproduced.
package ctlog

import (
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"ctrise/internal/ctlog/storage"
	"ctrise/internal/merkle"
	"ctrise/internal/sct"
)

// Errors returned by the log.
var (
	// ErrOverloaded is returned when submissions exceed the log's capacity,
	// modeling the Nimbus performance incident.
	ErrOverloaded = errors.New("ctlog: log overloaded, submission rejected")
	// ErrNotFound is returned for unknown leaf hashes.
	ErrNotFound = errors.New("ctlog: leaf hash not found")
	// ErrBadRange is returned for invalid get-entries/proof parameters.
	ErrBadRange = errors.New("ctlog: invalid range")
	// ErrPersistence is returned when a durable log's write-ahead log or
	// snapshot cannot be written. The failure is sticky: the log keeps
	// serving reads from memory, but new submissions are refused so no
	// SCT promise is ever made that a restart could not honor.
	ErrPersistence = errors.New("ctlog: persistent store failure")
)

// SyncPolicy selects when a durable log forces its write-ahead log to
// disk relative to acknowledging submissions.
type SyncPolicy int

const (
	// SyncEachSubmission fsyncs the WAL before every SCT is returned
	// (group commit: concurrent submitters share one fsync). A crash
	// never loses an acknowledged submission. This is the default and
	// the production posture.
	SyncEachSubmission SyncPolicy = iota
	// SyncAtSequence buffers entry records in the OS and fsyncs only at
	// sequencing and publication barriers. A crash between barriers can
	// lose acknowledged-but-unsequenced submissions (never sequenced
	// state, which is always sealed before an STH covers it). Bulk
	// replays use it to keep per-submission latency off the fsync path.
	SyncAtSequence
)

// Config configures a log instance.
type Config struct {
	// Name is the log's display name, e.g. "Google Pilot log".
	Name string
	// Operator is the organization running the log, e.g. "Google".
	Operator string
	// Signer issues SCTs and tree head signatures. Required. Use
	// *sct.Signer for cryptographic logs or *sct.FastSigner for
	// bulk-simulation logs.
	Signer sct.LogSigner
	// Clock supplies the log's notion of now. Defaults to time.Now.
	// Experiments install a virtual clock.
	Clock func() time.Time
	// MMD is the maximum merge delay. Entries are guaranteed to be
	// integrated into a published STH within MMD of their SCT timestamp.
	// Defaults to 24h.
	MMD time.Duration
	// MaxGetEntries caps the number of entries returned by one get-entries
	// call, like production logs do. Defaults to 1000.
	MaxGetEntries int
	// CapacityPerSecond, if positive, limits sustained submissions per
	// second; excess submissions fail with ErrOverloaded.
	CapacityPerSecond float64
	// Sync selects the WAL durability point for logs opened with Open.
	// Ignored by in-memory logs. Defaults to SyncEachSubmission.
	Sync SyncPolicy
	// SequenceChunk bounds how many entries one sequence step integrates
	// per hold of the log mutex. A staged batch larger than this is
	// drained and canonically sorted once (so the tree bytes are
	// unchanged), then integrated chunk by chunk with the mutex released
	// in between — readers and submitters arriving mid-integration wait
	// for at most one chunk of tree appends instead of the whole batch.
	// 0 means the default (DefaultSequenceChunk); negative disables
	// chunking (the whole batch integrates under one hold, the pre-chunk
	// behaviour — useful only for measuring the difference).
	SequenceChunk int
	// SnapshotEvery controls full-state snapshots on durable logs: a
	// snapshot is written at publication once at least this many entries
	// have been sequenced since the last one (recovery then replays only
	// the WAL tail). 0 means the default (4096); negative disables
	// periodic snapshots (one is still written on Close). Ignored by
	// in-memory logs.
	SnapshotEvery int
	// TileSpan is the number of entries per sealed storage tile on durable
	// logs: once a span-aligned prefix of the tree is covered by a
	// published STH it is sealed into immutable tile files and evicted
	// from RAM, and the WAL is truncated behind it (see tiles.go). Must be
	// a power of two ≥ 2; 0 means the default (1024). A directory that
	// already holds sealed tiles keeps its original span regardless of
	// this setting. Ignored by in-memory logs (which keep everything
	// resident and never seal — tree bytes are identical either way).
	TileSpan int
	// PageCacheBytes bounds the RAM the tile page cache may hold (decoded
	// tile pages, LRU-evicted). 0 means the default (64 MiB); negative
	// disables retention entirely (every sealed-tile read pages in from
	// disk — useful for cold-cache measurement). Ignored by in-memory
	// logs.
	PageCacheBytes int64
	// ChromeInclusionDate records when the log was accepted into Chrome's
	// log list (Table 1 annotates logs with it). Informational.
	ChromeInclusionDate time.Time
}

// DefaultTileSpan is the sealed-tile span used when Config.TileSpan is 0.
const DefaultTileSpan = 1024

// DefaultPageCacheBytes is the tile page-cache budget used when
// Config.PageCacheBytes is 0.
const DefaultPageCacheBytes = 64 << 20

// SignedTreeHead is an STH: a tree head plus the log's signature over it.
type SignedTreeHead struct {
	TreeHead sct.TreeHead
	Sig      sct.DigitallySigned
}

// Log is an in-memory RFC 6962 log. All methods are safe for concurrent
// use.
type Log struct {
	cfg Config

	// seqMu serializes sequencing, publication, and Close: exactly one
	// batch integrates at a time, and nothing may publish, snapshot, or
	// tear the log down while a chunked sequence holds a half-integrated
	// batch outside l.mu. Always acquired before l.mu; never held by
	// readers or submitters.
	seqMu sync.Mutex

	mu   sync.RWMutex
	tree *merkle.TiledTree
	// entries holds the resident tail of the sequenced log: entries
	// [tailStart, tree.Size()). On durable logs, entries below tailStart
	// live in sealed on-disk tiles (served through l.tiles); on in-memory
	// logs tailStart is always 0 and this is the whole log.
	entries   []*Entry
	tailStart uint64
	// staged is the pending batch: accepted submissions that have an SCT
	// but are not yet integrated into the tree. Sequence drains it.
	staged []*Entry
	// dedupe maps cert-identity hash -> entry (staged or resident tail),
	// so resubmitting the same (pre)certificate returns the original SCT
	// (like real logs) whether or not it has been integrated yet. Sealed
	// entries leave this map; their identities are found through the
	// per-tile bloom + index files instead (see add and tiles.go).
	dedupe map[merkle.Hash]*Entry
	// byLeafHash maps Merkle leaf hash -> entry index for
	// get-proof-by-hash, resident tail only; sealed leaf hashes resolve
	// through the tile indexes. It is a lock-free index (see proofs.go):
	// written under mu, read by proof serving with no lock at all.
	byLeafHash *leafIndex
	// published is the latest signed tree head; it may trail the tree by
	// up to MMD.
	published SignedTreeHead
	// pub snapshots the published STH together with the entry prefix it
	// covers. Entries below a published tree size are immutable (the log
	// is append-only and *Entry values are never rewritten), so readers
	// holding the snapshot can walk that prefix with no lock at all —
	// the fast path StreamEntries and GetEntries ride on.
	pub atomic.Pointer[publishedState]
	// bucket implements a token bucket for CapacityPerSecond.
	bucketTokens float64
	bucketAt     time.Time
	// stats
	rejected uint64
	// retryAfterSecs is the Retry-After hint (whole seconds) for 429/503
	// responses, derived from the running sequencer's interval; 0 means
	// no sequencer has configured one yet and the HTTP layer falls back
	// to 1s. See RetryAfterSeconds.
	retryAfterSecs atomic.Int64

	// store is the durability layer for logs opened with Open; nil for
	// in-memory logs. snapAt is the tree size at the last snapshot.
	store  *storage.Store
	snapAt uint64
	// tiles serves sealed tiles on durable logs; nil for in-memory logs.
	tiles *tileStore
	// sealStageHook, when set (tests only), observes the seal lifecycle
	// stages so crash tests can kill the process at each durability
	// boundary.
	sealStageHook func(stage string)
	// seqChunkHook, when set (tests only), runs between integration
	// chunks of a chunked sequence with no locks held, so tests can park
	// the sequencer mid-batch and prove readers are served in the gap.
	seqChunkHook func(done, total int)
}

// newLog validates cfg and builds an unpublished log skeleton shared by
// New (in-memory) and Open (durable).
func newLog(cfg Config) (*Log, error) {
	if cfg.Signer == nil {
		return nil, errors.New("ctlog: Config.Signer is required")
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	if cfg.MMD <= 0 {
		cfg.MMD = 24 * time.Hour
	}
	if cfg.MaxGetEntries <= 0 {
		cfg.MaxGetEntries = 1000
	}
	if cfg.SnapshotEvery == 0 {
		cfg.SnapshotEvery = 4096
	}
	if cfg.SequenceChunk == 0 {
		cfg.SequenceChunk = DefaultSequenceChunk
	}
	if cfg.TileSpan == 0 {
		cfg.TileSpan = DefaultTileSpan
	}
	if cfg.TileSpan < 2 || cfg.TileSpan&(cfg.TileSpan-1) != 0 {
		return nil, fmt.Errorf("ctlog: Config.TileSpan %d is not a power of two ≥ 2", cfg.TileSpan)
	}
	if cfg.PageCacheBytes == 0 {
		cfg.PageCacheBytes = DefaultPageCacheBytes
	}
	// In-memory logs get a source-less tiled tree and never seal, so the
	// tree bytes (and every trajectory) match the durable shape exactly.
	tree, err := merkle.NewTiled(uint64(cfg.TileSpan), nil)
	if err != nil {
		return nil, err
	}
	l := &Log{
		cfg:        cfg,
		tree:       tree,
		dedupe:     make(map[merkle.Hash]*Entry),
		byLeafHash: &leafIndex{},
	}
	l.bucketAt = cfg.Clock()
	l.bucketTokens = cfg.CapacityPerSecond
	return l, nil
}

// New creates an in-memory log and publishes the empty-tree STH.
func New(cfg Config) (*Log, error) {
	l, err := newLog(cfg)
	if err != nil {
		return nil, err
	}
	if err := l.publishLocked(); err != nil {
		return nil, err
	}
	return l, nil
}

// Name returns the log's display name.
func (l *Log) Name() string { return l.cfg.Name }

// Operator returns the log operator.
func (l *Log) Operator() string { return l.cfg.Operator }

// LogID returns the log's RFC 6962 ID.
func (l *Log) LogID() sct.LogID { return l.cfg.Signer.LogID() }

// Verifier returns a verifier for this log's signatures.
func (l *Log) Verifier() sct.SCTVerifier { return l.cfg.Signer.Verifier() }

// ChromeInclusionDate returns when the log joined Chrome's list.
func (l *Log) ChromeInclusionDate() time.Time { return l.cfg.ChromeInclusionDate }

// Rejected returns the number of submissions rejected due to overload.
func (l *Log) Rejected() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.rejected
}

// AddChain submits a final certificate (x509_entry) and returns its SCT.
// The entry is staged, not yet integrated: it enters the Merkle tree at
// the next Sequence/PublishSTH, within the MMD.
func (l *Log) AddChain(cert []byte) (*sct.SignedCertificateTimestamp, error) {
	return l.add(sct.X509Entry(cert))
}

// AddPreChain submits a precertificate (precert_entry: issuer key hash +
// defanged TBS) and returns its SCT, which the CA embeds in the final
// certificate. Like AddChain, the entry is staged for the next sequence
// step.
func (l *Log) AddPreChain(issuerKeyHash [32]byte, tbs []byte) (*sct.SignedCertificateTimestamp, error) {
	return l.add(sct.PrecertEntry(issuerKeyHash, tbs))
}

// add stages one submission. The identity hash, the entry skeleton, and
// the Merkle leaf hash are computed before the lock and the SCT is
// signed after it: none of them depend on tree or batch state, so the
// critical section is two map operations, the capacity check, a slice
// append, and — on durable logs — buffering the entry's WAL record.
// The WAL write must happen inside the lock: record order in the file
// is the lock order, which is what guarantees an entry's record always
// precedes the seal covering its batch. The fsync (the expensive part)
// happens after the lock is released, before the SCT is returned, so
// the acknowledgment is the durability point (group commit collapses
// concurrent submitters into one fsync).
func (l *Log) add(ce sct.CertificateEntry) (*sct.SignedCertificateTimestamp, error) {
	now := l.cfg.Clock()
	ts := uint64(now.UnixMilli())

	// Deduplicate on the entry identity (type + content), not the leaf
	// (which would include the new timestamp). The read-locked pre-check
	// keeps resubmissions — the replay-flood common case — at one
	// identity hash plus a map lookup, skipping the entry construction
	// and leaf hashing below; the write-locked check further down
	// remains authoritative for racing first submissions.
	idHash := entryIdentity(ce)
	l.mu.RLock()
	prev, dup := l.dedupe[idHash]
	l.mu.RUnlock()
	if dup {
		return l.dedupeSCT(prev)
	}
	// Sealed entries are no longer in the map: probe the per-tile blooms
	// and index files, outside any lock (tile files are immutable). The
	// count is captured first so the write-locked recheck below only has
	// to cover tiles sealed after this point.
	var sealedAt uint64
	if l.tiles != nil {
		sealedAt = l.tiles.sealedTiles()
		se, err := l.tiles.lookupID(idHash, 0, sealedAt)
		if err != nil {
			return nil, err
		}
		if se != nil {
			return l.sealedDupSCT(se)
		}
	}
	e := &Entry{
		Timestamp: ts,
		Type:      ce.Type,
	}
	if ce.Type == sct.PrecertLogEntryType {
		e.IssuerKeyHash = ce.IssuerKeyHash
		e.Cert = ce.TBS
	} else {
		e.Cert = ce.Cert
	}
	leaf, err := e.MerkleTreeLeaf()
	if err != nil {
		return nil, err
	}

	e.idHash = idHash
	e.idKey = idKeyOf(idHash)
	e.leafHash = merkle.HashLeaf(leaf)

	l.mu.Lock()
	if prev, ok := l.dedupe[idHash]; ok {
		l.mu.Unlock()
		return l.dedupeSCT(prev)
	}
	if l.tiles != nil {
		// Tiles sealed between the pre-check and here could have absorbed
		// a racing first submission of this identity; re-probe just those.
		// Rare (a seal must have landed in the window), so the tile IO
		// under the write lock is acceptable.
		if now := l.tiles.sealedTiles(); now > sealedAt {
			se, err := l.tiles.lookupID(idHash, sealedAt, now)
			if err != nil {
				l.mu.Unlock()
				return nil, err
			}
			if se != nil {
				l.mu.Unlock()
				return l.sealedDupSCT(se)
			}
		}
	}
	if !l.takeTokenLocked(now) {
		l.rejected++
		l.mu.Unlock()
		return nil, ErrOverloaded
	}
	var walOff int64
	if l.store != nil {
		if walOff, err = l.store.AppendEntry(leaf); err != nil {
			// The record may be half-written; the store is now sticky-
			// failed so nothing appends after the torn bytes, and replay
			// discards them. The entry is not staged — memory and the
			// durable prefix agree that it does not exist.
			l.mu.Unlock()
			return nil, fmt.Errorf("%w: %v", ErrPersistence, err)
		}
	}
	l.staged = append(l.staged, e)
	l.dedupe[idHash] = e
	l.mu.Unlock()

	if l.store != nil && l.cfg.Sync == SyncEachSubmission {
		if err := l.store.Barrier(walOff); err != nil {
			// The entry stays staged: its record is in the file and a
			// replay may well recover it, so memory must agree. Only the
			// acknowledgment is withheld.
			return nil, fmt.Errorf("%w: %v", ErrPersistence, err)
		}
	}

	s, err := l.cfg.Signer.CreateSCT(ts, ce)
	if err != nil {
		l.unstage(e)
		return nil, err
	}
	return s, nil
}

// dedupeSCT answers a resubmission: the SCT is re-issued over the
// original entry's timestamp. Entry content fields are immutable once
// staged, so reading them lock-free here is safe. The entry is marked
// shared first (under the lock) so a concurrent signing-failure
// rollback of the original submission cannot revoke an entry this
// submitter is about to hold an SCT for.
//
// A duplicate's SCT is as strong a promise as the original's, so on a
// durable log it must not be issued over volatile state: the original's
// WAL record is in the file by the time the entry is visible in the
// dedupe map (both happen under the mutex), but under SyncEachSubmission
// it may not be fsynced yet — the duplicate could even overtake the
// original submitter's own Barrier. Syncing here closes that window,
// and a sticky store failure refuses the promise outright.
func (l *Log) dedupeSCT(prev *Entry) (*sct.SignedCertificateTimestamp, error) {
	l.mu.Lock()
	prev.dupAnswered = true
	l.mu.Unlock()
	if l.store != nil {
		if l.cfg.Sync == SyncEachSubmission {
			if err := l.store.Sync(); err != nil {
				return nil, fmt.Errorf("%w: %v", ErrPersistence, err)
			}
		} else if err := l.store.Err(); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrPersistence, err)
		}
	}
	return l.cfg.Signer.CreateSCT(prev.Timestamp, prev.SignatureEntry())
}

// sealedDupSCT answers a resubmission whose original lives in a sealed
// tile: the SCT is re-issued over the original timestamp, read back from
// the tile. No dupAnswered pinning (a sealed entry can never be
// unstaged) and no WAL sync (the original was sequenced, published, and
// sealed long ago — there is nothing volatile to flush).
func (l *Log) sealedDupSCT(e *Entry) (*sct.SignedCertificateTimestamp, error) {
	return l.cfg.Signer.CreateSCT(e.Timestamp, e.SignatureEntry())
}

// unstage rolls a staged entry back after a signing failure, so the
// tree never integrates an entry whose submitter received no SCT: the
// entry is removed from the pending batch and the dedupe map, and its
// capacity token is refunded. Two races make the rollback conditional:
// if a concurrent Sequence already drained the batch the entry is
// integrated and stays, and if a concurrent duplicate submission was
// answered from the dedupe map (dupAnswered) the entry must sequence —
// that submitter holds a valid SCT and the MMD promise it carries must
// hold.
func (l *Log) unstage(e *Entry) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if e.dupAnswered {
		return
	}
	for i := len(l.staged) - 1; i >= 0; i-- {
		if l.staged[i] == e {
			l.staged = append(l.staged[:i], l.staged[i+1:]...)
			delete(l.dedupe, e.idHash)
			if l.cfg.CapacityPerSecond > 0 && l.bucketTokens < l.cfg.CapacityPerSecond {
				l.bucketTokens++
			}
			if l.store != nil {
				// Tombstone the entry's WAL record so replay rolls it
				// back too. No fsync of its own: consistency only
				// matters once a seal commits the batch, and the seal's
				// fsync covers every byte before it — including this
				// one. A failure just sticky-fails the store.
				l.store.AppendUnstage(e.idHash)
			}
			return
		}
	}
}

// entryIdentity hashes the content identity of a submission for dedupe.
// The tag/key-hash/TBS parts stream directly into one digest (the same
// SHA-256(0x00 || type || payload) value merkle.HashLeaf would produce
// over a concatenated buffer) so the per-submission hot path allocates no
// intermediate payload slices.
func entryIdentity(ce sct.CertificateEntry) merkle.Hash {
	h := sha256.New()
	h.Write([]byte{0x00, byte(ce.Type)})
	if ce.Type == sct.PrecertLogEntryType {
		h.Write(ce.IssuerKeyHash[:])
		h.Write(ce.TBS)
	} else {
		h.Write(ce.Cert)
	}
	var out merkle.Hash
	h.Sum(out[:0])
	return out
}

// idKeyOf extracts the cheap 8-byte sort key from an identity hash; the
// live add path and WAL recovery both stamp it this way so the
// canonical batch sort behaves identically on both.
func idKeyOf(idHash merkle.Hash) uint64 {
	return binary.BigEndian.Uint64(idHash[:8])
}

// takeTokenLocked enforces CapacityPerSecond with a token bucket refilled
// by the virtual clock. Burst capacity equals one second of tokens.
func (l *Log) takeTokenLocked(now time.Time) bool {
	if l.cfg.CapacityPerSecond <= 0 {
		return true
	}
	elapsed := now.Sub(l.bucketAt).Seconds()
	if elapsed > 0 {
		l.bucketTokens += elapsed * l.cfg.CapacityPerSecond
		if l.bucketTokens > l.cfg.CapacityPerSecond {
			l.bucketTokens = l.cfg.CapacityPerSecond
		}
		l.bucketAt = now
	}
	if l.bucketTokens < 1 {
		return false
	}
	l.bucketTokens--
	return true
}

// TreeSize returns the current sequenced (but possibly unpublished) tree
// size. Staged submissions are not counted until sequenced.
func (l *Log) TreeSize() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.tree.Size()
}

// PublishSTH sequences all staged submissions and signs and publishes a
// tree head over the resulting tree. Real logs do this periodically
// within the MMD; experiments call it at batch boundaries of the virtual
// clock. On durable logs the STH record is fsynced before the new head
// becomes visible to readers, so a served STH is always recoverable.
//
// Sequencing runs chunked (see Sequence): a large batch integrates over
// several lock holds, with readers served between them, and only then
// is the head signed and published under one final hold. The sequencer
// mutex spans both phases so no other sequence step can slip a partial
// batch between the seal and the STH covering it.
func (l *Log) PublishSTH() (SignedTreeHead, error) {
	l.seqMu.Lock()
	defer l.seqMu.Unlock()
	if _, err := l.sequence(); err != nil {
		return SignedTreeHead{}, err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.publishLocked(); err != nil {
		return SignedTreeHead{}, err
	}
	return l.published, nil
}

// publishedState is the immutable snapshot stored in Log.pub: the latest
// STH plus where the entries it covers live — the resident tail slice
// for [tailStart, TreeSize), the sealed tiles below tailStart — plus a
// frozen Merkle view over exactly the published prefix. Readers hold it
// lock-free; a seal after publication does not disturb it (the old tail
// and level backing arrays stay alive until the next publish swaps the
// view).
type publishedState struct {
	sth SignedTreeHead
	// tail holds entries [tailStart, sth.TreeHead.TreeSize); the slice is
	// append-frozen.
	tail      []*Entry
	tailStart uint64
	// tiles serves the sealed prefix; nil on in-memory logs (tailStart 0).
	tiles *tileStore
	// tree is the frozen proof view over the published prefix
	// (merkle.TiledTree.PrefixView at sth.TreeHead.TreeSize): inclusion
	// and consistency proofs at any size ≤ the published head compute
	// from it with no log lock. See proofs.go.
	tree *merkle.TiledTree
}

// storePublishedLocked installs the published snapshot readers serve
// from: the current STH, the append-frozen resident tail it covers, the
// tile store, and a frozen proof view at the published size. Requires
// l.mu and l.published to be current. The published size may trail the
// live tree (recovery can rebuild sequenced-but-unpublished seals), but
// never the sealed prefix — sealing only happens below a published head
// — so the PrefixView precondition always holds.
func (l *Log) storePublishedLocked() error {
	view, err := l.tree.PrefixView(l.published.TreeHead.TreeSize)
	if err != nil {
		return err
	}
	n := l.published.TreeHead.TreeSize - l.tailStart
	l.pub.Store(&publishedState{
		sth:       l.published,
		tail:      l.entries[:n:n],
		tailStart: l.tailStart,
		tiles:     l.tiles,
		tree:      view,
	})
	return nil
}

func (l *Log) publishLocked() error {
	root, err := l.tree.Root()
	if err != nil {
		return err
	}
	th := sct.TreeHead{
		Timestamp: uint64(l.cfg.Clock().UnixMilli()),
		TreeSize:  l.tree.Size(),
		RootHash:  [32]byte(root),
	}
	sig, err := l.cfg.Signer.SignTreeHead(th)
	if err != nil {
		return fmt.Errorf("ctlog: signing STH: %w", err)
	}
	// Persist the head only when it covers new tree state. A wall-clock
	// sequencer republishes every tick — on an idle log that is the
	// same (size, root) under a fresh timestamp, and appending+fsyncing
	// each one would grow the WAL without bound at zero load. Skipping
	// them is safe: recovery serves the last persisted head (same tree,
	// older timestamp) and the first live tick republishes fresh.
	if ps := l.pub.Load(); l.store != nil &&
		!(ps != nil && ps.sth.TreeHead.TreeSize == th.TreeSize && ps.sth.TreeHead.RootHash == th.RootHash) {
		sigBytes, err := sig.Serialize()
		if err != nil {
			return fmt.Errorf("ctlog: serializing STH signature: %w", err)
		}
		if _, err := l.store.AppendSTH(storage.STHRecord{
			Timestamp: th.Timestamp,
			TreeSize:  th.TreeSize,
			Root:      th.RootHash,
			Sig:       sigBytes,
		}); err != nil {
			return fmt.Errorf("%w: %v", ErrPersistence, err)
		}
		if err := l.store.Sync(); err != nil {
			return fmt.Errorf("%w: %v", ErrPersistence, err)
		}
	}
	l.published = SignedTreeHead{TreeHead: th, Sig: sig}
	if err := l.storePublishedLocked(); err != nil {
		return err
	}
	// Seal every complete tile the new head covers: tile files are
	// written, verified, and installed; RAM and WAL compact behind them.
	if err := l.maybeSealLocked(); err != nil {
		return err
	}
	if l.store != nil && l.cfg.SnapshotEvery > 0 && l.snapshotDueLocked() {
		if err := l.writeSnapshotLocked(); err != nil {
			return err
		}
	}
	return nil
}

// snapshotDueLocked decides whether publication should write a full
// snapshot: at least SnapshotEvery entries since the last one AND at
// least 20% tree growth. A snapshot costs O(tree) to encode and write
// (under the mutex — the price of a consistent image), so the growth
// floor keeps the cadence geometric: cumulative snapshot I/O stays
// O(total entries) instead of going quadratic as the tree outgrows a
// fixed entry interval.
func (l *Log) snapshotDueLocked() bool {
	grown := l.tree.Size() - l.snapAt
	return grown >= uint64(l.cfg.SnapshotEvery) && grown*5 >= l.tree.Size()
}

// STH returns the latest published signed tree head.
func (l *Log) STH() SignedTreeHead {
	return l.pub.Load().sth
}

// GetEntries returns entries [start, end] (inclusive, like the RFC API),
// truncated to MaxGetEntries and to the published tree size. Ranges in
// the resident tail are served lock-free from the published snapshot;
// ranges in the sealed prefix are served from the tile page cache, and —
// like production tile-backed logs — the page is additionally clamped at
// the end of the tile containing start, so one call touches at most one
// tile. Callers page on from where the response stopped (ctclient does),
// so the short page is invisible above the wire. The returned slice
// aliases immutable published state and must be treated as read-only.
func (l *Log) GetEntries(start, end uint64) ([]*Entry, error) {
	ps := l.pub.Load()
	size := ps.sth.TreeHead.TreeSize
	if start > end || start >= size {
		return nil, fmt.Errorf("%w: start=%d end=%d size=%d", ErrBadRange, start, end, size)
	}
	if end >= size {
		end = size - 1
	}
	if n := end - start + 1; n > uint64(l.cfg.MaxGetEntries) {
		end = start + uint64(l.cfg.MaxGetEntries) - 1
	}
	if start >= ps.tailStart {
		i, j := start-ps.tailStart, end-ps.tailStart
		return ps.tail[i : j+1 : j+1], nil
	}
	// Sealed prefix. start's tile is complete (tailStart is tile-aligned),
	// so clamping at its boundary never clips below a valid page.
	tile := start / ps.tiles.span
	if last := (tile+1)*ps.tiles.span - 1; end > last {
		end = last
	}
	ents, err := ps.tiles.entries(tile)
	if err != nil {
		return nil, err
	}
	base := tile * ps.tiles.span
	return ents[start-base : end-base+1 : end-base+1], nil
}

// StreamEntries calls fn for every entry in [start, end] (inclusive),
// clipped to the published tree size, and stops at fn's first error.
// Unlike paging through GetEntries it allocates no per-batch slices and
// never takes the log mutex: the published prefix is immutable, so the
// walk runs on the lock-free snapshot even while writers append — the
// sealed part tile by tile through the page cache, the resident tail
// directly. It is the bulk-iteration substrate for harvest-scale crawls.
func (l *Log) StreamEntries(start, end uint64, fn func(*Entry) error) error {
	ps := l.pub.Load()
	size := ps.sth.TreeHead.TreeSize
	if start > end || start >= size {
		return fmt.Errorf("%w: start=%d end=%d size=%d", ErrBadRange, start, end, size)
	}
	if end >= size {
		end = size - 1
	}
	for start <= end {
		if start >= ps.tailStart {
			for _, e := range ps.tail[start-ps.tailStart : end-ps.tailStart+1] {
				if err := fn(e); err != nil {
					return err
				}
			}
			return nil
		}
		// Sealed prefix: walk tile by tile so at most one decoded tile
		// page is pinned at a time.
		tile := start / ps.tiles.span
		base := tile * ps.tiles.span
		stop := min(end, base+ps.tiles.span-1)
		ents, err := ps.tiles.entries(tile)
		if err != nil {
			return err
		}
		for _, e := range ents[start-base : stop-base+1] {
			if err := fn(e); err != nil {
				return err
			}
		}
		start = stop + 1
	}
	return nil
}
