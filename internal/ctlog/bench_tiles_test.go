package ctlog

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"ctrise/internal/sct"
)

// TestWriteBenchTiles regenerates BENCH_tiles.json at the repository
// root: the checked-in perf trajectory for the tiled storage engine.
// Gated on UPDATE_BENCH_TILES=1 (it replays over two million
// submissions and takes a few minutes):
//
//	UPDATE_BENCH_TILES=1 go test -run TestWriteBenchTiles -timeout 30m ./internal/ctlog
//
// The artifact records, at a quarter, half, and one million entries:
//
//   - steady-state heap (runtime.ReadMemStats after GC) of a tile-backed
//     log reopened from disk versus the same log held fully in memory —
//     the tiled number is bounded by the page-cache budget plus ~4 bloom
//     bytes per sealed entry, independent of tree size, while the
//     in-memory number grows linearly;
//   - read latency (get-entries page, inclusion proof, consistency
//     proof) for the in-memory log and for the tiled log with the page
//     cache cold (disabled) and hot (warmed at a budget that holds the
//     working set);
//   - page-cache hit/miss/eviction counters for the hot run and for a
//     uniform random scan at the small steady-state budget.
func TestWriteBenchTiles(t *testing.T) {
	if os.Getenv("UPDATE_BENCH_TILES") != "1" {
		t.Skip("set UPDATE_BENCH_TILES=1 to regenerate BENCH_tiles.json")
	}

	const (
		span          = 1024
		totalEntries  = 1 << 20
		chunk         = 1 << 16 // publish (and seal) cadence while growing
		heapCacheB    = 8 << 20
		hotCacheB     = int64(512 << 20)
		latencyOps    = 100
		workloadPages = 256
	)
	sizes := []uint64{1 << 18, 1 << 19, totalEntries}
	clock := func() time.Time { return time.Date(2018, 4, 1, 12, 0, 0, 0, time.UTC) }
	base := Config{
		Name:           "bench tiles log",
		Signer:         sct.NewFastSigner("bench tiles log"),
		Clock:          clock,
		Sync:           SyncAtSequence,
		SnapshotEvery:  -1,
		TileSpan:       span,
		PageCacheBytes: heapCacheB,
	}

	heapNow := func() uint64 {
		runtime.GC()
		runtime.GC()
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return ms.HeapAlloc
	}
	baseline := heapNow()

	// readWorkload drives a steady-state mix over the published tree:
	// uniform random get-entries pages, inclusion proofs, and consistency
	// proofs.
	readWorkload := func(l *Log, rng *rand.Rand, pages int) {
		t.Helper()
		size := l.TreeSize()
		for i := 0; i < pages; i++ {
			start := (rng.Uint64() % size) &^ (span - 1)
			if _, err := l.GetEntries(start, start+span-1); err != nil {
				t.Fatal(err)
			}
			if _, err := l.GetInclusionProof(rng.Uint64()%size, size); err != nil {
				t.Fatal(err)
			}
			if _, err := l.GetConsistencyProof(1+rng.Uint64()%(size-1), size); err != nil {
				t.Fatal(err)
			}
		}
	}

	type cacheJSON struct {
		Hits      uint64  `json:"hits"`
		Misses    uint64  `json:"misses"`
		Evictions uint64  `json:"evictions"`
		HitRate   float64 `json:"hit_rate"`
	}
	cachify := func(l *Log) cacheJSON {
		s := l.CacheStats()
		return cacheJSON{Hits: s.Hits, Misses: s.Misses, Evictions: s.Evictions, HitRate: s.HitRate()}
	}

	type heapPoint struct {
		Entries    uint64 `json:"entries"`
		TiledBytes uint64 `json:"tiled_bytes"`
		InMemBytes uint64 `json:"inmem_bytes"`
	}
	heap := make(map[uint64]*heapPoint)
	for _, s := range sizes {
		heap[s] = &heapPoint{Entries: s}
	}

	// grow submits distinct certificates up to size, publishing (which
	// seals on durable logs) every chunk.
	grow := func(l *Log, from, to uint64) {
		t.Helper()
		for i := from; i < to; i++ {
			if _, err := l.AddChain(benchCert(i)); err != nil {
				t.Fatal(err)
			}
			if (i+1)%chunk == 0 {
				if _, err := l.PublishSTH(); err != nil {
					t.Fatal(err)
				}
			}
		}
	}

	// --- Tiled log: grow on disk, measure reopened steady state. ---
	dir := t.TempDir()
	var uniformCache cacheJSON
	{
		l, err := Open(dir, base)
		if err != nil {
			t.Fatal(err)
		}
		grown := uint64(0)
		for _, size := range sizes {
			grow(l, grown, size)
			grown = size
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			l, err = Open(dir, base)
			if err != nil {
				t.Fatal(err)
			}
			if l.TreeSize() != size {
				t.Fatalf("reopened tree size %d, want %d", l.TreeSize(), size)
			}
			rng := rand.New(rand.NewSource(int64(size)))
			readWorkload(l, rng, workloadPages)
			if h := heapNow(); h > baseline {
				heap[size].TiledBytes = h - baseline
			}
			if size == totalEntries {
				uniformCache = cachify(l)
			}
		}
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}
	if h := heapNow(); h > baseline {
		baseline = h // residue after the tiled phase stays out of the in-memory numbers
	}

	// --- In-memory log: same content, everything resident. ---
	type latencyTriple struct {
		InMem     int64 `json:"inmem"`
		TiledCold int64 `json:"tiled_cold"`
		TiledHot  int64 `json:"tiled_hot"`
	}
	var entriesLat, inclusionLat, consistencyLat latencyTriple

	// measure times one read mix at the full size and returns per-op
	// nanoseconds for (get-entries page, inclusion proof, consistency
	// proof). The index sequence is deterministic, so cold and hot runs
	// touch identical tiles.
	measure := func(l *Log) (int64, int64, int64) {
		t.Helper()
		size := l.TreeSize()
		rng := rand.New(rand.NewSource(42))
		starts := make([]uint64, latencyOps)
		for i := range starts {
			starts[i] = (rng.Uint64() % size) &^ (span - 1)
		}
		t0 := time.Now()
		for _, s := range starts {
			if _, err := l.GetEntries(s, s+span-1); err != nil {
				t.Fatal(err)
			}
		}
		dEntries := time.Since(t0)
		t0 = time.Now()
		for _, s := range starts {
			if _, err := l.GetInclusionProof(s+rng.Uint64()%span, size); err != nil {
				t.Fatal(err)
			}
		}
		dInclusion := time.Since(t0)
		t0 = time.Now()
		for range starts {
			if _, err := l.GetConsistencyProof(1+rng.Uint64()%(size-1), size); err != nil {
				t.Fatal(err)
			}
		}
		dConsistency := time.Since(t0)
		per := func(d time.Duration) int64 { return d.Nanoseconds() / latencyOps }
		return per(dEntries), per(dInclusion), per(dConsistency)
	}

	{
		l, err := New(base)
		if err != nil {
			t.Fatal(err)
		}
		grown := uint64(0)
		for _, size := range sizes {
			grow(l, grown, size)
			grown = size
			if _, err := l.PublishSTH(); err != nil {
				t.Fatal(err)
			}
			if h := heapNow(); h > baseline {
				heap[size].InMemBytes = h - baseline
			}
		}
		entriesLat.InMem, inclusionLat.InMem, consistencyLat.InMem = measure(l)
	}

	// --- Tiled latency: cold (cache disabled) and hot (warmed). ---
	var hotCache cacheJSON
	{
		cfg := base
		cfg.PageCacheBytes = -1
		l, err := Open(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		entriesLat.TiledCold, inclusionLat.TiledCold, consistencyLat.TiledCold = measure(l)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}

		cfg.PageCacheBytes = hotCacheB
		l, err = Open(dir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		measure(l) // warm: pages the deterministic working set in
		entriesLat.TiledHot, inclusionLat.TiledHot, consistencyLat.TiledHot = measure(l)
		hotCache = cachify(l)
		if err := l.Close(); err != nil {
			t.Fatal(err)
		}
	}

	heapPoints := make([]heapPoint, 0, len(sizes))
	for _, s := range sizes {
		heapPoints = append(heapPoints, *heap[s])
	}
	artifact := struct {
		Schema string `json:"schema"`
		Regen  string `json:"regenerate_with"`
		Config struct {
			Entries            uint64 `json:"entries"`
			TileSpan           int    `json:"tile_span"`
			CertBytes          int    `json:"cert_bytes"`
			SteadyCacheBytes   int64  `json:"steady_state_page_cache_bytes"`
			HotCacheBytes      int64  `json:"hot_page_cache_bytes"`
			LatencyOpsPerPoint int    `json:"latency_ops_per_point"`
		} `json:"config"`
		Heap      []heapPoint `json:"heap_steady_state"`
		LatencyNS struct {
			GetEntriesPage   latencyTriple `json:"get_entries_page"`
			InclusionProof   latencyTriple `json:"inclusion_proof"`
			ConsistencyProof latencyTriple `json:"consistency_proof"`
		} `json:"latency_ns"`
		PageCache struct {
			Hot          cacheJSON `json:"hot_run"`
			UniformSmall cacheJSON `json:"uniform_random_at_steady_budget"`
		} `json:"page_cache"`
	}{}
	artifact.Schema = "ctrise/bench-tiles/v1"
	artifact.Regen = "UPDATE_BENCH_TILES=1 go test -run TestWriteBenchTiles -timeout 30m ./internal/ctlog"
	artifact.Config.Entries = totalEntries
	artifact.Config.TileSpan = span
	artifact.Config.CertBytes = 1024
	artifact.Config.SteadyCacheBytes = heapCacheB
	artifact.Config.HotCacheBytes = hotCacheB
	artifact.Config.LatencyOpsPerPoint = latencyOps
	artifact.Heap = heapPoints
	artifact.LatencyNS.GetEntriesPage = entriesLat
	artifact.LatencyNS.InclusionProof = inclusionLat
	artifact.LatencyNS.ConsistencyProof = consistencyLat
	artifact.PageCache.Hot = hotCache
	artifact.PageCache.UniformSmall = uniformCache

	out, err := json.MarshalIndent(artifact, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("..", "..", "BENCH_tiles.json")
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("wrote %s (%d bytes)\n", path, len(out)+1)
}
