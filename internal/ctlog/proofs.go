package ctlog

import (
	"fmt"
	"sync"

	"ctrise/internal/merkle"
)

// Lock-free proof serving. Inclusion proofs, consistency proofs, and
// proof-by-hash at a published tree size are pure functions of the
// immutable published prefix, so — like get-sth and get-entries before
// them — they are served entirely from the publishedState snapshot and
// never touch the log mutex. The pieces:
//
//   - publishedState.tree is a merkle PrefixView frozen at the published
//     size when publishLocked installs the snapshot: an O(log n) freeze
//     of the live tree's level caches that answers proofs for any size
//     ≤ the published head, backed by the frozen RAM slices for the
//     resident range and by the (immutable, page-cached) tile files for
//     the sealed prefix. Requests above the published head fail with the
//     same merkle errors the live tree returned for sizes above its
//     head, so the HTTP status surface is unchanged.
//   - byLeafHash, the hash → index lookup behind get-proof-by-hash, is a
//     leafIndex (sync.Map) instead of a mutex-guarded map: the sequencer
//     inserts under the write lock as before, readers resolve hashes
//     with an atomic lookup. Sealed hashes leave the map only after
//     their tile registers in the tileStore (maybeSealLocked's install
//     phase runs after sealTileLocked), so a reader that misses the map
//     always finds the hash through the per-tile blooms — there is no
//     window where a published leaf resolves nowhere.
//
// A proof reader therefore observes one consistent published view end
// to end even while a chunked Sequence holds the write lock between its
// integration bursts — the RWMutex writer-preference convoy that made
// proof p99 track the whole batch integration is structurally gone.

// leafIndex maps Merkle leaf hash → entry index for the resident
// (unsealed) sequenced range. Writes happen under the log mutex (the
// sequencer integrating a batch, the seal install pruning behind the
// tiles, recovery before the log is visible); reads are lock-free.
// Indices are immutable once assigned, so a racing read can never
// observe a wrong value — only a hash's presence moves, and only from
// this map into the sealed tiles' index files.
type leafIndex struct{ m sync.Map }

func (ix *leafIndex) set(h merkle.Hash, idx uint64) { ix.m.Store(h, idx) }

func (ix *leafIndex) delete(h merkle.Hash) { ix.m.Delete(h) }

func (ix *leafIndex) get(h merkle.Hash) (uint64, bool) {
	v, ok := ix.m.Load(h)
	if !ok {
		return 0, false
	}
	return v.(uint64), true
}

// GetInclusionProof returns the proof for an entry index at a tree size.
// It is served lock-free from the published snapshot: treeSize may be at
// most the published tree size (the live tree can run ahead of the head
// by up to one sequence step, but proofs over unpublished state would
// pin the log to an STH it never signed).
func (l *Log) GetInclusionProof(index, treeSize uint64) ([]merkle.Hash, error) {
	return l.pub.Load().tree.InclusionProof(index, treeSize)
}

// GetConsistencyProof returns the proof that the tree of size first is a
// prefix of the tree of size second. Like the other proof endpoints it
// is served lock-free from the published snapshot, so second may be at
// most the published tree size; RFC 6962 clients only ever ask about
// sizes they saw in an STH, which are published by construction.
func (l *Log) GetConsistencyProof(first, second uint64) ([]merkle.Hash, error) {
	return l.pub.Load().tree.ConsistencyProof(first, second)
}

// GetProofByHash returns the inclusion proof and index for a leaf hash
// at the given tree size, served lock-free from the published snapshot.
// The resident range resolves through the leafIndex, sealed leaves
// through the per-tile bloom + index files; proof construction may page
// sealed hash tiles in from disk through the page cache. treeSize may
// be at most the published tree size.
func (l *Log) GetProofByHash(leafHash merkle.Hash, treeSize uint64) (uint64, []merkle.Hash, error) {
	ps := l.pub.Load()
	idx, ok := l.byLeafHash.get(leafHash)
	if !ok && ps.tiles != nil {
		// Not resident: the hash either lives in a sealed tile or is
		// unknown. The map is probed first — a hash can move from the map
		// to the tiles (never back), and deletion happens only after the
		// tile registers, so missing both means it truly is not sequenced.
		var err error
		idx, ok, err = ps.tiles.lookupLeafIndex(leafHash)
		if err != nil {
			return 0, nil, err
		}
	}
	if !ok {
		return 0, nil, ErrNotFound
	}
	if idx >= treeSize {
		return 0, nil, fmt.Errorf("%w: leaf %d not in tree of size %d", ErrBadRange, idx, treeSize)
	}
	proof, err := ps.tree.InclusionProof(idx, treeSize)
	return idx, proof, err
}
