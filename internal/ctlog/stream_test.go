package ctlog

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"ctrise/internal/sct"
)

func newStreamTestLog(t *testing.T) *Log {
	t.Helper()
	l, err := New(Config{
		Name:     "stream test log",
		Operator: "Test",
		Signer:   sct.NewFastSigner("stream test log"),
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// StreamEntries must visit exactly the entries GetEntries pagination
// returns, in order, for the published prefix.
func TestStreamEntriesMatchesGetEntries(t *testing.T) {
	l := newStreamTestLog(t)
	const total = 2500
	for i := 0; i < total; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("cert-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	// Add unpublished entries; neither API may see them.
	for i := 0; i < 50; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("unpublished-%d", i))); err != nil {
			t.Fatal(err)
		}
	}

	var paged []*Entry
	var start uint64
	for start < total {
		batch, err := l.GetEntries(start, total+100)
		if err != nil {
			t.Fatal(err)
		}
		paged = append(paged, batch...)
		start += uint64(len(batch))
	}

	var streamed []*Entry
	if err := l.StreamEntries(0, total+100, func(e *Entry) error {
		streamed = append(streamed, e)
		return nil
	}); err != nil {
		t.Fatal(err)
	}

	if len(streamed) != total || len(paged) != total {
		t.Fatalf("streamed=%d paged=%d want %d", len(streamed), len(paged), total)
	}
	for i := range streamed {
		if streamed[i] != paged[i] {
			t.Fatalf("entry %d differs", i)
		}
		if streamed[i].Index != uint64(i) {
			t.Fatalf("entry %d has index %d", i, streamed[i].Index)
		}
	}
}

func TestStreamEntriesBadRangeAndAbort(t *testing.T) {
	l := newStreamTestLog(t)
	if _, err := l.AddChain([]byte("one")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	if err := l.StreamEntries(5, 10, func(*Entry) error { return nil }); !errors.Is(err, ErrBadRange) {
		t.Fatalf("err = %v, want ErrBadRange", err)
	}
	if err := l.StreamEntries(1, 0, func(*Entry) error { return nil }); !errors.Is(err, ErrBadRange) {
		t.Fatalf("err = %v, want ErrBadRange", err)
	}
	sentinel := errors.New("stop")
	if err := l.StreamEntries(0, 0, func(*Entry) error { return sentinel }); !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

// Concurrent readers streaming the published prefix while writers append
// and republish must never race (run under -race) and must always see a
// consistent snapshot: every streamed prefix is a prefix of the final
// log.
func TestStreamEntriesConcurrentWithAppends(t *testing.T) {
	l := newStreamTestLog(t)
	for i := 0; i < 100; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("seed-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	errs := make(chan error, 8)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				size := l.STH().TreeHead.TreeSize
				var prev uint64
				err := l.StreamEntries(0, size-1, func(e *Entry) error {
					if e.Index != prev {
						return fmt.Errorf("index %d, want %d", e.Index, prev)
					}
					prev++
					return nil
				})
				if err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for i := 0; i < 400; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("live-%d", i))); err != nil {
			t.Fatal(err)
		}
		if i%25 == 0 {
			if _, err := l.PublishSTH(); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}
