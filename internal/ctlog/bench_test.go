package ctlog

import (
	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"ctrise/internal/merkle"
	"ctrise/internal/sct"
)

// mutexLog is the pre-sequencer baseline: the entry identity hash, SCT
// signature, leaf hash, and tree append all execute under one mutex, so
// concurrent submitters serialize on the whole submission. It is kept
// here (not in the production code) purely as the BenchmarkLogAdd
// reference point.
type mutexLog struct {
	signer sct.LogSigner
	clock  func() time.Time

	mu         sync.Mutex
	tree       *merkle.Tree
	entries    []*Entry
	dedupe     map[merkle.Hash]uint64
	byLeafHash map[merkle.Hash]uint64
}

func newMutexLog(signer sct.LogSigner, clock func() time.Time) *mutexLog {
	return &mutexLog{
		signer:     signer,
		clock:      clock,
		tree:       merkle.New(),
		dedupe:     make(map[merkle.Hash]uint64),
		byLeafHash: make(map[merkle.Hash]uint64),
	}
}

func (l *mutexLog) addChain(cert []byte) (*sct.SignedCertificateTimestamp, error) {
	ce := sct.X509Entry(cert)
	ts := uint64(l.clock().UnixMilli())
	l.mu.Lock()
	defer l.mu.Unlock()
	idHash := entryIdentity(ce)
	if idx, ok := l.dedupe[idHash]; ok {
		e := l.entries[idx]
		return l.signer.CreateSCT(e.Timestamp, e.SignatureEntry())
	}
	e := &Entry{Index: uint64(len(l.entries)), Timestamp: ts, Type: ce.Type, Cert: ce.Cert}
	s, err := l.signer.CreateSCT(ts, ce)
	if err != nil {
		return nil, err
	}
	leafHash, err := e.LeafHash()
	if err != nil {
		return nil, err
	}
	l.tree.AppendLeafHash(leafHash)
	l.entries = append(l.entries, e)
	l.dedupe[idHash] = e.Index
	l.byLeafHash[leafHash] = e.Index
	return s, nil
}

// benchCert builds a distinct, realistically sized (1 KiB) certificate
// for submission i. A fresh slice per call matches the server shape,
// where each request decodes its chain into new buffers whose ownership
// passes to the log.
func benchCert(i uint64) []byte {
	buf := make([]byte, 1024)
	var seed [8]byte
	binary.BigEndian.PutUint64(seed[:], i)
	sum := sha256.Sum256(seed[:])
	for off := 0; off < len(buf); off += len(sum) {
		copy(buf[off:], sum[:])
	}
	binary.BigEndian.PutUint64(buf, i)
	return buf
}

// BenchmarkLogAdd measures contended submission throughput: GOMAXPROCS
// goroutines flooding one log with distinct certificates.
//
//	staged:       the production stage → sequence path (hashing and SCT
//	              signing outside the lock; the final Sequence is
//	              included in the measured time)
//	single-mutex: the pre-sequencer baseline, everything under one lock
//
// The fast sub-benchmarks use the simulation FastSigner (keyed-hash
// SCTs, the timeline replay's configuration); the ecdsa ones use the
// production P-256 signer, where moving signing off the lock matters
// most. The staged/single-mutex ratio scales with GOMAXPROCS: the
// single-mutex path serializes all hashing and signing, so its ns/op is
// flat in the core count, while the staged path's hashing and signing
// parallelize and only the short dedupe+append section serializes. On
// one core the staged path is slightly slower (it pays the batch
// bookkeeping without any parallelism to exploit).
func BenchmarkLogAdd(b *testing.B) {
	signers := []struct {
		name string
		mk   func() sct.LogSigner
	}{
		{"fast", func() sct.LogSigner { return sct.NewFastSigner("bench log") }},
		{"ecdsa", func() sct.LogSigner {
			s, err := sct.NewSigner(nil)
			if err != nil {
				b.Fatal(err)
			}
			return s
		}},
	}
	clock := func() time.Time { return time.Date(2018, 4, 1, 12, 0, 0, 0, time.UTC) }
	for _, sg := range signers {
		b.Run(sg.name, func(b *testing.B) {
			b.Run("staged", func(b *testing.B) {
				b.ReportAllocs()
				l, err := New(Config{Name: "bench log", Signer: sg.mk(), Clock: clock})
				if err != nil {
					b.Fatal(err)
				}
				var next atomic.Uint64
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						if _, err := l.AddChain(benchCert(next.Add(1))); err != nil {
							b.Error(err)
							return
						}
					}
				})
				// Integration is part of the cost being claimed, so
				// sequence inside the measured window.
				l.Sequence()
				if l.TreeSize() != uint64(b.N) {
					b.Fatalf("tree size = %d, want %d", l.TreeSize(), b.N)
				}
			})
			b.Run("single-mutex", func(b *testing.B) {
				b.ReportAllocs()
				l := newMutexLog(sg.mk(), clock)
				var next atomic.Uint64
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						if _, err := l.addChain(benchCert(next.Add(1))); err != nil {
							b.Error(err)
							return
						}
					}
				})
				if l.tree.Size() != uint64(b.N) {
					b.Fatalf("tree size = %d, want %d", l.tree.Size(), b.N)
				}
			})
		})
	}
}

// BenchmarkLogAddDurable measures what durability costs the contended
// submission path: GOMAXPROCS goroutines flooding one log, staged
// in-memory (the BenchmarkLogAdd baseline) versus staged+WAL in its two
// sync policies.
//
//	mem:            no store (in-memory staged path, the reference)
//	wal-sync-each:  every SCT waits for its WAL record's fsync (group
//	                commit — concurrent submitters amortize one fsync);
//	                the production posture
//	wal-sync-seal:  WAL records ride OS buffering; fsync happens at the
//	                sequencing barrier (bulk-replay posture)
//
// The measured window includes the final Sequence (and its seal fsync)
// so both sides claim fully integrated, durable-where-promised trees.
func BenchmarkLogAddDurable(b *testing.B) {
	clock := func() time.Time { return time.Date(2018, 4, 1, 12, 0, 0, 0, time.UTC) }
	modes := []struct {
		name    string
		durable bool
		sync    SyncPolicy
	}{
		{"mem", false, 0},
		{"wal-sync-each", true, SyncEachSubmission},
		{"wal-sync-seal", true, SyncAtSequence},
	}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			cfg := Config{
				Name:   "bench log",
				Signer: sct.NewFastSigner("bench log"),
				Clock:  clock,
				Sync:   mode.sync,
				// No mid-run snapshots: the cost under test is the WAL.
				SnapshotEvery: -1,
			}
			var (
				l   *Log
				err error
			)
			if mode.durable {
				l, err = Open(b.TempDir(), cfg)
			} else {
				l, err = New(cfg)
			}
			if err != nil {
				b.Fatal(err)
			}
			var next atomic.Uint64
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := l.AddChain(benchCert(next.Add(1))); err != nil {
						b.Error(err)
						return
					}
				}
			})
			if _, err := l.Sequence(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			if l.TreeSize() != uint64(b.N) {
				b.Fatalf("tree size = %d, want %d", l.TreeSize(), b.N)
			}
			if err := l.Close(); err != nil {
				b.Fatal(err)
			}
		})
	}
}

// BenchmarkLogReadTiled measures the sealed-region read path of a
// tile-backed log: get-entries pages and inclusion proofs served from
// immutable tile files. The hot variant runs with the default page-cache
// budget, so after the first pass every tile is a RAM hit; the cold
// variant disables the cache (PageCacheBytes < 0, pass-through), so every
// operation re-reads and re-verifies tile bytes from the store — the
// spread between the two is what the LRU cache buys.
func BenchmarkLogReadTiled(b *testing.B) {
	const (
		span  = 256
		total = 16384 // 64 sealed tiles, empty tail
	)
	clock := func() time.Time { return time.Date(2018, 4, 1, 12, 0, 0, 0, time.UTC) }
	base := Config{
		Name:          "bench log",
		Signer:        sct.NewFastSigner("bench log"),
		Clock:         clock,
		Sync:          SyncAtSequence,
		SnapshotEvery: -1,
		TileSpan:      span,
	}
	dir := b.TempDir()
	l, err := Open(dir, base)
	if err != nil {
		b.Fatal(err)
	}
	for i := uint64(0); i < total; i++ {
		if _, err := l.AddChain(benchCert(i)); err != nil {
			b.Fatal(err)
		}
	}
	if _, err := l.PublishSTH(); err != nil {
		b.Fatal(err)
	}
	if got := l.TiledThrough(); got != total {
		b.Fatalf("tiled through %d, want %d", got, total)
	}
	leafHashes := make([]merkle.Hash, 0, total)
	err = l.StreamEntries(0, total-1, func(e *Entry) error {
		h, err := e.LeafHash()
		if err != nil {
			return err
		}
		leafHashes = append(leafHashes, h)
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}

	for _, mode := range []struct {
		name       string
		cacheBytes int64
	}{
		{"hot", 0},   // default budget; the whole log fits
		{"cold", -1}, // pass-through cache, every read decodes from disk
	} {
		cfg := base
		cfg.PageCacheBytes = mode.cacheBytes
		l, err := Open(dir, cfg)
		if err != nil {
			b.Fatal(err)
		}
		size := l.TreeSize()
		b.Run("entries-"+mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				start := (uint64(i) * span) % total
				page, err := l.GetEntries(start, start+span-1)
				if err != nil {
					b.Fatal(err)
				}
				if len(page) != span {
					b.Fatalf("page of %d entries", len(page))
				}
			}
		})
		b.Run("proof-"+mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				// A large odd stride visits tiles in a non-sequential
				// order without repeating until all leaves are seen.
				idx := (uint64(i) * 2654435761) % total
				if _, _, err := l.GetProofByHash(leafHashes[idx], size); err != nil {
					b.Fatal(err)
				}
			}
		})
		if err := l.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
