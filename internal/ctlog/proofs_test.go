package ctlog

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"ctrise/internal/merkle"
	"ctrise/internal/sct"
)

// Tests for the lock-free proof serving path: the structural zero-mutex
// property, the convoy regression (proof latency during a large chunked
// integration stays at idle levels), and the error surface over the
// published snapshot.

// TestProofServingHoldsNoLogMutex is the structural assertion behind
// "lock-free": every proof endpoint must complete while the log's write
// lock is HELD by the test. On the old RLock serving path each call
// deadlocks here and the watchdog fires. Run over both an in-memory log
// and a durable tiled one (whose proof-by-hash path additionally walks
// the tile blooms and index files).
func TestProofServingHoldsNoLogMutex(t *testing.T) {
	run := func(t *testing.T, l *Log, clk *virtualClock) {
		for i := 0; i < 40; i++ {
			if _, err := l.AddChain([]byte(fmt.Sprintf("nolock-%02d", i))); err != nil {
				t.Fatal(err)
			}
			clk.Advance(time.Second)
		}
		sth, err := l.PublishSTH()
		if err != nil {
			t.Fatal(err)
		}
		size := sth.TreeHead.TreeSize
		ents, err := l.GetEntries(0, 0)
		if err != nil {
			t.Fatal(err)
		}
		leaf0, err := ents[0].LeafHash()
		if err != nil {
			t.Fatal(err)
		}

		// Hold BOTH log mutexes for the duration: if any proof endpoint
		// acquires either, it blocks until the watchdog kills the test.
		l.seqMu.Lock()
		defer l.seqMu.Unlock()
		l.mu.Lock()
		defer l.mu.Unlock()

		done := make(chan struct{})
		go func() {
			defer close(done)
			if _, err := l.GetInclusionProof(3, size); err != nil {
				t.Errorf("GetInclusionProof under held write lock: %v", err)
			}
			if _, err := l.GetConsistencyProof(1, size); err != nil {
				t.Errorf("GetConsistencyProof under held write lock: %v", err)
			}
			idx, proof, err := l.GetProofByHash(leaf0, size)
			if err != nil {
				t.Errorf("GetProofByHash under held write lock: %v", err)
			} else if err := merkle.VerifyInclusion(leaf0, idx, size, proof,
				merkle.Hash(sth.TreeHead.RootHash)); err != nil {
				t.Errorf("proof served under held write lock does not verify: %v", err)
			}
			// The error paths must be lock-free too, not just the successes.
			if _, err := l.GetInclusionProof(0, size+1); !errors.Is(err, merkle.ErrSizeOutOfRange) {
				t.Errorf("above-head error under held write lock: %v", err)
			}
			if _, _, err := l.GetProofByHash(merkle.Hash{0xAB}, size); !errors.Is(err, ErrNotFound) {
				t.Errorf("unknown-hash error under held write lock: %v", err)
			}
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatal("a proof endpoint blocked on the log mutex")
		}
	}
	t.Run("inmemory", func(t *testing.T) {
		l, clk := newTestLog(t, Config{})
		run(t, l, clk)
	})
	t.Run("tiled", func(t *testing.T) {
		l, clk := newDurableLog(t, t.TempDir(), Config{TileSpan: 8, Sync: SyncAtSequence})
		defer l.Close()
		run(t, l, clk)
	})
}

// TestProofServingLockFree is the convoy regression: proof requests
// issued while a large staged batch integrates chunk by chunk must be
// answered at idle latency, not queued behind the sequencer's
// back-to-back write-lock holds (the RWMutex writer-preference convoy
// that motivated serving proofs from the published snapshot). The bound
// is deliberately loose — a generous multiple of the measured idle
// latency with an absolute floor — so scheduler noise cannot flake it,
// while the pre-fix behaviour (proof latency tracking whole-batch
// integration) exceeds it by orders of magnitude.
func TestProofServingLockFree(t *testing.T) {
	const batch = 120_000
	clk := newClock()
	l, err := New(Config{
		Name: "convoy log", Operator: "TestOp",
		Signer: sct.NewFastSigner("convoy log"), Clock: clk.Now,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("convoy-base-%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	sth, err := l.PublishSTH()
	if err != nil {
		t.Fatal(err)
	}
	size := sth.TreeHead.TreeSize
	ents, err := l.GetEntries(7, 7)
	if err != nil {
		t.Fatal(err)
	}
	leaf, err := ents[0].LeafHash()
	if err != nil {
		t.Fatal(err)
	}
	probe := func() time.Duration {
		t0 := time.Now()
		if _, err := l.GetInclusionProof(7, size); err != nil {
			t.Fatal(err)
		}
		if _, err := l.GetConsistencyProof(64, size); err != nil {
			t.Fatal(err)
		}
		if _, _, err := l.GetProofByHash(leaf, size); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}

	// Idle baseline: the worst of 200 probes with no writer anywhere.
	var idleMax time.Duration
	for i := 0; i < 200; i++ {
		if d := probe(); d > idleMax {
			idleMax = d
		}
	}

	for i := 0; i < batch; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("convoy-bulk-%06d", i))); err != nil {
			t.Fatal(err)
		}
	}
	seqDone := make(chan error, 1)
	go func() {
		_, err := l.Sequence()
		seqDone <- err
	}()

	// Probe continuously while the batch integrates; count only probes
	// that both start and finish inside the integration window.
	var during []time.Duration
	for {
		select {
		case err := <-seqDone:
			if err != nil {
				t.Fatal(err)
			}
			if len(during) == 0 {
				t.Skip("integration finished before any probe completed; nothing measured")
			}
			var worst time.Duration
			for _, d := range during {
				if d > worst {
					worst = d
				}
			}
			// 100× the idle worst-case, floored at 150ms. The floor
			// absorbs GC pauses from staging 120k entries (observed tens
			// of ms under -race); a probe queued behind the integration's
			// write-lock holds — the pre-fix behaviour — waits a large
			// fraction of the multi-second batch and blows the bound by
			// an order of magnitude.
			bound := 100 * idleMax
			if bound < 150*time.Millisecond {
				bound = 150 * time.Millisecond
			}
			t.Logf("idle max %v; during integration: %d probes, worst %v (bound %v)",
				idleMax, len(during), worst, bound)
			if worst > bound {
				t.Fatalf("proof latency during integration reached %v (idle max %v): the convoy is back", worst, idleMax)
			}
			if _, err := l.PublishSTH(); err != nil {
				t.Fatal(err)
			}
			return
		default:
			during = append(during, probe())
		}
	}
}

// TestProofErrorPathsOverSnapshot pins the Log-API error surface of the
// published-snapshot serving path, including the window where the live
// tree runs ahead of the published head.
func TestProofErrorPathsOverSnapshot(t *testing.T) {
	l, clk := newTestLog(t, Config{})
	for i := 0; i < 10; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("err-%d", i))); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	sth, err := l.PublishSTH()
	if err != nil {
		t.Fatal(err)
	}
	published := sth.TreeHead.TreeSize // 10

	// Sequence five more WITHOUT publishing: live tree 15, head 10.
	for i := 0; i < 5; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("ahead-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Sequence(); err != nil {
		t.Fatal(err)
	}
	if l.TreeSize() != 15 {
		t.Fatalf("live tree = %d, want 15", l.TreeSize())
	}

	// Sizes above the published head are rejected even though the live
	// tree covers them — proofs are only served against published STHs.
	if _, err := l.GetInclusionProof(0, published+1); !errors.Is(err, merkle.ErrSizeOutOfRange) {
		t.Errorf("inclusion above head: err=%v, want ErrSizeOutOfRange", err)
	}
	if _, err := l.GetInclusionProof(0, 15); !errors.Is(err, merkle.ErrSizeOutOfRange) {
		t.Errorf("inclusion at live size: err=%v, want ErrSizeOutOfRange", err)
	}
	if _, err := l.GetConsistencyProof(5, 15); !errors.Is(err, merkle.ErrSizeOutOfRange) {
		t.Errorf("consistency above head: err=%v, want ErrSizeOutOfRange", err)
	}
	// Size 0 / index ≥ size / inverted ranges.
	if _, err := l.GetInclusionProof(0, 0); !errors.Is(err, merkle.ErrIndexOutOfRange) {
		t.Errorf("inclusion in empty tree: err=%v, want ErrIndexOutOfRange", err)
	}
	if _, err := l.GetInclusionProof(published, published); !errors.Is(err, merkle.ErrIndexOutOfRange) {
		t.Errorf("inclusion index == size: err=%v, want ErrIndexOutOfRange", err)
	}
	if _, err := l.GetConsistencyProof(0, published); !errors.Is(err, merkle.ErrEmptyRange) {
		t.Errorf("consistency from 0: err=%v, want ErrEmptyRange", err)
	}
	if _, err := l.GetConsistencyProof(7, 3); !errors.Is(err, merkle.ErrSizeOutOfRange) {
		t.Errorf("inverted consistency: err=%v, want ErrSizeOutOfRange", err)
	}
	// Unknown hash → ErrNotFound regardless of tree_size.
	if _, _, err := l.GetProofByHash(merkle.Hash{0x5A}, published); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown hash: err=%v, want ErrNotFound", err)
	}
	// A sequenced-but-unpublished leaf resolves to an index at or above
	// the requested (published) size → ErrBadRange, exactly as a client
	// asking about an entry its STH does not cover should see.
	unpub := l.entries[12]
	if _, _, err := l.GetProofByHash(unpub.leafHash, published); !errors.Is(err, ErrBadRange) {
		t.Errorf("unpublished leaf at published size: err=%v, want ErrBadRange", err)
	}
	// Same leaf above the head: the index resolves and is inside the
	// requested size, so the rejection comes from the snapshot's view
	// bound instead.
	if _, _, err := l.GetProofByHash(unpub.leafHash, 15); !errors.Is(err, merkle.ErrSizeOutOfRange) {
		t.Errorf("unpublished leaf at live size: err=%v, want ErrSizeOutOfRange", err)
	}

	// After publishing, everything above becomes servable.
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.GetProofByHash(unpub.leafHash, 15); err != nil {
		t.Errorf("published leaf now fails: %v", err)
	}
}

// TestProofErrorPathsEmptyLog: a freshly created log has published only
// the empty-tree STH; the proof surface must fail cleanly, never panic
// or block.
func TestProofErrorPathsEmptyLog(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	if _, err := l.GetInclusionProof(0, 0); !errors.Is(err, merkle.ErrIndexOutOfRange) {
		t.Errorf("inclusion on empty log: err=%v, want ErrIndexOutOfRange", err)
	}
	if _, err := l.GetInclusionProof(0, 1); !errors.Is(err, merkle.ErrSizeOutOfRange) {
		t.Errorf("inclusion above empty head: err=%v, want ErrSizeOutOfRange", err)
	}
	if _, err := l.GetConsistencyProof(0, 0); !errors.Is(err, merkle.ErrEmptyRange) {
		t.Errorf("consistency(0,0) on empty log: err=%v, want ErrEmptyRange", err)
	}
	if _, err := l.GetConsistencyProof(1, 1); !errors.Is(err, merkle.ErrSizeOutOfRange) {
		t.Errorf("consistency(1,1) on empty log: err=%v, want ErrSizeOutOfRange", err)
	}
	if _, _, err := l.GetProofByHash(merkle.Hash{1}, 0); !errors.Is(err, ErrNotFound) {
		t.Errorf("proof-by-hash on empty log: err=%v, want ErrNotFound", err)
	}
}
