package ctlog

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"ctrise/internal/sct"
)

// Section 3.4 closes with a risk the disclosure discussion surfaced: "a
// mass submission of valid unlogged final certificates could be used to
// overwhelm logs, which could lead to log disqualification". This test
// reproduces the attack shape against a capacity-limited log and
// measures the collateral damage to legitimate CA traffic.
func TestMassFinalCertSubmissionOverwhelmsLog(t *testing.T) {
	clk := &virtualClock{now: time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)}
	signer := sct.NewFastSigner("victim log")
	l, err := New(Config{
		Name:              "Victim Log",
		Signer:            signer,
		Clock:             clk.Now,
		CapacityPerSecond: 10,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Baseline: a CA's steady precert stream fits comfortably.
	for i := 0; i < 5; i++ {
		var ikh [32]byte
		if _, err := l.AddPreChain(ikh, []byte(fmt.Sprintf("legit-%d", i))); err != nil {
			t.Fatalf("legit submission %d rejected pre-attack: %v", i, err)
		}
		clk.Advance(200 * time.Millisecond)
	}

	// Attack: a flood of distinct, valid final certificates (all public,
	// all unlogged — exactly what anyone can harvest and resubmit).
	var accepted, rejected int
	for i := 0; i < 500; i++ {
		_, err := l.AddChain([]byte(fmt.Sprintf("harvested-final-cert-%d", i)))
		switch {
		case err == nil:
			accepted++
		case errors.Is(err, ErrOverloaded):
			rejected++
		default:
			t.Fatal(err)
		}
		clk.Advance(time.Millisecond) // 1000/s >> 10/s capacity
	}
	if rejected < 400 {
		t.Fatalf("flood: accepted=%d rejected=%d; capacity limit ineffective", accepted, rejected)
	}

	// Collateral: the legitimate CA now sees rejections too — the
	// availability failure that gets logs disqualified.
	var legitRejected int
	for i := 0; i < 20; i++ {
		var ikh [32]byte
		if _, err := l.AddPreChain(ikh, []byte(fmt.Sprintf("legit-post-%d", i))); errors.Is(err, ErrOverloaded) {
			legitRejected++
		}
		clk.Advance(time.Millisecond)
	}
	if legitRejected == 0 {
		t.Fatal("legitimate traffic unaffected; the attack should cause collateral rejections")
	}

	// After the flood subsides, the token bucket refills and service
	// recovers.
	clk.Advance(5 * time.Second)
	var ikh [32]byte
	if _, err := l.AddPreChain(ikh, []byte("post-recovery")); err != nil {
		t.Fatalf("log did not recover: %v", err)
	}
	if l.Rejected() == 0 {
		t.Fatal("rejection counter not maintained")
	}
}

// Duplicate suppression blunts naive replay floods: resubmitting the
// same certificate repeatedly costs the log nothing and returns the
// cached SCT, so an attacker must use distinct certificates.
func TestReplayFloodIsFree(t *testing.T) {
	clk := &virtualClock{now: time.Date(2018, 5, 1, 0, 0, 0, 0, time.UTC)}
	l, err := New(Config{
		Name:              "Replay Target",
		Signer:            sct.NewFastSigner("replay target"),
		Clock:             clk.Now,
		CapacityPerSecond: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	cert := []byte("one well-known certificate")
	if _, err := l.AddChain(cert); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if _, err := l.AddChain(cert); err != nil {
			t.Fatalf("replay %d rejected: %v (duplicates must bypass the bucket)", i, err)
		}
	}
	if l.Sequence(); l.TreeSize() != 1 {
		t.Fatalf("tree grew to %d under replay", l.TreeSize())
	}
}
