package ctlog

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"slices"
	"sync"
	"testing"
	"time"

	"ctrise/internal/ctlog/storage"
	"ctrise/internal/merkle"
)

// Chunked sequencing exists so readers never wait behind a whole batch
// integration. These tests pin the three properties that make it safe:
// readers between chunks see exactly the published state (and can still
// build proofs against it), the chunked tree is byte-identical to the
// unchunked one, and durable recovery reproduces a chunked sequence even
// when submissions raced the chunk gaps.

// Readers arriving between integration chunks must be served the last
// published state — same STH, same entries, working proofs — as if the
// half-integrated batch did not exist.
func TestSequenceChunkedReadersServedBetweenChunks(t *testing.T) {
	l, clk := newTestLog(t, Config{SequenceChunk: 8})

	// Publish an initial tree of 5 so the hook has real state to read.
	for i := 0; i < 5; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("base-%d", i))); err != nil {
			t.Fatal(err)
		}
		clk.Advance(1)
	}
	sth0, err := l.PublishSTH()
	if err != nil {
		t.Fatal(err)
	}
	base, err := l.GetEntries(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	leaf0, err := base[0].LeafHash()
	if err != nil {
		t.Fatal(err)
	}

	// Stage a batch of 40; chunk 8 gives gaps after 8, 16, 24, 32.
	for i := 0; i < 40; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("bulk-%02d", i))); err != nil {
			t.Fatal(err)
		}
		clk.Advance(1)
	}

	var gaps []int
	l.seqChunkHook = func(done, total int) {
		gaps = append(gaps, done)
		if total != 40 {
			t.Errorf("hook total = %d, want the batch size 40", total)
		}
		// The published view must be exactly the pre-sequence state.
		if sth := l.STH(); sth.TreeHead != sth0.TreeHead {
			t.Errorf("mid-chunk STH moved: %+v", sth.TreeHead)
		}
		got, err := l.GetEntries(0, 100)
		if err != nil {
			t.Errorf("mid-chunk GetEntries: %v", err)
		} else if len(got) != 5 {
			t.Errorf("mid-chunk GetEntries returned %d entries, want 5", len(got))
		}
		// Proofs against the published size still verify even though the
		// live tree has grown past it.
		idx, proof, err := l.GetProofByHash(leaf0, sth0.TreeHead.TreeSize)
		if err != nil {
			t.Errorf("mid-chunk GetProofByHash: %v", err)
			return
		}
		if err := merkle.VerifyInclusion(leaf0, idx, sth0.TreeHead.TreeSize, proof,
			merkle.Hash(sth0.TreeHead.RootHash)); err != nil {
			t.Errorf("mid-chunk proof does not verify: %v", err)
		}
	}
	n, err := l.Sequence()
	l.seqChunkHook = nil
	if err != nil {
		t.Fatal(err)
	}
	if n != 40 {
		t.Fatalf("sequenced %d, want 40", n)
	}
	want := []int{8, 16, 24, 32}
	if !slices.Equal(gaps, want) {
		t.Fatalf("chunk gaps = %v, want %v", gaps, want)
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	if got := l.STH().TreeHead.TreeSize; got != 45 {
		t.Fatalf("published size = %d, want 45", got)
	}
}

// The chunked tree must be byte-identical to the unchunked one: chunking
// changes lock granularity, never the canonical batch order.
func TestSequenceChunkedTreeIdentical(t *testing.T) {
	build := func(chunk int) SignedTreeHead {
		l, clk := newTestLog(t, Config{SequenceChunk: chunk})
		for i := 0; i < 50; i++ {
			if _, err := l.AddChain([]byte(fmt.Sprintf("ident-%02d", i))); err != nil {
				t.Fatal(err)
			}
			if i%3 == 0 {
				clk.Advance(1)
			}
		}
		sth, err := l.PublishSTH()
		if err != nil {
			t.Fatal(err)
		}
		return sth
	}
	whole := build(-1) // whole batch under one lock hold
	for _, chunk := range []int{7, 16, 49, 50} {
		if got := build(chunk); got.TreeHead != whole.TreeHead {
			t.Fatalf("chunk=%d tree head %+v differs from unchunked %+v",
				chunk, got.TreeHead, whole.TreeHead)
		}
	}
}

// Durable recovery of a chunked sequence with racing submissions: adds
// that land in a chunk gap write their WAL records between the drained
// batch and its seal. Recovery must assign the seal only its own batch
// (the staged prefix its tree size accounts for) and leave the racers
// staged — exactly the live log's state. The pre-chunking recovery
// drained everything staged into the seal and failed with ErrCorrupt.
func TestSequenceChunkedDurableRecoveryWithRacingAdds(t *testing.T) {
	dir := t.TempDir()
	l, clk := newDurableLog(t, dir, Config{SequenceChunk: 4})
	for i := 0; i < 20; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("dur-%02d", i))); err != nil {
			t.Fatal(err)
		}
		clk.Advance(1)
	}
	var race sync.Once
	l.seqChunkHook = func(done, total int) {
		race.Do(func() {
			for i := 0; i < 3; i++ {
				if _, err := l.AddChain([]byte(fmt.Sprintf("racer-%d", i))); err != nil {
					t.Errorf("racing add: %v", err)
				}
			}
		})
	}
	n, err := l.Sequence()
	l.seqChunkHook = nil
	if err != nil {
		t.Fatal(err)
	}
	if n != 20 {
		t.Fatalf("sequenced %d, want 20", n)
	}
	if got := l.PendingCount(); got != 3 {
		t.Fatalf("pending = %d, want the 3 racers", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Drop the Close-time snapshot so recovery must replay the WAL,
	// where the racers' entry records sit between the batch and its seal.
	if err := os.Remove(filepath.Join(dir, storage.SnapshotName)); err != nil {
		t.Fatal(err)
	}

	r, _ := newDurableLog(t, dir, Config{SequenceChunk: 4})
	defer r.Close()
	if got := r.TreeSize(); got != 20 {
		t.Fatalf("recovered tree size = %d, want 20", got)
	}
	if got := r.PendingCount(); got != 3 {
		t.Fatalf("recovered pending = %d, want the 3 racers", got)
	}
	// The racers sequence cleanly on the recovered log.
	if n, err := r.Sequence(); err != nil || n != 3 {
		t.Fatalf("sequencing recovered racers: n=%d err=%v", n, err)
	}
	if got := r.TreeSize(); got != 23 {
		t.Fatalf("tree size after sequencing racers = %d, want 23", got)
	}
}

// A seal claiming more entries than the replay has staged is corruption,
// not a partial drain.
func TestRecoverySealOverclaimIsCorrupt(t *testing.T) {
	dir := t.TempDir()
	l, _ := newDurableLog(t, dir, Config{})
	if _, err := l.AddChain([]byte("only-entry")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Sequence(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, storage.SnapshotName)); err != nil {
		t.Fatal(err)
	}
	// Append a forged seal claiming a larger tree than the WAL staged.
	s, err := storage.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.AppendSeal(storage.SealRecord{TreeSize: 7}); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = Open(dir, Config{
		Name: "Durable Test Log", Operator: "TestOp",
		Signer: l.cfg.Signer, Clock: l.cfg.Clock,
	})
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("overclaiming seal: err=%v, want ErrCorrupt", err)
	}
}

// The starvation regression proper: a reader that arrives while a large
// batch is mid-integration must be served from the published state
// within a chunk gap, not after the whole batch. The sequencer is parked
// in a gap (no locks held) while the main goroutine performs every read
// class; if any read blocks until the batch completes — the pre-chunking
// behaviour, where proofs queued behind one long write-lock hold — the
// watchdog below fails the test instead of deadlocking it.
func TestSequenceChunkedBoundsReaderBlocking(t *testing.T) {
	l, clk := newTestLog(t, Config{SequenceChunk: 8})
	for i := 0; i < 5; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("base-%d", i))); err != nil {
			t.Fatal(err)
		}
		clk.Advance(1)
	}
	sth0, err := l.PublishSTH()
	if err != nil {
		t.Fatal(err)
	}
	base, err := l.GetEntries(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	leaf0, err := base[0].LeafHash()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("blocker-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}

	midSeq := make(chan struct{})
	release := make(chan struct{})
	var park sync.Once
	l.seqChunkHook = func(done, total int) {
		park.Do(func() {
			close(midSeq)
			<-release
		})
	}
	seqDone := make(chan error, 1)
	go func() {
		_, err := l.Sequence()
		seqDone <- err
	}()
	<-midSeq

	readsDone := make(chan struct{})
	go func() {
		defer close(readsDone)
		if sth := l.STH(); sth.TreeHead != sth0.TreeHead {
			t.Errorf("mid-sequence STH moved: %+v", sth.TreeHead)
		}
		if _, err := l.GetEntries(0, 4); err != nil {
			t.Errorf("mid-sequence GetEntries: %v", err)
		}
		if _, _, err := l.GetProofByHash(leaf0, sth0.TreeHead.TreeSize); err != nil {
			t.Errorf("mid-sequence GetProofByHash: %v", err)
		}
		if _, err := l.GetConsistencyProof(1, sth0.TreeHead.TreeSize); err != nil {
			t.Errorf("mid-sequence GetConsistencyProof: %v", err)
		}
	}()
	select {
	case <-readsDone:
	case <-time.After(10 * time.Second):
		t.Fatal("reader blocked behind a half-integrated batch")
	}
	select {
	case err := <-seqDone:
		t.Fatalf("sequence finished before the reads (err=%v); the park hook never held it", err)
	default:
	}

	close(release)
	if err := <-seqDone; err != nil {
		t.Fatal(err)
	}
	l.seqChunkHook = nil
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	if got := l.STH().TreeHead.TreeSize; got != 45 {
		t.Fatalf("published size = %d, want 45", got)
	}
}
