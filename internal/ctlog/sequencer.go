package ctlog

import (
	"bytes"
	"context"
	"errors"
	"slices"
	"time"
)

// The sequencer is the second phase of the stage → sequence lifecycle
// (see the package comment): it drains the pending batch AddChain and
// AddPreChain built up and integrates it into the Merkle tree. Staging
// and sequencing communicate only through Log.mu, so submitters keep
// staging while a sequence step runs — they block only for the duration
// of the batch's tree appends, not for any hashing or signing.

// Sequence integrates every staged submission into the Merkle tree and
// returns the number of entries integrated. It does not publish an STH;
// callers that want the new tree visible to readers follow up with
// PublishSTH (which itself sequences first, so experiments usually call
// only that).
//
// The batch is integrated in canonical (timestamp, identity-hash) order,
// which makes the sequenced tree a pure function of the accepted
// submission set: concurrent submitters may stage in any interleaving —
// across goroutines, runs, or parallelism settings — and the tree bytes
// come out identical. This is what lets the timeline replay fan
// submissions out freely and still prove byte-identical trees.
func (l *Log) Sequence() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sequenceLocked()
}

func (l *Log) sequenceLocked() int {
	if len(l.staged) == 0 {
		return 0
	}
	batch := l.staged
	l.staged = nil
	// The comparator resolves almost always on the timestamp or the
	// 8-byte hash prefix stamped at staging time; the full 32-byte
	// compare is the correctness tiebreak for prefix collisions.
	slices.SortFunc(batch, func(a, b *Entry) int {
		if a.Timestamp != b.Timestamp {
			if a.Timestamp < b.Timestamp {
				return -1
			}
			return 1
		}
		if a.idKey != b.idKey {
			if a.idKey < b.idKey {
				return -1
			}
			return 1
		}
		return bytes.Compare(a.idHash[:], b.idHash[:])
	})
	for _, e := range batch {
		e.Index = uint64(len(l.entries))
		l.tree.AppendLeafHash(e.leafHash)
		l.entries = append(l.entries, e)
		l.byLeafHash[e.leafHash] = e.Index
	}
	return len(batch)
}

// PendingCount reports how many accepted submissions are staged but not
// yet sequenced.
func (l *Log) PendingCount() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.staged)
}

// RunSequencer sequences and publishes on a wall-clock ticker until ctx
// is done — the production mode, where the interval is chosen well
// inside the MMD. A non-positive interval is rejected (there is no
// "sequence continuously" mode; pick a small interval instead). On
// cancellation it performs one final sequence and publish so no
// accepted submission is left staged, then returns ctx.Err().
func (l *Log) RunSequencer(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		return errors.New("ctlog: sequencer interval must be positive")
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			if _, err := l.PublishSTH(); err != nil {
				return err
			}
			return ctx.Err()
		case <-ticker.C:
			if _, err := l.PublishSTH(); err != nil {
				return err
			}
		}
	}
}
