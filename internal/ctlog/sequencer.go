package ctlog

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"slices"
	"time"

	"ctrise/internal/ctlog/storage"
	"ctrise/internal/drain"
	"ctrise/internal/merkle"
)

// The sequencer is the second phase of the stage → sequence lifecycle
// (see the package comment): it drains the pending batch AddChain and
// AddPreChain built up and integrates it into the Merkle tree. Staging
// and sequencing communicate only through Log.mu, so submitters keep
// staging while a sequence step runs — they block only for the duration
// of one integration chunk, not for any hashing or signing.

// DefaultSequenceChunk is the per-lock-hold integration chunk used when
// Config.SequenceChunk is 0: large enough that chunking overhead is
// noise, small enough that a reader arriving mid-integration waits for
// at most ~a millisecond of tree appends instead of the whole batch.
const DefaultSequenceChunk = 1024

// ErrDrainIncomplete wraps the publish error when RunSequencer's final
// drain on cancellation fails: acknowledged submissions are left staged
// (durably, on a durable log — a restart recovers and sequences them).
// It is always joined with the context's cancellation error, so callers
// distinguish a clean drain (errors.Is(err, context.Canceled) only)
// from an incomplete one (additionally errors.Is(err,
// ErrDrainIncomplete)).
var ErrDrainIncomplete = errors.New("ctlog: shutdown drain left entries staged")

// Sequence integrates every staged submission into the Merkle tree and
// returns the number of entries integrated. It does not publish an STH;
// callers that want the new tree visible to readers follow up with
// PublishSTH (which itself sequences first, so experiments usually call
// only that).
//
// The batch is integrated in canonical (timestamp, identity-hash) order,
// which makes the sequenced tree a pure function of the accepted
// submission set: concurrent submitters may stage in any interleaving —
// across goroutines, runs, or parallelism settings — and the tree bytes
// come out identical. This is what lets the timeline replay fan
// submissions out freely and still prove byte-identical trees.
//
// A batch larger than Config.SequenceChunk is integrated incrementally:
// the whole batch is drained and sorted up front (fixing the canonical
// order and the seal boundary), but the tree appends take and release
// the log mutex every chunk, so readers and submitters arriving
// mid-integration wait for at most one chunk of appends instead of the
// whole batch. Readers between chunks observe exactly the last
// published state — STHs, get-entries, and proofs all serve the
// published snapshot, which only moves at PublishSTH — so chunking is
// invisible to RFC semantics and to the byte-identical determinism
// suites; it only bounds reader latency.
//
// On durable logs each sequence step appends and fsyncs a single seal
// record after the last chunk — the snapshot cursor marking the whole
// batch boundary — so recovery re-sorts exactly the same batches and
// reconstructs byte-identical tree state. Submissions that raced a
// chunked sequence appended their WAL records after the drain point and
// before the seal; recovery assigns the seal only its own batch (the
// staged prefix its tree size accounts for) and leaves the rest staged,
// exactly as the live log did. A persistence error leaves the batch
// integrated in memory but unsealed on disk: recovery sees those
// entries as still staged, which is a consistent earlier state, and the
// sticky store failure prevents any later STH from being written over
// the unsealed tree.
func (l *Log) Sequence() (int, error) {
	l.seqMu.Lock()
	defer l.seqMu.Unlock()
	return l.sequence()
}

// sequence drains and integrates the pending batch. Requires l.seqMu
// (one sequencer at a time: the mutex is what makes releasing l.mu
// between chunks safe — no second drain, publish, snapshot, or Close
// can interleave with a half-integrated batch).
func (l *Log) sequence() (int, error) {
	chunk := l.cfg.SequenceChunk
	l.mu.Lock()
	if chunk < 0 || len(l.staged) <= chunk {
		// Small batch (or chunking disabled): integrate and seal under
		// one hold, the original fast path.
		defer l.mu.Unlock()
		return l.sequenceLocked()
	}
	batch := l.staged
	l.staged = nil
	l.mu.Unlock()
	sortBatch(batch)
	for done := 0; done < len(batch); {
		n := min(chunk, len(batch)-done)
		l.mu.Lock()
		integrateBatch(batch[done:done+n], l.tree, &l.entries, l.byLeafHash)
		l.mu.Unlock()
		done += n
		if h := l.seqChunkHook; h != nil && done < len(batch) {
			h(done, len(batch))
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(batch), l.sealLocked()
}

func (l *Log) sequenceLocked() (int, error) {
	if len(l.staged) == 0 {
		return 0, nil
	}
	batch := l.staged
	l.staged = nil
	sortBatch(batch)
	integrateBatch(batch, l.tree, &l.entries, l.byLeafHash)
	return len(batch), l.sealLocked()
}

// sealLocked appends and fsyncs the seal record fixing the batch
// boundary just integrated. Requires l.mu; no-op on in-memory logs.
func (l *Log) sealLocked() error {
	if l.store == nil {
		return nil
	}
	root, err := l.tree.Root()
	if err != nil {
		return err
	}
	if _, err := l.store.AppendSeal(storage.SealRecord{
		TreeSize: l.tree.Size(),
		Root:     [32]byte(root),
	}); err != nil {
		return fmt.Errorf("%w: %v", ErrPersistence, err)
	}
	if err := l.store.Sync(); err != nil {
		return fmt.Errorf("%w: %v", ErrPersistence, err)
	}
	return nil
}

// integrateBatch appends an already-ordered batch to the sequenced
// state: index assignment, tree append, entry list, and the
// leaf-hash→index lookup. It is the single integration routine for the
// live sequencer and both recovery paths (seal replay and snapshot
// load), so the rebuilt auxiliary indices can never drift from the live
// ones. Entry indexes are absolute (the tree assigns them), while the
// entries slice holds only the resident tail — on a tree recovered over
// sealed tiles the two differ by tailStart.
func integrateBatch(batch []*Entry, tree *merkle.TiledTree, entries *[]*Entry, byLeafHash *leafIndex) {
	for _, e := range batch {
		e.Index = tree.AppendLeafHash(e.leafHash)
		*entries = append(*entries, e)
		byLeafHash.set(e.leafHash, e.Index)
	}
}

// sortBatch orders a pending batch canonically. The comparator resolves
// almost always on the timestamp or the 8-byte hash prefix stamped at
// staging time; the full 32-byte compare is the correctness tiebreak for
// prefix collisions. Recovery replays batches through the same sort, so
// the rebuilt tree is byte-identical to the live one.
func sortBatch(batch []*Entry) {
	slices.SortFunc(batch, func(a, b *Entry) int {
		if a.Timestamp != b.Timestamp {
			if a.Timestamp < b.Timestamp {
				return -1
			}
			return 1
		}
		if a.idKey != b.idKey {
			if a.idKey < b.idKey {
				return -1
			}
			return 1
		}
		return bytes.Compare(a.idHash[:], b.idHash[:])
	})
}

// PendingCount reports how many accepted submissions are staged but not
// yet sequenced.
func (l *Log) PendingCount() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.staged)
}

// RetryAfterSeconds is the whole-seconds backoff hint the log's HTTP
// layer sends with 429/503 responses: the configured sequencer interval
// rounded up (floor 1s), because "one sequencing cycle from now" is
// when refused capacity is most likely to exist again. Before any
// RunSequencer configures an interval it is 1.
func (l *Log) RetryAfterSeconds() int {
	if s := l.retryAfterSecs.Load(); s > 0 {
		return int(s)
	}
	return 1
}

// RunSequencer sequences and publishes on a wall-clock ticker until ctx
// is done — the production mode, where the interval is chosen well
// inside the MMD. A non-positive interval is rejected (there is no
// "sequence continuously" mode; pick a small interval instead). The
// interval also becomes the Retry-After hint on 429/503 responses (see
// RetryAfterSeconds).
//
// A failed tick does not kill the loop: transient failures — a one-off
// fsync error on a non-sticky path, a hiccuping signer — retry on the
// next tick, because exiting would leave the log accepting submissions
// it never again sequences. The loop exits only when the failure is
// provably permanent: a sticky store failure (the durable log refuses
// all further writes until an operator intervenes) or context
// cancellation.
//
// On cancellation it performs one final sequence and publish so no
// accepted submission is left staged, then returns ctx.Err(). If that
// final publish fails, the result joins the cancellation error with
// ErrDrainIncomplete wrapping the cause, so callers can tell a clean
// drain from one that left acknowledged entries staged (durably staged,
// on a durable log — the next start recovers and sequences them).
func (l *Log) RunSequencer(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		return errors.New("ctlog: sequencer interval must be positive")
	}
	l.retryAfterSecs.Store(int64(drain.RetryAfterSeconds(interval)))
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			if _, err := l.PublishSTH(); err != nil {
				return errors.Join(ctx.Err(), fmt.Errorf("%w: %w", ErrDrainIncomplete, err))
			}
			return ctx.Err()
		case <-ticker.C:
			if _, err := l.PublishSTH(); err != nil {
				if l.store != nil && l.store.Err() != nil {
					// Sticky store failure: no future tick can succeed and
					// submissions are already refused with ErrPersistence.
					return err
				}
				// Transient (the store still accepts writes, or the log is
				// in-memory): the staged batch is intact, retry next tick.
				continue
			}
		}
	}
}
