package ctlog

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"slices"
	"time"

	"ctrise/internal/ctlog/storage"
	"ctrise/internal/merkle"
)

// The sequencer is the second phase of the stage → sequence lifecycle
// (see the package comment): it drains the pending batch AddChain and
// AddPreChain built up and integrates it into the Merkle tree. Staging
// and sequencing communicate only through Log.mu, so submitters keep
// staging while a sequence step runs — they block only for the duration
// of the batch's tree appends, not for any hashing or signing.

// Sequence integrates every staged submission into the Merkle tree and
// returns the number of entries integrated. It does not publish an STH;
// callers that want the new tree visible to readers follow up with
// PublishSTH (which itself sequences first, so experiments usually call
// only that).
//
// The batch is integrated in canonical (timestamp, identity-hash) order,
// which makes the sequenced tree a pure function of the accepted
// submission set: concurrent submitters may stage in any interleaving —
// across goroutines, runs, or parallelism settings — and the tree bytes
// come out identical. This is what lets the timeline replay fan
// submissions out freely and still prove byte-identical trees.
//
// On durable logs each sequence step appends and fsyncs a seal record —
// the snapshot cursor marking the batch boundary — so recovery re-sorts
// exactly the same batches and reconstructs byte-identical tree state.
// A persistence error leaves the batch integrated in memory but
// unsealed on disk: recovery sees those entries as still staged, which
// is a consistent earlier state, and the sticky store failure prevents
// any later STH from being written over the unsealed tree.
func (l *Log) Sequence() (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.sequenceLocked()
}

func (l *Log) sequenceLocked() (int, error) {
	if len(l.staged) == 0 {
		return 0, nil
	}
	batch := l.staged
	l.staged = nil
	sortBatch(batch)
	integrateBatch(batch, l.tree, &l.entries, l.byLeafHash)
	if l.store != nil {
		root, err := l.tree.Root()
		if err != nil {
			return len(batch), err
		}
		if _, err := l.store.AppendSeal(storage.SealRecord{
			TreeSize: l.tree.Size(),
			Root:     [32]byte(root),
		}); err != nil {
			return len(batch), fmt.Errorf("%w: %v", ErrPersistence, err)
		}
		if err := l.store.Sync(); err != nil {
			return len(batch), fmt.Errorf("%w: %v", ErrPersistence, err)
		}
	}
	return len(batch), nil
}

// integrateBatch appends an already-ordered batch to the sequenced
// state: index assignment, tree append, entry list, and the
// leaf-hash→index lookup. It is the single integration routine for the
// live sequencer and both recovery paths (seal replay and snapshot
// load), so the rebuilt auxiliary indices can never drift from the live
// ones. Entry indexes are absolute (the tree assigns them), while the
// entries slice holds only the resident tail — on a tree recovered over
// sealed tiles the two differ by tailStart.
func integrateBatch(batch []*Entry, tree *merkle.TiledTree, entries *[]*Entry, byLeafHash map[merkle.Hash]uint64) {
	for _, e := range batch {
		e.Index = tree.AppendLeafHash(e.leafHash)
		*entries = append(*entries, e)
		byLeafHash[e.leafHash] = e.Index
	}
}

// sortBatch orders a pending batch canonically. The comparator resolves
// almost always on the timestamp or the 8-byte hash prefix stamped at
// staging time; the full 32-byte compare is the correctness tiebreak for
// prefix collisions. Recovery replays batches through the same sort, so
// the rebuilt tree is byte-identical to the live one.
func sortBatch(batch []*Entry) {
	slices.SortFunc(batch, func(a, b *Entry) int {
		if a.Timestamp != b.Timestamp {
			if a.Timestamp < b.Timestamp {
				return -1
			}
			return 1
		}
		if a.idKey != b.idKey {
			if a.idKey < b.idKey {
				return -1
			}
			return 1
		}
		return bytes.Compare(a.idHash[:], b.idHash[:])
	})
}

// PendingCount reports how many accepted submissions are staged but not
// yet sequenced.
func (l *Log) PendingCount() int {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return len(l.staged)
}

// RunSequencer sequences and publishes on a wall-clock ticker until ctx
// is done — the production mode, where the interval is chosen well
// inside the MMD. A non-positive interval is rejected (there is no
// "sequence continuously" mode; pick a small interval instead). On
// cancellation it performs one final sequence and publish so no
// accepted submission is left staged, then returns ctx.Err().
func (l *Log) RunSequencer(ctx context.Context, interval time.Duration) error {
	if interval <= 0 {
		return errors.New("ctlog: sequencer interval must be positive")
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			if _, err := l.PublishSTH(); err != nil {
				return err
			}
			return ctx.Err()
		case <-ticker.C:
			if _, err := l.PublishSTH(); err != nil {
				return err
			}
		}
	}
}
