package ctlog

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ctrise/internal/ctlog/storage"
	"ctrise/internal/merkle"
	"ctrise/internal/sct"
)

// Tests for the tiled storage engine: sealing, tile-backed reads and
// proofs, dedupe across the seal boundary, WAL compaction, recovery from
// tiles, and crash consistency at every seal lifecycle stage.

// fillAndPublish submits n distinct certificates (labeled by prefix) and
// publishes, returning the published head.
func fillAndPublish(t *testing.T, l *Log, clk *virtualClock, prefix string, n int) SignedTreeHead {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("%s-%04d", prefix, i))); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	sth, err := l.PublishSTH()
	if err != nil {
		t.Fatal(err)
	}
	return sth
}

// collectLeaves streams [0, size) and returns each entry's leaf bytes.
func collectLeaves(t *testing.T, l *Log, size uint64) [][]byte {
	t.Helper()
	var leaves [][]byte
	if size == 0 {
		return leaves
	}
	err := l.StreamEntries(0, size-1, func(e *Entry) error {
		leaf, err := e.MerkleTreeLeaf()
		if err != nil {
			return err
		}
		leaves = append(leaves, leaf)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return leaves
}

// TestTiledSealAndServe drives a small-span durable log across several
// seal boundaries and checks the full read surface over the mixed
// sealed/resident tree: paging with tile clamping, streaming, proofs by
// hash for sealed and resident entries, and consistency across the seal.
func TestTiledSealAndServe(t *testing.T) {
	dir := t.TempDir()
	l, clk := newDurableLog(t, dir, Config{TileSpan: 4, SnapshotEvery: -1})
	defer l.Close()

	var heads []SignedTreeHead
	heads = append(heads, fillAndPublish(t, l, clk, "seal", 11))
	if got := l.TiledThrough(); got != 8 {
		t.Fatalf("tiled through %d after 11 entries at span 4, want 8", got)
	}
	heads = append(heads, fillAndPublish(t, l, clk, "more", 3))
	if got := l.TiledThrough(); got != 12 {
		t.Fatalf("tiled through %d after 14 entries, want 12", got)
	}
	sth := heads[len(heads)-1]
	size := sth.TreeHead.TreeSize

	// Tile files exist for the sealed prefix only.
	for tile := uint64(0); tile < 3; tile++ {
		for _, ext := range []string{storage.TileExtLeaf, storage.TileExtHash, storage.TileExtIndex} {
			path := filepath.Join(dir, storage.TilesDirName, fmt.Sprintf("%016x.%s", tile, ext))
			if _, err := os.Stat(path); err != nil {
				t.Fatalf("sealed tile file missing: %v", err)
			}
		}
	}

	// Paging: a get-entries page never crosses a tile boundary in the
	// sealed region, and the whole log is reachable by paging on from
	// each short response — the RFC contract clients rely on.
	page, err := l.GetEntries(0, size-1)
	if err != nil {
		t.Fatal(err)
	}
	if len(page) != 4 || page[0].Index != 0 || page[3].Index != 3 {
		t.Fatalf("page from 0 spans %d entries (first %d), want the 4 of tile 0", len(page), page[0].Index)
	}
	if page, err = l.GetEntries(6, size-1); err != nil || len(page) != 2 || page[0].Index != 6 {
		t.Fatalf("mid-tile page: %d entries err=%v", len(page), err)
	}
	var paged []*Entry
	for next := uint64(0); next < size; {
		p, err := l.GetEntries(next, size-1)
		if err != nil {
			t.Fatal(err)
		}
		if len(p) == 0 {
			t.Fatalf("empty page at %d", next)
		}
		paged = append(paged, p...)
		next += uint64(len(p))
	}
	if uint64(len(paged)) != size {
		t.Fatalf("paging collected %d of %d entries", len(paged), size)
	}
	for i, e := range paged {
		if e.Index != uint64(i) {
			t.Fatalf("paged entry %d has index %d", i, e.Index)
		}
	}

	// Streaming crosses tiles and the tail seamlessly.
	if got := collectLeaves(t, l, size); uint64(len(got)) != size {
		t.Fatalf("streamed %d of %d entries", len(got), size)
	}

	// Proofs: every entry — sealed and resident — proves into the head,
	// located by leaf hash through the tile indexes.
	for _, e := range paged {
		lh, err := e.LeafHash()
		if err != nil {
			t.Fatal(err)
		}
		idx, proof, err := l.GetProofByHash(lh, size)
		if err != nil {
			t.Fatalf("proof for entry %d: %v", e.Index, err)
		}
		if idx != e.Index {
			t.Fatalf("leaf hash of entry %d resolved to %d", e.Index, idx)
		}
		if err := verifyInclusionForTest(lh, idx, sth, proof); err != nil {
			t.Fatalf("entry %d: %v", e.Index, err)
		}
	}

	// Consistency across the seal boundary.
	proof, err := l.GetConsistencyProof(heads[0].TreeHead.TreeSize, size)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifyConsistencyForTest(heads[0], sth, proof); err != nil {
		t.Fatal(err)
	}

	// The reads above went through the page cache.
	if s := l.CacheStats(); s.Hits == 0 || s.Misses == 0 {
		t.Fatalf("page cache never exercised: %+v", s)
	}
}

// TestTiledMatchesInMemory pins the determinism contract the ecosystem
// suites depend on: a durable log sealing aggressively (tiny span)
// publishes byte-identical tree heads to an in-memory log fed the same
// submissions on the same clock — sealing changes where bytes live,
// never what they are.
func TestTiledMatchesInMemory(t *testing.T) {
	run := func(l *Log, clk *virtualClock) []SignedTreeHead {
		var heads []SignedTreeHead
		for round := 0; round < 4; round++ {
			for i := 0; i < 7; i++ {
				if _, err := l.AddChain([]byte(fmt.Sprintf("det-%d-%d", round, i))); err != nil {
					t.Fatal(err)
				}
				clk.Advance(time.Second)
			}
			sth, err := l.PublishSTH()
			if err != nil {
				t.Fatal(err)
			}
			heads = append(heads, sth)
			clk.Advance(time.Hour)
		}
		return heads
	}
	memClk := newClock()
	mem, err := New(Config{Name: "M", Signer: sct.NewFastSigner("det-log"), Clock: memClk.Now, TileSpan: 4})
	if err != nil {
		t.Fatal(err)
	}
	memHeads := run(mem, memClk)

	dur, durClk := newDurableLog(t, t.TempDir(), Config{Signer: sct.NewFastSigner("det-log"), TileSpan: 4})
	defer dur.Close()
	durHeads := run(dur, durClk)

	if dur.TiledThrough() == 0 {
		t.Fatal("durable log never sealed; the comparison is vacuous")
	}
	for i := range memHeads {
		if memHeads[i].TreeHead != durHeads[i].TreeHead {
			t.Fatalf("head %d diverged:\nmem %+v\ndur %+v", i, memHeads[i].TreeHead, durHeads[i].TreeHead)
		}
		if !bytes.Equal(memHeads[i].Sig.Signature, durHeads[i].Sig.Signature) {
			t.Fatalf("head %d signature bytes diverged", i)
		}
	}
}

// TestTiledReopen proves a log reopened from tiles + snapshot + WAL tail
// serves byte-identical state: STH, every entry (straight from the tile
// files), and verifying proofs — and keeps growing consistently.
func TestTiledReopen(t *testing.T) {
	dir := t.TempDir()
	l, clk := newDurableLog(t, dir, Config{TileSpan: 4})
	before := fillAndPublish(t, l, clk, "reopen", 14)
	wantLeaves := collectLeaves(t, l, before.TreeHead.TreeSize)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, clk2 := newDurableLog(t, dir, Config{TileSpan: 4})
	defer l2.Close()
	sameLogState(t, l, l2)
	if got := l2.TiledThrough(); got != 12 {
		t.Fatalf("reopened tiledThrough %d, want 12", got)
	}
	gotLeaves := collectLeaves(t, l2, before.TreeHead.TreeSize)
	if len(gotLeaves) != len(wantLeaves) {
		t.Fatalf("reopened log streams %d entries, want %d", len(gotLeaves), len(wantLeaves))
	}
	for i := range wantLeaves {
		if !bytes.Equal(gotLeaves[i], wantLeaves[i]) {
			t.Fatalf("entry %d differs after reopen from tiles", i)
		}
	}
	// Proofs over the recovered tree, including tile-resident leaves.
	sth := l2.STH()
	for i, leaf := range wantLeaves {
		lh := merkle.HashLeaf(leaf)
		idx, proof, err := l2.GetProofByHash(lh, sth.TreeHead.TreeSize)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if err := verifyInclusionForTest(lh, idx, sth, proof); err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
	}
	// Growth after reopen links consistently to the pre-restart head.
	after := fillAndPublish(t, l2, clk2, "post", 5)
	proof, err := l2.GetConsistencyProof(before.TreeHead.TreeSize, after.TreeHead.TreeSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifyConsistencyForTest(before, after, proof); err != nil {
		t.Fatal(err)
	}
}

// TestTiledSpanIsSticky proves the directory's span wins over the
// config: a log sealed at span 4 reopened with TileSpan 16 keeps span 4
// (tile files are immutable; a span change would orphan them all).
func TestTiledSpanIsSticky(t *testing.T) {
	dir := t.TempDir()
	l, clk := newDurableLog(t, dir, Config{TileSpan: 4})
	fillAndPublish(t, l, clk, "sticky", 8)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, _ := newDurableLog(t, dir, Config{TileSpan: 16})
	defer l2.Close()
	if got := l2.tree.Span(); got != 4 {
		t.Fatalf("reopened span %d, want the directory's 4", got)
	}
	if got := l2.TiledThrough(); got != 8 {
		t.Fatalf("reopened tiledThrough %d, want 8", got)
	}
}

// TestTiledDedupeAcrossSealAndReopen proves the two-level dedupe index:
// an entry whose original has been sealed out of RAM — and, separately,
// one reopened from disk — still answers a resubmission with the
// original SCT timestamp via the per-tile bloom + index files.
func TestTiledDedupeAcrossSealAndReopen(t *testing.T) {
	dir := t.TempDir()
	l, clk := newDurableLog(t, dir, Config{TileSpan: 4})
	target := []byte("the-original-cert")
	orig, err := l.AddChain(target)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Second)
	fillAndPublish(t, l, clk, "filler", 7) // seals tiles 0..1, evicting the original from RAM
	if l.TiledThrough() != 8 {
		t.Fatalf("tiledThrough %d, want 8", l.TiledThrough())
	}
	if inRAM := func() bool {
		l.mu.RLock()
		defer l.mu.RUnlock()
		_, ok := l.dedupe[entryIdentity(sct.X509Entry(target))]
		return ok
	}(); inRAM {
		t.Fatal("sealed entry still pinned in the RAM dedupe map")
	}
	clk.Advance(72 * time.Hour)
	dup, err := l.AddChain(target)
	if err != nil {
		t.Fatal(err)
	}
	if dup.Timestamp != orig.Timestamp {
		t.Fatalf("sealed duplicate got timestamp %d, want original %d", dup.Timestamp, orig.Timestamp)
	}
	if n := l.PendingCount(); n != 0 {
		t.Fatalf("duplicate staged a new entry (%d pending)", n)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Across a restart the blooms reload from the tile index files.
	l2, clk2 := newDurableLog(t, dir, Config{TileSpan: 4})
	defer l2.Close()
	clk2.Advance(96 * time.Hour)
	dup2, err := l2.AddChain(target)
	if err != nil {
		t.Fatal(err)
	}
	if dup2.Timestamp != orig.Timestamp {
		t.Fatalf("post-reopen duplicate got timestamp %d, want original %d", dup2.Timestamp, orig.Timestamp)
	}
	if n := l2.PendingCount(); n != 0 {
		t.Fatalf("post-reopen duplicate staged a new entry (%d pending)", n)
	}
}

// TestTiledWALBounded is the acceptance check for the open PR 4 item:
// under sustained aligned load the WAL never outgrows one seal cycle —
// after every boundary-crossing publish it is back to its bare header,
// at any log size.
func TestTiledWALBounded(t *testing.T) {
	dir := t.TempDir()
	l, clk := newDurableLog(t, dir, Config{TileSpan: 8, SnapshotEvery: -1})
	defer l.Close()
	walPath := filepath.Join(dir, storage.WALName)
	var maxWAL int64
	for round := 0; round < 40; round++ {
		fillAndPublish(t, l, clk, fmt.Sprintf("load-%d", round), 8)
		fi, err := os.Stat(walPath)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() != storage.MagicLen {
			t.Fatalf("round %d: WAL is %d bytes after an aligned publish, want the bare header (%d)", round, fi.Size(), storage.MagicLen)
		}
		if fi.Size() > maxWAL {
			maxWAL = fi.Size()
		}
	}
	if l.TreeSize() != 320 || l.TiledThrough() != 320 {
		t.Fatalf("tree %d / tiled %d, want 320/320", l.TreeSize(), l.TiledThrough())
	}
}

// TestTiledSealCrashAtEveryStage captures the full durable image (WAL,
// snapshot, tiles) at every stage boundary of the seal lifecycle — via
// the sealStageHook, while the live log is mid-seal — and reopens each
// image as if the process had been killed there. Every stage must
// recover exactly the state the live log held, because every stage's
// on-disk image is self-consistent by construction: tiles before
// snapshot, snapshot before truncate, re-anchor after truncate.
func TestTiledSealCrashAtEveryStage(t *testing.T) {
	dir := t.TempDir()
	l, clk := newDurableLog(t, dir, Config{TileSpan: 4, SnapshotEvery: -1})

	type image struct {
		files map[string][]byte // relative path -> contents
	}
	captured := map[string]image{}
	snapshotDir := func() image {
		img := image{files: map[string][]byte{}}
		for _, rel := range []string{storage.WALName, storage.SnapshotName} {
			if data, err := os.ReadFile(filepath.Join(dir, rel)); err == nil {
				img.files[rel] = data
			}
		}
		tilesDir := filepath.Join(dir, storage.TilesDirName)
		names, _ := os.ReadDir(tilesDir)
		for _, de := range names {
			data, err := os.ReadFile(filepath.Join(tilesDir, de.Name()))
			if err != nil {
				t.Fatal(err)
			}
			img.files[filepath.Join(storage.TilesDirName, de.Name())] = data
		}
		return img
	}
	l.sealStageHook = func(stage string) {
		captured[stage] = snapshotDir()
	}

	sth := fillAndPublish(t, l, clk, "crash", 10) // seals tiles 0..1 in one publish
	wantLeaves := collectLeaves(t, l, sth.TreeHead.TreeSize)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	stages := []string{"tiles-written", "snapshot-pre-truncate", "wal-truncated", "snapshot-anchored"}
	for _, stage := range stages {
		img, ok := captured[stage]
		if !ok {
			t.Fatalf("seal never reached stage %q", stage)
		}
		t.Run(stage, func(t *testing.T) {
			crashDir := t.TempDir()
			if err := os.MkdirAll(filepath.Join(crashDir, storage.TilesDirName), 0o755); err != nil {
				t.Fatal(err)
			}
			for rel, data := range img.files {
				if err := os.WriteFile(filepath.Join(crashDir, rel), data, 0o644); err != nil {
					t.Fatal(err)
				}
			}
			l2, clk2 := newDurableLog(t, crashDir, Config{TileSpan: 4})
			defer l2.Close()
			// Every stage happens after the STH was durably published, so
			// recovery must land on exactly that head and tree.
			got := l2.STH()
			if got.TreeHead != sth.TreeHead {
				t.Fatalf("recovered head %+v, want %+v", got.TreeHead, sth.TreeHead)
			}
			gotLeaves := collectLeaves(t, l2, got.TreeHead.TreeSize)
			if len(gotLeaves) != len(wantLeaves) {
				t.Fatalf("recovered %d entries, want %d", len(gotLeaves), len(wantLeaves))
			}
			for i := range wantLeaves {
				if !bytes.Equal(gotLeaves[i], wantLeaves[i]) {
					t.Fatalf("entry %d differs after stage-%s crash", i, stage)
				}
			}
			// And the log keeps accepting, sealing, and publishing.
			next := fillAndPublish(t, l2, clk2, "after-"+stage, 6)
			proof, err := l2.GetConsistencyProof(sth.TreeHead.TreeSize, next.TreeHead.TreeSize)
			if err != nil {
				t.Fatal(err)
			}
			if err := verifyConsistencyForTest(sth, next, proof); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestTiledCorruptTileFailsReads proves tile verification actually
// gates serving: flipping one byte of a sealed hash tile makes reads of
// that tile fail with ErrCorrupt (never silently serve bytes the tree
// did not commit to), while the resident tail keeps serving.
func TestTiledCorruptTileFailsReads(t *testing.T) {
	dir := t.TempDir()
	l, clk := newDurableLog(t, dir, Config{TileSpan: 4, SnapshotEvery: -1, PageCacheBytes: -1})
	defer l.Close()
	sth := fillAndPublish(t, l, clk, "corrupt", 9)

	hashPath := filepath.Join(dir, storage.TilesDirName, fmt.Sprintf("%016x.%s", 0, storage.TileExtHash))
	data, err := os.ReadFile(hashPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-5] ^= 0x40
	if err := os.WriteFile(hashPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	// PageCacheBytes < 0 disables retention, so this read hits the
	// corrupted file rather than a cached page.
	if _, err := l.GetEntries(0, 3); !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("reading a corrupted tile: err=%v, want ErrCorrupt", err)
	}
	// The resident tail is unaffected.
	if page, err := l.GetEntries(8, sth.TreeHead.TreeSize-1); err != nil || len(page) != 1 {
		t.Fatalf("tail read after tile corruption: %d entries, err=%v", len(page), err)
	}
}

// TestTiledColdCachePassThrough pins the PageCacheBytes<0 contract used
// by the cold benchmarks: every sealed read pages in from disk, and the
// cache retains nothing.
func TestTiledColdCachePassThrough(t *testing.T) {
	dir := t.TempDir()
	l, clk := newDurableLog(t, dir, Config{TileSpan: 4, SnapshotEvery: -1, PageCacheBytes: -1})
	defer l.Close()
	fillAndPublish(t, l, clk, "cold", 8)
	for i := 0; i < 3; i++ {
		if _, err := l.GetEntries(0, 3); err != nil {
			t.Fatal(err)
		}
	}
	s := l.CacheStats()
	if s.Pages != 0 || s.Used != 0 {
		t.Fatalf("pass-through cache retained %d pages / %d bytes", s.Pages, s.Used)
	}
	if s.Hits != 0 {
		t.Fatalf("pass-through cache reported %d hits", s.Hits)
	}
}
