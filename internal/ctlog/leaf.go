package ctlog

import (
	"fmt"

	"ctrise/internal/merkle"
	"ctrise/internal/sct"
	"ctrise/internal/tlsenc"
)

// MerkleLeafType per RFC 6962 Section 3.4. Only timestamped_entry exists.
const timestampedEntryLeafType = 0

// Entry is one sequenced log entry.
type Entry struct {
	// Index is the entry's position in the log.
	Index uint64
	// Timestamp is the SCT timestamp in milliseconds since the epoch.
	Timestamp uint64
	// Type distinguishes x509_entry from precert_entry.
	Type sct.LogEntryType
	// Cert holds the certificate bytes for x509 entries and the defanged
	// TBS bytes for precert entries (RFC 6962 stores the TBS in the leaf).
	Cert []byte
	// IssuerKeyHash is set for precert entries.
	IssuerKeyHash [32]byte
	// Extensions are the SCT extensions covered by the leaf.
	Extensions []byte

	// idHash, idKey, and leafHash are stamped by the log at staging
	// time so the sequencer can order and integrate the batch without
	// rehashing: idHash is the dedupe identity, idKey its first 8 bytes
	// as a cheap sort key, leafHash the Merkle leaf hash. dupAnswered
	// (guarded by the log mutex) records that a resubmission was
	// answered with this entry's SCT, pinning it against a signing-
	// failure rollback. All are meaningless on client-parsed entries.
	idHash      merkle.Hash
	idKey       uint64
	leafHash    merkle.Hash
	dupAnswered bool
}

// MerkleTreeLeaf returns the RFC 6962 Section 3.4 leaf encoding:
//
//	struct {
//	    Version version;              // v1(0)
//	    MerkleLeafType leaf_type;     // timestamped_entry(0)
//	    TimestampedEntry timestamped_entry;
//	}
func (e *Entry) MerkleTreeLeaf() ([]byte, error) {
	b := tlsenc.NewBuilder(64 + len(e.Cert))
	b.AddUint8(uint8(sct.V1))
	b.AddUint8(timestampedEntryLeafType)
	b.AddUint64(e.Timestamp)
	b.AddUint16(uint16(e.Type))
	switch e.Type {
	case sct.X509LogEntryType:
		b.AddUint24Vector(e.Cert)
	case sct.PrecertLogEntryType:
		b.AddBytes(e.IssuerKeyHash[:])
		b.AddUint24Vector(e.Cert)
	default:
		return nil, fmt.Errorf("ctlog: unknown entry type %d", e.Type)
	}
	b.AddUint16Vector(e.Extensions)
	return b.Bytes()
}

// LeafHash returns the Merkle leaf hash of the entry.
func (e *Entry) LeafHash() (merkle.Hash, error) {
	leaf, err := e.MerkleTreeLeaf()
	if err != nil {
		return merkle.Hash{}, err
	}
	return merkle.HashLeaf(leaf), nil
}

// ParseMerkleTreeLeaf decodes a leaf_input back into an Entry (without an
// index, which get-entries conveys positionally).
func ParseMerkleTreeLeaf(data []byte) (*Entry, error) {
	r := tlsenc.NewReader(data)
	version := r.Uint8()
	leafType := r.Uint8()
	var e Entry
	e.Timestamp = r.Uint64()
	e.Type = sct.LogEntryType(r.Uint16())
	switch e.Type {
	case sct.X509LogEntryType:
		e.Cert = r.Uint24Vector()
	case sct.PrecertLogEntryType:
		copy(e.IssuerKeyHash[:], r.Bytes(32))
		e.Cert = r.Uint24Vector()
	default:
		if r.Err() == nil {
			return nil, fmt.Errorf("ctlog: unknown entry type %d", e.Type)
		}
	}
	e.Extensions = r.Uint16Vector()
	if err := r.ExpectEmpty(); err != nil {
		return nil, fmt.Errorf("ctlog: malformed leaf: %w", err)
	}
	if version != uint8(sct.V1) {
		return nil, fmt.Errorf("ctlog: unsupported leaf version %d", version)
	}
	if leafType != timestampedEntryLeafType {
		return nil, fmt.Errorf("ctlog: unsupported leaf type %d", leafType)
	}
	return &e, nil
}

// SignatureEntry converts the log entry into the structure an SCT
// signature covers, for verification by monitors.
func (e *Entry) SignatureEntry() sct.CertificateEntry {
	if e.Type == sct.PrecertLogEntryType {
		return sct.PrecertEntry(e.IssuerKeyHash, e.Cert)
	}
	return sct.X509Entry(e.Cert)
}
