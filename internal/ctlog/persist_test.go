package ctlog

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"ctrise/internal/ctlog/storage"
	"ctrise/internal/merkle"
	"ctrise/internal/sct"
)

func verifyInclusionForTest(lh merkle.Hash, idx uint64, sth SignedTreeHead, proof []merkle.Hash) error {
	return merkle.VerifyInclusion(lh, idx, sth.TreeHead.TreeSize, proof, merkle.Hash(sth.TreeHead.RootHash))
}

func verifyConsistencyForTest(before, after SignedTreeHead, proof []merkle.Hash) error {
	return merkle.VerifyConsistency(
		before.TreeHead.TreeSize, after.TreeHead.TreeSize,
		merkle.Hash(before.TreeHead.RootHash), merkle.Hash(after.TreeHead.RootHash),
		proof,
	)
}

// newDurableLog opens a durable log in dir on a fresh virtual clock,
// with a FastSigner (deterministic across reopens, like a persisted
// production key).
func newDurableLog(t *testing.T, dir string, cfg Config) (*Log, *virtualClock) {
	t.Helper()
	clk := newClock()
	if cfg.Signer == nil {
		cfg.Signer = sct.NewFastSigner("durable-test-log")
	}
	cfg.Clock = clk.Now
	if cfg.Name == "" {
		cfg.Name = "Durable Test Log"
		cfg.Operator = "TestOp"
	}
	l, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l, clk
}

// sameLogState asserts that two logs are observationally identical:
// published STH (bytes, including the signature), sequenced entries,
// and pending count.
func sameLogState(t *testing.T, want, got *Log) {
	t.Helper()
	wSTH, gSTH := want.STH(), got.STH()
	if wSTH.TreeHead != gSTH.TreeHead {
		t.Fatalf("tree head mismatch:\nwant %+v\ngot  %+v", wSTH.TreeHead, gSTH.TreeHead)
	}
	if wSTH.Sig.SignatureAlgorithm != gSTH.Sig.SignatureAlgorithm || !bytes.Equal(wSTH.Sig.Signature, gSTH.Sig.Signature) {
		t.Fatal("STH signature bytes differ after reopen")
	}
	if want.TreeSize() != got.TreeSize() {
		t.Fatalf("tree size %d vs %d", want.TreeSize(), got.TreeSize())
	}
	if want.PendingCount() != got.PendingCount() {
		t.Fatalf("pending count %d vs %d", want.PendingCount(), got.PendingCount())
	}
	size := wSTH.TreeHead.TreeSize
	if size == 0 {
		return
	}
	// Stream (not page) so the comparison covers the whole published
	// range even when part of it lives in sealed tiles.
	collect := func(l *Log) [][]byte {
		var leaves [][]byte
		err := l.StreamEntries(0, size-1, func(e *Entry) error {
			leaf, err := e.MerkleTreeLeaf()
			if err != nil {
				return err
			}
			leaves = append(leaves, leaf)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return leaves
	}
	wEntries, gEntries := collect(want), collect(got)
	if len(wEntries) != len(gEntries) {
		t.Fatalf("entry count %d vs %d", len(wEntries), len(gEntries))
	}
	for i := range wEntries {
		if !bytes.Equal(wEntries[i], gEntries[i]) {
			t.Fatalf("entry %d leaf bytes differ", i)
		}
	}
}

// TestOpenFreshPublishesGenesis proves a fresh durable directory starts
// like New: an empty-tree STH, which then survives a reopen.
func TestOpenFreshPublishesGenesis(t *testing.T) {
	dir := t.TempDir()
	l, _ := newDurableLog(t, dir, Config{})
	sth := l.STH()
	if sth.TreeHead.TreeSize != 0 {
		t.Fatalf("genesis size %d", sth.TreeHead.TreeSize)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, _ := newDurableLog(t, dir, Config{})
	defer l2.Close()
	sameLogState(t, l, l2)
}

// TestReopenRoundTrip walks the full lifecycle — stage, sequence,
// publish, more staging — closes, reopens, and requires byte-identical
// state, proofs included.
func TestReopenRoundTrip(t *testing.T) {
	for _, every := range []int{1, 3, -1} {
		t.Run(fmt.Sprintf("snapshotEvery=%d", every), func(t *testing.T) {
			dir := t.TempDir()
			l, clk := newDurableLog(t, dir, Config{SnapshotEvery: every})
			var ikh [32]byte
			ikh[0] = 7
			for day := 0; day < 3; day++ {
				for i := 0; i < 5; i++ {
					if _, err := l.AddChain([]byte(fmt.Sprintf("cert-%d-%d", day, i))); err != nil {
						t.Fatal(err)
					}
					if _, err := l.AddPreChain(ikh, []byte(fmt.Sprintf("tbs-%d-%d", day, i))); err != nil {
						t.Fatal(err)
					}
					clk.Advance(time.Minute)
				}
				if _, err := l.PublishSTH(); err != nil {
					t.Fatal(err)
				}
				clk.Advance(24 * time.Hour)
			}
			// Leave a staged tail so recovery has pending state too.
			if _, err := l.AddChain([]byte("staged-only")); err != nil {
				t.Fatal(err)
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}

			l2, _ := newDurableLog(t, dir, Config{SnapshotEvery: every})
			defer l2.Close()
			sameLogState(t, l, l2)

			// Proof paths work over the recovered tree.
			sth := l2.STH()
			entries, err := l2.GetEntries(0, sth.TreeHead.TreeSize-1)
			if err != nil {
				t.Fatal(err)
			}
			for _, e := range entries {
				lh, err := e.LeafHash()
				if err != nil {
					t.Fatal(err)
				}
				idx, proof, err := l2.GetProofByHash(lh, sth.TreeHead.TreeSize)
				if err != nil {
					t.Fatalf("proof for entry %d: %v", e.Index, err)
				}
				if idx != e.Index {
					t.Fatalf("index %d, want %d", idx, e.Index)
				}
				if err := verifyInclusionForTest(lh, idx, sth, proof); err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}

// TestReopenContinuesAppending proves a reopened log keeps growing
// consistently: new submissions sequence on top of the recovered tree
// and a consistency proof links the pre- and post-restart heads.
func TestReopenContinuesAppending(t *testing.T) {
	dir := t.TempDir()
	l, _ := newDurableLog(t, dir, Config{})
	for i := 0; i < 4; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("pre-restart-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	before := l.STH()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, clk := newDurableLog(t, dir, Config{})
	defer l2.Close()
	clk.Advance(time.Hour)
	for i := 0; i < 3; i++ {
		if _, err := l2.AddChain([]byte(fmt.Sprintf("post-restart-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l2.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	after := l2.STH()
	if after.TreeHead.TreeSize != 7 {
		t.Fatalf("post-restart size %d, want 7", after.TreeHead.TreeSize)
	}
	proof, err := l2.GetConsistencyProof(before.TreeHead.TreeSize, after.TreeHead.TreeSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := verifyConsistencyForTest(before, after, proof); err != nil {
		t.Fatalf("pre/post restart heads inconsistent: %v", err)
	}
}

// TestPendingAndDedupeSurviveReopen is the regression test for the
// staged-batch recovery contract: PendingCount is preserved across a
// restart, and a duplicate submitted after the restart — whether its
// original was staged or already sequenced — returns the original SCT
// (same timestamp, no new pending entry), exactly as if the process had
// never died.
func TestPendingAndDedupeSurviveReopen(t *testing.T) {
	dir := t.TempDir()
	l, clk := newDurableLog(t, dir, Config{})
	sequenced := []byte("sequenced-cert")
	staged := []byte("staged-cert")
	sctSequenced, err := l.AddChain(sequenced)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Hour)
	sctStaged, err := l.AddChain(staged)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, clk2 := newDurableLog(t, dir, Config{})
	defer l2.Close()
	if got := l2.PendingCount(); got != 1 {
		t.Fatalf("PendingCount after reopen = %d, want 1", got)
	}
	// Let wall time move on: a re-add (rather than a dedupe hit) would
	// mint a fresh, different timestamp.
	clk2.Advance(48 * time.Hour)
	dupStaged, err := l2.AddChain(staged)
	if err != nil {
		t.Fatal(err)
	}
	if dupStaged.Timestamp != sctStaged.Timestamp {
		t.Fatalf("staged duplicate timestamp %d, want original %d", dupStaged.Timestamp, sctStaged.Timestamp)
	}
	dupSequenced, err := l2.AddChain(sequenced)
	if err != nil {
		t.Fatal(err)
	}
	if dupSequenced.Timestamp != sctSequenced.Timestamp {
		t.Fatalf("sequenced duplicate timestamp %d, want original %d", dupSequenced.Timestamp, sctSequenced.Timestamp)
	}
	if got := l2.PendingCount(); got != 1 {
		t.Fatalf("duplicates grew the pending batch: %d", got)
	}
	// The recovered staged entry sequences once, not twice.
	if n, err := l2.Sequence(); err != nil || n != 1 {
		t.Fatalf("sequenced %d (err %v), want 1", n, err)
	}
	if l2.TreeSize() != 2 {
		t.Fatalf("tree size %d, want 2", l2.TreeSize())
	}
}

// TestReopenWithECDSASigner proves recovery works with real ECDSA
// signatures: the restored STH carries the exact pre-crash signature
// (ECDSA is randomized, so a re-sign would differ) and verifies.
func TestReopenWithECDSASigner(t *testing.T) {
	signer, err := sct.NewSigner(&fixedReader{rng: rand.New(rand.NewSource(4))})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	l, _ := newDurableLog(t, dir, Config{Signer: signer})
	if _, err := l.AddChain([]byte("ecdsa cert")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, _ := newDurableLog(t, dir, Config{Signer: signer})
	defer l2.Close()
	sameLogState(t, l, l2)
	sth := l2.STH()
	if err := l2.Verifier().VerifyTreeHead(sth.TreeHead, sth.Sig); err != nil {
		t.Fatalf("recovered STH does not verify: %v", err)
	}
}

// TestOpenRejectsWrongKey proves a directory opened under a different
// signer fails loudly instead of serving STHs it could never have
// signed.
func TestOpenRejectsWrongKey(t *testing.T) {
	dir := t.TempDir()
	l, _ := newDurableLog(t, dir, Config{Signer: sct.NewFastSigner("key-A")})
	if _, err := l.AddChain([]byte("cert")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	clk := newClock()
	_, err := Open(dir, Config{Name: "X", Signer: sct.NewFastSigner("key-B"), Clock: clk.Now})
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("open with wrong key: err=%v, want ErrCorrupt", err)
	}
}

// TestCorruptSnapshotFallsBackToWAL proves snapshot corruption is not
// fatal: the uncompacted WAL rebuilds the full state.
func TestCorruptSnapshotFallsBackToWAL(t *testing.T) {
	dir := t.TempDir()
	l, _ := newDurableLog(t, dir, Config{SnapshotEvery: 1})
	for i := 0; i < 6; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("cert-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(dir, storage.SnapshotName)
	if _, err := os.Stat(snapPath); err != nil {
		t.Fatalf("expected a snapshot: %v", err)
	}
	if err := os.WriteFile(snapPath, []byte("not a snapshot"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, _ := newDurableLog(t, dir, Config{})
	defer l2.Close()
	sameLogState(t, l, l2)
}

// TestMidWALCorruptionAdoptsSnapshot proves that when corruption eats
// fsynced WAL records BELOW the snapshot's cursor — so the surviving
// WAL prefix ends before state the snapshot verifiably covers —
// recovery adopts the snapshot rather than silently rolling the log
// back below its published STH, and the log keeps working (and
// re-persisting consistently) afterwards.
func TestMidWALCorruptionAdoptsSnapshot(t *testing.T) {
	dir := t.TempDir()
	l, _ := newDurableLog(t, dir, Config{})
	for i := 0; i < 8; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("cert-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // writes the snapshot
		t.Fatal(err)
	}

	// Flip a byte in the middle of the WAL: the valid prefix now ends
	// well below the snapshot's cursor.
	walPath := filepath.Join(dir, storage.WALName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2, _ := newDurableLog(t, dir, Config{})
	sameLogState(t, l, l2) // full state, not the corrupt WAL's prefix
	// The log keeps accepting and sequencing on the reset WAL.
	if _, err := l2.AddChain([]byte("post-corruption")); err != nil {
		t.Fatal(err)
	}
	if _, err := l2.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	// And a third open replays the re-anchored snapshot + fresh WAL.
	l3, _ := newDurableLog(t, dir, Config{})
	defer l3.Close()
	sameLogState(t, l2, l3)
	if l3.TreeSize() != 9 {
		t.Fatalf("tree size %d, want 9", l3.TreeSize())
	}
}

// TestCorruptSnapshotWithEmptyWALFailsLoudly covers the state after an
// adopt-snapshot recovery: the WAL is empty and the snapshot is the
// only copy of the log. If that snapshot then corrupts, Open must fail
// loudly — falling back to the empty WAL would silently restart the
// log empty, vaporizing every acked submission.
func TestCorruptSnapshotWithEmptyWALFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, _ := newDurableLog(t, dir, Config{})
	for i := 0; i < 5; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("cert-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Reach the adopted state: corrupt the WAL mid-file so the next open
	// adopts the snapshot and resets the WAL to an empty header.
	walPath := filepath.Join(dir, storage.WALName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(walPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, _ := newDurableLog(t, dir, Config{})
	if l2.TreeSize() != 5 {
		t.Fatalf("adopted tree size %d, want 5", l2.TreeSize())
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	// Now the snapshot corrupts too.
	snapPath := filepath.Join(dir, storage.SnapshotName)
	snapData, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	snapData[len(snapData)/2] ^= 0xFF
	if err := os.WriteFile(snapPath, snapData, 0o644); err != nil {
		t.Fatal(err)
	}
	clk := newClock()
	_, err = Open(dir, Config{Name: "X", Signer: sct.NewFastSigner("durable-test-log"), Clock: clk.Now})
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("corrupt snapshot over empty WAL: err=%v, want ErrCorrupt", err)
	}
}

// TestDivergedSealFailsLoudly forges a WAL whose seal does not match
// its entries (a valid checksum over a lying root) and requires Open to
// refuse: this is the "never serve a diverged STH" guarantee, beyond
// what CRCs catch.
func TestDivergedSealFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, _ := newDurableLog(t, dir, Config{SnapshotEvery: -1})
	if _, err := l.AddChain([]byte("original cert")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Rewrite the WAL: keep the records but flip a byte inside the
	// entry's certificate and re-frame it with a fresh, valid CRC. The
	// seal and STH now commit to a tree this history cannot produce.
	walPath := filepath.Join(dir, storage.WALName)
	data, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatal(err)
	}
	recs, valid, err := storage.DecodeWAL(data)
	if err != nil || valid != len(data) {
		t.Fatalf("unexpected WAL shape: valid=%d len=%d err=%v", valid, len(data), err)
	}
	forged := append([]byte(nil), storage.WALMagic...)
	for _, rec := range recs {
		payload := append([]byte(nil), rec.Payload...)
		if rec.Type == storage.RecordEntry {
			payload[len(payload)-1] ^= 0x01
		}
		forged = storage.AppendRecord(forged, rec.Type, payload)
	}
	if err := os.WriteFile(walPath, forged, 0o644); err != nil {
		t.Fatal(err)
	}
	// Drop the Close-time snapshot so recovery must replay the forged
	// WAL (with the snapshot present it would never read the prefix).
	if err := os.Remove(filepath.Join(dir, storage.SnapshotName)); err != nil {
		t.Fatal(err)
	}
	clk := newClock()
	_, err = Open(dir, Config{Name: "X", Signer: sct.NewFastSigner("durable-test-log"), Clock: clk.Now})
	if !errors.Is(err, storage.ErrCorrupt) {
		t.Fatalf("forged WAL: err=%v, want ErrCorrupt", err)
	}
}

// TestIdleRepublishDoesNotGrowWAL pins the idle-log property: a
// wall-clock sequencer republishing an unchanged tree appends nothing
// durable (otherwise an idle ctlogd's WAL grows without bound), while a
// tree-advancing publish still persists its head.
func TestIdleRepublishDoesNotGrowWAL(t *testing.T) {
	dir := t.TempDir()
	l, clk := newDurableLog(t, dir, Config{})
	if _, err := l.AddChain([]byte("one cert")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	walPath := filepath.Join(dir, storage.WALName)
	sizeAfterPublish := func() int64 {
		fi, err := os.Stat(walPath)
		if err != nil {
			t.Fatal(err)
		}
		return fi.Size()
	}
	before := sizeAfterPublish()
	for i := 0; i < 10; i++ {
		clk.Advance(time.Second)
		if _, err := l.PublishSTH(); err != nil {
			t.Fatal(err)
		}
	}
	if after := sizeAfterPublish(); after != before {
		t.Fatalf("idle republishing grew the WAL: %d -> %d", before, after)
	}
	// The recovered head is the persisted one: same tree, and still
	// served after reopen.
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, _ := newDurableLog(t, dir, Config{})
	defer l2.Close()
	sth := l2.STH()
	if sth.TreeHead.TreeSize != 1 {
		t.Fatalf("reopened size %d, want 1", sth.TreeHead.TreeSize)
	}
}

// TestInMemoryLogUnchanged pins the zero-cost property: a log built
// with New has no store, Close is a no-op, and submissions never touch
// a filesystem.
func TestInMemoryLogUnchanged(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	if _, err := l.AddChain([]byte("cert")); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Still usable after Close: nothing was shut down.
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	if l.TreeSize() != 1 {
		t.Fatalf("tree size %d", l.TreeSize())
	}
}
