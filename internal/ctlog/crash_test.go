package ctlog

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"ctrise/internal/ctlog/storage"
	"ctrise/internal/merkle"
	"ctrise/internal/sct"
)

// The crash harness. A crash at any instant leaves the WAL as some byte
// prefix of what the process had written (fsync ordering guarantees
// nothing beyond that), possibly with trailing garbage, possibly with a
// stale or missing snapshot. The harness therefore simulates "kill -9 at
// every possible moment" exhaustively: it runs a scripted workload
// against a durable log, captures the final WAL image, and then opens a
// copy truncated at EVERY byte offset — and with every byte flipped —
// requiring each recovery to land in a prefix-consistent state or fail
// loudly. "Prefix-consistent" is checked against the uninterrupted run:
//
//   - the recovered sequenced entries are a byte-identical prefix of the
//     full run's sequenced entries;
//   - the recovered published STH is one the full run actually published
//     (or genesis), and its size/root match the recovered tree;
//   - recovered staged entries are submissions the full run accepted.
//
// No recovery may ever surface an STH outside the published set: that
// would be a diverged tree head, the one unforgivable failure for a CT
// log.

// crashWorkload drives a deterministic mixed workload against l,
// returning every published STH (in order) and the leaf bytes of every
// accepted submission.
func crashWorkload(t *testing.T, l *Log, clk *virtualClock) (sths []SignedTreeHead, accepted map[string]bool) {
	t.Helper()
	accepted = make(map[string]bool)
	record := func() {
		sths = append(sths, l.STH())
	}
	record() // genesis
	var ikh [32]byte
	ikh[5] = 99
	submit := func(precert bool, payload string) {
		t.Helper()
		var err error
		if precert {
			_, err = l.AddPreChain(ikh, []byte(payload))
		} else {
			_, err = l.AddChain([]byte(payload))
		}
		if err != nil {
			t.Fatal(err)
		}
		accepted[payload] = true
		clk.Advance(13 * time.Second)
	}
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			submit(i%2 == 0, fmt.Sprintf("cert-r%d-i%d", round, i))
		}
		switch round % 3 {
		case 0:
			if _, err := l.PublishSTH(); err != nil {
				t.Fatal(err)
			}
			record()
		case 1:
			if _, err := l.Sequence(); err != nil {
				t.Fatal(err)
			}
		case 2:
			// Duplicate resubmission (answered from dedupe, no new record).
			if _, err := l.AddChain([]byte("cert-r0-i1")); err != nil {
				t.Fatal(err)
			}
			if _, err := l.PublishSTH(); err != nil {
				t.Fatal(err)
			}
			record()
		}
		clk.Advance(6 * time.Hour)
	}
	// Final publish so the oracle observes the complete sequenced tree
	// through the published snapshot (crash points still cover every
	// mid-sequence prefix — they are byte offsets, not op boundaries).
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	record()
	return sths, accepted
}

// crashOracle is the prefix-consistency checker built from the
// uninterrupted run.
type crashOracle struct {
	// leaves[i] is the MerkleTreeLeaf encoding of full-run entry i.
	leaves [][]byte
	// sths maps published (size, root) pairs to their full tree heads.
	sths map[[40]byte]bool
	// accepted holds every payload the full run accepted.
	accepted map[string]bool
}

func sthKey(size uint64, root [32]byte) [40]byte {
	var k [40]byte
	copy(k[:32], root[:])
	for i := 0; i < 8; i++ {
		k[32+i] = byte(size >> (8 * i))
	}
	return k
}

func newCrashOracle(t *testing.T, l *Log, sths []SignedTreeHead, accepted map[string]bool) *crashOracle {
	t.Helper()
	o := &crashOracle{sths: make(map[[40]byte]bool), accepted: accepted}
	for _, sth := range sths {
		o.sths[sthKey(sth.TreeHead.TreeSize, sth.TreeHead.RootHash)] = true
	}
	size := l.TreeSize()
	if size > 0 {
		// Read the sequenced (not just published) prefix via the final
		// publish the workload ends with. Stream, not page: paging clamps
		// at tile boundaries on a tiled log.
		err := l.StreamEntries(0, size-1, func(e *Entry) error {
			leaf, err := e.MerkleTreeLeaf()
			if err != nil {
				return err
			}
			o.leaves = append(o.leaves, leaf)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return o
}

// checkRecovered validates one recovered log against the oracle.
func (o *crashOracle) checkRecovered(t *testing.T, label string, l *Log) {
	t.Helper()
	size := l.TreeSize()
	if size > uint64(len(o.leaves)) {
		t.Fatalf("%s: recovered %d sequenced entries, full run had %d", label, size, len(o.leaves))
	}
	sth := l.STH()
	if !o.sths[sthKey(sth.TreeHead.TreeSize, sth.TreeHead.RootHash)] {
		t.Fatalf("%s: recovered STH (size %d) was never published — diverged tree head", label, sth.TreeHead.TreeSize)
	}
	if sth.TreeHead.TreeSize > size {
		t.Fatalf("%s: STH size %d exceeds recovered tree %d", label, sth.TreeHead.TreeSize, size)
	}
	if sth.TreeHead.TreeSize > 0 {
		i := 0
		err := l.StreamEntries(0, sth.TreeHead.TreeSize-1, func(e *Entry) error {
			leaf, err := e.MerkleTreeLeaf()
			if err != nil {
				return err
			}
			if !bytes.Equal(leaf, o.leaves[i]) {
				return fmt.Errorf("entry %d is not a prefix of the full run", i)
			}
			i++
			return nil
		})
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
	}
	// Whatever is pending must be a submission the full run accepted.
	if pending := l.PendingCount(); pending > len(o.accepted) {
		t.Fatalf("%s: %d pending entries, only %d were ever accepted", label, pending, len(o.accepted))
	}
}

// buildCrashImage runs the workload in a scratch dir with Close skipped
// (files as the OS saw them mid-run, no final snapshot) and returns the
// WAL image, the oracle, the optional snapshot image, and any sealed
// tile files (relative name -> contents).
func buildCrashImage(t *testing.T, cfg Config) (wal []byte, snap []byte, tiles map[string][]byte, oracle *crashOracle) {
	t.Helper()
	dir := t.TempDir()
	l, clk := newDurableLog(t, dir, cfg)
	sths, accepted := crashWorkload(t, l, clk)
	oracle = newCrashOracle(t, l, sths, accepted)
	// Simulate the kill: abandon the log without Close. Same-process
	// reads of the WAL see every written byte regardless of fsync.
	wal, err := os.ReadFile(filepath.Join(dir, storage.WALName))
	if err != nil {
		t.Fatal(err)
	}
	if snapData, err := os.ReadFile(filepath.Join(dir, storage.SnapshotName)); err == nil {
		snap = snapData
	}
	tiles = map[string][]byte{}
	if names, err := os.ReadDir(filepath.Join(dir, storage.TilesDirName)); err == nil {
		for _, de := range names {
			data, err := os.ReadFile(filepath.Join(dir, storage.TilesDirName, de.Name()))
			if err != nil {
				t.Fatal(err)
			}
			tiles[de.Name()] = data
		}
	}
	return wal, snap, tiles, oracle
}

// openCrashed opens a log over the given file images.
func openCrashed(t *testing.T, wal, snap []byte, tiles map[string][]byte) (*Log, error) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, storage.WALName), wal, 0o644); err != nil {
		t.Fatal(err)
	}
	if snap != nil {
		if err := os.WriteFile(filepath.Join(dir, storage.SnapshotName), snap, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if len(tiles) > 0 {
		if err := os.MkdirAll(filepath.Join(dir, storage.TilesDirName), 0o755); err != nil {
			t.Fatal(err)
		}
		for name, data := range tiles {
			if err := os.WriteFile(filepath.Join(dir, storage.TilesDirName, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}
	clk := newClock()
	return Open(dir, Config{
		Name:     "Durable Test Log",
		Operator: "TestOp",
		Signer:   sct.NewFastSigner("durable-test-log"),
		Clock:    clk.Now,
	})
}

// TestCrashRecoveryAtEveryByteOffset truncates the WAL at every byte
// offset — every possible kill point — and requires recovery to restore
// a prefix-consistent state or fail loudly. Run both without a snapshot
// (full replay) and with a mid-run snapshot plus tail.
func TestCrashRecoveryAtEveryByteOffset(t *testing.T) {
	cases := []struct {
		name     string
		cfg      Config
		withSnap bool
	}{
		{"walOnly", Config{SnapshotEvery: -1}, false},
		// SnapshotEvery 7 lands the only snapshot mid-run (cursor at
		// entry 9 of 15, real WAL tail after it): cuts above the cursor
		// exercise snapshot+tail replay, cuts below exercise the
		// adopt-snapshot path (WAL prefix ends under the cursor).
		{"snapshotPlusTail", Config{SnapshotEvery: 7}, true},
		// Span 4 forces several seal+truncate cycles mid-workload: the
		// final WAL is a short post-compaction tail, the snapshot carries
		// tile roots, and most of the tree lives in tile files. Every cut
		// of that WAL must recover through the tiles (including cuts below
		// the seal's re-anchored cursor, which adopt the snapshot).
		{"tiledSpan4", Config{SnapshotEvery: -1, TileSpan: 4}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			wal, snap, tiles, oracle := buildCrashImage(t, tc.cfg)
			if tc.withSnap && snap == nil {
				t.Fatal("workload produced no snapshot")
			}
			if !tc.withSnap {
				snap = nil
			}
			for cut := 0; cut <= len(wal); cut++ {
				l, err := openCrashed(t, wal[:cut], snap, tiles)
				if err != nil {
					// Loud failure is acceptable only for structural
					// impossibilities; a plain truncation must recover
					// unless it contradicts the snapshot's cursor.
					if snap == nil {
						t.Fatalf("cut %d: open failed on pure truncation: %v", cut, err)
					}
					continue
				}
				oracle.checkRecovered(t, fmt.Sprintf("cut %d", cut), l)
				l.Close()
			}
		})
	}
}

// TestCrashRecoveryWithByteCorruption flips every single byte of the
// WAL image (one at a time) and requires recovery to either fail loudly
// or land prefix-consistent — never serve a diverged STH.
func TestCrashRecoveryWithByteCorruption(t *testing.T) {
	t.Run("walOnly", func(t *testing.T) {
		wal, _, _, oracle := buildCrashImage(t, Config{SnapshotEvery: -1})
		mut := make([]byte, len(wal))
		for i := 0; i < len(wal); i++ {
			copy(mut, wal)
			mut[i] ^= 0xFF
			l, err := openCrashed(t, mut, nil, nil)
			if err != nil {
				continue // loud failure: acceptable
			}
			oracle.checkRecovered(t, fmt.Sprintf("flip %d", i), l)
			l.Close()
		}
	})
	// Tiled: flip every byte of the post-compaction WAL tail with the
	// snapshot and tiles intact. Recovery leans on the snapshot here, so
	// most flips adopt it; none may serve a diverged head.
	t.Run("tiledSpan4", func(t *testing.T) {
		wal, snap, tiles, oracle := buildCrashImage(t, Config{SnapshotEvery: -1, TileSpan: 4})
		mut := make([]byte, len(wal))
		for i := 0; i < len(wal); i++ {
			copy(mut, wal)
			mut[i] ^= 0xFF
			l, err := openCrashed(t, mut, snap, tiles)
			if err != nil {
				continue // loud failure: acceptable
			}
			oracle.checkRecovered(t, fmt.Sprintf("flip %d", i), l)
			l.Close()
		}
	})
}

// TestCrashRecoveryWithTrailingGarbage appends random-ish garbage after
// a valid WAL (a crash mid-append over recycled disk blocks) and makes
// sure recovery discards it and appends continue cleanly after reopen.
func TestCrashRecoveryWithTrailingGarbage(t *testing.T) {
	wal, _, _, oracle := buildCrashImage(t, Config{SnapshotEvery: -1})
	for _, garbage := range [][]byte{
		{0x00}, {0xFF}, bytes.Repeat([]byte{0xA5}, 37),
		storage.AppendRecord(nil, storage.RecordEntry, []byte("ghost"))[:7],
	} {
		l, err := openCrashed(t, append(append([]byte(nil), wal...), garbage...), nil, nil)
		if err != nil {
			t.Fatalf("garbage %x: %v", garbage, err)
		}
		oracle.checkRecovered(t, fmt.Sprintf("garbage %x", garbage), l)
		// The log must keep working (the torn tail was truncated away).
		if _, err := l.AddChain([]byte("post-garbage cert")); err != nil {
			t.Fatal(err)
		}
		if _, err := l.PublishSTH(); err != nil {
			t.Fatal(err)
		}
		l.Close()
	}
}

// TestKillMidSequencingServesIdenticalState is the acceptance check: a
// log killed while a sequencer races concurrent submitters, restarted
// from its data dir, serves an STH and entry range identical to the
// uninterrupted original. Run with -race, this also proves the durable
// add/sequence paths are data-race free.
func TestKillMidSequencingServesIdenticalState(t *testing.T) {
	dir := t.TempDir()
	clk := newClock()
	var clkMu sync.Mutex
	now := func() time.Time {
		clkMu.Lock()
		defer clkMu.Unlock()
		return clk.now
	}
	l, err := Open(dir, Config{
		Name:     "Durable Test Log",
		Operator: "TestOp",
		Signer:   sct.NewFastSigner("durable-test-log"),
		Clock:    now,
	})
	if err != nil {
		t.Fatal(err)
	}

	const submitters, perSubmitter = 4, 25
	var wgSub, wgSeq sync.WaitGroup
	for s := 0; s < submitters; s++ {
		wgSub.Add(1)
		go func(s int) {
			defer wgSub.Done()
			for i := 0; i < perSubmitter; i++ {
				if _, err := l.AddChain([]byte(fmt.Sprintf("conc-%d-%d", s, i))); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	// Sequencer racing the submitters: sequence+publish continuously.
	done := make(chan struct{})
	wgSeq.Add(1)
	go func() {
		defer wgSeq.Done()
		for {
			select {
			case <-done:
				return
			default:
				if _, err := l.PublishSTH(); err != nil {
					t.Error(err)
					return
				}
				clkMu.Lock()
				clk.Advance(time.Second)
				clkMu.Unlock()
			}
		}
	}()
	wgSub.Wait()
	close(done)
	wgSeq.Wait()
	// One final tree-advancing publish so the live head is also the
	// last persisted head (an idle republish would not be appended to
	// the WAL), then "kill" the process: abandon l without Close (no
	// final snapshot, no graceful anything) and restart from the
	// directory.
	if _, err := l.AddChain([]byte("final-entry")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}

	// The abandoned Log still holds the directory flock (in a real kill
	// the kernel would have released it with the process), so the
	// "restarted process" opens a byte-for-byte copy of the directory.
	dir2 := t.TempDir()
	for _, name := range []string{storage.WALName, storage.SnapshotName} {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir2, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	l2, err := Open(dir2, Config{
		Name:     "Durable Test Log",
		Operator: "TestOp",
		Signer:   sct.NewFastSigner("durable-test-log"),
		Clock:    now,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	sameLogState(t, l, l2)
	if got, want := l2.TreeSize(), uint64(submitters*perSubmitter+1); got != want {
		t.Fatalf("recovered tree size %d, want %d", got, want)
	}
	// And the restarted log serves proofs over the recovered tree.
	sth := l2.STH()
	e, err := l2.GetEntries(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	lh, err := e[0].LeafHash()
	if err != nil {
		t.Fatal(err)
	}
	idx, proof, err := l2.GetProofByHash(lh, sth.TreeHead.TreeSize)
	if err != nil {
		t.Fatal(err)
	}
	if err := merkle.VerifyInclusion(lh, idx, sth.TreeHead.TreeSize, proof, merkle.Hash(sth.TreeHead.RootHash)); err != nil {
		t.Fatal(err)
	}
}
