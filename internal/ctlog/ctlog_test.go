package ctlog

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"ctrise/internal/merkle"
	"ctrise/internal/sct"
)

type fixedReader struct{ rng *rand.Rand }

func (f *fixedReader) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = byte(f.rng.Intn(256))
	}
	return len(p), nil
}

// virtualClock is a manually-advanced clock.
type virtualClock struct{ now time.Time }

func (v *virtualClock) Now() time.Time          { return v.now }
func (v *virtualClock) Advance(d time.Duration) { v.now = v.now.Add(d) }
func newClock() *virtualClock {
	return &virtualClock{now: time.Date(2018, 4, 1, 0, 0, 0, 0, time.UTC)}
}

func newTestLog(t *testing.T, cfg Config) (*Log, *virtualClock) {
	t.Helper()
	clk := newClock()
	signer, err := sct.NewSigner(&fixedReader{rng: rand.New(rand.NewSource(99))})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Signer = signer
	cfg.Clock = clk.Now
	if cfg.Name == "" {
		cfg.Name = "Test Log"
		cfg.Operator = "TestOp"
	}
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l, clk
}

func TestNewRequiresSigner(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Fatal("New without signer must fail")
	}
}

func TestAddChainIssuesValidSCT(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	cert := []byte("a certificate")
	s, err := l.AddChain(cert)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Verifier().VerifySCT(s, sct.X509Entry(cert)); err != nil {
		t.Fatalf("SCT does not verify: %v", err)
	}
	// The SCT is a promise: the entry is staged, not yet in the tree.
	if l.TreeSize() != 0 || l.PendingCount() != 1 {
		t.Fatalf("tree size = %d, pending = %d", l.TreeSize(), l.PendingCount())
	}
	if n, _ := l.Sequence(); n != 1 {
		t.Fatalf("sequenced %d entries", n)
	}
	if l.TreeSize() != 1 || l.PendingCount() != 0 {
		t.Fatalf("after sequence: tree size = %d, pending = %d", l.TreeSize(), l.PendingCount())
	}
}

func TestAddPreChainIssuesValidSCT(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	var ikh [32]byte
	ikh[0] = 7
	tbs := []byte("tbs bytes")
	s, err := l.AddPreChain(ikh, tbs)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Verifier().VerifySCT(s, sct.PrecertEntry(ikh, tbs)); err != nil {
		t.Fatalf("precert SCT does not verify: %v", err)
	}
}

func TestDuplicateSubmissionReturnsSameTimestamp(t *testing.T) {
	l, clk := newTestLog(t, Config{})
	cert := []byte("dup cert")
	s1, err := l.AddChain(cert)
	if err != nil {
		t.Fatal(err)
	}
	clk.Advance(time.Hour)
	s2, err := l.AddChain(cert)
	if err != nil {
		t.Fatal(err)
	}
	if s1.Timestamp != s2.Timestamp {
		t.Fatalf("duplicate got new timestamp: %d vs %d", s1.Timestamp, s2.Timestamp)
	}
	if l.Sequence(); l.TreeSize() != 1 {
		t.Fatalf("duplicate created new entry: size=%d", l.TreeSize())
	}
	// Dedupe also answers after sequencing.
	clk.Advance(time.Hour)
	s3, err := l.AddChain(cert)
	if err != nil {
		t.Fatal(err)
	}
	if s3.Timestamp != s1.Timestamp || l.PendingCount() != 0 {
		t.Fatalf("post-sequence duplicate: ts=%d pending=%d", s3.Timestamp, l.PendingCount())
	}
}

func TestSTHPublication(t *testing.T) {
	l, clk := newTestLog(t, Config{})
	sth0 := l.STH()
	if sth0.TreeHead.TreeSize != 0 {
		t.Fatalf("initial STH size = %d", sth0.TreeHead.TreeSize)
	}
	if sth0.TreeHead.RootHash != [32]byte(merkle.EmptyRoot()) {
		t.Fatal("initial STH root is not the empty root")
	}
	if _, err := l.AddChain([]byte("c1")); err != nil {
		t.Fatal(err)
	}
	// STH lags until published.
	if got := l.STH().TreeHead.TreeSize; got != 0 {
		t.Fatalf("unpublished STH advanced to %d", got)
	}
	clk.Advance(time.Minute)
	sth1, err := l.PublishSTH()
	if err != nil {
		t.Fatal(err)
	}
	if sth1.TreeHead.TreeSize != 1 {
		t.Fatalf("published size = %d", sth1.TreeHead.TreeSize)
	}
	if err := l.Verifier().VerifyTreeHead(sth1.TreeHead, sth1.Sig); err != nil {
		t.Fatalf("STH signature: %v", err)
	}
	if sth1.TreeHead.Timestamp <= sth0.TreeHead.Timestamp {
		t.Fatal("STH timestamp did not advance")
	}
}

func TestGetEntriesRanges(t *testing.T) {
	l, _ := newTestLog(t, Config{MaxGetEntries: 3})
	for i := 0; i < 10; i++ {
		if _, err := l.AddChain([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	got, err := l.GetEntries(2, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 { // MaxGetEntries
		t.Fatalf("entries = %d, want 3", len(got))
	}
	if got[0].Index != 2 || got[2].Index != 4 {
		t.Fatalf("indices = %d..%d", got[0].Index, got[2].Index)
	}
	// end beyond size truncates
	got, err = l.GetEntries(8, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("tail entries = %d, want 2", len(got))
	}
	// invalid ranges
	if _, err := l.GetEntries(5, 4); !errors.Is(err, ErrBadRange) {
		t.Fatalf("err = %v", err)
	}
	if _, err := l.GetEntries(10, 12); !errors.Is(err, ErrBadRange) {
		t.Fatalf("err = %v", err)
	}
}

func TestGetEntriesRespectsPublishedSize(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	if _, err := l.AddChain([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AddChain([]byte("b")); err != nil {
		t.Fatal(err)
	}
	// Entry 1 exists in the tree but is not yet published.
	got, err := l.GetEntries(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("returned %d entries, want 1 (published only)", len(got))
	}
}

func TestProofByHash(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	var hashes []merkle.Hash
	for i := 0; i < 20; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("cert-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	sth, err := l.PublishSTH()
	if err != nil {
		t.Fatal(err)
	}
	entries, err := l.GetEntries(0, 19)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		h, err := e.LeafHash()
		if err != nil {
			t.Fatal(err)
		}
		hashes = append(hashes, h)
	}
	for i, h := range hashes {
		idx, proof, err := l.GetProofByHash(h, sth.TreeHead.TreeSize)
		if err != nil {
			t.Fatalf("proof %d: %v", i, err)
		}
		if idx != uint64(i) {
			t.Fatalf("index = %d, want %d", idx, i)
		}
		if err := merkle.VerifyInclusion(h, idx, sth.TreeHead.TreeSize, proof, merkle.Hash(sth.TreeHead.RootHash)); err != nil {
			t.Fatalf("inclusion %d: %v", i, err)
		}
	}
	if _, _, err := l.GetProofByHash(merkle.Hash{0xff}, sth.TreeHead.TreeSize); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown hash err = %v", err)
	}
}

func TestConsistencyAcrossPublishes(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	var sths []SignedTreeHead
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			if _, err := l.AddChain([]byte(fmt.Sprintf("r%d-%d", round, i))); err != nil {
				t.Fatal(err)
			}
		}
		sth, err := l.PublishSTH()
		if err != nil {
			t.Fatal(err)
		}
		sths = append(sths, sth)
	}
	for i := 0; i < len(sths); i++ {
		for j := i; j < len(sths); j++ {
			m, n := sths[i].TreeHead.TreeSize, sths[j].TreeHead.TreeSize
			proof, err := l.GetConsistencyProof(m, n)
			if err != nil {
				t.Fatalf("proof %d->%d: %v", m, n, err)
			}
			if err := merkle.VerifyConsistency(m, n,
				merkle.Hash(sths[i].TreeHead.RootHash), merkle.Hash(sths[j].TreeHead.RootHash), proof); err != nil {
				t.Fatalf("consistency %d->%d: %v", m, n, err)
			}
		}
	}
}

func TestCapacityOverload(t *testing.T) {
	l, clk := newTestLog(t, Config{CapacityPerSecond: 2})
	// Burst capacity = 2 tokens.
	if _, err := l.AddChain([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AddChain([]byte("b")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.AddChain([]byte("c")); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	if l.Rejected() != 1 {
		t.Fatalf("rejected = %d", l.Rejected())
	}
	// Refill after a second of virtual time.
	clk.Advance(time.Second)
	if _, err := l.AddChain([]byte("c")); err != nil {
		t.Fatalf("after refill: %v", err)
	}
	// Duplicates bypass the bucket (they do not grow the log).
	clk.Advance(time.Second)
	for i := 0; i < 5; i++ {
		if _, err := l.AddChain([]byte("a")); err != nil {
			t.Fatalf("duplicate %d: %v", i, err)
		}
	}
}

func TestLeafRoundTrip(t *testing.T) {
	e := &Entry{
		Timestamp: 1523664000000,
		Type:      sct.PrecertLogEntryType,
		Cert:      []byte("tbs"),
	}
	e.IssuerKeyHash[3] = 0x42
	leaf, err := e.MerkleTreeLeaf()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseMerkleTreeLeaf(leaf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Timestamp != e.Timestamp || got.Type != e.Type || !bytes.Equal(got.Cert, e.Cert) || got.IssuerKeyHash != e.IssuerKeyHash {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestLeafRoundTripX509(t *testing.T) {
	e := &Entry{Timestamp: 99, Type: sct.X509LogEntryType, Cert: []byte("certbytes")}
	leaf, err := e.MerkleTreeLeaf()
	if err != nil {
		t.Fatal(err)
	}
	got, err := ParseMerkleTreeLeaf(leaf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != sct.X509LogEntryType || !bytes.Equal(got.Cert, e.Cert) {
		t.Fatalf("mismatch: %+v", got)
	}
}

func TestParseLeafRejectsGarbage(t *testing.T) {
	if _, err := ParseMerkleTreeLeaf([]byte{1, 2, 3}); err == nil {
		t.Fatal("garbage accepted")
	}
	e := &Entry{Timestamp: 1, Type: sct.X509LogEntryType, Cert: []byte("c")}
	leaf, _ := e.MerkleTreeLeaf()
	if _, err := ParseMerkleTreeLeaf(append(leaf, 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
	leaf[0] = 9 // bad version
	if _, err := ParseMerkleTreeLeaf(leaf); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestMetadataAccessors(t *testing.T) {
	incl := time.Date(2014, 6, 1, 0, 0, 0, 0, time.UTC)
	l, _ := newTestLog(t, Config{Name: "Google Pilot log", Operator: "Google", ChromeInclusionDate: incl})
	if l.Name() != "Google Pilot log" || l.Operator() != "Google" {
		t.Fatal("metadata accessors")
	}
	if !l.ChromeInclusionDate().Equal(incl) {
		t.Fatal("inclusion date")
	}
	if l.LogID() == (sct.LogID{}) {
		t.Fatal("zero log ID")
	}
}

func TestConcurrentSubmissions(t *testing.T) {
	l, _ := newTestLog(t, Config{})
	const n = 50
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			_, err := l.AddChain([]byte(fmt.Sprintf("concurrent-%d", i)))
			done <- err
		}(i)
	}
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	if l.PendingCount() != n {
		t.Fatalf("pending = %d, want %d", l.PendingCount(), n)
	}
	if got, _ := l.Sequence(); got != n {
		t.Fatalf("sequenced %d, want %d", got, n)
	}
	if l.TreeSize() != n {
		t.Fatalf("tree size = %d, want %d", l.TreeSize(), n)
	}
}
