package ctlog

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"ctrise/internal/sct"
)

func newHTTPTestLog(t *testing.T, cfg Config) (*Log, *httptest.Server) {
	t.Helper()
	cfg.Name = "http test log"
	cfg.Signer = sct.NewFastSigner(cfg.Name)
	l, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(l.Handler())
	t.Cleanup(srv.Close)
	return l, srv
}

func get(t *testing.T, srv *httptest.Server, path string) *http.Response {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func post(t *testing.T, srv *httptest.Server, path, body string) *http.Response {
	t.Helper()
	resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

func TestHTTPAddChainErrorPaths(t *testing.T) {
	_, srv := newHTTPTestLog(t, Config{})
	cases := []struct {
		name, path, body string
	}{
		{"not json", "/ct/v1/add-chain", "{"},
		{"empty chain", "/ct/v1/add-chain", `{"chain":[]}`},
		{"bad base64", "/ct/v1/add-chain", `{"chain":["!!!not-base64!!!"]}`},
		{"prechain missing key hash", "/ct/v1/add-pre-chain", `{"chain":["dGJz"]}`},
		{"prechain bad tbs base64", "/ct/v1/add-pre-chain", `{"chain":["!!!","AAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAAA="]}`},
		{"prechain short key hash", "/ct/v1/add-pre-chain", `{"chain":["dGJz","c2hvcnQ="]}`},
	}
	for _, tc := range cases {
		if resp := post(t, srv, tc.path, tc.body); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", tc.name, resp.StatusCode)
		}
	}
}

func TestHTTPGetEntriesErrorPaths(t *testing.T) {
	l, srv := newHTTPTestLog(t, Config{})
	if _, err := l.AddChain([]byte("one entry")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	for name, query := range map[string]string{
		"missing params":  "",
		"non-numeric":     "?start=x&end=y",
		"negative":        "?start=-1&end=2",
		"inverted range":  "?start=3&end=1",
		"start past size": "?start=10&end=20",
	} {
		resp := get(t, srv, "/ct/v1/get-entries"+query)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", name, resp.StatusCode)
		}
	}
}

func TestHTTPProofAndConsistencyErrorPaths(t *testing.T) {
	l, srv := newHTTPTestLog(t, Config{})
	for i := 0; i < 4; i++ {
		if _, err := l.AddChain([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	// Two more entries sequenced but NOT published: the proof surface
	// serves the published snapshot (head 4), so sizes 5 and 6 must be
	// rejected exactly like any other out-of-range size even though the
	// live tree covers them.
	for i := 4; i < 6; i++ {
		if _, err := l.AddChain([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.Sequence(); err != nil {
		t.Fatal(err)
	}
	ents, err := l.GetEntries(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	leafB64 := func(i int) string {
		h, err := ents[i].LeafHash()
		if err != nil {
			t.Fatal(err)
		}
		return url.QueryEscape(base64.StdEncoding.EncodeToString(h[:]))
	}
	checks := []struct {
		name, path string
		want       int
	}{
		{"proof bad tree_size", "/ct/v1/get-proof-by-hash?hash=AAAA&tree_size=x", http.StatusBadRequest},
		{"proof bad base64 hash", "/ct/v1/get-proof-by-hash?hash=!!!&tree_size=4", http.StatusBadRequest},
		{"proof short hash", "/ct/v1/get-proof-by-hash?hash=c2hvcnQ=&tree_size=4", http.StatusBadRequest},
		{"proof unknown hash", "/ct/v1/get-proof-by-hash?hash=" +
			url.QueryEscape("q82RDxLKvBkbpdEvZ6pQ0FJ145U9PvyHcQRhnAuGYzo=") + "&tree_size=4", http.StatusNotFound},
		{"proof at published head", "/ct/v1/get-proof-by-hash?hash=" + leafB64(0) + "&tree_size=4", http.StatusOK},
		{"proof above published head", "/ct/v1/get-proof-by-hash?hash=" + leafB64(0) + "&tree_size=5", http.StatusBadRequest},
		{"proof at live tree size", "/ct/v1/get-proof-by-hash?hash=" + leafB64(0) + "&tree_size=6", http.StatusBadRequest},
		{"proof tree_size zero", "/ct/v1/get-proof-by-hash?hash=" + leafB64(0) + "&tree_size=0", http.StatusBadRequest},
		{"proof index past tree_size", "/ct/v1/get-proof-by-hash?hash=" + leafB64(3) + "&tree_size=3", http.StatusBadRequest},
		{"consistency bad params", "/ct/v1/get-sth-consistency?first=a&second=b", http.StatusBadRequest},
		{"consistency inverted", "/ct/v1/get-sth-consistency?first=4&second=2", http.StatusBadRequest},
		{"consistency first zero", "/ct/v1/get-sth-consistency?first=0&second=4", http.StatusBadRequest},
		{"consistency at published head", "/ct/v1/get-sth-consistency?first=2&second=4", http.StatusOK},
		{"consistency above published head", "/ct/v1/get-sth-consistency?first=2&second=5", http.StatusBadRequest},
		{"unknown endpoint", "/ct/v1/get-roots", http.StatusNotFound},
		{"wrong method", "/ct/v1/add-chain", http.StatusMethodNotAllowed},
	}
	for _, c := range checks {
		resp := get(t, srv, c.path)
		if resp.StatusCode != c.want {
			t.Errorf("%s: status = %d, want %d", c.name, resp.StatusCode, c.want)
		}
	}
}

// Oversized [start, end] ranges are clamped to the server's page limit:
// the response is a partial page starting at start, like real logs, and
// the client is expected to retry the remainder.
func TestHTTPGetEntriesClampsToPageLimit(t *testing.T) {
	l, srv := newHTTPTestLog(t, Config{MaxGetEntries: 4})
	const total = 11
	for i := 0; i < total; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("page-cert-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	var sizes []int
	start := 0
	for start < total {
		resp, err := http.Get(srv.URL + fmt.Sprintf("/ct/v1/get-entries?start=%d&end=%d", start, total+50))
		if err != nil {
			t.Fatal(err)
		}
		var body GetEntriesResponse
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(body.Entries) == 0 {
			t.Fatalf("empty page at %d", start)
		}
		sizes = append(sizes, len(body.Entries))
		start += len(body.Entries)
	}
	// 11 entries at page limit 4: pages of 4, 4, 3.
	if len(sizes) != 3 || sizes[0] != 4 || sizes[1] != 4 || sizes[2] != 3 {
		t.Fatalf("page sizes = %v, want [4 4 3]", sizes)
	}
}

// The Retry-After hint on backpressure responses must be derived from
// the configured sequencer interval — "one sequencing cycle from now" is
// when refused capacity is most likely to exist again — not hardcoded.
func TestHTTPRetryAfterDerivedFromSequencerInterval(t *testing.T) {
	for _, tc := range []struct {
		interval time.Duration
		want     string
	}{
		{0, "1"},                      // no sequencer configured: floor
		{300 * time.Millisecond, "1"}, // sub-second rounds up to the floor
		{1500 * time.Millisecond, "2"},
		{3 * time.Second, "3"},
	} {
		l, srv := newHTTPTestLog(t, Config{CapacityPerSecond: 1})
		if tc.interval > 0 {
			// A canceled context makes RunSequencer store the hint, drain,
			// and exit immediately — the configured interval sticks.
			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if err := l.RunSequencer(ctx, tc.interval); !errors.Is(err, context.Canceled) {
				t.Fatal(err)
			}
		}
		// Exhaust the capacity bucket: the second submission gets 429.
		if resp := post(t, srv, "/ct/v1/add-chain", `{"chain":["Zmlyc3Q="]}`); resp.StatusCode != http.StatusOK {
			t.Fatalf("interval %v: first add status = %d", tc.interval, resp.StatusCode)
		}
		resp := post(t, srv, "/ct/v1/add-chain", `{"chain":["c2Vjb25k"]}`)
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("interval %v: second add status = %d, want 429", tc.interval, resp.StatusCode)
		}
		if got := resp.Header.Get("Retry-After"); got != tc.want {
			t.Errorf("interval %v: Retry-After = %q, want %q", tc.interval, got, tc.want)
		}
	}
}

// 503s carry the same derived hint: a persistence failure heals (if at
// all) on operator timescales, but the polite client backoff is still
// "come back next sequencing cycle" — failover to another log happens
// above this layer.
func TestHTTPRetryAfterOnPersistenceFailure(t *testing.T) {
	l, _ := newDurableLog(t, t.TempDir(), Config{})
	srv := httptest.NewServer(l.Handler())
	t.Cleanup(srv.Close)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := l.RunSequencer(ctx, 2*time.Second); !errors.Is(err, context.Canceled) {
		t.Fatal(err)
	}
	l.store.Close() // sticky failure: all further submissions get 503
	resp := post(t, srv, "/ct/v1/add-chain", `{"chain":["ZG9vbWVk"]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want %q", got, "2")
	}
}
