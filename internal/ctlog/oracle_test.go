package ctlog

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"ctrise/internal/merkle"
	"ctrise/internal/sct"
)

// This file pins the lock-free proof serving path (proofs.go) against a
// deliberately independent reference implementation: a textbook O(n)
// recursion straight out of RFC 6962 sections 2.1.1/2.1.2, recomputed
// from the raw leaf bytes the log serves, with its own hashing — no
// shared code with internal/merkle beyond the Hash type at the compare
// boundary. If the production path (frozen PrefixView over level caches,
// NodeSource tile reads, sync.Map hash index) drifts from the RFC in any
// state — mid-integration, mid-seal, after reopen — the differential
// suite catches the byte difference.

// oLeafHash is SHA-256(0x00 || leaf), the RFC 6962 leaf hash.
func oLeafHash(leaf []byte) merkle.Hash {
	h := sha256.New()
	h.Write([]byte{0x00})
	h.Write(leaf)
	var out merkle.Hash
	h.Sum(out[:0])
	return out
}

// oNodeHash is SHA-256(0x01 || left || right), the RFC 6962 node hash.
func oNodeHash(l, r merkle.Hash) merkle.Hash {
	h := sha256.New()
	h.Write([]byte{0x01})
	h.Write(l[:])
	h.Write(r[:])
	var out merkle.Hash
	h.Sum(out[:0])
	return out
}

// oSplit is k: the largest power of two strictly less than n (n ≥ 2).
func oSplit(n uint64) uint64 {
	k := uint64(1)
	for k*2 < n {
		k *= 2
	}
	return k
}

// oMTH computes MTH(D) by direct recursion.
func oMTH(leaves [][]byte) merkle.Hash {
	switch n := uint64(len(leaves)); n {
	case 0:
		return merkle.Hash(sha256.Sum256(nil))
	case 1:
		return oLeafHash(leaves[0])
	default:
		k := oSplit(n)
		return oNodeHash(oMTH(leaves[:k]), oMTH(leaves[k:]))
	}
}

// oPath computes PATH(m, D) — the inclusion audit path for leaf m.
func oPath(m uint64, leaves [][]byte) []merkle.Hash {
	n := uint64(len(leaves))
	if n == 1 {
		return nil
	}
	k := oSplit(n)
	if m < k {
		return append(oPath(m, leaves[:k]), oMTH(leaves[k:]))
	}
	return append(oPath(m-k, leaves[k:]), oMTH(leaves[:k]))
}

// oSubproof computes SUBPROOF(m, D, b) — the consistency proof core.
func oSubproof(m uint64, leaves [][]byte, b bool) []merkle.Hash {
	n := uint64(len(leaves))
	if m == n {
		if b {
			return nil
		}
		return []merkle.Hash{oMTH(leaves)}
	}
	k := oSplit(n)
	if m <= k {
		return append(oSubproof(m, leaves[:k], b), oMTH(leaves[k:]))
	}
	return append(oSubproof(m-k, leaves[k:], false), oMTH(leaves[:k]))
}

// proofOracle holds the raw leaf bytes of a log's published prefix and
// answers root/proof queries by direct RFC recursion.
type proofOracle struct {
	leaves     [][]byte
	leafHashes []merkle.Hash
}

func (o *proofOracle) size() uint64 { return uint64(len(o.leaves)) }

func (o *proofOracle) root(n uint64) merkle.Hash { return oMTH(o.leaves[:n]) }

func (o *proofOracle) inclusion(i, n uint64) []merkle.Hash { return oPath(i, o.leaves[:n]) }

func (o *proofOracle) consistency(m, n uint64) []merkle.Hash {
	if m == n {
		return nil
	}
	return oSubproof(m, o.leaves[:n], true)
}

// indexOf resolves a leaf hash by linear scan — the slow, obviously
// correct counterpart of the leafIndex map + tile bloom path.
func (o *proofOracle) indexOf(h merkle.Hash) (uint64, bool) {
	for i, lh := range o.leafHashes {
		if lh == h {
			return uint64(i), true
		}
	}
	return 0, false
}

// oracleFromLog rebuilds the oracle from what the log actually serves:
// the raw MerkleTreeLeaf bytes of the published prefix, streamed over
// the lock-free read path. size 0 (nothing published beyond the empty
// STH) yields an empty oracle.
func oracleFromLog(t testing.TB, l *Log, size uint64) *proofOracle {
	t.Helper()
	o := &proofOracle{}
	if size == 0 {
		return o
	}
	err := l.StreamEntries(0, size-1, func(e *Entry) error {
		leaf, err := e.MerkleTreeLeaf()
		if err != nil {
			return err
		}
		o.leaves = append(o.leaves, leaf)
		o.leafHashes = append(o.leafHashes, oLeafHash(leaf))
		return nil
	})
	if err != nil {
		t.Fatalf("streaming entries for the oracle: %v", err)
	}
	if got := uint64(len(o.leaves)); got != size {
		t.Fatalf("oracle streamed %d leaves, want %d", got, size)
	}
	return o
}

func sameHashes(a, b []merkle.Hash) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// checkProofsAgainstOracle compares every proof endpoint with the oracle
// at the log's published size, split across par goroutines issuing
// requests concurrently (all against the same snapshot — the lock-free
// path must tolerate any read parallelism). rng only picks the sample;
// every pick is compared exhaustively.
func checkProofsAgainstOracle(t testing.TB, l *Log, o *proofOracle, par int, rng *rand.Rand) {
	t.Helper()
	size := l.STH().TreeHead.TreeSize
	if size != o.size() {
		t.Fatalf("published size %d, oracle holds %d", size, o.size())
	}
	if root := merkle.Hash(l.STH().TreeHead.RootHash); root != o.root(size) {
		t.Fatalf("published root differs from oracle MTH at size %d", size)
	}
	if size == 0 {
		return
	}

	type query struct {
		kind int
		a, b uint64
	} // kind 0=incl 1=cons 2=byhash
	var queries []query
	sampleSize := func() uint64 { return 1 + uint64(rng.Int63n(int64(size))) }
	for i := 0; i < 12; i++ {
		n := sampleSize()
		queries = append(queries, query{0, uint64(rng.Int63n(int64(n))), n})
	}
	// Always cover the full tree and its edges.
	queries = append(queries, query{0, 0, size}, query{0, size - 1, size})
	for i := 0; i < 12; i++ {
		n := sampleSize()
		queries = append(queries, query{1, 1 + uint64(rng.Int63n(int64(n))), n})
	}
	queries = append(queries, query{1, size, size}, query{1, 1, size})
	for i := 0; i < 10; i++ {
		queries = append(queries, query{2, uint64(rng.Int63n(int64(size))), size})
	}

	runOne := func(q query) error {
		switch q.kind {
		case 0:
			got, err := l.GetInclusionProof(q.a, q.b)
			if err != nil {
				return fmt.Errorf("GetInclusionProof(%d, %d): %v", q.a, q.b, err)
			}
			if want := o.inclusion(q.a, q.b); !sameHashes(got, want) {
				return fmt.Errorf("GetInclusionProof(%d, %d) differs from oracle", q.a, q.b)
			}
			if err := merkle.VerifyInclusion(o.leafHashes[q.a], q.a, q.b, got, o.root(q.b)); err != nil {
				return fmt.Errorf("inclusion(%d, %d) fails against oracle root: %v", q.a, q.b, err)
			}
		case 1:
			got, err := l.GetConsistencyProof(q.a, q.b)
			if err != nil {
				return fmt.Errorf("GetConsistencyProof(%d, %d): %v", q.a, q.b, err)
			}
			if want := o.consistency(q.a, q.b); !sameHashes(got, want) {
				return fmt.Errorf("GetConsistencyProof(%d, %d) differs from oracle", q.a, q.b)
			}
			if err := merkle.VerifyConsistency(q.a, q.b, o.root(q.a), o.root(q.b), got); err != nil {
				return fmt.Errorf("consistency(%d, %d) fails against oracle roots: %v", q.a, q.b, err)
			}
		case 2:
			h := o.leafHashes[q.a]
			idx, got, err := l.GetProofByHash(h, q.b)
			if err != nil {
				return fmt.Errorf("GetProofByHash(leaf %d, %d): %v", q.a, q.b, err)
			}
			wantIdx, ok := o.indexOf(h)
			if !ok || idx != wantIdx {
				return fmt.Errorf("GetProofByHash(leaf %d) resolved index %d, oracle says %d (known=%v)", q.a, idx, wantIdx, ok)
			}
			if want := o.inclusion(idx, q.b); !sameHashes(got, want) {
				return fmt.Errorf("GetProofByHash(leaf %d) path differs from oracle", q.a)
			}
		}
		return nil
	}

	// Error-class identity: the lock-free path must fail exactly like the
	// RFC surface expects, not just succeed identically.
	errChecks := func() error {
		if _, err := l.GetInclusionProof(0, size+1); !errors.Is(err, merkle.ErrSizeOutOfRange) {
			return fmt.Errorf("inclusion above published head: err=%v, want ErrSizeOutOfRange", err)
		}
		if _, err := l.GetConsistencyProof(1, size+1); !errors.Is(err, merkle.ErrSizeOutOfRange) {
			return fmt.Errorf("consistency above published head: err=%v, want ErrSizeOutOfRange", err)
		}
		var unknown merkle.Hash
		unknown[0] = 0xEE
		if _, ok := o.indexOf(unknown); !ok {
			if _, _, err := l.GetProofByHash(unknown, size); !errors.Is(err, ErrNotFound) {
				return fmt.Errorf("proof-by-hash for unknown leaf: err=%v, want ErrNotFound", err)
			}
		}
		return nil
	}

	errs := make(chan error, par)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(queries); i += par {
				if err := runOne(queries[i]); err != nil {
					errs <- err
					return
				}
			}
			if err := errChecks(); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// differentialSchedule drives one log through a randomized
// stage/sequence/publish history, checking the lock-free proof surface
// against a freshly rebuilt oracle after every publish. reopen, when
// non-nil, closes and reopens the log at random points (durable modes).
func differentialSchedule(t *testing.T, l *Log, clk *virtualClock, par int, seed int64,
	rounds, maxAdd int, reopen func(*Log) *Log) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	serial := 0
	for round := 0; round < rounds; round++ {
		for i, n := 0, 1+rng.Intn(maxAdd); i < n; i++ {
			if _, err := l.AddChain([]byte(fmt.Sprintf("diff-%d-%d", seed, serial))); err != nil {
				t.Fatal(err)
			}
			serial++
			if rng.Intn(4) == 0 {
				clk.Advance(time.Duration(rng.Intn(5)) * time.Second)
			}
		}
		// Sometimes sequence without publishing: the proof surface must
		// keep serving the old head while the live tree runs ahead.
		if rng.Intn(3) == 0 {
			if _, err := l.Sequence(); err != nil {
				t.Fatal(err)
			}
			o := oracleFromLog(t, l, l.STH().TreeHead.TreeSize)
			checkProofsAgainstOracle(t, l, o, par, rng)
		}
		if _, err := l.PublishSTH(); err != nil {
			t.Fatal(err)
		}
		o := oracleFromLog(t, l, l.STH().TreeHead.TreeSize)
		checkProofsAgainstOracle(t, l, o, par, rng)
		if reopen != nil && rng.Intn(3) == 0 {
			l = reopen(l)
			o := oracleFromLog(t, l, l.STH().TreeHead.TreeSize)
			checkProofsAgainstOracle(t, l, o, par, rng)
		}
	}
}

// TestProofOracleDifferential is the headline differential suite:
// in-memory, durable untiled (span larger than the log), and durable
// tiled (small span, so proofs cross the RAM/tile boundary) logs driven
// through randomized schedules at read parallelism 1, 4, and 13, with
// durable variants closed and reopened mid-history.
func TestProofOracleDifferential(t *testing.T) {
	for _, par := range []int{1, 4, 13} {
		par := par
		t.Run(fmt.Sprintf("inmemory/par=%d", par), func(t *testing.T) {
			t.Parallel()
			l, clk := newTestLog(t, Config{SequenceChunk: 16})
			differentialSchedule(t, l, clk, par, 1000+int64(par), 8, 40, nil)
		})
		t.Run(fmt.Sprintf("durable/par=%d", par), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			cfg := Config{SequenceChunk: 16, TileSpan: 4096, Sync: SyncAtSequence}
			l, clk := newDurableLog(t, dir, cfg)
			reopen := func(old *Log) *Log {
				if err := old.Close(); err != nil {
					t.Fatal(err)
				}
				nl, err := Open(dir, Config{
					Name: old.cfg.Name, Operator: old.cfg.Operator,
					Signer: old.cfg.Signer, Clock: old.cfg.Clock,
					SequenceChunk: 16, TileSpan: 4096, Sync: SyncAtSequence,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { nl.Close() })
				return nl
			}
			differentialSchedule(t, l, clk, par, 2000+int64(par), 8, 40, reopen)
		})
		t.Run(fmt.Sprintf("tiled/par=%d", par), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			cfg := Config{SequenceChunk: 16, TileSpan: 8, Sync: SyncAtSequence}
			l, clk := newDurableLog(t, dir, cfg)
			reopen := func(old *Log) *Log {
				if err := old.Close(); err != nil {
					t.Fatal(err)
				}
				nl, err := Open(dir, Config{
					Name: old.cfg.Name, Operator: old.cfg.Operator,
					Signer: old.cfg.Signer, Clock: old.cfg.Clock,
					SequenceChunk: 16, TileSpan: 8, Sync: SyncAtSequence,
				})
				if err != nil {
					t.Fatal(err)
				}
				t.Cleanup(func() { nl.Close() })
				return nl
			}
			differentialSchedule(t, l, clk, par, 3000+int64(par), 10, 40, reopen)
		})
	}
}

// TestProofOracleMidIntegration parks proof readers inside a chunked
// Sequence (via seqChunkHook) and checks the full differential surface
// against the oracle captured at the last publish: a half-integrated
// batch must be invisible to every proof endpoint.
func TestProofOracleMidIntegration(t *testing.T) {
	l, clk := newTestLog(t, Config{SequenceChunk: 8})
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 30; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("pre-%d", i))); err != nil {
			t.Fatal(err)
		}
		clk.Advance(time.Second)
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	o := oracleFromLog(t, l, l.STH().TreeHead.TreeSize)

	for i := 0; i < 50; i++ {
		if _, err := l.AddChain([]byte(fmt.Sprintf("mid-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	hooks := 0
	l.seqChunkHook = func(done, total int) {
		hooks++
		checkProofsAgainstOracle(t, l, o, 4, rng)
	}
	if _, err := l.Sequence(); err != nil {
		t.Fatal(err)
	}
	l.seqChunkHook = nil
	if hooks == 0 {
		t.Fatal("chunk hook never fired: the batch was not integrated chunked")
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}
	o2 := oracleFromLog(t, l, l.STH().TreeHead.TreeSize)
	checkProofsAgainstOracle(t, l, o2, 4, rng)
}

// TestProofOracleMidSeal drives proof readers from inside every seal
// lifecycle stage. The seal hook runs with the log's write lock held, so
// this doubles as a structural proof that the endpoints never touch
// l.mu: on the old RLock serving path every one of these calls would
// self-deadlock.
func TestProofOracleMidSeal(t *testing.T) {
	dir := t.TempDir()
	l, clk := newDurableLog(t, dir, Config{TileSpan: 8, Sync: SyncAtSequence})
	rng := rand.New(rand.NewSource(7))

	var stages []string
	l.sealStageHook = func(stage string) {
		stages = append(stages, stage)
		// Published state during a seal is the head publishLocked just
		// installed; both the oracle rebuild (StreamEntries) and the proof
		// checks run on the lock-free snapshot from under the write lock.
		o := oracleFromLog(t, l, l.STH().TreeHead.TreeSize)
		checkProofsAgainstOracle(t, l, o, 2, rng)
	}
	for round := 0; round < 4; round++ {
		for i := 0; i < 20; i++ {
			if _, err := l.AddChain([]byte(fmt.Sprintf("seal-%d-%d", round, i))); err != nil {
				t.Fatal(err)
			}
			clk.Advance(time.Second)
		}
		if _, err := l.PublishSTH(); err != nil {
			t.Fatal(err)
		}
	}
	l.sealStageHook = nil
	if len(stages) == 0 {
		t.Fatal("seal hook never fired: no tile was ever sealed")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// FuzzProofEquivalence fuzzes tree shape and query parameters through
// an in-memory and a durable tiled log built from the same submissions,
// comparing both against the oracle — including the error class when a
// query is out of range.
func FuzzProofEquivalence(f *testing.F) {
	f.Add(uint8(1), uint8(0), uint8(0), uint8(1), uint8(1), uint8(0), uint8(0))
	f.Add(uint8(7), uint8(3), uint8(2), uint8(5), uint8(2), uint8(1), uint8(3))
	f.Add(uint8(33), uint8(32), uint8(8), uint8(33), uint8(3), uint8(2), uint8(40))
	f.Add(uint8(48), uint8(0), uint8(17), uint8(48), uint8(0), uint8(7), uint8(255))
	f.Add(uint8(21), uint8(20), uint8(21), uint8(22), uint8(4), uint8(3), uint8(21))
	f.Fuzz(func(t *testing.T, nEntries, index, first, second, spanSel, chunkSel, hashSel uint8) {
		n := uint64(nEntries%48) + 1
		span := uint64(2) << (spanSel % 4) // 2, 4, 8, 16
		chunk := int(chunkSel%8) + 1
		clk := newClock()
		mk := func(open func(Config) (*Log, error)) *Log {
			l, err := open(Config{
				Name: "fuzz log", Operator: "FuzzOp",
				Signer: sct.NewFastSigner("fuzz log"), Clock: clk.Now,
				SequenceChunk: chunk, TileSpan: int(span),
				Sync: SyncAtSequence, SnapshotEvery: -1,
			})
			if err != nil {
				t.Fatal(err)
			}
			return l
		}
		mem := mk(New)
		dur := mk(func(cfg Config) (*Log, error) { return Open(t.TempDir(), cfg) })
		defer dur.Close()
		for _, l := range []*Log{mem, dur} {
			for i := uint64(0); i < n; i++ {
				if _, err := l.AddChain([]byte(fmt.Sprintf("fuzz-%d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := l.PublishSTH(); err != nil {
				t.Fatal(err)
			}
		}
		o := oracleFromLog(t, mem, n)
		if durRoot := merkle.Hash(dur.STH().TreeHead.RootHash); durRoot != o.root(n) {
			t.Fatalf("durable root differs from oracle at size %d", n)
		}

		i, m, s := uint64(index), uint64(first), uint64(second)
		for _, l := range []*Log{mem, dur} {
			got, err := l.GetInclusionProof(i, s)
			switch {
			case s > n:
				if !errors.Is(err, merkle.ErrSizeOutOfRange) {
					t.Fatalf("inclusion(%d, %d) over size %d: err=%v, want ErrSizeOutOfRange", i, s, n, err)
				}
			case i >= s:
				if !errors.Is(err, merkle.ErrIndexOutOfRange) {
					t.Fatalf("inclusion(%d, %d): err=%v, want ErrIndexOutOfRange", i, s, err)
				}
			default:
				if err != nil {
					t.Fatalf("inclusion(%d, %d): %v", i, s, err)
				}
				if !sameHashes(got, o.inclusion(i, s)) {
					t.Fatalf("inclusion(%d, %d) differs from oracle", i, s)
				}
			}

			gotC, err := l.GetConsistencyProof(m, s)
			switch {
			case s > n:
				if !errors.Is(err, merkle.ErrSizeOutOfRange) {
					t.Fatalf("consistency(%d, %d) over size %d: err=%v, want ErrSizeOutOfRange", m, s, n, err)
				}
			case m == 0:
				if !errors.Is(err, merkle.ErrEmptyRange) {
					t.Fatalf("consistency(0, %d): err=%v, want ErrEmptyRange", s, err)
				}
			case m > s:
				if !errors.Is(err, merkle.ErrSizeOutOfRange) {
					t.Fatalf("consistency(%d, %d) inverted: err=%v, want ErrSizeOutOfRange", m, s, err)
				}
			default:
				if err != nil {
					t.Fatalf("consistency(%d, %d): %v", m, s, err)
				}
				if !sameHashes(gotC, o.consistency(m, s)) {
					t.Fatalf("consistency(%d, %d) differs from oracle", m, s)
				}
			}

			if h := uint64(hashSel); h < n && s >= 1 && s <= n {
				idx, path, err := l.GetProofByHash(o.leafHashes[h], s)
				if h >= s {
					if !errors.Is(err, ErrBadRange) {
						t.Fatalf("proof-by-hash(leaf %d, %d): err=%v, want ErrBadRange", h, s, err)
					}
				} else {
					if err != nil {
						t.Fatalf("proof-by-hash(leaf %d, %d): %v", h, s, err)
					}
					if idx != h || !sameHashes(path, o.inclusion(h, s)) {
						t.Fatalf("proof-by-hash(leaf %d, %d) differs from oracle", h, s)
					}
				}
			}
		}
	})
}
