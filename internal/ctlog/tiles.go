package ctlog

import (
	"fmt"
	"sync"

	"ctrise/internal/ctlog/storage"
	"ctrise/internal/merkle"
)

// Tiled storage. On durable logs, sequenced entries do not stay resident
// forever: once a span-aligned prefix of the tree is covered by a
// published STH, it is sealed into immutable on-disk tiles (leaf bytes,
// Merkle subtree hashes, and a bloom-fronted lookup index per tile — see
// storage/tile.go for the formats) and evicted from RAM. From then on
// get-entries, get-proof-by-hash, and get-consistency are served from
// the tiles through a byte-budget LRU page cache, the dedupe check for
// sealed entries goes through per-tile blooms + binary-searched index
// files, and — because the snapshot now carries the tile roots instead
// of the sealed entries — the WAL is truncated behind the seal. RAM and
// WAL therefore stay bounded by the mutable edge (tail + staged batch +
// page-cache budget + ~4 bloom bytes per sealed entry), independent of
// tree size.
//
// The seal is three-phase, and the ordering is the crash-safety
// argument:
//
//  1. Write: each tile's three files are written atomically and fsynced,
//     then read back from disk and re-verified against the in-RAM tree
//     (the hash tile's recomputed root must equal the tree's subtree
//     root; the leaf tile must hash to the hash tile's leaf level). A
//     crash here leaves orphan tile files that the next seal rewrites.
//  2. Install: the tree prunes its sub-tile levels (merkle.TiledTree.Seal),
//     the sealed entries leave the tail/dedupe/proof maps, and the tile
//     roots + blooms register in the tileStore.
//  3. Compact: a snapshot carrying the tile roots and the now-short tail
//     is written at the current WAL offset, the WAL is truncated to its
//     header (fsynced), and a second snapshot re-anchors the cursor at
//     the truncated offset. A crash between the truncate and the second
//     snapshot is the existing adopt-snapshot recovery path: the first
//     snapshot's cursor lies beyond the WAL end, so recovery adopts it
//     and re-anchors, exactly as it does for mid-file WAL corruption.

// Page-cache kinds for the three tile file types.
const (
	pageKindHash  uint8 = 1
	pageKindLeaf  uint8 = 2
	pageKindIndex uint8 = 3
)

// tileStore serves sealed tiles: it implements merkle.NodeSource for the
// tree's pruned levels and the sealed-entry read/lookup paths for the
// log, everything flowing through one page cache. The mutable metadata
// (tile roots, resident blooms) is guarded by its own mutex so readers
// never touch the log's; the tile files themselves are immutable once
// sealed.
type tileStore struct {
	st    *storage.Store
	span  uint64
	tlvl  uint // log2(span)
	cache *storage.PageCache

	mu     sync.RWMutex
	roots  []merkle.Hash
	blooms []tileBlooms
}

type tileBlooms struct {
	id   storage.Bloom
	leaf storage.Bloom
}

func newTileStore(st *storage.Store, span uint64, cacheBytes int64) *tileStore {
	tlvl := uint(0)
	for s := span; s > 1; s >>= 1 {
		tlvl++
	}
	return &tileStore{st: st, span: span, tlvl: tlvl, cache: storage.NewPageCache(cacheBytes)}
}

// sealedTiles returns the number of registered sealed tiles.
func (ts *tileStore) sealedTiles() uint64 {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	return uint64(len(ts.roots))
}

// rootAt returns the registered root of one sealed tile.
func (ts *tileStore) rootAt(tile uint64) (merkle.Hash, bool) {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	if tile >= uint64(len(ts.roots)) {
		return merkle.Hash{}, false
	}
	return ts.roots[tile], true
}

// register appends one sealed tile's root and blooms; tiles register in
// order.
func (ts *tileStore) register(tile uint64, root merkle.Hash, id, leaf storage.Bloom) error {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if uint64(len(ts.roots)) != tile {
		return fmt.Errorf("ctlog: registering tile %d after %d tiles", tile, len(ts.roots))
	}
	ts.roots = append(ts.roots, root)
	ts.blooms = append(ts.blooms, tileBlooms{id: id, leaf: leaf})
	return nil
}

// rootsImage copies the registered tile roots for a snapshot.
func (ts *tileStore) rootsImage() [][32]byte {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	out := make([][32]byte, len(ts.roots))
	for i, r := range ts.roots {
		out[i] = [32]byte(r)
	}
	return out
}

// install sets the sealed-tile roots at recovery time and loads each
// tile's blooms from its index file. The blooms must be resident before
// the first submission (they are the sealed half of the dedupe index),
// so a tile whose index cannot be read or validated fails Open loudly.
func (ts *tileStore) install(roots [][32]byte) error {
	ts.mu.Lock()
	ts.roots = make([]merkle.Hash, len(roots))
	for i, r := range roots {
		ts.roots[i] = merkle.Hash(r)
	}
	ts.blooms = make([]tileBlooms, 0, len(roots))
	ts.mu.Unlock()
	for tile := uint64(0); tile < uint64(len(roots)); tile++ {
		ix, err := ts.index(tile)
		if err != nil {
			return fmt.Errorf("loading sealed tile %d index: %w", tile, err)
		}
		ts.mu.Lock()
		ts.blooms = append(ts.blooms, tileBlooms{id: ix.IDBloom, leaf: ix.LeafBloom})
		ts.mu.Unlock()
	}
	return nil
}

// load runs one tile file through the page cache: read, decode,
// validate. IO failures wrap ErrPersistence (the 503 class — the tile
// should exist); decode failures stay storage.ErrCorrupt.
func (ts *tileStore) load(kind uint8, tile uint64, ext string, decode func([]byte) (any, error)) (any, error) {
	return ts.cache.Get(storage.PageKey{Kind: kind, Tile: tile}, func() (any, int64, error) {
		data, err := ts.st.ReadTile(tile, ext)
		if err != nil {
			return nil, 0, fmt.Errorf("%w: %v", ErrPersistence, err)
		}
		v, err := decode(data)
		if err != nil {
			return nil, 0, err
		}
		return v, int64(len(data)), nil
	})
}

// hashTile pages in one tile's Merkle levels. The decoder already proved
// the file internally consistent (every parent recomputed from its
// children); pinning the recomputed root to the root registered at seal
// time extends that proof to "this is the subtree the tree committed
// to", so every node served to a proof is covered.
func (ts *tileStore) hashTile(tile uint64) (*storage.HashTile, error) {
	v, err := ts.load(pageKindHash, tile, storage.TileExtHash, func(data []byte) (any, error) {
		ht, err := storage.DecodeHashTile(data)
		if err != nil {
			return nil, err
		}
		if ht.Tile != tile || ht.Span != ts.span {
			return nil, fmt.Errorf("%w: tile %d.hash labeled (%d, span %d)", storage.ErrCorrupt, tile, ht.Tile, ht.Span)
		}
		if want, ok := ts.rootAt(tile); ok && merkle.Hash(ht.Root()) != want {
			return nil, fmt.Errorf("%w: tile %d root does not match the sealed tree", storage.ErrCorrupt, tile)
		}
		return ht, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*storage.HashTile), nil
}

// entries pages in one sealed tile's parsed entries. Each leaf is
// cross-checked against the hash tile's leaf level, so a corrupt leaf
// file cannot serve bytes the tree never committed to. Returned entries
// are immutable and shared by every reader of the cached page.
func (ts *tileStore) entries(tile uint64) ([]*Entry, error) {
	v, err := ts.load(pageKindLeaf, tile, storage.TileExtLeaf, func(data []byte) (any, error) {
		lt, err := storage.DecodeLeafTile(data)
		if err != nil {
			return nil, err
		}
		if lt.Tile != tile || lt.Span != ts.span {
			return nil, fmt.Errorf("%w: tile %d.leaf labeled (%d, span %d)", storage.ErrCorrupt, tile, lt.Tile, lt.Span)
		}
		ht, err := ts.hashTile(tile)
		if err != nil {
			return nil, err
		}
		ents := make([]*Entry, len(lt.Leaves))
		for i, leaf := range lt.Leaves {
			e, err := ParseMerkleTreeLeaf(leaf)
			if err != nil {
				return nil, fmt.Errorf("%w: tile %d entry %d: %v", storage.ErrCorrupt, tile, i, err)
			}
			e.Index = tile*ts.span + uint64(i)
			e.leafHash = merkle.HashLeaf(leaf)
			if [32]byte(e.leafHash) != ht.Levels[0][i] {
				return nil, fmt.Errorf("%w: tile %d entry %d does not hash to the sealed leaf hash", storage.ErrCorrupt, tile, i)
			}
			ents[i] = e
		}
		return ents, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]*Entry), nil
}

// index pages in one tile's lookup index.
func (ts *tileStore) index(tile uint64) (*storage.TileIndex, error) {
	v, err := ts.load(pageKindIndex, tile, storage.TileExtIndex, func(data []byte) (any, error) {
		ix, err := storage.DecodeTileIndex(data)
		if err != nil {
			return nil, err
		}
		if ix.Tile != tile || ix.Span != ts.span {
			return nil, fmt.Errorf("%w: tile %d.idx labeled (%d, span %d)", storage.ErrCorrupt, tile, ix.Tile, ix.Span)
		}
		return ix, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*storage.TileIndex), nil
}

// Node implements merkle.NodeSource: the hash of the perfect subtree at
// (level, index) for levels the tree has pruned, served from the hash
// tile that contains it. level < log2(span) always (the spine above
// stays in RAM), so the node maps into exactly one tile.
func (ts *tileStore) Node(level int, index uint64) (merkle.Hash, error) {
	shift := ts.tlvl - uint(level)
	tile := index >> shift
	ht, err := ts.hashTile(tile)
	if err != nil {
		return merkle.Hash{}, err
	}
	return merkle.Hash(ht.Levels[level][index-tile<<shift]), nil
}

// probe returns the sealed tiles in [from, to) whose bloom reports a
// possible hit for h. which selects the id or leaf bloom.
func (ts *tileStore) probe(h merkle.Hash, which int, from, to uint64) []uint64 {
	ts.mu.RLock()
	defer ts.mu.RUnlock()
	if to > uint64(len(ts.blooms)) {
		to = uint64(len(ts.blooms))
	}
	var hits []uint64
	for tile := from; tile < to; tile++ {
		b := ts.blooms[tile].id
		if which == storage.TileIndexLeaf {
			b = ts.blooms[tile].leaf
		}
		if b.Test([32]byte(h)) {
			hits = append(hits, tile)
		}
	}
	return hits
}

// lookupID searches sealed tiles [from, to) for an entry with the given
// identity hash: bloom probe first, then the binary-searched index file
// of each candidate, then the entry itself from its leaf tile. Returns
// nil when not present.
func (ts *tileStore) lookupID(h merkle.Hash, from, to uint64) (*Entry, error) {
	for _, tile := range ts.probe(h, storage.TileIndexID, from, to) {
		ix, err := ts.index(tile)
		if err != nil {
			return nil, err
		}
		idx, ok := storage.SearchIndexRows(ix.ID, [32]byte(h))
		if !ok {
			continue // bloom false positive
		}
		ents, err := ts.entries(idx / ts.span)
		if err != nil {
			return nil, err
		}
		return ents[idx%ts.span], nil
	}
	return nil, nil
}

// lookupLeafIndex searches every sealed tile for a Merkle leaf hash and
// returns its entry index.
func (ts *tileStore) lookupLeafIndex(h merkle.Hash) (uint64, bool, error) {
	for _, tile := range ts.probe(h, storage.TileIndexLeaf, 0, ^uint64(0)) {
		ix, err := ts.index(tile)
		if err != nil {
			return 0, false, err
		}
		if idx, ok := storage.SearchIndexRows(ix.Leaf, [32]byte(h)); ok {
			return idx, true, nil
		}
	}
	return 0, false, nil
}

// maybeSealLocked seals every complete tile covered by the just-published
// STH and compacts the WAL behind it. Called from publishLocked (with
// l.mu held) after the published state is installed; sealing never
// changes tree bytes, only where they live, so trajectories stay
// byte-identical to an in-memory run. Errors surface as the publish
// error and leave RAM consistent: either nothing was installed (tile
// write/verify failed — orphan files on disk, rewritten by the next
// seal) or the seal is fully installed in RAM and only the compaction
// snapshot failed (the sticky store failure stops further writes; a
// restart recovers the pre-seal state from the intact WAL).
func (l *Log) maybeSealLocked() error {
	if l.tiles == nil {
		return nil
	}
	span := l.tiles.span
	target := l.published.TreeHead.TreeSize / span * span
	if target <= l.tailStart {
		return nil
	}
	first := l.tailStart / span
	for tile := first; tile*span < target; tile++ {
		if err := l.sealTileLocked(tile); err != nil {
			return err
		}
	}
	l.sealStage("tiles-written")
	// Install: prune the tree below the tile level, drop the sealed
	// entries from the tail and the RAM-resident lookup maps. Readers
	// holding the published view keep the old tail slice alive until the
	// next publish; new lookups go through the tiles.
	if err := l.tree.Seal(target); err != nil {
		return fmt.Errorf("%w: %v", storage.ErrCorrupt, err)
	}
	n := target - l.tailStart
	for _, e := range l.entries[:n] {
		delete(l.dedupe, e.idHash)
		// The leafIndex delete runs only after the entry's tile registered
		// in sealTileLocked above, so a lock-free proof reader that misses
		// the map is guaranteed to find the hash through the tile blooms.
		l.byLeafHash.delete(e.leafHash)
	}
	l.entries = append([]*Entry(nil), l.entries[n:]...)
	l.tailStart = target
	// Re-store the published view over the new tail so reads route
	// through the tiles immediately (and the old full-tail backing array
	// becomes collectable once current readers drain). Same head — only
	// where its entries live changed; the fresh proof view delegates the
	// newly sealed range to the tiles instead of the pruned RAM levels.
	if err := l.storePublishedLocked(); err != nil {
		return err
	}
	// Compact: snapshot (tile roots + short tail) at the current WAL
	// offset, truncate the WAL, re-anchor the snapshot at the truncated
	// offset. See the package comment above for the crash analysis of
	// each window.
	if err := l.writeSnapshotLocked(); err != nil {
		return err
	}
	l.sealStage("snapshot-pre-truncate")
	if err := l.store.ResetWAL(); err != nil {
		return fmt.Errorf("%w: %v", ErrPersistence, err)
	}
	l.sealStage("wal-truncated")
	if err := l.writeSnapshotLocked(); err != nil {
		return err
	}
	l.sealStage("snapshot-anchored")
	return nil
}

// sealTileLocked writes, fsyncs, re-verifies, and registers one tile.
func (l *Log) sealTileLocked(tile uint64) error {
	span := l.tiles.span
	base := tile*span - l.tailStart
	ents := l.entries[base : base+span]
	leaves := make([][]byte, span)
	leafHashes := make([][32]byte, span)
	idHashes := make([][32]byte, span)
	for i, e := range ents {
		leaf, err := e.MerkleTreeLeaf()
		if err != nil {
			return err
		}
		leaves[i] = leaf
		leafHashes[i] = [32]byte(e.leafHash)
		idHashes[i] = [32]byte(e.idHash)
	}
	ht, err := storage.BuildHashTile(tile, leafHashes)
	if err != nil {
		return err
	}
	want, err := l.tree.TileRoot(tile)
	if err != nil {
		return err
	}
	if merkle.Hash(ht.Root()) != want {
		return fmt.Errorf("%w: tile %d built root differs from the live tree", storage.ErrCorrupt, tile)
	}
	lt := &storage.LeafTile{Tile: tile, Span: span, Leaves: leaves}
	ix := storage.BuildTileIndex(tile, tile*span, idHashes, leafHashes)
	if err := l.store.WriteTile(tile, storage.EncodeLeafTile(lt), storage.EncodeHashTile(ht), storage.EncodeTileIndex(ix)); err != nil {
		return fmt.Errorf("%w: %v", ErrPersistence, err)
	}
	// Read back through the page cache — a real disk read, since sealed
	// tiles are only ever paged in below the seal boundary — and verify
	// what is actually durable before the tree prunes anything. The leaf
	// page-in cross-checks every leaf against the hash tile; the root
	// check here ties the hash tile to the tree.
	diskHT, err := l.tiles.hashTile(tile)
	if err != nil {
		return err
	}
	if merkle.Hash(diskHT.Root()) != want {
		return fmt.Errorf("%w: tile %d read-back root differs from the live tree", storage.ErrCorrupt, tile)
	}
	if _, err := l.tiles.entries(tile); err != nil {
		return err
	}
	diskIx, err := l.tiles.index(tile)
	if err != nil {
		return err
	}
	return l.tiles.register(tile, want, diskIx.IDBloom, diskIx.LeafBloom)
}

// sealStage invokes the test-only seal lifecycle hook.
func (l *Log) sealStage(stage string) {
	if l.sealStageHook != nil {
		l.sealStageHook(stage)
	}
}

// CacheStats reports the tile page cache's counters; zero for in-memory
// logs.
func (l *Log) CacheStats() storage.PageCacheStats {
	if l.tiles == nil {
		return storage.PageCacheStats{}
	}
	return l.tiles.cache.Stats()
}

// TiledThrough reports how many entries live in sealed tiles.
func (l *Log) TiledThrough() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.tailStart
}
