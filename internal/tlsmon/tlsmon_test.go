package tlsmon

import (
	"testing"
	"time"

	"ctrise/internal/ecosystem"
)

func runGenerator(t *testing.T, cfg GenConfig) *Monitor {
	t.Helper()
	m := NewMonitor()
	Generate(cfg, m.Observe)
	return m
}

func TestMonitorChannelAccounting(t *testing.T) {
	m := NewMonitor()
	now := time.Date(2017, 6, 1, 12, 0, 0, 0, time.UTC)
	m.Observe(&Connection{Time: now}) // no SCT
	m.Observe(&Connection{Time: now, CertLogs: []string{"L1"}, ClientSupportsSCT: true})
	m.Observe(&Connection{Time: now, TLSLogs: []string{"L2"}})
	m.Observe(&Connection{Time: now, CertLogs: []string{"L1"}, TLSLogs: []string{"L1"}})
	m.Observe(&Connection{Time: now, OCSPLogs: []string{"L3"}, TLSLogs: []string{"L3"}})

	tot := m.Totals()
	if tot.Connections != 5 || tot.WithSCT != 4 {
		t.Fatalf("totals: %+v", tot)
	}
	if tot.CertSCT != 2 || tot.TLSSCT != 3 || tot.OCSPSCT != 1 {
		t.Fatalf("channels: %+v", tot)
	}
	if tot.CertAndTLS != 1 || tot.TLSAndOCSP != 1 || tot.CertAndOCSP != 0 {
		t.Fatalf("overlaps: %+v", tot)
	}
	if tot.ClientSupport != 1 {
		t.Fatalf("client support: %+v", tot)
	}
}

func TestFigure2Percentages(t *testing.T) {
	m := NewMonitor()
	d1 := time.Date(2017, 6, 1, 1, 0, 0, 0, time.UTC)
	for i := 0; i < 70; i++ {
		m.Observe(&Connection{Time: d1})
	}
	for i := 0; i < 20; i++ {
		m.Observe(&Connection{Time: d1, CertLogs: []string{"L"}})
	}
	for i := 0; i < 10; i++ {
		m.Observe(&Connection{Time: d1, TLSLogs: []string{"L"}})
	}
	pts := m.Figure2()
	if len(pts) != 1 {
		t.Fatalf("points = %d", len(pts))
	}
	p := pts[0]
	if p.TotalSCTPct != 30 || p.CertPct != 20 || p.TLSPct != 10 {
		t.Fatalf("point = %+v", p)
	}
}

// The headline reproduction test: the generated 13-month stream matches
// the paper's Section 3.2 percentages.
func TestGeneratedTrafficMatchesPaperShape(t *testing.T) {
	m := runGenerator(t, GenConfig{Seed: 1, ConnsPerDay: 400})
	tot := m.Totals()
	if tot.Connections == 0 {
		t.Fatal("no traffic")
	}
	pct := func(v uint64) float64 { return 100 * float64(v) / float64(tot.Connections) }

	// 32.61% of connections contained at least one SCT (±2pp, burst days
	// push it slightly above the base rate).
	if p := pct(tot.WithSCT); p < 30.5 || p > 35.5 {
		t.Errorf("SCT share = %.2f%%, want ≈32.6%%", p)
	}
	// 21.40% via certificate.
	if p := pct(tot.CertSCT); p < 19.5 || p > 23.5 {
		t.Errorf("cert share = %.2f%%, want ≈21.4%%", p)
	}
	// 11.21% via TLS extension (burst days add to this channel).
	if p := pct(tot.TLSSCT); p < 10 || p > 15 {
		t.Errorf("TLS share = %.2f%%, want ≈11.2–13%%", p)
	}
	// OCSP is rare (<0.1%).
	if p := pct(tot.OCSPSCT); p > 0.1 {
		t.Errorf("OCSP share = %.3f%%, want ≈0.008%%", p)
	}
	// Cert+TLS overlap is far rarer than either channel.
	if tot.CertAndTLS > tot.CertSCT/100 {
		t.Errorf("cert+TLS overlap = %d of %d", tot.CertAndTLS, tot.CertSCT)
	}
	// ~66.76% client support.
	if p := pct(tot.ClientSupport); p < 63 || p > 71 {
		t.Errorf("client support = %.2f%%, want ≈66.8%%", p)
	}
}

func TestTable1ShapeMatchesPaper(t *testing.T) {
	m := runGenerator(t, GenConfig{Seed: 2, ConnsPerDay: 400})
	rows := m.Table1(15)
	if len(rows) != 15 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Pilot leads the certificate channel.
	if rows[0].Log != ecosystem.LogGooglePilot {
		t.Fatalf("top cert log = %q", rows[0].Log)
	}
	if rows[0].CertPct < 24 || rows[0].CertPct > 33 {
		t.Fatalf("Pilot cert pct = %.2f", rows[0].CertPct)
	}
	// Symantec leads the TLS channel (40.19% in the paper).
	var symantecTLS float64
	var maxTLS float64
	var maxTLSLog string
	for _, r := range rows {
		if r.Log == ecosystem.LogSymantec {
			symantecTLS = r.TLSPct
		}
		if r.TLSPct > maxTLS {
			maxTLS, maxTLSLog = r.TLSPct, r.Log
		}
	}
	if maxTLSLog != ecosystem.LogSymantec {
		t.Fatalf("top TLS log = %q", maxTLSLog)
	}
	if symantecTLS < 35 || symantecTLS > 46 {
		t.Fatalf("Symantec TLS pct = %.2f, want ≈40", symantecTLS)
	}
	// DigiCert Log Server: strong on cert channel, ~absent on TLS channel.
	for _, r := range rows {
		if r.Log == ecosystem.LogDigiCert {
			if r.CertPct < 7 || r.CertPct > 13 {
				t.Fatalf("DigiCert cert pct = %.2f", r.CertPct)
			}
			if r.TLSPct > 1 {
				t.Fatalf("DigiCert TLS pct = %.2f, want ≈0", r.TLSPct)
			}
		}
	}
	// A small number of logs dominates: top 3 carry >60% of cert SCTs.
	if s := rows[0].CertPct + rows[1].CertPct + rows[2].CertPct; s < 55 {
		t.Fatalf("top-3 cert share = %.2f", s)
	}
}

func TestBurstDaysCreatePeaks(t *testing.T) {
	m := runGenerator(t, GenConfig{Seed: 3, ConnsPerDay: 300, BurstDays: 5, BurstFactor: 5})
	pts := m.Figure2()
	if len(pts) < 300 {
		t.Fatalf("days = %d", len(pts))
	}
	base, peak := 0.0, 0.0
	for _, p := range pts {
		if p.TotalSCTPct > peak {
			peak = p.TotalSCTPct
		}
		base += p.TotalSCTPct
	}
	base /= float64(len(pts))
	if peak < base+15 {
		t.Fatalf("no visible peaks: base=%.1f peak=%.1f", base, peak)
	}
	// Peaks are driven by the TLS-extension channel (graph.facebook.com).
	var peakDay Figure2Point
	for _, p := range pts {
		if p.TotalSCTPct == peak {
			peakDay = p
		}
	}
	if peakDay.TLSPct < peakDay.CertPct {
		t.Fatalf("peak not TLS-driven: %+v", peakDay)
	}
}

func TestNoBurstsOption(t *testing.T) {
	m := runGenerator(t, GenConfig{Seed: 4, ConnsPerDay: 300, BurstDays: -1})
	pts := m.Figure2()
	peak := 0.0
	for _, p := range pts {
		if p.TotalSCTPct > peak {
			peak = p.TotalSCTPct
		}
	}
	if peak > 45 {
		t.Fatalf("unexpected peak without bursts: %.1f", peak)
	}
}

func TestGeneratorDeterminism(t *testing.T) {
	run := func() Totals {
		m := NewMonitor()
		Generate(GenConfig{Seed: 9, ConnsPerDay: 100, Start: ecosystem.Date(2017, 5, 1), End: ecosystem.Date(2017, 5, 20)}, m.Observe)
		return m.Totals()
	}
	if run() != run() {
		t.Fatal("generator not deterministic")
	}
}

func TestTable1PercentagesRelativeToChannel(t *testing.T) {
	m := NewMonitor()
	now := time.Date(2017, 6, 1, 0, 0, 0, 0, time.UTC)
	// 4 cert-channel conns: 3 via A, 1 via B. 2 TLS conns via B.
	for i := 0; i < 3; i++ {
		m.Observe(&Connection{Time: now, CertLogs: []string{"A"}})
	}
	m.Observe(&Connection{Time: now, CertLogs: []string{"B"}})
	m.Observe(&Connection{Time: now, TLSLogs: []string{"B"}})
	m.Observe(&Connection{Time: now, TLSLogs: []string{"B"}})
	rows := m.Table1(2)
	if rows[0].Log != "A" || rows[0].CertPct != 75 {
		t.Fatalf("row0 = %+v", rows[0])
	}
	if rows[1].Log != "B" || rows[1].TLSPct != 100 {
		t.Fatalf("row1 = %+v", rows[1])
	}
}
