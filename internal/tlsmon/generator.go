package tlsmon

import (
	"math/rand"
	"sort"
	"time"

	"ctrise/internal/ecosystem"
)

// Channel-mix probabilities calibrated to Section 3.2's published counts
// over 26.5G connections. Classes are disjoint; the remainder carries no
// SCT.
const (
	pCertOnly = 0.21399 // 5.7G cert-channel conns minus overlaps
	pTLSOnly  = 0.11198 // 3G TLS-extension conns minus overlaps
	pOCSPOnly = 0.000019
	pCertTLS  = 0.00000116 // 30.8k of 26.5G
	pTLSOCSP  = 0.0000566  // 1.5M of 26.5G
	// pCertOCSP is 29 connections in 26.5G — below our scale's floor; the
	// class exists in the generator for completeness.
	pCertOCSP = 0.0000000011

	// pClientSupport is the fraction of ClientHellos offering the SCT
	// extension (17.7G of 26.5G).
	pClientSupport = 0.6676
)

// logShare is a per-channel log popularity entry, calibrated to Table 1.
type logShare struct {
	name   string
	weight float64
}

// certChannelShares follows Table 1's "Cert SCTs" column.
var certChannelShares = []logShare{
	{ecosystem.LogGooglePilot, 28.69},
	{ecosystem.LogSymantec, 18.40},
	{ecosystem.LogGoogleRocketeer, 17.33},
	{ecosystem.LogDigiCert, 10.01},
	{ecosystem.LogGoogleSkydiver, 5.97},
	{ecosystem.LogGoogleAviator, 5.94},
	{ecosystem.LogVenafi, 5.58},
	{ecosystem.LogDigiCert2, 3.77},
	{ecosystem.LogSymantecVega, 3.71},
	{ecosystem.LogComodoMammoth, 0.44},
	{ecosystem.LogNimbus2018, 0.05},
	{ecosystem.LogGoogleIcarus, 0.04},
	{ecosystem.LogNimbus2020, 0.02},
	{ecosystem.LogComodoSabre, 0.01},
	{ecosystem.LogCertlyIO, 0.01},
}

// tlsChannelShares follows Table 1's "TLS SCTs" column.
var tlsChannelShares = []logShare{
	{ecosystem.LogSymantec, 40.19},
	{ecosystem.LogGooglePilot, 26.03},
	{ecosystem.LogGoogleRocketeer, 23.30},
	{ecosystem.LogComodoMammoth, 3.71},
	{ecosystem.LogVenafi, 2.45},
	{ecosystem.LogComodoSabre, 1.98},
	{ecosystem.LogGoogleSkydiver, 0.89},
	{ecosystem.LogDigiCert2, 0.21},
	{ecosystem.LogSymantecVega, 0.02},
}

// shareTable is a share list compiled into a cumulative-weight table, so
// a draw costs one binary search instead of re-summing every weight. The
// replay draws from these tables once or twice per connection; the
// re-summing loop was O(len) per draw on the hottest path.
type shareTable struct {
	names []string
	cum   []float64 // cum[i] = sum of weights 0..i
	total float64
}

func newShareTable(shares []logShare) *shareTable {
	t := &shareTable{
		names: make([]string, len(shares)),
		cum:   make([]float64, len(shares)),
	}
	for i, s := range shares {
		t.total += s.weight
		t.names[i] = s.name
		t.cum[i] = t.total
	}
	return t
}

var (
	certTable = newShareTable(certChannelShares)
	tlsTable  = newShareTable(tlsChannelShares)
)

// draw samples one log name: the first entry whose cumulative weight
// exceeds a uniform draw over the total weight.
func (t *shareTable) draw(rng *rand.Rand) string {
	p := rng.Float64() * t.total
	i := sort.Search(len(t.cum), func(i int) bool { return p < t.cum[i] })
	if i == len(t.names) {
		i--
	}
	return t.names[i]
}

// secondSCTProb is the chance a connection's channel carries a second
// log's SCT (Chrome policy wants multiple logs; observed per-channel
// shares sum to slightly over 100%).
const secondSCTProb = 0.06

// drawLogs samples 1–2 log names from a share table into dst (reusing
// its backing storage). A multi-log connection carries SCTs from two
// distinct logs, as the Chrome policy intends: the second draw retries
// until it differs from the first instead of silently collapsing the
// connection back to one log.
func (t *shareTable) drawLogs(rng *rand.Rand, dst []string) []string {
	dst = append(dst[:0], t.draw(rng))
	if rng.Float64() < secondSCTProb {
		second := t.draw(rng)
		for second == dst[0] {
			second = t.draw(rng)
		}
		dst = append(dst, second)
	}
	return dst
}

// GenConfig parameterizes the traffic generator.
type GenConfig struct {
	// Seed drives all randomness. Every day of the replay derives a
	// private RNG from (Seed, day index) by seed-splitting, and the
	// burst-day selection draws from its own derived stream, so the
	// emitted connection stream depends only on Seed — not on worker
	// count or scheduling.
	Seed int64
	// Start/End bound the observation window; defaults to the paper's
	// 2017-04-26 .. 2018-05-23.
	Start, End time.Time
	// ConnsPerDay is the scaled daily connection volume. The paper saw
	// ~68M/day; 680 reproduces the shape at 1e-5 scale. Default 680.
	ConnsPerDay int
	// BurstDays is the number of graph.facebook.com burst days that cause
	// the Figure 2 peaks. Default 6.
	BurstDays int
	// BurstFactor multiplies a burst day's total traffic, the extra being
	// TLS-extension connections to graph.facebook.com. Default 2, which
	// lifts a burst day's SCT share to ≈66% like the Figure 2 peaks.
	BurstFactor int
	// Parallelism bounds the generator's worker fan-out: 0 means
	// GOMAXPROCS, 1 forces the sequential path. The stream is identical
	// at every setting.
	Parallelism int
}

func (cfg *GenConfig) setDefaults() {
	if cfg.Start.IsZero() {
		cfg.Start = ecosystem.Date(2017, 4, 26)
	}
	if cfg.End.IsZero() {
		cfg.End = ecosystem.Date(2018, 5, 23)
	}
	if cfg.ConnsPerDay <= 0 {
		cfg.ConnsPerDay = 680
	}
	if cfg.BurstDays < 0 {
		cfg.BurstDays = 0
	} else if cfg.BurstDays == 0 {
		cfg.BurstDays = 6
	}
	if cfg.BurstFactor <= 0 {
		cfg.BurstFactor = 2
	}
}

// Seed-split salts naming the generator's independent random streams.
const (
	saltBurstDays = 0x6275727374 // "burst"
	saltTraffic   = 0x74726166   // "traf"
)

// genDayChunk is the number of days one worker generates into a private
// buffer before the ordered merge emits them. Small enough that a
// 13-month window splits into ~100 chunks (ample load-balancing), large
// enough that channel traffic is negligible.
const genDayChunk = 4

// Generate synthesizes the connection stream and feeds it to emit in time
// order. It reproduces the published workload shape: the channel mix and
// log shares above, constant over time (the paper observes no immediate
// post-deadline change because certificates replace only gradually), with
// occasional graph.facebook.com bursts.
//
// Day chunks are generated by up to GenConfig.Parallelism workers into
// private buffers and emitted via an ordered merge: emit always runs on
// the calling goroutine, in day order, and the stream is identical at
// every parallelism setting. The *Connection passed to emit is reused
// for later connections — callers that retain it past the callback must
// copy it.
func Generate(cfg GenConfig, emit func(*Connection)) {
	cfg.setDefaults()

	totalDays := int(cfg.End.Sub(cfg.Start).Hours()/24) + 1
	// Burst-day selection draws from its own derived stream, up front, so
	// per-day generation is independent of it.
	burstRng := ecosystem.NewRand(ecosystem.DeriveSeed(cfg.Seed, saltBurstDays))
	burst := make(map[int]bool, cfg.BurstDays)
	for len(burst) < cfg.BurstDays && len(burst) < totalDays {
		burst[burstRng.Intn(totalDays)] = true
	}

	chunks := ecosystem.Ranges(totalDays, genDayChunk)
	// Workers recycle day-chunk buffers through a bounded free list: a
	// buffer returns after its chunk is emitted, so the steady state
	// keeps a handful of buffers in flight (producing + queued + one
	// being consumed) instead of allocating per chunk. An explicit
	// channel, unlike sync.Pool, is immune to GC flushes — the replay
	// allocates enough per run that a pool would be emptied mid-stream.
	workers := ecosystem.Workers(cfg.Parallelism, len(chunks))
	free := make(chan []Connection, 2*workers+2)
	ecosystem.ForEachOrdered(len(chunks), workers,
		func(ci int) []Connection {
			var buf []Connection
			select {
			case buf = <-free:
			default:
			}
			return generateDays(&cfg, chunks[ci], burst, buf)
		},
		func(_ int, buf []Connection) {
			for i := range buf {
				emit(&buf[i])
			}
			select {
			case free <- buf[:0]:
			default:
			}
		})
}

// generateDays fills buf with the connections of the day range [r.Lo,
// r.Hi), reusing buf's storage (and each Connection's inline log-name
// arrays) when capacity allows.
func generateDays(cfg *GenConfig, r ecosystem.Range, burst map[int]bool, buf []Connection) []Connection {
	chunkTotal := 0
	for dayIdx := r.Lo; dayIdx < r.Hi; dayIdx++ {
		chunkTotal += cfg.ConnsPerDay
		if burst[dayIdx] {
			chunkTotal += cfg.ConnsPerDay * (cfg.BurstFactor - 1)
		}
	}
	if cap(buf) < chunkTotal {
		buf = make([]Connection, 0, chunkTotal)
	}
	buf = buf[:0]
	for dayIdx := r.Lo; dayIdx < r.Hi; dayIdx++ {
		rng := ecosystem.NewRand(ecosystem.DeriveSeed(cfg.Seed, saltTraffic, uint64(dayIdx)))
		day := cfg.Start.AddDate(0, 0, dayIdx)
		n := cfg.ConnsPerDay
		total := n
		if burst[dayIdx] {
			total += n * (cfg.BurstFactor - 1)
		}
		for i := 0; i < n; i++ {
			buf = buf[:len(buf)+1]
			c := &buf[len(buf)-1]
			c.reset()
			c.Time = day.Add(time.Duration(rng.Int63n(int64(24 * time.Hour))))
			c.ClientSupportsSCT = rng.Float64() < pClientSupport
			assignChannels(rng, c)
		}
		if burst[dayIdx] {
			// graph.facebook.com burst: a surge of TLS-extension SCT
			// connections to one name, lifting the day's SCT share.
			for i := 0; i < total-n; i++ {
				buf = buf[:len(buf)+1]
				c := &buf[len(buf)-1]
				c.reset()
				c.Time = day.Add(time.Duration(rng.Int63n(int64(24 * time.Hour))))
				c.ServerName = "graph.facebook.com"
				c.ClientSupportsSCT = true
				c.TLSLogs = tlsTable.drawLogs(rng, c.tlsBuf())
			}
		}
	}
	return buf
}

func assignChannels(rng *rand.Rand, c *Connection) {
	p := rng.Float64()
	switch {
	case p < pCertOnly:
		c.CertLogs = certTable.drawLogs(rng, c.certBuf())
	case p < pCertOnly+pTLSOnly:
		c.TLSLogs = tlsTable.drawLogs(rng, c.tlsBuf())
	case p < pCertOnly+pTLSOnly+pOCSPOnly:
		c.OCSPLogs = tlsTable.drawLogs(rng, c.ocspBuf())
	case p < pCertOnly+pTLSOnly+pOCSPOnly+pCertTLS:
		c.CertLogs = certTable.drawLogs(rng, c.certBuf())
		c.TLSLogs = tlsTable.drawLogs(rng, c.tlsBuf())
	case p < pCertOnly+pTLSOnly+pOCSPOnly+pCertTLS+pTLSOCSP:
		c.TLSLogs = tlsTable.drawLogs(rng, c.tlsBuf())
		c.OCSPLogs = append(c.ocspBuf(), c.TLSLogs...)
	case p < pCertOnly+pTLSOnly+pOCSPOnly+pCertTLS+pTLSOCSP+pCertOCSP:
		c.CertLogs = certTable.drawLogs(rng, c.certBuf())
		c.OCSPLogs = tlsTable.drawLogs(rng, c.ocspBuf())
	}
}
