package tlsmon

import (
	"math/rand"
	"time"

	"ctrise/internal/ecosystem"
)

// Channel-mix probabilities calibrated to Section 3.2's published counts
// over 26.5G connections. Classes are disjoint; the remainder carries no
// SCT.
const (
	pCertOnly = 0.21399 // 5.7G cert-channel conns minus overlaps
	pTLSOnly  = 0.11198 // 3G TLS-extension conns minus overlaps
	pOCSPOnly = 0.000019
	pCertTLS  = 0.00000116 // 30.8k of 26.5G
	pTLSOCSP  = 0.0000566  // 1.5M of 26.5G
	// pCertOCSP is 29 connections in 26.5G — below our scale's floor; the
	// class exists in the generator for completeness.
	pCertOCSP = 0.0000000011

	// pClientSupport is the fraction of ClientHellos offering the SCT
	// extension (17.7G of 26.5G).
	pClientSupport = 0.6676
)

// logShare is a per-channel log popularity entry, calibrated to Table 1.
type logShare struct {
	name   string
	weight float64
}

// certChannelShares follows Table 1's "Cert SCTs" column.
var certChannelShares = []logShare{
	{ecosystem.LogGooglePilot, 28.69},
	{ecosystem.LogSymantec, 18.40},
	{ecosystem.LogGoogleRocketeer, 17.33},
	{ecosystem.LogDigiCert, 10.01},
	{ecosystem.LogGoogleSkydiver, 5.97},
	{ecosystem.LogGoogleAviator, 5.94},
	{ecosystem.LogVenafi, 5.58},
	{ecosystem.LogDigiCert2, 3.77},
	{ecosystem.LogSymantecVega, 3.71},
	{ecosystem.LogComodoMammoth, 0.44},
	{ecosystem.LogNimbus2018, 0.05},
	{ecosystem.LogGoogleIcarus, 0.04},
	{ecosystem.LogNimbus2020, 0.02},
	{ecosystem.LogComodoSabre, 0.01},
	{ecosystem.LogCertlyIO, 0.01},
}

// tlsChannelShares follows Table 1's "TLS SCTs" column.
var tlsChannelShares = []logShare{
	{ecosystem.LogSymantec, 40.19},
	{ecosystem.LogGooglePilot, 26.03},
	{ecosystem.LogGoogleRocketeer, 23.30},
	{ecosystem.LogComodoMammoth, 3.71},
	{ecosystem.LogVenafi, 2.45},
	{ecosystem.LogComodoSabre, 1.98},
	{ecosystem.LogGoogleSkydiver, 0.89},
	{ecosystem.LogDigiCert2, 0.21},
	{ecosystem.LogSymantecVega, 0.02},
}

// secondSCTProb is the chance a connection's channel carries a second
// log's SCT (Chrome policy wants multiple logs; observed per-channel
// shares sum to slightly over 100%).
const secondSCTProb = 0.06

// drawLogs samples 1–2 log names from a share table.
func drawLogs(rng *rand.Rand, shares []logShare) []string {
	out := []string{drawOne(rng, shares)}
	if rng.Float64() < secondSCTProb {
		second := drawOne(rng, shares)
		if second != out[0] {
			out = append(out, second)
		}
	}
	return out
}

func drawOne(rng *rand.Rand, shares []logShare) string {
	var total float64
	for _, s := range shares {
		total += s.weight
	}
	p := rng.Float64() * total
	var cum float64
	for _, s := range shares {
		cum += s.weight
		if p < cum {
			return s.name
		}
	}
	return shares[len(shares)-1].name
}

// GenConfig parameterizes the traffic generator.
type GenConfig struct {
	// Seed drives all randomness.
	Seed int64
	// Start/End bound the observation window; defaults to the paper's
	// 2017-04-26 .. 2018-05-23.
	Start, End time.Time
	// ConnsPerDay is the scaled daily connection volume. The paper saw
	// ~68M/day; 680 reproduces the shape at 1e-5 scale. Default 680.
	ConnsPerDay int
	// BurstDays is the number of graph.facebook.com burst days that cause
	// the Figure 2 peaks. Default 6.
	BurstDays int
	// BurstFactor multiplies a burst day's total traffic, the extra being
	// TLS-extension connections to graph.facebook.com. Default 2, which
	// lifts a burst day's SCT share to ≈66% like the Figure 2 peaks.
	BurstFactor int
}

func (cfg *GenConfig) setDefaults() {
	if cfg.Start.IsZero() {
		cfg.Start = ecosystem.Date(2017, 4, 26)
	}
	if cfg.End.IsZero() {
		cfg.End = ecosystem.Date(2018, 5, 23)
	}
	if cfg.ConnsPerDay <= 0 {
		cfg.ConnsPerDay = 680
	}
	if cfg.BurstDays < 0 {
		cfg.BurstDays = 0
	} else if cfg.BurstDays == 0 {
		cfg.BurstDays = 6
	}
	if cfg.BurstFactor <= 0 {
		cfg.BurstFactor = 2
	}
}

// Generate synthesizes the connection stream and feeds it to emit in time
// order. It reproduces the published workload shape: the channel mix and
// log shares above, constant over time (the paper observes no immediate
// post-deadline change because certificates replace only gradually), with
// occasional graph.facebook.com bursts.
func Generate(cfg GenConfig, emit func(*Connection)) {
	cfg.setDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	totalDays := int(cfg.End.Sub(cfg.Start).Hours()/24) + 1
	burst := make(map[int]bool, cfg.BurstDays)
	for len(burst) < cfg.BurstDays && len(burst) < totalDays {
		burst[rng.Intn(totalDays)] = true
	}

	for dayIdx := 0; dayIdx < totalDays; dayIdx++ {
		day := cfg.Start.AddDate(0, 0, dayIdx)
		n := cfg.ConnsPerDay
		for i := 0; i < n; i++ {
			c := &Connection{
				Time:              day.Add(time.Duration(rng.Int63n(int64(24 * time.Hour)))),
				ClientSupportsSCT: rng.Float64() < pClientSupport,
			}
			assignChannels(rng, c)
			emit(c)
		}
		if burst[dayIdx] {
			// graph.facebook.com burst: a surge of TLS-extension SCT
			// connections to one name, lifting the day's SCT share.
			extra := n * (cfg.BurstFactor - 1)
			for i := 0; i < extra; i++ {
				c := &Connection{
					Time:              day.Add(time.Duration(rng.Int63n(int64(24 * time.Hour)))),
					ServerName:        "graph.facebook.com",
					ClientSupportsSCT: true,
					TLSLogs:           drawLogs(rng, tlsChannelShares),
				}
				emit(c)
			}
		}
	}
}

func assignChannels(rng *rand.Rand, c *Connection) {
	p := rng.Float64()
	switch {
	case p < pCertOnly:
		c.CertLogs = drawLogs(rng, certChannelShares)
	case p < pCertOnly+pTLSOnly:
		c.TLSLogs = drawLogs(rng, tlsChannelShares)
	case p < pCertOnly+pTLSOnly+pOCSPOnly:
		c.OCSPLogs = drawLogs(rng, tlsChannelShares)
	case p < pCertOnly+pTLSOnly+pOCSPOnly+pCertTLS:
		c.CertLogs = drawLogs(rng, certChannelShares)
		c.TLSLogs = drawLogs(rng, tlsChannelShares)
	case p < pCertOnly+pTLSOnly+pOCSPOnly+pCertTLS+pTLSOCSP:
		c.TLSLogs = drawLogs(rng, tlsChannelShares)
		c.OCSPLogs = append([]string(nil), c.TLSLogs...)
	case p < pCertOnly+pTLSOnly+pOCSPOnly+pCertTLS+pTLSOCSP+pCertOCSP:
		c.CertLogs = drawLogs(rng, certChannelShares)
		c.OCSPLogs = drawLogs(rng, tlsChannelShares)
	}
}
