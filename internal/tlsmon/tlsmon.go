// Package tlsmon implements the passive TLS measurement pipeline of
// Section 3: a Bro-like connection monitor that records, per observed
// TLS connection, which channels delivered SCTs (certificate-embedded,
// TLS extension, stapled OCSP) and from which logs, aggregated into the
// paper's Figure 2 (percent of daily connections containing an SCT, by
// transmission mode) and Table 1 (top logs by observed connections).
//
// The companion traffic generator reproduces the UCB uplink workload
// shape: a 13-month connection stream whose channel mix, per-channel log
// shares, client-support rate, and graph.facebook.com burst days are
// calibrated to the published measurements.
package tlsmon

import (
	"time"

	"ctrise/internal/stats"
)

// Connection is one observed outgoing TLS connection, reduced to the
// fields the Section 3 analysis uses.
type Connection struct {
	Time time.Time
	// ServerName is the SNI (used only for the burst-day diagnosis).
	ServerName string
	// ClientSupportsSCT reports whether the ClientHello offered the
	// signed_certificate_timestamp extension.
	ClientSupportsSCT bool
	// CertLogs, TLSLogs, OCSPLogs name the logs whose SCTs arrived via
	// each channel (empty = no SCT on that channel).
	CertLogs []string
	TLSLogs  []string
	OCSPLogs []string

	// logBuf is inline backing storage for the three channel slices: a
	// channel carries at most two SCTs, so the generator fills slices
	// over this array instead of allocating per connection. Connections
	// built by hand (tests, other sources) simply leave it unused.
	logBuf [6]string
}

// reset clears the connection for reuse as generator scratch.
func (c *Connection) reset() {
	c.Time = time.Time{}
	c.ServerName = ""
	c.ClientSupportsSCT = false
	c.CertLogs, c.TLSLogs, c.OCSPLogs = nil, nil, nil
}

// certBuf/tlsBuf/ocspBuf return empty slices over the connection's
// inline storage, two capacity each, for the generator to append into.
func (c *Connection) certBuf() []string { return c.logBuf[0:0:2] }
func (c *Connection) tlsBuf() []string  { return c.logBuf[2:2:4] }
func (c *Connection) ocspBuf() []string { return c.logBuf[4:4:6] }

// HasSCT reports whether any channel carried an SCT.
func (c *Connection) HasSCT() bool {
	return len(c.CertLogs) > 0 || len(c.TLSLogs) > 0 || len(c.OCSPLogs) > 0
}

// Totals are the headline counters of Section 3.2.
type Totals struct {
	Connections   uint64
	WithSCT       uint64
	CertSCT       uint64
	TLSSCT        uint64
	OCSPSCT       uint64
	CertAndTLS    uint64
	CertAndOCSP   uint64
	TLSAndOCSP    uint64
	ClientSupport uint64
}

// Monitor aggregates connections. It is the passive half of the paper's
// measurement apparatus; feed it connections from the generator or any
// other source.
type Monitor struct {
	totals Totals
	// daily series for Figure 2: raw counts that DailyPercent turns into
	// percentages.
	daily *stats.DaySeries
	// per-log counters for Table 1.
	certByLog *stats.Counter
	tlsByLog  *stats.Counter
	// lastDayNum/lastDayKey memoize DayKey formatting: consecutive
	// connections overwhelmingly share a day, so the common case skips
	// time.Format for all four per-connection series updates.
	lastDayNum int64
	lastDayKey string
	// Per-day tallies, flushed into daily on day change (the generator
	// emits in day order) and before any read. This turns four locked
	// map updates per connection into four plain increments.
	dayConns, daySCT, dayCert, dayTLS float64
}

// flushDay folds the current day's tallies into the day series. Flushes
// are additive, so out-of-day-order observers stay correct — they just
// flush more often.
func (m *Monitor) flushDay() {
	if m.lastDayNum < 0 {
		return
	}
	if m.dayConns > 0 {
		m.daily.AddKey(seriesTotal, m.lastDayKey, m.dayConns)
	}
	if m.daySCT > 0 {
		m.daily.AddKey(seriesSCT, m.lastDayKey, m.daySCT)
	}
	if m.dayCert > 0 {
		m.daily.AddKey(seriesCertSCT, m.lastDayKey, m.dayCert)
	}
	if m.dayTLS > 0 {
		m.daily.AddKey(seriesTLSSCT, m.lastDayKey, m.dayTLS)
	}
	m.dayConns, m.daySCT, m.dayCert, m.dayTLS = 0, 0, 0, 0
}

// Series names used in the daily aggregation.
const (
	seriesTotal   = "conns"
	seriesSCT     = "Total_SCT"
	seriesCertSCT = "SCT_in_Cert"
	seriesTLSSCT  = "SCT_in_TLS"
)

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{
		daily:      stats.NewDaySeries(),
		certByLog:  stats.NewCounter(),
		tlsByLog:   stats.NewCounter(),
		lastDayNum: -1,
	}
}

// Observe ingests one connection. It does not retain c.
func (m *Monitor) Observe(c *Connection) {
	if dayNum := c.Time.Unix() / (24 * 60 * 60); dayNum != m.lastDayNum {
		m.flushDay()
		m.lastDayNum = dayNum
		m.lastDayKey = stats.DayKey(c.Time)
	}
	m.totals.Connections++
	if c.ClientSupportsSCT {
		m.totals.ClientSupport++
	}
	m.dayConns++
	if c.HasSCT() {
		m.totals.WithSCT++
		m.daySCT++
	}
	if len(c.CertLogs) > 0 {
		m.totals.CertSCT++
		m.dayCert++
		for _, l := range c.CertLogs {
			m.certByLog.Inc(l)
		}
	}
	if len(c.TLSLogs) > 0 {
		m.totals.TLSSCT++
		m.dayTLS++
		for _, l := range c.TLSLogs {
			m.tlsByLog.Inc(l)
		}
	}
	if len(c.OCSPLogs) > 0 {
		m.totals.OCSPSCT++
	}
	if len(c.CertLogs) > 0 && len(c.TLSLogs) > 0 {
		m.totals.CertAndTLS++
	}
	if len(c.CertLogs) > 0 && len(c.OCSPLogs) > 0 {
		m.totals.CertAndOCSP++
	}
	if len(c.TLSLogs) > 0 && len(c.OCSPLogs) > 0 {
		m.totals.TLSAndOCSP++
	}
}

// Totals returns the accumulated headline counters.
func (m *Monitor) Totals() Totals { return m.totals }

// Figure2Point is one day of Figure 2.
type Figure2Point struct {
	Day         string
	TotalSCTPct float64
	CertPct     float64
	TLSPct      float64
}

// Figure2 returns the daily percentages, in day order.
func (m *Monitor) Figure2() []Figure2Point {
	m.flushDay()
	days := m.daily.Days()
	out := make([]Figure2Point, 0, len(days))
	for _, d := range days {
		total := m.daily.Value(seriesTotal, d)
		if total == 0 {
			continue
		}
		out = append(out, Figure2Point{
			Day:         d,
			TotalSCTPct: 100 * m.daily.Value(seriesSCT, d) / total,
			CertPct:     100 * m.daily.Value(seriesCertSCT, d) / total,
			TLSPct:      100 * m.daily.Value(seriesTLSSCT, d) / total,
		})
	}
	return out
}

// Table1Row is one row of Table 1.
type Table1Row struct {
	Log      string
	CertSCTs uint64
	CertPct  float64
	TLSSCTs  uint64
	TLSPct   float64
}

// Table1 returns the top-k logs by certificate-channel SCT connections,
// with both channels' counts and percentages (relative to connections
// carrying an SCT on that channel).
func (m *Monitor) Table1(k int) []Table1Row {
	top := m.certByLog.TopK(k)
	rows := make([]Table1Row, 0, len(top))
	for _, kv := range top {
		rows = append(rows, Table1Row{
			Log:      kv.Key,
			CertSCTs: kv.Count,
			CertPct:  stats.Percent(kv.Count, m.totals.CertSCT),
			TLSSCTs:  m.tlsByLog.Get(kv.Key),
			TLSPct:   stats.Percent(m.tlsByLog.Get(kv.Key), m.totals.TLSSCT),
		})
	}
	return rows
}
