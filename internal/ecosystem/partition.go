package ecosystem

import (
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"

	"ctrise/internal/stats"
)

// This file is the deterministic fan-out layer shared by the generation
// pipelines (the Figure 2 traffic replay, the issuance timeline, the
// Section 3.3 scan sweep). It separates three concerns so that parallel
// output is identical to sequential output at any worker count and under
// any scheduling:
//
//   - Partitioning: work is split into contiguous index ranges whose
//     boundaries depend only on the input size, never on the worker
//     count (Ranges).
//   - Randomness: every chunk derives a private RNG from the base seed
//     and the chunk's identity via seed-splitting (DeriveSeed), so a
//     chunk's draws are the same no matter which worker runs it or when.
//   - Ordering: results that must be observed in input order are merged
//     back on the calling goroutine in strict chunk order
//     (ForEachOrdered); purely additive results use ForEach and
//     order-independent merges.

// Range is a half-open [Lo, Hi) index interval of one work chunk.
type Range struct {
	Lo, Hi int
}

// Len returns the number of indices in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Ranges splits [0, n) into contiguous chunks of at most chunk indices.
// The split depends only on n and chunk, never on the worker count.
func Ranges(n, chunk int) []Range {
	if n <= 0 {
		return nil
	}
	if chunk <= 0 {
		chunk = n
	}
	out := make([]Range, 0, (n+chunk-1)/chunk)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, Range{lo, hi})
	}
	return out
}

// Workers resolves a Parallelism knob against a task count: 0 (or
// negative) means GOMAXPROCS, and the result never exceeds tasks nor
// falls below 1.
func Workers(parallelism, tasks int) int {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if parallelism > tasks {
		parallelism = tasks
	}
	if parallelism < 1 {
		parallelism = 1
	}
	return parallelism
}

// DeriveSeed derives an independent RNG seed from a base seed and the
// identity of a work unit (day index, site index, chunk number, a salted
// string hash, ...). It chains the splitmix64 finalizer over the salts,
// so seeds for neighbouring units are statistically independent — unlike
// xor-folding, which makes seed i and seed i+1 differ in one bit.
func DeriveSeed(base int64, salts ...uint64) int64 {
	x := uint64(base)
	for _, s := range salts {
		x = stats.Mix64(x + 0x9e3779b97f4a7c15 + s)
	}
	return int64(x)
}

// splitMixSource is a splitmix64 rand.Source64. Its state is one word
// and seeding is O(1) — unlike math/rand's lagged-Fibonacci source,
// whose 607-word seed initialization dominates any pipeline that
// derives a fresh RNG per work unit (per issuance, per site, per day).
type splitMixSource struct{ x uint64 }

func (s *splitMixSource) Seed(seed int64) { s.x = uint64(seed) }

func (s *splitMixSource) Uint64() uint64 {
	s.x += 0x9e3779b97f4a7c15
	return stats.Mix64(s.x)
}

func (s *splitMixSource) Int63() int64 { return int64(s.Uint64() >> 1) }

// NewRand returns a rand.Rand over an O(1)-seeded splitmix64 source —
// the RNG constructor for seed-split work units.
func NewRand(seed int64) *rand.Rand {
	return rand.New(&splitMixSource{x: uint64(seed)})
}

// SaltString hashes a string into a DeriveSeed salt (64-bit FNV-1a,
// the pipelines' shared string hash).
func SaltString(s string) uint64 { return stats.Hash64(s) }

// ForEach runs fn(i) for every i in [0, n) across at most workers
// goroutines. Completion order is unspecified; use it for work whose
// results are additive or written to disjoint slots. workers <= 1 (after
// clamping against n) runs inline on the calling goroutine.
func ForEach(n, workers int, fn func(i int)) {
	workers = Workers(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachOrdered produces n chunk results with gen running on up to
// workers goroutines and consumes them on the calling goroutine in
// strict chunk order — the ordered-merge primitive behind the parallel
// traffic replay. gen(i) may run in any order and concurrently with
// other chunks; consume(i, v) always sees i = 0, 1, 2, ... and never
// runs concurrently with itself, so consumers need no locking. With one
// worker both callbacks run inline, which is the sequential path.
func ForEachOrdered[T any](n, workers int, gen func(i int) T, consume func(i int, v T)) {
	workers = Workers(workers, n)
	if workers <= 1 {
		for i := 0; i < n; i++ {
			consume(i, gen(i))
		}
		return
	}
	type result struct {
		idx int
		v   T
	}
	// Credits bound the run-ahead: a worker takes one before generating a
	// chunk and the consumer returns it after the chunk is consumed, so
	// at most 2×workers chunks are in flight. Without the bound, workers
	// outrun a slower consumer arbitrarily far and every chunk needs its
	// own live buffer — with it, chunk buffers recycle through a small
	// working set.
	credits := 2 * workers
	sem := make(chan struct{}, credits)
	for i := 0; i < credits; i++ {
		sem <- struct{}{}
	}
	ch := make(chan result, workers)
	var cursor atomic.Int64
	for w := 0; w < workers; w++ {
		go func() {
			for {
				<-sem
				i := int(cursor.Add(1)) - 1
				if i >= n {
					// The consumer releases n credits in total, enough
					// for every blocked worker to wake and exit.
					return
				}
				ch <- result{i, gen(i)}
			}
		}()
	}
	pending := make(map[int]T, credits)
	for next := 0; next < n; {
		r := <-ch
		pending[r.idx] = r.v
		for {
			v, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			consume(next, v)
			next++
			sem <- struct{}{}
		}
	}
}

// FirstError records the error of the lowest-indexed work unit that
// failed, so parallel pipelines report the same error a sequential left-
// to-right run would have hit first — error output is deterministic too.
type FirstError struct {
	mu  sync.Mutex
	idx int
	err error
}

// Record notes err for work-unit index i (nil errs are ignored).
func (f *FirstError) Record(i int, err error) {
	if err == nil {
		return
	}
	f.mu.Lock()
	if f.err == nil || i < f.idx {
		f.idx, f.err = i, err
	}
	f.mu.Unlock()
}

// Err returns the recorded error, if any.
func (f *FirstError) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.err
}
