package ecosystem

import (
	"fmt"
	"math"
	"math/rand"
	"time"
)

// CA organization names, matching Figure 1's legend. The paper notes each
// organization subsumes several Issuer-CNs; we model one representative
// issuer per organization.
const (
	CALetsEncrypt = "Let's Encrypt"
	CADigiCert    = "DigiCert"
	CAComodo      = "Comodo"
	CAGlobalSign  = "GlobalSign"
	CAStartCom    = "StartCom"
	CAOther       = "Other CAs"
)

// ChromeDeadline is the date Chrome began enforcing CT for new
// certificates (Section 1/2).
var ChromeDeadline = Date(2018, 4, 18)

// RateModel gives a CA's precertificate-logging rate in certificates per
// day over the simulated timeline. The shapes are calibrated to
// Figures 1a/1b: DigiCert logging early and steadily, Comodo and
// GlobalSign joining with irregular additions, StartCom stopping after
// its distrust, Let's Encrypt switching on in March 2018 at >2M/day, and
// everyone ramping ahead of the April 2018 Chrome deadline.
type RateModel struct {
	// Start is when the CA begins logging precertificates.
	Start time.Time
	// End, if non-zero, is when the CA stops logging (StartCom).
	End time.Time
	// Base is the rate at Start, certificates/day.
	Base float64
	// GrowthPerYear multiplies the rate per simulated year (exponential
	// organic growth).
	GrowthPerYear float64
	// RampStart/RampRate: from RampStart the rate jumps to RampRate
	// (the "pronounced final jumps starting in March 2018").
	RampStart time.Time
	RampRate  float64
	// BurstProb/BurstFactor add day-level irregularity: with BurstProb a
	// day's rate is multiplied by BurstFactor (Comodo, GlobalSign).
	BurstProb   float64
	BurstFactor float64
}

// Rate returns the expected certificates/day on the given day. rng drives
// burst draws; pass a day-seeded rng for reproducibility.
func (m RateModel) Rate(day time.Time, rng *rand.Rand) float64 {
	if day.Before(m.Start) {
		return 0
	}
	if !m.End.IsZero() && day.After(m.End) {
		return 0
	}
	if !m.RampStart.IsZero() && !day.Before(m.RampStart) {
		return m.RampRate
	}
	years := day.Sub(m.Start).Hours() / (24 * 365)
	rate := m.Base
	if m.GrowthPerYear > 1 {
		rate *= math.Pow(m.GrowthPerYear, years)
	}
	if m.BurstProb > 0 && rng.Float64() < m.BurstProb {
		rate *= m.BurstFactor
	}
	return rate
}

// CASpec couples a CA organization with its rate model and log policy.
type CASpec struct {
	Org   string
	Model RateModel
	// Policy returns the set of log names one issuance is submitted to.
	// Sparse, CA-specific choices produce Figure 1c's concentration.
	Policy func(rng *rand.Rand) []string
}

// DefaultCASpecs returns the Figure 1 CA population. Rates are the
// paper-scale (unscaled) certificates/day; World applies Config.Scale.
func DefaultCASpecs() []CASpec {
	return []CASpec{
		{
			Org: CALetsEncrypt,
			Model: RateModel{
				// "In March 2018, Let's Encrypt started logging
				// precertificates with an update rate above 2M per day
				// into few logs."
				Start:     Date(2018, 3, 8),
				Base:      2.3e6,
				RampStart: Date(2018, 3, 8),
				RampRate:  2.3e6,
			},
			Policy: func(rng *rand.Rand) []string {
				// Nimbus2018 carries the main load besides Google logs
				// (Section 2); the set mix reproduces the Section 3.3
				// active-scan shares (Nimbus 74%, Icarus 71%,
				// Rocketeer 19%, Sabre 12.5%).
				switch p := rng.Float64(); {
				case p < 0.55:
					return []string{LogNimbus2018, LogGoogleIcarus}
				case p < 0.74:
					return []string{LogNimbus2018, LogGoogleIcarus, LogGoogleRocketeer}
				case p < 0.87:
					return []string{LogNimbus2018, LogComodoSabre}
				default:
					return []string{LogGoogleIcarus, LogGooglePilot}
				}
			},
		},
		{
			Org: CADigiCert,
			Model: RateModel{
				// "Over a long period, DigiCert dominated activities."
				Start:         Date(2015, 3, 1),
				Base:          8e3,
				GrowthPerYear: 2.2,
				RampStart:     Date(2018, 3, 1),
				RampRate:      3.5e5,
			},
			Policy: func(rng *rand.Rand) []string {
				if rng.Float64() < 0.7 {
					return []string{LogDigiCert, LogGoogleRocketeer}
				}
				return []string{LogDigiCert2, LogGoogleSkydiver}
			},
		},
		{
			Org: CAComodo,
			Model: RateModel{
				// "more irregular additions by Comodo"
				Start:         Date(2016, 7, 1),
				Base:          3e3,
				GrowthPerYear: 2.0,
				BurstProb:     0.08,
				BurstFactor:   25,
				RampStart:     Date(2018, 3, 10),
				RampRate:      4.5e5,
			},
			Policy: func(rng *rand.Rand) []string {
				if rng.Float64() < 0.5 {
					return []string{LogComodoMammoth, LogComodoSabre}
				}
				return []string{LogComodoMammoth, LogGooglePilot}
			},
		},
		{
			Org: CAGlobalSign,
			Model: RateModel{
				Start:         Date(2016, 1, 1),
				Base:          1.5e3,
				GrowthPerYear: 2.0,
				BurstProb:     0.05,
				BurstFactor:   15,
				RampStart:     Date(2018, 3, 15),
				RampRate:      1.2e5,
			},
			Policy: func(rng *rand.Rand) []string {
				if rng.Float64() < 0.6 {
					return []string{LogGooglePilot, LogGoogleRocketeer}
				}
				return []string{LogGoogleSkydiver, LogGooglePilot}
			},
		},
		{
			Org: CAStartCom,
			Model: RateModel{
				// StartCom logged early and stopped after its distrust.
				Start:         Date(2015, 9, 1),
				End:           Date(2017, 10, 1),
				Base:          1.2e3,
				GrowthPerYear: 1.5,
			},
			Policy: func(rng *rand.Rand) []string {
				if rng.Float64() < 0.5 {
					return []string{LogVenafi, LogGooglePilot}
				}
				return []string{LogCertlyIO, LogGooglePilot}
			},
		},
		{
			Org: CAOther,
			Model: RateModel{
				Start:         Date(2015, 6, 1),
				Base:          400,
				GrowthPerYear: 1.8,
				RampStart:     Date(2018, 3, 20),
				RampRate:      1.5e4,
			},
			Policy: func(rng *rand.Rand) []string {
				pool := []string{LogGooglePilot, LogGoogleRocketeer, LogGoogleAviator, LogSymantec, LogSymantecVega, LogVenafi, LogNimbus2020}
				i := rng.Intn(len(pool))
				j := (i + 1 + rng.Intn(len(pool)-1)) % len(pool)
				return []string{pool[i], pool[j]}
			},
		},
	}
}

// labelSpec models Table 2: per-label inclusion probabilities for the
// names a certificate covers, derived from the published counts
// (count/61.1M * 0.95, so www lands at its observed share).
type labelSpec struct {
	label string
	prob  float64
}

// cpanelProb is the fraction of domains on cPanel-style hosting, which
// auto-issues certificates covering the management-interface names the
// paper highlights (webdisk, cpanel, webmail; "could be interesting
// targets for password attacks").
const cpanelProb = 0.131

// cpanelAutodiscoverProb adds autodiscover to a cPanel set.
const cpanelAutodiscoverProb = 0.42

// independentLabels are drawn per-domain, independently, outside the
// cPanel cluster. Probabilities are calibrated to Table 2 counts.
var independentLabels = []labelSpec{
	{"mail", 0.090}, // remainder beyond the cPanel cluster's mail
	{"m", 0.0048},
	{"shop", 0.0047},
	{"whm", 0.0044},
	{"dev", 0.0040},
	{"remote", 0.0039},
	{"test", 0.0039},
	{"api", 0.0037},
	{"blog", 0.0037},
	{"secure", 0.0027},
	{"admin", 0.0025},
	{"mobile", 0.0024},
	{"server", 0.0023},
	{"cloud", 0.0022},
	{"smtp", 0.0022},
	{"vpn", 0.0012},
	{"staging", 0.0010},
	{"owncloud", 0.0008},
	{"citrix", 0.0006},
	{"autoconfig", 0.0006},
}

// suffixLabelAffinity boosts one label per public suffix, reproducing the
// Section 4.2 observation that the most common label differs by suffix
// (git for .tech, autoconfig for .email, api for .cloud, ftp for .design,
// sip for .gov, dialin for .gov.uk).
var suffixLabelAffinity = map[string]string{
	"tech":   "git",
	"email":  "autoconfig",
	"cloud":  "api",
	"design": "ftp",
	"gov":    "sip",
	"gov.uk": "dialin",
}

// suffixAffinityProb is the chance an affinity label is added for domains
// under its suffix. It exceeds affinityWWWProb so the affinity label is
// the suffix's most common one, as Section 4.2 observes.
const (
	suffixAffinityProb = 0.70
	affinityWWWProb    = 0.50
)

// wwwProb is the chance a certificate covers www.<domain>.
const wwwProb = 0.95

// rarePool supplies the long tail of uncommon labels real certificates
// carry (internal hostnames, product names). They diversify the census's
// distinct-label set, which drives the low corpus/Sonar label overlap of
// Section 4.1 (21%): public forward-DNS lists know the common labels but
// not this tail.
var rarePool = buildRarePool()

func buildRarePool() []string {
	pool := []string{
		"ns1", "ns2", "gw", "portal", "crm", "erp", "jira", "wiki",
		"intranet", "extranet", "git2", "ftp2", "mx1", "mx2", "db",
		"backup", "monitor", "grafana", "kibana", "proxy", "relay",
		"sso", "ldap", "radius", "voip", "pbx", "cam", "iot", "nas",
		"print", "wsus", "exchange", "lync", "sharepoint", "tfs",
	}
	for i := 0; i < 60; i++ {
		pool = append(pool, fmt.Sprintf("host-%02d", i))
	}
	return pool
}

// pRare is the chance a certificate carries one rare-tail label.
const pRare = 0.03

// NamesForDomain draws the DNS name set one certificate covers for a
// registrable domain, per the Table 2 label model. The bare domain is
// always included; suffix is the domain's public suffix. Callers that
// want a stable name set per domain (the timeline, which re-issues for
// the same domains repeatedly) must pass a domain-seeded rng.
func NamesForDomain(rng *rand.Rand, domain, suffix string) []string {
	names := []string{domain}
	affinity, hasAffinity := suffixLabelAffinity[suffix]
	wp := wwwProb
	if hasAffinity {
		// Affinity suffixes are developer/service TLDs where www is less
		// universal and the signature service name dominates.
		wp = affinityWWWProb
	}
	if rng.Float64() < wp {
		names = append(names, "www."+domain)
	}
	if rng.Float64() < cpanelProb {
		names = append(names, "mail."+domain, "webdisk."+domain, "webmail."+domain, "cpanel."+domain)
		if rng.Float64() < cpanelAutodiscoverProb {
			names = append(names, "autodiscover."+domain)
		}
	}
	for _, ls := range independentLabels {
		if rng.Float64() < ls.prob {
			names = append(names, ls.label+"."+domain)
		}
	}
	if hasAffinity && rng.Float64() < suffixAffinityProb {
		names = append(names, affinity+"."+domain)
	}
	if rng.Float64() < pRare {
		names = append(names, rarePool[rng.Intn(len(rarePool))]+"."+domain)
	}
	return names
}

// suffixShare is the registrable-domain suffix distribution of the
// synthetic population, loosely following zone-file sizes (.com dominant)
// while covering every suffix the analyses reference.
var suffixShare = []struct {
	suffix string
	weight float64
}{
	{"com", 0.46}, {"net", 0.07}, {"org", 0.06}, {"de", 0.06},
	{"co.uk", 0.04}, {"ru", 0.03}, {"nl", 0.025}, {"fr", 0.02},
	{"it", 0.02}, {"com.br", 0.02}, {"com.au", 0.015}, {"pl", 0.015},
	{"info", 0.015}, {"io", 0.012}, {"co", 0.01}, {"biz", 0.008},
	{"es", 0.008}, {"se", 0.008}, {"ch", 0.008}, {"at", 0.007},
	{"be", 0.007}, {"cz", 0.007}, {"jp", 0.007}, {"cn", 0.007},
	{"in", 0.006}, {"me", 0.005}, {"tv", 0.004}, {"xyz", 0.004},
	{"tech", 0.004}, {"email", 0.003}, {"cloud", 0.003}, {"design", 0.002},
	{"gov", 0.002}, {"gov.uk", 0.002}, {"gov.au", 0.002},
	{"ga", 0.003}, {"tk", 0.004}, {"ml", 0.003}, {"cf", 0.002}, {"gq", 0.002},
	{"bid", 0.002}, {"review", 0.002}, {"live", 0.002}, {"money", 0.001},
	{"site", 0.003}, {"online", 0.003}, {"top", 0.003}, {"club", 0.002},
	{"shop", 0.002}, {"app", 0.002},
}

// SuffixFor deterministically assigns a public suffix to domain index i.
func SuffixFor(rng *rand.Rand) string {
	p := rng.Float64()
	var cum float64
	for _, s := range suffixShare {
		cum += s.weight
		if p < cum {
			return s.suffix
		}
	}
	return "com"
}

// DomainName generates the registrable-domain label for index i:
// pronounceable, deterministic, unique per index.
func DomainName(i int) string {
	consonants := "bcdfghklmnprstvz"
	vowels := "aeiou"
	var b []byte
	n := i
	for len(b) < 8 {
		b = append(b, consonants[n%len(consonants)])
		n /= len(consonants)
		b = append(b, vowels[n%len(vowels)])
		n /= len(vowels)
	}
	return string(b)
}
