package ecosystem

import (
	"math/rand"
	"testing"
	"time"
)

func TestClockBasics(t *testing.T) {
	c := NewClock(Date(2018, 4, 1))
	if !c.Now().Equal(Date(2018, 4, 1)) {
		t.Fatal("initial time")
	}
	c.Advance(36 * time.Hour)
	if !c.Now().Equal(Date(2018, 4, 2).Add(12 * time.Hour)) {
		t.Fatal("advance")
	}
	c.Set(Date(2017, 1, 1))
	if !c.Now().Equal(Date(2017, 1, 1)) {
		t.Fatal("set")
	}
}

func TestRateModelShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	le := RateModel{Start: Date(2018, 3, 8), Base: 2.3e6, RampStart: Date(2018, 3, 8), RampRate: 2.3e6}
	if r := le.Rate(Date(2018, 2, 1), rng); r != 0 {
		t.Fatalf("LE before start: %v", r)
	}
	if r := le.Rate(Date(2018, 4, 1), rng); r != 2.3e6 {
		t.Fatalf("LE after ramp: %v", r)
	}

	sc := RateModel{Start: Date(2015, 9, 1), End: Date(2017, 10, 1), Base: 1000}
	if r := sc.Rate(Date(2018, 1, 1), rng); r != 0 {
		t.Fatalf("StartCom after end: %v", r)
	}
	if r := sc.Rate(Date(2016, 1, 1), rng); r != 1000 {
		t.Fatalf("StartCom active: %v", r)
	}

	dg := RateModel{Start: Date(2015, 3, 1), Base: 8000, GrowthPerYear: 2.2}
	early := dg.Rate(Date(2015, 6, 1), rng)
	late := dg.Rate(Date(2017, 6, 1), rng)
	if late <= early*3 {
		t.Fatalf("DigiCert growth: early=%v late=%v", early, late)
	}
}

func TestRateModelBursts(t *testing.T) {
	m := RateModel{Start: Date(2016, 1, 1), Base: 100, BurstProb: 0.5, BurstFactor: 10}
	rng := rand.New(rand.NewSource(3))
	seenBurst, seenBase := false, false
	for i := 0; i < 100; i++ {
		r := m.Rate(Date(2016, 6, 1), rng)
		if r == 1000 {
			seenBurst = true
		}
		if r == 100 {
			seenBase = true
		}
	}
	if !seenBurst || !seenBase {
		t.Fatalf("burst=%v base=%v", seenBurst, seenBase)
	}
}

func TestNamesForDomainModel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	counts := map[string]int{}
	const draws = 20000
	for i := 0; i < draws; i++ {
		for _, n := range NamesForDomain(rng, "example.com", "com") {
			if n == "example.com" {
				continue
			}
			label := n[:len(n)-len(".example.com")]
			counts[label]++
		}
	}
	// www dominates (~95%).
	if p := float64(counts["www"]) / draws; p < 0.93 || p > 0.97 {
		t.Fatalf("www share = %v", p)
	}
	// mail is the clear number two (cpanel cluster + independent draw).
	if counts["mail"] <= counts["webdisk"] {
		t.Fatalf("mail=%d webdisk=%d", counts["mail"], counts["webdisk"])
	}
	// The cPanel cluster is correlated: webdisk ≈ cpanel ≈ webmail.
	ratio := float64(counts["webdisk"]) / float64(counts["cpanel"])
	if ratio < 0.9 || ratio > 1.1 {
		t.Fatalf("cpanel cluster decorrelated: webdisk=%d cpanel=%d", counts["webdisk"], counts["cpanel"])
	}
	// autodiscover is a strict subset of the cluster.
	if counts["autodiscover"] >= counts["cpanel"] {
		t.Fatalf("autodiscover=%d cpanel=%d", counts["autodiscover"], counts["cpanel"])
	}
	// Tail labels exist but are far below www.
	if counts["smtp"] == 0 || counts["smtp"] > counts["www"]/20 {
		t.Fatalf("smtp = %d (www = %d)", counts["smtp"], counts["www"])
	}
}

func TestNamesForDomainSuffixAffinity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	git := 0
	const draws = 5000
	for i := 0; i < draws; i++ {
		for _, n := range NamesForDomain(rng, "startup.tech", "tech") {
			if n == "git.startup.tech" {
				git++
			}
		}
	}
	if p := float64(git) / draws; p < 0.6 || p > 0.8 {
		t.Fatalf("git affinity on .tech = %v, want ≈0.70", p)
	}
	// The affinity label beats www on its suffix (Section 4.2: git is the
	// most common label for .tech).
	www := 0
	for i := 0; i < draws; i++ {
		for _, n := range NamesForDomain(rng, "another.tech", "tech") {
			if n == "www.another.tech" {
				www++
			}
		}
	}
	if www >= git {
		t.Fatalf("www (%d) >= git (%d) on .tech", www, git)
	}
	// No git affinity outside .tech.
	git = 0
	for i := 0; i < draws; i++ {
		for _, n := range NamesForDomain(rng, "startup.com", "com") {
			if n == "git.startup.com" {
				git++
			}
		}
	}
	if git != 0 {
		t.Fatalf("git leaked to .com: %d", git)
	}
}

func TestDomainNameDeterministicUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 5000; i++ {
		n := DomainName(i)
		if seen[n] {
			t.Fatalf("duplicate domain name %q at %d", n, i)
		}
		seen[n] = true
	}
	if DomainName(42) != DomainName(42) {
		t.Fatal("not deterministic")
	}
}

func TestWorldConstruction(t *testing.T) {
	w, err := New(Config{Seed: 1, NumDomains: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Logs) != 15 || len(w.LogNames) != 15 {
		t.Fatalf("logs = %d", len(w.Logs))
	}
	if len(w.CAs) != 6 {
		t.Fatalf("CAs = %d", len(w.CAs))
	}
	if len(w.Domains) != 100 {
		t.Fatalf("domains = %d", len(w.Domains))
	}
	// Logs carry Chrome inclusion dates (Table 1 annotation).
	if w.Logs[LogGooglePilot].ChromeInclusionDate() != Date(2014, 6, 1) {
		t.Fatal("Pilot inclusion date")
	}
}

func TestWorldDeterminism(t *testing.T) {
	run := func() uint64 {
		w, err := New(Config{
			Seed:          42,
			Scale:         1e-4,
			TimelineStart: Date(2018, 3, 1),
			TimelineEnd:   Date(2018, 3, 11),
			NumDomains:    500,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := w.RunTimeline(nil); err != nil {
			t.Fatal(err)
		}
		return w.TotalEntries()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
	if a == 0 {
		t.Fatal("no entries in March 2018 window")
	}
}

func TestTimelineShapes(t *testing.T) {
	w, err := New(Config{
		Seed:          7,
		Scale:         1e-4,
		TimelineStart: Date(2018, 2, 20),
		TimelineEnd:   Date(2018, 4, 10),
		NumDomains:    1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	days := 0
	if err := w.RunTimeline(func(time.Time) { days++ }); err != nil {
		t.Fatal(err)
	}
	if days != 49 {
		t.Fatalf("days = %d", days)
	}
	h, err := w.HarvestLogs(Date(2018, 4, 1), Date(2018, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	// Let's Encrypt switch-on: zero before March 8, dominant after.
	_, series := h.CumulativeByOrg()
	le := series[CALetsEncrypt]
	if le == nil {
		t.Fatal("no LE series")
	}
	var leTotal, allTotal float64
	for org, s := range series {
		if len(s) == 0 {
			continue
		}
		allTotal += s[len(s)-1]
		if org == CALetsEncrypt {
			leTotal = s[len(s)-1]
		}
	}
	if leTotal/allTotal < 0.5 {
		t.Fatalf("LE share after March = %v, want dominant", leTotal/allTotal)
	}
	// Nimbus2018 should be among the largest logs (LE load concentration).
	bySize := w.LogsBySize()
	topTwo := map[string]bool{bySize[0]: true, bySize[1]: true}
	if !topTwo[LogNimbus2018] {
		t.Fatalf("Nimbus2018 not in top-2 logs: %v", bySize[:4])
	}
	// Heatmap sparsity: LE publishes to few logs.
	leLogs := h.PrecertsByOrgLog[CALetsEncrypt]
	if leLogs == nil {
		t.Fatal("no LE April heatmap row")
	}
	if leLogs.Len() > 5 {
		t.Fatalf("LE spread over %d logs, want few", leLogs.Len())
	}
	if h.TotalPrecerts == 0 || h.NameSet.Len() == 0 {
		t.Fatal("empty harvest")
	}
}

func TestNimbusOverloadDropsSubmissions(t *testing.T) {
	// With a tiny Nimbus capacity, the timeline still completes and the
	// log records rejections (the Section 2 incident shape).
	w, err := New(Config{
		Seed:           3,
		Scale:          1e-4,
		TimelineStart:  Date(2018, 3, 8),
		TimelineEnd:    Date(2018, 3, 12),
		NumDomains:     200,
		NimbusCapacity: 0.0001,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RunTimeline(nil); err != nil {
		t.Fatal(err)
	}
	if w.Logs[LogNimbus2018].Rejected() == 0 {
		t.Fatal("overloaded Nimbus rejected nothing")
	}
}

func TestSuffixForDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	counts := map[string]int{}
	for i := 0; i < 20000; i++ {
		counts[SuffixFor(rng)]++
	}
	if p := float64(counts["com"]) / 20000; p < 0.40 || p > 0.52 {
		t.Fatalf("com share = %v", p)
	}
	if counts["tk"] == 0 || counts["gov.uk"] == 0 {
		t.Fatal("tail suffixes unrepresented")
	}
}

// The sparse early timeline is mostly empty days (no CA issues anything
// at simulation scale). The pipelined replay must flow such days
// through the construct → commit stages without tripping on the absent
// preps, and still publish an STH per log per day.
func TestTimelineEmptyDaysPipelined(t *testing.T) {
	for _, p := range []int{1, 4} {
		w, err := New(Config{
			Seed:          9,
			Scale:         1e-4,
			TimelineStart: Date(2015, 1, 1),
			TimelineEnd:   Date(2015, 1, 8),
			NumDomains:    500,
			Parallelism:   p,
		})
		if err != nil {
			t.Fatal(err)
		}
		days := 0
		if err := w.RunTimeline(func(time.Time) { days++ }); err != nil {
			t.Fatalf("parallelism %d: %v", p, err)
		}
		if days != 7 {
			t.Fatalf("parallelism %d: days = %d", p, days)
		}
		for _, name := range w.LogNames {
			sth := w.Logs[name].STH()
			if got := time.UnixMilli(int64(sth.TreeHead.Timestamp)).UTC(); !got.Equal(Date(2015, 1, 8)) {
				t.Fatalf("parallelism %d: %s final STH at %v", p, name, got)
			}
		}
	}
}
