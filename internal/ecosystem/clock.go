// Package ecosystem builds the synthetic CT world the experiments run in:
// the named logs of Table 1, the dominant CAs of Figure 1 with
// paper-calibrated issuance-rate models and log-selection policies, the
// subdomain-label model behind Table 2, a registrable-domain population,
// and the virtual clock that replays the 2015–2018 timeline
// deterministically.
//
// The harvest side of the package is a concurrent pipeline: HarvestLogs
// chunks every log's published entries into ranges, streams them
// lock-free via ctlog.Log.StreamEntries across Config.Parallelism
// workers (GOMAXPROCS by default), dedupes FQDNs in a sharded set, and
// merges the workers' private partial aggregates deterministically —
// harvest output is identical at any parallelism setting.
//
// The generation side fans out the same way on the deterministic
// fan-out layer in partition.go (index-range chunking, splitmix64
// seed-splitting, ordered merges): RunTimeline pipelines timeline days
// — day d+1 is planned and constructed on a lookahead goroutine while
// day d's submissions stage into the logs from all workers at once —
// and closes each day with one deterministic sequence+publish step per
// log, whose canonical batch order keeps log trees byte-identical at
// any worker count. The layer is shared by the tlsmon traffic replay
// and the scanner sweep.
package ecosystem

import (
	"sync"
	"time"
)

// Clock is a virtual clock shared by logs, CAs, monitors, and honeypots.
// Experiments advance it explicitly; nothing in the simulation reads the
// wall clock, which keeps every run reproducible.
type Clock struct {
	mu  sync.RWMutex
	now time.Time
}

// NewClock starts a clock at t.
func NewClock(t time.Time) *Clock {
	return &Clock{now: t.UTC()}
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Time {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.now
}

// Advance moves the clock forward by d.
func (c *Clock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Set jumps the clock to t (used when replaying sparse timelines).
func (c *Clock) Set(t time.Time) {
	c.mu.Lock()
	c.now = t.UTC()
	c.mu.Unlock()
}

// Date is shorthand for a UTC midnight.
func Date(y int, m time.Month, d int) time.Time {
	return time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
}
