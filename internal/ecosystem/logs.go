package ecosystem

import (
	"path/filepath"
	"strings"
	"time"

	"ctrise/internal/ctfront"
	"ctrise/internal/ctlog"
	"ctrise/internal/sct"
)

// Log names, matching Table 1 of the paper. Constants avoid typos in the
// CA policies and experiment assertions.
const (
	LogGooglePilot     = "Google Pilot log"
	LogSymantec        = "Symantec log"
	LogGoogleRocketeer = "Google Rocketeer log"
	LogDigiCert        = "DigiCert Log Server"
	LogGoogleSkydiver  = "Google Skydiver log"
	LogGoogleAviator   = "Google Aviator log"
	LogVenafi          = "Venafi log"
	LogDigiCert2       = "DigiCert Log Server 2"
	LogSymantecVega    = "Symantec Vega log"
	LogComodoMammoth   = "Comodo Mammoth CT log"
	LogNimbus2018      = "Cloudflare Nimbus2018 Log"
	LogGoogleIcarus    = "Google Icarus log"
	LogNimbus2020      = "Cloudflare Nimbus2020 Log"
	LogComodoSabre     = "Comodo Sabre CT log"
	LogCertlyIO        = "Certly.IO log"
)

// logSpec describes one named log.
type logSpec struct {
	name     string
	operator string
	chrome   time.Time // Chrome inclusion date (Table 1 annotation)
}

// logSpecs lists the Table 1 logs with their Chrome inclusion dates.
var logSpecs = []logSpec{
	{LogGooglePilot, "Google", Date(2014, 6, 1)},
	{LogSymantec, "Symantec", Date(2015, 9, 1)},
	{LogGoogleRocketeer, "Google", Date(2015, 4, 1)},
	{LogDigiCert, "DigiCert", Date(2015, 1, 1)},
	{LogGoogleSkydiver, "Google", Date(2016, 11, 1)},
	{LogGoogleAviator, "Google", Date(2014, 6, 1)},
	{LogVenafi, "Venafi", Date(2015, 10, 1)},
	{LogDigiCert2, "DigiCert", Date(2017, 6, 1)},
	{LogSymantecVega, "Symantec", Date(2016, 2, 1)},
	{LogComodoMammoth, "Comodo", Date(2017, 7, 1)},
	{LogNimbus2018, "Cloudflare", Date(2018, 3, 1)},
	{LogGoogleIcarus, "Google", Date(2016, 11, 1)},
	{LogNimbus2020, "Cloudflare", Date(2018, 3, 1)},
	{LogComodoSabre, "Comodo", Date(2017, 7, 1)},
	{LogCertlyIO, "Certly", Date(2015, 4, 1)},
}

// buildLogs instantiates the named logs on the shared clock. Logs use the
// simulation fast signer; nimbusCapacity, if positive, rate-limits the
// Nimbus2018 log so the overload incident of Section 2 can be reproduced.
// A non-empty dataDir makes every log durable in its own subdirectory
// (resuming from existing state on reopen), with WAL fsyncs batched at
// the sequencing barriers — the replay's natural durability unit.
func buildLogs(clock *Clock, nimbusCapacity float64, dataDir string, tileSpan int) (map[string]*ctlog.Log, error) {
	out := make(map[string]*ctlog.Log, len(logSpecs))
	for _, spec := range logSpecs {
		cfg := ctlog.Config{
			Name:                spec.name,
			Operator:            spec.operator,
			Signer:              sct.NewFastSigner(spec.name),
			Clock:               clock.Now,
			MaxGetEntries:       1000,
			ChromeInclusionDate: spec.chrome,
		}
		if spec.name == LogNimbus2018 && nimbusCapacity > 0 {
			cfg.CapacityPerSecond = nimbusCapacity
		}
		var (
			l   *ctlog.Log
			err error
		)
		if dataDir != "" {
			cfg.Sync = ctlog.SyncAtSequence
			cfg.TileSpan = tileSpan
			l, err = ctlog.Open(filepath.Join(dataDir, logDirName(spec.name)), cfg)
		} else {
			l, err = ctlog.New(cfg)
		}
		if err != nil {
			return nil, err
		}
		out[spec.name] = l
	}
	return out, nil
}

// buildFrontend assembles the multi-log submission frontend over every
// world log, in Table 1 order, with the policy metadata the Chrome
// rules need (operator, Google-operated). The frontend shares the
// world's seed (deterministic routing) and virtual clock (backoff
// bookkeeping runs on replay time), and — because LocalLog exposes each
// wrapped log's verifier — every SCT entering a replay bundle is
// signature-verified. Hedging stays off: it trades determinism for
// tail latency, and the replay's contract is byte-identical trees at
// any parallelism. Load-aware routing is on; weights commit at the
// end-of-day barrier (finishDay), so they too are replay-deterministic.
func buildFrontend(w *World) (*ctfront.Frontend, error) {
	specs := make([]ctfront.BackendSpec, 0, len(w.LogNames))
	for _, name := range w.LogNames {
		l := w.Logs[name]
		specs = append(specs, ctfront.BackendSpec{
			Backend:        ctfront.LocalLog{Log: l},
			Operator:       l.Operator(),
			GoogleOperated: l.Operator() == "Google",
		})
	}
	return ctfront.New(ctfront.Config{
		Backends: specs,
		Seed:     w.Cfg.Seed,
		Clock:    w.Clock.Now,
	})
}

// logDirName maps a display name ("Google Pilot log") to a filesystem-
// safe directory name ("google-pilot-log").
func logDirName(name string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			return r
		case r >= 'A' && r <= 'Z':
			return r + ('a' - 'A')
		default:
			return '-'
		}
	}, name)
}

// Close closes every log, flushing final snapshots on durable worlds.
// In-memory worlds close trivially. The first error wins; all logs are
// closed regardless.
func (w *World) Close() error {
	var firstErr error
	for _, name := range w.LogNames {
		if err := w.Logs[name].Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}
