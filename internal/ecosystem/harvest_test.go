package ecosystem

import (
	"testing"
	"time"
)

// The harvester must count entries it cannot attribute (e.g. hand-
// submitted DER from outside the simulation) without crashing or
// polluting the per-CA series.
func TestHarvestToleratesForeignEntries(t *testing.T) {
	w, err := New(Config{
		Seed:          13,
		Scale:         1e-4,
		TimelineStart: Date(2018, 3, 8),
		TimelineEnd:   Date(2018, 3, 12),
		NumDomains:    300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RunTimeline(nil); err != nil {
		t.Fatal(err)
	}
	// Inject opaque entries directly into a log: one final cert, one
	// precert, neither in the synthetic codec.
	l := w.Logs[LogGooglePilot]
	if _, err := l.AddChain([]byte("\x30\x82raw der-ish bytes")); err != nil {
		t.Fatal(err)
	}
	var ikh [32]byte
	if _, err := l.AddPreChain(ikh, []byte("\x30\x82raw tbs bytes")); err != nil {
		t.Fatal(err)
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}

	h, err := w.HarvestLogs(Date(2018, 4, 1), Date(2018, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	if h.TotalFinal != 1 {
		t.Fatalf("foreign final certs = %d, want 1", h.TotalFinal)
	}
	if h.TotalPrecerts == 0 {
		t.Fatal("no precerts")
	}
	// The foreign precert is counted but attributed to no organization:
	// per-org day series only contain the simulation's six CAs.
	for _, org := range h.PrecertsByOrgDay.SeriesNames() {
		switch org {
		case CALetsEncrypt, CADigiCert, CAComodo, CAGlobalSign, CAStartCom, CAOther:
		default:
			t.Fatalf("unexpected org series %q", org)
		}
	}
}

// Harvest day series align with the virtual timeline: every logged day
// falls inside [TimelineStart, TimelineEnd).
func TestHarvestDaysWithinTimeline(t *testing.T) {
	w, err := New(Config{
		Seed:          14,
		Scale:         1e-4,
		TimelineStart: Date(2018, 3, 8),
		TimelineEnd:   Date(2018, 3, 15),
		NumDomains:    300,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RunTimeline(nil); err != nil {
		t.Fatal(err)
	}
	h, err := w.HarvestLogs(Date(2018, 4, 1), Date(2018, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	days, _ := h.CumulativeByOrg()
	for _, d := range days {
		parsed, err := time.Parse("2006-01-02", d)
		if err != nil {
			t.Fatal(err)
		}
		if parsed.Before(Date(2018, 3, 8)) || !parsed.Before(Date(2018, 3, 15)) {
			t.Fatalf("day %s outside timeline", d)
		}
	}
	// Cumulative series are monotone.
	_, series := h.CumulativeByOrg()
	for org, s := range series {
		for i := 1; i < len(s); i++ {
			if s[i] < s[i-1] {
				t.Fatalf("%s cumulative decreases at %d", org, i)
			}
		}
	}
}
