package ecosystem

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"ctrise/internal/auditor"
	"ctrise/internal/ctclient"
)

// TestAuditorFollowsEcosystemClean runs the always-on auditor against
// every log of a replayed ecosystem: all 15 logs served over real HTTP,
// audited after each simulated day. Honest logs under organic growth —
// uneven rates, idle days, logs that never receive a cert — must
// produce zero alerts, and the auditor's verified frontier must land on
// each log's final published head.
func TestAuditorFollowsEcosystemClean(t *testing.T) {
	w, err := New(Config{
		Seed:          11,
		Scale:         1e-4,
		TimelineStart: Date(2018, 3, 1),
		TimelineEnd:   Date(2018, 3, 15),
		NumDomains:    500,
	})
	if err != nil {
		t.Fatal(err)
	}

	cfg := auditor.Config{
		SpotCheckEvery: 4,
		RetryBase:      time.Millisecond,
		Clock:          w.Clock.Now,
	}
	for _, name := range w.LogNames {
		l := w.Logs[name]
		srv := httptest.NewServer(l.Handler())
		defer srv.Close()
		cfg.Logs = append(cfg.Logs, auditor.LogConfig{
			Name:   name,
			Client: ctclient.New(srv.URL, l.Verifier()),
			MMD:    24 * time.Hour,
		})
	}
	a, err := auditor.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()

	ctx := context.Background()
	if err := w.RunTimeline(func(time.Time) {
		if err := a.PollOnce(ctx); err != nil {
			t.Fatal(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := a.PollOnce(ctx); err != nil {
		t.Fatal(err)
	}

	if alerts := a.Alerts(); len(alerts) != 0 {
		t.Fatalf("honest ecosystem raised alerts: %v", alerts)
	}
	var total uint64
	for _, name := range w.LogNames {
		want := w.Logs[name].TreeSize()
		sth, ok := a.VerifiedSTH(name)
		if want == 0 {
			// A log that never published past empty has nothing to verify.
			continue
		}
		if !ok || sth.TreeHead.TreeSize != want {
			t.Errorf("%s: verified size %d (ok=%v), log is at %d", name, sth.TreeHead.TreeSize, ok, want)
		}
		if got := a.EntriesSeen(name); got != want {
			t.Errorf("%s: streamed %d entries, log holds %d", name, got, want)
		}
		total += want
	}
	if total == 0 {
		t.Fatal("timeline produced no entries; the test audited nothing")
	}
	t.Logf("audited %d entries across %d logs, zero alerts", total, len(w.LogNames))
}
