package ecosystem

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"

	"ctrise/internal/ca"
	"ctrise/internal/ctlog"
	"ctrise/internal/psl"
	"ctrise/internal/sct"
)

// Config parameterizes a World.
type Config struct {
	// Seed drives all randomness. Same seed, same world.
	Seed int64
	// Scale shrinks paper-scale counts (e.g. 2.3M certs/day) to
	// simulation scale. Default 1e-4.
	Scale float64
	// TimelineStart/TimelineEnd bound the Figure 1 replay. Defaults:
	// 2015-01-01 to 2018-05-01.
	TimelineStart time.Time
	TimelineEnd   time.Time
	// NumDomains is the registrable-domain population size. Default 20000.
	NumDomains int
	// NimbusCapacity, if positive, rate-limits the Nimbus2018 log
	// (submissions/second of virtual time) to reproduce the overload
	// incident.
	NimbusCapacity float64
	// Parallelism bounds the worker count of the harvest-and-analysis
	// data plane (HarvestLogs). 0 means GOMAXPROCS; 1 forces the
	// sequential path. Output is identical at every setting.
	Parallelism int
}

// Domain is one registrable domain of the population.
type Domain struct {
	Name   string // full registrable domain, e.g. "bacodu.com"
	Suffix string // its public suffix
}

// World is the assembled synthetic CT ecosystem.
type World struct {
	Cfg   Config
	Clock *Clock
	// Logs are the Table 1 logs by name.
	Logs map[string]*ctlog.Log
	// LogNames is the stable, Table 1-ordered name list.
	LogNames []string
	// CAs maps organization name to its issuing CA.
	CAs map[string]*ca.CA
	// Specs are the CA rate models and policies.
	Specs []CASpec
	// PSL is the public suffix list in force.
	PSL *psl.List
	// Domains is the registrable-domain population ("our domain list" in
	// Section 4.1).
	Domains []Domain

	rng *rand.Rand
}

// New assembles a world.
func New(cfg Config) (*World, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1e-4
	}
	if cfg.TimelineStart.IsZero() {
		cfg.TimelineStart = Date(2015, 1, 1)
	}
	if cfg.TimelineEnd.IsZero() {
		cfg.TimelineEnd = Date(2018, 5, 1)
	}
	if cfg.NumDomains <= 0 {
		cfg.NumDomains = 20000
	}
	w := &World{
		Cfg:   cfg,
		Clock: NewClock(cfg.TimelineStart),
		PSL:   psl.Default(),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	logs, err := buildLogs(w.Clock, cfg.NimbusCapacity)
	if err != nil {
		return nil, err
	}
	w.Logs = logs
	for _, spec := range logSpecs {
		w.LogNames = append(w.LogNames, spec.name)
	}

	w.Specs = DefaultCASpecs()
	w.CAs = make(map[string]*ca.CA, len(w.Specs))
	for _, spec := range w.Specs {
		// The per-issuance policy overrides these defaults, but the CA
		// needs at least one configured log.
		anyLog := []ca.LogSubmitter{w.Logs[LogGooglePilot]}
		c, err := ca.New(ca.Config{
			Name:  spec.Org + " Authority",
			Org:   spec.Org,
			Logs:  anyLog,
			Clock: w.Clock.Now,
		})
		if err != nil {
			return nil, err
		}
		w.CAs[spec.Org] = c
	}

	w.Domains = make([]Domain, cfg.NumDomains)
	for i := range w.Domains {
		suffix := SuffixFor(w.rng)
		w.Domains[i] = Domain{Name: DomainName(i) + "." + suffix, Suffix: suffix}
	}
	return w, nil
}

// submitters resolves log names to LogSubmitters.
func (w *World) submitters(names []string) []ca.LogSubmitter {
	out := make([]ca.LogSubmitter, 0, len(names))
	for _, n := range names {
		if l, ok := w.Logs[n]; ok {
			out = append(out, l)
		}
	}
	return out
}

// RandomDomain draws a domain from the population.
func (w *World) RandomDomain(rng *rand.Rand) Domain {
	return w.Domains[rng.Intn(len(w.Domains))]
}

// DomainRNG returns a rand.Rand seeded deterministically by the world
// seed and the domain name, so per-domain properties are stable across
// issuances.
func (w *World) DomainRNG(domain string) *rand.Rand {
	h := fnv.New64a()
	h.Write([]byte(domain))
	return rand.New(rand.NewSource(w.Cfg.Seed ^ int64(h.Sum64())))
}

// RunTimeline replays the issuance timeline day by day: every CA issues
// at its model's (scaled) rate through its log policy, names drawn from
// the domain population under the Table 2 label model. STHs are published
// at the end of each day. onDay, if non-nil, observes each completed day.
func (w *World) RunTimeline(onDay func(day time.Time)) error {
	day := w.Cfg.TimelineStart
	for day.Before(w.Cfg.TimelineEnd) {
		// Noon, so all issuance timestamps fall on the correct day.
		w.Clock.Set(day.Add(12 * time.Hour))
		for _, spec := range w.Specs {
			// Day- and CA-seeded rng so per-day burst draws are stable
			// regardless of other CAs' consumption of randomness.
			dayRng := rand.New(rand.NewSource(w.Cfg.Seed ^ day.Unix() ^ int64(len(spec.Org))))
			rate := spec.Model.Rate(day, dayRng) * w.Cfg.Scale
			n := int(rate)
			if dayRng.Float64() < rate-float64(n) {
				n++
			}
			caInst := w.CAs[spec.Org]
			for i := 0; i < n; i++ {
				domain := w.RandomDomain(dayRng)
				// A domain's certified name set is a stable property:
				// re-issuances for the same domain cover the same names,
				// so the deduplicated corpus keeps the Table 2 label
				// ratios instead of saturating toward the union.
				names := NamesForDomain(w.DomainRNG(domain.Name), domain.Name, domain.Suffix)
				_, err := caInst.Issue(ca.Request{
					Names:     names,
					EmbedSCTs: !day.Before(Date(2018, 1, 1)),
					Logs:      w.submitters(spec.Policy(dayRng)),
				})
				if err != nil {
					// Overloaded logs drop the submission; the CA retries
					// nothing, which is what the Nimbus incident looked
					// like from the outside. All other errors are fatal.
					if errors.Is(err, ctlog.ErrOverloaded) {
						continue
					}
					return fmt.Errorf("ecosystem: %s on %s: %w", spec.Org, day.Format("2006-01-02"), err)
				}
			}
		}
		w.Clock.Set(day.Add(24 * time.Hour))
		for _, l := range w.Logs {
			if _, err := l.PublishSTH(); err != nil {
				return err
			}
		}
		if onDay != nil {
			onDay(day)
		}
		day = day.AddDate(0, 0, 1)
	}
	return nil
}

// Verifiers returns the SCT verifier map over all logs, as the Section
// 3.4 detector needs.
func (w *World) Verifiers() map[sct.LogID]sct.SCTVerifier {
	out := make(map[sct.LogID]sct.SCTVerifier, len(w.Logs))
	for _, l := range w.Logs {
		out[l.LogID()] = l.Verifier()
	}
	return out
}

// TotalEntries sums the tree sizes of all logs.
func (w *World) TotalEntries() uint64 {
	var total uint64
	for _, l := range w.Logs {
		total += l.TreeSize()
	}
	return total
}

// LogsBySize returns log names sorted by tree size, largest first —
// useful for assertions about load concentration.
func (w *World) LogsBySize() []string {
	names := append([]string(nil), w.LogNames...)
	sort.Slice(names, func(i, j int) bool {
		si, sj := w.Logs[names[i]].TreeSize(), w.Logs[names[j]].TreeSize()
		if si != sj {
			return si > sj
		}
		return names[i] < names[j]
	})
	return names
}
