package ecosystem

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"time"

	"ctrise/internal/ca"
	"ctrise/internal/ctfront"
	"ctrise/internal/ctlog"
	"ctrise/internal/psl"
	"ctrise/internal/sct"
)

// Config parameterizes a World.
type Config struct {
	// Seed drives all randomness. Same seed, same world.
	Seed int64
	// Scale shrinks paper-scale counts (e.g. 2.3M certs/day) to
	// simulation scale. Default 1e-4.
	Scale float64
	// TimelineStart/TimelineEnd bound the Figure 1 replay. Defaults:
	// 2015-01-01 to 2018-05-01.
	TimelineStart time.Time
	TimelineEnd   time.Time
	// NumDomains is the registrable-domain population size. Default 20000.
	NumDomains int
	// NimbusCapacity, if positive, rate-limits the Nimbus2018 log
	// (submissions/second of virtual time) to reproduce the overload
	// incident.
	NimbusCapacity float64
	// Parallelism bounds the worker count of both data planes: the
	// issuance replay (RunTimeline) and the harvest-and-analysis crawl
	// (HarvestLogs). 0 means GOMAXPROCS; 1 forces the sequential paths.
	// Output is identical at every setting.
	Parallelism int
	// DataDir, when set, makes every log durable: each gets a WAL +
	// snapshot subdirectory under DataDir and can be reopened after a
	// crash or restart mid-timeline (ctlog.Open). Logs run with
	// SyncAtSequence — entries fsync at the per-day seal/publish
	// barriers, not per submission — because the replay's durability
	// unit is the day batch. Empty means in-memory logs (the default).
	DataDir string
	// TileSpan overrides the sealed-tile span of durable logs (entries
	// per immutable on-disk tile; power of two ≥ 2, 0 = ctlog default).
	// Only meaningful with DataDir: in-memory logs never seal. Small
	// spans force frequent sealing and are the equivalence tests' way of
	// exercising the tiled path at replay scale.
	TileSpan int
	// UseFrontend routes every timeline issuance through a multi-log
	// submission frontend (internal/ctfront) over all of the world's
	// logs instead of each CA's own log policy: the frontend picks a
	// Chrome-CT-policy-compliant log set per certificate under a
	// deterministic, Seed-derived ranking, so the replay exercises the
	// policy engine and the fan-out routing end to end while per-log
	// trees stay byte-identical at every Parallelism setting. Frontend
	// mode is incompatible with NimbusCapacity (the overload replay
	// couples a CA's submissions across logs, which policy-driven
	// routing cannot reproduce).
	UseFrontend bool
}

// Domain is one registrable domain of the population.
type Domain struct {
	Name   string // full registrable domain, e.g. "bacodu.com"
	Suffix string // its public suffix
}

// World is the assembled synthetic CT ecosystem.
type World struct {
	Cfg   Config
	Clock *Clock
	// Logs are the Table 1 logs by name.
	Logs map[string]*ctlog.Log
	// LogNames is the stable, Table 1-ordered name list.
	LogNames []string
	// CAs maps organization name to its issuing CA.
	CAs map[string]*ca.CA
	// Specs are the CA rate models and policies.
	Specs []CASpec
	// PSL is the public suffix list in force.
	PSL *psl.List
	// Domains is the registrable-domain population ("our domain list" in
	// Section 4.1).
	Domains []Domain
	// Frontend is the multi-log submission frontend over all logs; nil
	// unless Config.UseFrontend is set.
	Frontend *ctfront.Frontend

	rng *rand.Rand
}

// New assembles a world.
func New(cfg Config) (*World, error) {
	if cfg.Scale <= 0 {
		cfg.Scale = 1e-4
	}
	if cfg.TimelineStart.IsZero() {
		cfg.TimelineStart = Date(2015, 1, 1)
	}
	if cfg.TimelineEnd.IsZero() {
		cfg.TimelineEnd = Date(2018, 5, 1)
	}
	if cfg.NumDomains <= 0 {
		cfg.NumDomains = 20000
	}
	w := &World{
		Cfg:   cfg,
		Clock: NewClock(cfg.TimelineStart),
		PSL:   psl.Default(),
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	logs, err := buildLogs(w.Clock, cfg.NimbusCapacity, cfg.DataDir, cfg.TileSpan)
	if err != nil {
		return nil, err
	}
	w.Logs = logs
	for _, spec := range logSpecs {
		w.LogNames = append(w.LogNames, spec.name)
	}
	if cfg.UseFrontend {
		if cfg.NimbusCapacity > 0 {
			return nil, errors.New("ecosystem: UseFrontend is incompatible with NimbusCapacity (overload coupling needs the per-CA sequential path)")
		}
		w.Frontend, err = buildFrontend(w)
		if err != nil {
			return nil, err
		}
	}

	w.Specs = DefaultCASpecs()
	w.CAs = make(map[string]*ca.CA, len(w.Specs))
	for _, spec := range w.Specs {
		// The per-issuance policy overrides these defaults, but the CA
		// needs at least one configured log.
		anyLog := []ca.LogSubmitter{w.Logs[LogGooglePilot]}
		c, err := ca.New(ca.Config{
			Name:  spec.Org + " Authority",
			Org:   spec.Org,
			Logs:  anyLog,
			Clock: w.Clock.Now,
		})
		if err != nil {
			return nil, err
		}
		w.CAs[spec.Org] = c
	}

	w.Domains = make([]Domain, cfg.NumDomains)
	for i := range w.Domains {
		suffix := SuffixFor(w.rng)
		w.Domains[i] = Domain{Name: DomainName(i) + "." + suffix, Suffix: suffix}
	}
	return w, nil
}

// submitters resolves log names to LogSubmitters.
func (w *World) submitters(names []string) []ca.LogSubmitter {
	out := make([]ca.LogSubmitter, 0, len(names))
	for _, n := range names {
		if l, ok := w.Logs[n]; ok {
			out = append(out, l)
		}
	}
	return out
}

// RandomDomain draws a domain from the population.
func (w *World) RandomDomain(rng *rand.Rand) Domain {
	return w.Domains[rng.Intn(len(w.Domains))]
}

// DomainRNG returns a rand.Rand seeded deterministically by the world
// seed and the domain name, so per-domain properties are stable across
// issuances. It is called once per issuance on the replay's hottest
// path, hence the O(1)-seeded source.
func (w *World) DomainRNG(domain string) *rand.Rand {
	return NewRand(DeriveSeed(w.Cfg.Seed, SaltString(domain)))
}

// minParallelDayIssuances is the day size below which the replay stages
// inline: fanning a handful of submissions out costs more in goroutine
// startup than it saves. The pre-2018 timeline is almost entirely such
// days; the March–May 2018 ramp (the bulk of the total work) is far
// above it.
const minParallelDayIssuances = 16

// issuancePlan is one planned certificate order of a timeline day: the
// dayRng draws are done, nothing is built or submitted yet.
type issuancePlan struct {
	names  []string
	policy []string
}

// dayWork is one fully constructed timeline day flowing through the
// plan/construct → commit pipeline.
type dayWork struct {
	day   time.Time
	plans [][]issuancePlan
	preps [][]*ca.Prepared
}

// RunTimeline replays the issuance timeline day by day: every CA issues
// at its model's (scaled) rate through its log policy, names drawn from
// the domain population under the Table 2 label model. Each log is
// sequenced and publishes an STH at the end of each day (the virtual
// MMD boundary). onDay, if non-nil, observes each completed day.
//
// With Config.Parallelism != 1 the replay is a two-stage pipeline. A
// lookahead goroutine plans day d+1's draws (per-(day, CA) seed-split
// RNGs) and constructs its certificates on workers — serial blocks
// reserved per CA up front, issuance time passed explicitly so the
// shared clock is untouched — while the commit stage stages day d's
// submissions into the logs from all workers at once and then runs one
// deterministic sequence+publish step per log. Staging order is
// irrelevant: the log sequencer integrates each day's batch in
// canonical (timestamp, identity-hash) order, so log contents — entry
// bytes and tree hashes — are identical at every parallelism setting
// and at any scheduling.
//
// The Nimbus overload replay (Config.NimbusCapacity > 0) couples
// submissions across logs — a rejected submission aborts the rest of its
// issuance — so it always runs the sequential in-line path.
//
// With Config.UseFrontend the commit stage ignores the CAs' per-plan
// log policies and submits each precertificate once to w.Frontend,
// which fans it out to a policy-compliant log set under the seed-
// derived deterministic ranking. Frontend routing is a pure function of
// the submission bytes, so the per-log trees remain byte-identical at
// every parallelism; the replay always runs the staged pipeline (the
// sequential per-CA Issue flow submits through CA-configured logs,
// which is exactly what frontend mode replaces).
func (w *World) RunTimeline(onDay func(day time.Time)) error {
	parallelism := w.Cfg.Parallelism
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	if w.Cfg.NimbusCapacity > 0 {
		parallelism = 1
	}
	// The staged commit only submits precertificates; a CA that also
	// logs final certificates needs the full per-issuance Issue flow to
	// stay equivalent, so its presence forces the sequential path too.
	// (World-built CAs never set it; this guards externally mutated
	// worlds.)
	for _, c := range w.CAs {
		if c.LogsFinalCerts() {
			if w.Frontend != nil {
				return errors.New("ecosystem: UseFrontend is incompatible with a CA that logs final certificates")
			}
			parallelism = 1
			break
		}
	}

	if parallelism == 1 && w.Frontend == nil {
		for day := w.Cfg.TimelineStart; day.Before(w.Cfg.TimelineEnd); day = day.AddDate(0, 0, 1) {
			// Noon, so all issuance timestamps fall on the correct day.
			w.Clock.Set(day.Add(12 * time.Hour))
			if err := w.issueDaySequential(day); err != nil {
				return err
			}
			if err := w.finishDay(day, onDay); err != nil {
				return err
			}
		}
		return nil
	}

	// Pipelined path. The unbuffered channel gives a lookahead of
	// exactly one day: the producer constructs day d+1 while the
	// consumer commits day d (the last serialization the per-day
	// barrier used to impose). Serial blocks are reserved inside
	// constructTimelineDay on the producer goroutine, so reservation
	// order follows day order and certificate bytes stay deterministic.
	//
	// The Parallelism budget is split between the two overlapping
	// stages (construction gets the larger half — certificate building
	// outweighs staging) so the pipeline never runs more than the
	// configured number of workers at once; worker counts never affect
	// output, only scheduling.
	constructWorkers := (parallelism + 1) / 2
	commitWorkers := parallelism - constructWorkers
	if commitWorkers < 1 {
		commitWorkers = 1
	}
	work := make(chan dayWork)
	done := make(chan struct{})
	defer close(done)
	var constructErr error
	go func() {
		defer close(work)
		for day := w.Cfg.TimelineStart; day.Before(w.Cfg.TimelineEnd); day = day.AddDate(0, 0, 1) {
			dw, err := w.constructTimelineDay(day, constructWorkers)
			if err != nil {
				constructErr = fmt.Errorf("ecosystem: planning %s: %w", day.Format("2006-01-02"), err)
				return
			}
			select {
			case work <- dw:
			case <-done:
				return
			}
		}
	}()
	for dw := range work {
		if err := w.commitTimelineDay(dw, commitWorkers); err != nil {
			return err
		}
		if err := w.finishDay(dw.day, onDay); err != nil {
			return err
		}
	}
	return constructErr
}

// finishDay advances the clock to the day boundary, sequences and
// publishes every log's STH, and notifies the observer. Publishing
// every log every day (touched or not) keeps STH timestamps advancing
// the way the pre-pipeline replay did. With a frontend in play this is
// also its weight-commit point: the day's submissions have all landed
// and every STH is published, so the load observations folded into
// routing weights here are identical at any parallelism — the next
// day's routing stays a deterministic function of committed state.
func (w *World) finishDay(day time.Time, onDay func(day time.Time)) error {
	w.Clock.Set(day.Add(24 * time.Hour))
	for _, name := range w.LogNames {
		if _, err := w.Logs[name].PublishSTH(); err != nil {
			return err
		}
	}
	if w.Frontend != nil {
		w.Frontend.CommitWeights()
	}
	if onDay != nil {
		onDay(day)
	}
	return nil
}

// planTimelineDay performs every dayRng draw of one (day, CA) pair,
// exactly in the order the sequential replay consumes them.
func (w *World) planTimelineDay(day time.Time, spec CASpec) []issuancePlan {
	// Day- and CA-seeded rng so per-day burst draws are stable
	// regardless of other CAs' consumption of randomness (and of which
	// worker plans the pair).
	dayRng := NewRand(DeriveSeed(w.Cfg.Seed, uint64(day.Unix()), SaltString(spec.Org)))
	rate := spec.Model.Rate(day, dayRng) * w.Cfg.Scale
	n := int(rate)
	if dayRng.Float64() < rate-float64(n) {
		n++
	}
	plans := make([]issuancePlan, n)
	for i := 0; i < n; i++ {
		domain := w.RandomDomain(dayRng)
		// A domain's certified name set is a stable property:
		// re-issuances for the same domain cover the same names,
		// so the deduplicated corpus keeps the Table 2 label
		// ratios instead of saturating toward the union.
		plans[i] = issuancePlan{
			names:  NamesForDomain(w.DomainRNG(domain.Name), domain.Name, domain.Suffix),
			policy: spec.Policy(dayRng),
		}
	}
	return plans
}

// issueDaySequential executes one day's issuances in (CA, order)
// sequence through the full Issue flow, exactly the pre-parallel
// replay. The clock is already at noon of the day. This is the only
// path that honours the overload coupling: an ErrOverloaded submission
// drops the rest of its issuance (the CA retries nothing, which is what
// the Nimbus incident looked like from the outside); all other errors
// are fatal. Submissions stage in plan order and integrate at the day's
// sequence step — the same canonical order the staged fan-out produces,
// which is what keeps the two paths byte-identical.
func (w *World) issueDaySequential(day time.Time) error {
	embed := !day.Before(Date(2018, 1, 1))
	for _, spec := range w.Specs {
		caInst := w.CAs[spec.Org]
		for _, pl := range w.planTimelineDay(day, spec) {
			_, err := caInst.Issue(ca.Request{
				Names:     pl.names,
				EmbedSCTs: embed,
				Logs:      w.submitters(pl.policy),
			})
			if err != nil {
				if errors.Is(err, ctlog.ErrOverloaded) {
					continue
				}
				return fmt.Errorf("ecosystem: %s on %s: %w", spec.Org, day.Format("2006-01-02"), err)
			}
		}
	}
	return nil
}

// constructTimelineDay runs the plan and construct phases of one day
// without touching the shared clock, so it can execute on the pipeline's
// lookahead goroutine while the previous day commits.
//
// Draws: each (day, CA) stream is private, so CAs plan concurrently.
// Construction: serial blocks are reserved per CA in spec order on the
// calling goroutine, so the i-th issuance of a CA's day gets the same
// serial the sequential path would have drawn; workers then build
// certificates for arbitrary plan indices with the issuance time passed
// explicitly (noon of the day). The constructed bytes are independent
// of worker scheduling and of whatever day the clock currently shows.
// (This path skips final-certificate assembly — the timeline only keeps
// what reaches the logs.)
func (w *World) constructTimelineDay(day time.Time, workers int) (dayWork, error) {
	dw := dayWork{day: day, plans: make([][]issuancePlan, len(w.Specs))}
	ForEach(len(w.Specs), workers, func(si int) {
		dw.plans[si] = w.planTimelineDay(day, w.Specs[si])
	})
	total := 0
	for _, l := range dw.plans {
		total += len(l)
	}
	if total == 0 {
		return dw, nil
	}
	embed := !day.Before(Date(2018, 1, 1))
	noon := day.Add(12 * time.Hour)

	type flatRef struct{ si, i int }
	flat := make([]flatRef, 0, total)
	bases := make([]uint64, len(w.Specs))
	dw.preps = make([][]*ca.Prepared, len(w.Specs))
	for si := range w.Specs {
		n := len(dw.plans[si])
		if n > 0 {
			bases[si] = w.CAs[w.Specs[si].Org].ReserveSerials(uint64(n))
		}
		dw.preps[si] = make([]*ca.Prepared, n)
		for i := 0; i < n; i++ {
			flat = append(flat, flatRef{si, i})
		}
	}
	var prepErr FirstError
	ForEach(len(flat), workers, func(k int) {
		ref := flat[k]
		pl := dw.plans[ref.si][ref.i]
		caInst := w.CAs[w.Specs[ref.si].Org]
		p, err := caInst.PrepareSerialAt(ca.Request{Names: pl.names, EmbedSCTs: embed}, bases[ref.si]+uint64(ref.i), noon)
		if err != nil {
			prepErr.Record(k, err)
			return
		}
		dw.preps[ref.si][ref.i] = p
	})
	return dw, prepErr.Err()
}

// commitTimelineDay stages one constructed day into the logs. The
// submissions fan out over workers with no per-log ordering at all —
// every worker stages into whichever log its (prepared, log) pair
// names, and the sequencer's canonical batch order (applied by
// finishDay's PublishSTH) makes the integrated tree independent of the
// staging interleaving.
func (w *World) commitTimelineDay(dw dayWork, workers int) error {
	w.Clock.Set(dw.day.Add(12 * time.Hour))
	if w.Frontend != nil {
		return w.commitDayViaFrontend(dw, workers)
	}
	type submission struct {
		p   *ca.Prepared
		log *ctlog.Log
	}
	// Empty days (the sparse early timeline) carry no preps at all.
	var subs []submission
	for si := range dw.preps {
		for i, p := range dw.preps[si] {
			for _, logName := range dw.plans[si][i].policy {
				if l, ok := w.Logs[logName]; ok {
					subs = append(subs, submission{p, l})
				}
			}
		}
	}
	if len(subs) < minParallelDayIssuances {
		workers = 1
	}
	var commitErr FirstError
	ForEach(len(subs), workers, func(i int) {
		s := subs[i]
		if _, err := s.log.AddPreChain(s.p.IssuerKeyHash(), s.p.TBS()); err != nil {
			// Overload cannot be replicated here: the sequential path
			// drops the *rest of the issuance* across logs, which a
			// staged fan-out cannot see. Config.NimbusCapacity gates to
			// the sequential path already; a capacity configured on a
			// log by other means must do the same, so fail loudly
			// instead of silently diverging.
			if errors.Is(err, ctlog.ErrOverloaded) {
				err = fmt.Errorf("%s is capacity-limited; the pipelined timeline cannot replay overload drops — run with Parallelism=1: %w", s.log.Name(), err)
			}
			commitErr.Record(i, err)
		}
	})
	if err := commitErr.Err(); err != nil {
		return fmt.Errorf("ecosystem: committing %s: %w", dw.day.Format("2006-01-02"), err)
	}
	return nil
}

// commitDayViaFrontend stages one constructed day through the
// submission frontend: one AddPreChain per prepared certificate, the
// frontend fanning each out to its deterministic policy-compliant log
// set. The per-plan policy draws are ignored — log selection is the
// frontend's job in this mode.
func (w *World) commitDayViaFrontend(dw dayWork, workers int) error {
	var preps []*ca.Prepared
	for si := range dw.preps {
		preps = append(preps, dw.preps[si]...)
	}
	if len(preps) < minParallelDayIssuances {
		workers = 1
	}
	var commitErr FirstError
	ForEach(len(preps), workers, func(i int) {
		p := preps[i]
		if _, err := w.Frontend.AddPreChain(context.Background(), p.IssuerKeyHash(), p.TBS()); err != nil {
			commitErr.Record(i, err)
		}
	})
	if err := commitErr.Err(); err != nil {
		return fmt.Errorf("ecosystem: frontend commit %s: %w", dw.day.Format("2006-01-02"), err)
	}
	return nil
}

// Verifiers returns the SCT verifier map over all logs, as the Section
// 3.4 detector needs.
func (w *World) Verifiers() map[sct.LogID]sct.SCTVerifier {
	out := make(map[sct.LogID]sct.SCTVerifier, len(w.Logs))
	for _, l := range w.Logs {
		out[l.LogID()] = l.Verifier()
	}
	return out
}

// TotalEntries sums the tree sizes of all logs.
func (w *World) TotalEntries() uint64 {
	var total uint64
	for _, l := range w.Logs {
		total += l.TreeSize()
	}
	return total
}

// LogsBySize returns log names sorted by tree size, largest first —
// useful for assertions about load concentration.
func (w *World) LogsBySize() []string {
	names := append([]string(nil), w.LogNames...)
	sort.Slice(names, func(i, j int) bool {
		si, sj := w.Logs[names[i]].TreeSize(), w.Logs[names[j]].TreeSize()
		if si != sj {
			return si > sj
		}
		return names[i] < names[j]
	})
	return names
}
