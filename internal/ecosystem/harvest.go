package ecosystem

import (
	"time"

	"ctrise/internal/certs"
	"ctrise/internal/ctlog"
	"ctrise/internal/sct"
	"ctrise/internal/stats"
)

// Harvest is the aggregated view of all log contents — everything the
// Section 2 figures need, computed by walking every log's entries the way
// the paper's crawler walked the public logs.
type Harvest struct {
	// PrecertsByOrgDay counts precertificate entries per (CA organization,
	// day): the source of Figures 1a and 1b.
	PrecertsByOrgDay *stats.DaySeries
	// PrecertsByOrgLog counts precertificate entries per (CA organization,
	// log name) within [HeatmapFrom, HeatmapTo): Figure 1c.
	PrecertsByOrgLog map[string]*stats.Counter
	// TotalPrecerts counts all precertificate entries.
	TotalPrecerts uint64
	// TotalFinal counts final-certificate entries.
	TotalFinal uint64
	// Names are all FQDNs extracted from certificate CN and SAN fields,
	// deduplicated — the Section 4 input corpus.
	Names map[string]struct{}
	// HeatmapFrom/To bound the Figure 1c window.
	HeatmapFrom, HeatmapTo time.Time
}

// HarvestLogs walks every log and aggregates. heatFrom/heatTo bound the
// Figure 1c window (the paper uses April 2018).
func (w *World) HarvestLogs(heatFrom, heatTo time.Time) (*Harvest, error) {
	h := &Harvest{
		PrecertsByOrgDay: stats.NewDaySeries(),
		PrecertsByOrgLog: make(map[string]*stats.Counter),
		Names:            make(map[string]struct{}),
		HeatmapFrom:      heatFrom,
		HeatmapTo:        heatTo,
	}
	for _, name := range w.LogNames {
		l := w.Logs[name]
		size := l.STH().TreeHead.TreeSize
		var start uint64
		for start < size {
			end := start + 999
			if end >= size {
				end = size - 1
			}
			entries, err := l.GetEntries(start, end)
			if err != nil {
				return nil, err
			}
			for _, e := range entries {
				h.observe(name, e)
			}
			start = end + 1
		}
	}
	return h, nil
}

func (h *Harvest) observe(logName string, e *ctlog.Entry) {
	// Both precert TBS bytes and final-cert bytes use the synthetic codec.
	cert, err := certs.Decode(e.Cert)
	if err != nil {
		// Foreign entries (e.g. hand-submitted DER) are counted but not
		// attributed.
		if e.Type == sct.PrecertLogEntryType {
			h.TotalPrecerts++
		} else {
			h.TotalFinal++
		}
		return
	}
	for _, n := range cert.Names() {
		h.Names[n] = struct{}{}
	}
	ts := time.UnixMilli(int64(e.Timestamp)).UTC()
	org := cert.Issuer.Organization
	if e.Type == sct.PrecertLogEntryType {
		h.TotalPrecerts++
		h.PrecertsByOrgDay.Add(org, ts, 1)
		if !ts.Before(h.HeatmapFrom) && ts.Before(h.HeatmapTo) {
			c := h.PrecertsByOrgLog[org]
			if c == nil {
				c = stats.NewCounter()
				h.PrecertsByOrgLog[org] = c
			}
			c.Inc(logName)
		}
	} else {
		h.TotalFinal++
	}
}

// CumulativeByOrg returns, per organization, the cumulative precert counts
// aligned with Days() — Figure 1a's series.
func (h *Harvest) CumulativeByOrg() (days []string, series map[string][]float64) {
	days = h.PrecertsByOrgDay.Days()
	series = make(map[string][]float64)
	for _, org := range h.PrecertsByOrgDay.SeriesNames() {
		series[org] = h.PrecertsByOrgDay.Cumulative(org)
	}
	return days, series
}

// DailyShareByOrg returns, per organization, each day's share of that
// day's total precert logging — Figure 1b's relative update rate.
func (h *Harvest) DailyShareByOrg() (days []string, series map[string][]float64) {
	days = h.PrecertsByOrgDay.Days()
	orgs := h.PrecertsByOrgDay.SeriesNames()
	series = make(map[string][]float64)
	for _, org := range orgs {
		series[org] = make([]float64, len(days))
	}
	for i, day := range days {
		var total float64
		for _, org := range orgs {
			total += h.PrecertsByOrgDay.Value(org, day)
		}
		if total == 0 {
			continue
		}
		for _, org := range orgs {
			series[org][i] = h.PrecertsByOrgDay.Value(org, day) / total
		}
	}
	return days, series
}
