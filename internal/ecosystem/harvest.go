package ecosystem

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"ctrise/internal/certs"
	"ctrise/internal/ctlog"
	"ctrise/internal/sct"
	"ctrise/internal/stats"
)

// Harvest is the aggregated view of all log contents — everything the
// Section 2 figures need, computed by walking every log's entries the way
// the paper's crawler walked the public logs.
type Harvest struct {
	// PrecertsByOrgDay counts precertificate entries per (CA organization,
	// day): the source of Figures 1a and 1b.
	PrecertsByOrgDay *stats.DaySeries
	// PrecertsByOrgLog counts precertificate entries per (CA organization,
	// log name) within [HeatmapFrom, HeatmapTo): Figure 1c.
	PrecertsByOrgLog map[string]*stats.Counter
	// TotalPrecerts counts all precertificate entries.
	TotalPrecerts uint64
	// TotalFinal counts final-certificate entries.
	TotalFinal uint64
	// NameSet holds all FQDNs extracted from certificate CN and SAN
	// fields, deduplicated in the crawl workers' sharded set — the
	// Section 4 input corpus. Consumers that fan out (the census) read
	// the shards in place; use Names for a plain map view.
	NameSet *stats.StringSet
	// HeatmapFrom/To bound the Figure 1c window.
	HeatmapFrom, HeatmapTo time.Time

	namesOnce sync.Once
	names     map[string]struct{}
}

// NewHarvest returns an empty harvest for the given Figure 1c heat
// window, with all aggregates (including the sharded FQDN set)
// initialized. Both the parallel crawl and the resumable checkpointed
// crawl build on it.
func NewHarvest(heatFrom, heatTo time.Time) *Harvest {
	return &Harvest{
		PrecertsByOrgDay: stats.NewDaySeries(),
		PrecertsByOrgLog: make(map[string]*stats.Counter),
		NameSet:          stats.NewStringSet(0),
		HeatmapFrom:      heatFrom,
		HeatmapTo:        heatTo,
	}
}

// Names returns the deduplicated FQDN corpus as a plain map,
// materializing it from NameSet on first use. Prefer iterating NameSet
// (ForEach/ForEachShard) where a map is not required — the corpus is the
// largest artifact of a harvest, and the sharded set is the zero-copy
// handoff into the census.
func (h *Harvest) Names() map[string]struct{} {
	h.namesOnce.Do(func() { h.names = h.NameSet.Snapshot() })
	return h.names
}

// harvestChunk is the entry-range granularity of one work unit. Small
// enough that the largest log (Nimbus2018 after the Let's Encrypt ramp)
// splits across all workers instead of serializing on one.
const harvestChunk = 4096

// harvestTask is one (log, entry range) unit of crawl work.
type harvestTask struct {
	logName    string
	log        *ctlog.Log
	start, end uint64 // inclusive
}

// partialHarvest is one worker's private, lock-free aggregate. Workers
// never share these; the merge step folds them into the final Harvest.
type partialHarvest struct {
	// dayCounts is org → day → precert count (the DaySeries rows).
	dayCounts map[string]map[string]float64
	// orgLog is org → log name → precert count within the heat window.
	orgLog map[string]map[string]uint64
	// lastDayNum/lastDayKey memoize DayKey formatting: entries within
	// a chunk overwhelmingly share a day, so the common case skips
	// time.Format entirely.
	lastDayNum    int64
	lastDayKey    string
	totalPrecerts uint64
	totalFinal    uint64
}

func newPartialHarvest() *partialHarvest {
	return &partialHarvest{
		dayCounts:  make(map[string]map[string]float64),
		orgLog:     make(map[string]map[string]uint64),
		lastDayNum: -1,
	}
}

const dayMillis = 24 * 60 * 60 * 1000

// observe folds one log entry into the partial aggregate. names is the
// sharded FQDN-dedup set all workers share.
func (p *partialHarvest) observe(h *Harvest, names *stats.StringSet, logName string, e *ctlog.Entry) {
	// Both precert TBS bytes and final-cert bytes use the synthetic codec.
	cert, err := certs.Decode(e.Cert)
	if err != nil {
		// Foreign entries (e.g. hand-submitted DER) are counted but not
		// attributed.
		if e.Type == sct.PrecertLogEntryType {
			p.totalPrecerts++
		} else {
			p.totalFinal++
		}
		return
	}
	for _, n := range cert.Names() {
		names.Add(n)
	}
	if e.Type != sct.PrecertLogEntryType {
		p.totalFinal++
		return
	}
	p.totalPrecerts++
	millis := int64(e.Timestamp)
	if day := millis / dayMillis; day != p.lastDayNum {
		p.lastDayNum = day
		p.lastDayKey = stats.DayKey(time.UnixMilli(millis))
	}
	org := cert.Issuer.Organization
	row := p.dayCounts[org]
	if row == nil {
		row = make(map[string]float64)
		p.dayCounts[org] = row
	}
	row[p.lastDayKey]++
	ts := time.UnixMilli(millis).UTC()
	if !ts.Before(h.HeatmapFrom) && ts.Before(h.HeatmapTo) {
		ol := p.orgLog[org]
		if ol == nil {
			ol = make(map[string]uint64)
			p.orgLog[org] = ol
		}
		ol[logName]++
	}
}

// mergeInto folds the partial into the final Harvest. All contributions
// are additive, so the result is independent of worker scheduling and
// merge order — parallel output is identical to the sequential path.
func (p *partialHarvest) mergeInto(h *Harvest) {
	h.TotalPrecerts += p.totalPrecerts
	h.TotalFinal += p.totalFinal
	h.PrecertsByOrgDay.MergeTable(p.dayCounts)
	for org, counts := range p.orgLog {
		c := h.PrecertsByOrgLog[org]
		if c == nil {
			c = stats.NewCounter()
			h.PrecertsByOrgLog[org] = c
		}
		c.AddMap(counts)
	}
}

// HarvestLogs walks every log and aggregates, fanning out over
// Config.Parallelism workers (GOMAXPROCS when 0). heatFrom/heatTo bound
// the Figure 1c window (the paper uses April 2018).
func (w *World) HarvestLogs(heatFrom, heatTo time.Time) (*Harvest, error) {
	return w.HarvestLogsParallel(heatFrom, heatTo, w.Cfg.Parallelism)
}

// HarvestLogsParallel is HarvestLogs with an explicit worker bound:
// 0 means GOMAXPROCS, 1 runs the crawl inline. Every log is chunked into
// harvestChunk-entry ranges streamed lock-free below the published STH;
// workers pull chunks off a shared cursor, build private partial
// harvests, and the partials merge deterministically at the end.
func (w *World) HarvestLogsParallel(heatFrom, heatTo time.Time, parallelism int) (*Harvest, error) {
	if parallelism <= 0 {
		parallelism = runtime.GOMAXPROCS(0)
	}
	h := NewHarvest(heatFrom, heatTo)

	var tasks []harvestTask
	for _, name := range w.LogNames {
		l := w.Logs[name]
		size := l.STH().TreeHead.TreeSize
		for start := uint64(0); start < size; start += harvestChunk {
			end := start + harvestChunk - 1
			if end >= size {
				end = size - 1
			}
			tasks = append(tasks, harvestTask{logName: name, log: l, start: start, end: end})
		}
	}
	if parallelism > len(tasks) {
		parallelism = len(tasks)
	}
	if parallelism < 1 {
		parallelism = 1
	}

	names := h.NameSet
	run := func(p *partialHarvest, t harvestTask) error {
		return t.log.StreamEntries(t.start, t.end, func(e *ctlog.Entry) error {
			p.observe(h, names, t.logName, e)
			return nil
		})
	}

	partials := make([]*partialHarvest, parallelism)
	if parallelism == 1 {
		partials[0] = newPartialHarvest()
		for _, t := range tasks {
			if err := run(partials[0], t); err != nil {
				return nil, err
			}
		}
	} else {
		var (
			cursor   atomic.Int64
			wg       sync.WaitGroup
			errOnce  sync.Once
			firstErr error
		)
		for i := 0; i < parallelism; i++ {
			wg.Add(1)
			go func(slot int) {
				defer wg.Done()
				p := newPartialHarvest()
				partials[slot] = p
				for {
					n := int(cursor.Add(1)) - 1
					if n >= len(tasks) {
						return
					}
					if err := run(p, tasks[n]); err != nil {
						errOnce.Do(func() { firstErr = err })
						return
					}
				}
			}(i)
		}
		wg.Wait()
		if firstErr != nil {
			return nil, firstErr
		}
	}

	for _, p := range partials {
		p.mergeInto(h)
	}
	return h, nil
}

// CumulativeByOrg returns, per organization, the cumulative precert counts
// aligned with Days() — Figure 1a's series.
func (h *Harvest) CumulativeByOrg() (days []string, series map[string][]float64) {
	days, orgs, table := h.PrecertsByOrgDay.Table()
	series = make(map[string][]float64, len(orgs))
	for _, org := range orgs {
		row := table[org]
		out := make([]float64, len(days))
		var sum float64
		for i, d := range days {
			sum += row[d]
			out[i] = sum
		}
		series[org] = out
	}
	return days, series
}

// DailyShareByOrg returns, per organization, each day's share of that
// day's total precert logging — Figure 1b's relative update rate.
func (h *Harvest) DailyShareByOrg() (days []string, series map[string][]float64) {
	days, orgs, table := h.PrecertsByOrgDay.Table()
	series = make(map[string][]float64, len(orgs))
	for _, org := range orgs {
		series[org] = make([]float64, len(days))
	}
	for i, day := range days {
		var total float64
		for _, org := range orgs {
			total += table[org][day]
		}
		if total == 0 {
			continue
		}
		for _, org := range orgs {
			series[org][i] = table[org][day] / total
		}
	}
	return days, series
}
