package ecosystem

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sync/atomic"
	"testing"

	"ctrise/internal/ctclient"
	"ctrise/internal/ctlog"
	"ctrise/internal/ctlog/storage"
	"ctrise/internal/sct"
)

// checkpointWorld builds a small populated world for harvest tests.
func checkpointWorld(t *testing.T) *World {
	t.Helper()
	w, err := New(Config{
		Seed:          31,
		Scale:         1e-4,
		TimelineStart: Date(2018, 3, 20),
		TimelineEnd:   Date(2018, 4, 6),
		NumDomains:    400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := w.RunTimeline(nil); err != nil {
		t.Fatal(err)
	}
	return w
}

// harvestFingerprint reduces a harvest to comparable form.
type harvestFingerprint struct {
	TotalPrecerts uint64
	TotalFinal    uint64
	Names         int
	Series        map[string]map[string]float64
	OrgLog        map[string]map[string]uint64
}

func fingerprint(h *Harvest) harvestFingerprint {
	fp := harvestFingerprint{
		TotalPrecerts: h.TotalPrecerts,
		TotalFinal:    h.TotalFinal,
		Names:         h.NameSet.Len(),
		Series:        make(map[string]map[string]float64),
		OrgLog:        make(map[string]map[string]uint64),
	}
	_, orgs, table := h.PrecertsByOrgDay.Table()
	for _, org := range orgs {
		fp.Series[org] = table[org]
	}
	for org, c := range h.PrecertsByOrgLog {
		fp.OrgLog[org] = c.Snapshot()
	}
	return fp
}

var heatFrom, heatTo = Date(2018, 4, 1), Date(2018, 5, 1)

// TestCheckpointRoundTrip proves Checkpoint/ResumeHarvest reconstruct
// the exact harvest state and cursors.
func TestCheckpointRoundTrip(t *testing.T) {
	w := checkpointWorld(t)
	h, err := w.HarvestLogs(heatFrom, heatTo)
	if err != nil {
		t.Fatal(err)
	}
	cursors := map[string]uint64{}
	for _, name := range w.LogNames {
		cursors[name] = w.Logs[name].STH().TreeHead.TreeSize
	}
	path := filepath.Join(t.TempDir(), "harvest.ckpt")
	if err := h.Checkpoint(path, cursors); err != nil {
		t.Fatal(err)
	}
	h2, cursors2, err := ResumeHarvest(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cursors, cursors2) {
		t.Fatalf("cursors differ:\nwant %v\ngot  %v", cursors, cursors2)
	}
	if !reflect.DeepEqual(fingerprint(h), fingerprint(h2)) {
		t.Fatal("harvest state differs after round trip")
	}
	if !h2.HeatmapFrom.Equal(heatFrom) || !h2.HeatmapTo.Equal(heatTo) {
		t.Fatalf("heat window %v–%v", h2.HeatmapFrom, h2.HeatmapTo)
	}
	// The name corpus round-trips as a set, not just a count.
	for name := range h.Names() {
		if !h2.NameSet.Has(name) {
			t.Fatalf("name %q lost in round trip", name)
		}
	}
}

// TestCheckpointRejectsTornFile proves a truncated checkpoint (torn
// write, which WriteFileAtomic should prevent but belt meets braces) is
// rejected rather than resumed from silently short state.
func TestCheckpointRejectsTornFile(t *testing.T) {
	w := checkpointWorld(t)
	h, err := w.HarvestLogs(heatFrom, heatTo)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "harvest.ckpt")
	if err := h.Checkpoint(path, map[string]uint64{"x": 1}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range []int{len(data) - 1, len(data) - 9, len(data) / 2, 3} {
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := ResumeHarvest(path); !errors.Is(err, storage.ErrCorrupt) {
			t.Fatalf("cut %d: err=%v, want ErrCorrupt", cut, err)
		}
	}
}

// TestHarvestLogsResumableMatchesParallel proves the checkpointed crawl
// produces the identical harvest to the one-shot parallel crawl.
func TestHarvestLogsResumableMatchesParallel(t *testing.T) {
	w := checkpointWorld(t)
	want, err := w.HarvestLogs(heatFrom, heatTo)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "harvest.ckpt")
	got, err := w.HarvestLogsResumable(context.Background(), heatFrom, heatTo, path, 500)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fingerprint(want), fingerprint(got)) {
		t.Fatal("resumable harvest differs from parallel harvest")
	}
}

// TestResumableRefusesRolledBackLog proves a checkpoint whose cursor
// lies beyond a log's current tree size — the log rolled back, or the
// checkpoint belongs to different logs — is refused loudly instead of
// re-streaming (and double-counting) entries the checkpoint already
// folded in.
func TestResumableRefusesRolledBackLog(t *testing.T) {
	w := checkpointWorld(t)
	path := filepath.Join(t.TempDir(), "harvest.ckpt")
	h := NewHarvest(heatFrom, heatTo)
	name := w.LogNames[0]
	size := w.Logs[name].STH().TreeHead.TreeSize
	if err := h.Checkpoint(path, map[string]uint64{name: size + 1000}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.HarvestLogsResumable(context.Background(), heatFrom, heatTo, path, 400); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("err=%v, want ErrCheckpointMismatch", err)
	}
}

// TestHarvestKilledAndResumedIsGapFree kills the resumable harvest at
// several points (context cancellation after N observed entries — the
// in-memory partial since the last checkpoint is discarded, exactly
// like a dead process), resumes from the checkpoint file with fresh
// state, and requires the final harvest to equal the uninterrupted one:
// no gaps, no double counting.
func TestHarvestKilledAndResumedIsGapFree(t *testing.T) {
	w := checkpointWorld(t)
	want, err := w.HarvestLogs(heatFrom, heatTo)
	if err != nil {
		t.Fatal(err)
	}
	wantFP := fingerprint(want)

	for _, killAfter := range []int{1, 237, 1000} {
		path := filepath.Join(t.TempDir(), "harvest.ckpt")
		// Phase 1: harvest with a context that dies mid-crawl.
		ctx, cancel := context.WithCancel(context.Background())
		countCtx := &countingContext{Context: ctx, cancel: cancel, after: killAfter}
		if _, err := w.HarvestLogsResumable(countCtx, heatFrom, heatTo, path, 400); err == nil {
			t.Fatalf("killAfter=%d: harvest was not killed", killAfter)
		} else if !errors.Is(err, context.Canceled) {
			t.Fatalf("killAfter=%d: err=%v", killAfter, err)
		}
		// Phase 2: a "new process" resumes from the checkpoint file (or
		// from scratch when the kill landed before the first checkpoint).
		got, err := w.HarvestLogsResumable(context.Background(), heatFrom, heatTo, path, 400)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wantFP, fingerprint(got)) {
			t.Fatalf("killAfter=%d: resumed harvest differs from uninterrupted", killAfter)
		}
	}
}

// countingContext reports itself canceled after its Err method has been
// consulted `after` times — a deterministic stand-in for kill -9 at an
// arbitrary point in the entry stream (HarvestLogsResumable checks ctx
// per entry).
type countingContext struct {
	context.Context
	cancel context.CancelFunc
	after  int
	seen   atomic.Int64
}

func (c *countingContext) Err() error {
	if int(c.seen.Add(1)) > c.after {
		c.cancel()
	}
	return c.Context.Err()
}

// TestRemoteHarvestResumesViaStreamEntries exercises the remote shape
// of the same contract: a ctclient.Monitor streaming a log over HTTP
// dies mid-harvest (server starts refusing), the resume index
// StreamEntries returned is checkpointed, and a fresh monitor seeded
// with NewMonitorAt finishes the harvest gap-free against a healthy
// server.
func TestRemoteHarvestResumesViaStreamEntries(t *testing.T) {
	l, err := ctlog.New(ctlog.Config{
		Name:   "remote",
		Signer: sct.NewFastSigner("checkpoint-remote-log"),
	})
	if err != nil {
		t.Fatal(err)
	}
	const entries = 40
	for i := 0; i < entries; i++ {
		if _, err := l.AddChain([]byte{byte(i), 0x55, byte(i >> 4)}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := l.PublishSTH(); err != nil {
		t.Fatal(err)
	}

	var requests atomic.Int64
	var failing atomic.Bool
	handler := l.Handler()
	server := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if failing.Load() && requests.Add(1) > 2 {
			http.Error(w, "server killed", http.StatusInternalServerError)
			return
		}
		handler.ServeHTTP(w, r)
	}))
	defer server.Close()

	var seen []uint64
	collect := func(e *ctlog.Entry) error {
		seen = append(seen, e.Index)
		return nil
	}

	// Phase 1: the server dies after two pages.
	failing.Store(true)
	m := ctclient.NewMonitor(ctclient.New(server.URL, nil))
	m.Batch = 7
	resume, err := m.StreamEntries(context.Background(), 0, entries-1, collect)
	if err == nil {
		t.Fatal("stream against dying server succeeded")
	}
	if resume != uint64(len(seen)) {
		t.Fatalf("resume index %d, saw %d entries", resume, len(seen))
	}
	if resume == 0 || resume >= entries {
		t.Fatalf("want a mid-stream failure, got resume=%d", resume)
	}

	// The checkpoint carries the cursor across the "restart".
	path := filepath.Join(t.TempDir(), "remote.ckpt")
	h := NewHarvest(heatFrom, heatTo)
	if err := h.Checkpoint(path, map[string]uint64{"remote": resume}); err != nil {
		t.Fatal(err)
	}
	_, cursors, err := ResumeHarvest(path)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: healthy server, fresh monitor seeded from the cursor.
	failing.Store(false)
	m2 := ctclient.NewMonitorAt(ctclient.New(server.URL, nil), cursors["remote"])
	if got := m2.NextIndex(); got != resume {
		t.Fatalf("NextIndex=%d, want %d", got, resume)
	}
	next, err := m2.StreamEntries(context.Background(), m2.NextIndex(), entries-1, collect)
	if err != nil {
		t.Fatal(err)
	}
	if next != entries {
		t.Fatalf("final cursor %d, want %d", next, entries)
	}
	if len(seen) != entries {
		t.Fatalf("saw %d entries, want %d (gap or double-fetch)", len(seen), entries)
	}
	for i, idx := range seen {
		if idx != uint64(i) {
			t.Fatalf("entry %d has index %d: not gap-free", i, idx)
		}
	}
}
