package ecosystem

import (
	"context"
	"fmt"
	"maps"
	"math"
	"os"
	"slices"
	"sort"
	"time"

	"ctrise/internal/ctlog"
	"ctrise/internal/ctlog/storage"
	"ctrise/internal/stats"
	"ctrise/internal/tlsenc"
)

// Harvest checkpointing. A paper-scale crawl over every log is hours of
// work; a killed harvester should not start over. Checkpoint serializes
// the full harvest state — the Figure 1 aggregates, the FQDN corpus,
// and a per-log resume cursor (the first entry index not yet folded
// in) — on the same length-prefixed, checksummed record codec the
// ctlog WAL uses, written atomically. ResumeHarvest loads it back, and
// HarvestLogsResumable stitches the two into a crawl that survives
// kill -9 at any point: everything observed since the last checkpoint
// dies with the process, so on resume the cursors re-stream exactly
// those entries — gap-free and double-count-free. The cursors are entry
// indices in ctlog/ctclient StreamEntries terms, so a remote harvester
// can checkpoint the resume index a failed ctclient.Monitor.StreamEntries
// call returns and continue over HTTP after a restart.

// ErrCheckpointMismatch is returned when a checkpoint's heat window does
// not match the harvest being resumed.
var ErrCheckpointMismatch = fmt.Errorf("ecosystem: checkpoint parameters mismatch")

// Checkpoint atomically writes the harvest's state plus per-log resume
// cursors to path. cursors[logName] is the first entry index of that
// log not yet folded into the harvest.
func (h *Harvest) Checkpoint(path string, cursors map[string]uint64) error {
	return storage.WriteFileAtomic(path, h.encodeCheckpoint(cursors))
}

func (h *Harvest) encodeCheckpoint(cursors map[string]uint64) []byte {
	out := append([]byte(nil), storage.CheckpointMagic...)

	// Meta: heat window, totals, and the sorted cursor table.
	logs := slices.Sorted(maps.Keys(cursors))
	b := tlsenc.NewBuilder(64 + 32*len(logs))
	b.AddUint64(uint64(h.HeatmapFrom.UnixMilli()))
	b.AddUint64(uint64(h.HeatmapTo.UnixMilli()))
	b.AddUint64(h.TotalPrecerts)
	b.AddUint64(h.TotalFinal)
	b.AddUint32(uint32(len(logs)))
	for _, name := range logs {
		b.AddUint16Vector([]byte(name))
		b.AddUint64(cursors[name])
	}
	out = storage.AppendRecord(out, storage.RecordCkptMeta, b.MustBytes())

	// One record per (org, day series): sorted orgs, sorted days.
	_, orgs, table := h.PrecertsByOrgDay.Table()
	for _, org := range orgs {
		row := table[org]
		days := slices.Sorted(maps.Keys(row))
		rb := tlsenc.NewBuilder(16 + 24*len(days))
		rb.AddUint16Vector([]byte(org))
		rb.AddUint32(uint32(len(days)))
		for _, day := range days {
			rb.AddUint16Vector([]byte(day))
			rb.AddUint64(math.Float64bits(row[day]))
		}
		out = storage.AppendRecord(out, storage.RecordCkptSeries, rb.MustBytes())
	}

	// One record per (org, per-log heat counts).
	for _, org := range slices.Sorted(maps.Keys(h.PrecertsByOrgLog)) {
		counts := h.PrecertsByOrgLog[org].Snapshot()
		names := slices.Sorted(maps.Keys(counts))
		rb := tlsenc.NewBuilder(16 + 24*len(names))
		rb.AddUint16Vector([]byte(org))
		rb.AddUint32(uint32(len(names)))
		for _, name := range names {
			rb.AddUint16Vector([]byte(name))
			rb.AddUint64(counts[name])
		}
		out = storage.AppendRecord(out, storage.RecordCkptOrgLog, rb.MustBytes())
	}

	// The FQDN corpus, chunked so no record grows unbounded.
	const namesPerRecord = 4096
	names := make([]string, 0, h.NameSet.Len())
	h.NameSet.ForEach(func(k string) { names = append(names, k) })
	sort.Strings(names)
	for start := 0; start < len(names); start += namesPerRecord {
		end := min(start+namesPerRecord, len(names))
		rb := tlsenc.NewBuilder(8 + 24*(end-start))
		rb.AddUint32(uint32(end - start))
		for _, n := range names[start:end] {
			rb.AddUint16Vector([]byte(n))
		}
		out = storage.AppendRecord(out, storage.RecordCkptNames, rb.MustBytes())
	}

	// End marker: a checkpoint without it is torn and rejected.
	return storage.AppendRecord(out, storage.RecordCkptEnd, nil)
}

// ResumeHarvest loads a checkpoint written by Checkpoint, returning the
// reconstructed harvest and the per-log resume cursors. A missing file
// is reported via os.IsNotExist on the error; a structurally invalid
// one via storage.ErrCorrupt.
func ResumeHarvest(path string) (*Harvest, map[string]uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	if len(data) < storage.MagicLen || string(data[:storage.MagicLen]) != string(storage.CheckpointMagic) {
		return nil, nil, fmt.Errorf("%w: bad checkpoint magic", storage.ErrCorrupt)
	}
	recs, valid := storage.ScanRecords(data[storage.MagicLen:])
	if storage.MagicLen+valid != len(data) {
		return nil, nil, fmt.Errorf("%w: %d undecodable checkpoint bytes", storage.ErrCorrupt, len(data)-storage.MagicLen-valid)
	}
	if len(recs) == 0 || recs[0].Type != storage.RecordCkptMeta {
		return nil, nil, fmt.Errorf("%w: checkpoint missing meta record", storage.ErrCorrupt)
	}
	if recs[len(recs)-1].Type != storage.RecordCkptEnd {
		return nil, nil, fmt.Errorf("%w: checkpoint missing end marker (torn write?)", storage.ErrCorrupt)
	}

	r := tlsenc.NewReader(recs[0].Payload)
	h := NewHarvest(time.UnixMilli(int64(r.Uint64())).UTC(), time.UnixMilli(int64(r.Uint64())).UTC())
	h.TotalPrecerts = r.Uint64()
	h.TotalFinal = r.Uint64()
	cursors := make(map[string]uint64)
	for n := r.Uint32(); n > 0 && r.Err() == nil; n-- {
		name := string(r.Uint16Vector())
		cursors[name] = r.Uint64()
	}
	if err := r.ExpectEmpty(); err != nil {
		return nil, nil, fmt.Errorf("%w: checkpoint meta: %v", storage.ErrCorrupt, err)
	}

	for _, rec := range recs[1 : len(recs)-1] {
		r := tlsenc.NewReader(rec.Payload)
		switch rec.Type {
		case storage.RecordCkptSeries:
			org := string(r.Uint16Vector())
			for n := r.Uint32(); n > 0 && r.Err() == nil; n-- {
				day := string(r.Uint16Vector())
				h.PrecertsByOrgDay.AddKey(org, day, math.Float64frombits(r.Uint64()))
			}
		case storage.RecordCkptOrgLog:
			org := string(r.Uint16Vector())
			c := stats.NewCounter()
			for n := r.Uint32(); n > 0 && r.Err() == nil; n-- {
				name := string(r.Uint16Vector())
				c.Add(name, r.Uint64())
			}
			h.PrecertsByOrgLog[org] = c
		case storage.RecordCkptNames:
			for n := r.Uint32(); n > 0 && r.Err() == nil; n-- {
				h.NameSet.Add(string(r.Uint16Vector()))
			}
		default:
			return nil, nil, fmt.Errorf("%w: unknown checkpoint record type %d", storage.ErrCorrupt, rec.Type)
		}
		if err := r.ExpectEmpty(); err != nil {
			return nil, nil, fmt.Errorf("%w: checkpoint record %d: %v", storage.ErrCorrupt, rec.Type, err)
		}
	}
	return h, cursors, nil
}

// HarvestLogsResumable crawls every log like HarvestLogs but survives
// being killed: progress is checkpointed to path, and an existing
// checkpoint at path is resumed from instead of starting over. The
// crawl streams each log from its cursor below the published STH;
// entries observed since the last checkpoint are only in process
// memory, so a kill re-streams exactly those entries on resume and
// never double-counts. checkpointEvery is the cadence FLOOR, not a
// bound on re-work: each checkpoint rewrites the whole harvest state,
// so the interval stretches geometrically (at least ~20% new entries
// since the last checkpoint, counting the resumed prefix) to keep
// cumulative checkpoint I/O proportional to the crawl — a kill can
// therefore lose up to max(checkpointEvery, ~20% of the entries
// crawled so far) of re-streamable work. ctx cancels between chunks
// and mid-chunk (the un-checkpointed chunk is simply re-streamed on
// resume).
//
// The final harvest equals HarvestLogs output exactly — the aggregates
// are additive and the per-entry observation is the same code path.
func (w *World) HarvestLogsResumable(ctx context.Context, heatFrom, heatTo time.Time, path string, checkpointEvery uint64) (*Harvest, error) {
	if checkpointEvery == 0 {
		checkpointEvery = 65536
	}
	h, cursors, err := ResumeHarvest(path)
	switch {
	case err == nil:
		// The checkpoint stores the window at millisecond granularity;
		// compare at the same granularity so resuming with the exact
		// arguments of the original call always matches.
		if h.HeatmapFrom.UnixMilli() != heatFrom.UnixMilli() || h.HeatmapTo.UnixMilli() != heatTo.UnixMilli() {
			return nil, fmt.Errorf("%w: checkpoint heat window %v–%v, requested %v–%v",
				ErrCheckpointMismatch, h.HeatmapFrom, h.HeatmapTo, heatFrom, heatTo)
		}
	case os.IsNotExist(err):
		h = NewHarvest(heatFrom, heatTo)
		cursors = make(map[string]uint64)
	default:
		return nil, err
	}

	p := newPartialHarvest()
	var sinceCheckpoint, totalSeen uint64
	// Seed the cadence baseline with the work the checkpoint already
	// holds, so a resumed crawl doesn't restart at the dense end of the
	// geometric schedule and rewrite the huge state every interval.
	for _, c := range cursors {
		totalSeen += c
	}
	checkpoint := func() error {
		p.mergeInto(h)
		p = newPartialHarvest()
		sinceCheckpoint = 0
		return h.Checkpoint(path, cursors)
	}
	for _, name := range w.LogNames {
		l := w.Logs[name]
		size := l.STH().TreeHead.TreeSize
		next := cursors[name]
		if next > size {
			// The log serves a smaller tree than this checkpoint already
			// folded in: the log rolled back (or this is the wrong log).
			// Re-streaming would double-count; refuse loudly.
			return nil, fmt.Errorf("%w: log %q resumed at cursor %d beyond its tree size %d (log rolled back?)",
				ErrCheckpointMismatch, name, next, size)
		}
		for next < size {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			chunkEnd := min(size-1, next+checkpointEvery-1)
			err := l.StreamEntries(next, chunkEnd, func(e *ctlog.Entry) error {
				if err := ctx.Err(); err != nil {
					return err
				}
				p.observe(h, h.NameSet, name, e)
				return nil
			})
			if err != nil {
				return nil, err
			}
			sinceCheckpoint += chunkEnd - next + 1
			totalSeen += chunkEnd - next + 1
			next = chunkEnd + 1
			cursors[name] = next
			// Geometric cadence, like ctlog's snapshotDueLocked: a
			// checkpoint rewrites the whole harvest state, so requiring
			// ≥20% new work since the last one keeps cumulative
			// checkpoint I/O proportional to the crawl instead of
			// quadratic in it.
			if sinceCheckpoint >= checkpointEvery && sinceCheckpoint*5 >= totalSeen {
				if err := checkpoint(); err != nil {
					return nil, err
				}
			}
		}
	}
	if err := checkpoint(); err != nil {
		return nil, err
	}
	return h, nil
}
