package ctfront

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ctrise/internal/sct"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/counters.golden from this run")

// TestTamperedSCTCountersGolden pins the frontend's entire metrics
// surface for a fixed tampered-key scenario: a wrong-key backend
// quarantined mid-run, a deterministic seed, a virtual clock, and one
// weight commit. Any drift in the per-backend counters — a bad SCT
// silently counted as a success, a quarantine that stops firing, a
// renamed series — fails against the golden file even if every
// behavioral test was updated to match.
func TestTamperedSCTCountersGolden(t *testing.T) {
	clock := newTestClock()
	specs := newLocalPool(t, clock, 3, 0)
	// log-1 signs with its own key but the frontend is configured with
	// another log's — the wrong-key/tampered-SCT condition.
	specs[1].Verifier = sct.NewFastVerifier("impostor-log")
	f, err := New(Config{Backends: specs, Seed: 5, Clock: clock.Now, BackoffBase: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	lifetime := 90 * 24 * time.Hour
	for serial := uint64(1); serial <= 6; serial++ {
		if _, err := f.AddPreChain(context.Background(), [32]byte{41}, testTBS(t, serial, lifetime)); err != nil {
			t.Fatalf("serial %d: %v", serial, err)
		}
	}
	f.CommitWeights()

	var b strings.Builder
	f.writeMetrics(&b)
	got := b.String()

	goldenPath := filepath.Join("testdata", "counters.golden")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		t.Errorf("tampered-SCT counter regression\n got:\n%s\nwant:\n%s", got, want)
	}

	// Belt and braces on the scenario itself, independent of the golden
	// bytes: the wrong-key backend was exercised and quarantined.
	if !strings.Contains(got, `ctfront_backend_bad_scts_total{backend="log-1"} `) {
		t.Fatal("metrics lost the bad-SCT series")
	}
	if strings.Contains(got, `ctfront_backend_bad_scts_total{backend="log-1"} 0`) {
		t.Fatal("tampered scenario never hit the wrong-key backend")
	}
}
